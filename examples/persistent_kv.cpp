// A small persistent key-value store on the Poseidon C++ API.
//
// Demonstrates the idioms a real application uses: a root object holding a
// persistent hash directory of NvPtr buckets, transactional allocation for
// multi-object updates (entry + value allocated atomically), and full
// recovery of the store across restarts.
//
//   $ ./persistent_kv put color teal
//   $ ./persistent_kv put answer 42
//   $ ./persistent_kv get color
//   $ ./persistent_kv del color
//   $ ./persistent_kv list
#include <cstdio>
#include <cstring>
#include <string>

#include "common/hash.hpp"
#include "core/heap.hpp"
#include "pmem/pool.hpp"

using namespace poseidon;
using core::Heap;
using core::NvPtr;

namespace {

constexpr unsigned kBuckets = 256;
constexpr std::size_t kMaxKey = 64;

// Persistent layout: the root points at a Directory; each bucket chains
// Entry nodes whose value payload is a separate allocation.
struct Directory {
  std::uint64_t magic;
  NvPtr buckets[kBuckets];
};

struct Entry {
  NvPtr next;
  NvPtr value;  // separate allocation (done in the same transaction)
  std::uint32_t value_len;
  char key[kMaxKey];
};

unsigned bucket_of(const std::string& key) {
  return static_cast<unsigned>(hash_bytes(key.data(), key.size()) % kBuckets);
}

Directory* directory(Heap& heap) {
  NvPtr root = heap.root();
  if (root.is_null()) {
    root = heap.alloc(sizeof(Directory));
    auto* dir = static_cast<Directory*>(heap.raw(root));
    std::memset(dir, 0, sizeof(Directory));
    dir->magic = 0x6b76;
    heap.set_root(root);
    return dir;
  }
  return static_cast<Directory*>(heap.raw(root));
}

bool put(Heap& heap, Directory* dir, const std::string& key,
         const std::string& value) {
  if (key.size() >= kMaxKey) return false;
  // Entry and value allocated in one transaction: if the process dies
  // between the two, recovery frees both — no orphaned value blocks.
  const NvPtr pe = heap.tx_alloc(sizeof(Entry), /*is_end=*/false);
  const NvPtr pv = heap.tx_alloc(value.size() + 1, /*is_end=*/true);
  if (pe.is_null() || pv.is_null()) return false;

  auto* e = static_cast<Entry*>(heap.raw(pe));
  std::memcpy(heap.raw(pv), value.c_str(), value.size() + 1);
  std::snprintf(e->key, kMaxKey, "%s", key.c_str());
  e->value = pv;
  e->value_len = static_cast<std::uint32_t>(value.size());

  const unsigned b = bucket_of(key);
  e->next = dir->buckets[b];
  dir->buckets[b] = pe;  // publish
  return true;
}

Entry* find(Heap& heap, Directory* dir, const std::string& key,
            Entry** prev_out = nullptr) {
  Entry* prev = nullptr;
  for (NvPtr p = dir->buckets[bucket_of(key)]; !p.is_null();) {
    auto* e = static_cast<Entry*>(heap.raw(p));
    if (key == e->key) {
      if (prev_out != nullptr) *prev_out = prev;
      return e;
    }
    prev = e;
    p = e->next;
  }
  return nullptr;
}

bool del(Heap& heap, Directory* dir, const std::string& key) {
  const unsigned b = bucket_of(key);
  NvPtr p = dir->buckets[b];
  Entry* prev = nullptr;
  while (!p.is_null()) {
    auto* e = static_cast<Entry*>(heap.raw(p));
    if (key == e->key) {
      if (prev == nullptr) {
        dir->buckets[b] = e->next;
      } else {
        prev->next = e->next;
      }
      heap.free(e->value);
      heap.free(p);
      return true;
    }
    prev = e;
    p = e->next;
  }
  return false;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) {
    std::fprintf(stderr,
                 "usage: %s put <key> <value> | get <key> | del <key> | "
                 "list | stats\n",
                 argv[0]);
    return 2;
  }
  auto heap = Heap::open_or_create("/dev/shm/persistent_kv.heap", 32u << 20);
  Directory* dir = directory(*heap);
  const std::string cmd = argv[1];

  if (cmd == "put" && argc == 4) {
    if (!put(*heap, dir, argv[2], argv[3])) {
      std::fprintf(stderr, "put failed\n");
      return 1;
    }
    std::printf("ok\n");
  } else if (cmd == "get" && argc == 3) {
    Entry* e = find(*heap, dir, argv[2]);
    if (e == nullptr) {
      std::printf("(not found)\n");
      return 1;
    }
    std::printf("%s\n", static_cast<const char*>(heap->raw(e->value)));
  } else if (cmd == "del" && argc == 3) {
    std::printf("%s\n", del(*heap, dir, argv[2]) ? "deleted" : "(not found)");
  } else if (cmd == "list") {
    for (unsigned b = 0; b < kBuckets; ++b) {
      for (NvPtr p = dir->buckets[b]; !p.is_null();) {
        auto* e = static_cast<Entry*>(heap->raw(p));
        std::printf("%s = %s\n", e->key,
                    static_cast<const char*>(heap->raw(e->value)));
        p = e->next;
      }
    }
  } else if (cmd == "stats") {
    const auto s = heap->stats();
    std::printf("live_blocks=%llu free_blocks=%llu allocated_bytes=%llu\n",
                static_cast<unsigned long long>(s.live_blocks),
                static_cast<unsigned long long>(s.free_blocks),
                static_cast<unsigned long long>(s.allocated_bytes));
  } else {
    std::fprintf(stderr, "bad command\n");
    return 2;
  }
  return 0;
}
