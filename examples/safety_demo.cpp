// Metadata-safety demo (paper §4.3, §4.4):
//   1. a stray store into the MPK-protected metadata region kills the
//      offending code with SIGSEGV instead of silently corrupting heap
//      metadata (shown in a forked child);
//   2. double frees and invalid frees are detected via the memblock hash
//      table and rejected;
//   3. the same heap-overflow attack that corrupts the PMDK-like baseline
//      leaves Poseidon's metadata untouched.
//
// Uses the mprotect protection mode so the demo works on machines without
// PKU hardware; with PKU present, pass "pkey" as argv[1].
#include <sys/wait.h>
#include <unistd.h>

#include <cstdio>
#include <cstring>
#include <string>

#include "core/heap.hpp"
#include "mpk/mpk.hpp"
#include "pmem/pool.hpp"

using namespace poseidon;
using core::Heap;
using core::NvPtr;

namespace {
constexpr const char* kPath = "/dev/shm/safety_demo.heap";
}

int main(int argc, char** argv) {
  pmem::Pool::unlink(kPath);
  core::Options opts;
  opts.nsubheaps = 1;
  opts.protect = (argc > 1 && std::string(argv[1]) == "pkey")
                     ? mpk::ProtectMode::kPkey
                     : mpk::ProtectMode::kMprotect;

  // 1. Stray write into the metadata region -> fault, not corruption.
  {
    const pid_t pid = fork();
    if (pid == 0) {
      auto heap = Heap::create(kPath, 8u << 20, opts);
      auto [meta, len] = heap->metadata_region();
      static_cast<volatile char*>(meta)[len / 2] = 0x41;  // heap overflow hit
      _exit(0);  // only reached if protection failed
    }
    int status = 0;
    waitpid(pid, &status, 0);
    const bool faulted = WIFSIGNALED(status) && WTERMSIG(status) == SIGSEGV;
    std::printf("stray write into metadata region : %s\n",
                faulted ? "SIGSEGV (blocked by protection domain)"
                        : "NOT BLOCKED");
    if (!faulted) return 1;
    pmem::Pool::unlink(kPath);
  }

  auto heap = Heap::create(kPath, 8u << 20, opts);
  std::printf("protection mode in effect        : %s\n",
              mpk::mode_name(heap->protect_mode()));

  // 2. API misuse is validated against the memblock hash table.
  NvPtr a = heap->alloc(128);
  NvPtr b = heap->alloc(128);
  heap->free(a);
  std::printf("double free                      : %s\n",
              core::to_string(heap->free(a)));
  NvPtr interior = NvPtr::make(heap->heap_id(), b.subheap(), b.offset() + 32);
  std::printf("invalid (interior) free          : %s\n",
              core::to_string(heap->free(interior)));
  NvPtr alien = NvPtr::make(heap->heap_id() + 1, 0, 0);
  std::printf("free of foreign heap pointer     : %s\n",
              core::to_string(heap->free(alien)));

  // 3. Heap overflow across user objects cannot reach metadata: overwrite
  //    a whole object *and* its neighbourhood, then verify every metadata
  //    invariant still holds.
  NvPtr target = heap->alloc(64);
  std::memset(heap->raw(target), 0xff, 64);  // in-bounds
  auto* raw = static_cast<char*>(heap->raw(b));
  std::memset(raw, 0xee, 256);  // overflow b into the following objects
  std::string why;
  const bool ok = heap->check_invariants(&why);
  std::printf("metadata after user-space overflow: %s\n",
              ok ? "INTACT (fully segregated layout)"
                 : ("CORRUPT: " + why).c_str());

  heap.reset();
  pmem::Pool::unlink(kPath);
  return ok ? 0 : 1;
}
