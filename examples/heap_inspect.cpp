// heap_inspect — offline Poseidon heap checker ("fsck for Poseidon").
//
// Opens the heap genuinely read-only (PROT_READ, no OFD lock, no recovery,
// no owner stamp): inspection never mutates the file and coexists with a
// live writer — what prints is the heap exactly as the last writer left
// it, which for a crashed heap is the pre-recovery state (pending logs and
// all).  Prints the superblock geometry, owner record, per-sub-heap
// occupancy, hash level usage and mechanism counters, and runs the
// structural invariant check (informational in read-only mode: pending
// recovery work legitimately looks inconsistent).
//
// With --fsck it instead opens read-write (running recovery, taking
// ownership — fails with heap-busy while a writer is live) and runs the
// scavenge repair pass (Heap::fsck): corrupted sub-heaps are rebuilt from
// their surviving block records and quarantined ones retried, then the
// report is printed.  Exit status is 0 when the heap ends healthy
// (including "repaired"), 1 otherwise.
//
// With --topology it prints the NUMA node → shard → sub-heap mapping with
// per-shard occupancy and quarantine state instead (add --json for a
// machine-readable dump), then exits 0 when every shard is in service.
//
// With --svc it inspects the allocation-service segment beside the heap
// instead (attached read-only, safe beside the live server): server state
// and heartbeat age, per-shard submission-ring depth and doorbells, and
// the session table with client pids, progress counters and completion
// backlogs.  Exit 0 while the server is serving, 1 otherwise.
//
//   $ ./heap_inspect /dev/shm/persistent_kv.heap
//   $ ./heap_inspect --json /dev/shm/persistent_kv.heap   # obs JSON only
//   $ ./heap_inspect --fsck /dev/shm/persistent_kv.heap   # check AND repair
//   $ ./heap_inspect --topology [--json] /dev/shm/persistent_kv.heap
//   $ ./heap_inspect --svc [--json] /dev/shm/persistent_kv.heap
// With --snapshots it treats the path as a snapshot *directory* (made by
// Heap::snapshot / poseidon_snapshot) and prints its MANIFEST: kind, set
// identity, and the per-shard image inventory with dirty-tracker baselines.
//
// With --diff <MANIFEST-a> <MANIFEST-b> it compares the two snapshots'
// shard images page by page and reports exactly which pages differ,
// classified by heap region (superblock / sub-heap meta / hash tables /
// cache logs / flight rings / user data, the last with a per-sub-heap
// breakdown) — the ground truth an incremental snapshot's O(dirty) claim
// is audited against.  Exit 0 when the images are identical.
//
// With --crashcheck-report it pretty-prints a crash-state replay file
// (saved by `torture --crashcheck` when the explorer found a violation):
// the op family, the crash instant, the lost cache lines with their heap
// segments, and the reproduce command.
#include <fcntl.h>
#include <signal.h>
#include <sys/stat.h>
#include <unistd.h>

#include <algorithm>
#include <cinttypes>
#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "common/error.hpp"
#include "core/heap.hpp"
#include "core/snapshot.hpp"
#include "crashcheck/replay.hpp"
#include "obs/exporter.hpp"
#include "pmem/pool.hpp"
#include "pmem/shm.hpp"
#include "svc/ring.hpp"

using namespace poseidon;
using core::Heap;

namespace {

void print_size(const char* label, std::uint64_t bytes) {
  if (bytes >= (1ull << 20)) {
    std::printf("%-28s %" PRIu64 " MiB\n", label, bytes >> 20);
  } else if (bytes >= 1024) {
    std::printf("%-28s %" PRIu64 " KiB\n", label, bytes >> 10);
  } else {
    std::printf("%-28s %" PRIu64 " B\n", label, bytes);
  }
}

const char* sess_state_name(std::uint32_t s) {
  switch (s) {
    case svc::kSessFree: return "free";
    case svc::kSessClaiming: return "claiming";
    case svc::kSessActive: return "active";
    case svc::kSessClosed: return "closed";
    case svc::kSessZombie: return "zombie";
    default: return "?";
  }
}

// Allocation-service segment inspection: read-only attach, no locks, no
// doorbells rung — every number is a relaxed load the live server and its
// clients also publish for exactly this purpose.
int inspect_svc(const char* heap_path, bool json) {
  const std::string seg_path = svc::svc_path(heap_path);
  pmem::ShmSegment seg;
  try {
    seg = pmem::ShmSegment::attach(seg_path, /*read_only=*/true);
  } catch (const std::exception& e) {
    std::fprintf(stderr, "%s: %s\n", seg_path.c_str(), e.what());
    return 1;
  }
  std::byte* base = seg.data();
  const svc::SvcHeader* h = svc::header_of(base);
  if (h->magic != svc::kSvcMagic || h->version != svc::kSvcVersion) {
    std::fprintf(stderr, "%s: not an allocation-service segment\n",
                 seg_path.c_str());
    return 1;
  }
  const auto state =
      static_cast<svc::SvcState>(h->state.load(std::memory_order_acquire));
  const std::uint64_t now = svc::monotonic_ns();
  const std::uint64_t hb = h->heartbeat_ns.load(std::memory_order_relaxed);
  const std::uint64_t hb_age_ms = now > hb ? (now - hb) / 1000000 : 0;
  // kill(pid, 0) probes liveness without signalling — the same check
  // clients use before declaring the server unavailable.
  const bool pid_alive =
      h->server_pid != 0 &&
      ::kill(static_cast<pid_t>(h->server_pid), 0) == 0;

  if (json) {
    std::printf("{\"segment\":\"%s\",\"state\":\"%s\",\"generation\":%" PRIu64
                ",\"server_pid\":%" PRIu64
                ",\"server_alive\":%s,\"heartbeat_age_ms\":%" PRIu64
                ",\"epoch\":%" PRIu64 ",\"nshards\":%u,\"shards\":[",
                seg_path.c_str(), svc::state_name(state), h->generation,
                h->server_pid, pid_alive ? "true" : "false", hb_age_ms,
                h->epoch.load(std::memory_order_relaxed), h->nshards);
  } else {
    std::printf("== allocation service: %s\n", seg_path.c_str());
    std::printf("%-28s %s\n", "state", svc::state_name(state));
    std::printf("%-28s %" PRIu64 "\n", "generation", h->generation);
    std::printf("%-28s %" PRIu64 " (%s)\n", "server pid", h->server_pid,
                pid_alive ? "alive" : "GONE");
    std::printf("%-28s %" PRIu64 " ms\n", "heartbeat age", hb_age_ms);
    std::printf("%-28s %" PRIu64 "\n", "epoch",
                h->epoch.load(std::memory_order_relaxed));
    std::printf("\n== submission rings (%u shard%s, %u slots each)\n",
                h->nshards, h->nshards == 1 ? "" : "s", h->sub_ring_slots);
  }
  const svc::ShardEntry* entries = svc::shard_entries_of(base);
  for (unsigned s = 0; s < h->nshards; ++s) {
    const svc::SubRingHdr* ring = svc::sub_ring_of(base, s);
    const std::uint64_t enq = ring->enq_hint.load(std::memory_order_relaxed);
    const std::uint64_t deq = ring->deq_pos.load(std::memory_order_relaxed);
    const std::uint64_t depth = svc::sub_depth(ring);
    const double occ = 100.0 * static_cast<double>(depth) /
                       static_cast<double>(h->sub_ring_slots);
    if (json) {
      std::printf("%s{\"shard\":%u,\"heap_id\":%" PRIu64 ",\"depth\":%" PRIu64
                  ",\"occupancy_pct\":%.1f,\"enq\":%" PRIu64 ",\"deq\":%"
                  PRIu64 ",\"consumer_sleeping\":%u}",
                  s == 0 ? "" : ",", s, entries[s].heap_id, depth, occ, enq,
                  deq,
                  ring->consumer_sleeping.load(std::memory_order_relaxed));
    } else {
      std::printf("shard %-3u id=%016" PRIx64 " depth=%-4" PRIu64
                  " (%.1f%%) enq=%-8" PRIu64 " deq=%-8" PRIu64 " %s\n",
                  s, entries[s].heap_id, depth, occ, enq, deq,
                  ring->consumer_sleeping.load(std::memory_order_relaxed)
                      ? "consumer-sleeping"
                      : "consumer-spinning");
    }
  }
  if (json) {
    std::printf("],\"sessions\":[");
  } else {
    std::printf("\n== sessions (%u slots)\n", h->nsessions);
  }
  const svc::SessionSlot* sessions = svc::sessions_of(base);
  unsigned active = 0;
  bool first = true;
  for (unsigned i = 0; i < h->nsessions; ++i) {
    const svc::SessionSlot& ss = sessions[i];
    const std::uint32_t st = ss.state.load(std::memory_order_acquire);
    if (st == svc::kSessFree) continue;
    if (st == svc::kSessActive) ++active;
    const std::uint64_t cpl_backlog = svc::cpl_depth(&ss);
    const std::uint64_t shb = ss.heartbeat.load(std::memory_order_relaxed);
    const std::uint64_t shb_age_ms = now > shb ? (now - shb) / 1000000 : 0;
    const bool client_alive =
        ss.pid != 0 && ::kill(static_cast<pid_t>(ss.pid), 0) == 0;
    if (json) {
      std::printf("%s{\"session\":%u,\"state\":\"%s\",\"gen\":%u,\"pid\":%"
                  PRIu64 ",\"pid_alive\":%s,\"shard\":%u,\"ops\":%" PRIu64
                  ",\"phase\":%" PRIu64 ",\"cpl_backlog\":%" PRIu64
                  ",\"heartbeat_age_ms\":%" PRIu64 "}",
                  first ? "" : ",", i, sess_state_name(st), ss.gen, ss.pid,
                  client_alive ? "true" : "false", ss.preferred_shard,
                  ss.ops.load(std::memory_order_relaxed),
                  ss.phase.load(std::memory_order_relaxed), cpl_backlog,
                  shb_age_ms);
    } else {
      std::printf("session %-3u %-9s gen=%-4u pid=%-7" PRIu64
                  "%-6s shard=%-3u ops=%-8" PRIu64 " phase=%-3" PRIu64
                  " cpl-backlog=%-3" PRIu64 " hb-age=%" PRIu64 "ms\n",
                  i, sess_state_name(st), ss.gen, ss.pid,
                  client_alive ? "" : " (gone)", ss.preferred_shard,
                  ss.ops.load(std::memory_order_relaxed),
                  ss.phase.load(std::memory_order_relaxed), cpl_backlog,
                  shb_age_ms);
    }
    first = false;
  }
  const bool healthy = state == svc::SvcState::kServing && pid_alive;
  if (json) {
    std::printf("],\"sessions_active\":%u,\"healthy\":%s}\n", active,
                healthy ? "true" : "false");
  } else {
    std::printf("\n%u active session(s); service %s\n", active,
                healthy ? "healthy"
                        : state == svc::SvcState::kDraining ? "DRAINING"
                                                            : "DOWN");
  }
  return healthy ? 0 : 1;
}

std::string dir_of(const std::string& p) {
  const auto pos = p.find_last_of('/');
  return pos == std::string::npos ? std::string(".") : p.substr(0, pos);
}

// --snapshots: print a snapshot directory's MANIFEST.
int inspect_snapshots(const char* dir, bool json) {
  core::SnapshotManifest man;
  const std::string manifest = std::string(dir) + "/MANIFEST";
  try {
    man = core::read_snapshot_manifest(manifest);
  } catch (const std::exception& e) {
    std::fprintf(stderr, "%s: %s\n", manifest.c_str(), e.what());
    return 1;
  }
  if (json) {
    std::printf("{\"manifest\":\"%s\",\"kind\":\"%s\",\"set_id\":\"%016" PRIx64
                "\",\"epoch\":\"%016" PRIx64 "\",\"shard_count\":%u,"
                "\"shards\":[",
                manifest.c_str(), man.incremental ? "incremental" : "full",
                man.set_id, man.epoch, man.shard_count);
  } else {
    std::printf("== snapshot: %s\n", dir);
    std::printf("%-28s %s\n", "kind", man.incremental ? "incremental" : "full");
    std::printf("%-28s %016" PRIx64 "\n", "set id", man.set_id);
    std::printf("%-28s %016" PRIx64 "\n", "epoch", man.epoch);
    std::printf("%-28s %u (%zu imaged)\n", "shards", man.shard_count,
                man.shards.size());
  }
  bool all_present = true;
  for (std::size_t i = 0; i < man.shards.size(); ++i) {
    const core::ManifestShard& s = man.shards[i];
    const std::string file = std::string(dir) + "/" + s.file;
    struct stat st {};
    const bool present = ::stat(file.c_str(), &st) == 0 &&
                         static_cast<std::uint64_t>(st.st_size) == s.size;
    all_present = all_present && present;
    if (json) {
      std::printf("%s{\"index\":%u,\"file\":\"%s\",\"size\":%" PRIu64
                  ",\"present\":%s,\"pm_epoch\":\"%016" PRIx64
                  "\",\"pm_gen\":%" PRIu64 ",\"pages_copied\":%" PRIu64
                  ",\"head_csum\":\"%016" PRIx64 "\"}",
                  i == 0 ? "" : ",", s.index, s.file.c_str(), s.size,
                  present ? "true" : "false", s.pm_epoch, s.pm_gen,
                  s.pages_copied, s.head_csum);
    } else {
      std::printf("shard %-3u %-24s %10" PRIu64 " B  pages=%-8" PRIu64
                  " pm_gen=%-4" PRIu64 " %s\n",
                  s.index, s.file.c_str(), s.size, s.pages_copied, s.pm_gen,
                  present ? "" : "MISSING/TRUNCATED");
    }
  }
  if (json) {
    std::printf("],\"complete\":%s}\n", all_present ? "true" : "false");
  } else if (!all_present) {
    std::printf("snapshot INCOMPLETE: image files missing or truncated\n");
  }
  return all_present ? 0 : 1;
}

// --crashcheck-report: pretty-print a replay file saved by
// `torture --crashcheck` when the explorer found a violated crash state —
// what was lost, where in the heap it lived, and how to reproduce it.
int crashcheck_report(const char* replay_path, bool json) {
  crashcheck::ReplayFile rf;
  std::string err;
  if (!crashcheck::ReplayFile::load(replay_path, &rf, &err)) {
    std::fprintf(stderr, "%s\n", err.c_str());
    return 1;
  }
  auto segment_for = [&rf](std::uint32_t line) -> const char* {
    for (const auto& [l, name] : rf.segments) {
      if (l == line) return name.c_str();
    }
    return "";
  };
  if (json) {
    std::printf("{\"replay\":\"%s\",\"family\":\"%s\",\"variant\":%d,"
                "\"seed\":%" PRIu64 ",\"sabotage\":%" PRIu64
                ",\"label\":\"%s\",\"instant\":%zu,\"lost\":[",
                replay_path, rf.family.c_str(), rf.variant, rf.seed,
                rf.sabotage, rf.label.c_str(), rf.instant);
    for (std::size_t i = 0; i < rf.lost.size(); ++i) {
      std::printf("%s{\"line\":%u,\"segment\":\"%s\"}", i == 0 ? "" : ",",
                  rf.lost[i], segment_for(rf.lost[i]));
    }
    std::printf("],\"why\":\"%s\"}\n", rf.why.c_str());
  } else {
    std::printf("== crashcheck replay: %s\n", replay_path);
    std::printf("%-28s %s/%d\n", "op family", rf.family.c_str(), rf.variant);
    std::printf("%-28s %" PRIu64 "\n", "seed", rf.seed);
    if (rf.sabotage != 0) {
      std::printf("%-28s persist #%" PRIu64 " elided\n", "sabotage",
                  rf.sabotage);
    }
    std::printf("%-28s event %zu\n", "crash instant", rf.instant);
    std::printf("%-28s %zu cache line(s)\n", "lost lines", rf.lost.size());
    for (const std::uint32_t l : rf.lost) {
      std::printf("  line %-8u offset 0x%-8x %s\n", l, l * 64u,
                  segment_for(l));
    }
    if (!rf.why.empty()) std::printf("%-28s %s\n", "violation", rf.why.c_str());
    std::printf("reproduce: torture --crashcheck --seed %" PRIu64
                " --replay %s\n",
                rf.seed, replay_path);
  }
  return 0;
}

// --diff: page-level comparison of two snapshots of the same shard set.
int diff_snapshots(const char* man_a_path, const char* man_b_path, bool json) {
  core::SnapshotManifest a, b;
  try {
    a = core::read_snapshot_manifest(man_a_path);
    b = core::read_snapshot_manifest(man_b_path);
  } catch (const std::exception& e) {
    std::fprintf(stderr, "diff: %s\n", e.what());
    return 2;
  }
  if (a.set_id != b.set_id || a.epoch != b.epoch) {
    std::fprintf(stderr,
                 "diff: snapshots describe different heaps (set %016" PRIx64
                 "/%016" PRIx64 " vs %016" PRIx64 "/%016" PRIx64 ")\n",
                 a.set_id, a.epoch, b.set_id, b.epoch);
    return 2;
  }
  const std::string dir_a = dir_of(man_a_path);
  const std::string dir_b = dir_of(man_b_path);
  enum Region { kSuper, kMeta, kHash, kCacheLog, kFlight, kUser, kRegions };
  static const char* const region_names[kRegions] = {
      "superblock", "subheap-meta", "hash-tables",
      "cache-logs", "flight-rings", "user-data"};
  std::uint64_t region_pages[kRegions] = {};
  std::vector<std::uint64_t> user_pages_by_subheap;
  std::uint64_t dirty_pages = 0, dirty_bytes = 0, total_pages = 0;
  bool shape_mismatch = false;

  if (json) std::printf("{\"shards\":[");
  bool first_shard = true;
  for (const core::ManifestShard& sa : a.shards) {
    const core::ManifestShard* sb = nullptr;
    for (const core::ManifestShard& s : b.shards) {
      if (s.index == sa.index) sb = &s;
    }
    if (sb == nullptr || sb->size != sa.size) {
      shape_mismatch = true;
      continue;
    }
    const std::string fa = dir_a + "/" + sa.file;
    const std::string fb = dir_b + "/" + sb->file;
    const int fda = ::open(fa.c_str(), O_RDONLY);
    const int fdb = ::open(fb.c_str(), O_RDONLY);
    if (fda < 0 || fdb < 0) {
      std::fprintf(stderr, "diff: cannot open %s\n",
                   (fda < 0 ? fa : fb).c_str());
      if (fda >= 0) ::close(fda);
      if (fdb >= 0) ::close(fdb);
      return 2;
    }
    // Region map from image A's superblock (identical on both sides by
    // set-id match; geometry is immutable after create).
    alignas(8) char page0[core::kPageSize];
    if (::pread(fda, page0, sizeof page0, 0) !=
        static_cast<ssize_t>(sizeof page0)) {
      std::fprintf(stderr, "diff: short read on %s\n", fa.c_str());
      ::close(fda);
      ::close(fdb);
      return 2;
    }
    const auto* sbk = reinterpret_cast<const core::SuperBlock*>(page0);
    if (user_pages_by_subheap.size() < sbk->nsubheaps) {
      user_pages_by_subheap.resize(sbk->nsubheaps, 0);
    }
    std::uint64_t shard_dirty = 0;
    const std::size_t kChunk = 1u << 20;
    std::vector<char> buf_a(kChunk), buf_b(kChunk);
    for (std::uint64_t off = 0; off < sa.size; off += kChunk) {
      const std::size_t want = static_cast<std::size_t>(
          std::min<std::uint64_t>(kChunk, sa.size - off));
      if (::pread(fda, buf_a.data(), want, static_cast<off_t>(off)) !=
              static_cast<ssize_t>(want) ||
          ::pread(fdb, buf_b.data(), want, static_cast<off_t>(off)) !=
              static_cast<ssize_t>(want)) {
        std::fprintf(stderr, "diff: short read at %" PRIu64 "\n", off);
        ::close(fda);
        ::close(fdb);
        return 2;
      }
      for (std::size_t p = 0; p < want; p += core::kPageSize) {
        ++total_pages;
        const std::size_t len =
            std::min<std::size_t>(core::kPageSize, want - p);
        if (std::memcmp(buf_a.data() + p, buf_b.data() + p, len) == 0) {
          continue;
        }
        ++dirty_pages;
        ++shard_dirty;
        dirty_bytes += len;
        const std::uint64_t byte_off = off + p;
        if (byte_off < sbk->subheap_meta_off) {
          ++region_pages[kSuper];
        } else if (byte_off < sbk->hash_region_off) {
          ++region_pages[kMeta];
        } else if (byte_off < sbk->cache_log_off) {
          ++region_pages[kHash];
        } else if (byte_off < sbk->flight_off) {
          ++region_pages[kCacheLog];
        } else if (byte_off < sbk->user_region_off) {
          ++region_pages[kFlight];
        } else {
          ++region_pages[kUser];
          const std::uint64_t sub =
              (byte_off - sbk->user_region_off) / sbk->user_size;
          if (sub < user_pages_by_subheap.size()) {
            ++user_pages_by_subheap[sub];
          }
        }
      }
    }
    ::close(fda);
    ::close(fdb);
    if (json) {
      std::printf("%s{\"index\":%u,\"file\":\"%s\",\"dirty_pages\":%" PRIu64
                  "}",
                  first_shard ? "" : ",", sa.index, sa.file.c_str(),
                  shard_dirty);
    } else {
      std::printf("shard %-3u %-24s %8" PRIu64 " differing page(s)\n",
                  sa.index, sa.file.c_str(), shard_dirty);
    }
    first_shard = false;
  }
  if (json) {
    std::printf("],\"total_pages\":%" PRIu64 ",\"dirty_pages\":%" PRIu64
                ",\"dirty_bytes\":%" PRIu64 ",\"regions\":{",
                total_pages, dirty_pages, dirty_bytes);
    for (unsigned r = 0; r < kRegions; ++r) {
      std::printf("%s\"%s\":%" PRIu64, r == 0 ? "" : ",", region_names[r],
                  region_pages[r]);
    }
    std::printf("},\"user_pages_by_subheap\":[");
    for (std::size_t i = 0; i < user_pages_by_subheap.size(); ++i) {
      std::printf("%s%" PRIu64, i == 0 ? "" : ",", user_pages_by_subheap[i]);
    }
    std::printf("],\"shard_shape_mismatch\":%s}\n",
                shape_mismatch ? "true" : "false");
  } else {
    std::printf("\n%" PRIu64 " / %" PRIu64 " page(s) differ (%" PRIu64
                " B)\n",
                dirty_pages, total_pages, dirty_bytes);
    for (unsigned r = 0; r < kRegions; ++r) {
      if (region_pages[r] != 0) {
        std::printf("  %-14s %" PRIu64 " page(s)\n", region_names[r],
                    region_pages[r]);
      }
    }
    for (std::size_t i = 0; i < user_pages_by_subheap.size(); ++i) {
      if (user_pages_by_subheap[i] != 0) {
        std::printf("  user sub-heap %-3zu %" PRIu64 " page(s)\n", i,
                    user_pages_by_subheap[i]);
      }
    }
    if (shape_mismatch) {
      std::printf("warning: shard inventories disagree (shards added/"
                  "resized between the snapshots)\n");
    }
  }
  return (dirty_pages == 0 && !shape_mismatch) ? 0 : 1;
}

}  // namespace

int main(int argc, char** argv) {
  bool json_only = false;
  bool run_fsck = false;
  bool topology = false;
  bool svc_mode = false;
  bool snapshots_mode = false;
  bool diff_mode = false;
  bool crashcheck_mode = false;
  const char* path = nullptr;
  const char* path2 = nullptr;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--json") == 0) {
      json_only = true;
    } else if (std::strcmp(argv[i], "--fsck") == 0) {
      run_fsck = true;
    } else if (std::strcmp(argv[i], "--topology") == 0) {
      topology = true;
    } else if (std::strcmp(argv[i], "--svc") == 0) {
      svc_mode = true;
    } else if (std::strcmp(argv[i], "--snapshots") == 0) {
      snapshots_mode = true;
    } else if (std::strcmp(argv[i], "--diff") == 0) {
      diff_mode = true;
    } else if (std::strcmp(argv[i], "--crashcheck-report") == 0) {
      crashcheck_mode = true;
    } else if (path == nullptr) {
      path = argv[i];
    } else if (path2 == nullptr && diff_mode) {
      path2 = argv[i];
    } else {
      path = nullptr;
      break;
    }
  }
  if (path == nullptr || (diff_mode && path2 == nullptr)) {
    std::fprintf(stderr,
                 "usage: %s [--json] [--fsck] [--topology] [--svc] "
                 "<heap-file>\n"
                 "       %s [--json] --snapshots <snapshot-dir>\n"
                 "       %s [--json] --diff <MANIFEST-a> <MANIFEST-b>\n"
                 "       %s [--json] --crashcheck-report <replay-file>\n",
                 argv[0], argv[0], argv[0], argv[0]);
    return 2;
  }
  if (crashcheck_mode) return crashcheck_report(path, json_only);
  if (diff_mode) return diff_snapshots(path, path2, json_only);
  if (snapshots_mode) return inspect_snapshots(path, json_only);
  if (svc_mode) return inspect_svc(path, json_only);
  if (!pmem::Pool::exists(path)) {
    std::fprintf(stderr, "%s: no such file\n", path);
    return 1;
  }

  // Read-only by default: no lock, no recovery, no mutation — safe beside
  // a live writer.  --fsck needs to repair, so only then open read-write
  // (which runs recovery first, exactly like an application restart).
  core::Options opts;
  opts.protect = mpk::ProtectMode::kNone;
  opts.read_only = !run_fsck;
  std::unique_ptr<Heap> heap;
  try {
    heap = Heap::open(path, opts);
  } catch (const Error& e) {
    if (e.poseidon_code() == ErrorCode::kHeapBusy) {
      std::fprintf(stderr,
                   "%s: %s\n"
                   "another process owns this heap; inspect it without "
                   "--fsck (read-only), or stop the owner first\n",
                   path, e.what());
      return 1;
    }
    std::fprintf(stderr, "%s: %s\n", path, e.what());
    return 1;
  } catch (const std::exception& e) {
    std::fprintf(stderr, "%s: %s\n", path, e.what());
    return 1;
  }

  if (topology) {
    // Node → shard → sub-heap map with per-shard occupancy and quarantine
    // state; exit 0 only when every shard slot is in service.
    unsigned dead = 0;
    if (json_only) {
      std::printf("{\"path\":\"%s\",\"nshards\":%u,\"shards\":[", path,
                  heap->shard_count());
    } else {
      std::printf("== shard topology: %s (%u shard%s)\n", path,
                  heap->shard_count(), heap->shard_count() == 1 ? "" : "s");
    }
    for (unsigned i = 0; i < heap->shard_count(); ++i) {
      const core::PoolShard* sh = heap->shard(i);
      if (json_only && i != 0) std::printf(",");
      if (sh == nullptr) {
        ++dead;
        if (json_only) {
          std::printf("{\"index\":%u,\"node\":%u,\"path\":\"%s\","
                      "\"quarantined\":true}",
                      i, heap->shard_node(i), heap->shard_path(i).c_str());
        } else {
          std::printf("node %-3u shard %-3u %s: QUARANTINED (failed to "
                      "open)\n",
                      heap->shard_node(i), i, heap->shard_path(i).c_str());
        }
        continue;
      }
      const auto ss = sh->stats();
      unsigned ready = 0, repairing = 0, quarantined = 0;
      for (unsigned s = 0; s < sh->nsubheaps(); ++s) {
        switch (sh->subheap_health(s)) {
          case core::SubheapHealth::kReady: ++ready; break;
          case core::SubheapHealth::kRepairing: ++repairing; break;
          case core::SubheapHealth::kQuarantined: ++quarantined; break;
          case core::SubheapHealth::kAbsent: break;
        }
      }
      if (json_only) {
        std::printf("{\"index\":%u,\"node\":%u,\"path\":\"%s\","
                    "\"quarantined\":false,\"id\":%" PRIu64
                    ",\"nsubheaps\":%u,\"subheaps_ready\":%u,"
                    "\"subheaps_repairing\":%u,\"subheaps_quarantined\":%u,"
                    "\"live_blocks\":%" PRIu64 ",\"free_blocks\":%" PRIu64
                    ",\"allocated_bytes\":%" PRIu64 "}",
                    i, heap->shard_node(i), sh->path().c_str(), sh->heap_id(),
                    sh->nsubheaps(), ready, repairing, quarantined,
                    ss.live_blocks, ss.free_blocks, ss.allocated_bytes);
      } else {
        std::printf("node %-3u shard %-3u %s: id=%016" PRIx64
                    " sub-heaps=%u (ready=%u repairing=%u quarantined=%u) "
                    "live=%" PRIu64 " free=%" PRIu64 " allocated=%" PRIu64
                    " B\n",
                    heap->shard_node(i), i, sh->path().c_str(), sh->heap_id(),
                    sh->nsubheaps(), ready, repairing, quarantined,
                    ss.live_blocks, ss.free_blocks, ss.allocated_bytes);
      }
    }
    if (json_only) {
      std::printf("],\"shards_quarantined\":%u}\n", dead);
    } else if (dead > 0) {
      std::printf("%u shard slot(s) quarantined — degraded service\n", dead);
    }
    return dead == 0 ? 0 : 1;
  }

  if (json_only) {
    // The full observability export: registry counters, histograms,
    // size-class occupancy and the flight recorder (including any
    // post-mortem events recovered from a persistent ring).
    std::printf("%s\n", obs::Exporter(*heap).json().c_str());
    return 0;
  }

  std::printf("== poseidon heap: %s\n", path);
  std::printf("%-28s %016" PRIx64 "\n", "heap id", heap->heap_id());
  std::printf("%-28s %u\n", "sub-heaps", heap->nsubheaps());
  print_size("user capacity", heap->user_capacity());
  const auto [meta, meta_len] = heap->metadata_region();
  (void)meta;
  print_size("metadata region", meta_len);
  print_size("file bytes actually backed", heap->file_allocated_bytes());
  std::printf("%-28s %s\n", "root object",
              heap->root().is_null() ? "(unset)" : "set");
  // Owner record (layout v6).  In read-only mode a stamped owner is most
  // often a live writer; after a crash it is the incarnation that died.
  const core::OwnerRecord owner = heap->shard(0)->owner();
  if (owner.pid == 0) {
    std::printf("%-28s none (clean close)\n", "owner");
  } else {
    std::printf("%-28s pid %" PRIu64 " (boot %016" PRIx64 ", heartbeat %"
                PRIu64 ")%s\n",
                "owner", owner.pid, owner.boot_id, owner.heartbeat,
                run_fsck ? " [this process]" : "");
  }

  const auto s = heap->stats();
  std::printf("\n== occupancy\n");
  std::printf("%-28s %" PRIu64 "\n", "live blocks", s.live_blocks);
  std::printf("%-28s %" PRIu64 "\n", "free blocks", s.free_blocks);
  print_size("allocated bytes", s.allocated_bytes);
  std::printf("%-28s %u / %u\n", "sub-heaps materialized",
              s.subheaps_materialized, s.nsubheaps);
  if (s.subheaps_quarantined > 0) {
    std::printf("%-28s %u  (degraded service)\n", "sub-heaps quarantined",
                s.subheaps_quarantined);
  }

  std::printf("\n== mechanism counters\n");
  std::printf("%-28s %" PRIu64 "\n", "buddy splits", s.splits);
  std::printf("%-28s %" PRIu64 "\n", "defrag merges", s.merges);
  std::printf("%-28s %" PRIu64 "\n", "hash-pressure merges",
              s.window_merges);
  std::printf("%-28s %" PRIu64 "\n", "hash level extensions",
              s.hash_extensions);
  std::printf("%-28s %" PRIu64 "\n", "hash levels punched back",
              s.hash_shrinks);

  // A persistent flight ring survives the previous session's crash; the
  // inspector is exactly where those last-gasp events matter.
  const auto& post = heap->flight_postmortem();
  if (!post.empty()) {
    std::printf("\n== flight recorder (previous session, %zu events)\n",
                post.size());
    const std::size_t first = post.size() > 8 ? post.size() - 8 : 0;
    for (std::size_t i = first; i < post.size(); ++i) {
      const auto& e = post[i];
      std::printf("  seq=%-8" PRIu64 " %-11s subheap=%-3u class=%-2u "
                  "arg=0x%" PRIx64 "\n",
                  e.seq, obs::op_name(static_cast<obs::FlightOp>(e.op)),
                  e.subheap, e.size_class, e.arg);
    }
  }

  if (run_fsck) {
    std::printf("\n== fsck (scavenge repair)\n");
    const auto rep = heap->fsck();
    std::printf("%-28s %u\n", "sub-heaps checked", rep.checked);
    std::printf("%-28s %u\n", "clean", rep.clean);
    std::printf("%-28s %u\n", "repaired", rep.repaired);
    std::printf("%-28s %u\n", "quarantined", rep.quarantined);
    std::printf("%-28s %" PRIu64 "\n", "records dropped",
                rep.records_dropped);
    std::printf("%-28s %" PRIu64 "\n", "records synthesized",
                rep.records_synthesized);
  }

  std::printf("\n== consistency\n");
  const unsigned quarantined = heap->stats().subheaps_quarantined;
  std::string why;
  const bool invariants_ok = heap->check_invariants(&why);
  if (!run_fsck) {
    // Read-only: the pre-recovery state of a live or crashed heap is
    // allowed to look inconsistent (pending logs, mid-operation metadata);
    // report, but only a failed open is a failed inspection.
    if (!invariants_ok) {
      std::printf("invariants do not hold pre-recovery: %s\n"
                  "(expected on a live or crashed heap; a read-write open "
                  "runs recovery)\n",
                  why.c_str());
    } else if (quarantined > 0) {
      std::printf("structural invariants hold, but %u sub-heap(s) are "
                  "quarantined (try --fsck)\n", quarantined);
    } else {
      std::printf("all structural invariants hold\n");
    }
    return 0;
  }
  if (!invariants_ok) {
    std::printf("INVARIANT VIOLATION: %s\n", why.c_str());
    return 1;
  }
  if (quarantined > 0) {
    std::printf("structural invariants hold, but %u sub-heap(s) remain "
                "quarantined\n", quarantined);
    return 1;
  }
  std::printf("all structural invariants hold\n");
  return 0;
}
