/* fig5_api.c — the paper's Fig. 5 interface exercised from plain C99,
 * proving core/c_api.h is a genuine C header (the paper implements
 * Poseidon in C; applications written in C link against exactly this).
 *
 *   $ ./fig5_api
 *   stored and recovered 'written from plain C'; tx pair committed; ok
 */
#include <assert.h>
#include <stdio.h>
#include <string.h>
#include <unistd.h>

#include "core/c_api.h"

int main(void) {
  const char *path = "/dev/shm/fig5_api.heap";
  unlink(path);

  heap_t *heap = poseidon_init(path, 8u << 20);
  if (heap == NULL) {
    fprintf(stderr, "poseidon_init failed\n");
    return 1;
  }

  /* Singleton allocation + root anchoring. */
  nvmptr_t p = poseidon_alloc(heap, 128);
  assert(!nvmptr_is_null(p));
  char *raw = (char *)poseidon_get_rawptr(p);
  strcpy(raw, "written from plain C");
  poseidon_set_root(heap, p);

  /* Pointer conversion round trip. */
  nvmptr_t back = poseidon_get_nvmptr(raw);
  assert(back.heap_id == p.heap_id && back.packed == p.packed);

  /* Simulate a restart: close and re-open the same pool. */
  poseidon_finish(heap);
  heap = poseidon_init(path, 8u << 20);
  assert(heap != NULL);
  nvmptr_t root = poseidon_get_root(heap);
  assert(!nvmptr_is_null(root));
  const char *recovered = (const char *)poseidon_get_rawptr(root);
  assert(strcmp(recovered, "written from plain C") == 0);

  /* Transactional pair, then validated frees. */
  nvmptr_t a = poseidon_tx_alloc(heap, 64, false);
  nvmptr_t b = poseidon_tx_alloc(heap, 64, true);
  assert(!nvmptr_is_null(a) && !nvmptr_is_null(b));
  assert(poseidon_free(heap, a) == 0);
  assert(poseidon_free(heap, a) != 0); /* double free rejected */
  assert(poseidon_free(heap, b) == 0);
  assert(poseidon_free(heap, root) == 0);

  printf("stored and recovered '%s'; tx pair committed; ok\n", recovered);
  poseidon_finish(heap);
  unlink(path);
  return 0;
}
