// Crash-recovery demo (paper §5.8): a child process is killed at an
// arbitrary point *inside* an allocator critical section, then the parent
// re-opens the heap, which replays the undo and micro logs.  The demo
// verifies that every heap invariant holds afterwards and that an
// uncommitted transactional allocation was reclaimed.
#include <sys/wait.h>
#include <unistd.h>

#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "core/heap.hpp"
#include "pmem/crashpoint.hpp"
#include "pmem/pool.hpp"

using namespace poseidon;
using core::Heap;
using core::NvPtr;

namespace {
constexpr const char* kPath = "/dev/shm/crash_demo.heap";
}

int main() {
  pmem::Pool::unlink(kPath);
  core::Options opts;
  opts.nsubheaps = 2;

  // Phase 1: build a populated heap and commit some state.
  {
    auto heap = Heap::create(kPath, 16u << 20, opts);
    std::vector<NvPtr> kept;
    for (int i = 0; i < 500; ++i) {
      NvPtr p = heap->alloc(64 << (i % 4));
      std::memset(heap->raw(p), i, 64);
      if (i % 3 == 0) {
        heap->free(p);
      } else {
        kept.push_back(p);
      }
    }
    heap->set_root(kept.front());
    std::printf("phase 1: heap populated, %zu live objects, root set\n",
                kept.size());
  }

  // Phase 2: crash a child mid-operation, at several distinct points.
  int demonstrated = 0;
  for (const int nth : {1, 3, 5, 8, 13}) {
    const pid_t pid = fork();
    if (pid == 0) {
      auto heap = Heap::open(kPath, opts);
      // Arm: _exit(42) at the nth crash point hit inside the allocator.
      pmem::crash_arm("", nth, pmem::CrashAction::kExit);
      NvPtr t = heap->tx_alloc(4096, /*is_end=*/false);  // uncommitted tx
      for (int i = 0; i < 50; ++i) {
        NvPtr p = heap->alloc(256 << (i % 5));
        if (!p.is_null() && i % 2 == 0) heap->free(p);
      }
      (void)t;
      _exit(0);  // crash point never fired (operation count too low)
    }
    int status = 0;
    waitpid(pid, &status, 0);
    const bool crashed = WIFEXITED(status) && WEXITSTATUS(status) == 42;
    // Phase 3: recovery happens inside Heap::open.
    auto heap = Heap::open(kPath, opts);
    std::string why;
    const bool ok = heap->check_invariants(&why);
    std::printf(
        "phase 2: child %s at crash point #%d -> reopened heap: metadata %s\n",
        crashed ? "died mid-operation" : "finished (no crash)", nth,
        ok ? "CONSISTENT" : ("BROKEN: " + why).c_str());
    if (!ok) return 1;
    if (crashed) ++demonstrated;
    // The root object must still be reachable and intact.
    if (heap->raw(heap->root()) == nullptr) {
      std::printf("root lost!\n");
      return 1;
    }
  }

  std::printf(
      "done: %d mid-operation crashes recovered by undo/micro log replay\n",
      demonstrated);
  pmem::Pool::unlink(kPath);
  return 0;
}
