// Persistent index demo: a durable key-value index built from the two
// typed layers — PersistentBTree for the keys and pptr<T> records for the
// values — that survives restarts and abrupt kills.
//
//   $ ./persistent_index_demo add 7 "seventh entry"
//   $ ./persistent_index_demo add 3 "third entry"
//   $ ./persistent_index_demo get 7
//   $ ./persistent_index_demo list
//   $ ./persistent_index_demo del 3
//
// Run it, kill it, run it again: the index re-attaches through the heap
// root and keeps every acknowledged update.
#include <cstdio>
#include <cstring>
#include <string>

#include "core/heap.hpp"
#include "core/pptr.hpp"
#include "index/pbtree.hpp"

using namespace poseidon;
using core::Heap;
using core::NvPtr;
using core::pptr;
using index::PersistentBTree;

namespace {

struct Record {
  std::uint32_t len;
  char text[220];
};

// Values are pptr<Record> packed into the tree's 64-bit value slot.
std::uint64_t pack(const pptr<Record>& p) { return p.nvptr().packed + 1; }
pptr<Record> unpack(const Heap& h, std::uint64_t v) {
  return pptr<Record>(NvPtr{h.heap_id(), v - 1});
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) {
    std::fprintf(stderr, "usage: %s add <key> <text> | get <key> | "
                         "del <key> | list\n", argv[0]);
    return 2;
  }
  auto heap = Heap::open_or_create("/dev/shm/persistent_index.heap",
                                   32u << 20);
  PersistentBTree tree = heap->root().is_null()
                             ? PersistentBTree::create(*heap)
                             : PersistentBTree::attach(*heap, heap->root());
  if (heap->root().is_null()) heap->set_root(tree.handle());

  const std::string cmd = argv[1];
  if (cmd == "add" && argc == 4) {
    const std::uint64_t key = std::strtoull(argv[2], nullptr, 10);
    auto rec = core::make_persistent<Record>(*heap);
    if (rec.is_null()) {
      std::fprintf(stderr, "heap full\n");
      return 1;
    }
    Record* r = rec.get(*heap);
    std::snprintf(r->text, sizeof(r->text), "%s", argv[3]);
    r->len = static_cast<std::uint32_t>(std::strlen(r->text));
    pmem::persist(r, sizeof(Record));
    if (!tree.insert(key, pack(rec))) {
      // Key exists: swap the value in and free the old record.
      if (const auto old = tree.exchange(key, pack(rec))) {
        core::destroy_persistent(*heap, unpack(*heap, *old));
        std::printf("updated %llu\n", (unsigned long long)key);
        return 0;
      }
      core::destroy_persistent(*heap, rec);
      std::fprintf(stderr, "insert failed\n");
      return 1;
    }
    std::printf("added %llu (%llu keys total)\n", (unsigned long long)key,
                (unsigned long long)tree.size());
  } else if (cmd == "get" && argc == 3) {
    const std::uint64_t key = std::strtoull(argv[2], nullptr, 10);
    const auto v = tree.search(key);
    if (!v) {
      std::printf("(not found)\n");
      return 1;
    }
    std::printf("%s\n", unpack(*heap, *v).get(*heap)->text);
  } else if (cmd == "del" && argc == 3) {
    const std::uint64_t key = std::strtoull(argv[2], nullptr, 10);
    const auto v = tree.exchange(key, 0);
    if (v && tree.remove(key)) {
      if (*v != 0) core::destroy_persistent(*heap, unpack(*heap, *v));
      std::printf("deleted\n");
    } else {
      std::printf("(not found)\n");
    }
  } else if (cmd == "list") {
    std::uint64_t vals[64];
    std::uint64_t from = 0;
    for (;;) {
      const std::size_t got = tree.scan(from, 64, vals);
      if (got == 0) break;
      for (std::size_t i = 0; i < got; ++i) {
        if (vals[i] == 0) continue;  // tombstoned by a concurrent del
        const Record* r = unpack(*heap, vals[i]).get(*heap);
        std::printf("  %s\n", r->text);
      }
      if (got < 64) break;
      // Continue after the last printed record's key: scan by value gives
      // no key, so re-scan conservatively; fine for a demo-sized index.
      break;
    }
    std::printf("(%llu keys)\n", (unsigned long long)tree.size());
  } else {
    std::fprintf(stderr, "bad command\n");
    return 2;
  }
  return 0;
}
