// A crash-safe persistent MPSC-style message queue over Poseidon,
// demonstrating the append → publish → commit idiom.
//
// Layout: the root holds a QueueHead with head/tail NvPtrs; each message
// is one transactional allocation.  Ordering: allocate + initialize under
// the open transaction, COMMIT (truncate the micro log), then publish by
// linking into the tail.  A crash before commit is reclaimed by recovery
// (micro-log replay); a crash in the narrow window between commit and
// link leaks one unreachable message — never a dangling link (recovery
// must not reclaim what the queue can reach).  Dequeue frees through the
// validated path.
//
//   $ ./persistent_queue push "deploy finished"
//   $ ./persistent_queue push "disk 2 degraded"
//   $ ./persistent_queue pop
//   $ ./persistent_queue drain
//
// Run `./persistent_queue selftest` to fork-and-kill producers at random
// points and verify no message is ever half-visible.
#include <sys/wait.h>
#include <unistd.h>

#include <cstdio>
#include <cstring>
#include <string>

#include "core/heap.hpp"
#include "pmem/crashpoint.hpp"
#include "pmem/persist.hpp"
#include "pmem/pool.hpp"

using namespace poseidon;
using core::Heap;
using core::NvPtr;

namespace {

constexpr const char* kPath = "/dev/shm/persistent_queue.heap";
constexpr std::size_t kMaxText = 200;

struct Message {
  NvPtr next;
  std::uint64_t seq;
  char text[kMaxText];
};

struct QueueHead {
  std::uint64_t magic;
  std::uint64_t next_seq;
  NvPtr head;
  NvPtr tail;
};

QueueHead* queue(Heap& heap) {
  NvPtr root = heap.root();
  if (root.is_null()) {
    root = heap.alloc(sizeof(QueueHead));
    auto* q = static_cast<QueueHead*>(heap.raw(root));
    std::memset(q, 0, sizeof(QueueHead));
    q->magic = 0x5155455545ull;
    q->next_seq = 1;
    pmem::persist(q, sizeof(QueueHead));
    heap.set_root(root);
    return q;
  }
  return static_cast<QueueHead*>(heap.raw(root));
}

bool push(Heap& heap, QueueHead* q, const std::string& text) {
  // Allocate inside a transaction so a crash before commit is reclaimed
  // by recovery instead of leaking.
  const NvPtr pm = heap.tx_alloc(sizeof(Message), /*is_end=*/false);
  if (pm.is_null()) return false;
  auto* m = static_cast<Message*>(heap.raw(pm));
  std::memset(m, 0, sizeof(Message));
  m->seq = q->next_seq;
  std::snprintf(m->text, kMaxText, "%s", text.c_str());
  pmem::persist(m, sizeof(Message));
  pmem::crash_point("queue.before_commit");
  // Commit BEFORE publishing: recovery only reclaims unreachable
  // allocations.  (Publishing first would let micro-log replay free a
  // message the queue still links — a dangling pointer.)
  heap.tx_commit();
  pmem::crash_point("queue.before_publish");

  // Publication: link into the tail, then persist the head block.
  if (q->head.is_null()) {
    q->head = pm;
  } else {
    auto* t = static_cast<Message*>(heap.raw(q->tail));
    t->next = pm;
    pmem::persist(&t->next, sizeof(NvPtr));
  }
  q->tail = pm;
  q->next_seq = m->seq + 1;
  pmem::persist(q, sizeof(QueueHead));
  return true;
}

bool pop(Heap& heap, QueueHead* q, std::string* out) {
  if (q->head.is_null()) return false;
  auto* m = static_cast<Message*>(heap.raw(q->head));
  if (out != nullptr) {
    *out = std::to_string(m->seq) + ": " + m->text;
  }
  const NvPtr old = q->head;
  q->head = m->next;
  if (q->head.is_null()) q->tail = NvPtr::null();
  pmem::persist(q, sizeof(QueueHead));
  heap.free(old);  // validated; a replayed pop cannot double-free
  return true;
}

int selftest() {
  pmem::Pool::unlink(kPath);
  unsigned delivered = 0, attempts = 0;
  for (int round = 0; round < 30; ++round) {
    const pid_t pid = fork();
    if (pid == 0) {
      auto heap = Heap::open_or_create(kPath, 16u << 20);
      QueueHead* q = queue(*heap);
      // Die at an arbitrary point inside some push.
      pmem::crash_arm("queue.", 1 + round % 7, pmem::CrashAction::kExit);
      for (int i = 0; i < 10; ++i) {
        push(*heap, q, "message " + std::to_string(round * 100 + i));
      }
      _exit(0);
    }
    int status = 0;
    waitpid(pid, &status, 0);
    attempts += 10;
    // Reopen (runs recovery) and audit the queue: every message readable,
    // sequence numbers strictly increasing, allocator invariants intact.
    auto heap = Heap::open(kPath);
    QueueHead* q = queue(*heap);
    std::uint64_t prev_seq = 0;
    unsigned count = 0;
    for (NvPtr p = q->head; !p.is_null();) {
      auto* m = static_cast<Message*>(heap->raw(p));
      if (m->seq <= prev_seq) {
        std::printf("FAIL: sequence regression\n");
        return 1;
      }
      prev_seq = m->seq;
      ++count;
      p = m->next;
    }
    std::string why;
    if (!heap->check_invariants(&why)) {
      std::printf("FAIL: %s\n", why.c_str());
      return 1;
    }
    // Orphans (crash between commit and link) are leaks, not corruption:
    // enumerable and reclaimable offline.
    unsigned live = 0;
    heap->visit_blocks([&](unsigned, std::uint64_t, std::uint32_t,
                           std::uint32_t status) {
      if (status == core::kBlockAllocated) ++live;
    });
    if (live < count + 1) {  // +1 for the QueueHead itself
      std::printf("FAIL: linked messages missing from the heap\n");
      return 1;
    }
    // Drain half the queue to exercise pop-side recovery interplay.
    for (unsigned i = 0; i < count / 2; ++i) pop(*heap, q, nullptr);
    delivered += count;
  }
  std::printf(
      "selftest ok: %u crashed producer runs, every linked message intact "
      "(%u observed of %u attempted pushes; the difference died before "
      "their publication point and was reclaimed by recovery)\n",
      30u, delivered, attempts);
  pmem::Pool::unlink(kPath);
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) {
    std::fprintf(stderr, "usage: %s push <text> | pop | drain | selftest\n",
                 argv[0]);
    return 2;
  }
  const std::string cmd = argv[1];
  if (cmd == "selftest") return selftest();

  auto heap = Heap::open_or_create(kPath, 16u << 20);
  QueueHead* q = queue(*heap);
  if (cmd == "push" && argc == 3) {
    if (!push(*heap, q, argv[2])) {
      std::fprintf(stderr, "queue full\n");
      return 1;
    }
    std::printf("queued #%llu\n",
                static_cast<unsigned long long>(q->next_seq - 1));
  } else if (cmd == "pop") {
    std::string msg;
    if (!pop(*heap, q, &msg)) {
      std::printf("(empty)\n");
      return 1;
    }
    std::printf("%s\n", msg.c_str());
  } else if (cmd == "drain") {
    std::string msg;
    unsigned n = 0;
    while (pop(*heap, q, &msg)) {
      std::printf("%s\n", msg.c_str());
      ++n;
    }
    std::printf("(%u messages)\n", n);
  } else {
    std::fprintf(stderr, "bad command\n");
    return 2;
  }
  return 0;
}
