// Quickstart: the paper's Fig. 5 C API end to end.
//
//   $ ./quickstart            # first run: creates the heap, stores data
//   $ ./quickstart            # second run: recovers the data via the root
//
// A persistent linked list of greetings is built from poseidon_alloc'd
// nodes, anchored at the heap root, and survives process restarts.
#include <cstdio>
#include <cstring>

#include "core/c_api.h"

// A persistent node: the next pointer is a 16-byte nvmptr_t, valid across
// restarts regardless of where the pool maps.
struct Node {
  nvmptr_t next;
  char text[48];
};

int main() {
  heap_t* heap = poseidon_init("/dev/shm/quickstart.heap", 16u << 20);
  if (heap == nullptr) {
    std::fprintf(stderr, "failed to open heap\n");
    return 1;
  }

  nvmptr_t root = poseidon_get_root(heap);
  if (nvmptr_is_null(root)) {
    std::printf("fresh heap: building a persistent list\n");
    const char* lines[] = {"hello, persistent world", "poseidon keeps this",
                           "across restarts"};
    nvmptr_t head = nvmptr_null();
    for (int i = 2; i >= 0; --i) {
      nvmptr_t pn = poseidon_alloc(heap, sizeof(Node));
      Node* n = static_cast<Node*>(poseidon_get_rawptr(pn));
      n->next = head;
      std::snprintf(n->text, sizeof(n->text), "%s", lines[i]);
      head = pn;
    }
    poseidon_set_root(heap, head);
    std::printf("stored 3 nodes; run me again to read them back\n");
  } else {
    std::printf("existing heap: walking the persistent list\n");
    int count = 0;
    for (nvmptr_t p = root; !nvmptr_is_null(p);) {
      Node* n = static_cast<Node*>(poseidon_get_rawptr(p));
      std::printf("  node %d: %s\n", ++count, n->text);
      p = n->next;
    }
    // Tear the list down with validated frees, then reset the root.
    nvmptr_t p = root;
    while (!nvmptr_is_null(p)) {
      Node* n = static_cast<Node*>(poseidon_get_rawptr(p));
      const nvmptr_t next = n->next;
      if (poseidon_free(heap, p) != 0) {
        std::printf("  free rejected?!\n");
      }
      p = next;
    }
    poseidon_set_root(heap, nvmptr_null());
    std::printf("freed %d nodes; heap is empty again\n", count);
  }

  poseidon_finish(heap);
  return 0;
}
