// torture — randomized kill-torture harness for the ownership and
// crash-recovery story.
//
// Protocol per round:
//   1. fork a worker child that opens the shard set read-write (taking the
//      OFD locks and stamping the owner record), handshakes one byte over a
//      pipe, then hammers a mixed workload from several threads: publishes
//      (tx_alloc -> persist payload -> persist slot -> tx_commit),
//      unpublishes (persist CLEARED slot, then free — never the other way
//      round), and cached singleton scratch churn.
//   2. while the child lives, prove exclusion: a second read-write open
//      must fail with kHeapBusy; a read-only open must succeed and show
//      the child as owner.
//   3. SIGKILL the child at a seeded random point (some rounds race the
//      open itself), reap it, and reopen read-write: the stale owner must
//      be superseded (owner_takeovers == shard count when the child had
//      fully opened), recovery must replay the logs, and the persisted
//      slot table must agree with the surviving blocks:
//        valid slot + live block      -> payload must match its tag stream
//        valid slot + no live block   -> aborted publish; slot dropped
//        live block no slot points at -> leak, reclaimed via validated free
//   4. strict fsck (nothing repaired / quarantined / dropped when no
//      faults are armed) and the invariant check must pass; the heap then
//      closes cleanly so the next round starts from a clean owner record.
//
// The seed is printed up front; `--rounds N --seed S` reproduces a run
// exactly.  POSEIDON_FUZZ_MULT multiplies the round count (nightly CI).
// `--fault op:period:errno[,...]` arms syscall fault injection inside the
// worker child only (same clause format as the POSEIDON_FAULT variable);
// the model diff stays strict but fsck strictness is relaxed, since
// injected faults legitimately quarantine sub-heaps.
//
//   $ POSEIDON_FAKE_NUMA=2 ./torture --rounds 25 --seed 42

#include <dirent.h>
#include <fcntl.h>
#include <poll.h>
#include <signal.h>
#include <sys/stat.h>
#include <sys/wait.h>
#include <unistd.h>

#include <atomic>
#include <cerrno>
#include <chrono>
#include <cinttypes>
#include <cstdarg>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <map>
#include <memory>
#include <random>
#include <string>
#include <thread>
#include <vector>

#include "common/error.hpp"
#include "common/hash.hpp"
#include "core/heap.hpp"
#include "core/layout.hpp"
#include "core/snapshot.hpp"
#include "crashcheck/explorer.hpp"
#include "crashcheck/lint.hpp"
#include "crashcheck/recorder.hpp"
#include "crashcheck/replay.hpp"
#include "obs/flight_recorder.hpp"
#include "obs/metrics.hpp"
#include "pmem/crashpoint.hpp"
#include "pmem/fault_inject.hpp"
#include "pmem/persist.hpp"
#include "pmem/pool.hpp"
#include "svc/client.hpp"
#include "svc/ring.hpp"
#include "svc/server.hpp"

using namespace poseidon;
using core::Heap;
using core::NvPtr;

namespace {

// ---- persisted expectation model -------------------------------------------
//
// The heap's root object is a slot table.  Every committed publication is
// recorded in a slot *before* its tx_commit, and every deallocation clears
// the slot *before* the free — so after any SIGKILL the table is a
// conservative model of what must have survived: a checksummed slot whose
// block is live must carry exactly its tag-derived payload.

struct SlotRec {
  NvPtr ptr;           // null = empty
  std::uint64_t tag;   // names the payload stream; 0 = empty
  std::uint64_t csum;  // over (ptr, tag); guards torn slot writes
};
static_assert(sizeof(SlotRec) == 32);

struct SlotTable {
  std::uint64_t magic;
  std::uint64_t nslots;
  std::uint64_t seed;
  std::uint64_t round;
};

constexpr std::uint64_t kMagic = 0x746f727475726531ull;  // "torture1"

SlotRec* slots_of(SlotTable* t) { return reinterpret_cast<SlotRec*>(t + 1); }

std::uint64_t slot_csum(const SlotRec& s) {
  return hash_bytes(reinterpret_cast<const char*>(&s), offsetof(SlotRec, csum));
}

// ---- deterministic payload streams -----------------------------------------

std::uint64_t splitmix(std::uint64_t& x) {
  x += 0x9e3779b97f4a7c15ull;
  std::uint64_t z = x;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
  return z ^ (z >> 31);
}

std::uint64_t size_for_tag(std::uint64_t tag) {
  std::uint64_t x = tag ^ 0x706f736569646f6eull;  // "poseidon"
  return 32 + splitmix(x) % 2017;                 // 32 .. 2048 bytes
}

void fill_payload(void* dst, std::uint64_t size, std::uint64_t tag) {
  auto* b = static_cast<unsigned char*>(dst);
  std::uint64_t x = tag;
  std::uint64_t i = 0;
  for (; i + 8 <= size; i += 8) {
    const std::uint64_t w = splitmix(x);
    std::memcpy(b + i, &w, 8);
  }
  if (i < size) {
    const std::uint64_t w = splitmix(x);
    std::memcpy(b + i, &w, size - i);
  }
}

bool payload_matches(const void* src, std::uint64_t size, std::uint64_t tag) {
  const auto* b = static_cast<const unsigned char*>(src);
  std::uint64_t x = tag;
  std::uint64_t i = 0;
  for (; i + 8 <= size; i += 8) {
    const std::uint64_t w = splitmix(x);
    if (std::memcmp(b + i, &w, 8) != 0) return false;
  }
  if (i < size) {
    const std::uint64_t w = splitmix(x);
    if (std::memcmp(b + i, &w, size - i) != 0) return false;
  }
  return true;
}

// ---- configuration ---------------------------------------------------------

struct Cfg {
  std::string path;
  std::uint64_t rounds = 25;
  std::uint64_t seed = 0;
  bool seed_given = false;
  unsigned shards = 2;
  unsigned threads = 4;
  std::uint64_t slots_per_thread = 48;
  std::uint64_t capacity = 32ull << 20;
  std::string fault;  // POSEIDON_FAULT clause syntax; armed in the child only
  bool keep = false;
  bool svc = false;         // allocation-service torture instead of owner torture
  bool kill_server = false; // --svc variant: SIGKILL the *server* every round
  bool kill_both = false;   // --svc variant: SIGKILL client AND server together
  bool snapshot = false;    // online-snapshot kill matrix (or svc backup leg)

  // Crash-state exploration (--crashcheck, DESIGN.md "Crash-state
  // exploration"): record one op per family, enumerate fence-level crash
  // images, reopen + audit each one.
  bool crashcheck = false;
  unsigned cc_exhaustive = 6;      // 2^n subsets up to this many at-risk lines
  unsigned cc_rand = 24;           // seeded random subsets per bounded instant
  std::uint64_t cc_budget = 4000;  // distinct images verified, run-wide
  bool cc_fork = false;            // audit each image in a forked child
  std::int64_t cc_sabotage = 0;    // >0: elide that persist; -1: sweep
  std::string cc_replay;           // --replay FILE: re-verify one saved state
  std::string cc_out;              // where a violation's replay file goes

  std::uint64_t nslots() const { return threads * slots_per_thread; }
};

std::string base_name(const std::string& p) {
  const auto pos = p.find_last_of('/');
  return pos == std::string::npos ? p : p.substr(pos + 1);
}

std::string snap_dir(const Cfg& cfg) { return cfg.path + ".snap"; }

core::Options base_opts(const Cfg& cfg) {
  core::Options o;
  o.nshards = cfg.shards;
  o.nsubheaps = 2 * cfg.shards;
  o.protect = mpk::ProtectMode::kNone;
  // Round-robin policies give every worker thread a stable shard/sub-heap
  // home regardless of the box's real topology.
  o.shard_policy = core::ShardPolicy::kPerThread;
  o.policy = core::SubheapPolicy::kPerThread;
  o.flight = obs::FlightMode::kPersistent;
  return o;
}

// ---- worker child ----------------------------------------------------------

// Same clause format as POSEIDON_FAULT, parsed here because the env var is
// read once per process and the parent (which must stay fault-free) has
// already consumed that read before the fork.
void arm_child_faults(const std::string& spec) {
  std::size_t pos = 0;
  while (pos < spec.size()) {
    const std::size_t end = spec.find(',', pos);
    const std::string clause =
        spec.substr(pos, end == std::string::npos ? end : end - pos);
    pos = end == std::string::npos ? spec.size() : end + 1;
    const std::size_t c1 = clause.find(':');
    const std::size_t c2 =
        c1 == std::string::npos ? std::string::npos : clause.find(':', c1 + 1);
    if (c2 == std::string::npos) continue;
    const std::string op = clause.substr(0, c1);
    const long period = std::atol(clause.c_str() + c1 + 1);
    const long err = std::atol(clause.c_str() + c2 + 1);
    if (period <= 0 || err <= 0) continue;
    pmem::fault::SysOp sys;
    if (op == "open") sys = pmem::fault::SysOp::kOpen;
    else if (op == "mmap") sys = pmem::fault::SysOp::kMmap;
    else if (op == "ftruncate") sys = pmem::fault::SysOp::kFtruncate;
    else if (op == "fstat") sys = pmem::fault::SysOp::kFstat;
    else if (op == "fallocate") sys = pmem::fault::SysOp::kFallocate;
    else continue;
    pmem::fault::arm_every(sys, static_cast<std::uint64_t>(period),
                           static_cast<int>(err));
  }
}

// One iteration of the worker mix: random publish/unpublish over the
// thread's slot range plus cached scratch churn.
void worker_step(Heap* heap, SlotRec* slots, std::uint64_t begin,
                 std::uint64_t end, std::uint64_t& x) {
  {
    try {
      const std::uint64_t r = splitmix(x);
      SlotRec& s = slots[begin + r % (end - begin)];
      if (s.tag == 0) {
        // Publish: allocate inside a transaction, persist the payload and
        // the slot record, and only then commit — a kill anywhere before
        // the commit leaves the block in the micro log for recovery to
        // reclaim, and the checker drops the slot as an aborted publish.
        const std::uint64_t tag = splitmix(x) | 1;
        const std::uint64_t size = size_for_tag(tag);
        const NvPtr p = heap->tx_alloc(size, false);
        if (p.is_null()) {  // exhausted; close the (possibly open) tx
          heap->tx_commit();
          return;
        }
        fill_payload(heap->raw(p), size, tag);
        pmem::persist(heap->raw(p), size);
        s.ptr = p;
        s.tag = tag;
        s.csum = slot_csum(s);
        pmem::persist(&s, sizeof s);
        heap->tx_commit();
      } else {
        // Unpublish: the slot is cleared and persisted BEFORE the free, so
        // a kill in between leaves an unreferenced live block — a leak the
        // checker reclaims — never a slot pointing at freed (reusable)
        // memory, which would be an ABA false diff.
        const NvPtr p = s.ptr;
        std::memset(&s, 0, sizeof s);
        pmem::persist(&s, sizeof s);
        (void)heap->free(p);
      }
      if (r % 4 == 0) {
        // Scratch churn through the thread cache; a kill between the pair
        // leaks the block (reclaimed and reported by the checker).
        const NvPtr q = heap->alloc(16 + splitmix(x) % 1024);
        if (!q.is_null()) {
          *static_cast<unsigned char*>(heap->raw(q)) = 0x5a;
          (void)heap->free(q);
        }
      }
    } catch (const std::exception&) {
      // Only reachable with --fault armed; keep hammering.
    }
  }
}

// One worker thread: runs the mix until the parent's SIGKILL lands.
[[noreturn]] void worker(Heap* heap, SlotRec* slots, std::uint64_t begin,
                         std::uint64_t end, std::uint64_t seed) {
  std::uint64_t x = seed;
  for (;;) worker_step(heap, slots, begin, end, x);
}

[[noreturn]] void child_main(const Cfg& cfg, std::uint64_t seed, int hs_fd) {
  if (!cfg.fault.empty()) arm_child_faults(cfg.fault);
  core::Options o = base_opts(cfg);
  o.thread_cache = true;  // cache logs must survive the kill too
  std::unique_ptr<Heap> heap;
  try {
    heap = Heap::open(cfg.path, o);
  } catch (const std::exception& e) {
    std::fprintf(stderr, "child: open failed: %s\n", e.what());
    ::_exit(2);
  }
  auto* table = static_cast<SlotTable*>(heap->raw(heap->root()));
  if (table == nullptr || table->magic != kMagic ||
      table->nslots != cfg.nslots()) {
    std::fprintf(stderr, "child: slot table missing or malformed\n");
    ::_exit(3);
  }
  // Handshake AFTER the open: the parent uses this byte as proof that every
  // shard is locked and stamped with our pid.
  const char ok = 'O';
  (void)!::write(hs_fd, &ok, 1);

  SlotRec* slots = slots_of(table);
  const std::uint64_t per = cfg.slots_per_thread;
  std::vector<std::thread> ws;
  ws.reserve(cfg.threads);
  for (unsigned t = 0; t < cfg.threads; ++t) {
    std::uint64_t s = seed ^ (0x9e37ull * (t + 1));
    ws.emplace_back(worker, heap.get(), slots, t * per, (t + 1) * per, s);
  }
  for (auto& w : ws) w.join();  // workers never return; SIGKILL ends us
  ::_exit(0);
}

// ---- parent-side checks ----------------------------------------------------

struct RoundStats {
  std::uint64_t survivors = 0;
  std::uint64_t aborted = 0;
  std::uint64_t leaks = 0;
  std::uint64_t torn = 0;
  std::uint64_t diffs = 0;
  std::uint64_t takeovers = 0;
  std::uint64_t snap_pages = 0;      // incremental pages (committed rounds)
  std::uint64_t snap_published = 0;  // payload-verified image slots
};

bool fail(const char* fmt, ...) {
  va_list ap;
  va_start(ap, fmt);
  std::fprintf(stderr, "FAIL: ");
  std::vfprintf(stderr, fmt, ap);
  std::fprintf(stderr, "\n");
  va_end(ap);
  return false;
}

// While the child lives: a second writer must bounce with kHeapBusy and a
// reader must coexist, seeing the child's owner stamp.
bool verify_exclusion(const Cfg& cfg, pid_t child) {
  try {
    core::Options o = base_opts(cfg);
    auto h = Heap::open(cfg.path, o);
    return fail("concurrent read-write open SUCCEEDED against a live owner");
  } catch (const Error& e) {
    if (e.poseidon_code() != ErrorCode::kHeapBusy) {
      return fail("concurrent open: expected heap-busy, got: %s", e.what());
    }
  } catch (const std::exception& e) {
    return fail("concurrent open: expected heap-busy, got: %s", e.what());
  }
  try {
    core::Options o = base_opts(cfg);
    o.read_only = true;
    auto h = Heap::open(cfg.path, o);
    const core::OwnerRecord owner = h->shard(0)->owner();
    if (owner.pid != static_cast<std::uint64_t>(child)) {
      return fail("read-only open beside live writer: owner pid %" PRIu64
                  ", expected child %d",
                  owner.pid, static_cast<int>(child));
    }
  } catch (const std::exception& e) {
    return fail("read-only open beside live writer failed: %s", e.what());
  }
  return true;
}

// Reopen after the kill and diff the slot table against the surviving
// blocks; reclaim leaks; strict fsck; clean close.
bool check_round(const Cfg& cfg, pid_t child, bool handshook,
                 std::uint64_t round, RoundStats* st) {
  // Media-level evidence first: before recovery runs, the dead child's
  // stamp must still be on the superblock (read-only opens don't mutate).
  if (handshook) {
    core::Options ro = base_opts(cfg);
    ro.read_only = true;
    auto h = Heap::open(cfg.path, ro);
    const core::OwnerRecord owner = h->shard(0)->owner();
    if (owner.pid != static_cast<std::uint64_t>(child)) {
      return fail("round %" PRIu64 ": dead child's owner stamp missing "
                  "(pid %" PRIu64 ")",
                  round, owner.pid);
    }
  }

  core::Options o = base_opts(cfg);
  std::unique_ptr<Heap> heap;
  try {
    heap = Heap::open(cfg.path, o);
  } catch (const std::exception& e) {
    return fail("round %" PRIu64 ": reopen after kill failed: %s", round,
                e.what());
  }

  st->takeovers = heap->metrics().owner_takeovers.read();
#if POSEIDON_OBS_ENABLED
  if (handshook) {
    if (st->takeovers != cfg.shards) {
      return fail("round %" PRIu64 ": expected %u owner takeovers, got %" PRIu64,
                  round, cfg.shards, st->takeovers);
    }
    bool flight_seen = false;
    for (const auto& e : heap->flight_events()) {
      flight_seen = flight_seen ||
                    e.op == static_cast<std::uint8_t>(
                                obs::FlightOp::kOwnerTakeover);
    }
    if (!flight_seen) {
      return fail("round %" PRIu64 ": no owner-takeover flight event", round);
    }
  }
#endif
  const core::OwnerRecord owner = heap->shard(0)->owner();
  if (owner.pid != static_cast<std::uint64_t>(::getpid())) {
    return fail("round %" PRIu64 ": reopened heap not stamped with our pid",
                round);
  }

  // Liveness map: every allocated block in the set, keyed by NvPtr words.
  std::map<std::pair<std::uint64_t, std::uint64_t>, std::uint32_t> live;
  for (unsigned s = 0; s < heap->shard_count(); ++s) {
    const core::PoolShard* sh = heap->shard(s);
    if (sh == nullptr) {
      return fail("round %" PRIu64 ": shard %u quarantined at reopen", round, s);
    }
    const std::uint64_t id = sh->heap_id();
    sh->visit_blocks([&](unsigned local, std::uint64_t off, std::uint32_t cls,
                         std::uint32_t status) {
      if (status != core::kBlockAllocated) return;
      const NvPtr p = NvPtr::make(id, static_cast<std::uint16_t>(local), off);
      live.emplace(std::make_pair(p.heap_id, p.packed), cls);
    });
  }

  const NvPtr root = heap->root();
  auto* table = static_cast<SlotTable*>(heap->raw(root));
  if (table == nullptr || table->magic != kMagic ||
      table->nslots != cfg.nslots()) {
    return fail("round %" PRIu64 ": slot table lost (root %s)", round,
                root.is_null() ? "null" : "set");
  }
  live.erase(std::make_pair(root.heap_id, root.packed));  // the table itself

  // Slot sweep.  The checker runs before any new traffic, so "valid slot,
  // no live block" can only mean a publish whose tx never committed.
  SlotRec* slots = slots_of(table);
  for (std::uint64_t i = 0; i < table->nslots; ++i) {
    SlotRec& s = slots[i];
    if (s.tag == 0 && s.ptr.is_null() && s.csum == 0) continue;  // empty
    const bool valid =
        s.tag != 0 && !s.ptr.is_null() && s.csum == slot_csum(s);
    if (!valid) {
      ++st->torn;  // torn slot write; its block (if any) shows up as a leak
      std::memset(&s, 0, sizeof s);
      pmem::persist(&s, sizeof s);
      continue;
    }
    const auto it = live.find(std::make_pair(s.ptr.heap_id, s.ptr.packed));
    if (it == live.end()) {
      ++st->aborted;  // publish died before tx_commit; recovery freed it
      std::memset(&s, 0, sizeof s);
      pmem::persist(&s, sizeof s);
      continue;
    }
    const std::uint64_t size = size_for_tag(s.tag);
    const void* raw = heap->raw(s.ptr);
    if (raw == nullptr || !payload_matches(raw, size, s.tag)) {
      ++st->diffs;
      std::fprintf(stderr,
                   "DIFF round %" PRIu64 " slot %" PRIu64 ": committed block "
                   "{%016" PRIx64 ",%016" PRIx64 "} tag %016" PRIx64
                   " size %" PRIu64 " lost its payload\n",
                   round, i, s.ptr.heap_id, s.ptr.packed, s.tag, size);
    } else {
      ++st->survivors;  // keeps riding into the next round
    }
    live.erase(it);
  }

  // Everything still in the map is unreferenced: scratch blocks or
  // cleared-but-unfreed slots the kill orphaned.  Reclaim through the
  // validated free path — a rejection would mean the metadata lies.
  for (const auto& [key, cls] : live) {
    (void)cls;
    const NvPtr p{key.first, key.second};
    const core::FreeResult fr = heap->free(p);
    if (fr != core::FreeResult::kOk) {
      ++st->diffs;
      std::fprintf(stderr,
                   "DIFF round %" PRIu64 ": leak {%016" PRIx64 ",%016" PRIx64
                   "} rejected by validated free (%d)\n",
                   round, p.heap_id, p.packed, static_cast<int>(fr));
    } else {
      ++st->leaks;
    }
  }
  if (st->diffs != 0) {
    return fail("round %" PRIu64 ": %" PRIu64 " model diff(s)", round,
                st->diffs);
  }

  const core::FsckReport rep = heap->fsck();
  if (cfg.fault.empty() &&
      (rep.repaired != 0 || rep.quarantined != 0 || rep.records_dropped != 0 ||
       rep.records_synthesized != 0)) {
    return fail("round %" PRIu64 ": fsck not clean without faults armed "
                "(repaired=%u quarantined=%u dropped=%" PRIu64
                " synthesized=%" PRIu64 ")",
                round, rep.repaired, rep.quarantined, rep.records_dropped,
                rep.records_synthesized);
  }
  std::string why;
  if (!heap->check_invariants(&why)) {
    return fail("round %" PRIu64 ": invariants: %s", round, why.c_str());
  }

  table->round = round;
  pmem::persist(table, sizeof *table);
  return true;  // ~Heap seals and clears the owner record
}

bool run_round(const Cfg& cfg, std::uint64_t round, std::mt19937_64& rng,
               RoundStats* st) {
  const std::uint64_t child_seed = rng();
  const bool race_open = rng() % 5 == 0;  // kill racing the open itself
  const unsigned delay_us =
      static_cast<unsigned>(rng() % (race_open ? 15000 : 40000));

  int hs[2];
  if (::pipe(hs) != 0) return fail("pipe: %s", std::strerror(errno));
  const pid_t pid = ::fork();
  if (pid < 0) return fail("fork: %s", std::strerror(errno));
  if (pid == 0) {
    ::close(hs[0]);
    child_main(cfg, child_seed, hs[1]);  // never returns
  }
  ::close(hs[1]);

  bool handshook = false;
  bool ok = true;
  if (!race_open) {
    struct pollfd p {hs[0], POLLIN, 0};
    int rc;
    while ((rc = ::poll(&p, 1, 30000)) < 0 && errno == EINTR) {}
    char c = 0;
    handshook = rc > 0 && ::read(hs[0], &c, 1) == 1 && c == 'O';
    if (!handshook) {
      ok = fail("round %" PRIu64 ": worker child never opened the heap",
                round);
    } else {
      ok = verify_exclusion(cfg, pid);
    }
  }
  std::this_thread::sleep_for(std::chrono::microseconds(delay_us));
  (void)::kill(pid, SIGKILL);
  int status = 0;
  while (::waitpid(pid, &status, 0) < 0 && errno == EINTR) {}
  if (!race_open && ok && !(WIFSIGNALED(status) && WTERMSIG(status) == SIGKILL)) {
    // With faults armed the child may have died on its own; that is fine —
    // it still leaves a stamped owner and half-done work behind.
    if (cfg.fault.empty()) {
      ok = fail("round %" PRIu64 ": child exited on its own (status 0x%x)",
                round, status);
    }
  }
  if (race_open && !handshook) {
    // Learn (after the fact) whether the open won the race.
    (void)::fcntl(hs[0], F_SETFL, O_NONBLOCK);
    char c = 0;
    handshook = ::read(hs[0], &c, 1) == 1 && c == 'O';
  }
  ::close(hs[0]);
  if (!ok) return false;

  if (!check_round(cfg, pid, handshook, round, st)) return false;
  std::printf("round %3" PRIu64 ": kill@%5uus%s  survivors=%-4" PRIu64
              " aborted=%-3" PRIu64 " leaks=%-3" PRIu64 " torn=%-2" PRIu64
              " takeovers=%" PRIu64 "\n",
              round, delay_us, race_open ? " (racing open)" : "              ",
              st->survivors, st->aborted, st->leaks, st->torn, st->takeovers);
  return true;
}

// ---- setup / teardown ------------------------------------------------------

void unlink_snap_dir(const Cfg& cfg) {
  const std::string dir = snap_dir(cfg);
  const std::string base = base_name(cfg.path);
  (void)::unlink((dir + "/MANIFEST").c_str());
  (void)::unlink((dir + "/MANIFEST.tmp").c_str());
  (void)::unlink((dir + "/" + base).c_str());
  for (unsigned i = 1; i < 16; ++i) {
    (void)::unlink((dir + "/" + base + ".shard" + std::to_string(i)).c_str());
  }
  (void)::rmdir(dir.c_str());
}

void unlink_heap(const Cfg& cfg) {
  (void)::unlink(cfg.path.c_str());
  for (unsigned i = 1; i < 16; ++i) {
    (void)::unlink((cfg.path + ".shard" + std::to_string(i)).c_str());
  }
  (void)::unlink(svc::svc_path(cfg.path).c_str());
  unlink_snap_dir(cfg);
}

// ---- online-snapshot torture (--snapshot) ----------------------------------
//
// Round protocol: fork a child that churns the worker mix, then takes an
// online snapshot of its own live heap (full, then — after more churn — an
// incremental update of the same directory).  One round in four commits;
// the other three arm a crash point inside the snapshot (during quiesce,
// mid-copy with the head image already on disk, and after the copies but
// before the manifest) so the child dies mid-backup.  The parent asserts
// both sides of the story every round:
//
//   * the SOURCE recovers exactly like any other kill (check_round: owner
//     takeover, log replay, slot model, strict fsck) — a died snapshot
//     must leave no mark beyond a stale seal;
//   * a COMMITTED image opens read-only, recovers under a writable open
//     (its cache logs replay like a crash image's), matches the
//     quiesce-point slot model with zero diffs, and passes strict fsck;
//   * a HALF-WRITTEN image is refused: Heap::open of the uncommitted head
//     fails (kNotAPool once the head file exists with its zeroed magic).
//
// The child pauses its worker threads around each snapshot call: slot and
// payload stores are raw stores that do not pass through the allocator's
// locks, so the application must stop its own writers for a payload-exact
// cut (the allocator's metadata cut needs no such help — DESIGN.md).

struct SnapGate {
  std::atomic<bool> pause{false};
  std::atomic<unsigned> paused{0};
};

void snap_worker(Heap* heap, SlotRec* slots, std::uint64_t begin,
                 std::uint64_t end, std::uint64_t seed, SnapGate* gate) {
  std::uint64_t x = seed;
  for (;;) {
    if (gate->pause.load(std::memory_order_acquire)) {
      gate->paused.fetch_add(1, std::memory_order_acq_rel);
      while (gate->pause.load(std::memory_order_acquire)) {
        std::this_thread::sleep_for(std::chrono::microseconds(50));
      }
      gate->paused.fetch_sub(1, std::memory_order_acq_rel);
    }
    worker_step(heap, slots, begin, end, x);
  }
}

// Stop every worker at its loop top: no open transaction, no half-written
// slot, every publish persisted — the exact state the image must show.
void snap_pause(SnapGate* gate, unsigned nthreads) {
  gate->pause.store(true, std::memory_order_release);
  while (gate->paused.load(std::memory_order_acquire) != nthreads) {
    std::this_thread::sleep_for(std::chrono::microseconds(50));
  }
}

void snap_resume(SnapGate* gate) {
  gate->pause.store(false, std::memory_order_release);
}

[[noreturn]] void snap_child_main(const Cfg& cfg, std::uint64_t seed,
                                  int hs_fd, const char* crash_point,
                                  std::uint64_t crash_nth) {
  core::Options o = base_opts(cfg);
  o.thread_cache = true;  // the image must carry (and replay) cache logs
  std::unique_ptr<Heap> heap;
  try {
    heap = Heap::open(cfg.path, o);
  } catch (const std::exception& e) {
    std::fprintf(stderr, "snap child: open failed: %s\n", e.what());
    ::_exit(2);
  }
  auto* table = static_cast<SlotTable*>(heap->raw(heap->root()));
  if (table == nullptr || table->magic != kMagic ||
      table->nslots != cfg.nslots()) {
    std::fprintf(stderr, "snap child: slot table missing or malformed\n");
    ::_exit(3);
  }
  const char ok = 'O';
  (void)!::write(hs_fd, &ok, 1);

  SnapGate gate;
  SlotRec* slots = slots_of(table);
  const std::uint64_t per = cfg.slots_per_thread;
  std::vector<std::thread> ws;
  ws.reserve(cfg.threads);
  for (unsigned t = 0; t < cfg.threads; ++t) {
    std::uint64_t s = seed ^ (0x9e37ull * (t + 1));
    ws.emplace_back(snap_worker, heap.get(), slots, t * per, (t + 1) * per, s,
                    &gate);
  }
  std::this_thread::sleep_for(std::chrono::milliseconds(30));  // build state

  snap_pause(&gate, cfg.threads);
  if (crash_point != nullptr) {
    pmem::crash_arm(crash_point, crash_nth, pmem::CrashAction::kExit);
    try {
      (void)heap->snapshot(snap_dir(cfg));
    } catch (const std::exception&) {
    }
    ::_exit(7);  // the armed point must have _exit(42)ed before here
  }
  try {
    (void)heap->snapshot(snap_dir(cfg));
    snap_resume(&gate);
    std::this_thread::sleep_for(std::chrono::milliseconds(20));
    snap_pause(&gate, cfg.threads);
    (void)heap->snapshot_incremental(snap_dir(cfg),
                                     snap_dir(cfg) + "/MANIFEST");
  } catch (const std::exception& e) {
    std::fprintf(stderr, "snap child: snapshot failed: %s\n", e.what());
    ::_exit(8);
  }
  snap_resume(&gate);
  const char done = 'S';
  (void)!::write(hs_fd, &done, 1);
  for (auto& w : ws) w.join();  // workers never return; SIGKILL ends us
  ::_exit(0);
}

// A crash-armed round's directory must be refused wholesale.
bool check_snapshot_refused(const Cfg& cfg, std::uint64_t round,
                            const char* point) {
  const std::string dir = snap_dir(cfg);
  struct stat sb{};
  if (::stat((dir + "/MANIFEST").c_str(), &sb) == 0) {
    return fail("round %" PRIu64 ": manifest exists after a kill at %s",
                round, point);
  }
  const std::string head = dir + "/" + base_name(cfg.path);
  const bool head_exists = ::stat(head.c_str(), &sb) == 0;
  try {
    core::Options ro = base_opts(cfg);
    ro.read_only = true;
    auto h = Heap::open(head, ro);
    return fail("round %" PRIu64 ": half-written snapshot (killed at %s) "
                "opened successfully",
                round, point);
  } catch (const Error& e) {
    // Before the head image exists any failure will do; once it is on disk
    // its zeroed magic must make the refusal a crisp "not a pool".
    if (head_exists && e.poseidon_code() != ErrorCode::kNotAPool) {
      return fail("round %" PRIu64 ": expected not-a-pool for the "
                  "uncommitted image, got: %s",
                  round, e.what());
    }
  } catch (const std::exception& e) {
    if (head_exists) {
      return fail("round %" PRIu64 ": uncommitted image open threw a "
                  "non-poseidon error: %s",
                  round, e.what());
    }
  }
  return true;
}

// A committed round's image: manifest sane and O(dirty), read-only open
// works, and a writable open (recovery included) matches the paused-writer
// slot model exactly — zero diffs — then passes strict fsck.
bool check_snapshot_image(const Cfg& cfg, std::uint64_t round,
                          RoundStats* st) {
  const std::string dir = snap_dir(cfg);
  core::SnapshotManifest man;
  try {
    man = core::read_snapshot_manifest(dir + "/MANIFEST");
  } catch (const std::exception& e) {
    return fail("round %" PRIu64 ": snapshot manifest: %s", round, e.what());
  }
  if (!man.incremental) {
    return fail("round %" PRIu64 ": manifest should record the incremental "
                "update, found a full snapshot",
                round);
  }
  if (man.shard_count != cfg.shards || man.shards.size() != cfg.shards) {
    return fail("round %" PRIu64 ": manifest shard count %u/%zu, want %u",
                round, man.shard_count, man.shards.size(), cfg.shards);
  }
  std::uint64_t incr_pages = 0;
  std::uint64_t full_pages = 0;
  for (const auto& s : man.shards) {
    incr_pages += s.pages_copied;
    full_pages += s.size / core::kPageSize;
  }
  if (incr_pages == 0 || incr_pages >= full_pages) {
    return fail("round %" PRIu64 ": incremental copied %" PRIu64 " of %"
                PRIu64 " pages — dirty tracking is not O(dirty)",
                round, incr_pages, full_pages);
  }
  st->snap_pages = incr_pages;

  const std::string head = dir + "/" + base_name(cfg.path);
  try {
    core::Options ro = base_opts(cfg);
    ro.read_only = true;
    auto h = Heap::open(head, ro);
    auto* table = static_cast<SlotTable*>(h->raw(h->root()));
    if (table == nullptr || table->magic != kMagic ||
        table->nslots != cfg.nslots()) {
      return fail("round %" PRIu64 ": image slot table lost", round);
    }
    std::string why;
    if (!h->check_invariants(&why)) {
      return fail("round %" PRIu64 ": image invariants (read-only): %s",
                  round, why.c_str());
    }
  } catch (const std::exception& e) {
    return fail("round %" PRIu64 ": committed image read-only open: %s",
                round, e.what());
  }

  // Writable open: replays the image's cache logs (parked blocks whose
  // magazines died with the cut), then the model must hold exactly — the
  // writers were paused, so there is no torn or aborted slot to excuse.
  try {
    core::Options o = base_opts(cfg);
    auto h = Heap::open(head, o);
    std::map<std::pair<std::uint64_t, std::uint64_t>, std::uint32_t> live;
    for (unsigned s = 0; s < h->shard_count(); ++s) {
      const core::PoolShard* sh = h->shard(s);
      if (sh == nullptr) {
        return fail("round %" PRIu64 ": image shard %u quarantined", round, s);
      }
      const std::uint64_t id = sh->heap_id();
      sh->visit_blocks([&](unsigned local, std::uint64_t off,
                           std::uint32_t cls, std::uint32_t status) {
        if (status != core::kBlockAllocated) return;
        const NvPtr p = NvPtr::make(id, static_cast<std::uint16_t>(local), off);
        live.emplace(std::make_pair(p.heap_id, p.packed), cls);
      });
    }
    const NvPtr root = h->root();
    auto* table = static_cast<SlotTable*>(h->raw(root));
    if (table == nullptr || table->magic != kMagic) {
      return fail("round %" PRIu64 ": image slot table lost (writable)",
                  round);
    }
    live.erase(std::make_pair(root.heap_id, root.packed));
    SlotRec* slots = slots_of(table);
    std::uint64_t diffs = 0;
    std::uint64_t published = 0;
    for (std::uint64_t i = 0; i < table->nslots; ++i) {
      const SlotRec& s = slots[i];
      if (s.tag == 0 && s.ptr.is_null() && s.csum == 0) continue;
      if (s.tag == 0 || s.ptr.is_null() || s.csum != slot_csum(s)) {
        ++diffs;  // torn slot in a paused-writer image: the cut is broken
        std::fprintf(stderr, "DIFF round %" PRIu64 ": image slot %" PRIu64
                     " torn\n", round, i);
        continue;
      }
      ++published;
      const auto it = live.find(std::make_pair(s.ptr.heap_id, s.ptr.packed));
      const std::uint64_t size = size_for_tag(s.tag);
      const void* raw = h->raw(s.ptr);
      if (it == live.end() || raw == nullptr ||
          !payload_matches(raw, size, s.tag)) {
        ++diffs;
        std::fprintf(stderr,
                     "DIFF round %" PRIu64 ": image slot %" PRIu64
                     " {%016" PRIx64 ",%016" PRIx64 "} tag %016" PRIx64
                     " %s\n",
                     round, i, s.ptr.heap_id, s.ptr.packed, s.tag,
                     it == live.end() ? "has no live block" : "payload diff");
        continue;
      }
      live.erase(it);
    }
    // Leftover live blocks are the child's scratch/parked remainders;
    // reclaim through the validated free path like check_round does.
    for (const auto& [key, cls] : live) {
      (void)cls;
      const NvPtr p{key.first, key.second};
      if (h->free(p) != core::FreeResult::kOk) ++diffs;
    }
    if (diffs != 0) {
      return fail("round %" PRIu64 ": %" PRIu64 " image model diff(s) "
                  "(%" PRIu64 " published slots)",
                  round, diffs, published);
    }
    const core::FsckReport rep = h->fsck();
    if (rep.repaired != 0 || rep.quarantined != 0 ||
        rep.records_dropped != 0 || rep.records_synthesized != 0) {
      return fail("round %" PRIu64 ": image fsck not clean (repaired=%u "
                  "quarantined=%u dropped=%" PRIu64 " synthesized=%" PRIu64
                  ")",
                  round, rep.repaired, rep.quarantined, rep.records_dropped,
                  rep.records_synthesized);
    }
    std::string why;
    if (!h->check_invariants(&why)) {
      return fail("round %" PRIu64 ": image invariants: %s", round,
                  why.c_str());
    }
    st->snap_published = published;
  } catch (const std::exception& e) {
    return fail("round %" PRIu64 ": committed image writable open: %s",
                round, e.what());
  }
  return true;
}

bool run_snap_round(const Cfg& cfg, std::uint64_t round, std::mt19937_64& rng,
                    RoundStats* st) {
  unlink_snap_dir(cfg);
  const std::uint64_t child_seed = rng();
  // Kill matrix, cycling commit-first so short runs still audit an image.
  static const char* const kPoints[4] = {nullptr, "snap.quiesce", "snap.copy",
                                         "snap.manifest"};
  const char* point = kPoints[(round - 1) % 4];
  // "snap.copy" fires per shard; the second hit kills with the head image
  // already on disk (zeroed magic) — the interesting half-written state.
  const std::uint64_t nth =
      point != nullptr && std::strcmp(point, "snap.copy") == 0 &&
              cfg.shards > 1
          ? 2
          : 1;

  int hs[2];
  if (::pipe(hs) != 0) return fail("pipe: %s", std::strerror(errno));
  const pid_t pid = ::fork();
  if (pid < 0) return fail("fork: %s", std::strerror(errno));
  if (pid == 0) {
    ::close(hs[0]);
    snap_child_main(cfg, child_seed, hs[1], point, nth);  // never returns
  }
  ::close(hs[1]);

  auto wait_byte = [&](char want, int timeout_ms) {
    struct pollfd p {hs[0], POLLIN, 0};
    int rc;
    while ((rc = ::poll(&p, 1, timeout_ms)) < 0 && errno == EINTR) {}
    char c = 0;
    return rc > 0 && ::read(hs[0], &c, 1) == 1 && c == want;
  };

  bool ok = true;
  if (!wait_byte('O', 30000)) {
    ok = fail("round %" PRIu64 ": snapshot child never opened the heap",
              round);
  } else {
    ok = verify_exclusion(cfg, pid);
  }

  int status = 0;
  if (ok && point != nullptr) {
    while (::waitpid(pid, &status, 0) < 0 && errno == EINTR) {}
    if (!(WIFEXITED(status) && WEXITSTATUS(status) == 42)) {
      ok = fail("round %" PRIu64 ": child did not die at %s (status 0x%x)",
                round, point, status);
    } else {
      ok = check_snapshot_refused(cfg, round, point);
    }
  } else if (ok) {
    if (!wait_byte('S', 30000)) {
      ok = fail("round %" PRIu64 ": snapshot child never committed", round);
      (void)::kill(pid, SIGKILL);
      while (::waitpid(pid, &status, 0) < 0 && errno == EINTR) {}
    } else {
      ok = check_snapshot_image(cfg, round, st);
      (void)::kill(pid, SIGKILL);
      while (::waitpid(pid, &status, 0) < 0 && errno == EINTR) {}
    }
  } else {
    (void)::kill(pid, SIGKILL);
    while (::waitpid(pid, &status, 0) < 0 && errno == EINTR) {}
  }
  ::close(hs[0]);
  if (!ok) return false;

  // Either way the child died owning the heap: the source must recover
  // exactly like any other kill.
  if (!check_round(cfg, pid, true, round, st)) return false;
  std::printf("round %3" PRIu64 ": %-13s survivors=%-4" PRIu64
              " aborted=%-3" PRIu64 " leaks=%-3" PRIu64 " torn=%-2" PRIu64
              " snap_pages=%-5" PRIu64 " published=%" PRIu64 "\n",
              round, point != nullptr ? point : "committed",
              st->survivors, st->aborted, st->leaks, st->torn, st->snap_pages,
              st->snap_published);
  return true;
}

// ---- allocation-service torture (--svc) ------------------------------------
//
// Protocol per round: fork a victim client that runs strictly synchronous
// batch traffic (every batch allocated, payload-verified, freed before the
// next — so the victim never *owns* a consumed handle), then deliberately
// wedges the service: it submits allocations whose completions it never
// dequeues (in-flight handles), claims submission slots it never publishes
// (dead-producer wedge), advertises phase 2, and spins.  The parent
// SIGKILLs it there and asserts the server-side story end to end:
//
//   * the epoch reclaimer frees the session (sessions_reclaimed ticks) —
//     discarding the wedged claims and freeing every in-flight handle the
//     victim provably never saw;
//   * the server keeps serving: a surviving client's ping and a payload-
//     verified alloc/free round-trip succeed after every kill;
//   * nothing leaks: when the dust settles the heap's live_blocks is
//     exactly zero (magazine-parked blocks are excluded by stats()), and
//     the structural invariants hold.

constexpr unsigned kSvcInflight = 8;  // unconsumed completions per victim
constexpr unsigned kSvcHeldClaims = 3;

[[noreturn]] void svc_victim_main(const Cfg& cfg, std::uint64_t seed) {
  std::unique_ptr<svc::SvcClient> c;
  try {
    c = svc::SvcClient::connect(cfg.path);
  } catch (const std::exception& e) {
    std::fprintf(stderr, "victim: connect failed: %s\n", e.what());
    ::_exit(2);
  }
  std::uint64_t x = seed;
  std::uint64_t sizes[4];
  NvPtr ptrs[4];
  core::FreeResult fr[4];
  for (unsigned it = 0; it < 40; ++it) {
    for (auto& sz : sizes) sz = 32 + splitmix(x) % 1024;
    if (c->alloc(sizes, 4, ptrs) != ErrorCode::kOk) ::_exit(3);
    for (unsigned i = 0; i < 4; ++i) {
      if (ptrs[i].is_null()) ::_exit(4);  // 32 MiB can't be exhausted here
      fill_payload(c->raw(ptrs[i]), sizes[i], seed ^ (it * 4 + i + 1));
      if (!payload_matches(c->raw(ptrs[i]), sizes[i], seed ^ (it * 4 + i + 1))) {
        ::_exit(5);
      }
    }
    if (c->free_blocks(ptrs, 4, fr) != ErrorCode::kOk) ::_exit(6);
    for (unsigned i = 0; i < 4; ++i) {
      if (fr[i] != core::FreeResult::kOk) ::_exit(7);
    }
  }
  c->set_phase(1);
  // In-flight handles: allocations whose completions are never dequeued.
  // The reclaimer must free every one of them.
  for (unsigned i = 0; i < kSvcInflight; ++i) {
    if (c->submit_alloc_no_wait_for_test(64 + 32 * i) != ErrorCode::kOk) {
      ::_exit(8);
    }
  }
  // Die mid-submit: claimed-but-never-published slots wedge the ring until
  // the server proves us dead and discards them.
  if (c->hold_claims_for_test(kSvcHeldClaims) != kSvcHeldClaims) ::_exit(9);
  c->set_phase(2);
  for (;;) ::pause();  // SIGKILL lands here
}

bool svc_probe_roundtrip(svc::SvcClient* probe, std::uint64_t tag) {
  if (probe->ping() != ErrorCode::kOk) return fail("survivor ping failed");
  std::uint64_t sizes[2] = {96, 512};
  NvPtr ptrs[2];
  if (probe->alloc(sizes, 2, ptrs) != ErrorCode::kOk) {
    return fail("survivor alloc failed");
  }
  for (unsigned i = 0; i < 2; ++i) {
    if (ptrs[i].is_null()) return fail("survivor alloc exhausted");
    fill_payload(probe->raw(ptrs[i]), sizes[i], tag + i);
    if (!payload_matches(probe->raw(ptrs[i]), sizes[i], tag + i)) {
      return fail("survivor payload mismatch");
    }
  }
  core::FreeResult fr[2];
  if (probe->free_blocks(ptrs, 2, fr) != ErrorCode::kOk ||
      fr[0] != core::FreeResult::kOk || fr[1] != core::FreeResult::kOk) {
    return fail("survivor free failed");
  }
  return true;
}

bool svc_wait_until(const char* what, std::uint64_t round, unsigned timeout_ms,
                    bool (*pred)(void*), void* arg) {
  for (unsigned waited = 0; waited < timeout_ms; ++waited) {
    if (pred(arg)) return true;
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  return fail("round %" PRIu64 ": timed out waiting for %s", round, what);
}

int run_svc(const Cfg& cfg) {
  unlink_heap(cfg);
  svc::ServerOptions so;
  so.heap_opts = base_opts(cfg);
  so.create_capacity = cfg.capacity;
  std::unique_ptr<svc::SvcServer> server;
  try {
    server = svc::SvcServer::start(cfg.path, so);
  } catch (const std::exception& e) {
    fail("svc server start: %s", e.what());
    return 1;
  }
  // The survivor: its traffic after every kill is the "server keeps
  // serving other clients" proof.
  std::unique_ptr<svc::SvcClient> probe;
  try {
    probe = svc::SvcClient::connect(cfg.path);
  } catch (const std::exception& e) {
    fail("svc probe connect: %s", e.what());
    return 1;
  }

  std::mt19937_64 rng(cfg.seed);
  for (std::uint64_t round = 1; round <= cfg.rounds; ++round) {
    const std::uint64_t reclaimed_before = server->sessions_reclaimed();
    const std::uint64_t victim_seed = rng();
    const pid_t pid = ::fork();
    if (pid < 0) { fail("fork: %s", std::strerror(errno)); return 1; }
    if (pid == 0) svc_victim_main(cfg, victim_seed);  // never returns

    // Wait for the victim to advertise phase 2 through its session slot:
    // all synchronous traffic done, in-flight handles and wedged claims in
    // place — the kill window the round is about.
    std::byte* base = server->segment_base();
    const svc::SvcHeader* h = svc::header_of(base);
    svc::SessionSlot* sessions = svc::sessions_of(base);
    struct Phase2 {
      svc::SessionSlot* sessions;
      unsigned n;
      std::uint64_t pid;
    } p2{sessions, h->nsessions, static_cast<std::uint64_t>(pid)};
    const bool phased = svc_wait_until(
        "victim phase 2", round, 30000,
        [](void* a) {
          auto* p = static_cast<Phase2*>(a);
          for (unsigned i = 0; i < p->n; ++i) {
            if (p->sessions[i].state.load(std::memory_order_acquire) ==
                    svc::kSessActive &&
                p->sessions[i].pid == p->pid &&
                p->sessions[i].phase.load(std::memory_order_acquire) == 2) {
              return true;
            }
          }
          return false;
        },
        &p2);
    if (!phased) {
      int st = 0;
      (void)::waitpid(pid, &st, WNOHANG);
      (void)::kill(pid, SIGKILL);
      (void)::waitpid(pid, &st, 0);
      return 1;
    }

    (void)::kill(pid, SIGKILL);
    int status = 0;
    while (::waitpid(pid, &status, 0) < 0 && errno == EINTR) {}
    if (!(WIFSIGNALED(status) && WTERMSIG(status) == SIGKILL)) {
      fail("round %" PRIu64 ": victim exited on its own (status 0x%x)", round,
           status);
      return 1;
    }

    // The reclaimer must notice the death, wait out the epoch grace, and
    // free the session — wedged claims discarded, in-flight handles freed.
    struct Reclaim {
      svc::SvcServer* server;
      std::uint64_t before;
    } rc{server.get(), reclaimed_before};
    if (!svc_wait_until("session reclaim", round, 30000,
                        [](void* a) {
                          auto* r = static_cast<Reclaim*>(a);
                          return r->server->sessions_reclaimed() > r->before;
                        },
                        &rc)) {
      return 1;
    }

    if (!svc_probe_roundtrip(probe.get(), victim_seed)) return 1;

    if (cfg.snapshot) {
      // Online backup through the control op: full the first round, the
      // incremental path (proving the manifest baseline chain) after.
      std::uint64_t pages = 0;
      const ErrorCode rc =
          probe->snapshot(snap_dir(cfg), /*incremental=*/round > 1, &pages);
      if (rc != ErrorCode::kOk) {
        fail("round %" PRIu64 ": svc snapshot failed (%d)", round,
             static_cast<int>(rc));
        return 1;
      }
      if (pages == 0) {
        fail("round %" PRIu64 ": svc snapshot copied nothing", round);
        return 1;
      }
      try {
        // The server's heap is registered in this very process, so the
        // audit stays read-only (a writable open would re-register the
        // same heap ids).
        core::Options ro = base_opts(cfg);
        ro.read_only = true;
        auto h = Heap::open(snap_dir(cfg) + "/" + base_name(cfg.path), ro);
        std::string why;
        if (!h->check_invariants(&why)) {
          fail("round %" PRIu64 ": svc snapshot invariants: %s", round,
               why.c_str());
          return 1;
        }
      } catch (const std::exception& e) {
        fail("round %" PRIu64 ": svc snapshot open: %s", round, e.what());
        return 1;
      }
    }

    std::printf("round %3" PRIu64 ": victim pid %-6d reclaimed "
                "(in-flight=%u held-claims=%u served=%" PRIu64 ")\n",
                round, static_cast<int>(pid), kSvcInflight, kSvcHeldClaims,
                server->requests_served());
  }

#if POSEIDON_OBS_ENABLED
  // The wedge was real: the server must have discarded the dead victims'
  // claimed-but-unpublished slots, every round.
  const std::uint64_t discarded =
      server->heap().metrics().svc_claims_discarded.read();
  if (discarded < cfg.rounds * kSvcHeldClaims) {
    fail("expected >= %" PRIu64 " discarded claims, saw %" PRIu64,
         cfg.rounds * kSvcHeldClaims, discarded);
    return 1;
  }
#endif

  // Nothing leaked: victims owned no consumed handles at kill time, their
  // in-flight handles were freed by the reclaimer, and the survivor freed
  // everything it allocated — the heap must be empty again (stats()
  // already excludes magazine-parked blocks).
  probe.reset();  // clean disconnect
  const core::HeapStats st = server->heap().stats();
  if (st.live_blocks != 0) {
    fail("%" PRIu64 " block(s) leaked through the service "
         "(orphans_reclaimed=%" PRIu64 ")",
         st.live_blocks,
         server->heap().metrics().svc_orphans_reclaimed.read());
    return 1;
  }
  std::string why;
  if (!server->heap().check_invariants(&why)) {
    fail("invariants after svc torture: %s", why.c_str());
    return 1;
  }
  const std::uint64_t served = server->requests_served();
  const std::uint64_t reclaimed = server->sessions_reclaimed();
  server->stop();
  if (!cfg.keep) unlink_heap(cfg);
  std::printf("PASS: %" PRIu64 " svc rounds (served=%" PRIu64 " reclaimed=%"
              PRIu64 "), seed=%" PRIu64 "\n",
              cfg.rounds, served, reclaimed, cfg.seed);
  return 0;
}

// ---- kill-the-server torture (--svc --kill-server) -------------------------
//
// Inverts run_svc: the *clients* are immortal and the *server* is the
// victim.  N worker processes run publish/unpublish slot-table traffic
// through SvcClient with auto-failover on; each round the parent SIGKILLs
// whichever process currently serves the segment and measures MTTR as the
// time until a fresh probe session round-trips a ping through the
// successor.  Workers detect the death, re-elect (forking replacement
// servers — the heap's OFD owner lock picks one winner), reconnect at the
// new generation and reconcile their in-flight handles, so the final audit
// can demand an EXACT match: since no client ever dies, every live block
// must be the slot table or a published slot — zero leaks, zero
// double-allocs (two slots naming one block), zero double-frees (a
// re-freed block gets re-allocated under another slot and diffs there).

volatile sig_atomic_t g_svc_term = 0;
void svc_term_handler(int) { g_svc_term = 1; }

// Fork a server candidate.  Loser children (another candidate won the
// heap's owner lock first) exit 2; the winner serves until SIGTERM.
pid_t fork_server_child(const Cfg& cfg) {
  const pid_t pid = ::fork();
  if (pid != 0) return pid;
  g_svc_term = 0;
  struct sigaction sa {};
  sa.sa_handler = svc_term_handler;
  (void)::sigaction(SIGTERM, &sa, nullptr);
  try {
    svc::ServerOptions so;
    so.heap_opts = base_opts(cfg);
    so.create_capacity = cfg.capacity;
    auto server = svc::SvcServer::start(cfg.path, so);
    while (g_svc_term == 0) ::usleep(2000);
    server->stop();
  } catch (...) {
    ::_exit(2);
  }
  ::_exit(0);
}

svc::ClientOptions kill_worker_opts(const Cfg& cfg) {
  svc::ClientOptions co;
  co.server_stale_ns = 150'000'000;       // call the kill fast
  co.reconnect_attempts = 2000;           // rides out back-to-back kills
  co.reconnect_backoff_ns = 1'000'000;
  co.reconnect_backoff_max_ns = 30'000'000;
  co.elect = [cfg] { (void)fork_server_child(cfg); };
  return co;
}

[[noreturn]] void svc_kill_worker_main(const Cfg& cfg, unsigned rank,
                                       std::uint64_t seed) {
  // Election forks server candidates this worker never waits on; let the
  // kernel reap them (the parent kills them through the segment's pid).
  (void)::signal(SIGCHLD, SIG_IGN);
  const std::string stop_path = cfg.path + ".stop";
  std::unique_ptr<svc::SvcClient> c;
  for (int i = 0;; ++i) {
    try {
      c = svc::SvcClient::connect(cfg.path, kill_worker_opts(cfg));
      break;
    } catch (const std::exception&) {
      if (i > 5000) ::_exit(10);
      ::usleep(2000);
    }
  }
  NvPtr root;
  if (c->get_root(&root) != ErrorCode::kOk || root.is_null()) ::_exit(11);
  auto* table = static_cast<SlotTable*>(c->raw(root));
  if (table == nullptr || table->magic != kMagic) ::_exit(12);
  SlotRec* slots = slots_of(table);
  const std::uint64_t begin = rank * cfg.slots_per_thread;
  const std::uint64_t nmine = cfg.slots_per_thread;
  std::uint64_t x = seed;
  while (::access(stop_path.c_str(), F_OK) != 0) {
    const std::uint64_t r = splitmix(x);
    SlotRec& s = slots[begin + r % nmine];
    ErrorCode e = ErrorCode::kOk;
    if (s.tag == 0) {
      // Publish: the handle is only recorded in the slot AFTER alloc_one
      // returns it — reconcile-on-failover guarantees a handle the client
      // never saw is reclaimed server-side, so alloc/slot stays exact.
      const std::uint64_t tag = splitmix(x) | 1;
      const std::uint64_t size = size_for_tag(tag);
      const NvPtr p = c->alloc_one(size, &e);
      if (e != ErrorCode::kOk) ::_exit(13);
      if (p.is_null()) ::_exit(14);  // 32 MiB can't be exhausted here
      fill_payload(c->raw(p), size, tag);
      pmem::persist(c->raw(p), size);
      s.ptr = p;
      s.tag = tag;
      s.csum = slot_csum(s);
      pmem::persist(&s, sizeof s);
    } else {
      // Unpublish: slot cleared first, then the free; if the free's batch
      // is cut down by a failover the client replays it idempotently.
      if (size_for_tag(s.tag) >= 8 &&
          !payload_matches(c->raw(s.ptr), 8, s.tag)) {
        ::_exit(15);  // payload rotted while published
      }
      const NvPtr p = s.ptr;
      std::memset(&s, 0, sizeof s);
      pmem::persist(&s, sizeof s);
      if (c->free_one(p) != ErrorCode::kOk) ::_exit(16);
    }
    if (r % 4 == 0) {
      // Scratch churn through the magazines: exercises refill batches cut
      // down mid-flight by the kill.
      const NvPtr q = c->alloc_one(16 + splitmix(x) % 512, &e);
      if (e != ErrorCode::kOk) ::_exit(17);
      if (q.is_null()) ::_exit(18);
      *static_cast<unsigned char*>(c->raw(q)) = 0x5a;
      if (c->free_one(q) != ErrorCode::kOk) ::_exit(19);
    }
  }
  if (c->flush_caches() != ErrorCode::kOk) ::_exit(20);
  c.reset();  // clean session close
  ::_exit(0);
}

// Read (victim pid, generation) from the public segment, waiting for a
// serving incumbent.  Returns false on timeout.
bool svc_incumbent(const Cfg& cfg, unsigned timeout_ms, pid_t* pid,
                   std::uint64_t* gen) {
  for (unsigned waited = 0; waited < timeout_ms; waited += 2) {
    try {
      pmem::ShmSegment seg =
          pmem::ShmSegment::attach(svc::svc_path(cfg.path), true);
      const svc::SvcHeader* h = svc::header_of(seg.data());
      if (h->magic == svc::kSvcMagic &&
          h->state.load(std::memory_order_acquire) ==
              static_cast<std::uint32_t>(svc::SvcState::kServing)) {
        *pid = static_cast<pid_t>(h->server_pid);
        *gen = h->generation;
        return true;
      }
    } catch (const std::exception&) {
    }
    ::usleep(2000);
  }
  return false;
}

int run_svc_kill(const Cfg& cfg) {
  unlink_heap(cfg);
  const std::string stop_path = cfg.path + ".stop";
  (void)::unlink(stop_path.c_str());

  const pid_t first_server = fork_server_child(cfg);
  if (first_server < 0) {
    fail("fork server: %s", std::strerror(errno));
    return 1;
  }
  bool first_reaped = false;
  auto reap_if_first = [&](pid_t pid) {
    if (pid != first_server || first_reaped) return;
    int st = 0;
    while (::waitpid(first_server, &st, 0) < 0 && errno == EINTR) {}
    first_reaped = true;
  };

  // Control session: build the slot table in heap user memory, publish it
  // as the root, then disconnect before the shooting starts.
  {
    std::unique_ptr<svc::SvcClient> ctl;
    for (int i = 0;; ++i) {
      try {
        ctl = svc::SvcClient::connect(cfg.path);
        break;
      } catch (const std::exception& e) {
        if (i > 5000) {
          fail("svc-kill control connect: %s", e.what());
          (void)::kill(first_server, SIGKILL);
          reap_if_first(first_server);
          return 1;
        }
        ::usleep(2000);
      }
    }
    const std::uint64_t bytes =
        sizeof(SlotTable) + cfg.nslots() * sizeof(SlotRec);
    NvPtr t;
    if (ctl->alloc(&bytes, 1, &t) != ErrorCode::kOk || t.is_null()) {
      fail("slot table allocation through the service failed");
      return 1;
    }
    auto* table = static_cast<SlotTable*>(ctl->raw(t));
    std::memset(table, 0, bytes);
    table->magic = kMagic;
    table->nslots = cfg.nslots();
    table->seed = cfg.seed;
    pmem::persist(table, bytes);
    if (ctl->set_root(t) != ErrorCode::kOk) {
      fail("set_root through the service failed");
      return 1;
    }
  }

  std::mt19937_64 rng(cfg.seed);
  std::vector<pid_t> workers;
  for (unsigned w = 0; w < cfg.threads; ++w) {
    const std::uint64_t seed = rng();
    const pid_t pid = ::fork();
    if (pid < 0) {
      fail("fork worker: %s", std::strerror(errno));
      return 1;
    }
    if (pid == 0) svc_kill_worker_main(cfg, w, seed);  // never returns
    workers.push_back(pid);
  }

  double mttr_sum_ms = 0.0;
  double mttr_max_ms = 0.0;
  for (std::uint64_t round = 1; round <= cfg.rounds; ++round) {
    // Let traffic flow so the kill lands mid-batch somewhere.
    std::this_thread::sleep_for(std::chrono::milliseconds(30 + rng() % 90));
    pid_t victim = -1;
    std::uint64_t gen = 0;
    if (!svc_incumbent(cfg, 30000, &victim, &gen)) {
      fail("round %" PRIu64 ": no serving incumbent to kill", round);
      return 1;
    }
    const auto t0 = std::chrono::steady_clock::now();
    (void)::kill(victim, SIGKILL);
    reap_if_first(victim);  // workers' candidates are auto-reaped (SIG_IGN)

    // MTTR: from the kill to the first fresh session whose ping round-trips
    // through a *successor* generation.
    bool recovered = false;
    while (!recovered &&
           std::chrono::steady_clock::now() - t0 < std::chrono::seconds(60)) {
      pid_t cur = -1;
      std::uint64_t cur_gen = 0;
      if (svc_incumbent(cfg, 2, &cur, &cur_gen) && cur_gen > gen) {
        try {
          svc::ClientOptions pco;
          pco.map_data = false;
          pco.auto_failover = false;  // the probe measures, never heals
          auto probe = svc::SvcClient::connect(cfg.path, pco);
          recovered =
              probe->generation() > gen && probe->ping() == ErrorCode::kOk;
        } catch (const std::exception&) {
        }
      }
      if (!recovered) ::usleep(2000);
    }
    if (!recovered) {
      fail("round %" PRIu64 ": service never recovered from the kill", round);
      (void)std::fopen(stop_path.c_str(), "w");
      return 1;
    }
    const double ms =
        std::chrono::duration<double, std::milli>(
            std::chrono::steady_clock::now() - t0)
            .count();
    mttr_sum_ms += ms;
    if (ms > mttr_max_ms) mttr_max_ms = ms;
    std::printf("round %3" PRIu64 ": killed server pid %-6d gen %" PRIu64
                " -> recovered in %7.1f ms\n",
                round, static_cast<int>(victim), gen, ms);
  }

  // Stop: workers flush their magazines and free-stashes through the ring
  // and close their sessions cleanly.
  {
    std::FILE* f = std::fopen(stop_path.c_str(), "w");
    if (f != nullptr) std::fclose(f);
  }
  bool ok = true;
  for (const pid_t w : workers) {
    int st = 0;
    while (::waitpid(w, &st, 0) < 0 && errno == EINTR) {}
    if (!(WIFEXITED(st) && WEXITSTATUS(st) == 0)) {
      ok = fail("worker pid %d failed (status 0x%x)", static_cast<int>(w), st);
    }
  }

  // Retire the final server cleanly so the heap's owner record is released,
  // then take the heap in-process for the audit.
  pid_t last = -1;
  std::uint64_t last_gen = 0;
  if (svc_incumbent(cfg, 10000, &last, &last_gen)) {
    (void)::kill(last, SIGTERM);
    reap_if_first(last);
  }
  std::unique_ptr<Heap> heap;
  for (int i = 0; i < 5000 && heap == nullptr; ++i) {
    try {
      heap = Heap::open(cfg.path, base_opts(cfg));
    } catch (const Error& e) {
      if (e.poseidon_code() != ErrorCode::kHeapBusy) {
        fail("audit open: %s", e.what());
        return 1;
      }
      ::usleep(2000);
    }
  }
  if (heap == nullptr) {
    fail("heap still owned long after the final server was retired");
    return 1;
  }
  (void)::unlink(stop_path.c_str());

  // Exact audit: no client ever died, so the model tolerates NOTHING —
  // live blocks must be precisely {slot table} + {published slots}.
  std::map<std::pair<std::uint64_t, std::uint64_t>, std::uint32_t> live;
  for (unsigned s = 0; s < heap->shard_count(); ++s) {
    const core::PoolShard* sh = heap->shard(s);
    if (sh == nullptr) {
      fail("shard %u quarantined at audit open", s);
      return 1;
    }
    const std::uint64_t id = sh->heap_id();
    sh->visit_blocks([&](unsigned local, std::uint64_t off, std::uint32_t cls,
                         std::uint32_t status) {
      if (status != core::kBlockAllocated) return;
      const NvPtr p = NvPtr::make(id, static_cast<std::uint16_t>(local), off);
      live.emplace(std::make_pair(p.heap_id, p.packed), cls);
    });
  }
  const NvPtr root = heap->root();
  auto* table = static_cast<SlotTable*>(heap->raw(root));
  if (table == nullptr || table->magic != kMagic ||
      table->nslots != cfg.nslots()) {
    fail("slot table lost (root %s)", root.is_null() ? "null" : "set");
    return 1;
  }
  if (live.erase(std::make_pair(root.heap_id, root.packed)) != 1) {
    fail("slot table's own block missing from the live set");
    return 1;
  }
  std::uint64_t published = 0;
  std::uint64_t diffs = 0;
  SlotRec* slots = slots_of(table);
  for (std::uint64_t i = 0; i < table->nslots; ++i) {
    const SlotRec& s = slots[i];
    if (s.tag == 0 && s.ptr.is_null() && s.csum == 0) continue;  // empty
    if (s.tag == 0 || s.ptr.is_null() || s.csum != slot_csum(s)) {
      ++diffs;  // workers exit cleanly: a torn slot is impossible
      std::fprintf(stderr, "DIFF slot %" PRIu64 ": torn record\n", i);
      continue;
    }
    const auto it = live.find(std::make_pair(s.ptr.heap_id, s.ptr.packed));
    if (it == live.end()) {
      // Not live: either never allocated (lost alloc) or freed while still
      // published (double-free downstream) — both model violations here.
      ++diffs;
      std::fprintf(stderr,
                   "DIFF slot %" PRIu64 ": published block {%016" PRIx64
                   ",%016" PRIx64 "} not live\n",
                   i, s.ptr.heap_id, s.ptr.packed);
      continue;
    }
    const std::uint64_t size = size_for_tag(s.tag);
    if (!payload_matches(heap->raw(s.ptr), size, s.tag)) {
      ++diffs;  // block reused under the slot: double-alloc or double-free
      std::fprintf(stderr,
                   "DIFF slot %" PRIu64 ": tag %016" PRIx64
                   " payload corrupt\n",
                   i, s.tag);
      continue;
    }
    live.erase(it);
    ++published;
  }
  for (const auto& [key, cls] : live) {
    (void)cls;
    ++diffs;  // a block no slot names: leaked through a failover
    std::fprintf(stderr, "DIFF: leaked block {%016" PRIx64 ",%016" PRIx64 "}\n",
                 key.first, key.second);
  }
  if (diffs != 0) ok = fail("%" PRIu64 " model diff(s) after kills", diffs);

  const core::FsckReport rep = heap->fsck();
  if (rep.repaired != 0 || rep.quarantined != 0 || rep.records_dropped != 0 ||
      rep.records_synthesized != 0) {
    ok = fail("fsck not clean (repaired=%u quarantined=%u dropped=%" PRIu64
              " synthesized=%" PRIu64 ")",
              rep.repaired, rep.quarantined, rep.records_dropped,
              rep.records_synthesized);
  }
  std::string why;
  if (!heap->check_invariants(&why)) {
    ok = fail("invariants after kill-server torture: %s", why.c_str());
  }
#if POSEIDON_OBS_ENABLED
  std::uint64_t failover_events = 0;
  for (const auto& e : heap->flight_events()) {
    if (e.op == static_cast<std::uint16_t>(obs::FlightOp::kSvcFailover)) {
      ++failover_events;
    }
  }
  // Informational: the flight ring wraps under heavy traffic, so old
  // failover events may have been overwritten.
  std::printf("flight: %" PRIu64 " svc-failover event(s) still in the ring\n",
              failover_events);
#endif
  heap.reset();
  if (!ok) return 1;
  if (!cfg.keep) unlink_heap(cfg);
  std::printf("PASS: %" PRIu64 " server kills (published=%" PRIu64
              " mttr avg=%.1f ms max=%.1f ms), seed=%" PRIu64 "\n",
              cfg.rounds, published, mttr_sum_ms / cfg.rounds, mttr_max_ms,
              cfg.seed);
  return 0;
}

// ---- crash-state exploration (--crashcheck) --------------------------------
//
// For each operation family the harness runs ONE live operation against a
// single-shard heap while the crashcheck recorder captures its
// persistence-event stream over the recovery surface (crashsim_region():
// superblock + shadow + sub-heap metadata + hash tables + cache logs).
// The explorer then enumerates fence-level crash images offline; every
// distinct image is materialized into the heap file (with the owner
// record aged so the reopen takes over instead of refusing kHeapBusy),
// reopened through normal recovery, and audited against the slot-table
// model:
//
//   * prior publications must survive every image, payloads intact;
//   * the op's own effect may be absent at mid-op instants (rolled back)
//     but MUST be present at the final instant — the op returned, so
//     everything it promised durable must be durable;
//   * leaked blocks are tolerated mid-op (bounded leak, same contract as
//     the kill torture) but are violations at the final instant;
//   * strict fsck and the structural invariants must hold everywhere.
//
// The flush lint runs over the same traces: a line still dirty (or
// flushed-but-unfenced) when the op returns is a missing persist at its
// last store (flush) site; a flush of a clean line is a wasted
// write-back.  `--cc-sabotage N` elides the Nth persist() of the recorded
// op (`sweep` tries them all) and demands that BOTH the explorer and the
// lint catch the hole — the self-test that keeps the checker honest.
// A violation shrinks to a minimal lost-line set and is saved as a replay
// file; `--replay FILE` re-runs exactly that state.

enum class CcOp {
  kTxPublish,     // tx_alloc -> persist payload -> persist slot -> tx_commit
  kTxBatch,       // tx_alloc_batch of 4, all published
  kFreeSlot,      // persist cleared slot, then free
  kCacheAlloc,    // magazine-hit publish (warmed cache)
  kCacheRefill,   // magazine-miss publish (cold cache: refill batch)
  kCacheFree,     // free into a magazine (cache log append)
  kRoot,          // set_root to an already-published block
  kSnapFull,      // online snapshot (neutral: must not perturb recovery)
  kSnapIncr,      // incremental snapshot after a full one
};

struct CcFamily {
  const char* name;
  int variant;        // distinguishes size variants of one op
  CcOp op;
  std::uint64_t size; // payload size for the op's own block (0 = n/a)
  bool cache;         // thread_cache on for this heap
};

constexpr CcFamily kCcFamilies[] = {
    {"alloc", 0, CcOp::kTxPublish, 48, false},
    {"alloc", 1, CcOp::kTxPublish, 512, false},
    {"alloc", 2, CcOp::kTxPublish, 2000, false},
    {"batch", 0, CcOp::kTxBatch, 96, false},
    {"free", 0, CcOp::kFreeSlot, 512, false},
    {"cache-alloc", 0, CcOp::kCacheAlloc, 64, true},
    {"cache-refill", 0, CcOp::kCacheRefill, 64, true},
    {"cache-free", 0, CcOp::kCacheFree, 64, true},
    {"root", 0, CcOp::kRoot, 256, false},
    {"snapshot", 0, CcOp::kSnapFull, 0, false},
    {"snapshot-incr", 0, CcOp::kSnapIncr, 0, false},
};

constexpr std::uint64_t kCcCapacity = 4ull << 20;
constexpr std::uint64_t kCcSlots = 16;   // in-heap slot table entries
constexpr unsigned kCcPrior = 4;         // publications that predate the op

struct CcSlot {
  NvPtr ptr;
  std::uint64_t tag = 0;
  std::uint64_t size = 0;
};

// Everything one recorded family run needs to rebuild and audit images.
struct CcRun {
  const Cfg* cfg = nullptr;
  CcFamily fam{};
  std::string label;
  std::string hpath;
  std::string snapdir;
  core::Options opts;
  std::uint64_t region = 0;            // crashsim region size
  std::vector<std::byte> file_bytes;   // whole post-op heap file
  NvPtr table;                         // slot table block
  std::vector<CcSlot> prior;           // must survive every image
  std::vector<CcSlot> targets;         // the op's publications
  CcSlot freed;                        // kFreeSlot / kCacheFree target
  NvPtr root_old, root_new;            // kRoot
  std::uint64_t sab_nth = 0;           // elided persist (0 = none)
  crashcheck::Trace trace;
};

core::Options cc_opts(const CcFamily& fam) {
  core::Options o;
  o.nshards = 1;  // the recorder watches one contiguous region
  o.nsubheaps = 2;
  o.protect = mpk::ProtectMode::kNone;
  o.shard_policy = core::ShardPolicy::kPerThread;
  o.policy = core::SubheapPolicy::kPerThread;
  // Volatile flight ring: its traffic is diagnostic, not part of the
  // recovery contract the explorer perturbs.
  o.flight = obs::FlightMode::kVolatile;
  o.thread_cache = fam.cache;
  return o;
}

void cc_unlink_paths(const std::string& hpath, const std::string& snapdir) {
  (void)::unlink(hpath.c_str());
  if (!snapdir.empty()) {
    // One-level snapshot directory: shard images + MANIFEST.
    if (DIR* d = ::opendir(snapdir.c_str())) {
      while (struct dirent* e = ::readdir(d)) {
        if (std::strcmp(e->d_name, ".") == 0 ||
            std::strcmp(e->d_name, "..") == 0) {
          continue;
        }
        (void)::unlink((snapdir + "/" + e->d_name).c_str());
      }
      ::closedir(d);
    }
    (void)::rmdir(snapdir.c_str());
  }
}

void cc_unlink(const CcRun& run) { cc_unlink_paths(run.hpath, run.snapdir); }

// Publish one slot through the transactional protocol.  Returns a null
// ptr on exhaustion (treated as a harness bug at this capacity).
CcSlot cc_publish(Heap* heap, SlotRec* slot, std::uint64_t tag,
                  std::uint64_t size) {
  CcSlot out;
  const NvPtr p = heap->tx_alloc(size, false);
  if (p.is_null()) {
    heap->tx_commit();
    return out;
  }
  fill_payload(heap->raw(p), size, tag);
  pmem::persist(heap->raw(p), size);
  slot->ptr = p;
  slot->tag = tag;
  slot->csum = slot_csum(*slot);
  pmem::persist(slot, sizeof *slot);
  heap->tx_commit();
  out.ptr = p;
  out.tag = tag;
  out.size = size;
  return out;
}

// Run setup + the recorded op for one family.  On success run->trace
// holds the event stream and run->file_bytes the whole post-op file.
bool cc_record(const Cfg& cfg, const CcFamily& fam, std::uint64_t sab_nth,
               CcRun* run) {
  run->cfg = &cfg;
  run->fam = fam;
  run->sab_nth = sab_nth;
  run->label = std::string(fam.name) + "/" + std::to_string(fam.variant);
  run->hpath = cfg.path + ".cc";
  run->snapdir = (fam.op == CcOp::kSnapFull || fam.op == CcOp::kSnapIncr)
                     ? cfg.path + ".ccsnap"
                     : std::string();
  run->opts = cc_opts(fam);
  cc_unlink(*run);

  std::unique_ptr<Heap> heap;
  try {
    heap = Heap::create(run->hpath, kCcCapacity, run->opts);
  } catch (const std::exception& e) {
    return fail("crashcheck %s: create: %s", run->label.c_str(), e.what());
  }

  // In-heap slot table (user region — outside the traced surface, so slot
  // writes cost no events but keep the publish protocol faithful).
  const std::uint64_t bytes = sizeof(SlotTable) + kCcSlots * sizeof(SlotRec);
  const NvPtr t = heap->alloc(bytes);
  if (t.is_null()) return fail("crashcheck %s: table alloc", run->label.c_str());
  auto* table = static_cast<SlotTable*>(heap->raw(t));
  std::memset(table, 0, bytes);
  table->magic = kMagic;
  table->nslots = kCcSlots;
  table->seed = cfg.seed;
  pmem::persist(table, bytes);
  heap->set_root(t);
  run->table = t;
  SlotRec* slots = slots_of(table);

  // Deterministic per-family stream so --replay can re-derive the exact
  // same workload from (family, variant, seed).
  std::uint64_t x = cfg.seed ^ hash_bytes(fam.name, std::strlen(fam.name)) ^
                    static_cast<std::uint64_t>(fam.variant);
  unsigned si = 0;
  for (unsigned i = 0; i < kCcPrior; ++i) {
    const std::uint64_t tag = splitmix(x) | 1;
    const std::uint64_t size = 32 + splitmix(x) % 1500;
    const CcSlot s = cc_publish(heap.get(), &slots[si++], tag, size);
    if (s.ptr.is_null()) return fail("crashcheck %s: prior publish",
                                     run->label.c_str());
    run->prior.push_back(s);
  }

  // Family-specific setup (everything here predates the recording).
  std::string since_manifest;
  switch (fam.op) {
    case CcOp::kFreeSlot:
    case CcOp::kCacheFree: {
      const std::uint64_t tag = splitmix(x) | 1;
      run->freed = cc_publish(heap.get(), &slots[si], tag, fam.size);
      if (run->freed.ptr.is_null()) {
        return fail("crashcheck %s: target publish", run->label.c_str());
      }
      break;
    }
    case CcOp::kCacheAlloc: {
      // Warm the magazine so the recorded alloc is a pure cache hit.
      const NvPtr w = heap->alloc(fam.size);
      if (w.is_null()) return fail("crashcheck %s: warm", run->label.c_str());
      (void)heap->free(w);
      break;
    }
    case CcOp::kSnapIncr: {
      const core::SnapshotReport rep = heap->snapshot(run->snapdir);
      since_manifest = rep.manifest_path;
      // Dirty a page so the incremental has something to copy.
      const std::uint64_t tag = splitmix(x) | 1;
      const CcSlot s = cc_publish(heap.get(), &slots[si++], tag, 128);
      if (s.ptr.is_null()) return fail("crashcheck %s: dirtier",
                                       run->label.c_str());
      run->prior.push_back(s);
      break;
    }
    default:
      break;
  }

  // Record exactly one operation.
  const auto [rbase, rsize] = heap->crashsim_region();
  run->region = rsize;
  crashcheck::Recorder rec(rbase, rsize);
  rec.begin(run->label);
  if (sab_nth != 0) pmem::arm_persist_sabotage(sab_nth);
  bool op_ok = true;
  std::string op_err;
  try {
    switch (fam.op) {
      case CcOp::kTxPublish: {
        const std::uint64_t tag = splitmix(x) | 1;
        const CcSlot s = cc_publish(heap.get(), &slots[si], tag, fam.size);
        op_ok = !s.ptr.is_null();
        if (op_ok) run->targets.push_back(s);
        break;
      }
      case CcOp::kTxBatch: {
        std::uint64_t sizes[4];
        NvPtr out[4];
        std::uint64_t tags[4];
        for (unsigned i = 0; i < 4; ++i) {
          tags[i] = splitmix(x) | 1;
          sizes[i] = fam.size + 32 * i;
        }
        const unsigned got = heap->tx_alloc_batch(sizes, 4, out);
        op_ok = got == 4;
        for (unsigned i = 0; op_ok && i < 4; ++i) {
          fill_payload(heap->raw(out[i]), sizes[i], tags[i]);
          pmem::persist(heap->raw(out[i]), sizes[i]);
          SlotRec& s = slots[si + i];
          s.ptr = out[i];
          s.tag = tags[i];
          s.csum = slot_csum(s);
          pmem::persist(&s, sizeof s);
          run->targets.push_back({out[i], tags[i], sizes[i]});
        }
        heap->tx_commit();
        break;
      }
      case CcOp::kFreeSlot:
      case CcOp::kCacheFree: {
        SlotRec& s = slots[si];
        std::memset(&s, 0, sizeof s);
        pmem::persist(&s, sizeof s);
        op_ok = heap->free(run->freed.ptr) == core::FreeResult::kOk;
        break;
      }
      case CcOp::kCacheAlloc:
      case CcOp::kCacheRefill: {
        const std::uint64_t tag = splitmix(x) | 1;
        const NvPtr p = heap->alloc(fam.size);
        op_ok = !p.is_null();
        if (op_ok) {
          fill_payload(heap->raw(p), fam.size, tag);
          pmem::persist(heap->raw(p), fam.size);
          SlotRec& s = slots[si];
          s.ptr = p;
          s.tag = tag;
          s.csum = slot_csum(s);
          pmem::persist(&s, sizeof s);
          run->targets.push_back({p, tag, fam.size});
        }
        break;
      }
      case CcOp::kRoot: {
        run->root_old = run->table;
        run->root_new = run->prior[0].ptr;
        heap->set_root(run->root_new);
        break;
      }
      case CcOp::kSnapFull: {
        (void)heap->snapshot(run->snapdir);
        break;
      }
      case CcOp::kSnapIncr: {
        (void)heap->snapshot_incremental(run->snapdir, since_manifest);
        break;
      }
    }
  } catch (const std::exception& e) {
    op_ok = false;
    op_err = e.what();
  }
  if (sab_nth != 0) pmem::disarm_persist_sabotage();
  run->trace = rec.end();
  if (!op_ok) {
    return fail("crashcheck %s: op failed%s%s", run->label.c_str(),
                op_err.empty() ? "" : ": ", op_err.c_str());
  }

  // kRoot leaves the root pointing away from the table; put it back so
  // the post-run heap file stays inspectable.  The recorded trace is
  // already captured, so this mutation is invisible to the explorer.
  if (fam.op == CcOp::kRoot) heap->set_root(run->table);
  heap.reset();  // clean close

  // Whole-file snapshot: images rewrite [0, region) from the trace and
  // keep the tail (flight rings + user data) from the completed run —
  // user payloads never change after the op, so the tail is
  // instant-independent.
  const int fd = ::open(run->hpath.c_str(), O_RDONLY);
  if (fd < 0) return fail("crashcheck %s: reopen file", run->label.c_str());
  struct stat st {};
  if (::fstat(fd, &st) != 0) {
    ::close(fd);
    return fail("crashcheck %s: fstat", run->label.c_str());
  }
  run->file_bytes.resize(static_cast<std::size_t>(st.st_size));
  std::size_t got = 0;
  while (got < run->file_bytes.size()) {
    const ssize_t n = ::pread(fd, run->file_bytes.data() + got,
                              run->file_bytes.size() - got,
                              static_cast<off_t>(got));
    if (n <= 0) {
      ::close(fd);
      return fail("crashcheck %s: pread", run->label.c_str());
    }
    got += static_cast<std::size_t>(n);
  }
  ::close(fd);
  if (run->file_bytes.size() < run->region) {
    return fail("crashcheck %s: file smaller than the traced region",
                run->label.c_str());
  }
  return true;
}

// Materialize one crash image into the heap file and audit it through a
// normal recovery open.  Returns empty on pass, else the violation.
std::string cc_audit_image(const CcRun& run,
                           const std::vector<std::byte>& img,
                           bool final_instant) {
  std::vector<std::byte> buf = run.file_bytes;
  std::memcpy(buf.data(), img.data(), img.size());
  // Age the owner record: the image carries our own live stamp, and a
  // same-pid reopen must classify it as a stale incarnation (takeover),
  // not as kHeapBusy.  The owner csum is self-contained, so this cannot
  // mask real superblock damage.
  auto* sb = reinterpret_cast<core::SuperBlock*>(buf.data());
  if (sb->magic == core::kSuperMagic && sb->owner.pid != 0) {
    sb->owner.start_time += 1;
    sb->owner.csum = core::owner_csum(sb->owner);
  }
  {
    const int fd = ::open(run.hpath.c_str(), O_WRONLY);
    if (fd < 0) return "materialize: open failed";
    std::size_t put = 0;
    while (put < buf.size()) {
      const ssize_t n = ::pwrite(fd, buf.data() + put, buf.size() - put,
                                 static_cast<off_t>(put));
      if (n <= 0) {
        ::close(fd);
        return "materialize: pwrite failed";
      }
      put += static_cast<std::size_t>(n);
    }
    ::close(fd);
  }

  std::unique_ptr<Heap> h;
  try {
    h = Heap::open(run.hpath, run.opts);
  } catch (const std::exception& e) {
    return std::string("recovery refused the image: ") + e.what();
  }
  std::string why;
  if (!h->check_invariants(&why)) return "invariants after recovery: " + why;
  const core::PoolShard* sh = h->shard(0);
  if (sh == nullptr) return "recovery quarantined the shard";

  std::map<std::uint64_t, std::uint32_t> live;  // packed -> class
  sh->visit_blocks([&](unsigned local, std::uint64_t off, std::uint32_t cls,
                       std::uint32_t status) {
    if (status != core::kBlockAllocated) return;
    live.emplace(NvPtr::make(sh->heap_id(), static_cast<std::uint16_t>(local),
                             off).packed,
                 cls);
  });
  if (live.erase(run.table.packed) != 1) return "slot table block lost";
  for (std::size_t i = 0; i < run.prior.size(); ++i) {
    const CcSlot& s = run.prior[i];
    if (live.erase(s.ptr.packed) != 1) {
      return "prior publication " + std::to_string(i) +
             " not allocated after recovery";
    }
    if (!payload_matches(h->raw(s.ptr), s.size, s.tag)) {
      return "prior publication " + std::to_string(i) + " payload corrupt";
    }
  }
  switch (run.fam.op) {
    case CcOp::kTxPublish:
    case CcOp::kTxBatch:
    case CcOp::kCacheAlloc:
    case CcOp::kCacheRefill:
      for (std::size_t i = 0; i < run.targets.size(); ++i) {
        const CcSlot& tgt = run.targets[i];
        const auto it = live.find(tgt.ptr.packed);
        if (it != live.end()) {
          if (!payload_matches(h->raw(tgt.ptr), tgt.size, tgt.tag)) {
            return "published payload " + std::to_string(i) + " corrupt";
          }
          live.erase(it);
        } else if (final_instant) {
          return "committed publish " + std::to_string(i) +
                 " lost (block not allocated after recovery)";
        }
      }
      break;
    case CcOp::kFreeSlot:
    case CcOp::kCacheFree: {
      const auto it = live.find(run.freed.ptr.packed);
      if (it != live.end()) {
        if (final_instant) {
          return "completed free still allocated after recovery";
        }
        live.erase(it);  // mid-op: a bounded leak recovery may keep briefly
      }
      break;
    }
    case CcOp::kRoot: {
      const NvPtr r = h->root();
      const bool old_r = r.heap_id == run.root_old.heap_id &&
                         r.packed == run.root_old.packed;
      const bool new_r = r.heap_id == run.root_new.heap_id &&
                         r.packed == run.root_new.packed;
      if (!old_r && !new_r) return "root is neither the old nor the new value";
      if (final_instant && !new_r) return "committed set_root lost";
      break;
    }
    case CcOp::kSnapFull:
    case CcOp::kSnapIncr:
      break;
  }
  if (final_instant && !live.empty()) {
    return std::to_string(live.size()) +
           " block(s) leaked after a completed op";
  }
  const core::FsckReport rep = h->fsck();
  if (rep.repaired != 0 || rep.quarantined != 0 || rep.records_dropped != 0 ||
      rep.records_synthesized != 0) {
    return "fsck not clean after recovery (repaired=" +
           std::to_string(rep.repaired) + " quarantined=" +
           std::to_string(rep.quarantined) + " dropped=" +
           std::to_string(rep.records_dropped) + " synthesized=" +
           std::to_string(rep.records_synthesized) + ")";
  }
  if (!h->check_invariants(&why)) return "invariants after fsck: " + why;
  return {};
}

// Forked verification (--cc-fork): a recovery crash (not just a wrong
// answer) is contained in the child and reported as a violation.
std::string cc_audit(const CcRun& run, const std::vector<std::byte>& img,
                     bool final_instant) {
  if (!run.cfg->cc_fork) return cc_audit_image(run, img, final_instant);
  int pfd[2];
  if (::pipe(pfd) != 0) return "audit fork: pipe failed";
  const pid_t pid = ::fork();
  if (pid < 0) {
    ::close(pfd[0]);
    ::close(pfd[1]);
    return "audit fork failed";
  }
  if (pid == 0) {
    ::close(pfd[0]);
    const std::string why = cc_audit_image(run, img, final_instant);
    if (!why.empty()) {
      (void)!::write(pfd[1], why.data(), why.size());
    }
    ::_exit(why.empty() ? 0 : 1);
  }
  ::close(pfd[1]);
  std::string why;
  char tmp[512];
  ssize_t n;
  while ((n = ::read(pfd[0], tmp, sizeof tmp)) > 0) {
    why.append(tmp, static_cast<std::size_t>(n));
  }
  ::close(pfd[0]);
  int st = 0;
  while (::waitpid(pid, &st, 0) < 0 && errno == EINTR) {}
  if (WIFSIGNALED(st)) {
    return "recovery crashed with signal " + std::to_string(WTERMSIG(st));
  }
  if (WIFEXITED(st) && WEXITSTATUS(st) == 0) return {};
  return why.empty() ? "audit child failed without a reason" : why;
}

// Human name for a lost line's home within the metadata region.
std::string cc_segment_name(const CcRun& run, std::uint32_t line) {
  const std::uint64_t off = std::uint64_t{line} * kCacheLineSize;
  const auto* sb =
      reinterpret_cast<const core::SuperBlock*>(run.file_bytes.data());
  char buf[64];
  if (off < sizeof(core::SuperBlock)) return "superblock";
  if (off >= core::super_shadow_off() &&
      off < core::super_shadow_off() + core::kPageSize) {
    return "super-shadow";
  }
  if (off >= sb->subheap_meta_off && off < sb->hash_region_off) {
    std::snprintf(buf, sizeof buf, "subheap_meta[%u]",
                  static_cast<unsigned>((off - sb->subheap_meta_off) /
                                        sb->subheap_meta_stride));
    return buf;
  }
  if (off >= sb->hash_region_off && off < sb->cache_log_off) {
    std::snprintf(buf, sizeof buf, "hash[%u]",
                  static_cast<unsigned>((off - sb->hash_region_off) /
                                        sb->hash_region_stride));
    return buf;
  }
  if (off >= sb->cache_log_off && off < sb->flight_off) {
    std::snprintf(buf, sizeof buf, "cache_log[%u]",
                  static_cast<unsigned>((off - sb->cache_log_off) /
                                        sb->cache_log_stride));
    return buf;
  }
  return "(gap)";
}

std::string cc_replay_default(const Cfg& cfg) {
  return cfg.cc_out.empty() ? cfg.path + ".replay" : cfg.cc_out;
}

void cc_report_violation(const Cfg& cfg, const CcRun& run,
                         const crashcheck::Violation& v, bool save) {
  std::fprintf(stderr,
               "VIOLATION %s at instant %zu%s: %s\n  lost lines:",
               v.label.c_str(), v.instant,
               v.final_instant ? " (final)" : "", v.why.c_str());
  for (const std::uint32_t l : v.lost) {
    std::fprintf(stderr, " %u(%s)", l, cc_segment_name(run, l).c_str());
  }
  std::fprintf(stderr, "\n");
  if (!save) return;
  crashcheck::ReplayFile rf;
  rf.family = run.fam.name;
  rf.variant = run.fam.variant;
  rf.seed = cfg.seed;
  rf.sabotage = run.sab_nth;
  rf.label = v.label;
  rf.instant = v.instant;
  rf.lost = v.lost;
  for (const std::uint32_t l : v.lost) {
    rf.segments.emplace_back(l, cc_segment_name(run, l));
  }
  rf.why = v.why;
  const std::string out = cc_replay_default(cfg);
  std::string err;
  if (rf.save(out, &err)) {
    std::fprintf(stderr,
                 "REPRODUCE: %s --crashcheck --seed %" PRIu64
                 " --replay %s\n",
                 "torture", cfg.seed, out.c_str());
  } else {
    std::fprintf(stderr, "replay save failed: %s\n", err.c_str());
  }
}

crashcheck::ExploreConfig cc_explore_cfg(const Cfg& cfg) {
  crashcheck::ExploreConfig ec;
  ec.exhaustive_max = cfg.cc_exhaustive;
  ec.random_tail = cfg.cc_rand;
  ec.seed = cfg.seed;
  ec.budget = cfg.cc_budget;
  return ec;
}

// --replay FILE: re-run the named family with the recorded seed and
// re-verify exactly the saved (instant, lost) state.
int cc_run_replay(const Cfg& cfg) {
  crashcheck::ReplayFile rf;
  std::string err;
  if (!crashcheck::ReplayFile::load(cfg.cc_replay, &rf, &err)) {
    fail("replay load: %s", err.c_str());
    return 2;
  }
  const CcFamily* fam = nullptr;
  for (const CcFamily& f : kCcFamilies) {
    if (rf.family == f.name && rf.variant == f.variant) fam = &f;
  }
  if (fam == nullptr) {
    fail("replay names unknown family %s/%d", rf.family.c_str(), rf.variant);
    return 2;
  }
  Cfg c2 = cfg;
  c2.seed = rf.seed;
  CcRun run;
  if (!cc_record(c2, *fam, rf.sabotage, &run)) return 1;
  crashcheck::Explorer ex(cc_explore_cfg(c2));
  const std::string why = ex.replay(
      run.trace, rf.instant, rf.lost,
      [&](const std::vector<std::byte>& img, bool fin) {
        return cc_audit(run, img, fin);
      });
  if (!cfg.keep) cc_unlink(run);
  if (why.empty()) {
    std::printf("replay %s instant %zu: PASS (image verifies clean)\n",
                rf.label.c_str(), rf.instant);
    return 0;
  }
  std::printf("replay %s instant %zu: VIOLATION reproduced: %s\n",
              rf.label.c_str(), rf.instant, why.c_str());
  return 1;
}

// --cc-sabotage: elide the Nth persist() of the alloc op (or sweep all of
// them) and demand BOTH detectors catch the hole.
int cc_run_sabotage(const Cfg& cfg) {
  const CcFamily& fam = kCcFamilies[0];  // alloc/0: the canonical publish
  std::uint64_t lo = 1, hi = 1;
  if (cfg.cc_sabotage > 0) {
    lo = hi = static_cast<std::uint64_t>(cfg.cc_sabotage);
  } else {
    // Sweep bound: one clean recording counts the op's persists (each
    // persist contributes exactly one fence; explicit fences only add
    // slack to the bound).
    CcRun probe;
    if (!cc_record(cfg, fam, 0, &probe)) return 1;
    hi = probe.trace.fence_count();
    cc_unlink(probe);
    if (hi == 0) {
      fail("sabotage sweep: the op recorded no fences");
      return 1;
    }
  }
  for (std::uint64_t nth = lo; nth <= hi; ++nth) {
    CcRun run;
    if (!cc_record(cfg, fam, nth, &run)) return 1;
    const crashcheck::LintReport lint = crashcheck::lint_trace(run.trace);
    const std::uint64_t missing =
        lint.count(crashcheck::LintKind::kMissingFlush) +
        lint.count(crashcheck::LintKind::kMissingFence);
    crashcheck::Explorer ex(cc_explore_cfg(cfg));
    std::vector<crashcheck::Violation> viols;
    const crashcheck::ExploreStats st = ex.explore(
        run.trace,
        [&](const std::vector<std::byte>& img, bool fin) {
          return cc_audit(run, img, fin);
        },
        &viols);
    std::printf("sabotage nth=%" PRIu64 ": lint missing=%" PRIu64
                " explorer violations=%" PRIu64 " (distinct=%" PRIu64 ")\n",
                nth, missing, st.violations, st.distinct);
    if (missing > 0 && !viols.empty()) {
      cc_report_violation(cfg, run, viols[0], /*save=*/true);
      std::printf("PASS: elided persist #%" PRIu64
                  " caught by both the lint and the explorer\n", nth);
      if (!cfg.keep) cc_unlink(run);
      return 0;
    }
    if (!cfg.keep) cc_unlink(run);
  }
  fail("sabotage: no elided persist was caught by BOTH detectors");
  return 1;
}

int run_crashcheck(const Cfg& cfg) {
  if (!cfg.cc_replay.empty()) return cc_run_replay(cfg);
  if (cfg.cc_sabotage != 0) return cc_run_sabotage(cfg);

  crashcheck::Explorer ex(cc_explore_cfg(cfg));  // run-wide image dedup
  crashcheck::ExploreStats total;
  crashcheck::LintReport lint_all;
  std::uint64_t viol_total = 0;
  bool replay_saved = false;
  std::string last_path, last_snapdir;

  for (const CcFamily& fam : kCcFamilies) {
    CcRun run;
    if (!cc_record(cfg, fam, 0, &run)) return 1;
    std::vector<crashcheck::Violation> viols;
    const crashcheck::ExploreStats st = ex.explore(
        run.trace,
        [&](const std::vector<std::byte>& img, bool fin) {
          return cc_audit(run, img, fin);
        },
        &viols);
    total.add(st);
    const crashcheck::LintReport lr = crashcheck::lint_trace(run.trace);
    crashcheck::lint_merge(&lint_all, lr);
    std::printf("crashcheck %-14s events=%-6zu fences=%-4zu instants=%-5" PRIu64
                " at-risk<=%-3" PRIu64 " distinct=%-6" PRIu64 " viol=%" PRIu64
                "%s\n",
                run.label.c_str(), run.trace.events.size(),
                run.trace.fence_count(), st.instants, st.max_at_risk,
                st.distinct, st.violations, st.truncated != 0 ? " (budget)" : "");
    for (const crashcheck::Violation& v : viols) {
      cc_report_violation(cfg, run, v, /*save=*/!replay_saved);
      replay_saved = true;
    }
    viol_total += st.violations;
    last_path = run.hpath;
    last_snapdir = run.snapdir;
    const bool last =
        &fam == &kCcFamilies[sizeof(kCcFamilies) / sizeof(kCcFamilies[0]) - 1];
    if (!last && !cfg.keep) cc_unlink(run);
  }

  // Lint verdict over every recorded trace.
  const std::uint64_t missing_flush =
      lint_all.count(crashcheck::LintKind::kMissingFlush);
  const std::uint64_t missing_fence =
      lint_all.count(crashcheck::LintKind::kMissingFence);
  for (const crashcheck::LintFinding& f : lint_all.findings) {
    if (f.kind == crashcheck::LintKind::kUntrackedStore) continue;
    std::printf("lint %-15s x%-5" PRIu64 " line %-6u at %s\n",
                crashcheck::lint_kind_name(f.kind), f.count, f.first_line,
                crashcheck::describe_site(f.site).c_str());
  }
  std::printf("crashcheck: %" PRIu64 " distinct persistent states, %" PRIu64
              " violation(s); lint: missing-flush=%" PRIu64
              " missing-fence=%" PRIu64 " redundant-flush=%" PRIu64
              " untracked-lines=%" PRIu64 "\n",
              ex.distinct_total(), viol_total, missing_flush, missing_fence,
              lint_all.count(crashcheck::LintKind::kRedundantFlush),
              lint_all.count(crashcheck::LintKind::kUntrackedStore));

  // Stamp the surviving heap file so a postmortem shows how much
  // exploration it lived through (flight event + counters).
  if (!last_path.empty()) {
    try {
      core::Options o =
          cc_opts(kCcFamilies[sizeof(kCcFamilies) / sizeof(kCcFamilies[0]) - 1]);
      o.flight = obs::FlightMode::kPersistent;
      auto h = Heap::open(last_path, o);
      h->note_flight(obs::FlightOp::kCrashCheck, ex.distinct_total());
#if POSEIDON_OBS_ENABLED
      h->metrics_mut().crashcheck_states.inc(ex.distinct_total());
      h->metrics_mut().crashcheck_violations.inc(viol_total);
#endif
    } catch (const std::exception& e) {
      std::fprintf(stderr, "crashcheck stamp: %s\n", e.what());
    }
    if (!cfg.keep) cc_unlink_paths(last_path, last_snapdir);
  }

  const bool ok = viol_total == 0 && missing_flush == 0 && missing_fence == 0;
  std::printf("%s: crashcheck seed=%" PRIu64 "\n", ok ? "PASS" : "FAIL",
              cfg.seed);
  return ok ? 0 : 1;
}

// ---- kill-both torture (--svc --kill-both) ---------------------------------
//
// The hardest reclaim story: a wedged victim client AND the serving server
// die in the same window — server FIRST, so no live reclaimer ever
// witnesses the client's death.  The next server's start-sweep must prove
// the old sessions dead from the stale segment alone: drain the victim's
// never-consumed completions (freeing those blocks if still owned) and
// reclaim the orphaned allocations past the session's consumed watermark
// (allocs the dead server committed but never published into the ring).
// A probe round-trip proves the service recovered; parent-driven slot
// traffic between kills keeps a persistent model alive so the final audit
// can be EXACT: live blocks == {slot table} + {published slots}, zero
// leaks, strict fsck.

// Wait until the victim's session advertises phase 2 (in-flight handles
// and wedged claims in place) through the public segment.
bool kb_wait_phase2(const Cfg& cfg, pid_t pid, std::uint64_t round) {
  for (unsigned waited = 0; waited < 30000; waited += 2) {
    try {
      pmem::ShmSegment seg =
          pmem::ShmSegment::attach(svc::svc_path(cfg.path), true);
      const svc::SvcHeader* h = svc::header_of(seg.data());
      if (h->magic == svc::kSvcMagic) {
        svc::SessionSlot* s = svc::sessions_of(seg.data());
        for (unsigned i = 0; i < h->nsessions; ++i) {
          if (s[i].state.load(std::memory_order_acquire) == svc::kSessActive &&
              s[i].pid == static_cast<std::uint64_t>(pid) &&
              s[i].phase.load(std::memory_order_acquire) == 2) {
            return true;
          }
        }
      }
    } catch (const std::exception&) {
    }
    ::usleep(2000);
  }
  return fail("round %" PRIu64 ": timed out waiting for victim phase 2", round);
}

// True while any active session still belongs to `pid` — the start-sweep
// must leave none.
bool kb_session_lingers(const Cfg& cfg, pid_t pid) {
  try {
    pmem::ShmSegment seg =
        pmem::ShmSegment::attach(svc::svc_path(cfg.path), true);
    const svc::SvcHeader* h = svc::header_of(seg.data());
    if (h->magic != svc::kSvcMagic) return false;
    svc::SessionSlot* s = svc::sessions_of(seg.data());
    for (unsigned i = 0; i < h->nsessions; ++i) {
      if (s[i].state.load(std::memory_order_acquire) == svc::kSessActive &&
          s[i].pid == static_cast<std::uint64_t>(pid)) {
        return true;
      }
    }
  } catch (const std::exception&) {
  }
  return false;
}

int run_svc_kill_both(const Cfg& cfg) {
  unlink_heap(cfg);
  auto reap = [](pid_t pid) {
    int st = 0;
    while (::waitpid(pid, &st, 0) < 0 && errno == EINTR) {}
    return st;
  };

  pid_t server = fork_server_child(cfg);
  if (server < 0) {
    fail("fork server: %s", std::strerror(errno));
    return 1;
  }
  pid_t cur = -1;
  std::uint64_t gen = 0;
  if (!svc_incumbent(cfg, 30000, &cur, &gen)) {
    fail("first server never served");
    (void)::kill(server, SIGKILL);
    reap(server);
    return 1;
  }

  // Control session: persistent slot table as the audit model.
  {
    std::unique_ptr<svc::SvcClient> ctl;
    for (int i = 0;; ++i) {
      try {
        ctl = svc::SvcClient::connect(cfg.path);
        break;
      } catch (const std::exception& e) {
        if (i > 5000) {
          fail("kill-both control connect: %s", e.what());
          (void)::kill(server, SIGKILL);
          reap(server);
          return 1;
        }
        ::usleep(2000);
      }
    }
    const std::uint64_t bytes =
        sizeof(SlotTable) + cfg.nslots() * sizeof(SlotRec);
    NvPtr t;
    if (ctl->alloc(&bytes, 1, &t) != ErrorCode::kOk || t.is_null()) {
      fail("slot table allocation through the service failed");
      return 1;
    }
    auto* table = static_cast<SlotTable*>(ctl->raw(t));
    std::memset(table, 0, bytes);
    table->magic = kMagic;
    table->nslots = cfg.nslots();
    table->seed = cfg.seed;
    pmem::persist(table, bytes);
    if (ctl->set_root(t) != ErrorCode::kOk) {
      fail("set_root through the service failed");
      return 1;
    }
  }

  std::mt19937_64 rng(cfg.seed);
  bool ok = true;
  for (std::uint64_t round = 1; ok && round <= cfg.rounds; ++round) {
    // Fork the victim: sync batches, then the wedge (in-flight handles +
    // held claims), then phase 2 and pause().
    const std::uint64_t vseed = rng();
    const pid_t vic = ::fork();
    if (vic < 0) {
      fail("fork victim: %s", std::strerror(errno));
      ok = false;
      break;
    }
    if (vic == 0) svc_victim_main(cfg, vseed);  // never returns

    if (!kb_wait_phase2(cfg, vic, round)) {
      (void)::kill(vic, SIGKILL);
      reap(vic);
      ok = false;
      break;
    }

    // Server first — the live reclaimer must never see the client die.
    (void)::kill(server, SIGKILL);
    reap(server);
    (void)::kill(vic, SIGKILL);
    const int vst = reap(vic);
    if (!(WIFSIGNALED(vst) && WTERMSIG(vst) == SIGKILL)) {
      fail("round %" PRIu64 ": victim exited on its own (status 0x%x)", round,
           vst);
      ok = false;
      break;
    }

    // The successor's start-sweep must reclaim the dead pair's session.
    server = fork_server_child(cfg);
    if (server < 0) {
      fail("fork successor: %s", std::strerror(errno));
      ok = false;
      break;
    }
    // The dead server's header still reads kServing until the successor
    // takes over, so poll until the generation actually advances.
    pid_t now = -1;
    std::uint64_t now_gen = 0;
    for (unsigned waited = 0; now_gen <= gen && waited < 30000; waited += 2) {
      if (svc_incumbent(cfg, 2, &now, &now_gen) && now_gen > gen) break;
      ::usleep(2000);
    }
    if (now_gen <= gen) {
      fail("round %" PRIu64 ": successor never served (gen %" PRIu64 ")",
           round, now_gen);
      ok = false;
      break;
    }
    gen = now_gen;
    if (kb_session_lingers(cfg, vic)) {
      fail("round %" PRIu64 ": dead victim's session survived the start-sweep",
           round);
      ok = false;
      break;
    }

    // Fresh probe: the service works, and the slot-table traffic keeps the
    // persistent model moving between kills.
    std::unique_ptr<svc::SvcClient> probe;
    try {
      probe = svc::SvcClient::connect(cfg.path);
    } catch (const std::exception& e) {
      fail("round %" PRIu64 ": probe connect: %s", round, e.what());
      ok = false;
      break;
    }
    if (!svc_probe_roundtrip(probe.get(), vseed)) {
      ok = false;
      break;
    }
    NvPtr root;
    if (probe->get_root(&root) != ErrorCode::kOk || root.is_null()) {
      fail("round %" PRIu64 ": root lost", round);
      ok = false;
      break;
    }
    auto* table = static_cast<SlotTable*>(probe->raw(root));
    if (table == nullptr || table->magic != kMagic) {
      fail("round %" PRIu64 ": slot table lost", round);
      ok = false;
      break;
    }
    SlotRec* slots = slots_of(table);
    std::uint64_t x = vseed ^ 0xb0a710adull;
    for (unsigned step = 0; step < 3 && ok; ++step) {
      SlotRec& s = slots[splitmix(x) % table->nslots];
      if (s.tag == 0) {
        const std::uint64_t tag = splitmix(x) | 1;
        const std::uint64_t size = size_for_tag(tag);
        ErrorCode e = ErrorCode::kOk;
        const NvPtr p = probe->alloc_one(size, &e);
        if (e != ErrorCode::kOk || p.is_null()) {
          ok = fail("round %" PRIu64 ": control publish failed", round);
          break;
        }
        fill_payload(probe->raw(p), size, tag);
        pmem::persist(probe->raw(p), size);
        s.ptr = p;
        s.tag = tag;
        s.csum = slot_csum(s);
        pmem::persist(&s, sizeof s);
      } else {
        if (!payload_matches(probe->raw(s.ptr), 8, s.tag)) {
          ok = fail("round %" PRIu64 ": published payload rotted", round);
          break;
        }
        const NvPtr p = s.ptr;
        std::memset(&s, 0, sizeof s);
        pmem::persist(&s, sizeof s);
        if (probe->free_one(p) != ErrorCode::kOk) {
          ok = fail("round %" PRIu64 ": control unpublish failed", round);
          break;
        }
      }
    }
    probe.reset();  // clean session close
    std::printf("round %3" PRIu64 ": killed server+client (victim %-6d) -> "
                "gen %" PRIu64 " swept and serving\n",
                round, static_cast<int>(vic), gen);
  }

  // Retire the last server cleanly and audit in-process.
  (void)::kill(server, SIGTERM);
  reap(server);
  std::unique_ptr<Heap> heap;
  for (int i = 0; i < 5000 && heap == nullptr; ++i) {
    try {
      heap = Heap::open(cfg.path, base_opts(cfg));
    } catch (const Error& e) {
      if (e.poseidon_code() != ErrorCode::kHeapBusy) {
        fail("audit open: %s", e.what());
        return 1;
      }
      ::usleep(2000);
    }
  }
  if (heap == nullptr) {
    fail("heap still owned after the final server was retired");
    return 1;
  }

  // Exact audit: dead victims owned nothing (their sync traffic freed
  // everything, their wedge was reclaimed), so live blocks must be exactly
  // the slot table plus the parent's published slots.
  std::map<std::pair<std::uint64_t, std::uint64_t>, std::uint32_t> live;
  for (unsigned s = 0; s < heap->shard_count(); ++s) {
    const core::PoolShard* sh = heap->shard(s);
    if (sh == nullptr) {
      fail("shard %u quarantined at audit open", s);
      return 1;
    }
    const std::uint64_t id = sh->heap_id();
    sh->visit_blocks([&](unsigned local, std::uint64_t off, std::uint32_t cls,
                         std::uint32_t status) {
      if (status != core::kBlockAllocated) return;
      const NvPtr p = NvPtr::make(id, static_cast<std::uint16_t>(local), off);
      live.emplace(std::make_pair(p.heap_id, p.packed), cls);
    });
  }
  const NvPtr root = heap->root();
  auto* table = static_cast<SlotTable*>(heap->raw(root));
  if (table == nullptr || table->magic != kMagic) {
    fail("slot table lost at final audit");
    return 1;
  }
  if (live.erase(std::make_pair(root.heap_id, root.packed)) != 1) {
    fail("slot table's own block missing from the live set");
    return 1;
  }
  std::uint64_t published = 0;
  std::uint64_t diffs = 0;
  SlotRec* slots = slots_of(table);
  for (std::uint64_t i = 0; i < table->nslots; ++i) {
    const SlotRec& s = slots[i];
    if (s.tag == 0 && s.ptr.is_null() && s.csum == 0) continue;
    if (s.tag == 0 || s.ptr.is_null() || s.csum != slot_csum(s)) {
      ++diffs;  // the parent publishes synchronously: tearing is impossible
      std::fprintf(stderr, "DIFF slot %" PRIu64 ": torn record\n", i);
      continue;
    }
    const auto it = live.find(std::make_pair(s.ptr.heap_id, s.ptr.packed));
    if (it == live.end()) {
      ++diffs;
      std::fprintf(stderr, "DIFF slot %" PRIu64 ": published block not live\n",
                   i);
      continue;
    }
    if (!payload_matches(heap->raw(s.ptr), size_for_tag(s.tag), s.tag)) {
      ++diffs;
      std::fprintf(stderr, "DIFF slot %" PRIu64 ": payload corrupt\n", i);
      continue;
    }
    live.erase(it);
    ++published;
  }
  for (const auto& [key, cls] : live) {
    (void)cls;
    ++diffs;  // an unswept orphan from a dead pair
    std::fprintf(stderr, "DIFF: leaked block {%016" PRIx64 ",%016" PRIx64
                 "} — start-sweep missed it\n",
                 key.first, key.second);
  }
  if (diffs != 0) ok = fail("%" PRIu64 " model diff(s) after kill-both", diffs);

  const core::FsckReport rep = heap->fsck();
  if (rep.repaired != 0 || rep.quarantined != 0 || rep.records_dropped != 0 ||
      rep.records_synthesized != 0) {
    ok = fail("fsck not clean (repaired=%u quarantined=%u dropped=%" PRIu64
              " synthesized=%" PRIu64 ")",
              rep.repaired, rep.quarantined, rep.records_dropped,
              rep.records_synthesized);
  }
  std::string why;
  if (!heap->check_invariants(&why)) {
    ok = fail("invariants after kill-both torture: %s", why.c_str());
  }
#if POSEIDON_OBS_ENABLED
  std::uint64_t sweeps = 0;
  for (const auto& e : heap->flight_events()) {
    if (e.op == static_cast<std::uint16_t>(obs::FlightOp::kSvcReclaim) ||
        e.op == static_cast<std::uint16_t>(obs::FlightOp::kOrphanReclaim)) {
      ++sweeps;
    }
  }
  std::printf("flight: %" PRIu64 " reclaim event(s) still in the ring\n",
              sweeps);
  // Every round put one dead session in front of the successor's
  // start-sweep; the persistent ring must still hold those markers.
  if (ok && sweeps < cfg.rounds) {
    ok = fail("expected >= %" PRIu64 " reclaim flight events, found %" PRIu64,
              cfg.rounds, sweeps);
  }
#endif
  heap.reset();
  if (!ok) return 1;
  if (!cfg.keep) unlink_heap(cfg);
  std::printf("PASS: %" PRIu64 " kill-both rounds (published=%" PRIu64
              "), seed=%" PRIu64 "\n",
              cfg.rounds, published, cfg.seed);
  return 0;
}

bool setup_heap(const Cfg& cfg) {
  unlink_heap(cfg);
  core::Options o = base_opts(cfg);
  std::unique_ptr<Heap> heap;
  try {
    heap = Heap::create(cfg.path, cfg.capacity, o);
  } catch (const std::exception& e) {
    return fail("create %s: %s", cfg.path.c_str(), e.what());
  }
  const std::uint64_t bytes =
      sizeof(SlotTable) + cfg.nslots() * sizeof(SlotRec);
  const NvPtr p = heap->alloc(bytes);
  if (p.is_null()) return fail("slot table allocation failed");
  auto* table = static_cast<SlotTable*>(heap->raw(p));
  std::memset(table, 0, bytes);
  table->magic = kMagic;
  table->nslots = cfg.nslots();
  table->seed = cfg.seed;
  pmem::persist(table, bytes);
  heap->set_root(p);
  return true;  // clean close: owner record cleared
}

}  // namespace

int main(int argc, char** argv) {
  Cfg cfg;
  for (int i = 1; i < argc; ++i) {
    const std::string a = argv[i];
    auto next = [&]() -> const char* {
      return i + 1 < argc ? argv[++i] : nullptr;
    };
    const char* v;
    if (a == "--rounds" && (v = next())) cfg.rounds = std::strtoull(v, nullptr, 0);
    else if (a == "--seed" && (v = next())) {
      cfg.seed = std::strtoull(v, nullptr, 0);
      cfg.seed_given = true;
    }
    else if (a == "--shards" && (v = next())) cfg.shards = static_cast<unsigned>(std::atoi(v));
    else if (a == "--threads" && (v = next())) cfg.threads = static_cast<unsigned>(std::atoi(v));
    else if (a == "--slots" && (v = next())) cfg.slots_per_thread = std::strtoull(v, nullptr, 0);
    else if (a == "--capacity" && (v = next())) cfg.capacity = std::strtoull(v, nullptr, 0);
    else if (a == "--fault" && (v = next())) cfg.fault = v;
    else if (a == "--path" && (v = next())) cfg.path = v;
    else if (a == "--keep") cfg.keep = true;
    else if (a == "--svc") cfg.svc = true;
    else if (a == "--kill-server") cfg.kill_server = true;
    else if (a == "--kill-both") cfg.kill_both = true;
    else if (a == "--snapshot") cfg.snapshot = true;
    else if (a == "--crashcheck") cfg.crashcheck = true;
    else if (a == "--cc-exhaustive" && (v = next())) {
      cfg.cc_exhaustive = static_cast<unsigned>(std::atoi(v));
    }
    else if (a == "--cc-rand" && (v = next())) {
      cfg.cc_rand = static_cast<unsigned>(std::atoi(v));
    }
    else if (a == "--cc-budget" && (v = next())) {
      cfg.cc_budget = std::strtoull(v, nullptr, 0);
    }
    else if (a == "--cc-fork") cfg.cc_fork = true;
    else if (a == "--cc-sabotage" && (v = next())) {
      cfg.cc_sabotage = std::strcmp(v, "sweep") == 0 ? -1 : std::atoll(v);
    }
    else if (a == "--cc-out" && (v = next())) cfg.cc_out = v;
    else if (a == "--replay" && (v = next())) cfg.cc_replay = v;
    else {
      std::fprintf(stderr,
                   "usage: %s [--rounds N] [--seed S] [--shards N] "
                   "[--threads N] [--slots N] [--capacity BYTES] "
                   "[--fault op:period:errno[,...]] [--path FILE] [--keep] "
                   "[--snapshot] [--svc [--kill-server|--kill-both] "
                   "[--snapshot]] [--crashcheck [--cc-exhaustive N] "
                   "[--cc-rand N] [--cc-budget N] [--cc-fork] "
                   "[--cc-sabotage N|sweep] [--cc-out FILE] "
                   "[--replay FILE]]\n",
                   argv[0]);
      return 2;
    }
  }
  if ((cfg.kill_server || cfg.kill_both) && !cfg.svc) {
    std::fprintf(stderr, "--kill-server/--kill-both require --svc\n");
    return 2;
  }
  if (cfg.kill_server && cfg.kill_both) {
    std::fprintf(stderr, "--kill-server and --kill-both are exclusive\n");
    return 2;
  }
  if (cfg.crashcheck && cfg.svc) {
    std::fprintf(stderr, "--crashcheck and --svc are exclusive\n");
    return 2;
  }
  if (cfg.snapshot && cfg.kill_server) {
    std::fprintf(stderr, "--snapshot is not supported with --kill-server\n");
    return 2;
  }
  if (cfg.snapshot && !cfg.fault.empty()) {
    std::fprintf(stderr, "--snapshot expects a fault-free run\n");
    return 2;
  }
  if (cfg.shards == 0 || cfg.threads == 0 || cfg.slots_per_thread == 0 ||
      cfg.rounds == 0) {
    std::fprintf(stderr, "rounds/shards/threads/slots must be nonzero\n");
    return 2;
  }
  if (!cfg.seed_given) {
    cfg.seed = (static_cast<std::uint64_t>(std::random_device{}()) << 32) ^
               std::random_device{}();
  }
  if (cfg.path.empty()) {
    cfg.path = "/dev/shm/poseidon_torture." +
               std::to_string(::getpid()) + ".heap";
  }
  if (const char* mult = std::getenv("POSEIDON_FUZZ_MULT")) {
    const long m = std::atol(mult);
    if (m > 1) cfg.rounds *= static_cast<std::uint64_t>(m);
  }

  std::printf("torture%s%s%s: seed=%" PRIu64 " rounds=%" PRIu64
              " shards=%u threads=%u slots=%" PRIu64 " path=%s%s%s\n",
              cfg.svc ? (cfg.kill_server
                             ? " (svc kill-server)"
                             : (cfg.kill_both ? " (svc kill-both)" : " (svc)"))
                      : "",
              cfg.snapshot ? " (snapshot)" : "",
              cfg.crashcheck ? " (crashcheck)" : "",
              cfg.seed, cfg.rounds, cfg.shards, cfg.threads, cfg.nslots(),
              cfg.path.c_str(), cfg.fault.empty() ? "" : " fault=",
              cfg.fault.c_str());

  if (cfg.crashcheck) return run_crashcheck(cfg);
  if (cfg.svc) {
    if (cfg.kill_server) return run_svc_kill(cfg);
    if (cfg.kill_both) return run_svc_kill_both(cfg);
    return run_svc(cfg);
  }

  if (!setup_heap(cfg)) return 1;

  std::mt19937_64 rng(cfg.seed);
  RoundStats total;
  for (std::uint64_t r = 1; r <= cfg.rounds; ++r) {
    RoundStats st;
    if (!(cfg.snapshot ? run_snap_round(cfg, r, rng, &st)
                       : run_round(cfg, r, rng, &st))) {
      std::fprintf(stderr,
                   "REPRODUCE: POSEIDON_FAKE_NUMA=%u %s --rounds %" PRIu64
                   " --seed %" PRIu64 "%s\n",
                   cfg.shards, argv[0], cfg.rounds, cfg.seed,
                   cfg.snapshot ? " --snapshot" : "");
      if (cfg.keep) {
        std::fprintf(stderr, "heap kept at %s\n", cfg.path.c_str());
      }
      return 1;
    }
    total.survivors = st.survivors;  // point-in-time, not cumulative
    total.aborted += st.aborted;
    total.leaks += st.leaks;
    total.torn += st.torn;
  }
  if (!cfg.keep) unlink_heap(cfg);
  std::printf("PASS: %" PRIu64 " rounds (surviving=%" PRIu64 " aborted=%"
              PRIu64 " leaks=%" PRIu64 " torn=%" PRIu64 "), seed=%" PRIu64 "\n",
              cfg.rounds, total.survivors, total.aborted, total.leaks,
              total.torn, cfg.seed);
  return 0;
}
