// poseidon_svc — the allocation-service server ("Poseidon as a server").
//
// Opens (or creates, with --capacity) the heap exclusively, publishes the
// shared-memory command segment beside it, and serves ring requests from
// client processes until SIGTERM/SIGINT — which drains (clients get typed
// kSvcRetry), serves out the rings, and marks the segment dead so clients
// fail over to read-only.  While serving it prints a status line every few
// seconds: requests served, sessions reclaimed, per-shard ring depth.
//
//   $ ./poseidon_svc --create --capacity $((64<<20)) /dev/shm/app.heap
//   $ ./poseidon_svc /dev/shm/app.heap          # heap must already exist
//
// Inspect a live server from another terminal:
//   $ ./heap_inspect --svc /dev/shm/app.heap
#include <signal.h>
#include <unistd.h>

#include <cinttypes>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>

#include "common/error.hpp"
#include "mpk/mpk.hpp"
#include "svc/ring.hpp"
#include "svc/server.hpp"

using namespace poseidon;

namespace {

volatile sig_atomic_t g_stop = 0;
void on_term(int) { g_stop = 1; }

void usage(const char* argv0) {
  std::fprintf(stderr,
               "usage: %s [--create] [--capacity BYTES] [--shards N] "
               "[--subheaps N] [--quiet] <heap-file>\n"
               "  --create     create the heap if the file does not exist\n"
               "  --capacity   user capacity for --create (default 64 MiB)\n"
               "  --shards     NUMA shard count (0 = one per node)\n"
               "  --subheaps   sub-heaps per shard (0 = auto)\n"
               "  --quiet      no periodic status line\n",
               argv0);
}

}  // namespace

int main(int argc, char** argv) {
  bool create = false;
  bool quiet = false;
  std::uint64_t capacity = 64ull << 20;
  unsigned shards = 0, subheaps = 0;
  const char* path = nullptr;
  for (int i = 1; i < argc; ++i) {
    const std::string a = argv[i];
    auto next = [&]() -> const char* {
      return i + 1 < argc ? argv[++i] : nullptr;
    };
    const char* v;
    if (a == "--create") create = true;
    else if (a == "--quiet") quiet = true;
    else if (a == "--capacity" && (v = next())) capacity = std::strtoull(v, nullptr, 0);
    else if (a == "--shards" && (v = next())) shards = static_cast<unsigned>(std::atoi(v));
    else if (a == "--subheaps" && (v = next())) subheaps = static_cast<unsigned>(std::atoi(v));
    else if (path == nullptr && a.size() && a[0] != '-') path = argv[i];
    else { usage(argv[0]); return 2; }
  }
  if (path == nullptr) { usage(argv[0]); return 2; }

  svc::ServerOptions opts;
  opts.heap_opts.nshards = shards;
  opts.heap_opts.nsubheaps = subheaps;
  opts.heap_opts.protect = mpk::ProtectMode::kAuto;
  if (create) opts.create_capacity = capacity;

  std::unique_ptr<svc::SvcServer> server;
  try {
    server = svc::SvcServer::start(path, opts);
  } catch (const Error& e) {
    if (e.poseidon_code() == ErrorCode::kHeapBusy) {
      std::fprintf(stderr,
                   "%s: %s\n"
                   "another process owns this heap — stop it first, or run "
                   "clients against the server that owns it\n",
                   path, e.what());
      return 1;
    }
    std::fprintf(stderr, "%s: %s\n", path, e.what());
    return 1;
  } catch (const std::exception& e) {
    std::fprintf(stderr, "%s: %s\n", path, e.what());
    return 1;
  }

  struct sigaction sa{};
  sa.sa_handler = on_term;
  (void)::sigaction(SIGTERM, &sa, nullptr);
  (void)::sigaction(SIGINT, &sa, nullptr);

  std::printf("poseidon_svc: serving %s (segment %s, pid %d)\n", path,
              server->segment_path().c_str(), static_cast<int>(::getpid()));
  std::fflush(stdout);

  unsigned tick = 0;
  while (!g_stop) {
    ::usleep(200 * 1000);
    if (quiet || ++tick % 25 != 0) continue;  // every ~5s
    // Ring depths straight from the segment, exactly what an inspector
    // attached read-only would report.
    std::byte* base = server->segment_base();
    const svc::SvcHeader* h = svc::header_of(base);
    std::uint64_t depth = 0;
    for (unsigned s = 0; s < h->nshards; ++s) {
      depth += svc::sub_depth(svc::sub_ring_of(base, s));
    }
    unsigned active = 0;
    const svc::SessionSlot* sess = svc::sessions_of(base);
    for (unsigned i = 0; i < h->nsessions; ++i) {
      if (sess[i].state.load(std::memory_order_relaxed) == svc::kSessActive) {
        ++active;
      }
    }
    std::printf("poseidon_svc: state=%s sessions=%u served=%" PRIu64
                " reclaimed=%" PRIu64 " ring-depth=%" PRIu64 "\n",
                svc::state_name(server->state()), active,
                server->requests_served(), server->sessions_reclaimed(),
                depth);
    std::fflush(stdout);
  }

  std::printf("poseidon_svc: draining (served %" PRIu64 ")\n",
              server->requests_served());
  std::fflush(stdout);
  server->stop();  // drain, serve out, join, mark kDead
  std::printf("poseidon_svc: stopped\n");
  return 0;
}
