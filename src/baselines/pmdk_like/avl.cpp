#include "baselines/pmdk_like/avl.hpp"

#include <algorithm>

namespace poseidon::baselines {

ExtentAvl::~ExtentAvl() { destroy(root_); }

void ExtentAvl::destroy(Node* n) noexcept {
  if (n == nullptr) return;
  destroy(n->left);
  destroy(n->right);
  delete n;
}

void ExtentAvl::clear() {
  destroy(root_);
  root_ = nullptr;
  size_ = 0;
}

ExtentAvl::Node* ExtentAvl::rotate_left(Node* n) noexcept {
  Node* r = n->right;
  n->right = r->left;
  r->left = n;
  n->height = 1 + std::max(height(n->left), height(n->right));
  r->height = 1 + std::max(height(r->left), height(r->right));
  return r;
}

ExtentAvl::Node* ExtentAvl::rotate_right(Node* n) noexcept {
  Node* l = n->left;
  n->left = l->right;
  l->right = n;
  n->height = 1 + std::max(height(n->left), height(n->right));
  l->height = 1 + std::max(height(l->left), height(l->right));
  return l;
}

ExtentAvl::Node* ExtentAvl::rebalance(Node* n) noexcept {
  n->height = 1 + std::max(height(n->left), height(n->right));
  const int bf = height(n->left) - height(n->right);
  if (bf > 1) {
    if (height(n->left->left) < height(n->left->right)) {
      n->left = rotate_left(n->left);
    }
    return rotate_right(n);
  }
  if (bf < -1) {
    if (height(n->right->right) < height(n->right->left)) {
      n->right = rotate_right(n->right);
    }
    return rotate_left(n);
  }
  return n;
}

ExtentAvl::Node* ExtentAvl::insert_node(Node* n, Extent e) {
  if (n == nullptr) return new Node{e};
  if (less(e, n->e)) {
    n->left = insert_node(n->left, e);
  } else {
    n->right = insert_node(n->right, e);
  }
  return rebalance(n);
}

void ExtentAvl::insert(Extent e) {
  root_ = insert_node(root_, e);
  ++size_;
}

ExtentAvl::Node* ExtentAvl::min_node(Node* n) noexcept {
  while (n->left != nullptr) n = n->left;
  return n;
}

ExtentAvl::Node* ExtentAvl::remove_node(Node* n, const Extent& e,
                                        bool* removed) {
  if (n == nullptr) return nullptr;
  if (less(e, n->e)) {
    n->left = remove_node(n->left, e, removed);
  } else if (less(n->e, e)) {
    n->right = remove_node(n->right, e, removed);
  } else {
    *removed = true;
    if (n->left == nullptr || n->right == nullptr) {
      Node* child = n->left != nullptr ? n->left : n->right;
      delete n;
      return child;
    }
    Node* succ = min_node(n->right);
    n->e = succ->e;
    bool dummy = false;
    n->right = remove_node(n->right, succ->e, &dummy);
  }
  return rebalance(n);
}

bool ExtentAvl::remove(Extent e) {
  bool removed = false;
  root_ = remove_node(root_, e, &removed);
  if (removed) --size_;
  return removed;
}

bool ExtentAvl::take_best_fit(std::uint32_t n, Extent* out) {
  // Walk down keeping the best (smallest-keyed) candidate >= n chunks.
  const Node* best = nullptr;
  const Node* cur = root_;
  while (cur != nullptr) {
    if (cur->e.nchunks >= n) {
      best = cur;
      cur = cur->left;
    } else {
      cur = cur->right;
    }
  }
  if (best == nullptr) return false;
  *out = best->e;
  return remove(best->e);
}

bool ExtentAvl::check_node(const Node* n, int* h) noexcept {
  if (n == nullptr) {
    *h = 0;
    return true;
  }
  int lh = 0, rh = 0;
  if (!check_node(n->left, &lh) || !check_node(n->right, &rh)) return false;
  if (n->left != nullptr && less(n->e, n->left->e)) return false;
  if (n->right != nullptr && less(n->right->e, n->e)) return false;
  if (lh - rh > 1 || rh - lh > 1) return false;
  *h = 1 + std::max(lh, rh);
  return n->height == *h;
}

bool ExtentAvl::check() const {
  int h = 0;
  return check_node(root_, &h);
}

}  // namespace poseidon::baselines
