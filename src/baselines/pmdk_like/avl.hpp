// AVL tree of free chunk extents, modelling libpmemobj's global DRAM index
// of free memory chunks (paper §3.1, §3.3).  Keyed by extent length with
// position as a tiebreak, supporting best-fit search.  The *global lock*
// protecting this tree is the scalability bottleneck the paper measures
// for large allocations; the lock lives in the caller (PmdkHeap).
//
// Coalescing does not need position queries here: neighbours are resolved
// from the persistent chunk headers (as in PMDK), which yield the exact
// extent to remove.
#pragma once

#include <cstddef>
#include <cstdint>

namespace poseidon::baselines {

// A run of `nchunks` consecutive free chunks starting at global chunk
// index `chunk` (zone-relative addressing is flattened by the caller).
struct Extent {
  std::uint32_t chunk = 0;
  std::uint32_t nchunks = 0;
};

class ExtentAvl {
 public:
  ExtentAvl() = default;
  ~ExtentAvl();
  ExtentAvl(const ExtentAvl&) = delete;
  ExtentAvl& operator=(const ExtentAvl&) = delete;

  void insert(Extent e);
  // Remove this exact extent; false when absent.
  bool remove(Extent e);
  // Smallest extent with nchunks >= n (best fit); removed and returned.
  bool take_best_fit(std::uint32_t n, Extent* out);

  std::size_t size() const noexcept { return size_; }
  void clear();

  // Validation helper: true if AVL balance/order invariants hold.
  bool check() const;

 private:
  struct Node {
    Extent e;
    Node* left = nullptr;
    Node* right = nullptr;
    int height = 1;
  };

  // Order: (nchunks, chunk).
  static bool less(const Extent& a, const Extent& b) noexcept {
    return a.nchunks != b.nchunks ? a.nchunks < b.nchunks : a.chunk < b.chunk;
  }

  static int height(const Node* n) noexcept {
    return n == nullptr ? 0 : n->height;
  }
  static Node* rotate_left(Node* n) noexcept;
  static Node* rotate_right(Node* n) noexcept;
  static Node* rebalance(Node* n) noexcept;
  static Node* insert_node(Node* n, Extent e);
  static Node* remove_node(Node* n, const Extent& e, bool* removed);
  static Node* min_node(Node* n) noexcept;
  static void destroy(Node* n) noexcept;
  static bool check_node(const Node* n, int* h) noexcept;

  Node* root_ = nullptr;
  std::size_t size_ = 0;
};

}  // namespace poseidon::baselines
