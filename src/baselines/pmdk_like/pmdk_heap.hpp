// Behavioural model of Intel PMDK's libpmemobj allocator (paper §3).
//
// Reproduces the design features the paper analyses — and blames:
//   * in-place metadata: a 16-byte object header (size, status) directly
//     precedes every allocation, so a heap overflow corrupts it and `free`
//     *trusts* the corrupted size (the Fig. 3 exploits);
//   * allocation bitmaps at a deterministic position (start of each run
//     chunk) in plain read-writable NVMM;
//   * DRAM caches: 12 arenas with per-size-class run buckets, a global
//     AVL tree of free chunk extents under a single lock (large-allocation
//     bottleneck), and a global *action log* batching frees;
//   * free-list rebuild: frees only clear bitmap bits; when an arena's
//     bucket runs dry the whole pool is rescanned sequentially under a
//     global rebuild lock (paper §3.3).
//
// The model covers allocation/deallocation behaviour and the metadata
// layout; PMDK's full redo/undo transactional machinery is out of scope
// (the paper's experiments never crash the baselines).
#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "baselines/pmdk_like/avl.hpp"
#include "pmem/pool.hpp"

namespace poseidon::baselines {

class PmdkHeap {
 public:
  static constexpr std::uint64_t kChunkSize = 256 * 1024;
  static constexpr unsigned kChunksPerZone = 64;
  static constexpr std::uint64_t kRunBitmapArea = 4096;  // first page of a run
  static constexpr unsigned kNumArenas = 12;             // as in libpmemobj
  static constexpr std::uint64_t kMaxSmall = 16 * 1024;  // run-served sizes
  static constexpr unsigned kActionLogCap = 64;          // batched frees

  // In-place object header: the vulnerable 16 bytes before each object.
  // With the canary mitigation (paper §8), the upper 56 bits of `status`
  // carry a checksum over (offset, size): a corrupted header fails the
  // check and the free is skipped rather than propagated into the
  // allocation bitmaps / chunk tree.
  struct ObjHeader {
    std::uint64_t size;
    std::uint64_t status;  // low byte: 1 = allocated, 0 = free
  };

  // `canary` enables the in-place-header checksum mitigation the paper
  // suggests for PMDK (§8); persisted in the superblock flags.
  static std::unique_ptr<PmdkHeap> create(const std::string& path,
                                          std::uint64_t capacity,
                                          bool canary = false);
  static std::unique_ptr<PmdkHeap> open(const std::string& path);

  bool canary_enabled() const noexcept;
  // Frees skipped because the header failed its canary check.
  std::uint64_t canary_rejected_frees() const noexcept {
    return canary_rejects_.load(std::memory_order_relaxed);
  }

  ~PmdkHeap();
  PmdkHeap(const PmdkHeap&) = delete;
  PmdkHeap& operator=(const PmdkHeap&) = delete;

  // malloc/free-like API returning raw pointers (in-place header design).
  void* alloc(std::size_t size);
  void free(void* p);

  void set_root(void* p);
  void* root() const;

  std::uint64_t capacity() const noexcept;
  bool contains(const void* p) const noexcept;

  // Test support: count free units/chunks by scanning NVMM metadata.
  std::uint64_t count_free_chunks() const;

 private:
  enum ChunkType : std::uint32_t {
    kChunkFree = 0,
    kChunkUsed = 1,   // head of a large extent
    kChunkCont = 2,   // continuation of a large extent
    kChunkRun = 3,    // sliced into small units
  };

  struct ChunkHdr {
    std::uint32_t type;
    std::uint32_t size_idx;   // extent length in chunks (head only)
    std::uint32_t run_unit;   // unit size for runs
    std::uint32_t pad;
  };

  struct ZoneHdr {
    std::uint64_t magic;
    std::uint32_t zone_index;
    std::uint32_t pad;
    ChunkHdr chunks[kChunksPerZone];
  };

  struct Super {
    std::uint64_t magic;
    std::uint64_t file_size;
    std::uint32_t nzones;
    std::uint32_t flags;  // bit 0: canary mitigation enabled
    std::uint64_t root_off;  // 0 = unset
  };

  struct PendingFree {
    std::uint32_t chunk;
    std::uint32_t unit_idx;
    std::uint32_t nbits;
  };

  struct Bucket {
    std::vector<std::uint32_t> runs;  // chunk ids that may have free units
  };

  // Per-arena redo lane, modelling libpmemobj's lane redo logs: every
  // allocation/free publishes its metadata updates through one (entry
  // persist + apply + clear persist), which is a real and measurable part
  // of PMDK's per-operation cost.
  struct Lane {
    alignas(64) std::uint64_t words[8];
  };

  struct Arena {
    std::mutex mu;
    std::vector<Bucket> buckets;
    Lane lane;
  };

  explicit PmdkHeap(pmem::Pool pool);

  static unsigned class_of(std::size_t size) noexcept;  // index into kUnits
  static std::uint64_t unit_of_class(unsigned ci) noexcept;

  std::byte* zone_base(std::uint32_t z) const noexcept;
  std::byte* chunk_base(std::uint32_t c) const noexcept;
  ChunkHdr* chunk_hdr(std::uint32_t c) const noexcept;
  std::uint32_t chunk_of(const void* p) const noexcept;
  std::uint64_t* run_bitmap(std::uint32_t c) const noexcept;
  std::byte* run_data(std::uint32_t c) const noexcept;
  std::uint32_t run_nunits(std::uint64_t unit) const noexcept;

  void* alloc_small(std::size_t size);
  void* alloc_large(std::size_t size);

  // Redo-lane barriers (see Lane above).
  void redo_publish(Lane& lane, std::uint64_t a, std::uint64_t b) noexcept;
  void redo_clear(Lane& lane) noexcept;

  // Canary helpers: checksum over the header's stable fields.
  std::uint64_t canary_of(const ObjHeader* hdr) const noexcept;
  void write_header(ObjHeader* hdr, std::uint64_t size) noexcept;
  bool header_intact(const ObjHeader* hdr) const noexcept;
  void free_small(std::byte* obj, ObjHeader* hdr);
  void free_large(std::byte* obj, ObjHeader* hdr);

  // Try to claim a clear bitmap bit in run `c`; -1 when full.
  int claim_unit(std::uint32_t c);
  void flush_action_log_locked();  // caller holds action_mu_
  // Sequential pool rescan refilling `bucket` with runs of class `ci`
  // (the paper's scalability killer).
  void rebuild_bucket(unsigned ci, Bucket& bucket);
  // Rebuild the AVL from chunk headers, coalescing adjacent free chunks.
  void rebuild_avl_locked();  // caller holds avl_mu_

  pmem::Pool pool_;
  Super* super_;
  std::uint32_t nchunks_total_;

  std::vector<std::unique_ptr<Arena>> arenas_;
  std::mutex avl_mu_;
  ExtentAvl avl_;
  std::mutex action_mu_;
  std::vector<PendingFree> action_log_;
  std::mutex rebuild_mu_;
  Lane large_lane_;  // guarded by avl_mu_
  std::atomic<std::uint64_t> canary_rejects_{0};
};

}  // namespace poseidon::baselines
