#include "baselines/pmdk_like/pmdk_heap.hpp"

#include <atomic>
#include <cassert>
#include <cstring>
#include <stdexcept>

#include "common/bitops.hpp"
#include "common/hash.hpp"
#include "common/topology.hpp"
#include "pmem/persist.hpp"

namespace poseidon::baselines {

namespace {

constexpr std::uint64_t kSuperMagic = 0x504d444b4c494b45ull;  // "PMDKLIKE"
constexpr std::uint64_t kZoneMagic = 0x5a4f4e45484d4147ull;

// Run unit sizes (object + 16-byte in-place header).
constexpr std::uint64_t kUnits[] = {64,   128,  256,  512,  1024,
                                    2048, 4096, 8192, 16384};
constexpr unsigned kNumClasses = sizeof(kUnits) / sizeof(kUnits[0]);

constexpr std::uint64_t kZoneBytes =
    4096 + PmdkHeap::kChunksPerZone * PmdkHeap::kChunkSize;

}  // namespace

unsigned PmdkHeap::class_of(std::size_t size) noexcept {
  const std::uint64_t need = size + sizeof(ObjHeader);
  for (unsigned i = 0; i < kNumClasses; ++i) {
    if (kUnits[i] >= need) return i;
  }
  return kNumClasses;  // not a small size
}

std::uint64_t PmdkHeap::unit_of_class(unsigned ci) noexcept {
  return kUnits[ci];
}

std::unique_ptr<PmdkHeap> PmdkHeap::create(const std::string& path,
                                           std::uint64_t capacity,
                                           bool canary) {
  const std::uint32_t nzones = static_cast<std::uint32_t>(
      (capacity + kZoneBytes - 1) / kZoneBytes);
  const std::uint64_t file_size = 4096 + std::uint64_t{nzones} * kZoneBytes;
  pmem::Pool pool = pmem::Pool::create(path, file_size);
  auto* super = reinterpret_cast<Super*>(pool.data());
  super->file_size = file_size;
  super->nzones = nzones;
  super->flags = canary ? 1u : 0u;
  super->root_off = 0;
  for (std::uint32_t z = 0; z < nzones; ++z) {
    auto* zh = reinterpret_cast<ZoneHdr*>(pool.data() + 4096 + z * kZoneBytes);
    std::memset(zh, 0, sizeof(ZoneHdr));
    zh->magic = kZoneMagic;
    zh->zone_index = z;
    pmem::persist(zh, sizeof(ZoneHdr));
  }
  super->magic = kSuperMagic;
  pmem::persist(super, sizeof(Super));
  return std::unique_ptr<PmdkHeap>(new PmdkHeap(std::move(pool)));
}

std::unique_ptr<PmdkHeap> PmdkHeap::open(const std::string& path) {
  pmem::Pool pool = pmem::Pool::open(path);
  const auto* super = reinterpret_cast<const Super*>(pool.data());
  if (pool.size() < sizeof(Super) || super->magic != kSuperMagic ||
      super->file_size != pool.size()) {
    throw std::runtime_error(path + ": not a pmdk-like heap");
  }
  return std::unique_ptr<PmdkHeap>(new PmdkHeap(std::move(pool)));
}

PmdkHeap::PmdkHeap(pmem::Pool pool) : pool_(std::move(pool)) {
  super_ = reinterpret_cast<Super*>(pool_.data());
  nchunks_total_ = super_->nzones * kChunksPerZone;
  for (unsigned i = 0; i < kNumArenas; ++i) {
    auto arena = std::make_unique<Arena>();
    arena->buckets.resize(kNumClasses);
    arenas_.push_back(std::move(arena));
  }
  action_log_.reserve(kActionLogCap);
  // DRAM caches (AVL of free chunks) are rebuilt from NVMM, as PMDK does.
  std::lock_guard<std::mutex> lk(avl_mu_);
  rebuild_avl_locked();
}

PmdkHeap::~PmdkHeap() = default;

std::byte* PmdkHeap::zone_base(std::uint32_t z) const noexcept {
  return pool_.data() + 4096 + std::uint64_t{z} * kZoneBytes;
}

std::byte* PmdkHeap::chunk_base(std::uint32_t c) const noexcept {
  return zone_base(c / kChunksPerZone) + 4096 +
         std::uint64_t{c % kChunksPerZone} * kChunkSize;
}

PmdkHeap::ChunkHdr* PmdkHeap::chunk_hdr(std::uint32_t c) const noexcept {
  auto* zh = reinterpret_cast<ZoneHdr*>(zone_base(c / kChunksPerZone));
  return &zh->chunks[c % kChunksPerZone];
}

std::uint32_t PmdkHeap::chunk_of(const void* p) const noexcept {
  const auto rel = static_cast<std::uint64_t>(
      static_cast<const std::byte*>(p) - (pool_.data() + 4096));
  const std::uint32_t z = static_cast<std::uint32_t>(rel / kZoneBytes);
  const std::uint64_t in_zone = rel % kZoneBytes - 4096;
  return z * kChunksPerZone +
         static_cast<std::uint32_t>(in_zone / kChunkSize);
}

std::uint64_t* PmdkHeap::run_bitmap(std::uint32_t c) const noexcept {
  // Allocation bitmap at the *start of the chunk* — the deterministic
  // position the paper points out as directly corruptible.
  return reinterpret_cast<std::uint64_t*>(chunk_base(c));
}

std::byte* PmdkHeap::run_data(std::uint32_t c) const noexcept {
  return chunk_base(c) + kRunBitmapArea;
}

std::uint32_t PmdkHeap::run_nunits(std::uint64_t unit) const noexcept {
  return static_cast<std::uint32_t>((kChunkSize - kRunBitmapArea) / unit);
}

bool PmdkHeap::contains(const void* p) const noexcept {
  const auto* b = static_cast<const std::byte*>(p);
  return b >= pool_.data() + 4096 && b < pool_.data() + super_->file_size;
}

std::uint64_t PmdkHeap::capacity() const noexcept {
  return std::uint64_t{nchunks_total_} * kChunkSize;
}

void PmdkHeap::redo_publish(Lane& lane, std::uint64_t a,
                            std::uint64_t b) noexcept {
  lane.words[0] = a;
  lane.words[1] = b;
  lane.words[2] = a ^ b ^ 1;  // "checksummed" redo entry
  pmem::persist(lane.words, 3 * sizeof(std::uint64_t));
}

void PmdkHeap::redo_clear(Lane& lane) noexcept {
  lane.words[2] = 0;
  pmem::persist(&lane.words[2], sizeof(std::uint64_t));
}

bool PmdkHeap::canary_enabled() const noexcept {
  return (super_->flags & 1u) != 0;
}

std::uint64_t PmdkHeap::canary_of(const ObjHeader* hdr) const noexcept {
  // Covers the header's position and its size field, so an overwrite of
  // either is detected at free time.  56 bits; the low status byte holds
  // the allocation state.
  const auto off = static_cast<std::uint64_t>(
      reinterpret_cast<const std::byte*>(hdr) - pool_.data());
  return poseidon::mix64(off ^ (hdr->size * 0x9e3779b97f4a7c15ull)) >> 8;
}

void PmdkHeap::write_header(ObjHeader* hdr, std::uint64_t size) noexcept {
  hdr->size = size;
  hdr->status = canary_enabled() ? (canary_of(hdr) << 8) | 1u : 1u;
  pmem::persist(hdr, sizeof(ObjHeader));
}

bool PmdkHeap::header_intact(const ObjHeader* hdr) const noexcept {
  if (!canary_enabled()) return true;
  return (hdr->status >> 8) == canary_of(hdr);
}

void* PmdkHeap::alloc(std::size_t size) {
  if (size == 0) return nullptr;
  if (size + sizeof(ObjHeader) <= kMaxSmall + sizeof(ObjHeader) &&
      class_of(size) < kNumClasses) {
    return alloc_small(size);
  }
  return alloc_large(size);
}

int PmdkHeap::claim_unit(std::uint32_t c) {
  const ChunkHdr* h = chunk_hdr(c);
  const std::uint32_t nunits = run_nunits(h->run_unit);
  std::uint64_t* bm = run_bitmap(c);
  const std::uint32_t nwords = (nunits + 63) / 64;
  for (std::uint32_t w = 0; w < nwords; ++w) {
    std::atomic_ref<std::uint64_t> word(bm[w]);
    std::uint64_t cur = word.load(std::memory_order_relaxed);
    while (~cur != 0) {
      const unsigned bit = static_cast<unsigned>(std::countr_one(cur));
      const std::uint32_t idx = w * 64 + bit;
      if (idx >= nunits) break;
      if (word.compare_exchange_weak(cur, cur | (1ull << bit),
                                     std::memory_order_acq_rel)) {
        pmem::persist(&bm[w], sizeof(std::uint64_t));
        return static_cast<int>(idx);
      }
    }
  }
  return -1;
}

void* PmdkHeap::alloc_small(std::size_t size) {
  const unsigned ci = class_of(size);
  const std::uint64_t unit = unit_of_class(ci);
  Arena& arena = *arenas_[thread_ordinal() % kNumArenas];
  std::lock_guard<std::mutex> lk(arena.mu);
  Bucket& bucket = arena.buckets[ci];

  for (int round = 0; round < 3; ++round) {
    while (!bucket.runs.empty()) {
      const std::uint32_t c = bucket.runs.back();
      const int idx = claim_unit(c);
      if (idx < 0) {
        bucket.runs.pop_back();  // exhausted; rediscovered only by rebuild
        continue;
      }
      std::byte* obj = run_data(c) + static_cast<std::uint64_t>(idx) * unit;
      redo_publish(arena.lane, c, static_cast<std::uint64_t>(idx));
      auto* hdr = reinterpret_cast<ObjHeader*>(obj);
      write_header(hdr, unit);
      redo_clear(arena.lane);
      return obj + sizeof(ObjHeader);
    }
    if (round == 0) {
      // Bucket dry: apply batched frees, then the sequential pool rescan
      // the paper identifies as the rebuild bottleneck (§3.3).
      {
        std::lock_guard<std::mutex> alk(action_mu_);
        flush_action_log_locked();
      }
      rebuild_bucket(ci, bucket);
    } else if (round == 1) {
      // Still nothing: carve a fresh run from the global chunk tree.
      Extent e;
      {
        std::lock_guard<std::mutex> tlk(avl_mu_);
        if (!avl_.take_best_fit(1, &e)) {
          rebuild_avl_locked();
          if (!avl_.take_best_fit(1, &e)) return nullptr;
        }
        if (e.nchunks > 1) avl_.insert({e.chunk + 1, e.nchunks - 1});
      }
      ChunkHdr* h = chunk_hdr(e.chunk);
      h->type = kChunkRun;
      h->size_idx = 1;
      h->run_unit = static_cast<std::uint32_t>(unit);
      pmem::persist(h, sizeof(ChunkHdr));
      std::memset(run_bitmap(e.chunk), 0, kRunBitmapArea);
      pmem::persist(run_bitmap(e.chunk), kRunBitmapArea);
      bucket.runs.push_back(e.chunk);
    }
  }
  return nullptr;
}

void* PmdkHeap::alloc_large(std::size_t size) {
  const std::uint32_t n = static_cast<std::uint32_t>(
      (size + sizeof(ObjHeader) + kChunkSize - 1) / kChunkSize);
  Extent e;
  {
    // The single global AVL lock: the paper's large-allocation bottleneck.
    std::lock_guard<std::mutex> lk(avl_mu_);
    if (!avl_.take_best_fit(n, &e)) {
      rebuild_avl_locked();
      if (!avl_.take_best_fit(n, &e)) return nullptr;
    }
    if (e.nchunks > n) avl_.insert({e.chunk + n, e.nchunks - n});
  }
  {
    std::lock_guard<std::mutex> lk(avl_mu_);
    redo_publish(large_lane_, e.chunk, n);
  }
  ChunkHdr* h = chunk_hdr(e.chunk);
  h->type = kChunkUsed;
  h->size_idx = n;
  h->run_unit = 0;
  pmem::persist(h, sizeof(ChunkHdr));
  for (std::uint32_t i = 1; i < n; ++i) {
    ChunkHdr* ch = chunk_hdr(e.chunk + i);
    ch->type = kChunkCont;
    ch->size_idx = 0;
    pmem::persist(ch, sizeof(ChunkHdr));
  }
  std::byte* obj = chunk_base(e.chunk);
  auto* hdr = reinterpret_cast<ObjHeader*>(obj);
  write_header(hdr, size);
  {
    std::lock_guard<std::mutex> lk(avl_mu_);
    redo_clear(large_lane_);
  }
  return obj + sizeof(ObjHeader);
}

void PmdkHeap::free(void* p) {
  if (p == nullptr || !contains(p)) return;
  auto* obj = static_cast<std::byte*>(p) - sizeof(ObjHeader);
  auto* hdr = reinterpret_cast<ObjHeader*>(obj);
  if (!header_intact(hdr)) {
    // Canary mitigation (paper §8): the header was overwritten; skip the
    // free so the corruption does not propagate into the bitmaps or the
    // chunk tree.  The object leaks — the paper is explicit that the
    // mitigation prevents propagation, not leaks.
    canary_rejects_.fetch_add(1, std::memory_order_relaxed);
    return;
  }
  // *The* vulnerability (canary off): the size is read from the in-place
  // header with no validation, exactly as the paper's Fig. 3 exploits
  // assume.
  if (hdr->size + sizeof(ObjHeader) <= kMaxSmall + sizeof(ObjHeader) &&
      chunk_hdr(chunk_of(obj))->type == kChunkRun) {
    free_small(obj, hdr);
  } else {
    free_large(obj, hdr);
  }
}

void PmdkHeap::free_small(std::byte* obj, ObjHeader* hdr) {
  const std::uint32_t c = chunk_of(obj);
  const ChunkHdr* ch = chunk_hdr(c);
  const std::uint64_t unit = ch->run_unit;
  const std::uint32_t unit_idx =
      static_cast<std::uint32_t>((obj - run_data(c)) / unit);
  // Freed size derives from the (possibly corrupted) header: a larger size
  // clears extra bitmap bits -> overlapping allocations later.
  const std::uint32_t nbits =
      static_cast<std::uint32_t>((hdr->size + unit - 1) / unit);
  hdr->status &= ~std::uint64_t{0xff};
  pmem::persist(hdr, sizeof(ObjHeader));

  Arena& arena = *arenas_[thread_ordinal() % kNumArenas];
  redo_publish(arena.lane, c, unit_idx);
  {
    std::lock_guard<std::mutex> lk(action_mu_);  // global action-log lock
    action_log_.push_back({c, unit_idx, nbits});
    if (action_log_.size() >= kActionLogCap) flush_action_log_locked();
  }
  redo_clear(arena.lane);
}

void PmdkHeap::flush_action_log_locked() {
  for (const PendingFree& pf : action_log_) {
    const ChunkHdr* ch = chunk_hdr(pf.chunk);
    if (ch->type != kChunkRun) continue;
    const std::uint32_t nunits = run_nunits(ch->run_unit);
    std::uint64_t* bm = run_bitmap(pf.chunk);
    for (std::uint32_t i = 0; i < pf.nbits; ++i) {
      const std::uint32_t idx = pf.unit_idx + i;
      if (idx >= nunits) break;
      std::atomic_ref<std::uint64_t> word(bm[idx / 64]);
      word.fetch_and(~(1ull << (idx % 64)), std::memory_order_acq_rel);
      pmem::persist(&bm[idx / 64], sizeof(std::uint64_t));
    }
  }
  action_log_.clear();
}

void PmdkHeap::free_large(std::byte* obj, ObjHeader* hdr) {
  const std::uint32_t c = chunk_of(obj);
  // Chunks released = f(corrupted header size): a smaller size strands the
  // tail chunks as kChunkCont forever -> the paper's permanent leak.
  const std::uint32_t n = static_cast<std::uint32_t>(
      (hdr->size + sizeof(ObjHeader) + kChunkSize - 1) / kChunkSize);
  hdr->status &= ~std::uint64_t{0xff};
  pmem::persist(hdr, sizeof(ObjHeader));
  for (std::uint32_t i = 0; i < n && c + i < nchunks_total_; ++i) {
    ChunkHdr* ch = chunk_hdr(c + i);
    ch->type = kChunkFree;
    ch->size_idx = 0;
    pmem::persist(ch, sizeof(ChunkHdr));
  }
  std::lock_guard<std::mutex> lk(avl_mu_);
  redo_publish(large_lane_, c, n);
  avl_.insert({c, n});
  redo_clear(large_lane_);
}

void PmdkHeap::rebuild_bucket(unsigned ci, Bucket& bucket) {
  // Sequential, whole-pool rescan under one global lock (paper §3.3):
  // every thread rebuilding any arena serializes here.
  std::lock_guard<std::mutex> lk(rebuild_mu_);
  bucket.runs.clear();  // rebuilt from scratch; avoids duplicates
  const std::uint64_t unit = unit_of_class(ci);
  for (std::uint32_t c = 0; c < nchunks_total_; ++c) {
    const ChunkHdr* h = chunk_hdr(c);
    if (h->type != kChunkRun || h->run_unit != unit) continue;
    const std::uint32_t nunits = run_nunits(unit);
    const std::uint64_t* bm = run_bitmap(c);
    bool has_free = false;
    for (std::uint32_t w = 0; w < (nunits + 63) / 64 && !has_free; ++w) {
      std::uint64_t mask = ~bm[w];
      if (w == nunits / 64 && nunits % 64 != 0) {
        mask &= (1ull << (nunits % 64)) - 1;
      }
      has_free = mask != 0;
    }
    if (has_free) bucket.runs.push_back(c);
  }
}

void PmdkHeap::rebuild_avl_locked() {
  avl_.clear();
  std::uint32_t start = 0;
  std::uint32_t len = 0;
  for (std::uint32_t c = 0; c <= nchunks_total_; ++c) {
    const bool free_chunk =
        c < nchunks_total_ && chunk_hdr(c)->type == kChunkFree;
    const bool zone_break = c % kChunksPerZone == 0;
    if (free_chunk && len > 0 && !zone_break) {
      ++len;
    } else {
      if (len > 0) avl_.insert({start, len});
      len = free_chunk ? 1 : 0;
      start = c;
    }
  }
}

std::uint64_t PmdkHeap::count_free_chunks() const {
  std::uint64_t n = 0;
  for (std::uint32_t c = 0; c < nchunks_total_; ++c) {
    if (chunk_hdr(c)->type == kChunkFree) ++n;
  }
  return n;
}

void PmdkHeap::set_root(void* p) {
  super_->root_off =
      p == nullptr
          ? 0
          : static_cast<std::uint64_t>(static_cast<std::byte*>(p) -
                                       pool_.data());
  pmem::persist(&super_->root_off, sizeof(std::uint64_t));
}

void* PmdkHeap::root() const {
  return super_->root_off == 0 ? nullptr : pool_.data() + super_->root_off;
}

}  // namespace poseidon::baselines
