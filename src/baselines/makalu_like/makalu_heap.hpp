// Behavioural model of Makalu (Bhandari et al., OOPSLA'16) as analysed by
// the paper (§3, §7.2, §9):
//   * thread-local free lists serve allocations < 400 B;
//   * a *global chunk list* under one lock serves everything >= 400 B —
//     the paper's ">400 B means global lock" scalability cliff;
//   * a *global reclaim list* redistributes blocks between threads: when a
//     thread-local list grows past a threshold, half of it is moved to the
//     reclaim list under the same global lock (the second bottleneck the
//     paper measures even for 256 B objects);
//   * no logging: crash consistency comes from offline mark-and-sweep
//     garbage collection (`collect`) that discovers and fixes persistent
//     leaks — and, as the paper criticises, silently loses anything
//     reachable only through a corrupted pointer.
//
// The heap is block-structured (4 KiB blocks) with a persistent descriptor
// per block, BDWGC-style.  Objects carry an in-place 16-byte header.  The
// conservative GC treats any 8-aligned 64-bit payload word that is a valid
// data-region *offset* as a reference (pool files may map at different
// addresses across runs, so offsets play the role Makalu's fixed mapping
// gives to raw pointers; see DESIGN.md).
#pragma once

#include <cstddef>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "baselines/pmdk_like/avl.hpp"
#include "pmem/pool.hpp"

namespace poseidon::baselines {

class MakaluHeap {
 public:
  static constexpr std::uint64_t kBlock = 4096;
  static constexpr std::size_t kSmallThreshold = 400;  // as in the paper
  static constexpr std::size_t kLocalMax = 256;   // TL list overflow point
  static constexpr std::size_t kReclaimBatch = 32;

  struct ObjHeader {
    std::uint64_t size;
    std::uint32_t state;  // 1 = allocated, 0 = free
    std::uint32_t mark;   // GC mark bit
  };

  static std::unique_ptr<MakaluHeap> create(const std::string& path,
                                            std::uint64_t capacity);
  static std::unique_ptr<MakaluHeap> open(const std::string& path);

  ~MakaluHeap();
  MakaluHeap(const MakaluHeap&) = delete;
  MakaluHeap& operator=(const MakaluHeap&) = delete;

  void* alloc(std::size_t size);
  void free(void* p);

  // Root object for GC reachability (offset-based references).
  void set_root(void* p);
  void* root() const;

  // Mark-and-sweep collection from the root: unreachable allocated objects
  // are reclaimed (Makalu's recovery story).  Quiescent callers only.
  struct GcStats {
    std::uint64_t marked = 0;
    std::uint64_t swept = 0;
  };
  GcStats collect();

  bool contains(const void* p) const noexcept;
  std::uint64_t data_offset_of(const void* p) const noexcept;
  void* data_pointer(std::uint64_t off) const noexcept;
  std::uint64_t capacity() const noexcept;
  std::uint64_t free_bytes_estimate() const;

 private:
  enum BlockKind : std::uint32_t {
    kBlkFree = 0,
    kBlkSmall = 1,      // sliced into fixed units
    kBlkLargeHead = 2,  // first block of a large object
    kBlkLargeCont = 3,
  };

  struct BlockDesc {
    std::uint32_t kind;
    std::uint32_t unit;  // unit bytes (kBlkSmall) or nblocks (kBlkLargeHead)
  };

  struct Super {
    std::uint64_t magic;
    std::uint64_t file_size;
    std::uint64_t nblocks;
    std::uint64_t desc_off;
    std::uint64_t data_off;
    std::uint64_t root_off;  // ~0ull = unset
  };

  explicit MakaluHeap(pmem::Pool pool);

  static unsigned class_of(std::size_t size) noexcept;
  static std::uint64_t unit_of_class(unsigned ci) noexcept;
  static constexpr unsigned kNumClasses = 25;  // 16..400 in 16-byte steps

  BlockDesc* desc(std::uint64_t blk) const noexcept;
  std::byte* data_base() const noexcept;
  // Object start offset containing data-offset `off`; ~0ull when `off`
  // does not fall inside any allocated object.
  std::uint64_t object_at(std::uint64_t off) const noexcept;

  void* alloc_small(std::size_t size);
  void* alloc_large(std::size_t size);

  // Refill a TL list from the reclaim list or by carving a block.
  // Returns false on OOM.  Caller holds global_mu_.
  bool refill_locked(unsigned ci, std::vector<std::uint64_t>& tl);
  void rebuild_extents_locked();

  struct TlCache;
  TlCache& tl_cache();

  pmem::Pool pool_;
  Super* super_;
  std::uint64_t instance_epoch_;

  std::mutex global_mu_;  // chunk list + reclaim list (the paper's bottleneck)
  ExtentAvl extents_;     // free block extents
  std::vector<std::vector<std::uint64_t>> reclaim_;  // per class: unit offsets
};

}  // namespace poseidon::baselines
