#include "baselines/makalu_like/makalu_heap.hpp"

#include <algorithm>
#include <atomic>
#include <cassert>
#include <cstring>
#include <stdexcept>
#include <unordered_map>

#include "common/bitops.hpp"
#include "pmem/persist.hpp"

namespace poseidon::baselines {

namespace {

constexpr std::uint64_t kSuperMagic = 0x4d414b414c554b45ull;  // "MAKALUKE"
constexpr std::uint64_t kNoRoot = ~std::uint64_t{0};
std::atomic<std::uint64_t> g_epoch{1};

}  // namespace

// Thread-local unit caches, validated against the heap instance epoch so a
// destroyed-and-recreated heap never sees stale offsets.
struct MakaluHeap::TlCache {
  std::uint64_t epoch = 0;
  std::vector<std::uint64_t> lists[kNumClasses];
};

MakaluHeap::TlCache& MakaluHeap::tl_cache() {
  thread_local std::unordered_map<const MakaluHeap*, TlCache> caches;
  TlCache& c = caches[this];
  if (c.epoch != instance_epoch_) {
    for (auto& l : c.lists) l.clear();
    c.epoch = instance_epoch_;
  }
  return c;
}

unsigned MakaluHeap::class_of(std::size_t size) noexcept {
  // 16-byte granularity classes for payloads up to kSmallThreshold.
  const std::size_t rounded = (size + 15) & ~std::size_t{15};
  return static_cast<unsigned>(rounded / 16) - 1;  // 16 -> 0, 400 -> 24
}

std::uint64_t MakaluHeap::unit_of_class(unsigned ci) noexcept {
  return (std::uint64_t{ci} + 1) * 16 + sizeof(ObjHeader);
}

std::unique_ptr<MakaluHeap> MakaluHeap::create(const std::string& path,
                                               std::uint64_t capacity) {
  const std::uint64_t nblocks = (capacity + kBlock - 1) / kBlock;
  const std::uint64_t desc_off = kBlock;
  const std::uint64_t desc_bytes =
      align_up(nblocks * sizeof(BlockDesc), kBlock);
  const std::uint64_t data_off = desc_off + desc_bytes;
  const std::uint64_t file_size = data_off + nblocks * kBlock;

  pmem::Pool pool = pmem::Pool::create(path, file_size);
  auto* super = reinterpret_cast<Super*>(pool.data());
  super->file_size = file_size;
  super->nblocks = nblocks;
  super->desc_off = desc_off;
  super->data_off = data_off;
  super->root_off = kNoRoot;
  // Descriptors start all-free (zero) courtesy of the sparse file.
  super->magic = kSuperMagic;
  pmem::persist(super, sizeof(Super));
  return std::unique_ptr<MakaluHeap>(new MakaluHeap(std::move(pool)));
}

std::unique_ptr<MakaluHeap> MakaluHeap::open(const std::string& path) {
  pmem::Pool pool = pmem::Pool::open(path);
  const auto* super = reinterpret_cast<const Super*>(pool.data());
  if (pool.size() < sizeof(Super) || super->magic != kSuperMagic ||
      super->file_size != pool.size()) {
    throw std::runtime_error(path + ": not a makalu-like heap");
  }
  return std::unique_ptr<MakaluHeap>(new MakaluHeap(std::move(pool)));
}

MakaluHeap::MakaluHeap(pmem::Pool pool)
    : pool_(std::move(pool)),
      instance_epoch_(g_epoch.fetch_add(1, std::memory_order_relaxed)) {
  super_ = reinterpret_cast<Super*>(pool_.data());
  reclaim_.resize(kNumClasses);
  std::lock_guard<std::mutex> lk(global_mu_);
  rebuild_extents_locked();
}

MakaluHeap::~MakaluHeap() = default;

MakaluHeap::BlockDesc* MakaluHeap::desc(std::uint64_t blk) const noexcept {
  return reinterpret_cast<BlockDesc*>(pool_.data() + super_->desc_off) + blk;
}

std::byte* MakaluHeap::data_base() const noexcept {
  return pool_.data() + super_->data_off;
}

bool MakaluHeap::contains(const void* p) const noexcept {
  const auto* b = static_cast<const std::byte*>(p);
  return b >= data_base() && b < pool_.data() + super_->file_size;
}

std::uint64_t MakaluHeap::data_offset_of(const void* p) const noexcept {
  return static_cast<std::uint64_t>(static_cast<const std::byte*>(p) -
                                    data_base());
}

void* MakaluHeap::data_pointer(std::uint64_t off) const noexcept {
  return data_base() + off;
}

std::uint64_t MakaluHeap::capacity() const noexcept {
  return super_->nblocks * kBlock;
}

void MakaluHeap::rebuild_extents_locked() {
  extents_.clear();
  std::uint32_t start = 0, len = 0;
  for (std::uint64_t b = 0; b <= super_->nblocks; ++b) {
    const bool is_free = b < super_->nblocks && desc(b)->kind == kBlkFree;
    if (is_free) {
      if (len == 0) start = static_cast<std::uint32_t>(b);
      ++len;
    } else if (len > 0) {
      extents_.insert({start, len});
      len = 0;
    }
  }
}

bool MakaluHeap::refill_locked(unsigned ci, std::vector<std::uint64_t>& tl) {
  // 1. Reclaim list: blocks other threads returned (paper's redistribution
  //    mechanism — and its global-lock price).
  auto& rc = reclaim_[ci];
  if (!rc.empty()) {
    const std::size_t n = std::min(rc.size(), kReclaimBatch);
    tl.insert(tl.end(), rc.end() - static_cast<std::ptrdiff_t>(n), rc.end());
    rc.resize(rc.size() - n);
    return true;
  }
  // 2. Carve a fresh block into units of this class.
  Extent e;
  if (!extents_.take_best_fit(1, &e)) {
    rebuild_extents_locked();
    if (!extents_.take_best_fit(1, &e)) return false;
  }
  if (e.nchunks > 1) extents_.insert({e.chunk + 1, e.nchunks - 1});
  BlockDesc* d = desc(e.chunk);
  d->kind = kBlkSmall;
  d->unit = static_cast<std::uint32_t>(unit_of_class(ci));
  pmem::persist(d, sizeof(BlockDesc));
  const std::uint64_t unit = unit_of_class(ci);
  const std::uint64_t base_off = std::uint64_t{e.chunk} * kBlock;
  for (std::uint64_t u = 0; u + unit <= kBlock; u += unit) {
    auto* hdr = reinterpret_cast<ObjHeader*>(data_base() + base_off + u);
    hdr->size = 0;
    hdr->state = 0;
    hdr->mark = 0;
    tl.push_back(base_off + u);
  }
  pmem::persist(data_base() + base_off, kBlock);
  return true;
}

void* MakaluHeap::alloc_small(std::size_t size) {
  const unsigned ci = class_of(size);
  auto& tl = tl_cache().lists[ci];
  if (tl.empty()) {
    std::lock_guard<std::mutex> lk(global_mu_);
    if (!refill_locked(ci, tl)) return nullptr;
  }
  const std::uint64_t off = tl.back();
  tl.pop_back();
  auto* hdr = reinterpret_cast<ObjHeader*>(data_base() + off);
  hdr->size = size;
  hdr->state = 1;
  hdr->mark = 0;
  pmem::persist(hdr, sizeof(ObjHeader));
  return data_base() + off + sizeof(ObjHeader);
}

void* MakaluHeap::alloc_large(std::size_t size) {
  const std::uint32_t n = static_cast<std::uint32_t>(
      (size + sizeof(ObjHeader) + kBlock - 1) / kBlock);
  Extent e;
  {
    // Everything >= 400 B funnels through this single lock (paper §7.2).
    std::lock_guard<std::mutex> lk(global_mu_);
    if (!extents_.take_best_fit(n, &e)) {
      rebuild_extents_locked();
      if (!extents_.take_best_fit(n, &e)) return nullptr;
    }
    if (e.nchunks > n) extents_.insert({e.chunk + n, e.nchunks - n});
  }
  BlockDesc* d = desc(e.chunk);
  d->kind = kBlkLargeHead;
  d->unit = n;
  pmem::persist(d, sizeof(BlockDesc));
  for (std::uint32_t i = 1; i < n; ++i) {
    BlockDesc* dc = desc(e.chunk + i);
    dc->kind = kBlkLargeCont;
    dc->unit = 0;
    pmem::persist(dc, sizeof(BlockDesc));
  }
  auto* hdr =
      reinterpret_cast<ObjHeader*>(data_base() + std::uint64_t{e.chunk} * kBlock);
  hdr->size = size;
  hdr->state = 1;
  hdr->mark = 0;
  pmem::persist(hdr, sizeof(ObjHeader));
  return reinterpret_cast<std::byte*>(hdr) + sizeof(ObjHeader);
}

void* MakaluHeap::alloc(std::size_t size) {
  if (size == 0) return nullptr;
  return size < kSmallThreshold ? alloc_small(size) : alloc_large(size);
}

void MakaluHeap::free(void* p) {
  if (p == nullptr || !contains(p)) return;
  auto* hdr = reinterpret_cast<ObjHeader*>(static_cast<std::byte*>(p) -
                                           sizeof(ObjHeader));
  const std::uint64_t size = hdr->size;  // trusted in-place metadata
  hdr->state = 0;
  pmem::persist(hdr, sizeof(ObjHeader));
  const std::uint64_t off = data_offset_of(hdr);
  if (size < kSmallThreshold) {
    const unsigned ci = class_of(size);
    auto& tl = tl_cache().lists[ci];
    tl.push_back(off);
    if (tl.size() > kLocalMax) {
      // Local list overflow: hand half back under the global lock — the
      // reclaim-list contention the paper observes at 256 B.
      std::lock_guard<std::mutex> lk(global_mu_);
      auto& rc = reclaim_[ci];
      const std::size_t half = tl.size() / 2;
      rc.insert(rc.end(), tl.end() - static_cast<std::ptrdiff_t>(half),
                tl.end());
      tl.resize(tl.size() - half);
    }
  } else {
    const std::uint32_t n =
        static_cast<std::uint32_t>((size + sizeof(ObjHeader) + kBlock - 1) / kBlock);
    const std::uint32_t blk = static_cast<std::uint32_t>(off / kBlock);
    for (std::uint32_t i = 0; i < n && blk + i < super_->nblocks; ++i) {
      BlockDesc* d = desc(blk + i);
      d->kind = kBlkFree;
      d->unit = 0;
      pmem::persist(d, sizeof(BlockDesc));
    }
    std::lock_guard<std::mutex> lk(global_mu_);
    extents_.insert({blk, n});
  }
}

std::uint64_t MakaluHeap::object_at(std::uint64_t off) const noexcept {
  if (off >= super_->nblocks * kBlock) return kNoRoot;
  std::uint64_t blk = off / kBlock;
  const BlockDesc* d = desc(blk);
  switch (d->kind) {
    case kBlkSmall: {
      const std::uint64_t unit = d->unit;
      const std::uint64_t start =
          blk * kBlock + ((off % kBlock) / unit) * unit;
      // A candidate past the last whole unit of the block is no object.
      if (start + unit > (blk + 1) * kBlock) return kNoRoot;
      return start;
    }
    case kBlkLargeCont:
      while (blk > 0 && desc(blk)->kind == kBlkLargeCont) --blk;
      if (desc(blk)->kind != kBlkLargeHead) return kNoRoot;
      return blk * kBlock;
    case kBlkLargeHead:
      return blk * kBlock;
    default:
      return kNoRoot;
  }
}

MakaluHeap::GcStats MakaluHeap::collect() {
  std::lock_guard<std::mutex> lk(global_mu_);
  GcStats stats;

  // Mark phase: conservative scan from the root, chasing 8-aligned payload
  // words that are plausible data-region offsets.
  std::vector<std::uint64_t> stack;
  if (super_->root_off != kNoRoot) {
    const std::uint64_t r = object_at(super_->root_off);
    if (r != kNoRoot) stack.push_back(r);
  }
  while (!stack.empty()) {
    const std::uint64_t obj = stack.back();
    stack.pop_back();
    auto* hdr = reinterpret_cast<ObjHeader*>(data_base() + obj);
    if (hdr->state != 1 || hdr->mark != 0) continue;
    hdr->mark = 1;
    ++stats.marked;
    const auto* words =
        reinterpret_cast<const std::uint64_t*>(data_base() + obj +
                                               sizeof(ObjHeader));
    // Bound the scan by the descriptor-derived object size, not the
    // in-place header: a corrupted header must not walk off the mapping.
    const BlockDesc* od = desc(obj / kBlock);
    const std::uint64_t max_payload =
        (od->kind == kBlkSmall ? od->unit
                               : std::uint64_t{od->unit} * kBlock) -
        sizeof(ObjHeader);
    const std::uint64_t nwords = std::min(hdr->size, max_payload) / 8;
    for (std::uint64_t i = 0; i < nwords; ++i) {
      if (words[i] == 0) continue;  // 0 is the null reference, not offset 0
      const std::uint64_t cand = object_at(words[i]);
      if (cand == kNoRoot) continue;
      const auto* chdr = reinterpret_cast<const ObjHeader*>(data_base() + cand);
      if (chdr->state == 1 && chdr->mark == 0) stack.push_back(cand);
    }
  }

  // Sweep phase: unmarked allocated objects are leaks; reclaim them.
  // Fully-free small blocks return to the extent pool.
  for (std::uint64_t b = 0; b < super_->nblocks; ++b) {
    BlockDesc* d = desc(b);
    if (d->kind == kBlkSmall) {
      const std::uint64_t unit = d->unit;
      bool any_live = false;
      for (std::uint64_t u = 0; u + unit <= kBlock; u += unit) {
        auto* hdr = reinterpret_cast<ObjHeader*>(data_base() + b * kBlock + u);
        if (hdr->state == 1 && hdr->mark == 0) {
          hdr->state = 0;
          pmem::persist(hdr, sizeof(ObjHeader));
          ++stats.swept;
        }
        hdr->mark = 0;
        any_live = any_live || hdr->state == 1;
      }
      if (!any_live) {
        d->kind = kBlkFree;
        d->unit = 0;
        pmem::persist(d, sizeof(BlockDesc));
      }
    } else if (d->kind == kBlkLargeHead) {
      auto* hdr = reinterpret_cast<ObjHeader*>(data_base() + b * kBlock);
      const std::uint32_t n = d->unit;
      if (hdr->state == 1 && hdr->mark == 0) {
        hdr->state = 0;
        pmem::persist(hdr, sizeof(ObjHeader));
        ++stats.swept;
        for (std::uint32_t i = 0; i < n && b + i < super_->nblocks; ++i) {
          BlockDesc* dc = desc(b + i);
          dc->kind = kBlkFree;
          dc->unit = 0;
          pmem::persist(dc, sizeof(BlockDesc));
        }
      }
      hdr->mark = 0;
    }
  }

  // DRAM views are stale after a sweep: rebuild extents, drop reclaim
  // lists (their entries may have been swept into whole-free blocks), and
  // invalidate every thread-local cache via the epoch.
  for (auto& rc : reclaim_) rc.clear();
  rebuild_extents_locked();
  instance_epoch_ = g_epoch.fetch_add(1, std::memory_order_relaxed);
  return stats;
}

std::uint64_t MakaluHeap::free_bytes_estimate() const {
  std::uint64_t n = 0;
  for (std::uint64_t b = 0; b < super_->nblocks; ++b) {
    if (desc(b)->kind == kBlkFree) n += kBlock;
  }
  return n;
}

void MakaluHeap::set_root(void* p) {
  super_->root_off = p == nullptr ? kNoRoot : data_offset_of(p);
  pmem::persist(&super_->root_off, sizeof(std::uint64_t));
}

void* MakaluHeap::root() const {
  return super_->root_off == kNoRoot ? nullptr
                                     : data_base() + super_->root_off;
}

}  // namespace poseidon::baselines
