#include "crashcheck/lint.hpp"

#include <dlfcn.h>

#include <cstdio>
#include <cstring>
#include <map>

#include "common/compiler.hpp"
#include "crashcheck/replay.hpp"

namespace poseidon::crashcheck {

const char* lint_kind_name(LintKind k) noexcept {
  switch (k) {
    case LintKind::kMissingFlush:
      return "missing-flush";
    case LintKind::kMissingFence:
      return "missing-fence";
    case LintKind::kRedundantFlush:
      return "redundant-flush";
    case LintKind::kUntrackedStore:
      return "untracked-store";
  }
  return "?";
}

std::uint64_t LintReport::count(LintKind k) const noexcept {
  std::uint64_t n = 0;
  for (const LintFinding& f : findings) {
    if (f.kind == k) n += f.count;
  }
  return n;
}

LintReport lint_trace(const Trace& t) {
  enum class S : std::uint8_t { kClean, kDirty, kPending };
  const std::size_t nlines = t.line_count();
  std::vector<S> state(nlines, S::kClean);
  std::vector<bool> ever_stored(nlines, false);
  std::vector<void*> store_site(nlines, nullptr);
  std::vector<void*> flush_site(nlines, nullptr);

  std::map<std::pair<std::uint8_t, void*>, LintFinding> agg;
  auto note = [&agg](LintKind k, void* site, std::uint32_t line) {
    auto [it, fresh] = agg.try_emplace(
        {static_cast<std::uint8_t>(k), site},
        LintFinding{k, site, 0, line});
    ++it->second.count;
    if (fresh) it->second.first_line = line;
  };

  for (const Event& e : t.events) {
    const auto first = static_cast<std::uint32_t>(e.off / kCacheLineSize);
    const auto last =
        e.len == 0 ? first
                   : static_cast<std::uint32_t>((e.off + e.len - 1) /
                                                kCacheLineSize);
    switch (e.kind) {
      case EvKind::kStore:
        for (std::uint32_t l = first; l <= last; ++l) {
          state[l] = S::kDirty;
          ever_stored[l] = true;
          store_site[l] = e.site;
        }
        break;
      case EvKind::kFlush:
        for (std::uint32_t l = first; l <= last; ++l) {
          if (state[l] == S::kDirty) {
            state[l] = S::kPending;
            flush_site[l] = e.site;
          } else {
            // Pending (flushed twice, no intervening store) or clean
            // (never stored, or already committed): a wasted write-back.
            note(LintKind::kRedundantFlush, e.site, l);
          }
        }
        break;
      case EvKind::kFence:
        for (std::size_t l = 0; l < nlines; ++l) {
          if (state[l] == S::kPending) state[l] = S::kClean;
        }
        break;
      case EvKind::kCrashPoint:
        break;
    }
  }

  LintReport out;
  for (std::uint32_t l = 0; l < nlines; ++l) {
    if (state[l] == S::kDirty) {
      note(LintKind::kMissingFlush, store_site[l], l);
    } else if (state[l] == S::kPending) {
      note(LintKind::kMissingFence, flush_site[l], l);
    }
  }

  if (t.end_img.size() == t.region_size) {
    LineModel m(t);
    m.advance(t.events.size());
    const auto raw = m.untracked_lines();
    if (!raw.empty()) {
      LintFinding f{LintKind::kUntrackedStore, nullptr, raw.size(), raw[0]};
      out.findings.push_back(f);
    }
  }

  for (auto& [key, f] : agg) out.findings.push_back(f);
  return out;
}

void lint_merge(LintReport* acc, const LintReport& in) {
  for (const LintFinding& f : in.findings) {
    bool merged = false;
    for (LintFinding& a : acc->findings) {
      if (a.kind == f.kind && a.site == f.site) {
        a.count += f.count;
        merged = true;
        break;
      }
    }
    if (!merged) acc->findings.push_back(f);
  }
}

std::string describe_site(void* site) {
  if (site == nullptr) return "(unknown)";
  Dl_info info{};
  char buf[256];
  if (dladdr(site, &info) != 0) {
    if (info.dli_sname != nullptr) {
      std::snprintf(buf, sizeof buf, "%s+0x%zx", info.dli_sname,
                    static_cast<std::size_t>(static_cast<char*>(site) -
                                             static_cast<char*>(info.dli_saddr)));
      return buf;
    }
    if (info.dli_fname != nullptr) {
      const char* base = std::strrchr(info.dli_fname, '/');
      std::snprintf(buf, sizeof buf, "%s+0x%zx",
                    base != nullptr ? base + 1 : info.dli_fname,
                    static_cast<std::size_t>(static_cast<char*>(site) -
                                             static_cast<char*>(info.dli_fbase)));
      return buf;
    }
  }
  std::snprintf(buf, sizeof buf, "%p", site);
  return buf;
}

}  // namespace poseidon::crashcheck
