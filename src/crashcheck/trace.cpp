#include "crashcheck/trace.hpp"

#include "common/compiler.hpp"

namespace poseidon::crashcheck {

std::size_t Trace::line_count() const noexcept {
  return (region_size + kCacheLineSize - 1) / kCacheLineSize;
}

std::size_t Trace::fence_count() const noexcept {
  std::size_t n = 0;
  for (const Event& e : events) n += e.kind == EvKind::kFence ? 1 : 0;
  return n;
}

std::size_t Trace::crash_point_count() const noexcept {
  std::size_t n = 0;
  for (const Event& e : events) n += e.kind == EvKind::kCrashPoint ? 1 : 0;
  return n;
}

}  // namespace poseidon::crashcheck
