// Flush lint: a single pass over a Trace that mechanically checks the
// flush/fence discipline the allocator promises (every metadata store is
// flushed AND fenced before the operation returns), plus the perf
// counterpart (no line is flushed twice without an intervening store).
//
// Findings, per severity:
//   kMissingFlush   ERROR  line stored but never flushed by end of trace —
//                          the store can be lost arbitrarily later.
//   kMissingFence   ERROR  line flushed but no fence retired it by end of
//                          trace — the write-back was only *initiated*.
//   kRedundantFlush PERF   flush of a line that was not dirty (never
//                          stored, already committed, or already pending
//                          with no store in between) — wasted clwb.
//   kUntrackedStore INFO   reconstructed contents differ from live memory
//                          at end of trace: a raw store bypassed the nv_*
//                          helpers, so neither SimDomain nor the explorer
//                          models its loss.
//
// Findings aggregate per call site (the return address captured by the
// sim hooks); `torture --crashcheck` symbolizes them best-effort.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "crashcheck/trace.hpp"

namespace poseidon::crashcheck {

enum class LintKind : std::uint8_t {
  kMissingFlush,
  kMissingFence,
  kRedundantFlush,
  kUntrackedStore,
};

const char* lint_kind_name(LintKind k) noexcept;

struct LintFinding {
  LintKind kind;
  void* site = nullptr;        // aggregation key (null for kUntrackedStore)
  std::uint64_t count = 0;     // occurrences at this site
  std::uint32_t first_line = 0;  // region line of the first occurrence
};

struct LintReport {
  std::vector<LintFinding> findings;

  std::uint64_t count(LintKind k) const noexcept;
  bool clean() const noexcept {  // no ordering errors (perf/info allowed)
    return count(LintKind::kMissingFlush) == 0 &&
           count(LintKind::kMissingFence) == 0;
  }
};

LintReport lint_trace(const Trace& t);

// Merge `in` into `acc`, combining findings with the same (kind, site).
void lint_merge(LintReport* acc, const LintReport& in);

// Best-effort call-site description: "symbol+0x12" via dladdr when the
// symbol is exported, else "module+0xoffset" (feed to addr2line).
std::string describe_site(void* site);

}  // namespace poseidon::crashcheck
