// Offline replay of a Trace: the line-state machine the explorer and the
// lint share, plus the on-disk replay file a shrunk violation is saved to.
//
// LineModel mirrors SimDomain line-for-line: committed_ holds the durable
// image (starts as the begin-of-trace snapshot), current_ the
// store-reconstructed live contents.  advance(k) applies events [cursor,
// k); at any instant the reachable persistent images are exactly
//
//   committed_  ∪  { current_ lines for any subset of at_risk_lines() }
//
// — each at-risk (dirty or flushed-but-unfenced) line independently either
// made it back to media before the crash or did not.
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

#include "crashcheck/trace.hpp"

namespace poseidon::crashcheck {

class LineModel {
 public:
  explicit LineModel(const Trace& t);

  // Apply events [cursor(), upto); upto may not go backwards.
  void advance(std::size_t upto);
  std::size_t cursor() const noexcept { return cursor_; }

  // Sorted line indices that are dirty or pending at the cursor — the
  // lines a crash right now may lose.
  const std::vector<std::uint32_t>& at_risk_lines() const noexcept {
    return at_risk_;
  }

  // Persistent image when `lost` (a subset of at_risk_lines()) is lost and
  // every other at-risk line survives.  `lost` must be sorted.
  void build_image(const std::vector<std::uint32_t>& lost,
                   std::vector<std::byte>* out) const;

  // Content hash of the image build_image would produce, in O(|at-risk|):
  // an XOR aggregate over per-line hashes, maintained incrementally as
  // lines commit.  Collisions only waste a duplicate verification.
  std::uint64_t image_hash(const std::vector<std::uint32_t>& lost) const;

  // Lines whose reconstructed final contents differ from the real
  // end-of-trace memory: writes that bypassed the nv_* helpers.  Only
  // meaningful once advanced to the end of the trace.
  std::vector<std::uint32_t> untracked_lines() const;

 private:
  enum class LState : std::uint8_t { kClean, kDirty, kPending };

  std::uint64_t line_hash(const std::byte* buf, std::uint32_t line) const;
  void commit_line(std::uint32_t line);

  const Trace* t_;
  std::size_t cursor_ = 0;
  std::size_t nlines_;
  std::vector<std::byte> committed_;
  std::vector<std::byte> current_;
  std::vector<LState> state_;
  std::vector<std::uint32_t> at_risk_;  // kept sorted
  bool at_risk_stale_ = false;
  std::vector<std::uint64_t> committed_line_hash_;
  std::uint64_t committed_hash_ = 0;

  void refresh_at_risk();
};

// The deterministic repro a violation shrinks to.  Self-describing text
// format (one `key value...` pair per line, "# " comments ignored):
//
//   poseidon-crashcheck-replay v1
//   family  alloc
//   variant 2
//   seed    42
//   label   alloc/2048
//   instant 137
//   lost    3 17 18 4099
//   segment 17 subheap_meta[0]
//   why     reopened image: prior slot 1 not allocated (dangling)
//
// `torture --crashcheck --replay <file>` re-runs the named family/variant
// with the recorded seed, rebuilds the image at `instant` with exactly the
// `lost` lines dropped, and re-verifies it.  `segment` lines are optional
// human annotations (`heap_inspect --crashcheck-report` prints them).
struct ReplayFile {
  std::string family;
  int variant = 0;
  std::uint64_t seed = 0;
  // Nonzero when the recording ran with the Nth persist() elided
  // (--cc-sabotage): the replay must re-elide it or the lost lines will
  // no longer be at risk.
  std::uint64_t sabotage = 0;
  std::string label;
  std::size_t instant = 0;
  std::vector<std::uint32_t> lost;
  std::vector<std::pair<std::uint32_t, std::string>> segments;
  std::string why;

  bool save(const std::string& path, std::string* err = nullptr) const;
  static bool load(const std::string& path, ReplayFile* out, std::string* err);
};

}  // namespace poseidon::crashcheck
