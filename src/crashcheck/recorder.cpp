#include "crashcheck/recorder.hpp"

#include <cstring>
#include <stdexcept>
#include <utility>

#include "pmem/crashpoint.hpp"

namespace poseidon::crashcheck {

Recorder::Recorder(void* base, std::size_t size)
    : base_(static_cast<std::byte*>(base)), size_(size) {}

Recorder::~Recorder() {
  if (recording_) end();
}

void Recorder::begin(std::string label) {
  if (recording_) throw std::logic_error("Recorder: already recording");
  if (pmem::sim_observer() != nullptr) {
    throw std::logic_error("Recorder: another observer is already active");
  }
  trace_ = Trace{};
  trace_.label = std::move(label);
  trace_.region_size = size_;
  trace_.begin_img.assign(base_, base_ + size_);
  recording_ = true;
  // Route every crash-point hit through the slow path without ever
  // triggering: nth = UINT64_MAX is unreachable.
  was_armed_ = pmem::g_crash_armed.load(std::memory_order_acquire);
  if (!was_armed_) {
    pmem::crash_arm("", ~std::uint64_t{0}, pmem::CrashAction::kThrow);
  }
  pmem::sim_set_observer(this);
}

Trace Recorder::end() {
  if (!recording_) throw std::logic_error("Recorder: not recording");
  pmem::sim_set_observer(nullptr);
  if (!was_armed_) pmem::crash_disarm();
  recording_ = false;
  trace_.end_img.assign(base_, base_ + size_);
  return std::move(trace_);
}

bool Recorder::clip(const void* addr, std::size_t len, std::uint64_t* off,
                    std::uint32_t* out_len) const noexcept {
  const auto* p = static_cast<const std::byte*>(addr);
  if (len == 0 || p >= base_ + size_ || p + len <= base_) return false;
  const std::byte* lo = p < base_ ? base_ : p;
  const std::byte* hi = p + len > base_ + size_ ? base_ + size_ : p + len;
  *off = static_cast<std::uint64_t>(lo - base_);
  *out_len = static_cast<std::uint32_t>(hi - lo);
  return true;
}

void Recorder::on_store(const void* addr, std::size_t len,
                        void* site) noexcept {
  std::uint64_t off;
  std::uint32_t n;
  if (!recording_ || !clip(addr, len, &off, &n)) return;
  Event e{};
  e.kind = EvKind::kStore;
  e.off = off;
  e.len = n;
  e.site = site;
  e.data_off = static_cast<std::uint32_t>(trace_.bytes.size());
  // The store already hit the mapping: capture its bytes from the region.
  trace_.bytes.insert(trace_.bytes.end(), base_ + off, base_ + off + n);
  trace_.events.push_back(e);
}

void Recorder::on_flush(const void* addr, std::size_t len,
                        void* site) noexcept {
  std::uint64_t off;
  std::uint32_t n;
  if (!recording_ || !clip(addr, len, &off, &n)) return;
  Event e{};
  e.kind = EvKind::kFlush;
  e.off = off;
  e.len = n;
  e.site = site;
  trace_.events.push_back(e);
}

void Recorder::on_fence() noexcept {
  if (!recording_) return;
  Event e{};
  e.kind = EvKind::kFence;
  trace_.events.push_back(e);
}

void Recorder::on_crash_point(const char* name) noexcept {
  if (!recording_) return;
  Event e{};
  e.kind = EvKind::kCrashPoint;
  e.point = static_cast<std::uint32_t>(trace_.point_names.size());
  trace_.point_names.emplace_back(name);
  trace_.events.push_back(e);
}

}  // namespace poseidon::crashcheck
