#include "crashcheck/replay.hpp"

#include <algorithm>
#include <cstring>
#include <fstream>
#include <sstream>
#include <stdexcept>

#include "common/compiler.hpp"

namespace poseidon::crashcheck {

namespace {

constexpr std::uint64_t kFnvOffset = 1469598103934665603ull;
constexpr std::uint64_t kFnvPrime = 1099511628211ull;

std::uint64_t fnv1a(const void* data, std::size_t n,
                    std::uint64_t h = kFnvOffset) noexcept {
  const auto* p = static_cast<const unsigned char*>(data);
  for (std::size_t i = 0; i < n; ++i) {
    h ^= p[i];
    h *= kFnvPrime;
  }
  return h;
}

}  // namespace

LineModel::LineModel(const Trace& t)
    : t_(&t),
      nlines_(t.line_count()),
      committed_(t.begin_img),
      current_(t.begin_img),
      state_(nlines_, LState::kClean),
      committed_line_hash_(nlines_, 0) {
  if (t.begin_img.size() != t.region_size) {
    throw std::logic_error("LineModel: trace has no begin image");
  }
  for (std::uint32_t l = 0; l < nlines_; ++l) {
    committed_line_hash_[l] = line_hash(committed_.data(), l);
    committed_hash_ ^= committed_line_hash_[l];
  }
}

std::uint64_t LineModel::line_hash(const std::byte* buf,
                                   std::uint32_t line) const {
  const std::size_t off = std::size_t{line} * kCacheLineSize;
  const std::size_t len = std::min(kCacheLineSize, t_->region_size - off);
  // Mix the line index in so identical contents at different offsets do
  // not cancel in the XOR aggregate.
  return fnv1a(buf + off, len, kFnvOffset ^ (line * kFnvPrime));
}

void LineModel::commit_line(std::uint32_t line) {
  const std::size_t off = std::size_t{line} * kCacheLineSize;
  const std::size_t len = std::min(kCacheLineSize, t_->region_size - off);
  committed_hash_ ^= committed_line_hash_[line];
  std::memcpy(committed_.data() + off, current_.data() + off, len);
  committed_line_hash_[line] = line_hash(committed_.data(), line);
  committed_hash_ ^= committed_line_hash_[line];
  state_[line] = LState::kClean;
}

void LineModel::refresh_at_risk() {
  if (!at_risk_stale_) return;
  at_risk_.clear();
  for (std::uint32_t l = 0; l < nlines_; ++l) {
    if (state_[l] != LState::kClean) at_risk_.push_back(l);
  }
  at_risk_stale_ = false;
}

void LineModel::advance(std::size_t upto) {
  if (upto < cursor_) throw std::logic_error("LineModel: cannot rewind");
  if (upto > t_->events.size()) upto = t_->events.size();
  for (; cursor_ < upto; ++cursor_) {
    const Event& e = t_->events[cursor_];
    switch (e.kind) {
      case EvKind::kStore: {
        std::memcpy(current_.data() + e.off, t_->bytes.data() + e.data_off,
                    e.len);
        const auto first = static_cast<std::uint32_t>(e.off / kCacheLineSize);
        const auto last = static_cast<std::uint32_t>(
            (e.off + e.len - 1) / kCacheLineSize);
        for (std::uint32_t l = first; l <= last; ++l) {
          // A store after an unfenced flush re-dirties the line, exactly
          // as in SimDomain::note_store.
          if (state_[l] == LState::kClean) at_risk_stale_ = true;
          state_[l] = LState::kDirty;
        }
        break;
      }
      case EvKind::kFlush: {
        const auto first = static_cast<std::uint32_t>(e.off / kCacheLineSize);
        const auto last = static_cast<std::uint32_t>(
            (e.off + e.len - 1) / kCacheLineSize);
        for (std::uint32_t l = first; l <= last; ++l) {
          if (state_[l] == LState::kDirty) state_[l] = LState::kPending;
        }
        break;
      }
      case EvKind::kFence: {
        refresh_at_risk();
        bool removed = false;
        for (const std::uint32_t l : at_risk_) {
          if (state_[l] == LState::kPending) {
            commit_line(l);
            removed = true;
          }
        }
        if (removed) at_risk_stale_ = true;
        break;
      }
      case EvKind::kCrashPoint:
        break;
    }
  }
  refresh_at_risk();
}

void LineModel::build_image(const std::vector<std::uint32_t>& lost,
                            std::vector<std::byte>* out) const {
  *out = committed_;
  std::size_t j = 0;
  for (const std::uint32_t l : at_risk_) {
    while (j < lost.size() && lost[j] < l) ++j;
    if (j < lost.size() && lost[j] == l) continue;  // lost: stays committed
    const std::size_t off = std::size_t{l} * kCacheLineSize;
    const std::size_t len = std::min(kCacheLineSize, t_->region_size - off);
    std::memcpy(out->data() + off, current_.data() + off, len);
  }
}

std::uint64_t LineModel::image_hash(
    const std::vector<std::uint32_t>& lost) const {
  std::uint64_t h = committed_hash_;
  std::size_t j = 0;
  for (const std::uint32_t l : at_risk_) {
    while (j < lost.size() && lost[j] < l) ++j;
    if (j < lost.size() && lost[j] == l) continue;
    // Surviving line: its current contents replace the committed ones.
    // Identical contents XOR to zero — the image equals the lost case and
    // dedups with it, which is exactly right.
    h ^= committed_line_hash_[l] ^ line_hash(current_.data(), l);
  }
  return h;
}

std::vector<std::uint32_t> LineModel::untracked_lines() const {
  std::vector<std::uint32_t> out;
  if (t_->end_img.size() != t_->region_size) return out;
  for (std::uint32_t l = 0; l < nlines_; ++l) {
    const std::size_t off = std::size_t{l} * kCacheLineSize;
    const std::size_t len = std::min(kCacheLineSize, t_->region_size - off);
    if (std::memcmp(current_.data() + off, t_->end_img.data() + off, len) !=
        0) {
      out.push_back(l);
    }
  }
  return out;
}

// ---- replay file -----------------------------------------------------------

bool ReplayFile::save(const std::string& path, std::string* err) const {
  std::ofstream f(path, std::ios::trunc);
  if (!f) {
    if (err != nullptr) *err = "cannot open " + path + " for writing";
    return false;
  }
  f << "poseidon-crashcheck-replay v1\n";
  f << "family " << family << "\n";
  f << "variant " << variant << "\n";
  f << "seed " << seed << "\n";
  if (sabotage != 0) f << "sabotage " << sabotage << "\n";
  if (!label.empty()) f << "label " << label << "\n";
  f << "instant " << instant << "\n";
  f << "lost " << lost.size();
  for (const auto l : lost) f << " " << l;
  f << "\n";
  for (const auto& [line, name] : segments) {
    f << "segment " << line << " " << name << "\n";
  }
  if (!why.empty()) f << "why " << why << "\n";
  f.flush();
  if (!f) {
    if (err != nullptr) *err = "short write to " + path;
    return false;
  }
  return true;
}

bool ReplayFile::load(const std::string& path, ReplayFile* out,
                      std::string* err) {
  std::ifstream f(path);
  if (!f) {
    if (err != nullptr) *err = "cannot open " + path;
    return false;
  }
  std::string line;
  if (!std::getline(f, line) ||
      line.rfind("poseidon-crashcheck-replay", 0) != 0) {
    if (err != nullptr) *err = path + ": not a crashcheck replay file";
    return false;
  }
  *out = ReplayFile{};
  while (std::getline(f, line)) {
    if (line.empty() || line[0] == '#') continue;
    std::istringstream is(line);
    std::string key;
    is >> key;
    if (key == "family") {
      is >> out->family;
    } else if (key == "variant") {
      is >> out->variant;
    } else if (key == "seed") {
      is >> out->seed;
    } else if (key == "sabotage") {
      is >> out->sabotage;
    } else if (key == "label") {
      is >> std::ws;
      std::getline(is, out->label);
    } else if (key == "instant") {
      is >> out->instant;
    } else if (key == "lost") {
      std::size_t n = 0;
      is >> n;
      out->lost.resize(n);
      for (std::size_t i = 0; i < n; ++i) is >> out->lost[i];
    } else if (key == "segment") {
      std::uint32_t l = 0;
      std::string name;
      is >> l >> std::ws;
      std::getline(is, name);
      out->segments.emplace_back(l, name);
    } else if (key == "why") {
      is >> std::ws;
      std::getline(is, out->why);
    }
  }
  std::sort(out->lost.begin(), out->lost.end());
  return true;
}

}  // namespace poseidon::crashcheck
