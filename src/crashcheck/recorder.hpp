// Trace recorder: a pmem::SimObserver that captures one operation's
// persistence-event stream over a fixed region (normally the heap's
// crashsim_region()).  Events outside the region are dropped — user-data
// payload writes and flight-ring traffic are not part of the recovery
// surface the explorer perturbs.
//
// Usage (single-threaded; at most one recorder may be active):
//
//   Recorder rec(base, size);
//   rec.begin("alloc/192");
//   ... run exactly one operation against the live heap ...
//   Trace t = rec.end();
//
// begin() also arms a never-firing crash-point trigger so every
// POSEIDON_CRASH_POINT hit is routed through the slow path and lands in
// the trace as a named crash instant; end() disarms it.
#pragma once

#include <cstddef>

#include "crashcheck/trace.hpp"
#include "pmem/persist.hpp"

namespace poseidon::crashcheck {

class Recorder final : public pmem::SimObserver {
 public:
  Recorder(void* base, std::size_t size);
  ~Recorder();

  Recorder(const Recorder&) = delete;
  Recorder& operator=(const Recorder&) = delete;

  void begin(std::string label);
  Trace end();
  bool recording() const noexcept { return recording_; }

  // pmem::SimObserver
  void on_store(const void* addr, std::size_t len, void* site) noexcept final;
  void on_flush(const void* addr, std::size_t len, void* site) noexcept final;
  void on_fence() noexcept final;
  void on_crash_point(const char* name) noexcept final;

 private:
  // True when [addr, addr+len) intersects the region; clips to it.
  bool clip(const void* addr, std::size_t len, std::uint64_t* off,
            std::uint32_t* out_len) const noexcept;

  std::byte* base_;
  std::size_t size_;
  bool recording_ = false;
  bool was_armed_ = false;  // a real trigger was already armed at begin()
  Trace trace_;
};

}  // namespace poseidon::crashcheck
