// Fence-level crash-state explorer.
//
// Crash instants are every fence, every named crash point, and the end of
// the trace (the state of the world the moment the operation reported
// completion).  At each instant the at-risk set is the lines a real power
// failure could independently lose (dirty, or flushed-but-unfenced); the
// explorer enumerates subsets of that set:
//
//   |at-risk| <= exhaustive_max   all 2^n subsets (systematic);
//   otherwise                     nothing-lost, everything-lost, every
//                                 single-line loss, every pair within
//                                 `neighborhood` lines of each other
//                                 (adjacent lines are usually the same
//                                 structure), plus `random_tail` seeded
//                                 coin-flip subsets.
//
// Identical persistent images are deduplicated by content hash across the
// whole run — a subset whose surviving lines happen to equal their
// committed contents collapses into the already-verified image — so
// "distinct states" counts real images, not subsets.  Each new image goes
// to the caller's verify callback (materialize + reopen + audit); a
// failure is shrunk to a minimal lost-line set by greedy delta-debugging
// and reported as a Violation.
#pragma once

#include <cstdint>
#include <functional>
#include <string>
#include <unordered_set>
#include <vector>

#include "crashcheck/trace.hpp"

namespace poseidon::crashcheck {

struct ExploreConfig {
  unsigned exhaustive_max = 6;  // 2^n subsets up to here
  unsigned neighborhood = 4;    // line distance for bounded-mode pairs
  unsigned random_tail = 24;    // seeded random subsets per bounded instant
  std::uint64_t seed = 1;
  std::uint64_t budget = 50000;    // max verifications per explore() call
  unsigned max_violations = 4;     // stop exploring a trace past this many
  bool final_instant_strict = true;  // audit the end-of-trace instant too
};

struct ExploreStats {
  std::uint64_t instants = 0;
  std::uint64_t candidates = 0;  // subsets considered
  std::uint64_t distinct = 0;    // new images (post-dedup) verified
  std::uint64_t violations = 0;
  std::uint64_t truncated = 0;   // candidates dropped by the budget
  std::uint64_t max_at_risk = 0;

  void add(const ExploreStats& o) noexcept;
};

struct Violation {
  std::string label;   // trace label
  std::size_t instant; // event index (crash happened just before it)
  bool final_instant = false;
  std::vector<std::uint32_t> lost;  // minimal lost-line set after shrink
  std::string why;
};

class Explorer {
 public:
  explicit Explorer(ExploreConfig cfg) : cfg_(cfg) {}

  // Verify one materialized image.  `final_instant` selects the strict
  // post-completion audit (everything the op promised durable must be
  // durable).  Returns empty on pass, else a reason.
  using Verify = std::function<std::string(const std::vector<std::byte>& img,
                                           bool final_instant)>;

  // Explore every instant of `t`; violations append to *out (if non-null).
  ExploreStats explore(const Trace& t, const Verify& verify,
                       std::vector<Violation>* out);

  // Rebuild and verify one exact (instant, lost) state — replay mode.
  // Returns the verify result (empty = pass).
  std::string replay(const Trace& t, std::size_t instant,
                     std::vector<std::uint32_t> lost, const Verify& verify);

  std::uint64_t distinct_total() const noexcept { return seen_.size(); }

 private:
  ExploreConfig cfg_;
  std::unordered_set<std::uint64_t> seen_;  // image hashes, run-wide
};

}  // namespace poseidon::crashcheck
