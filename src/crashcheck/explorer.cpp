#include "crashcheck/explorer.hpp"

#include <algorithm>
#include <map>

#include "common/rng.hpp"
#include "crashcheck/replay.hpp"

namespace poseidon::crashcheck {

void ExploreStats::add(const ExploreStats& o) noexcept {
  instants += o.instants;
  candidates += o.candidates;
  distinct += o.distinct;
  violations += o.violations;
  truncated += o.truncated;
  if (o.max_at_risk > max_at_risk) max_at_risk = o.max_at_risk;
}

namespace {

std::uint64_t label_salt(const std::string& s) noexcept {
  std::uint64_t h = 1469598103934665603ull;
  for (const char c : s) {
    h ^= static_cast<unsigned char>(c);
    h *= 1099511628211ull;
  }
  return h;
}

// Greedy delta-debugging: drop lines one at a time as long as the
// verification still fails.  Quadratic in |lost|, which is small.
std::vector<std::uint32_t> shrink_lost(
    const LineModel& m, std::vector<std::uint32_t> lost, bool final_instant,
    const Explorer::Verify& verify, std::string* why) {
  std::vector<std::byte> img;
  bool changed = true;
  while (changed && lost.size() > 1) {
    changed = false;
    for (std::size_t i = 0; i < lost.size(); ++i) {
      std::vector<std::uint32_t> cand = lost;
      cand.erase(cand.begin() + static_cast<std::ptrdiff_t>(i));
      m.build_image(cand, &img);
      const std::string w = verify(img, final_instant);
      if (!w.empty()) {
        lost = std::move(cand);
        *why = w;
        changed = true;
        break;
      }
    }
  }
  return lost;
}

}  // namespace

ExploreStats Explorer::explore(const Trace& t, const Verify& verify,
                               std::vector<Violation>* out) {
  ExploreStats st;
  LineModel m(t);

  // Crash instants: the event cursor positions to advance the model to.
  // A fence instant sits AFTER the fence (its pending lines just
  // committed; what remains dirty is the exposure the fence did not
  // close).  A crash-point instant sits at the point itself.  The final
  // instant is the moment the operation returned.
  std::map<std::size_t, bool> instants;  // upto -> is_final
  for (std::size_t j = 0; j < t.events.size(); ++j) {
    if (t.events[j].kind == EvKind::kFence) instants[j + 1] = false;
    if (t.events[j].kind == EvKind::kCrashPoint) instants[j] = false;
  }
  if (cfg_.final_instant_strict) {
    instants[t.events.size()] = true;
  } else {
    instants.emplace(t.events.size(), false);
  }

  std::vector<std::byte> img;
  unsigned viols = 0;

  for (const auto& [upto, is_final] : instants) {
    m.advance(upto);
    const auto& at_risk = m.at_risk_lines();
    ++st.instants;
    if (at_risk.size() > st.max_at_risk) st.max_at_risk = at_risk.size();

    auto try_subset = [&](const std::vector<std::uint32_t>& lost) {
      ++st.candidates;
      const std::uint64_t h = m.image_hash(lost);
      if (!seen_.insert(h).second) return;
      if (st.distinct >= cfg_.budget) {
        ++st.truncated;
        seen_.erase(h);  // a later, roomier run may still verify it
        return;
      }
      ++st.distinct;
      m.build_image(lost, &img);
      std::string why = verify(img, is_final);
      if (why.empty()) return;
      ++st.violations;
      ++viols;
      if (out != nullptr) {
        Violation v;
        v.label = t.label;
        v.instant = upto;
        v.final_instant = is_final;
        v.lost = shrink_lost(m, lost, is_final, verify, &why);
        v.why = why;
        out->push_back(std::move(v));
      }
    };

    const unsigned n = static_cast<unsigned>(at_risk.size());
    if (n <= cfg_.exhaustive_max) {
      for (std::uint64_t mask = 0; mask < (std::uint64_t{1} << n); ++mask) {
        std::vector<std::uint32_t> lost;
        for (unsigned b = 0; b < n; ++b) {
          if ((mask >> b) & 1) lost.push_back(at_risk[b]);
        }
        try_subset(lost);
        if (viols >= cfg_.max_violations) break;
      }
    } else {
      try_subset({});
      try_subset(std::vector<std::uint32_t>(at_risk.begin(), at_risk.end()));
      for (unsigned i = 0; i < n && viols < cfg_.max_violations; ++i) {
        try_subset({at_risk[i]});
      }
      for (unsigned i = 0; i < n && viols < cfg_.max_violations; ++i) {
        for (unsigned j = i + 1; j < n; ++j) {
          if (at_risk[j] - at_risk[i] > cfg_.neighborhood) break;
          try_subset({at_risk[i], at_risk[j]});
        }
      }
      Xoshiro256 rng(cfg_.seed ^ label_salt(t.label) ^
                     (upto * 0x9e3779b97f4a7c15ull));
      for (unsigned r = 0; r < cfg_.random_tail && viols < cfg_.max_violations;
           ++r) {
        std::vector<std::uint32_t> lost;
        for (unsigned i = 0; i < n; ++i) {
          if (rng.next() & 1) lost.push_back(at_risk[i]);
        }
        try_subset(lost);
      }
    }
    if (viols >= cfg_.max_violations) break;
  }
  return st;
}

std::string Explorer::replay(const Trace& t, std::size_t instant,
                             std::vector<std::uint32_t> lost,
                             const Verify& verify) {
  if (instant > t.events.size()) {
    return "replay instant " + std::to_string(instant) +
           " beyond trace end (" + std::to_string(t.events.size()) +
           " events) — the workload has drifted from the recording";
  }
  LineModel m(t);
  m.advance(instant);
  std::sort(lost.begin(), lost.end());
  const auto& at_risk = m.at_risk_lines();
  for (const std::uint32_t l : lost) {
    if (!std::binary_search(at_risk.begin(), at_risk.end(), l)) {
      return "lost line " + std::to_string(l) +
             " is not at risk at instant " + std::to_string(instant) +
             " — the workload has drifted from the recording";
    }
  }
  std::vector<std::byte> img;
  m.build_image(lost, &img);
  return verify(img, instant == t.events.size());
}

}  // namespace poseidon::crashcheck
