// Crash-state exploration: trace model (DESIGN.md "Crash-state exploration").
//
// A Trace is the ordered (store, flush, fence, crash-point) stream of ONE
// operation over ONE contiguous persistent region, captured through the
// pmem::SimObserver tap.  Stores carry their bytes: the operation runs
// exactly once against the live heap, and every reachable crash image is
// reconstructed offline from the begin-of-trace snapshot plus the event
// stream — nothing re-executes, which is what lets the explorer enumerate
// thousands of images per run.
//
// The persistence semantics mirrored everywhere downstream are exactly
// SimDomain's (pmem/sim_domain.hpp): a store dirties its cache lines, a
// flush only marks dirty lines write-back-pending, and only a fence
// commits pending lines to the durable image.  One deliberate difference:
// SimDomain commits lines out of live memory (so raw, un-instrumented
// stores leak into its images), while the trace replays only captured nv_*
// contents.  The divergence is itself observable — LineModel::
// untracked_lines() compares the reconstruction against the real
// end-of-trace memory, and the lint reports any mismatch.
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

namespace poseidon::crashcheck {

enum class EvKind : std::uint8_t {
  kStore = 0,
  kFlush = 1,
  kFence = 2,
  kCrashPoint = 3,
};

struct Event {
  EvKind kind;
  // Region-relative byte range (kStore/kFlush; clipped to the region).
  std::uint64_t off = 0;
  std::uint32_t len = 0;
  // Captured store contents: [data_off, data_off+len) in Trace::bytes.
  std::uint32_t data_off = 0;
  // Instrumented call site (return address into the nv_* caller).
  void* site = nullptr;
  // Index into Trace::point_names (kCrashPoint only).
  std::uint32_t point = 0;
};

struct Trace {
  std::string label;          // operation family / variant, e.g. "alloc/192"
  std::uint64_t region_size = 0;
  std::vector<Event> events;
  std::vector<std::byte> bytes;      // concatenated captured store contents
  std::vector<std::byte> begin_img;  // region snapshot when recording began
  std::vector<std::byte> end_img;    // live region bytes when it ended
  std::vector<std::string> point_names;

  std::size_t line_count() const noexcept;
  std::size_t fence_count() const noexcept;
  std::size_t crash_point_count() const noexcept;
};

}  // namespace poseidon::crashcheck
