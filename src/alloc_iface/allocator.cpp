#include "alloc_iface/allocator.hpp"

#include <atomic>
#include <unistd.h>

#include "baselines/makalu_like/makalu_heap.hpp"
#include "baselines/pmdk_like/pmdk_heap.hpp"
#include "core/heap.hpp"
#include "pmem/pool.hpp"

namespace poseidon::iface {

namespace {

std::string default_path(const char* tag) {
  static std::atomic<unsigned> seq{0};
  return "/dev/shm/poseidon_bench_" + std::string(tag) + "_" +
         std::to_string(::getpid()) + "_" +
         std::to_string(seq.fetch_add(1, std::memory_order_relaxed)) +
         ".heap";
}

class PoseidonAdapter final : public PAllocator {
 public:
  PoseidonAdapter(const std::string& path, const AllocatorConfig& cfg) {
    core::Options opts;
    opts.nsubheaps = cfg.nlanes;
    opts.nshards = cfg.nshards;
    // Benchmark boxes are often single-node: route threads round-robin over
    // the shards so a multi-shard series measures routing, not topology.
    if (cfg.nshards > 1) opts.shard_policy = core::ShardPolicy::kPerThread;
    // PerThread spreads N benchmark threads over N sub-heaps even on boxes
    // with fewer CPUs than threads (see DESIGN.md); on a real manycore the
    // two policies coincide.
    opts.policy = core::SubheapPolicy::kPerThread;
    opts.thread_cache = cfg.thread_cache;
    opts.flight = cfg.flight == 0   ? obs::FlightMode::kOff
                  : cfg.flight == 2 ? obs::FlightMode::kPersistent
                                    : obs::FlightMode::kVolatile;
    opts.persist_domain =
        cfg.persist_domain == 0 ? pmem::PersistDomainMode::kCacheLineFlush
        : cfg.persist_domain == 1 ? pmem::PersistDomainMode::kEadr
        : cfg.persist_domain == 2 ? pmem::PersistDomainMode::kNone
                                  : pmem::PersistDomainMode::kDetect;
    heap_ = core::Heap::create(path, cfg.capacity, opts);
    path_ = path;
  }
  ~PoseidonAdapter() override {
    const unsigned nshards = heap_->shard_count();
    heap_.reset();
    pmem::Pool::unlink(path_);
    for (unsigned i = 1; i < nshards; ++i) {
      pmem::Pool::unlink(path_ + ".shard" + std::to_string(i));
    }
  }

  void* alloc(std::size_t size) override {
    return heap_->raw(heap_->alloc(size));
  }
  bool free(void* p) override {
    return heap_->free(heap_->from_raw(p)) == core::FreeResult::kOk;
  }
  void set_root(void* p) override { heap_->set_root(heap_->from_raw(p)); }
  void* root() const override { return heap_->raw(heap_->root()); }
  const char* name() const noexcept override { return "poseidon"; }

 private:
  std::unique_ptr<core::Heap> heap_;
  std::string path_;
};

class PmdkAdapter final : public PAllocator {
 public:
  PmdkAdapter(const std::string& path, const AllocatorConfig& cfg)
      : heap_(baselines::PmdkHeap::create(path, cfg.capacity)), path_(path) {}
  ~PmdkAdapter() override {
    heap_.reset();
    pmem::Pool::unlink(path_);
  }

  void* alloc(std::size_t size) override { return heap_->alloc(size); }
  bool free(void* p) override {
    heap_->free(p);
    return true;
  }
  void set_root(void* p) override { heap_->set_root(p); }
  void* root() const override { return heap_->root(); }
  const char* name() const noexcept override { return "pmdk-like"; }

 private:
  std::unique_ptr<baselines::PmdkHeap> heap_;
  std::string path_;
};

class MakaluAdapter final : public PAllocator {
 public:
  MakaluAdapter(const std::string& path, const AllocatorConfig& cfg)
      : heap_(baselines::MakaluHeap::create(path, cfg.capacity)),
        path_(path) {}
  ~MakaluAdapter() override {
    heap_.reset();
    pmem::Pool::unlink(path_);
  }

  void* alloc(std::size_t size) override { return heap_->alloc(size); }
  bool free(void* p) override {
    heap_->free(p);
    return true;
  }
  void set_root(void* p) override { heap_->set_root(p); }
  void* root() const override { return heap_->root(); }
  const char* name() const noexcept override { return "makalu-like"; }

 private:
  std::unique_ptr<baselines::MakaluHeap> heap_;
  std::string path_;
};

}  // namespace

const char* kind_name(AllocatorKind k) noexcept {
  switch (k) {
    case AllocatorKind::kPoseidon: return "poseidon";
    case AllocatorKind::kPmdkLike: return "pmdk-like";
    case AllocatorKind::kMakaluLike: return "makalu-like";
  }
  return "?";
}

std::unique_ptr<PAllocator> make_allocator(AllocatorKind kind,
                                           const AllocatorConfig& cfg) {
  std::string path =
      cfg.path.empty() ? default_path(kind_name(kind)) : cfg.path;
  if (cfg.fresh) pmem::Pool::unlink(path);
  switch (kind) {
    case AllocatorKind::kPoseidon:
      return std::make_unique<PoseidonAdapter>(path, cfg);
    case AllocatorKind::kPmdkLike:
      return std::make_unique<PmdkAdapter>(path, cfg);
    case AllocatorKind::kMakaluLike:
      return std::make_unique<MakaluAdapter>(path, cfg);
  }
  return nullptr;
}

}  // namespace poseidon::iface
