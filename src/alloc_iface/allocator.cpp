#include "alloc_iface/allocator.hpp"

#include <signal.h>
#include <sys/wait.h>
#include <unistd.h>

#include <atomic>
#include <mutex>

#include "baselines/makalu_like/makalu_heap.hpp"
#include "baselines/pmdk_like/pmdk_heap.hpp"
#include "common/error.hpp"
#include "common/topology.hpp"
#include "core/heap.hpp"
#include "pmem/pool.hpp"
#include "pmem/shm.hpp"
#include "svc/client.hpp"
#include "svc/server.hpp"

namespace poseidon::iface {

namespace {

std::string default_path(const char* tag) {
  static std::atomic<unsigned> seq{0};
  return "/dev/shm/poseidon_bench_" + std::string(tag) + "_" +
         std::to_string(::getpid()) + "_" +
         std::to_string(seq.fetch_add(1, std::memory_order_relaxed)) +
         ".heap";
}

core::Options options_from(const AllocatorConfig& cfg) {
  core::Options opts;
  opts.nsubheaps = cfg.nlanes;
  opts.nshards = cfg.nshards;
  // Benchmark boxes are often single-node: route threads round-robin over
  // the shards so a multi-shard series measures routing, not topology.
  if (cfg.nshards > 1) opts.shard_policy = core::ShardPolicy::kPerThread;
  // PerThread spreads N benchmark threads over N sub-heaps even on boxes
  // with fewer CPUs than threads (see DESIGN.md); on a real manycore the
  // two policies coincide.
  opts.policy = core::SubheapPolicy::kPerThread;
  opts.thread_cache = cfg.thread_cache;
  opts.flight = cfg.flight == 0   ? obs::FlightMode::kOff
                : cfg.flight == 2 ? obs::FlightMode::kPersistent
                                  : obs::FlightMode::kVolatile;
  opts.persist_domain =
      cfg.persist_domain == 0 ? pmem::PersistDomainMode::kCacheLineFlush
      : cfg.persist_domain == 1 ? pmem::PersistDomainMode::kEadr
      : cfg.persist_domain == 2 ? pmem::PersistDomainMode::kNone
                                : pmem::PersistDomainMode::kDetect;
  return opts;
}

void unlink_heap_files(const std::string& path, unsigned nshards) {
  pmem::Pool::unlink(path);
  for (unsigned i = 1; i < nshards; ++i) {
    pmem::Pool::unlink(path + ".shard" + std::to_string(i));
  }
  pmem::ShmSegment::unlink(svc::svc_path(path));
}

class PoseidonAdapter final : public PAllocator {
 public:
  PoseidonAdapter(const std::string& path, const AllocatorConfig& cfg) {
    heap_ = core::Heap::create(path, cfg.capacity, options_from(cfg));
    path_ = path;
  }
  ~PoseidonAdapter() override {
    const unsigned nshards = heap_->shard_count();
    heap_.reset();
    pmem::Pool::unlink(path_);
    for (unsigned i = 1; i < nshards; ++i) {
      pmem::Pool::unlink(path_ + ".shard" + std::to_string(i));
    }
  }

  void* alloc(std::size_t size) override {
    return heap_->raw(heap_->alloc(size));
  }
  bool free(void* p) override {
    return heap_->free(heap_->from_raw(p)) == core::FreeResult::kOk;
  }
  void set_root(void* p) override { heap_->set_root(heap_->from_raw(p)); }
  void* root() const override { return heap_->raw(heap_->root()); }
  const char* name() const noexcept override { return "poseidon"; }
  core::Heap* poseidon_heap() noexcept override { return heap_.get(); }

 private:
  std::unique_ptr<core::Heap> heap_;
  std::string path_;
};

class PmdkAdapter final : public PAllocator {
 public:
  PmdkAdapter(const std::string& path, const AllocatorConfig& cfg)
      : heap_(baselines::PmdkHeap::create(path, cfg.capacity)), path_(path) {}
  ~PmdkAdapter() override {
    heap_.reset();
    pmem::Pool::unlink(path_);
  }

  void* alloc(std::size_t size) override { return heap_->alloc(size); }
  bool free(void* p) override {
    heap_->free(p);
    return true;
  }
  void set_root(void* p) override { heap_->set_root(p); }
  void* root() const override { return heap_->root(); }
  const char* name() const noexcept override { return "pmdk-like"; }

 private:
  std::unique_ptr<baselines::PmdkHeap> heap_;
  std::string path_;
};

class MakaluAdapter final : public PAllocator {
 public:
  MakaluAdapter(const std::string& path, const AllocatorConfig& cfg)
      : heap_(baselines::MakaluHeap::create(path, cfg.capacity)),
        path_(path) {}
  ~MakaluAdapter() override {
    heap_.reset();
    pmem::Pool::unlink(path_);
  }

  void* alloc(std::size_t size) override { return heap_->alloc(size); }
  bool free(void* p) override {
    heap_->free(p);
    return true;
  }
  void set_root(void* p) override { heap_->set_root(p); }
  void* root() const override { return heap_->root(); }
  const char* name() const noexcept override { return "makalu-like"; }

 private:
  std::unique_ptr<baselines::MakaluHeap> heap_;
  std::string path_;
};

// ---- service mode (src/svc) ------------------------------------------------

// SIGTERM latch for the forked server child.
volatile sig_atomic_t g_svc_term = 0;
void svc_term_handler(int) { g_svc_term = 1; }

// Forked server child body: owns the heap, serves until SIGTERM, never
// returns.  Runs before the parent spawns bench threads, so the child is
// a clean single-threaded fork.
[[noreturn]] void run_server_child(const std::string& path,
                                   const AllocatorConfig& cfg) {
  struct sigaction sa {};
  sa.sa_handler = svc_term_handler;
  (void)::sigaction(SIGTERM, &sa, nullptr);
  try {
    svc::ServerOptions so;
    so.heap_opts = options_from(cfg);
    so.create_capacity = cfg.capacity;
    auto server = svc::SvcServer::start(path, so);
    while (g_svc_term == 0) {
      ::usleep(10'000);
    }
    server->stop();
  } catch (...) {
    ::_exit(2);
  }
  ::_exit(0);
}

// Multi-process transport: every bench thread gets its own session (the
// client-side L1 magazines live per session), while one control session
// owns the data windows so raw pointers mean the same thing on every
// thread of this process.
class PoseidonSvcAdapter final : public PAllocator {
 public:
  // own_server: fork a server over a fresh heap (bench mode).  Otherwise
  // attach to whatever server is already publishing a segment.
  PoseidonSvcAdapter(const std::string& path, const AllocatorConfig& cfg,
                     bool own_server)
      : path_(path), cfg_(cfg), own_server_(own_server) {
    if (own_server) {
      server_pid_ = ::fork();
      if (server_pid_ == 0) run_server_child(path, cfg);
      if (server_pid_ < 0) {
        throw Error(ErrorCode::kInternal, "fork allocation server");
      }
    }
    // The server publishes kServing only after full initialization; poll
    // through the not-yet-there window.
    const int tries = own_server ? 2000 : 1;
    for (int i = 0;; ++i) {
      try {
        control_ = svc::SvcClient::connect(path_, client_options(true));
        break;
      } catch (const Error& e) {
        if (i + 1 >= tries ||
            e.poseidon_code() != ErrorCode::kSvcUnavailable) {
          if (own_server_) reap_server();
          throw;
        }
        ::usleep(5'000);
      }
    }
  }

  ~PoseidonSvcAdapter() override {
    clients_.clear();  // each dtor flushes magazines through the ring
    control_.reset();
    if (own_server_) {
      reap_server();
      unlink_heap_files(path_, core::kMaxShards);
    }
  }

  void* alloc(std::size_t size) override {
    if (degraded()) return nullptr;
    ErrorCode err = ErrorCode::kOk;
    const core::NvPtr p = client().alloc_one(size, &err);
    if (err != ErrorCode::kOk) {
      // The client already rode out failovers; kSvcUnavailable here means
      // the reconnect budget is spent and this adapter goes read-only.
      if (err == ErrorCode::kSvcUnavailable) degraded_.store(true);
      return nullptr;
    }
    return control_->raw(p);  // kOk + null handle (exhausted) -> nullptr
  }

  bool free(void* p) override {
    if (degraded()) return false;
    const core::NvPtr ptr = control_->from_raw(p);
    if (ptr.is_null()) return false;
    return client().free_one(ptr) == ErrorCode::kOk;
  }

  void set_root(void* p) override {
    if (!degraded()) (void)control_->set_root(control_->from_raw(p));
  }

  void* root() const override {
    core::NvPtr r;
    if (control_->get_root(&r) != ErrorCode::kOk) return nullptr;
    return control_->raw(r);
  }

  const char* name() const noexcept override { return "poseidon+svc"; }

 private:
  // Per-thread sessions, created on first use.  Ops clients skip the data
  // windows (the control session's mappings serve conversions process-wide).
  svc::SvcClient& client() {
    const unsigned slot = thread_ordinal() % kSlots;
    {
      std::lock_guard<std::mutex> lk(mu_);
      if (clients_.size() <= slot) clients_.resize(kSlots);
      if (clients_[slot] == nullptr) {
        clients_[slot] = svc::SvcClient::connect(path_, client_options(false));
      }
      return *clients_[slot];
    }
  }

  svc::ClientOptions client_options(bool is_control) {
    svc::ClientOptions co;
    co.map_data = is_control;  // one set of windows per process
    // Clients of an owned server can nominate a replacement themselves;
    // attached clients just wait for whoever owns election elsewhere.
    if (own_server_) co.elect = [this] { elect_server(); };
    return co;
  }

  // Election hook: fork a replacement server once ours is provably gone.
  // Serialized so a thundering herd of reconnecting sessions forks one
  // child, not one each; racing another process is fine too — the loser's
  // child fails Heap::open with kHeapBusy and exits.
  void elect_server() {
    std::lock_guard<std::mutex> lk(elect_mu_);
    if (server_pid_ > 0) {
      int st = 0;
      const pid_t r = ::waitpid(server_pid_, &st, WNOHANG);
      if (r == 0) return;  // still running: not ours to replace
      server_pid_ = -1;
    }
    const pid_t pid = ::fork();
    if (pid == 0) run_server_child(path_, cfg_);
    if (pid > 0) server_pid_ = pid;
  }

  // Failover leg: once the server is provably dead, mutating calls refuse
  // (callers can reopen read-only via attach_allocator).
  bool degraded() const noexcept {
    return degraded_.load(std::memory_order_relaxed);
  }

  void reap_server() noexcept {
    if (server_pid_ > 0) {
      (void)::kill(server_pid_, SIGTERM);
      int st = 0;
      (void)::waitpid(server_pid_, &st, 0);
      server_pid_ = -1;
    }
  }

  static constexpr unsigned kSlots = 256;
  std::string path_;
  AllocatorConfig cfg_;
  bool own_server_ = false;
  pid_t server_pid_ = -1;
  std::mutex elect_mu_;
  std::unique_ptr<svc::SvcClient> control_;
  std::mutex mu_;
  std::vector<std::unique_ptr<svc::SvcClient>> clients_;
  mutable std::atomic<bool> degraded_{false};
};

// In-process attach (the OFD lock was free): the normal Heap, opened not
// created, never unlinked.
class PoseidonOpenAdapter final : public PAllocator {
 public:
  PoseidonOpenAdapter(const std::string& path, const AllocatorConfig& cfg)
      : heap_(core::Heap::open(path, options_from(cfg))) {}

  void* alloc(std::size_t size) override {
    return heap_->raw(heap_->alloc(size));
  }
  bool free(void* p) override {
    return heap_->free(heap_->from_raw(p)) == core::FreeResult::kOk;
  }
  void set_root(void* p) override { heap_->set_root(heap_->from_raw(p)); }
  void* root() const override { return heap_->raw(heap_->root()); }
  const char* name() const noexcept override { return "poseidon"; }
  core::Heap* poseidon_heap() noexcept override { return heap_.get(); }

 private:
  std::unique_ptr<core::Heap> heap_;
};

// Terminal degraded mode: data stays readable, mutations refuse.
class PoseidonReadOnlyAdapter final : public PAllocator {
 public:
  explicit PoseidonReadOnlyAdapter(const std::string& path,
                                   const AllocatorConfig& cfg) {
    core::Options opts = options_from(cfg);
    opts.read_only = true;
    heap_ = core::Heap::open(path, opts);
  }

  void* alloc(std::size_t) override { return nullptr; }
  bool free(void*) override { return false; }
  void set_root(void*) override {}
  void* root() const override { return heap_->raw(heap_->root()); }
  const char* name() const noexcept override { return "poseidon+ro"; }

 private:
  std::unique_ptr<core::Heap> heap_;
};

}  // namespace

const char* kind_name(AllocatorKind k) noexcept {
  switch (k) {
    case AllocatorKind::kPoseidon: return "poseidon";
    case AllocatorKind::kPmdkLike: return "pmdk-like";
    case AllocatorKind::kMakaluLike: return "makalu-like";
  }
  return "?";
}

std::unique_ptr<PAllocator> make_allocator(AllocatorKind kind,
                                           const AllocatorConfig& cfg) {
  std::string path =
      cfg.path.empty() ? default_path(kind_name(kind)) : cfg.path;
  if (cfg.fresh) unlink_heap_files(path, core::kMaxShards);
  switch (kind) {
    case AllocatorKind::kPoseidon:
      if (cfg.svc) {
        return std::make_unique<PoseidonSvcAdapter>(path, cfg,
                                                    /*own_server=*/true);
      }
      return std::make_unique<PoseidonAdapter>(path, cfg);
    case AllocatorKind::kPmdkLike:
      return std::make_unique<PmdkAdapter>(path, cfg);
    case AllocatorKind::kMakaluLike:
      return std::make_unique<MakaluAdapter>(path, cfg);
  }
  return nullptr;
}

std::unique_ptr<PAllocator> attach_allocator(const std::string& path,
                                             const AllocatorConfig& cfg) {
  // 1. In-process: take the heap if no one owns it.
  try {
    return std::make_unique<PoseidonOpenAdapter>(path, cfg);
  } catch (const Error& e) {
    if (e.poseidon_code() != ErrorCode::kHeapBusy) throw;
  }
  // 2. Service: the owner is (or recently was) a server.
  try {
    return std::make_unique<PoseidonSvcAdapter>(path, cfg,
                                                /*own_server=*/false);
  } catch (const Error& e) {
    if (e.poseidon_code() != ErrorCode::kSvcUnavailable &&
        e.poseidon_code() != ErrorCode::kSvcRetry) {
      throw;
    }
  }
  // 3. Read-only: a non-server process owns the heap, or the server died
  // without a successor.  Data stays inspectable either way.
  return std::make_unique<PoseidonReadOnlyAdapter>(path, cfg);
}

}  // namespace poseidon::iface
