// Uniform allocator facade so benchmarks, the FAST-FAIR B+-tree and the
// workload drivers run unmodified over Poseidon and both baselines —
// mirroring how the paper swaps allocators underneath the same benchmark.
//
// The facade speaks raw pointers (the lingua franca of the baselines);
// the Poseidon adapter converts to/from persistent pointers internally.
#pragma once

#include <cstddef>
#include <memory>
#include <string>

namespace poseidon::core {
class Heap;
}

namespace poseidon::iface {

class PAllocator {
 public:
  virtual ~PAllocator() = default;

  // nullptr on exhaustion.
  virtual void* alloc(std::size_t size) = 0;
  // False when the allocator rejected the free (Poseidon's validation);
  // baselines always report true.
  virtual bool free(void* p) = 0;

  virtual void set_root(void* p) = 0;
  virtual void* root() const = 0;

  virtual const char* name() const noexcept = 0;

  // The underlying Poseidon heap, for callers needing administrative
  // surfaces the facade does not model (the benches take snapshots
  // mid-run).  Null for the baselines and for service/read-only modes.
  virtual core::Heap* poseidon_heap() noexcept { return nullptr; }
};

enum class AllocatorKind { kPoseidon, kPmdkLike, kMakaluLike };

const char* kind_name(AllocatorKind k) noexcept;

struct AllocatorConfig {
  // User capacity of the heap file.
  std::uint64_t capacity = 64ull << 20;
  // Sub-heap / arena parallelism hint (Poseidon: sub-heap count; 0 = auto).
  unsigned nlanes = 0;
  // Poseidon only: NUMA shard count (0 = one per NUMA node; 1 = the
  // pre-v5 monolithic heap).  Multi-shard benches route each thread to a
  // shard by thread id so single-node CI boxes still exercise routing.
  unsigned nshards = 0;
  // Heap file path; empty derives one under /dev/shm.
  std::string path;
  // Remove any existing file first.
  bool fresh = true;
  // Poseidon only: enable the crash-safe per-thread front-end cache
  // (core/thread_cache.hpp).  Benches run both settings to measure it.
  bool thread_cache = false;
  // Poseidon only: flight-recorder mode, mirroring obs::FlightMode
  // (0 = off, 1 = DRAM ring, 2 = persistent ring in the pool).  An int so
  // this facade header stays independent of the obs headers.
  int flight = 1;
  // Poseidon only: persistence-domain mode, mirroring
  // pmem::PersistDomainMode (-1 = detect, 0 = cacheline flush, 1 = eADR,
  // 2 = none).  An int for the same header-independence reason.  Benches
  // run an eADR series to measure the elided write-back loops.
  int persist_domain = -1;
  // Poseidon only: service mode (src/svc) — the adapter forks a server
  // process that owns the heap, and every operation goes through the
  // shared-memory command rings, one client session per bench thread.
  // This is the `poseidon+svc` series: the multi-process deployment shape
  // measured against the in-process paths.
  bool svc = false;
};

// Factory: creates the heap file and wraps it.  The file is unlinked when
// the allocator is destroyed (benchmarks never reuse it).
std::unique_ptr<PAllocator> make_allocator(AllocatorKind kind,
                                           const AllocatorConfig& cfg);

// Attach to an EXISTING Poseidon heap, degrading gracefully with the
// multi-process story (DESIGN.md "Allocation service"):
//   1. in-process — Heap::open succeeds (the OFD lock was free);
//   2. service    — open threw kHeapBusy and a server is publishing a
//      segment beside the heap: operations go through the rings;
//   3. read-only  — no live owner path at all (service gone or draining):
//      alloc/free refuse, root and raw data stay readable.
// The returned adapter's name() reports which mode it landed in
// ("poseidon", "poseidon+svc", "poseidon+ro").  The heap file is NOT
// unlinked on destruction (the caller does not own it).
std::unique_ptr<PAllocator> attach_allocator(const std::string& path,
                                             const AllocatorConfig& cfg = {});

}  // namespace poseidon::iface
