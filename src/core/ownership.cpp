#include "core/ownership.hpp"

#include <fcntl.h>
#include <signal.h>
#include <unistd.h>

#include <cerrno>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <ctime>

#include "common/hash.hpp"
#include "pmem/persist.hpp"
#include "pmem/retry.hpp"

namespace poseidon::core {

namespace {

// Coarse wall-clock seconds for the heartbeat; diagnostic only.
std::uint64_t now_seconds() noexcept {
  return static_cast<std::uint64_t>(::time(nullptr));
}

std::uint64_t read_boot_id_hash() noexcept {
  const int fd = pmem::retry_eintr(
      [] { return ::open("/proc/sys/kernel/random/boot_id", O_RDONLY); });
  if (fd < 0) return 0x626f6f74ull;  // "boot": containers may hide /proc
  char buf[64];
  ssize_t n = pmem::retry_eintr([&] { return ::read(fd, buf, sizeof buf); });
  ::close(fd);
  if (n <= 0) return 0x626f6f74ull;
  // Strip the trailing newline so the hash matches across readers.
  while (n > 0 && (buf[n - 1] == '\n' || buf[n - 1] == '\0')) --n;
  const std::uint64_t h = hash_bytes(buf, static_cast<std::uint64_t>(n));
  return h != 0 ? h : 0x626f6f74ull;
}

}  // namespace

std::uint64_t boot_id_hash() noexcept {
  static const std::uint64_t h = read_boot_id_hash();
  return h;
}

std::uint64_t proc_start_time(pid_t pid) noexcept {
  char path[64];
  std::snprintf(path, sizeof path, "/proc/%ld/stat", static_cast<long>(pid));
  const int fd = pmem::retry_eintr([&] { return ::open(path, O_RDONLY); });
  if (fd < 0) return 0;
  // One read suffices: start time is field 22 and the line is < 1 KiB for
  // any comm short of the 16-byte kernel cap.
  char buf[1024];
  const ssize_t n =
      pmem::retry_eintr([&] { return ::read(fd, buf, sizeof buf - 1); });
  ::close(fd);
  if (n <= 0) return 0;
  buf[n] = '\0';
  // comm (field 2) may contain spaces and parentheses; fields resume after
  // the LAST ')'.  state is field 3, so start time is 19 fields later.
  const char* p = std::strrchr(buf, ')');
  if (p == nullptr) return 0;
  ++p;
  for (int field = 3; field < 22; ++field) {
    p = std::strchr(p + 1, ' ');
    if (p == nullptr) return 0;
  }
  return std::strtoull(p + 1, nullptr, 10);
}

bool process_alive(pid_t pid) noexcept {
  if (pid <= 0) return false;
  return ::kill(pid, 0) == 0 || errno == EPERM;
}

OwnerStaleness classify_owner(const OwnerRecord& rec) noexcept {
  if (rec.csum != owner_csum(rec)) return OwnerStaleness::kTorn;
  if (rec.boot_id != boot_id_hash()) return OwnerStaleness::kRebooted;
  const auto pid = static_cast<pid_t>(rec.pid);
  if (!process_alive(pid)) return OwnerStaleness::kPidDead;
  const std::uint64_t start = proc_start_time(pid);
  if (start != rec.start_time) return OwnerStaleness::kPidReused;
  return OwnerStaleness::kOwnerAlive;
}

void stamp_owner(SuperBlock* sb) noexcept {
  OwnerRecord rec{};
  rec.pid = static_cast<std::uint64_t>(::getpid());
  rec.boot_id = boot_id_hash();
  rec.start_time = proc_start_time(::getpid());
  rec.heartbeat = now_seconds();
  rec.csum = owner_csum(rec);
  pmem::nv_memcpy(&sb->owner, &rec, sizeof rec);
  pmem::persist(&sb->owner, sizeof sb->owner);
}

void clear_owner(SuperBlock* sb) noexcept {
  OwnerRecord rec{};  // pid 0 = no owner; csum of zeros left implicit
  rec.csum = owner_csum(rec);
  pmem::nv_memcpy(&sb->owner, &rec, sizeof rec);
  pmem::persist(&sb->owner, sizeof sb->owner);
}

void refresh_heartbeat(SuperBlock* sb) noexcept {
  if (sb->owner.pid == 0) return;
  OwnerRecord rec = sb->owner;
  rec.heartbeat = now_seconds();
  rec.csum = owner_csum(rec);
  pmem::nv_memcpy(&sb->owner, &rec, sizeof rec);
  pmem::persist(&sb->owner, sizeof sb->owner);
}

}  // namespace poseidon::core
