#include "core/undo_log.hpp"

#include <cassert>
#include <cstdlib>
#include <cstring>

#include "common/hash.hpp"
#include "pmem/persist.hpp"

namespace poseidon::core {

namespace {

std::uint32_t body_checksum(std::uint64_t gen, std::uint64_t meta_off,
                            std::uint32_t len,
                            const unsigned char* data) noexcept {
  std::uint64_t h = mix64(gen ^ mix64(meta_off) ^ (std::uint64_t{len} << 32));
  std::uint64_t chunk = 0;
  for (std::uint32_t i = 0; i < len; i += 8) {
    const std::uint32_t n = len - i < 8 ? len - i : 8;
    chunk = 0;
    std::memcpy(&chunk, data + i, n);
    h = mix64(h ^ chunk);
  }
  return static_cast<std::uint32_t>(h ^ (h >> 32));
}

}  // namespace

std::uint32_t UndoLogger::checksum(const UndoEntry& e) noexcept {
  return body_checksum(e.gen, e.meta_off, e.len, e.data);
}

void UndoLogger::save(const void* addr, std::size_t len) {
  if (!enabled_) return;
  assert(len > 0 && len <= kUndoDataMax);
  if (used_ >= cap_) {
    // A single operation must never touch more metadata than the log holds;
    // this is a program invariant, not a recoverable condition.
    std::abort();
  }
  UndoEntry& e = entries_[used_];
  const std::uint64_t gen = *gen_;
  const auto meta_off = static_cast<std::uint64_t>(
      static_cast<const std::byte*>(addr) - heap_base_);
  // Dedupe: recovery applies entries newest-to-oldest so the oldest value
  // of a range wins; a range already saved this operation needs no second
  // entry (and, crucially, no second flush+fence).  Ops touch a handful
  // of ranges, so the linear scan is cheap.
  for (std::size_t i = 0; i < used_; ++i) {
    if (entries_[i].meta_off == meta_off && entries_[i].len == len) return;
  }
  // Fill via nv_* so the crash simulator tracks the log itself too.
  pmem::nv_store(e.gen, gen);
  pmem::nv_store(e.meta_off, meta_off);
  pmem::nv_store(e.len, static_cast<std::uint32_t>(len));
  pmem::nv_memcpy(e.data, addr, len);
  pmem::nv_store(e.csum,
                 body_checksum(gen, meta_off, static_cast<std::uint32_t>(len),
                               e.data));
  // Flush only the used prefix: small saves fit one cache line.
  pmem::flush(&e, offsetof(UndoEntry, data) + len);  // fenced by seal()
  pending_ = true;
  ++used_;
  // undo_saves is counted in commit(): used_ at commit time is exactly the
  // number of entries appended (dedupe returns above never get here), so
  // one batched increment replaces 5-15 per-save RMWs on the hot path.
}

void UndoLogger::seal() noexcept {
  if (!pending_) return;
  pmem::fence();
  pending_ = false;
}

void UndoLogger::commit() noexcept {
  if (!enabled_ || used_ == 0) return;
  obs::CycleTimer lat(metrics_ != nullptr && obs::latency_sample_tick()
                          ? &metrics_->undo_commit_cycles
                          : nullptr);
  seal();
  // Every range mutated by the operation was first saved, so the entry
  // list doubles as the dirty set: write everything back with one fence,
  // then truncate.  (In-place mutations need no eager persist — if an
  // evicted line reaches media early, its undo entry is already durable.)
  // Mutated ranges cluster (a split touches adjacent records), so the
  // batch coalesces them into a few line ranges before the single fence.
  pmem::FlushBatch batch;
  for (std::size_t i = 0; i < used_; ++i) {
    batch.add(heap_base_ + entries_[i].meta_off, entries_[i].len);
  }
  batch.commit();
  pmem::nv_store_persist(*gen_, *gen_ + 1);
  if (metrics_ != nullptr) {
    metrics_->undo_saves.inc(used_);
    metrics_->undo_commits.inc();
  }
  used_ = 0;
}

void UndoLogger::rollback() noexcept {
  if (!enabled_) return;
  // Restores need no ordering between them — if the crash hits before the
  // final fence the still-valid log replays the same restores again — so
  // coalesce the write-backs and fence once.
  pmem::FlushBatch batch;
  for (std::size_t i = used_; i-- > 0;) {
    const UndoEntry& e = entries_[i];
    pmem::nv_memcpy(heap_base_ + e.meta_off, e.data, e.len);
    batch.add(heap_base_ + e.meta_off, e.len);
  }
  batch.commit();
  commit();
}

void UndoLogger::replay(std::uint64_t* gen, UndoEntry* entries,
                        std::size_t cap, std::byte* heap_base) noexcept {
  const std::uint64_t g = *gen;
  // Valid entries form a prefix (appends are ordered and individually
  // persisted before the next one starts).
  std::size_t n = 0;
  while (n < cap && entries[n].gen == g &&
         entries[n].len > 0 && entries[n].len <= kUndoDataMax &&
         entries[n].csum == checksum(entries[n])) {
    ++n;
  }
  pmem::FlushBatch batch;
  for (std::size_t i = n; i-- > 0;) {
    const UndoEntry& e = entries[i];
    pmem::nv_memcpy(heap_base + e.meta_off, e.data, e.len);
    batch.add(heap_base + e.meta_off, e.len);
  }
  batch.commit();  // all restores durable before the generation bump
  if (n > 0) pmem::nv_store_persist(*gen, g + 1);
}

}  // namespace poseidon::core
