// PoolShard: one pool file of a sharded Poseidon heap.
//
// A shard owns everything the pre-v5 monolithic Heap owned — one backing
// file with a superblock, per-CPU sub-heaps, their hash tables and logs,
// the per-thread cache logs, the flight rings, and one MPK protection
// domain over the file's metadata prefix (paper Fig. 4).  The public
// `Heap` (core/heap.hpp) is a thin routing front-end over one shard per
// NUMA node: every NvPtr carries its owning shard's heap id, so routing a
// free or a pointer conversion is a shard-id match, never a search.
//
// Thread safety matches the old Heap: all methods are thread-safe;
// sub-heaps are chosen per CPU (or per thread); a thread has at most one
// open transactional allocation, pinned to one sub-heap of one shard.
#pragma once

#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <utility>
#include <vector>

#include "common/spinlock.hpp"
#include "core/layout.hpp"
#include "core/nvmptr.hpp"
#include "core/subheap.hpp"
#include "mpk/mpk.hpp"
#include "obs/flight_recorder.hpp"
#include "obs/metrics.hpp"
#include "pmem/persist.hpp"
#include "pmem/pool.hpp"

namespace poseidon::core {

class ThreadCache;

enum class SubheapPolicy {
  kPerCpu,    // paper's design: sub-heap of the current CPU
  kPerThread, // round-robin by thread ordinal (emulates manycore on small boxes)
  kFixed0,    // single sub-heap (ablation)
};

// How the front-end picks a caller's home shard (core/heap.hpp).
enum class ShardPolicy {
  kPerNode,   // NUMA node of the current CPU (paper §4.1's manycore story)
  kPerThread, // round-robin by thread ordinal (emulates multi-node on one node)
  kFixed0,    // everything through shard 0 (ablation)
};

struct Options {
  // Total sub-heaps across the whole heap, split evenly over the shards
  // (0 = one per online CPU, capped at kMaxSubheaps).  When the total does
  // not divide by the shard count, the shard count is reduced to the
  // largest divisor — an explicit sub-heap count always wins.
  unsigned nsubheaps = 0;
  // Pool shards (backing files): 0 = one per NUMA node, capped at
  // kMaxShards.  Ignored on open — the on-media shard header governs.
  unsigned nshards = 0;
  ShardPolicy shard_policy = ShardPolicy::kPerNode;
  mpk::ProtectMode protect = mpk::ProtectMode::kAuto;
  SubheapPolicy policy = SubheapPolicy::kPerCpu;
  // Ablation only: disable undo logging ("unsafe mode").
  bool use_undo_log = true;
  // First hash level size; multiple of 256 (page-aligned levels).
  std::uint64_t level0_slots = 1024;
  // Singleton allocations may fall back to other sub-heaps (and other
  // shards) when the local one is exhausted.  Transactional allocations
  // never fall back once pinned (their micro log lives in the pinned
  // sub-heap).
  bool allow_fallback = true;
  // Ablation: merge buddy pairs at free time (classic eager buddy) instead
  // of the paper's lazy defragmentation (§5.4).  Eager keeps large blocks
  // available without defrag pauses but pays merge work on every free.
  bool eager_coalesce = false;
  // Crash-safe per-thread front-end cache (core/thread_cache.hpp): the
  // common alloc/free pair skips the sub-heap lock, the wrpkru window and
  // the undo log.  Off by default — the cache defers cross-thread
  // double-free detection to flush time and relaxes the delayed-reuse
  // discipline (§5.5) for cached blocks, so callers opt in.
  bool thread_cache = false;
  // Flight recorder placement (obs/flight_recorder.hpp).  kVolatile rings
  // live in DRAM; kPersistent places them in the pool's carved flight
  // region so the last pre-crash events survive into the next open (the
  // post-mortem).  Ignored when obs is compiled out.
  obs::FlightMode flight = obs::FlightMode::kVolatile;
  // Inspector mode: map PROT_READ, take no OFD lock, skip recovery/repair/
  // seal/owner stamping entirely — the file is never mutated, so a
  // read-only open coexists with a live writer (and with a crashed heap,
  // whose pre-recovery state it shows verbatim).  Mutating operations
  // (alloc/free/tx/set_root/fsck) fail with typed results.
  bool read_only = false;
  // Persistence-domain selection (pmem/persist.hpp): kDetect probes the
  // platform; kEadr elides write-back loops (caches are in the domain);
  // kNone elides fences too (DRAM rig).  Resolved at create/open; the
  // POSEIDON_PERSIST_DOMAIN env var overrides any explicit mode.  The
  // resolved domain is process-global, like the simulator flag.
  pmem::PersistDomainMode persist_domain = pmem::PersistDomainMode::kDetect;
};

struct HeapStats {
  std::uint64_t live_blocks = 0;
  std::uint64_t free_blocks = 0;
  std::uint64_t allocated_bytes = 0;
  std::uint64_t user_capacity = 0;
  unsigned nsubheaps = 0;
  unsigned subheaps_materialized = 0;
  // Mechanism counters (since heap creation):
  std::uint64_t splits = 0;          // buddy splits
  std::uint64_t merges = 0;          // defragmentation merges
  std::uint64_t window_merges = 0;   // hash-pressure merges (§5.4 case 2)
  std::uint64_t hash_extensions = 0; // multi-level table growth
  std::uint64_t hash_shrinks = 0;    // levels hole-punched back (§5.6)
  // Thread-cache counters (zero unless Options::thread_cache).  Blocks
  // parked in magazines are excluded from live_blocks/allocated_bytes and
  // counted as free: they are available for allocation.
  std::uint64_t cache_hits = 0;
  std::uint64_t cache_misses = 0;
  std::uint64_t cache_flushes = 0;
  std::uint64_t cache_cached_blocks = 0;
  // Sub-heaps currently quarantined or mid-repair (degraded service).
  unsigned subheaps_quarantined = 0;
  // Shard topology (v5): shards in the set, and how many of them failed to
  // open and are served as quarantined slots (their sub-heaps are counted
  // in subheaps_quarantined too).
  unsigned nshards = 1;
  unsigned shards_quarantined = 0;
  // Active persistence domain (a pmem::PersistDomain value).
  std::uint8_t persist_domain = 0;
};

// Per-sub-heap health as seen through the persisted state word.
enum class SubheapHealth {
  kAbsent,       // never formatted
  kReady,        // serving
  kRepairing,    // scavenge rebuild in flight (treated as quarantined)
  kQuarantined,  // unrecoverable: reads only, no alloc, frees rejected
};

// Result of a verification/repair pass (Heap::fsck or open-time
// validation).  records_synthesized counts minimum-granularity allocated
// records scavenge fabricated to cover unaccounted gaps — bounded leak,
// never unsafe reuse.
struct FsckReport {
  unsigned checked = 0;
  unsigned clean = 0;
  unsigned repaired = 0;
  unsigned quarantined = 0;
  std::uint64_t records_dropped = 0;
  std::uint64_t records_synthesized = 0;
};

// Identity of one member within a shard set, mirrored in the superblock's
// v5 shard header.  All members of one heap share set_id/epoch/count; a
// member from a different set or a stale create can never be mixed in.
struct ShardLink {
  std::uint64_t set_id = 0;  // random, nonzero
  std::uint64_t epoch = 0;   // random per create
  std::uint32_t index = 0;   // 0 = head (holds the root object)
  std::uint32_t count = 1;
};

// Random nonzero 64-bit id (heap ids, shard set ids, epochs).
std::uint64_t random_nonzero_u64();

class PoolShard {
 public:
  // Create one member file of a shard set.  `capacity` is this shard's
  // user capacity; `nsubheaps` this shard's sub-heap count (the front-end
  // splits the heap-wide totals).  `metrics` is the owning Heap's registry
  // (shared across shards) and must outlive the shard.
  static std::unique_ptr<PoolShard> create(const std::string& path,
                                           std::uint64_t capacity,
                                           const Options& opts,
                                           unsigned nsubheaps,
                                           const ShardLink& link,
                                           unsigned node,
                                           obs::Metrics* metrics);

  // Open one member, running crash recovery (undo + micro log replay,
  // paper §5.8) before any operation is admitted.  When `expect` is given,
  // the on-media shard header must match it exactly or the open throws
  // Error(kShardMismatch) — a member of another set, a stale epoch, or a
  // member opened at the wrong index never assembles silently.
  static std::unique_ptr<PoolShard> open(const std::string& path,
                                         const Options& opts,
                                         const ShardLink* expect,
                                         unsigned node,
                                         obs::Metrics* metrics);

  // As above, but over a pool the caller already opened (and, for writable
  // pools, already locked).  The front-end uses this to acquire every
  // member's OFD lock in canonical order BEFORE the parallel open phase,
  // so a shard set's ownership is all-or-nothing.
  static std::unique_ptr<PoolShard> open(pmem::Pool pool,
                                         const Options& opts,
                                         const ShardLink* expect,
                                         unsigned node,
                                         obs::Metrics* metrics);

  // Read a member's shard header without mutating the file (unlike open,
  // a damaged config prefix is decoded from the shadow page rather than
  // repaired in place, so corruption accounting stays with open).
  static ShardLink peek(const std::string& path);

  ~PoolShard();
  PoolShard(const PoolShard&) = delete;
  PoolShard& operator=(const PoolShard&) = delete;

  // ---- allocator operations (front-end counts calls/fails/latency) ---------

  // Singleton allocation (paper §5.2).  Null on exhaustion.  The returned
  // block is 2^ceil(log2(size)) bytes, at least 32.
  NvPtr alloc(std::uint64_t size);

  // Transactional allocation (paper §5.3).  Pins one of this shard's
  // sub-heaps for the calling thread until commit; `is_end` commits.
  NvPtr tx_alloc(std::uint64_t size, bool is_end);
  void tx_commit();
  void tx_leak_open_transaction_for_test();
  // True when the calling thread's open transaction is pinned to this
  // shard — the front-end must route every tx operation back here.
  bool tx_active_here() const noexcept;

  // Validated deallocation (paper §5.5): invalid and double frees are
  // detected via the memblock hash table and rejected.
  FreeResult free(NvPtr ptr);

  // ---- owner tags (allocation-service reconcile, DESIGN.md failover) -------
  //
  // An allocated record's free-list link words are dead state; the service
  // parks a session-identity tag there so a new server incarnation can
  // prove which blocks a lost-completion request produced.  Any free or
  // rollback overwrites the links, clearing the tag for free.

  // Stamp `tag` into ptr's record (no-op unless allocated and owned here).
  void stamp_owner_tag(NvPtr ptr, std::uint64_t tag);
  // Validated free that additionally requires the record's tag to carry
  // `nonce32` in its high word: a replayed free can never hit a block the
  // server already freed and handed to someone else (ABA-safe).  Returns
  // kInvalidFree on a tag mismatch.
  FreeResult free_if_owner(NvPtr ptr, std::uint32_t nonce32);
  // Free every allocated block whose tag equals one of tags[0..n); returns
  // how many were freed.  Idempotent: a second sweep finds nothing.
  unsigned reclaim_tagged(const std::uint64_t* tags, unsigned n);

  // Pointer conversions (paper §4.6) for pointers this shard owns.
  void* raw(NvPtr ptr) const noexcept;
  NvPtr from_raw(const void* p) const noexcept;

  // Root object pointer (head shard only, by front-end convention).
  NvPtr root() const noexcept;
  void set_root(NvPtr ptr);

  std::uint64_t heap_id() const noexcept { return sb_->heap_id; }
  unsigned nsubheaps() const noexcept { return sb_->nsubheaps; }
  std::uint64_t user_capacity() const noexcept {
    return sb_->user_size * sb_->nsubheaps;
  }
  const std::string& path() const noexcept { return pool_.path(); }
  bool read_only() const noexcept { return pool_.read_only(); }
  // The stamped owner record (diagnostic; meaningful when pid != 0).
  OwnerRecord owner() const noexcept { return sb_->owner; }
  mpk::ProtectMode protect_mode() const noexcept;

  ShardLink link() const noexcept {
    return ShardLink{sb_->shard_set_id, sb_->shard_epoch, sb_->shard_index,
                     sb_->shard_count};
  }
  unsigned shard_index() const noexcept { return sb_->shard_index; }
  unsigned node() const noexcept { return node_; }

  // Shard-local stats; structural fields only — the metrics-registry
  // derived cache counters are filled in once by the front-end.
  HeapStats stats() const;

  // The MPK-protected metadata prefix (tests register SimDomains here).
  std::pair<void*, std::size_t> metadata_region() const noexcept;
  // The full crash-recovery surface: the metadata prefix PLUS the
  // per-thread cache logs that follow it — every byte recovery consumes at
  // the next open.  The crashcheck engine records and materializes images
  // over this range (flight rings and user data sit beyond it).  Starts at
  // file offset 0, so an image can be pwrite()n back verbatim.
  std::pair<void*, std::size_t> crashsim_region() const noexcept;
  // True when p points into this shard's user data.
  bool contains(const void* p) const noexcept;
  // [lo, lo+len) of the user data, for the registry's address index.
  std::pair<const void*, std::size_t> user_range() const noexcept;

  bool check_invariants(std::string* why = nullptr) const;

  // ---- fault domains (DESIGN.md "Failure model") ---------------------------

  // Verify every materialized sub-heap of this shard and repair what
  // fails; the front-end aggregates reports across shards (and counts the
  // fsck_runs metric once per heap-wide pass).
  FsckReport fsck();

  SubheapHealth subheap_health(unsigned idx) const noexcept;

  // Enumerate every tracked block: f(local_subheap, offset, size_class,
  // status [BlockStatus]).  Diagnostic only; takes each sub-heap lock.
  template <typename F>
  void visit_blocks(F&& f) const {
    for (unsigned i = 0; i < sb_->nsubheaps; ++i) {
      if (!subheap_ready(i)) continue;
      Guard<Spinlock> g(subs_[i]->lock);
      subheap(i).visit_blocks([&](std::uint64_t off, std::uint32_t cls,
                                  std::uint32_t status) {
        f(i, off, cls, status);
      });
    }
  }

  // Bytes the filesystem actually backs (observes hole punching).
  std::uint64_t file_allocated_bytes() const { return pool_.allocated_bytes(); }

  // ---- online snapshots (core/snapshot.cpp) --------------------------------
  //
  // The front-end quiesces EVERY shard first (one consistent cut across
  // the set), then copies shards serially, resuming each right after its
  // own copy.  quiesce blocks sub-heap creation (admin_mu_), takes every
  // ready sub-heap's lock, and writes a seal (checksums + seal_state)
  // exactly as a clean close would — but WITHOUT clearing the owner, so
  // the copied image looks cleanly closed while the source stays owned.
  // resume drops the seal (while still locked, so the superblock page is
  // dirty for the next incremental) and releases everything.

  // Per-shard result of one snapshot copy.
  struct SnapCopy {
    std::uint64_t pages_copied = 0;
    std::uint64_t bytes_copied = 0;
    std::uint64_t pm_epoch = 0;  // dirty tracker identity after harvest
    std::uint64_t pm_gen = 0;    // dirty tracker generation after harvest
    std::uint64_t file_size = 0;
    std::uint64_t head_csum = 0;  // FNV over the image's first page
  };

  void snapshot_quiesce();
  void snapshot_resume() noexcept;
  // Current dirty-tracker identity/generation; false when the pool carries
  // no tracker (read-only opens).  The front-end proves every shard's
  // baseline BEFORE un-committing the destination of an incremental.
  bool snapshot_baseline(std::uint64_t* epoch,
                         std::uint64_t* gen) const noexcept;
  // Full copy of the sealed, quiesced shard file to dst_file (FICLONE ->
  // copy_file_range -> read/write ladder), owner record zeroed in the
  // image.  Harvests the dirty tracker (new baseline).
  SnapCopy snapshot_copy_full(const std::string& dst_file);
  // Patch only the pages dirtied since the (want_epoch, want_gen) baseline
  // into an existing image at dst_file.  Throws Error(kInvalidArgument)
  // when the live tracker cannot prove that baseline.
  SnapCopy snapshot_copy_incremental(const std::string& dst_file,
                                     std::uint64_t want_epoch,
                                     std::uint64_t want_gen);

  // Free every allocated block carrying an owner tag whose high word
  // matches pairs[2k] (a session nonce32) and whose low word (req id) is
  // strictly greater than pairs[2k+1] (that session's consumed watermark).
  // The fsck-scavenge tag preservation makes this reach blocks from
  // sessions whose client AND server died together.  Returns blocks freed.
  unsigned reclaim_orphans(const std::uint64_t* pairs, unsigned npairs);

  // Re-stamp this shard's owner heartbeat (no-op when unowned or
  // read-only).  The allocation service's housekeeping calls this so the
  // persistent owner record stays fresh while the server mainly touches
  // the heap through its service threads.
  void refresh_owner_heartbeat();

  // ---- observability -------------------------------------------------------

  // Record a heap-scoped flight event from outside the shard (the
  // allocation service's session/state transitions land in sub-heap 0's
  // ring).  No-op when the recorder is off.
  void note_flight(obs::FlightOp op, std::uint64_t arg) noexcept {
    flight(op, 0, 0, arg);
  }

  obs::FlightMode flight_mode() const noexcept;
  std::vector<obs::FlightEvent> flight_events() const;
  const std::vector<obs::FlightEvent>& flight_postmortem() const noexcept {
    return postmortem_;
  }

 private:
  struct SubRuntime {
    Spinlock lock;
    std::mutex tx_mu;  // held for the duration of an open transaction
  };

  PoolShard(pmem::Pool pool, const Options& opts, unsigned node,
            obs::Metrics* metrics, bool sb_repaired);

  std::byte* base() const noexcept { return pool_.data(); }
  SubheapMeta* meta_of(unsigned idx) const noexcept;
  Subheap subheap(unsigned idx) const noexcept;
  unsigned pick_subheap() const noexcept;
  // False when the sub-heap cannot serve (quarantined/repairing); formats
  // it first when absent.
  bool ensure_subheap(unsigned idx);
  void recover();

  // Fault-domain plumbing (core/fsck.cpp).  validate_superblock runs
  // before the shard exists (it may restore the config prefix from the
  // shadow page); returns true when a repair was applied.
  static bool validate_superblock(pmem::Pool& pool);
  void validate_on_open(bool sb_repaired);
  bool probe_subheap_readable(unsigned idx) const noexcept;
  bool subheap_sane(unsigned idx) const noexcept;
  bool scavenge_subheap(unsigned idx, FsckReport* rep);
  void quarantine_subheap(unsigned idx);
  void seal_all() noexcept;

  // Lock-free readers (alloc/free fast paths, stats, visit_blocks) observe
  // a sub-heap's readiness via acquire, pairing with the release store
  // that publishes a finished format in ensure_subheap.
  bool subheap_ready(unsigned idx) const noexcept {
    return pmem::nv_load_acquire(sb_->subheap_state[idx]) == kSubheapReady;
  }

  // Flight-recorder plumbing.  Ring labels are heap-global sub-heap
  // indices (shard_index * nsubheaps + local) so merged event streams stay
  // unambiguous.
  obs::FlightEvent* pm_flight_slots(unsigned idx) const noexcept;
  void init_flight();
  void flight(obs::FlightOp op, unsigned sub, std::uint16_t cls,
              std::uint64_t arg) noexcept {
    if (!rings_.empty()) rings_[sub]->record(op, cls, arg);
  }

  // Thread-cache plumbing (no-ops unless Options::thread_cache).
  CacheLogSlot* cache_slot(unsigned idx) const noexcept;
  ThreadCache& cache_for_thread() const noexcept;
  NvPtr cache_refill(ThreadCache& tc, unsigned cls);
  // nullopt: not handled, take the slow path (big block or full log).
  std::optional<FreeResult> cache_free(NvPtr ptr, unsigned idx);
  void cache_flush(ThreadCache& tc, unsigned cls);

  pmem::Pool pool_;
  Options opts_;
  SuperBlock* sb_ = nullptr;
  unsigned node_ = 0;  // preferred NUMA node of this shard's memory
  std::unique_ptr<mpk::ProtectionDomain> prot_;
  std::vector<std::unique_ptr<SubRuntime>> subs_;
  // Constructed eagerly (one per persistent cache-log slot) so lookup by
  // thread ordinal never races a lazy publication.
  std::vector<std::unique_ptr<ThreadCache>> caches_;
  mutable std::mutex admin_mu_;  // sub-heap creation + root updates
  // Sub-heap indices locked by an in-flight snapshot_quiesce (guarded by
  // the front-end's snapshot mutex: one snapshot at a time per heap).
  std::vector<unsigned> snap_locked_;

  // Observability state.  metrics_ is the owning Heap's registry, shared
  // by every shard so heap-wide counters aggregate for free.  rings_ is
  // empty when the flight recorder is off (or obs is compiled out);
  // flight_mem_ backs volatile rings.
  obs::Metrics* metrics_;
  std::atomic<bool> numa_bind_failed_{false};  // first-failure flight latch
  std::vector<std::unique_ptr<obs::FlightRing>> rings_;
  std::unique_ptr<obs::FlightEvent[]> flight_mem_;
  std::vector<obs::FlightEvent> postmortem_;
};

}  // namespace poseidon::core
