// Process identity for the superblock owner record (layout v6).
//
// The OFD lock answers "is someone alive holding this heap"; these helpers
// answer the follow-up an opener asks when the lock was free but the owner
// record is still stamped: which process wrote it, and is that incarnation
// — pid + start time within this boot — definitely gone?  All reads come
// from /proc; anything unreadable degrades to "treat as stale", which is
// safe because the caller already holds the lock.
#pragma once

#include <sys/types.h>

#include <cstdint>

#include "core/layout.hpp"

namespace poseidon::core {

// Staleness classification for a superseded owner record; recorded as the
// arg of the kOwnerTakeover flight event so a postmortem can tell a
// crashed process from a reboot from pid reuse.
enum class OwnerStaleness : std::uint64_t {
  kPidDead = 0,      // same boot, pid no longer exists
  kRebooted = 1,     // boot id changed; pids are meaningless
  kPidReused = 2,    // pid exists but with a different start time
  kTorn = 3,         // record checksum bad (crash mid-stamp)
  kOwnerAlive = 4,   // record names a live process — yet the lock was free.
                     // Anomalous (closed pool without clean close?); the
                     // lock is held, so takeover proceeds anyway.
};

// FNV hash of this boot's /proc/sys/kernel/random/boot_id (cached after the
// first call).  Falls back to a nonzero constant when /proc is unreadable —
// both sides of a comparison degrade together, so takeover still works.
std::uint64_t boot_id_hash() noexcept;

// Process start time (clock ticks since boot, /proc/<pid>/stat field 22);
// 0 when the pid is gone or the file is unparsable.
std::uint64_t proc_start_time(pid_t pid) noexcept;

// Existence check via kill(pid, 0); EPERM still means alive.
bool process_alive(pid_t pid) noexcept;

// Classifies a stamped (pid != 0) owner record found with the lock free.
OwnerStaleness classify_owner(const OwnerRecord& rec) noexcept;

// Stamps the calling process into sb.owner and persists it.
void stamp_owner(SuperBlock* sb) noexcept;

// Clears sb.owner (pid = 0) and persists it; the clean-close marker.
void clear_owner(SuperBlock* sb) noexcept;

// Re-stamps the heartbeat of an owner record this process holds (no-op
// when unowned); called from fsck so a long-lived owner leaves a liveness
// trail for inspectors.
void refresh_heartbeat(SuperBlock* sb) noexcept;

}  // namespace poseidon::core
