// Poseidon heap: the public C++ API.
//
// Since layout v5 a heap is a *shard set*: one PoolShard (pool file) per
// NUMA node, assembled behind this thin routing front-end.  The head file
// lives at `path` and holds the root object; members live at
// `path + ".shardN"`.  Every NvPtr carries its owning shard's heap id, so
// a free or a pointer conversion routes by an id match — never a search —
// and cross-shard frees cost one extra predictable branch.
//
// The shard header in every member's superblock (set id, epoch, index,
// count) makes assembly refuse mismatched or partially-created sets;
// a member that is missing or corrupt beyond repair is quarantined as a
// whole while the remaining shards keep serving.
//
// Thread safety: all public methods are thread-safe.  A thread's home
// shard follows Options::shard_policy (its NUMA node by default); within
// a shard, sub-heaps are chosen per CPU or per thread (Options::policy).
// A thread may have at most one open transactional allocation (tx_alloc)
// at a time, pinned to one sub-heap of one shard.
#pragma once

#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "core/pool_shard.hpp"
#include "core/snapshot.hpp"

namespace poseidon::core {

class Heap {
 public:
  // Create a new heap whose *user* capacity is at least `capacity` bytes,
  // split over the shard set (and within each shard into power-of-two
  // sub-heap regions; metadata is added on top and the files are sparse).
  // Fails if the head file exists.  Member files are written first and the
  // head last, so a crash mid-create never leaves an openable head over a
  // partial set — the next create sweeps the stale members.
  static std::unique_ptr<Heap> create(const std::string& path,
                                      std::uint64_t capacity,
                                      const Options& opts = {});

  // Open an existing heap.  Every shard runs crash recovery (undo + micro
  // log replay, paper §5.8) in parallel — one worker per shard, pinned to
  // the shard's NUMA node — before any operation is admitted.  The head
  // must open; a member whose shard header disagrees with the head throws
  // Error(kShardMismatch), while a missing or unrepairable member is
  // quarantined and the rest of the set serves.
  static std::unique_ptr<Heap> open(const std::string& path,
                                    const Options& opts = {});

  static std::unique_ptr<Heap> open_or_create(const std::string& path,
                                              std::uint64_t capacity,
                                              const Options& opts = {});

  ~Heap();
  Heap(const Heap&) = delete;
  Heap& operator=(const Heap&) = delete;

  // Singleton allocation (paper §5.2).  Served from the caller's home
  // shard; falls back across shards (then sub-heaps) when exhausted and
  // Options::allow_fallback holds.  Null on exhaustion.
  NvPtr alloc(std::uint64_t size);

  // Transactional allocation (paper §5.3): the address is micro-logged so
  // an uncommitted transaction's allocations are freed by recovery;
  // `is_end` commits (truncates the micro log).  At most one open
  // transaction per thread; once pinned to a shard, every tx operation
  // routes back there until commit.
  NvPtr tx_alloc(std::uint64_t size, bool is_end);

  // Commit the calling thread's open transaction without allocating:
  // truncates the micro log and releases the pinned sub-heap.  No-op when
  // no transaction is open.  Lets callers order "allocate, initialize,
  // *link*, then commit" so recovery semantics match the linkage.
  void tx_commit();

  // Abort the calling thread's open transaction without committing: the
  // pinned sub-heap is released and the micro log left intact, so the
  // allocations are reclaimed at the next recovery (testing/diagnostics).
  void tx_leak_open_transaction_for_test();

  // Validated deallocation (paper §5.5): invalid and double frees are
  // detected via the memblock hash table and rejected.  The pointer's
  // shard is found by heap id, so cross-shard frees route correctly.
  FreeResult free(NvPtr ptr);

  // ---- batch entry points (allocation-service back-end, src/svc) -----------
  //
  // One ring request carries up to a handful of ops; these run them under
  // one home-shard decision and, with Options::thread_cache on (how the
  // service opens the heap), one magazine refill amortizes its batched
  // undo commit across the whole request — the SpeedMalloc L2 serving the
  // client-side L1.  A failed op yields a null slot / its own FreeResult;
  // the batch never aborts as a whole.

  // Fills out[0..n) (null on exhaustion); returns how many are non-null.
  unsigned alloc_batch(const std::uint64_t* sizes, unsigned n, NvPtr* out);

  // As alloc_batch but inside one transaction, committed before returning:
  // a crash mid-batch frees every member at recovery, so a client that
  // dies before consuming the completion never half-owns a batch.
  unsigned tx_alloc_batch(const std::uint64_t* sizes, unsigned n, NvPtr* out);

  // Per-pointer validated frees; out[i] is ptrs[i]'s own verdict.
  void free_batch(const NvPtr* ptrs, unsigned n, FreeResult* out);

  // As tx_alloc_batch, but every produced block is stamped with `tag`
  // (session nonce + request id) *before* the commit.  A crash before the
  // commit rolls every member back; a crash after it leaves committed,
  // tagged blocks that reclaim_tagged() finds — so a lost completion
  // never leaks and never double-allocates (DESIGN.md failover).
  unsigned tx_alloc_batch_tagged(const std::uint64_t* sizes, unsigned n,
                                 NvPtr* out, std::uint64_t tag);
  // Validated free gated on the block still carrying nonce32's owner tag.
  FreeResult free_if_owner(NvPtr ptr, std::uint32_t nonce32);
  // Sweep all shards freeing blocks stamped with any of tags[0..n).
  unsigned reclaim_tagged(const std::uint64_t* tags, unsigned n);

  // Re-stamp every writable shard's owner heartbeat (service housekeeping;
  // also what fsck does as a side effect).
  void refresh_owner_heartbeat();

  // Pointer conversions (paper §4.6).  Null/invalid input yields nullptr /
  // NvPtr::null().
  void* raw(NvPtr ptr) const noexcept;
  NvPtr from_raw(const void* p) const noexcept;

  // Root object pointer at a well-known location (paper §2.2); lives in
  // the head shard.
  NvPtr root() const noexcept;
  void set_root(NvPtr ptr);

  // The head shard's id — the heap's public identity (what a set-of-one
  // heap has always reported).  Members carry their own ids; see
  // shard_heap_id().
  std::uint64_t heap_id() const noexcept { return shards_[0]->heap_id(); }
  // Total sub-heaps across the shard set.
  unsigned nsubheaps() const noexcept { return nshards_ * per_shard_subs_; }
  std::uint64_t user_capacity() const noexcept;
  const std::string& path() const noexcept { return shards_[0]->path(); }
  mpk::ProtectMode protect_mode() const noexcept {
    return shards_[0]->protect_mode();
  }

  HeapStats stats() const;

  // The head shard's MPK-protected metadata prefix (tests register
  // SimDomains here); per-shard regions via shard(i)->metadata_region().
  std::pair<void*, std::size_t> metadata_region() const noexcept {
    return shards_[0]->metadata_region();
  }
  // The head shard's full crash-recovery surface (metadata prefix + cache
  // logs) for the crashcheck trace recorder; see PoolShard::crashsim_region.
  std::pair<void*, std::size_t> crashsim_region() const noexcept {
    return shards_[0]->crashsim_region();
  }
  // True when p points into any shard's user data.
  bool contains(const void* p) const noexcept;

  // Deep consistency check across all shards (test support).
  bool check_invariants(std::string* why = nullptr) const;

  // ---- online snapshots (core/snapshot.cpp) --------------------------------

  // Copy the live heap into dst_dir as an openable, cleanly-closed image
  // plus a MANIFEST describing it.  One consistent cut: every shard is
  // quiesced (sub-heap locks + seal) before the first byte is copied;
  // shards are then copied serially and resumed one by one, so writers on
  // already-copied shards keep serving while later shards copy.  Open
  // transactions are NOT waited for — the image carries their micro logs
  // and recovery at snapshot-open frees the uncommitted allocations,
  // exactly as a crash would.  The destination's head magic stays zeroed
  // until the manifest is durable, so a half-written snapshot directory is
  // refused at open (kNotAPool).
  SnapshotReport snapshot(const std::string& dst_dir);

  // Update the snapshot at dst_dir in place, copying only pages dirtied
  // since `since_manifest` (normally dst_dir + "/MANIFEST") was written.
  // Requires the live dirty tracker to still hold that manifest's exact
  // epoch/generation baseline — a process restart, a snapshot to another
  // directory, or an untracked pool all force a fresh full snapshot
  // (Error kInvalidArgument explains which).
  SnapshotReport snapshot_incremental(const std::string& dst_dir,
                                      const std::string& since_manifest);

  // Mark [p, p+len) dirty for the incremental tracker — the escape hatch
  // for user-data writes that never reach a persistence barrier.
  void note_write(const void* p, std::size_t len) noexcept;

  // Sweep all shards freeing service-tagged blocks past their dead
  // session's consumed watermark (pairs of nonce32, watermark).
  unsigned reclaim_orphans(const std::uint64_t* pairs, unsigned npairs);

  // ---- fault domains (DESIGN.md "Failure model") ---------------------------

  // Verify every materialized sub-heap of every shard and repair what
  // fails, one node-pinned worker per shard in parallel; reports are
  // merged.  Safe on a live heap (locks each sub-heap; concurrent ops see
  // it briefly as repairing).
  FsckReport fsck();

  // Health of a heap-global sub-heap index (shard-major order).  Every
  // sub-heap of a quarantined shard slot reads kQuarantined.
  SubheapHealth subheap_health(unsigned idx) const noexcept;

  // Enumerate every tracked block: f(subheap, offset, size_class, status
  // [BlockStatus]) with heap-global sub-heap indices.  Diagnostic only.
  template <typename F>
  void visit_blocks(F&& f) const {
    for (unsigned s = 0; s < nshards_; ++s) {
      if (shards_[s] == nullptr) continue;
      const unsigned base = s * per_shard_subs_;
      shards_[s]->visit_blocks([&](unsigned i, std::uint64_t off,
                                   std::uint32_t cls, std::uint32_t status) {
        f(base + i, off, cls, status);
      });
    }
  }

  // Bytes the filesystem actually backs across the set (observes hole
  // punching).
  std::uint64_t file_allocated_bytes() const;

  // ---- shard topology ------------------------------------------------------

  unsigned shard_count() const noexcept { return nshards_; }
  // nullptr when the slot is quarantined (the member failed to open).
  const PoolShard* shard(unsigned i) const noexcept {
    return i < nshards_ ? shards_[i].get() : nullptr;
  }
  // 0 when the slot is quarantined.
  std::uint64_t shard_heap_id(unsigned i) const noexcept {
    return i < nshards_ && shards_[i] != nullptr ? shards_[i]->heap_id() : 0;
  }
  // {nullptr, 0} when the slot is quarantined.
  std::pair<const void*, std::size_t> shard_user_range(unsigned i) const noexcept {
    return i < nshards_ && shards_[i] != nullptr
               ? shards_[i]->user_range()
               : std::pair<const void*, std::size_t>{nullptr, 0};
  }
  // NUMA node the shard's memory prefers (shard index modulo node count).
  unsigned shard_node(unsigned i) const noexcept;
  // Backing file of slot i (valid even when the slot is quarantined).
  std::string shard_path(unsigned i) const;

  // ---- observability (src/obs; see DESIGN.md "Observability") --------------

  // The heap-wide metrics registry (shared by every shard).
  const obs::Metrics& metrics() const noexcept { return metrics_; }
  // Mutable registry for subsystems layered on top of the heap (the
  // allocation service counts its ring traffic here so one exporter sees
  // everything).
  obs::Metrics& metrics_mut() noexcept { return metrics_; }

  // Record a heap-scoped flight event (lands in the head shard's sub-heap
  // 0 ring); the service's session lifecycle uses the kSvc* ops.
  void note_flight(obs::FlightOp op, std::uint64_t arg) noexcept {
    shards_[0]->note_flight(op, arg);
  }

  // Resolved flight-recorder mode (kOff when obs is compiled out).
  obs::FlightMode flight_mode() const noexcept {
    return shards_[0]->flight_mode();
  }

  // Events currently in the rings, merged across shards in tsc order.
  std::vector<obs::FlightEvent> flight_events() const;

  // Events that survived in the persistent flight regions from the
  // previous session, captured at open() before recovery ran.  Empty on a
  // fresh heap.
  const std::vector<obs::FlightEvent>& flight_postmortem() const noexcept {
    return postmortem_;
  }

 private:
  Heap(std::string head_path, const Options& opts);

  unsigned home_shard() const noexcept;
  PoolShard* shard_by_id(std::uint64_t heap_id) const noexcept;

  std::string head_path_;
  Options opts_;
  unsigned nshards_ = 1;
  unsigned per_shard_subs_ = 0;
  // The single metrics registry, shared by every shard; declared before
  // shards_ so it outlives every PoolShard that holds a pointer to it.
  obs::Metrics metrics_;
  // Slot i is nullptr when that member failed to open (quarantined shard).
  // Slot 0 (the head) is never null on a live Heap.
  std::vector<std::unique_ptr<PoolShard>> shards_;
  std::vector<obs::FlightEvent> postmortem_;
  // Serializes snapshot/snapshot_incremental: one global cut at a time
  // (also what lets the shards' snap_locked_ bookkeeping stay plain).
  std::mutex snapshot_mu_;
};

}  // namespace poseidon::core
