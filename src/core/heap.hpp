// Poseidon heap: the public C++ API.
//
// A heap is one pool file containing a superblock, per-CPU sub-heaps and
// their user regions (paper Fig. 4).  The metadata prefix of the file is
// guarded by an MPK protection domain; every allocator operation opens a
// per-thread write window around its critical section (paper §4.3).
//
// Thread safety: all public methods are thread-safe.  Sub-heaps are chosen
// per CPU (or per thread, see Options::policy); cross-thread frees lock the
// owning sub-heap (paper §5.7).  A thread may have at most one open
// transactional allocation (tx_alloc) at a time.
#pragma once

#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <vector>

#include "common/spinlock.hpp"
#include "core/layout.hpp"
#include "core/nvmptr.hpp"
#include "core/subheap.hpp"
#include "mpk/mpk.hpp"
#include "obs/flight_recorder.hpp"
#include "obs/metrics.hpp"
#include "pmem/persist.hpp"
#include "pmem/pool.hpp"

namespace poseidon::core {

class ThreadCache;

enum class SubheapPolicy {
  kPerCpu,    // paper's design: sub-heap of the current CPU
  kPerThread, // round-robin by thread ordinal (emulates manycore on small boxes)
  kFixed0,    // single sub-heap (ablation)
};

struct Options {
  // 0 = one sub-heap per online CPU (capped at kMaxSubheaps).
  unsigned nsubheaps = 0;
  mpk::ProtectMode protect = mpk::ProtectMode::kAuto;
  SubheapPolicy policy = SubheapPolicy::kPerCpu;
  // Ablation only: disable undo logging ("unsafe mode").
  bool use_undo_log = true;
  // First hash level size; multiple of 256 (page-aligned levels).
  std::uint64_t level0_slots = 1024;
  // Singleton allocations may fall back to other sub-heaps when the local
  // one is exhausted.  Transactional allocations never fall back (their
  // micro log lives in the pinned sub-heap).
  bool allow_fallback = true;
  // Ablation: merge buddy pairs at free time (classic eager buddy) instead
  // of the paper's lazy defragmentation (§5.4).  Eager keeps large blocks
  // available without defrag pauses but pays merge work on every free.
  bool eager_coalesce = false;
  // Crash-safe per-thread front-end cache (core/thread_cache.hpp): the
  // common alloc/free pair skips the sub-heap lock, the wrpkru window and
  // the undo log.  Off by default — the cache defers cross-thread
  // double-free detection to flush time and relaxes the delayed-reuse
  // discipline (§5.5) for cached blocks, so callers opt in.
  bool thread_cache = false;
  // Flight recorder placement (obs/flight_recorder.hpp).  kVolatile rings
  // live in DRAM; kPersistent places them in the pool's carved flight
  // region so the last pre-crash events survive into the next open (the
  // post-mortem).  Ignored when obs is compiled out.
  obs::FlightMode flight = obs::FlightMode::kVolatile;
};

struct HeapStats {
  std::uint64_t live_blocks = 0;
  std::uint64_t free_blocks = 0;
  std::uint64_t allocated_bytes = 0;
  std::uint64_t user_capacity = 0;
  unsigned nsubheaps = 0;
  unsigned subheaps_materialized = 0;
  // Mechanism counters (since heap creation):
  std::uint64_t splits = 0;          // buddy splits
  std::uint64_t merges = 0;          // defragmentation merges
  std::uint64_t window_merges = 0;   // hash-pressure merges (§5.4 case 2)
  std::uint64_t hash_extensions = 0; // multi-level table growth
  std::uint64_t hash_shrinks = 0;    // levels hole-punched back (§5.6)
  // Thread-cache counters (zero unless Options::thread_cache).  Blocks
  // parked in magazines are excluded from live_blocks/allocated_bytes and
  // counted as free: they are available for allocation.
  std::uint64_t cache_hits = 0;
  std::uint64_t cache_misses = 0;
  std::uint64_t cache_flushes = 0;
  std::uint64_t cache_cached_blocks = 0;
  // Sub-heaps currently quarantined or mid-repair (degraded service).
  unsigned subheaps_quarantined = 0;
};

// Per-sub-heap health as seen through the persisted state word.
enum class SubheapHealth {
  kAbsent,       // never formatted
  kReady,        // serving
  kRepairing,    // scavenge rebuild in flight (treated as quarantined)
  kQuarantined,  // unrecoverable: reads only, no alloc, frees rejected
};

// Result of a verification/repair pass (Heap::fsck or open-time
// validation).  records_synthesized counts minimum-granularity allocated
// records scavenge fabricated to cover unaccounted gaps — bounded leak,
// never unsafe reuse.
struct FsckReport {
  unsigned checked = 0;
  unsigned clean = 0;
  unsigned repaired = 0;
  unsigned quarantined = 0;
  std::uint64_t records_dropped = 0;
  std::uint64_t records_synthesized = 0;
};

class Heap {
 public:
  // Create a new heap whose *user* capacity is at least `capacity` bytes
  // (split evenly into power-of-two sub-heap regions; metadata is added on
  // top and the file is sparse).  Fails if the file exists.
  static std::unique_ptr<Heap> create(const std::string& path,
                                      std::uint64_t capacity,
                                      const Options& opts = {});

  // Open an existing heap, running crash recovery (undo + micro log
  // replay, paper §5.8) before any operation is admitted.
  static std::unique_ptr<Heap> open(const std::string& path,
                                    const Options& opts = {});

  static std::unique_ptr<Heap> open_or_create(const std::string& path,
                                              std::uint64_t capacity,
                                              const Options& opts = {});

  ~Heap();
  Heap(const Heap&) = delete;
  Heap& operator=(const Heap&) = delete;

  // Singleton allocation (paper §5.2).  Null on exhaustion.  The returned
  // block is 2^ceil(log2(size)) bytes, at least 32.
  NvPtr alloc(std::uint64_t size);

  // Transactional allocation (paper §5.3): the address is micro-logged so
  // an uncommitted transaction's allocations are freed by recovery;
  // `is_end` commits (truncates the micro log).  At most one open
  // transaction per thread.
  NvPtr tx_alloc(std::uint64_t size, bool is_end);

  // Commit the calling thread's open transaction without allocating:
  // truncates the micro log and releases the pinned sub-heap.  No-op when
  // no transaction is open.  Lets callers order "allocate, initialize,
  // *link*, then commit" so recovery semantics match the linkage.
  void tx_commit();

  // Abort the calling thread's open transaction without committing: the
  // pinned sub-heap is released and the micro log left intact, so the
  // allocations are reclaimed at the next recovery (testing/diagnostics).
  void tx_leak_open_transaction_for_test();

  // Validated deallocation (paper §5.5): invalid and double frees are
  // detected via the memblock hash table and rejected.
  FreeResult free(NvPtr ptr);

  // Pointer conversions (paper §4.6).  Null/invalid input yields nullptr /
  // NvPtr::null().
  void* raw(NvPtr ptr) const noexcept;
  NvPtr from_raw(const void* p) const noexcept;

  // Root object pointer at a well-known location (paper §2.2).
  NvPtr root() const noexcept;
  void set_root(NvPtr ptr);

  std::uint64_t heap_id() const noexcept { return sb_->heap_id; }
  unsigned nsubheaps() const noexcept { return sb_->nsubheaps; }
  std::uint64_t user_capacity() const noexcept {
    return sb_->user_size * sb_->nsubheaps;
  }
  const std::string& path() const noexcept { return pool_.path(); }
  mpk::ProtectMode protect_mode() const noexcept;

  HeapStats stats() const;

  // The MPK-protected metadata prefix (tests register SimDomains here).
  std::pair<void*, std::size_t> metadata_region() const noexcept;
  // True when p points into this heap's user data.
  bool contains(const void* p) const noexcept;

  // Deep consistency check across all sub-heaps (test support).
  bool check_invariants(std::string* why = nullptr) const;

  // ---- fault domains (DESIGN.md "Failure model") ---------------------------

  // Verify every materialized sub-heap and repair what fails: invariant
  // violations trigger a scavenge rebuild; sub-heaps that cannot be
  // rebuilt (or whose metadata pages fault) are quarantined.  Also retries
  // previously quarantined sub-heaps — if their pages read again, a
  // successful rebuild returns them to service.  Safe on a live heap
  // (locks each sub-heap; concurrent ops see it briefly as repairing).
  FsckReport fsck();

  SubheapHealth subheap_health(unsigned idx) const noexcept;

  // Enumerate every tracked block: f(subheap, offset, size_class, status
  // [BlockStatus]).  Diagnostic only; takes each sub-heap lock in turn.
  template <typename F>
  void visit_blocks(F&& f) const {
    for (unsigned i = 0; i < sb_->nsubheaps; ++i) {
      if (!subheap_ready(i)) continue;
      Guard<Spinlock> g(subs_[i]->lock);
      subheap(i).visit_blocks([&](std::uint64_t off, std::uint32_t cls,
                                  std::uint32_t status) {
        f(i, off, cls, status);
      });
    }
  }

  // Bytes the filesystem actually backs (observes hole punching).
  std::uint64_t file_allocated_bytes() const { return pool_.allocated_bytes(); }

  // ---- observability (src/obs; see DESIGN.md "Observability") --------------

  // The heap's metrics registry (sharded counters + histograms).
  const obs::Metrics& metrics() const noexcept { return metrics_; }

  // Resolved flight-recorder mode (kOff when obs is compiled out).
  obs::FlightMode flight_mode() const noexcept;

  // Events currently in the rings, merged across sub-heaps in tsc order.
  std::vector<obs::FlightEvent> flight_events() const;

  // Events that survived in the persistent flight region from the previous
  // session, captured at open() before recovery ran — what the allocator
  // was doing right before the last crash/close.  Empty on a fresh heap.
  const std::vector<obs::FlightEvent>& flight_postmortem() const noexcept {
    return postmortem_;
  }

 private:
  struct SubRuntime {
    Spinlock lock;
    std::mutex tx_mu;  // held for the duration of an open transaction
  };

  Heap(pmem::Pool pool, const Options& opts, bool sb_repaired = false);

  std::byte* base() const noexcept { return pool_.data(); }
  SubheapMeta* meta_of(unsigned idx) const noexcept;
  Subheap subheap(unsigned idx) const noexcept;
  unsigned pick_subheap() const noexcept;
  // False when the sub-heap cannot serve (quarantined/repairing); formats
  // it first when absent.
  bool ensure_subheap(unsigned idx);
  void recover();

  // Fault-domain plumbing (core/fsck.cpp).  validate_superblock runs
  // before the Heap exists (it may restore the config prefix from the
  // shadow page); returns true when a repair was applied.
  static bool validate_superblock(pmem::Pool& pool);
  void validate_on_open(bool sb_repaired);
  bool probe_subheap_readable(unsigned idx) const noexcept;
  bool subheap_sane(unsigned idx) const noexcept;
  bool scavenge_subheap(unsigned idx, FsckReport* rep);
  void quarantine_subheap(unsigned idx);
  void seal_all() noexcept;

  // Lock-free readers (alloc/free fast paths, stats, visit_blocks) observe
  // a sub-heap's readiness via acquire, pairing with the release store
  // that publishes a finished format in ensure_subheap.
  bool subheap_ready(unsigned idx) const noexcept {
    return pmem::nv_load_acquire(sb_->subheap_state[idx]) == kSubheapReady;
  }

  // Flight-recorder plumbing.
  obs::FlightEvent* pm_flight_slots(unsigned idx) const noexcept;
  void init_flight();
  void flight(obs::FlightOp op, unsigned sub, std::uint16_t cls,
              std::uint64_t arg) noexcept {
    if (!rings_.empty()) rings_[sub]->record(op, cls, arg);
  }

  // Thread-cache plumbing (no-ops unless Options::thread_cache).
  CacheLogSlot* cache_slot(unsigned idx) const noexcept;
  ThreadCache& cache_for_thread() const noexcept;
  NvPtr cache_refill(ThreadCache& tc, unsigned cls);
  // nullopt: not handled, take the slow path (big block or full log).
  std::optional<FreeResult> cache_free(NvPtr ptr, unsigned idx);
  void cache_flush(ThreadCache& tc, unsigned cls);

  pmem::Pool pool_;
  Options opts_;
  SuperBlock* sb_ = nullptr;
  std::unique_ptr<mpk::ProtectionDomain> prot_;
  std::vector<std::unique_ptr<SubRuntime>> subs_;
  // Constructed eagerly (one per persistent cache-log slot) so lookup by
  // thread ordinal never races a lazy publication.
  std::vector<std::unique_ptr<ThreadCache>> caches_;
  mutable std::mutex admin_mu_;  // sub-heap creation + root updates

  // Observability state.  rings_ is empty when the flight recorder is off
  // (or obs is compiled out); flight_mem_ backs volatile rings.
  obs::Metrics metrics_;
  std::vector<std::unique_ptr<obs::FlightRing>> rings_;
  std::unique_ptr<obs::FlightEvent[]> flight_mem_;
  std::vector<obs::FlightEvent> postmortem_;
};

}  // namespace poseidon::core
