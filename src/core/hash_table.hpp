// Multi-level hash table of memblock records (paper §4.4, §5.2).
//
// Level i holds level0 * 2^i slots; a key probes a bounded linear window
// (kProbeWindow slots, wrapping within the level) at every active level.
// Lookups are O(levels * window) = O(1) in the heap size — the paper's
// constant-time claim — and deletion simply clears the slot because a probe
// never stops early at an empty slot.
//
// When every window is full the sub-heap first tries to *defragment* —
// merge free buddy pairs whose records occupy the probed windows — and only
// then activates ("extends to") the next level.  Levels whose record count
// drops to zero are deactivated top-down and their pages hole-punched back
// to the filesystem (paper §5.6).
//
// All mutations are undo-logged by the caller's UndoLogger; the sub-heap
// lock serializes access.
#pragma once

#include <cstdint>
#include <optional>

#include "common/hash.hpp"
#include "core/layout.hpp"
#include "core/undo_log.hpp"
#include "obs/metrics.hpp"

namespace poseidon::core {

class HashTable {
 public:
  // `metrics` (optional) receives the probe-length histogram samples.
  HashTable(SubheapMeta* meta, std::byte* heap_base,
            obs::Metrics* metrics = nullptr) noexcept
      : meta_(meta),
        storage_(reinterpret_cast<MemblockRec*>(heap_base + meta->hash_off)),
        metrics_(metrics) {}

  // Record for block at byte offset `block_off`, or nullptr.
  MemblockRec* find(std::uint64_t block_off) noexcept;

  // Claim a slot for `block_off` (which must not be present).  The slot is
  // undo-logged and its key set; the caller fills the remaining fields and
  // persists.  Returns nullptr when all windows are full and no level can
  // be activated — the caller should defragment and retry.
  MemblockRec* insert(std::uint64_t block_off, UndoLogger& undo);

  // Remove a record (undo-logged).
  void erase(MemblockRec* rec, UndoLogger& undo);

  // Activate the next level; false if levels_max reached.
  bool try_extend(UndoLogger& undo);

  // If the top active level holds no records, deactivate it and return the
  // byte range (relative to heap base) the caller should hole-punch.
  struct Range {
    std::uint64_t off;
    std::uint64_t len;
  };
  std::optional<Range> shrink_top_if_empty(UndoLogger& undo);

  // Visit every non-empty slot in the probe windows `block_off` hashes to,
  // across active levels (used by insert-pressure defragmentation).  The
  // callback may erase records.  Iteration order: level 0 upward.
  template <typename F>
  void visit_windows(std::uint64_t block_off, F&& f) {
    const std::uint64_t h = hash_of(block_off);
    for (unsigned lvl = 0; lvl < meta_->levels_active; ++lvl) {
      const std::uint64_t slots = level_slots(meta_->level0_slots, lvl);
      const std::uint64_t start = h % slots;
      for (unsigned w = 0; w < kProbeWindow && w < slots; ++w) {
        MemblockRec* rec = slot(lvl, (start + w) % slots);
        if (rec->key != 0) f(rec);
      }
    }
  }

  unsigned levels_active() const noexcept { return meta_->levels_active; }
  std::uint64_t record_count() const noexcept;

  static std::uint64_t hash_of(std::uint64_t block_off) noexcept {
    return mix64(block_off >> kMinBlockShift);
  }

 private:
  MemblockRec* slot(unsigned level, std::uint64_t idx) noexcept {
    return storage_ + level_offset(meta_->level0_slots, level) /
                          sizeof(MemblockRec) +
           idx;
  }
  // Which level a slot pointer belongs to (for count bookkeeping).
  unsigned level_of(const MemblockRec* rec) const noexcept;

  SubheapMeta* meta_;
  MemblockRec* storage_;
  obs::Metrics* metrics_;
};

}  // namespace poseidon::core
