// Typed persistent objects over the Poseidon heap — the thin C++ layer
// that applications actually program against (the paper's §2.2 points at
// PMDK's C++ bindings as the prevailing model; this is the Poseidon
// equivalent).
//
//   struct Node { pptr<Node> next; int value; };
//   auto n = make_persistent<Node>(heap);     // allocate + construct
//   n->value = 42;                             // typed access
//   heap.set_root(n.nvptr());                  // anchor
//   ...
//   auto again = pptr<Node>(heap.root());      // next run
//   destroy_persistent(heap, again);           // destruct + validated free
//
// Persistent types must be trivially copyable: after a crash, objects are
// re-interpreted from raw NVMM bytes, so vtables, owning containers and
// raw pointers (use pptr<T>!) are all unsafe — enforced at compile time.
#pragma once

#include <type_traits>
#include <utility>

#include "core/heap.hpp"
#include "core/nvmptr.hpp"
#include "core/registry.hpp"
#include "pmem/persist.hpp"

namespace poseidon::core {

template <typename T>
class pptr {
 public:
  constexpr pptr() noexcept = default;
  explicit constexpr pptr(NvPtr p) noexcept : ptr_(p) {}

  constexpr bool is_null() const noexcept { return ptr_.is_null(); }
  constexpr NvPtr nvptr() const noexcept { return ptr_; }

  // Fast path: resolve against a known heap (no registry lookup).
  T* get(const Heap& heap) const noexcept {
    // Checked here (not at class scope) so self-referential types like
    // `struct Node { pptr<Node> next; }` can declare members while Node
    // is still incomplete.
    static_assert(std::is_trivially_copyable_v<T>,
                  "persistent types must be trivially copyable (no "
                  "vtables, no owning containers; use pptr<T> instead of "
                  "T*)");
    return static_cast<T*>(heap.raw(ptr_));
  }

  // Convenience path: resolve through the process-wide registry.  Costs a
  // registry lookup per call; hot code should use get(heap).
  T* resolve() const noexcept {
    Heap* h = registry::by_id(ptr_.heap_id);
    return h != nullptr ? static_cast<T*>(h->raw(ptr_)) : nullptr;
  }

  T* operator->() const noexcept { return resolve(); }
  T& operator*() const noexcept { return *resolve(); }

  friend constexpr bool operator==(const pptr&, const pptr&) = default;

 private:
  NvPtr ptr_{};
};

// Allocate and construct a T.  Null pptr on exhaustion.
template <typename T, typename... Args>
pptr<T> make_persistent(Heap& heap, Args&&... args) {
  const NvPtr p = heap.alloc(sizeof(T));
  if (p.is_null()) return pptr<T>{};
  new (heap.raw(p)) T(std::forward<Args>(args)...);
  pmem::persist(heap.raw(p), sizeof(T));
  return pptr<T>(p);
}

// Transactional variant: the allocation lands in the calling thread's open
// transaction (paper §5.3) and is reclaimed by recovery unless committed.
template <typename T, typename... Args>
pptr<T> make_persistent_tx(Heap& heap, bool is_end, Args&&... args) {
  const NvPtr p = heap.tx_alloc(sizeof(T), is_end);
  if (p.is_null()) return pptr<T>{};
  new (heap.raw(p)) T(std::forward<Args>(args)...);
  pmem::persist(heap.raw(p), sizeof(T));
  return pptr<T>(p);
}

// Free a typed object through the validated path (double frees and forged
// pointers are rejected).  Persistent types are trivially copyable, hence
// trivially destructible — there is no destructor to run.
template <typename T>
FreeResult destroy_persistent(Heap& heap, pptr<T> p) {
  if (p.get(heap) == nullptr) return FreeResult::kInvalidPointer;
  return heap.free(p.nvptr());
}

}  // namespace poseidon::core
