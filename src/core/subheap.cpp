#include "core/subheap.hpp"

#include <algorithm>
#include <cassert>
#include <string>

#include "common/bitops.hpp"
#include "pmem/crashpoint.hpp"
#include "pmem/persist.hpp"
#include "pmem/pool.hpp"

namespace poseidon::core {

namespace {
constexpr std::uint64_t kNull = 0;  // offset+1 encoding: 0 means none
}

const char* to_string(FreeResult r) noexcept {
  switch (r) {
    case FreeResult::kOk: return "ok";
    case FreeResult::kInvalidPointer: return "invalid-pointer";
    case FreeResult::kInvalidFree: return "invalid-free";
    case FreeResult::kDoubleFree: return "double-free";
    case FreeResult::kQuarantined: return "quarantined";
  }
  return "?";
}

Subheap::Subheap(SubheapMeta* meta, std::byte* heap_base, pmem::Pool* pool,
                 bool undo_enabled, bool eager_coalesce,
                 obs::Metrics* metrics) noexcept
    : meta_(meta), heap_base_(heap_base), pool_(pool),
      undo_enabled_(undo_enabled), eager_coalesce_(eager_coalesce),
      metrics_(metrics), table_(meta, heap_base, metrics) {}

UndoLogger Subheap::make_undo() noexcept {
  return UndoLogger(meta_->undo, heap_base_, undo_enabled_, metrics_);
}

void Subheap::format(SubheapMeta* meta, std::byte* heap_base,
                     const Geometry& geo, unsigned index, unsigned cpu) {
  pmem::nv_memset(meta, 0, sizeof(SubheapMeta));
  pmem::nv_store(meta->magic, kSubheapMagic);
  pmem::nv_store(meta->index, index);
  pmem::nv_store(meta->preferred_cpu, cpu);
  pmem::nv_store(meta->user_off, geo.user_region_off + index * geo.user_size);
  pmem::nv_store(meta->user_size, geo.user_size);
  pmem::nv_store(meta->hash_off,
                 geo.hash_region_off + index * geo.hash_region_stride);
  pmem::nv_store(meta->levels_active, 1u);
  pmem::nv_store(meta->levels_max, geo.levels_max);
  pmem::nv_store(meta->level0_slots, geo.level0_slots);

  // The entire user region starts life as one free block of the top class.
  HashTable table(meta, heap_base);
  UndoLogger no_undo(meta->undo, heap_base, /*enabled=*/false);
  MemblockRec* rec = table.insert(0, no_undo);
  assert(rec != nullptr);
  const unsigned top = log2_floor(geo.user_size);
  pmem::nv_store(rec->size_class, top);
  pmem::nv_store(rec->status, static_cast<std::uint32_t>(kBlockFree));
  pmem::nv_store(rec->prev_adj, kNull);
  pmem::nv_store(rec->next_adj, kNull);
  pmem::nv_store(rec->prev_free, kNull);
  pmem::nv_store(rec->next_free, kNull);
  pmem::nv_store(meta->free_heads[top].head, rec->key);
  pmem::nv_store(meta->free_heads[top].tail, rec->key);
  pmem::nv_store(meta->free_blocks, std::uint64_t{1});
  pmem::persist(rec, sizeof(*rec));
  pmem::persist(meta, sizeof(SubheapMeta));
}

unsigned Subheap::find_class(unsigned cls) const noexcept {
  const unsigned top = log2_floor(meta_->user_size);
  for (unsigned c = cls; c <= top; ++c) {
    if (meta_->free_heads[c].head != kNull) return c;
  }
  return kMaxClasses;
}

MemblockRec* Subheap::pop_free_head(unsigned cls, UndoLogger& undo) {
  // The head element's prev_free is a don't-care (remove_free special-
  // cases the head), so popping never touches the successor record —
  // one less save + write-back on the hottest path.
  FreeListHead& h = meta_->free_heads[cls];
  assert(h.head != kNull);
  MemblockRec* rec = table_.find(h.head - 1);
  assert(rec != nullptr && rec->status == kBlockFree);
  const std::uint64_t next = rec->next_free;
  // Group the saves of this step under one fence, then mutate.
  undo.save_obj(h);
  undo.save_obj(*rec);
  undo.seal();
  pmem::nv_store(h.head, next);
  if (next == kNull) pmem::nv_store(h.tail, kNull);
  pmem::nv_store(rec->next_free, kNull);
  pmem::nv_store(rec->prev_free, kNull);
  // Mark allocated immediately so in-flight blocks are never merge
  // candidates for defragmentation running later in the same operation.
  pmem::nv_store(rec->status, static_cast<std::uint32_t>(kBlockAllocated));
  return rec;
}

void Subheap::push_free(MemblockRec* rec, unsigned cls, bool at_tail,
                        UndoLogger& undo) {
  FreeListHead& h = meta_->free_heads[cls];
  const std::uint64_t off1 = rec->key;
  MemblockRec* link = nullptr;  // list neighbour whose pointer changes
  if (h.head != kNull) {
    link = table_.find((at_tail ? h.tail : h.head) - 1);
    assert(link != nullptr);
  }
  undo.save_obj(h);
  undo.save_obj(*rec);
  if (link != nullptr) undo.save_obj(*link);
  undo.seal();
  if (link == nullptr) {
    pmem::nv_store(h.head, off1);
    pmem::nv_store(h.tail, off1);
    pmem::nv_store(rec->next_free, kNull);
    pmem::nv_store(rec->prev_free, kNull);
  } else if (at_tail) {
    pmem::nv_store(link->next_free, off1);
    pmem::nv_store(rec->prev_free, h.tail);
    pmem::nv_store(rec->next_free, kNull);
    pmem::nv_store(h.tail, off1);
  } else {
    pmem::nv_store(link->prev_free, off1);
    pmem::nv_store(rec->next_free, h.head);
    pmem::nv_store(rec->prev_free, kNull);
    pmem::nv_store(h.head, off1);
  }
}

void Subheap::remove_free(MemblockRec* rec, unsigned cls, UndoLogger& undo) {
  FreeListHead& h = meta_->free_heads[cls];
  // The head's prev_free is stale by convention (see pop_free_head):
  // detect headship via the list head pointer, never via prev_free.
  const bool is_head = h.head == rec->key;
  MemblockRec* p =
      !is_head && rec->prev_free != kNull ? table_.find(rec->prev_free - 1)
                                          : nullptr;
  MemblockRec* n =
      rec->next_free != kNull ? table_.find(rec->next_free - 1) : nullptr;
  assert(is_head || p != nullptr);
  undo.save_obj(h);
  undo.save_obj(*rec);
  if (p != nullptr) undo.save_obj(*p);
  if (n != nullptr) undo.save_obj(*n);
  undo.seal();
  if (is_head) {
    pmem::nv_store(h.head, rec->next_free);
    // The new head's prev_free is allowed to go stale.
  } else {
    pmem::nv_store(p->next_free, rec->next_free);
    if (n != nullptr) pmem::nv_store(n->prev_free, rec->prev_free);
  }
  if (rec->next_free == kNull) {
    pmem::nv_store(h.tail, is_head ? kNull : rec->prev_free);
  }
  pmem::nv_store(rec->next_free, kNull);
  pmem::nv_store(rec->prev_free, kNull);
}

void Subheap::bump_counters(std::int64_t live_delta, std::int64_t free_delta,
                            std::int64_t bytes_delta, UndoLogger& undo) {
  // Statistics counters are *not* undo-logged: a crash may leave them
  // stale, and recovery recomputes them from the memblock records
  // (recover_undo), so the hot path saves an entry.  They are still
  // flushed (clwb, no fence — the operation's own commit fence retires
  // the line): an unflushed store could otherwise sit dirty in cache
  // across arbitrarily many operations, turning "stale by one crash-cut
  // op" into "stale by an unbounded tail".
  (void)undo;
  pmem::nv_store(meta_->live_blocks,
                 meta_->live_blocks + static_cast<std::uint64_t>(live_delta));
  pmem::nv_store(meta_->free_blocks,
                 meta_->free_blocks + static_cast<std::uint64_t>(free_delta));
  pmem::nv_store(
      meta_->allocated_bytes,
      meta_->allocated_bytes + static_cast<std::uint64_t>(bytes_delta));
  pmem::flush(&meta_->live_blocks, 3 * sizeof(std::uint64_t));
}

MemblockRec* Subheap::insert_record(std::uint64_t off, UndoLogger& undo) {
  MemblockRec* rec = table_.insert(off, undo);
  if (rec != nullptr) return rec;

  // Insert pressure (paper §5.4 case 2): merge free buddy pairs whose
  // records occupy the probed windows.  Only a merge whose *high* buddy
  // record sits in the window is attempted — that is the record the merge
  // erases, freeing a probed slot.
  bool merged = false;
  table_.visit_windows(off, [&](MemblockRec* cand) {
    if (cand->key == kNull || cand->status != kBlockFree) return;
    const std::uint64_t coff = cand->key - 1;
    const std::uint64_t csize = std::uint64_t{1} << cand->size_class;
    const std::uint64_t buddy = coff ^ csize;
    if (buddy > coff) return;  // cand must be the high half
    MemblockRec* low = table_.find(buddy);
    if (low == nullptr || low->status != kBlockFree ||
        low->size_class != cand->size_class) {
      return;
    }
    merge_pair(low, cand, cand->size_class, undo);
    pmem::nv_store(meta_->stat_window_merges, meta_->stat_window_merges + 1);
    pmem::flush(&meta_->stat_window_merges, sizeof(meta_->stat_window_merges));
    merged = true;
  });
  if (merged) {
    rec = table_.insert(off, undo);
    if (rec != nullptr) return rec;
  }
  if (table_.try_extend(undo)) {
    pmem::nv_store(meta_->stat_extensions, meta_->stat_extensions + 1);
    pmem::flush(&meta_->stat_extensions, sizeof(meta_->stat_extensions));
    rec = table_.insert(off, undo);
  }
  return rec;
}

bool Subheap::split(MemblockRec* rec, std::uint64_t off, unsigned cls,
                    UndoLogger& undo) {
  const std::uint64_t half = std::uint64_t{1} << (cls - 1);
  const std::uint64_t boff = off + half;
  MemblockRec* brec = insert_record(boff, undo);
  if (brec == nullptr) return false;

  const std::uint64_t old_next = rec->next_adj;
  pmem::nv_store(rec->size_class, cls - 1);
  pmem::nv_store(rec->next_adj, boff + 1);

  pmem::nv_store(brec->size_class, cls - 1);
  pmem::nv_store(brec->status, static_cast<std::uint32_t>(kBlockFree));
  pmem::nv_store(brec->prev_adj, off + 1);
  pmem::nv_store(brec->next_adj, old_next);
  pmem::nv_store(brec->prev_free, kNull);
  pmem::nv_store(brec->next_free, kNull);

  if (old_next != kNull) {
    MemblockRec* on = table_.find(old_next - 1);
    assert(on != nullptr);
    undo.save_obj(*on);
    undo.seal();
    pmem::nv_store(on->prev_adj, boff + 1);
  }
  // Fresh halves go to the head: they are cache-hot split remainders.
  push_free(brec, cls - 1, /*at_tail=*/false, undo);
  pmem::nv_store(meta_->stat_splits, meta_->stat_splits + 1);
  pmem::flush(&meta_->stat_splits, sizeof(meta_->stat_splits));
  return true;
}

void Subheap::merge_pair(MemblockRec* low, MemblockRec* high, unsigned cls,
                         UndoLogger& undo) {
  assert(low->status == kBlockFree && high->status == kBlockFree);
  assert(low->size_class == cls && high->size_class == cls);
  assert((low->key - 1) + (std::uint64_t{1} << cls) == high->key - 1);
  remove_free(low, cls, undo);
  remove_free(high, cls, undo);
  const std::uint64_t new_next = high->next_adj;
  table_.erase(high, undo);
  pmem::nv_store(low->size_class, cls + 1);
  pmem::nv_store(low->next_adj, new_next);
  if (new_next != kNull) {
    MemblockRec* n = table_.find(new_next - 1);
    assert(n != nullptr);
    undo.save_obj(*n);
    undo.seal();
    pmem::nv_store(n->prev_adj, low->key);
  }
  push_free(low, cls + 1, /*at_tail=*/false, undo);
  pmem::nv_store(meta_->stat_merges, meta_->stat_merges + 1);
  pmem::flush(&meta_->stat_merges, sizeof(meta_->stat_merges));
  // Unlike the unlogged end-of-op counter bumps, a merge can run inside an
  // operation that later rolls back (hash-pressure merges during a failed
  // split), so its counter change must revert with the records.
  undo.save(&meta_->live_blocks, 3 * sizeof(std::uint64_t));
  undo.seal();
  bump_counters(0, -1, 0, undo);
}

bool Subheap::try_merge(MemblockRec* rec, unsigned cls) {
  const std::uint64_t off = rec->key - 1;
  const std::uint64_t buddy = off ^ (std::uint64_t{1} << cls);
  MemblockRec* brec = table_.find(buddy);
  if (brec == nullptr || brec->status != kBlockFree ||
      brec->size_class != cls) {
    return false;
  }
  UndoLogger undo = make_undo();
  MemblockRec* low = off < buddy ? rec : brec;
  MemblockRec* high = off < buddy ? brec : rec;
  merge_pair(low, high, cls, undo);
  undo.commit();
  POSEIDON_CRASH_POINT("defrag.after_merge");
  maybe_shrink_hash();
  return true;
}

bool Subheap::defrag_for(unsigned target) {
  // Paper §5.4 case 1: iterate free blocks in classes below the requested
  // one and merge buddy pairs until a large-enough block appears.
  bool restart = true;
  while (restart) {
    restart = false;
    for (unsigned c = kMinBlockShift; c < target; ++c) {
      std::uint64_t off1 = meta_->free_heads[c].head;
      while (off1 != kNull) {
        MemblockRec* rec = table_.find(off1 - 1);
        assert(rec != nullptr);
        const std::uint64_t next = rec->next_free;
        if (try_merge(rec, c)) {
          if (find_class(target) != kMaxClasses) return true;
          restart = true;  // list links changed; rescan
          break;
        }
        off1 = next;
      }
      if (restart) break;
    }
  }
  return find_class(target) != kMaxClasses;
}

void Subheap::maybe_shrink_hash() {
  for (;;) {
    UndoLogger undo = make_undo();
    const auto range = table_.shrink_top_if_empty(undo);
    if (!range) break;
    undo.commit();
    // Full persist: the shrink counter is bumped *after* undo.commit(),
    // so no later fence in this operation is guaranteed to retire it.
    pmem::nv_store(meta_->stat_shrinks, meta_->stat_shrinks + 1);
    pmem::persist(&meta_->stat_shrinks, sizeof(meta_->stat_shrinks));
    // Punching is outside the undo protocol on purpose: the deactivated
    // level held no records, so its content is all-zero either way.  A
    // skipped hole (filesystem can't punch) is likewise harmless: stale
    // bytes in a deactivated level have zeroed keys, and reactivation
    // rewrites every field it claims.
    if (pool_ != nullptr && !pool_->punch_hole(range->off, range->len)) {
      if (metrics_ != nullptr) metrics_->punch_hole_skips.inc();
    }
  }
}

std::optional<std::uint64_t> Subheap::alloc(std::uint64_t size,
                                            const TxHook& tx) {
  if (size == 0 || size > meta_->user_size) return std::nullopt;
  const unsigned cls =
      std::max(kMinBlockShift, log2_ceil(size));
  unsigned c = find_class(cls);
  if (c == kMaxClasses) {
    bool available = false;
    {
      obs::CycleTimer lat(metrics_ != nullptr ? &metrics_->defrag_cycles
                                              : nullptr);
      available = defrag_for(cls);
    }
    if (metrics_ != nullptr) metrics_->defrag_runs.inc();
    if (!available) return std::nullopt;
    c = find_class(cls);
    if (c == kMaxClasses) return std::nullopt;
  }

  UndoLogger undo = make_undo();
  POSEIDON_CRASH_POINT("alloc.begin");
  MemblockRec* rec = pop_free_head(c, undo);
  const std::uint64_t off = rec->key - 1;
  POSEIDON_CRASH_POINT("alloc.after_pop");

  unsigned splits = 0;
  while (c > cls) {
    if (!split(rec, off, c, undo)) {
      undo.rollback();
      return std::nullopt;
    }
    --c;
    ++splits;
    POSEIDON_CRASH_POINT("alloc.after_split");
  }

  pmem::nv_store(rec->status, static_cast<std::uint32_t>(kBlockAllocated));

  if (tx.enabled) {
    POSEIDON_CRASH_POINT("tx.before_micro_append");
    const NvPtr p = NvPtr::make(tx.heap_id, tx.subheap, off);
    if (!micro_append(meta_->micro, p, metrics_)) {
      undo.rollback();
      return std::nullopt;
    }
    POSEIDON_CRASH_POINT("tx.after_micro_append");
  }

  // Counters are not undo-logged (recovery recomputes them), so bump them
  // only once every abort path is behind us.
  bump_counters(+1, static_cast<std::int64_t>(splits) - 1,
                static_cast<std::int64_t>(std::uint64_t{1} << cls), undo);

  POSEIDON_CRASH_POINT("alloc.before_commit");
  undo.commit();
  POSEIDON_CRASH_POINT("alloc.after_commit");
  return off;
}

FreeResult Subheap::free_block(std::uint64_t offset) {
  if (offset >= meta_->user_size ||
      (offset & ((std::uint64_t{1} << kMinBlockShift) - 1)) != 0) {
    return FreeResult::kInvalidPointer;
  }
  MemblockRec* rec = table_.find(offset);
  if (rec == nullptr) return FreeResult::kInvalidFree;
  if (rec->status == kBlockFree) return FreeResult::kDoubleFree;

  const unsigned cls = rec->size_class;
  UndoLogger undo = make_undo();
  POSEIDON_CRASH_POINT("free.begin");
  // One save group for the whole op: the record, the class list head, the
  // current tail record (its next_free changes), and the counters; the
  // helpers' own saves dedupe against these.
  undo.save_obj(*rec);
  FreeListHead& h = meta_->free_heads[cls];
  undo.save_obj(h);
  if (h.tail != kNull) {
    if (MemblockRec* t = table_.find(h.tail - 1)) undo.save_obj(*t);
  }
  undo.seal();
  pmem::nv_store(rec->status, static_cast<std::uint32_t>(kBlockFree));
  // Tail insertion delays reuse of the just-freed block (paper §5.5).
  push_free(rec, cls, /*at_tail=*/true, undo);
  bump_counters(-1, +1,
                -static_cast<std::int64_t>(std::uint64_t{1} << cls), undo);
  POSEIDON_CRASH_POINT("free.before_commit");
  undo.commit();
  POSEIDON_CRASH_POINT("free.after_commit");
  if (eager_coalesce_) {
    // Ablation mode: classic buddy behaviour — merge up immediately.
    // Each try_merge is its own committed operation and leaves `rec`
    // superseded by the merged block, so re-find after every round.
    std::uint64_t cur = offset & ~((std::uint64_t{1} << cls) - 1);
    for (;;) {
      MemblockRec* r = table_.find(cur);
      if (r == nullptr || r->status != kBlockFree) break;
      const unsigned c = r->size_class;
      if (!try_merge(r, c)) break;
      cur &= ~((std::uint64_t{1} << (c + 1)) - 1);  // merged block start
    }
  }
  return FreeResult::kOk;
}

Subheap::ClassifyResult Subheap::classify(std::uint64_t offset) noexcept {
  if (offset >= meta_->user_size ||
      (offset & ((std::uint64_t{1} << kMinBlockShift) - 1)) != 0) {
    return {FreeResult::kInvalidPointer, 0};
  }
  MemblockRec* rec = table_.find(offset);
  if (rec == nullptr) return {FreeResult::kInvalidFree, 0};
  if (rec->status == kBlockFree) return {FreeResult::kDoubleFree, 0};
  return {FreeResult::kOk, rec->size_class};
}

Subheap::RefillResult Subheap::alloc_batch(
    unsigned cls, unsigned max_n, std::uint64_t* out,
    const std::function<void(std::uint64_t)>& on_block) {
  RefillResult r;
  const unsigned top = log2_floor(meta_->user_size);
  if (cls < kMinBlockShift || cls > top || max_n == 0) return r;

  UndoLogger undo = make_undo();
  std::int64_t free_delta = 0;
  while (r.n < max_n) {
    // A pop plus a full split chain from the top class saves a bounded
    // handful of records per level; stop the batch rather than risk the
    // undo-capacity abort.  Later pops usually split little or not at all.
    if (undo.used() + 256 > kSubheapUndoCap) break;
    const unsigned c = find_class(cls);
    if (c == kMaxClasses) break;
    POSEIDON_CRASH_POINT("cache.refill_pop");
    MemblockRec* rec = pop_free_head(c, undo);
    const std::uint64_t off = rec->key - 1;
    --free_delta;
    unsigned cur = c;
    bool ok = true;
    while (cur > cls) {
      if (!split(rec, off, cur, undo)) {
        ok = false;
        break;
      }
      --cur;
      ++free_delta;
    }
    if (!ok) {
      undo.rollback();
      return RefillResult{0, true};
    }
    out[r.n++] = off;
    on_block(off);
    POSEIDON_CRASH_POINT("cache.refill_logged");
  }
  if (r.n == 0) return r;
  bump_counters(static_cast<std::int64_t>(r.n), free_delta,
                static_cast<std::int64_t>(r.n) << cls, undo);
  POSEIDON_CRASH_POINT("cache.refill_before_commit");
  undo.commit();
  POSEIDON_CRASH_POINT("cache.refill_after_commit");
  return r;
}

unsigned Subheap::free_batch(const std::uint64_t* offs, unsigned n) {
  UndoLogger undo = make_undo();
  unsigned freed = 0;
  std::int64_t live_delta = 0, free_delta = 0, bytes_delta = 0;
  std::uint64_t freed_offs[64];
  auto commit_chunk = [&] {
    if (live_delta == 0 && undo.used() == 0) return;
    bump_counters(live_delta, free_delta, bytes_delta, undo);
    POSEIDON_CRASH_POINT("cache.flush_before_commit");
    undo.commit();
    POSEIDON_CRASH_POINT("cache.flush_after_commit");
    live_delta = free_delta = bytes_delta = 0;
  };
  for (unsigned i = 0; i < n; ++i) {
    const std::uint64_t offset = offs[i];
    if (offset >= meta_->user_size ||
        (offset & ((std::uint64_t{1} << kMinBlockShift) - 1)) != 0) {
      continue;
    }
    MemblockRec* rec = table_.find(offset);
    if (rec == nullptr || rec->status != kBlockAllocated) continue;
    if (undo.used() + 64 > kSubheapUndoCap) commit_chunk();
    const unsigned cls = rec->size_class;
    undo.save_obj(*rec);
    FreeListHead& h = meta_->free_heads[cls];
    undo.save_obj(h);
    if (h.tail != kNull) {
      if (MemblockRec* t = table_.find(h.tail - 1)) undo.save_obj(*t);
    }
    undo.seal();
    pmem::nv_store(rec->status, static_cast<std::uint32_t>(kBlockFree));
    push_free(rec, cls, /*at_tail=*/true, undo);
    --live_delta;
    ++free_delta;
    bytes_delta -= static_cast<std::int64_t>(std::uint64_t{1} << cls);
    if (freed < 64) freed_offs[freed] = offset;
    ++freed;
  }
  commit_chunk();
  if (eager_coalesce_) {
    // Ablation parity with free_block: merge each freed block upward as
    // independent committed operations.
    for (unsigned i = 0; i < std::min(freed, 64u); ++i) {
      std::uint64_t cur = freed_offs[i];
      for (;;) {
        MemblockRec* r = table_.find(cur);
        if (r == nullptr || r->status != kBlockFree) break;
        const unsigned c = r->size_class;
        if (!try_merge(r, c)) break;
        cur &= ~((std::uint64_t{1} << (c + 1)) - 1);
      }
    }
  }
  return freed;
}

void Subheap::recover_undo() {
  UndoLogger::replay(meta_->undo, heap_base_);
  // Rebuild the statistics counters from the (now consistent) records;
  // they are excluded from undo logging on the hot path.
  std::uint64_t live = 0, free_blocks = 0, bytes = 0;
  const auto* storage =
      reinterpret_cast<const MemblockRec*>(heap_base_ + meta_->hash_off);
  std::uint64_t base = 0;
  for (unsigned lvl = 0; lvl < meta_->levels_active; ++lvl) {
    const std::uint64_t slots = level_slots(meta_->level0_slots, lvl);
    for (std::uint64_t i = 0; i < slots; ++i) {
      const MemblockRec& rec = storage[base + i];
      if (rec.key == kNull) continue;
      if (rec.status == kBlockAllocated) {
        ++live;
        bytes += std::uint64_t{1} << rec.size_class;
      } else {
        ++free_blocks;
      }
    }
    base += slots;
  }
  pmem::nv_store(meta_->live_blocks, live);
  pmem::nv_store(meta_->free_blocks, free_blocks);
  pmem::nv_store(meta_->allocated_bytes, bytes);
  pmem::persist(&meta_->live_blocks, 3 * sizeof(std::uint64_t));
}

std::uint64_t Subheap::free_bytes() const noexcept {
  const unsigned top = log2_floor(meta_->user_size);
  std::uint64_t total = 0;
  auto* self = const_cast<Subheap*>(this);
  for (unsigned c = kMinBlockShift; c <= top; ++c) {
    std::uint64_t off1 = meta_->free_heads[c].head;
    while (off1 != kNull) {
      total += std::uint64_t{1} << c;
      const MemblockRec* rec = self->table_.find(off1 - 1);
      off1 = rec->next_free;
    }
  }
  return total;
}

std::uint64_t Subheap::largest_free_class() const noexcept {
  const unsigned top = log2_floor(meta_->user_size);
  for (unsigned c = top + 1; c-- > kMinBlockShift;) {
    if (meta_->free_heads[c].head != kNull) return c;
  }
  return 0;
}

bool Subheap::check_invariants(std::string* why) const {
  auto fail = [&](const std::string& msg) {
    if (why != nullptr) *why = msg;
    return false;
  };
  auto* self = const_cast<Subheap*>(this);
  const unsigned top = log2_floor(meta_->user_size);

  // 1. Adjacency chain starting at offset 0 must tile the user region.
  const MemblockRec* rec = self->table_.find(0);
  if (rec == nullptr) return fail("no record at offset 0");
  std::uint64_t covered = 0;
  std::uint64_t blocks = 0, free_blocks = 0, live_blocks = 0;
  std::uint64_t prev_key = 0;
  while (rec != nullptr) {
    const std::uint64_t off = rec->key - 1;
    const std::uint64_t size = std::uint64_t{1} << rec->size_class;
    if (off != covered) return fail("adjacency gap at " + std::to_string(off));
    if (off % size != 0) return fail("misaligned block at " + std::to_string(off));
    if (rec->prev_adj != prev_key) return fail("broken prev_adj at " + std::to_string(off));
    if (rec->status != kBlockFree && rec->status != kBlockAllocated) {
      return fail("bad status at " + std::to_string(off));
    }
    covered += size;
    ++blocks;
    if (rec->status == kBlockFree) ++free_blocks; else ++live_blocks;
    prev_key = rec->key;
    rec = rec->next_adj == kNull ? nullptr : self->table_.find(rec->next_adj - 1);
    if (covered > meta_->user_size) return fail("adjacency overruns region");
  }
  if (covered != meta_->user_size) return fail("region not fully tiled");

  // 2. Free lists: doubly linked, statuses free, classes match, and their
  //    union equals the set of free blocks.
  std::uint64_t listed_free = 0;
  for (unsigned c = kMinBlockShift; c <= top; ++c) {
    const FreeListHead& h = meta_->free_heads[c];
    std::uint64_t off1 = h.head, prev = 0;
    while (off1 != kNull) {
      const MemblockRec* r = self->table_.find(off1 - 1);
      if (r == nullptr) return fail("free list dangles in class " + std::to_string(c));
      if (r->status != kBlockFree) return fail("non-free block in free list");
      if (r->size_class != c) return fail("class mismatch in free list");
      // prev_free of the head element is a don't-care (pop convention).
      if (off1 != h.head && r->prev_free != prev) {
        return fail("broken prev_free link");
      }
      ++listed_free;
      prev = off1;
      off1 = r->next_free;
      if (listed_free > blocks) return fail("free list cycle");
    }
    if (h.tail != prev) return fail("tail mismatch in class " + std::to_string(c));
  }
  if (listed_free != free_blocks) return fail("free-list/record count mismatch");

  // 3. Persistent counters agree.
  if (meta_->free_blocks != free_blocks) return fail("free_blocks counter drift");
  if (meta_->live_blocks != live_blocks) return fail("live_blocks counter drift");

  // 4. Hash level occupancy counters agree with a full scan.
  std::uint64_t scanned = 0;
  auto* storage = reinterpret_cast<const MemblockRec*>(heap_base_ + meta_->hash_off);
  std::uint64_t base = 0;
  for (unsigned lvl = 0; lvl < meta_->levels_active; ++lvl) {
    const std::uint64_t slots = level_slots(meta_->level0_slots, lvl);
    std::uint64_t n = 0;
    for (std::uint64_t i = 0; i < slots; ++i) {
      if (storage[base + i].key != 0) ++n;
    }
    if (n != meta_->level_count[lvl]) {
      return fail("level_count drift at level " + std::to_string(lvl));
    }
    scanned += n;
    base += slots;
  }
  if (scanned != blocks) return fail("hash record count mismatch");
  return true;
}

}  // namespace poseidon::core
