#include "core/thread_cache.hpp"

#include <algorithm>
#include <cassert>

#include "pmem/crashpoint.hpp"
#include "pmem/persist.hpp"

namespace poseidon::core {

ThreadCache::ThreadCache(CacheLogSlot* slot) : slot_(slot) {
  free_li_.reserve(kCacheLogCap);
  // Reversed so low indices are handed out first (denser log pages).
  for (std::uint32_t i = kCacheLogCap; i-- > 0;) free_li_.push_back(i);
}

// Not noexcept: the embedded crash point may throw under test injection.
void ThreadCache::log_write(std::uint32_t li, NvPtr ptr) {
  NvPtr& e = slot_->entries[li];
  // Entries are 16-byte aligned, so both words share one cache line and
  // x86 TSO writes them back in order: any persisted image with heap_id
  // set also has the packed word — a torn entry is null, never wrong.
  pmem::nv_store(e.packed, ptr.packed);
  pmem::nv_store(e.heap_id, ptr.heap_id);
  POSEIDON_CRASH_POINT("cache.log_append");
  pmem::persist(&e, sizeof(NvPtr));
}

void ThreadCache::log_erase(std::uint32_t li) noexcept {
  NvPtr& e = slot_->entries[li];
  pmem::nv_store(e.heap_id, std::uint64_t{0});
  pmem::persist(&e.heap_id, sizeof(std::uint64_t));
}

NvPtr ThreadCache::pop_locked(unsigned cls) noexcept {
  auto& mag = mags_[cls];
  if (mag.empty()) return NvPtr::null();
  const Item it = mag.back();
  mag.pop_back();
  in_cache_.erase(it.ptr.packed);
  // Erase-before-return: once the application owns the pointer, recovery
  // must not be able to free it from under a crash-lost cache.
  log_erase(it.li);
  free_li_.push_back(it.li);
  return it.ptr;
}

ThreadCache::PushResult ThreadCache::push_locked(NvPtr ptr, unsigned cls) {
  if (in_cache_.count(ptr.packed) != 0) return PushResult::kDoubleFree;
  if (free_li_.empty()) return PushResult::kFull;
  const std::uint32_t li = free_li_.back();
  free_li_.pop_back();
  log_write(li, ptr);
  mags_[cls].push_back(Item{ptr, li});
  in_cache_.insert(ptr.packed);
  POSEIDON_CRASH_POINT("cache.free_cached");
  return PushResult::kCached;
}

bool ThreadCache::over_watermark_locked(unsigned cls) const noexcept {
  return mags_[cls].size() >= kMagazineCap;
}

unsigned ThreadCache::room_locked(unsigned cls) const noexcept {
  const std::size_t mag = mags_[cls].size();
  const std::size_t mag_room = mag >= kMagazineCap ? 0 : kMagazineCap - mag;
  return static_cast<unsigned>(std::min(mag_room, free_li_.size()));
}

void ThreadCache::refill_append_locked(NvPtr ptr) {
  assert(!free_li_.empty());
  const std::uint32_t li = free_li_.back();
  free_li_.pop_back();
  log_write(li, ptr);
  staged_.push_back(Item{ptr, li});
}

void ThreadCache::refill_publish_locked(unsigned cls) {
  for (const Item& it : staged_) {
    mags_[cls].push_back(it);
    in_cache_.insert(it.ptr.packed);
  }
  staged_.clear();
}

void ThreadCache::refill_abort_locked() noexcept {
  // Erases are idempotent under recovery (a replayed entry goes through the
  // validated free path and bounces as a double free), so they need no
  // ordering among themselves: batch the write-backs, fence once.
  pmem::FlushBatch batch;
  for (const Item& it : staged_) {
    NvPtr& e = slot_->entries[it.li];
    pmem::nv_store(e.heap_id, std::uint64_t{0});
    batch.add(&e.heap_id, sizeof(std::uint64_t));
    free_li_.push_back(it.li);
  }
  batch.commit();
  staged_.clear();
}

unsigned ThreadCache::flush_take_locked(unsigned cls, unsigned max_n,
                                        NvPtr* out,
                                        std::uint32_t* out_li) noexcept {
  auto& mag = mags_[cls];
  const unsigned n =
      static_cast<unsigned>(std::min<std::size_t>(max_n, mag.size()));
  // Oldest first: the freshest blocks stay poppable (they are cache-hot).
  for (unsigned i = 0; i < n; ++i) {
    out[i] = mag[i].ptr;
    out_li[i] = mag[i].li;
    in_cache_.erase(mag[i].ptr.packed);
  }
  mag.erase(mag.begin(), mag.begin() + n);
  return n;
}

void ThreadCache::flush_erase_locked(const std::uint32_t* li,
                                     unsigned n) noexcept {
  // Same idempotency argument as refill_abort_locked: one fence for the
  // whole take, and consecutive log indices coalesce into shared lines.
  pmem::FlushBatch batch;
  for (unsigned i = 0; i < n; ++i) {
    NvPtr& e = slot_->entries[li[i]];
    pmem::nv_store(e.heap_id, std::uint64_t{0});
    batch.add(&e.heap_id, sizeof(std::uint64_t));
    free_li_.push_back(li[i]);
  }
  batch.commit();
}

ThreadCache::Stats ThreadCache::stats_locked() const noexcept {
  Stats s;
  for (unsigned c = kMinClass; c <= kMaxClass; ++c) {
    s.cached_blocks += mags_[c].size();
    s.cached_bytes += mags_[c].size() << c;
  }
  return s;
}

}  // namespace poseidon::core
