// Per-CPU sub-heap (paper §4.1, §5.2–§5.5).
//
// A sub-heap owns a power-of-two user region managed with buddy discipline:
// free blocks are power-of-two sized and offset-aligned, tracked in one
// doubly-linked free list per size class (the "buddy list") plus one
// memblock record per block in the multi-level hash table.  Allocation
// pops the smallest sufficient class and splits down; free validates the
// address against the hash table (rejecting invalid and double frees) and
// pushes to the *tail* of its class to delay reuse; defragmentation merges
// free buddy pairs lazily when a class runs dry or the hash table hits
// insert pressure.
//
// Every method assumes the caller holds the sub-heap lock and has opened
// the MPK write window.  All metadata mutations are undo-logged.
#pragma once

#include <cstdint>
#include <functional>
#include <optional>
#include <string>

#include "core/hash_table.hpp"
#include "core/layout.hpp"
#include "core/micro_log.hpp"
#include "core/undo_log.hpp"
#include "obs/metrics.hpp"

namespace poseidon::pmem {
class Pool;
}

namespace poseidon::core {

enum class FreeResult {
  kOk,
  kInvalidPointer,  // misaligned / out of range / wrong heap
  kInvalidFree,     // no such block (paper §5.5)
  kDoubleFree,      // block already free
  kQuarantined,     // owning sub-heap is quarantined (fault domain)
};

const char* to_string(FreeResult r) noexcept;

// Identifies the enclosing transaction for micro logging; disabled for
// singleton allocations.
struct TxHook {
  bool enabled = false;
  std::uint64_t heap_id = 0;
  std::uint16_t subheap = 0;
};

class Subheap {
 public:
  // View over an existing (formatted) sub-heap.  `pool` is used for hole
  // punching and may be nullptr in tests; `metrics` (the owning heap's
  // registry) likewise.
  Subheap(SubheapMeta* meta, std::byte* heap_base, pmem::Pool* pool,
          bool undo_enabled, bool eager_coalesce = false,
          obs::Metrics* metrics = nullptr) noexcept;

  // One-time formatting of a fresh sub-heap: writes the whole metadata
  // block and the initial single free block covering the user region.
  static void format(SubheapMeta* meta, std::byte* heap_base,
                     const Geometry& geo, unsigned index, unsigned cpu);

  // Allocate 2^ceil(log2(size)) >= 32 bytes; returns the block offset
  // within the user region, or nullopt when even defragmentation cannot
  // satisfy the request.
  std::optional<std::uint64_t> alloc(std::uint64_t size,
                                     const TxHook& tx = {});

  FreeResult free_block(std::uint64_t offset);

  // Read-only validation of `offset` against the memblock table: the checks
  // of free_block without any mutation.  result == kOk means a live block
  // of `size_class`.  Used by the thread-cache free fast path, which needs
  // the class (and the paper's invalid/double-free detection) without
  // paying for an undo log or a write window.
  struct ClassifyResult {
    FreeResult result;
    std::uint32_t size_class;
  };
  ClassifyResult classify(std::uint64_t offset) noexcept;

  // Batched refill for the thread cache: pop up to `max_n` blocks of
  // exactly class `cls` under ONE undo commit, writing their offsets to
  // `out`.  `on_block` runs for each popped offset while the batch is
  // still undo-protected — the thread cache persists its log entry there,
  // so a crash either rolls every pop back or finds the blocks logged.
  // Stops early on class exhaustion or undo-capacity headroom; never
  // defragments (the miss path's slow alloc handles that).  If the hash
  // table rejects a split mid-batch the WHOLE batch rolls back and
  // `rolled_back` is set: the caller must discard whatever `on_block`
  // recorded.
  struct RefillResult {
    unsigned n = 0;
    bool rolled_back = false;
  };
  RefillResult alloc_batch(unsigned cls, unsigned max_n, std::uint64_t* out,
                           const std::function<void(std::uint64_t)>& on_block);

  // Batched flush for the thread cache: validated-free every offset,
  // sharing one undo log and committing once (chunked only when undo
  // capacity forces it).  Invalid entries are skipped; returns the number
  // actually freed.
  unsigned free_batch(const std::uint64_t* offs, unsigned n);

  // Replay the undo log (crash recovery).  Micro-log replay is driven by
  // the heap because it runs the full validated free path.
  void recover_undo();

  SubheapMeta& meta() noexcept { return *meta_; }
  MicroLog& micro() noexcept { return meta_->micro; }
  HashTable& table() noexcept { return table_; }

  std::uint64_t free_bytes() const noexcept;
  std::uint64_t largest_free_class() const noexcept;  // 0 = none

  // Invariant checker for tests: walks free lists, adjacency chains and
  // hash records; returns false (with a reason) on any inconsistency.
  bool check_invariants(std::string* why = nullptr) const;

  // Visit every memblock record (allocated and free).  Diagnostic use:
  // heap_inspect histograms, leak audits in tests.  The callback must not
  // mutate the heap.
  template <typename F>
  void visit_blocks(F&& f) const {
    const auto* storage =
        reinterpret_cast<const MemblockRec*>(heap_base_ + meta_->hash_off);
    std::uint64_t base = 0;
    for (unsigned lvl = 0; lvl < meta_->levels_active; ++lvl) {
      const std::uint64_t slots = level_slots(meta_->level0_slots, lvl);
      for (std::uint64_t i = 0; i < slots; ++i) {
        const MemblockRec& rec = storage[base + i];
        if (rec.key != 0) f(rec.key - 1, rec.size_class, rec.status);
      }
      base += slots;
    }
  }

  // Visit every live record in full.  The allocation service's reconcile
  // sweep needs the link words (owner tags live in next_free of allocated
  // records); same locking rules as visit_blocks.
  template <typename F>
  void visit_records(F&& f) const {
    const auto* storage =
        reinterpret_cast<const MemblockRec*>(heap_base_ + meta_->hash_off);
    std::uint64_t base = 0;
    for (unsigned lvl = 0; lvl < meta_->levels_active; ++lvl) {
      const std::uint64_t slots = level_slots(meta_->level0_slots, lvl);
      for (std::uint64_t i = 0; i < slots; ++i) {
        const MemblockRec& rec = storage[base + i];
        if (rec.key != 0) f(rec);
      }
      base += slots;
    }
  }

 private:
  UndoLogger make_undo() noexcept;

  // Free-list plumbing (all undo-logged).
  MemblockRec* pop_free_head(unsigned cls, UndoLogger& undo);
  void push_free(MemblockRec* rec, unsigned cls, bool at_tail,
                 UndoLogger& undo);
  void remove_free(MemblockRec* rec, unsigned cls, UndoLogger& undo);

  // Smallest class >= cls with a free block; kMaxClasses when none.
  unsigned find_class(unsigned cls) const noexcept;

  // Split `rec` (class cls, offset off) in half; the upper buddy becomes a
  // new free block.  False when the hash table cannot take the new record.
  bool split(MemblockRec* rec, std::uint64_t off, unsigned cls,
             UndoLogger& undo);

  // Merge the free buddy pair (low, high) of class cls into one free block
  // of class cls+1.  Does not commit; both records must be free.
  void merge_pair(MemblockRec* low, MemblockRec* high, unsigned cls,
                  UndoLogger& undo);

  // Insert a record, applying the paper's insert-pressure strategy:
  // probe -> defragment records in the probed windows -> extend the table.
  MemblockRec* insert_record(std::uint64_t off, UndoLogger& undo);

  // Class-dry defragmentation (paper §5.4 case 1): merge buddy pairs in
  // classes below `target` until a block of class >= target exists or no
  // progress.  Runs as its own sequence of committed operations; must be
  // called with an empty undo log.  Returns true if a block is available.
  bool defrag_for(unsigned target);

  // Attempt one buddy merge of `rec` (free, class cls) as an independent
  // committed operation.  Returns true on success.
  bool try_merge(MemblockRec* rec, unsigned cls);

  // After a committed erase, deactivate + hole-punch empty top levels.
  void maybe_shrink_hash();

  void bump_counters(std::int64_t live_delta, std::int64_t free_delta,
                     std::int64_t bytes_delta, UndoLogger& undo);

  SubheapMeta* meta_;
  std::byte* heap_base_;
  pmem::Pool* pool_;
  bool undo_enabled_;
  bool eager_coalesce_ = false;
  obs::Metrics* metrics_ = nullptr;
  HashTable table_;
};

}  // namespace poseidon::core
