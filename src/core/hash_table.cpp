#include "core/hash_table.hpp"

#include <cassert>

#include "pmem/persist.hpp"

namespace poseidon::core {

MemblockRec* HashTable::find(std::uint64_t block_off) noexcept {
  const std::uint64_t key = block_off + 1;
  const std::uint64_t h = hash_of(block_off);
  for (unsigned lvl = 0; lvl < meta_->levels_active; ++lvl) {
    const std::uint64_t slots = level_slots(meta_->level0_slots, lvl);
    const std::uint64_t start = h % slots;
    for (unsigned w = 0; w < kProbeWindow && w < slots; ++w) {
      MemblockRec* rec = slot(lvl, (start + w) % slots);
      if (rec->key == key) return rec;
    }
  }
  return nullptr;
}

MemblockRec* HashTable::insert(std::uint64_t block_off, UndoLogger& undo) {
  assert(find(block_off) == nullptr && "duplicate memblock record");
  const std::uint64_t h = hash_of(block_off);
  for (unsigned lvl = 0; lvl < meta_->levels_active; ++lvl) {
    const std::uint64_t slots = level_slots(meta_->level0_slots, lvl);
    const std::uint64_t start = h % slots;
    for (unsigned w = 0; w < kProbeWindow && w < slots; ++w) {
      MemblockRec* rec = slot(lvl, (start + w) % slots);
      if (rec->key != 0) continue;
      // Probe distance = slots inspected before this claim, across levels
      // (the paper's O(1) bound: <= levels_active * kProbeWindow).  Sampled:
      // the histogram records a shape, and inserts are per-block-split, so
      // an unconditional bucket RMW here shows up in the overhead budget.
      if (metrics_ != nullptr && obs::latency_sample_tick()) {
        metrics_->probe_len.add(lvl * kProbeWindow + w);
      }
      undo.save_obj(*rec);
      undo.save_obj(meta_->level_count[lvl]);
      undo.seal();
      pmem::nv_store(rec->key, block_off + 1);
      pmem::nv_store(meta_->level_count[lvl], meta_->level_count[lvl] + 1);
      // Write-back happens in one batch at undo commit.
      return rec;  // caller fills the remaining fields
    }
  }
  return nullptr;
}

void HashTable::erase(MemblockRec* rec, UndoLogger& undo) {
  assert(rec->key != 0);
  const unsigned lvl = level_of(rec);
  undo.save_obj(*rec);
  undo.save_obj(meta_->level_count[lvl]);
  undo.seal();
  pmem::nv_store(rec->key, std::uint64_t{0});
  pmem::nv_store(meta_->level_count[lvl], meta_->level_count[lvl] - 1);
}

bool HashTable::try_extend(UndoLogger& undo) {
  if (meta_->levels_active >= meta_->levels_max) return false;
  undo.save_obj(meta_->levels_active);
  undo.seal();
  pmem::nv_store(meta_->levels_active, meta_->levels_active + 1);
  return true;
}

std::optional<HashTable::Range> HashTable::shrink_top_if_empty(
    UndoLogger& undo) {
  const unsigned top = meta_->levels_active;
  if (top <= 1) return std::nullopt;
  if (meta_->level_count[top - 1] != 0) return std::nullopt;
  undo.save_obj(meta_->levels_active);
  undo.seal();
  pmem::nv_store(meta_->levels_active, top - 1);
  return Range{
      meta_->hash_off + level_offset(meta_->level0_slots, top - 1),
      level_slots(meta_->level0_slots, top - 1) * sizeof(MemblockRec)};
}

std::uint64_t HashTable::record_count() const noexcept {
  std::uint64_t n = 0;
  for (unsigned lvl = 0; lvl < meta_->levels_active; ++lvl) {
    n += meta_->level_count[lvl];
  }
  return n;
}

unsigned HashTable::level_of(const MemblockRec* rec) const noexcept {
  const auto idx = static_cast<std::uint64_t>(rec - storage_);
  std::uint64_t begin = 0;
  for (unsigned lvl = 0; lvl < meta_->levels_max; ++lvl) {
    const std::uint64_t end = begin + level_slots(meta_->level0_slots, lvl);
    if (idx < end) return lvl;
    begin = end;
  }
  assert(false && "record outside hash storage");
  return 0;
}

}  // namespace poseidon::core
