// Snapshot manifest + report types (DESIGN.md "Snapshots & incremental
// backup").  core/snapshot.cpp writes and consumes these; the heap_inspect
// tool parses manifests for --snapshots and --diff.
//
// The manifest is a small line-oriented text file (dst_dir/MANIFEST),
// written tmp+rename after every shard image is durable.  Its per-shard
// (pm_epoch, pm_gen) pair is the dirty-tracker baseline an incremental
// snapshot must prove against the live heap: the tracker's bitmap has been
// accumulating exactly since this manifest iff both still match.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace poseidon::core {

// Aggregate result of Heap::snapshot / Heap::snapshot_incremental.
struct SnapshotReport {
  bool incremental = false;
  unsigned shards = 0;
  std::uint64_t pages_copied = 0;
  std::uint64_t bytes_copied = 0;
  std::string manifest_path;
};

struct ManifestShard {
  std::uint32_t index = 0;
  std::string file;             // basename within the snapshot directory
  std::uint64_t size = 0;       // shard file size in bytes
  std::uint64_t pm_epoch = 0;   // dirty-tracker identity at capture
  std::uint64_t pm_gen = 0;     // dirty-tracker generation at capture
  std::uint64_t pages_copied = 0;
  std::uint64_t head_csum = 0;  // FNV over the image's first page
};

struct SnapshotManifest {
  bool incremental = false;
  std::uint64_t set_id = 0;
  std::uint64_t epoch = 0;
  std::uint32_t shard_count = 0;  // set size; quarantined members are absent
  std::vector<ManifestShard> shards;
};

// Parse a manifest file.  Throws Error(kIo) when unreadable and
// Error(kInvalidArgument) when malformed.
SnapshotManifest read_snapshot_manifest(const std::string& path);

}  // namespace poseidon::core
