// Crash-safe per-thread allocation cache (front end of the allocator).
//
// Each thread owns small per-size-class magazines of pre-popped blocks so
// the common alloc/free pair touches no sub-heap spinlock, no MPK wrpkru
// switch and no undo log — the per-operation overheads that dominate
// multi-threaded persistent-allocator throughput.  Crash safety comes from
// two facts:
//
//   1. A cached block stays kBlockAllocated in the owning sub-heap's
//      persistent metadata, so no invariant of the buddy system is relaxed.
//   2. Every cached block is recorded in this thread's persistent
//      CacheLogSlot (same shape and replay discipline as the micro log).
//      Heap::recover() hands each logged entry to the validated free path —
//      idempotent by construction — so a cache lost at a crash drains back
//      to the free lists instead of leaking.
//
// Log-entry ordering on the hot paths:
//   * refill: the entry is persisted *before* the sub-heap's batched undo
//     commit.  Crash before the commit rolls the pops back and recovery's
//     drain then rejects the stale entries as double frees; crash after the
//     commit finds the blocks both allocated and logged — drained, no leak.
//   * alloc hit: the entry is erased and persisted *before* the pointer is
//     returned, so recovery can never free a block the application owns.
//   * free: the entry is persisted before the magazine accepts the block;
//     the block was already allocated, so a crash at any point either
//     replays the free (entry durable) or leaves the block allocated-and-
//     leaked-by-the-app (entry lost) — never a dangling free.
//
// The class is a passive container: Heap orchestrates sub-heap locking,
// write windows and the batched refill/flush; every method below requires
// mu() to be held.  A slot may be shared by several threads (ordinals are
// folded onto kCacheSlots), which the spinlock makes safe.
#pragma once

#include <cstdint>
#include <unordered_set>
#include <vector>

#include "common/spinlock.hpp"
#include "core/layout.hpp"
#include "core/nvmptr.hpp"

namespace poseidon::core {

class ThreadCache {
 public:
  static constexpr unsigned kMinClass = kMinBlockShift;  // 32 B
  static constexpr unsigned kMaxClass = 13;              // 8 KiB
  static constexpr unsigned kMagazineCap = 32;  // per-class flush watermark
  static constexpr unsigned kRefillBatch = 16;  // blocks pulled per miss

  // Only small classes are cached: large blocks are rare and holding them
  // in magazines would fragment the heap for little hit-rate gain.
  static constexpr bool cacheable(unsigned cls) noexcept {
    return cls >= kMinClass && cls <= kMaxClass;
  }

  // `slot` must be drained (all entries null), which recovery guarantees.
  explicit ThreadCache(CacheLogSlot* slot);

  ThreadCache(const ThreadCache&) = delete;
  ThreadCache& operator=(const ThreadCache&) = delete;

  Spinlock& mu() noexcept { return mu_; }

  // Occupancy only: hit/miss/flush counting lives in the heap's metrics
  // registry (obs/metrics.hpp), not here.
  struct Stats {
    std::uint64_t cached_blocks = 0;
    std::uint64_t cached_bytes = 0;
  };

  // ---- alloc fast path -----------------------------------------------------

  // Pop a cached block of class `cls`; null on miss.  The persistent log
  // entry is erased (and the erase persisted) before the block is returned.
  NvPtr pop_locked(unsigned cls) noexcept;

  // ---- free fast path ------------------------------------------------------

  enum class PushResult {
    kCached,      // parked in the magazine, log entry durable
    kDoubleFree,  // already cached by this slot
    kFull,        // no log capacity; caller takes the slow free path
  };
  PushResult push_locked(NvPtr ptr, unsigned cls);

  bool over_watermark_locked(unsigned cls) const noexcept;

  // ---- batched refill (Heap::cache_refill) ---------------------------------

  // Blocks the magazine/log can still take for `cls` (bounds the batch).
  unsigned room_locked(unsigned cls) const noexcept;

  // Record a block the sub-heap just popped.  Called from inside the
  // batched-refill critical section *before* its undo commit; the entry is
  // persisted immediately.  Caller guarantees room via room_locked().
  void refill_append_locked(NvPtr ptr);

  // Publish the staged blocks into the magazine (batch committed).
  void refill_publish_locked(unsigned cls);

  // Discard the staged blocks and erase their log entries (batch rolled
  // back, or nothing was popped).
  void refill_abort_locked() noexcept;

  // ---- flush (Heap::cache_flush) -------------------------------------------

  // Remove up to `max_n` of the oldest blocks of `cls` from the magazine
  // into out/out_li.  Their log entries stay live until flush_erase_locked —
  // a crash mid-flush replays them through the (idempotent) free path.
  unsigned flush_take_locked(unsigned cls, unsigned max_n, NvPtr* out,
                             std::uint32_t* out_li) noexcept;

  // The taken blocks are durably free: erase their log entries.
  void flush_erase_locked(const std::uint32_t* li, unsigned n) noexcept;

  Stats stats_locked() const noexcept;

 private:
  struct Item {
    NvPtr ptr;
    std::uint32_t li;  // index into slot_->entries
  };

  void log_write(std::uint32_t li, NvPtr ptr);
  void log_erase(std::uint32_t li) noexcept;

  CacheLogSlot* slot_;
  Spinlock mu_;
  std::vector<Item> mags_[kMaxClass + 1];  // LIFO; indices < kMinClass unused
  std::vector<std::uint32_t> free_li_;     // unused log entry indices
  std::vector<Item> staged_;               // refill entries awaiting publish
  std::unordered_set<std::uint64_t> in_cache_;  // NvPtr.packed of cached blocks
};

}  // namespace poseidon::core
