#include "core/registry.hpp"

#include <algorithm>
#include <atomic>
#include <memory>
#include <mutex>
#include <stdexcept>
#include <vector>

#include "core/heap.hpp"

namespace poseidon::core::registry {

namespace {

struct IdEntry {
  std::uint64_t id;
  Heap* heap;
};

struct Interval {
  const std::byte* lo;
  const std::byte* hi;  // exclusive
  Heap* heap;
};

// Immutable once published; readers hold it alive via shared_ptr, so a
// heap closed mid-lookup cannot pull the tables out from under them (the
// lookup may return a Heap* the caller is about to lose anyway — that race
// is the caller's, exactly as with the old mutex).
struct Snapshot {
  std::vector<IdEntry> ids;        // sorted by id
  std::vector<Interval> intervals; // sorted by lo, disjoint
};

std::mutex g_mu;                  // writers only
std::vector<Heap*> g_heaps;       // writer-side source of truth
std::atomic<std::shared_ptr<const Snapshot>> g_snap;

std::shared_ptr<const Snapshot> build_locked() {
  auto snap = std::make_shared<Snapshot>();
  for (Heap* h : g_heaps) {
    for (unsigned i = 0; i < h->shard_count(); ++i) {
      const std::uint64_t id = h->shard_heap_id(i);
      if (id == 0) continue;  // quarantined member slot
      snap->ids.push_back(IdEntry{id, h});
      const auto [lo, len] = h->shard_user_range(i);
      if (lo != nullptr && len != 0) {
        const auto* b = static_cast<const std::byte*>(lo);
        snap->intervals.push_back(Interval{b, b + len, h});
      }
    }
  }
  std::sort(snap->ids.begin(), snap->ids.end(),
            [](const IdEntry& a, const IdEntry& b) { return a.id < b.id; });
  std::sort(snap->intervals.begin(), snap->intervals.end(),
            [](const Interval& a, const Interval& b) { return a.lo < b.lo; });
  return snap;
}

}  // namespace

void add(Heap* heap) {
  std::lock_guard<std::mutex> lk(g_mu);
  for (const Heap* h : g_heaps) {
    for (unsigned i = 0; i < h->shard_count(); ++i) {
      const std::uint64_t id = h->shard_heap_id(i);
      if (id == 0) continue;
      for (unsigned j = 0; j < heap->shard_count(); ++j) {
        if (heap->shard_heap_id(j) == id) {
          throw std::logic_error("heap id already registered");
        }
      }
    }
  }
  g_heaps.push_back(heap);
  g_snap.store(build_locked(), std::memory_order_release);
}

void remove(Heap* heap) noexcept {
  std::lock_guard<std::mutex> lk(g_mu);
  if (std::erase(g_heaps, heap) != 0) {
    g_snap.store(build_locked(), std::memory_order_release);
  }
}

Heap* by_id(std::uint64_t heap_id) noexcept {
  const auto snap = g_snap.load(std::memory_order_acquire);
  if (snap == nullptr) return nullptr;
  const auto it = std::lower_bound(
      snap->ids.begin(), snap->ids.end(), heap_id,
      [](const IdEntry& e, std::uint64_t id) { return e.id < id; });
  return it != snap->ids.end() && it->id == heap_id ? it->heap : nullptr;
}

Heap* by_address(const void* p) noexcept {
  const auto snap = g_snap.load(std::memory_order_acquire);
  if (snap == nullptr) return nullptr;
  const auto* b = static_cast<const std::byte*>(p);
  // First interval with lo > p; its predecessor is the only candidate.
  auto it = std::upper_bound(
      snap->intervals.begin(), snap->intervals.end(), b,
      [](const std::byte* v, const Interval& iv) { return v < iv.lo; });
  if (it == snap->intervals.begin()) return nullptr;
  --it;
  return b < it->hi ? it->heap : nullptr;
}

}  // namespace poseidon::core::registry
