#include "core/registry.hpp"

#include <algorithm>
#include <mutex>
#include <stdexcept>
#include <vector>

#include "core/heap.hpp"

namespace poseidon::core::registry {

namespace {
std::mutex g_mu;
std::vector<Heap*> g_heaps;
}  // namespace

void add(Heap* heap) {
  std::lock_guard<std::mutex> lk(g_mu);
  for (const Heap* h : g_heaps) {
    if (h->heap_id() == heap->heap_id()) {
      throw std::logic_error("heap id already registered");
    }
  }
  g_heaps.push_back(heap);
}

void remove(Heap* heap) noexcept {
  std::lock_guard<std::mutex> lk(g_mu);
  std::erase(g_heaps, heap);
}

Heap* by_id(std::uint64_t heap_id) noexcept {
  std::lock_guard<std::mutex> lk(g_mu);
  for (Heap* h : g_heaps) {
    if (h->heap_id() == heap_id) return h;
  }
  return nullptr;
}

Heap* by_address(const void* p) noexcept {
  std::lock_guard<std::mutex> lk(g_mu);
  for (Heap* h : g_heaps) {
    if (h->contains(p)) return h;
  }
  return nullptr;
}

}  // namespace poseidon::core::registry
