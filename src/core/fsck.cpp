// Fault-domain hardening (DESIGN.md "Failure model").
//
// Three escalating answers to corrupted metadata, all implemented here:
//
//   1. VERIFY   — the superblock's immutable config prefix is checksummed
//                 (with a shadow copy one page after it), and a clean close
//                 seals each ready sub-heap's metadata + active hash levels
//                 under quiesce checksums.  open() re-validates whatever
//                 was sealed before admitting traffic.
//   2. REPAIR   — scavenge_subheap() rebuilds a sub-heap's hash table,
//                 free lists and counters from the surviving memblock
//                 records: invalid records are dropped, overlaps resolved,
//                 unaccounted gaps covered by synthesized minimum-size
//                 allocated records (a bounded leak, never unsafe reuse).
//                 Committed allocations survive and stay freeable exactly
//                 once.
//   3. DEGRADE  — what cannot be rebuilt (or whose pages fault under the
//                 probe guard) is quarantined: no new allocations, frees
//                 rejected with FreeResult::kQuarantined, user data still
//                 readable, while healthy sub-heaps keep serving.
//
// Everything in this file is a cold path: open, close, and explicit fsck.

#include <algorithm>
#include <cstring>
#include <string>
#include <vector>

#include "common/bitops.hpp"
#include "common/error.hpp"
#include "core/pool_shard.hpp"
#include "core/micro_log.hpp"
#include "core/ownership.hpp"
#include "pmem/fault_inject.hpp"
#include "pmem/persist.hpp"

namespace poseidon::core {

namespace {

// Checksum over the bytes of the active hash levels (levels are contiguous
// from hash_off, so the active prefix is one range).
std::uint64_t active_hash_csum(const std::byte* heap_base,
                               const SubheapMeta& m) noexcept {
  return csum_bytes(heap_base + m.hash_off,
                    level_offset(m.level0_slots, m.levels_active));
}

bool seal_csums_match(const std::byte* heap_base,
                      const SubheapMeta& m) noexcept {
  return m.seal_csum_meta == subheap_meta_csum(m) &&
         m.seal_csum_hash == active_hash_csum(heap_base, m);
}

}  // namespace

bool PoolShard::validate_superblock(pmem::Pool& pool) {
  if (pool.size() < super_shadow_off() + sizeof(SuperShadow)) {
    throw Error(ErrorCode::kNotAPool,
                pool.path() + ": too small to be a Poseidon heap");
  }
  auto* sb = reinterpret_cast<SuperBlock*>(pool.data());
  pmem::fault::FaultGuard guard;
  if (!guard.readable(sb, sizeof(SuperBlock))) {
    throw Error(ErrorCode::kCorruptSuperblock,
                pool.path() + ": superblock pages unreadable");
  }
  bool repaired = false;
  if (sb->magic != kSuperMagic || sb->version != kVersion ||
      super_config_csum(*sb) != sb->config_csum) {
    // The config prefix fails verification: try the shadow copy before
    // classifying the failure.  A pre-v4 file has a valid magic but an old
    // version, and its shadow location holds other data (no shadow magic),
    // so it falls through to kWrongVersion rather than a bogus repair.
    const auto* shadow =
        reinterpret_cast<const SuperShadow*>(pool.data() + super_shadow_off());
    bool shadow_ok = guard.readable(shadow, sizeof(SuperShadow)) &&
                     shadow->magic == kShadowMagic &&
                     shadow->len == kSuperConfigBytes &&
                     shadow->csum == csum_bytes(shadow->bytes, shadow->len);
    if (shadow_ok) {
      SuperBlock embedded{};
      std::memcpy(&embedded, shadow->bytes, kSuperConfigBytes);
      shadow_ok = embedded.magic == kSuperMagic && embedded.version == kVersion;
    }
    if (shadow_ok && pool.read_only()) {
      // The mapping is PROT_READ, so the in-place restore is impossible.
      // Repairing belongs to a writable open anyway (with its corruption
      // accounting); the inspector reports rather than heals.
      throw Error(ErrorCode::kCorruptSuperblock,
                  pool.path() + ": superblock checksum mismatch (shadow copy "
                                "is intact; a read-write open will repair)");
    }
    if (shadow_ok) {
      pmem::nv_memcpy(sb, shadow->bytes, kSuperConfigBytes);
      pmem::persist(sb, kSuperConfigBytes);
      repaired = true;
    } else if (sb->magic != kSuperMagic) {
      throw Error(ErrorCode::kNotAPool, pool.path() + ": not a Poseidon heap");
    } else if (sb->version != kVersion) {
      throw Error(ErrorCode::kWrongVersion,
                  pool.path() + ": layout version " +
                      std::to_string(sb->version) + " (this build expects " +
                      std::to_string(kVersion) + ")");
    } else {
      throw Error(ErrorCode::kCorruptSuperblock,
                  pool.path() +
                      ": superblock checksum mismatch and shadow copy invalid");
    }
  }
  if (sb->file_size != pool.size()) {
    throw Error(ErrorCode::kTruncated,
                pool.path() + ": file is " + std::to_string(pool.size()) +
                    " bytes, superblock records " +
                    std::to_string(sb->file_size));
  }
  // Belt and braces for fields later code indexes with: a checksum
  // collision must still not drive out-of-bounds arithmetic.
  if (sb->nsubheaps == 0 || sb->nsubheaps > kMaxSubheaps ||
      sb->levels_max == 0 || sb->levels_max > kMaxHashLevels ||
      sb->level0_slots < kProbeWindow || sb->user_size == 0 ||
      (sb->user_size & (sb->user_size - 1)) != 0) {
    throw Error(ErrorCode::kCorruptSuperblock,
                pool.path() + ": superblock geometry out of bounds");
  }
  // Shard header sanity (v5): the routing front-end indexes by these.
  if (sb->shard_set_id == 0 || sb->shard_count == 0 ||
      sb->shard_count > kMaxShards || sb->shard_index >= sb->shard_count) {
    throw Error(ErrorCode::kCorruptSuperblock,
                pool.path() + ": shard header out of bounds");
  }
  return repaired;
}

bool PoolShard::probe_subheap_readable(unsigned idx) const noexcept {
  pmem::fault::FaultGuard guard;
  if (!guard.readable(meta_of(idx), sizeof(SubheapMeta))) return false;
  return guard.readable(
      base() + sb_->hash_region_off + idx * sb_->hash_region_stride,
      sb_->hash_region_stride);
}

bool PoolShard::subheap_sane(unsigned idx) const noexcept {
  const SubheapMeta* m = meta_of(idx);
  return m->magic == kSubheapMagic && m->index == idx &&
         m->user_off == sb_->user_region_off + idx * sb_->user_size &&
         m->user_size == sb_->user_size &&
         m->hash_off == sb_->hash_region_off + idx * sb_->hash_region_stride &&
         m->levels_active >= 1 && m->levels_active <= m->levels_max &&
         m->levels_max == sb_->levels_max &&
         m->level0_slots == sb_->level0_slots;
}

void PoolShard::quarantine_subheap(unsigned idx) {
  if (sb_->subheap_state[idx] == kSubheapQuarantined) return;
  pmem::nv_store_release_persist(sb_->subheap_state[idx],
                                 std::uint64_t{kSubheapQuarantined});
  metrics_->subheaps_quarantined.inc();
  flight(obs::FlightOp::kQuarantine, idx, 0, 0);
}

bool PoolShard::scavenge_subheap(unsigned idx, FsckReport* rep) {
  SubheapMeta* m = meta_of(idx);
  // Persisted first: a crash mid-rebuild leaves kSubheapRepairing and the
  // next open simply re-runs the (idempotent) scavenge instead of trusting
  // half-rebuilt metadata.
  pmem::nv_store_release_persist(sb_->subheap_state[idx],
                                 std::uint64_t{kSubheapRepairing});
  // The immutable fields are rewritten from the (checksum-verified)
  // superblock geometry — they may themselves be the corrupted part.
  pmem::nv_store(m->magic, kSubheapMagic);
  pmem::nv_store(m->index, idx);
  pmem::nv_store(m->user_off, sb_->user_region_off + idx * sb_->user_size);
  pmem::nv_store(m->user_size, sb_->user_size);
  pmem::nv_store(m->hash_off,
                 sb_->hash_region_off + idx * sb_->hash_region_stride);
  pmem::nv_store(m->levels_max, static_cast<std::uint32_t>(sb_->levels_max));
  pmem::nv_store(m->level0_slots, sb_->level0_slots);
  // The undo log predates the rebuild: replaying it over scavenged state
  // would re-corrupt, so truncate (one generation bump).  The micro log is
  // kept — recovery replays it through the validated free path, which the
  // rebuilt table supports — unless its count itself is garbage.
  pmem::nv_store_persist(m->undo.gen, m->undo.gen + 1);
  if (m->micro.count > kMicroCap) micro_truncate(m->micro);

  // Harvest candidate records from every level that could ever have been
  // active (levels_active is untrusted).  A record survives only if it is
  // fully self-consistent AND sits within the probe window its key hashes
  // to at that level — a scribbled slot rarely passes all of that.
  struct Cand {
    std::uint64_t off;
    std::uint32_t cls;
    std::uint32_t status;
    // Surviving service owner tag (allocated records only; next_free is
    // dead state for them).  Preserving it through the rebuild lets a
    // later orphan sweep reclaim blocks whose client AND server died —
    // without it, every scavenge would silently launder orphans into
    // permanent leaks.  The tag's top bit is always set (svc make_tag), so
    // stray zero/garbage link words rarely masquerade as tags.
    std::uint64_t tag;
  };
  std::vector<Cand> cands;
  const auto* storage =
      reinterpret_cast<const MemblockRec*>(base() + m->hash_off);
  const unsigned top = log2_floor(sb_->user_size);
  std::uint64_t dropped = 0;
  std::uint64_t lvl_base = 0;
  for (unsigned lvl = 0; lvl < sb_->levels_max; ++lvl) {
    const std::uint64_t slots = level_slots(sb_->level0_slots, lvl);
    for (std::uint64_t i = 0; i < slots; ++i) {
      const MemblockRec& rec = storage[lvl_base + i];
      if (rec.key == 0) continue;
      const std::uint64_t off = rec.key - 1;
      const bool ok =
          off < sb_->user_size && rec.size_class >= kMinBlockShift &&
          rec.size_class <= top &&
          (off & ((std::uint64_t{1} << rec.size_class) - 1)) == 0 &&
          (rec.status == kBlockFree || rec.status == kBlockAllocated) &&
          (i + slots - HashTable::hash_of(off) % slots) % slots < kProbeWindow;
      if (!ok) {
        ++dropped;
        continue;
      }
      const std::uint64_t tag =
          rec.status == kBlockAllocated && (rec.next_free >> 63) != 0
              ? rec.next_free
              : 0;
      cands.push_back(Cand{off, rec.size_class, rec.status, tag});
    }
    lvl_base += slots;
  }
  // Order by offset; at equal offsets prefer the allocated claim (never
  // hand out memory a surviving record says is live).
  std::sort(cands.begin(), cands.end(), [](const Cand& a, const Cand& b) {
    if (a.off != b.off) return a.off < b.off;
    return a.status > b.status;  // kBlockAllocated (2) before kBlockFree (1)
  });
  // Greedy re-tiling: walk the candidates in offset order, drop whatever
  // overlaps the region already covered, and plug every gap with 32 B
  // allocated records.  Synthesized blocks are a bounded leak — but an
  // application retrying the free of a committed 32 B block whose record
  // was destroyed still hits a record boundary and frees exactly once.
  std::vector<Cand> final_blocks;
  std::uint64_t synthesized = 0;
  std::uint64_t covered = 0;
  auto fill_gap = [&](std::uint64_t until) {
    for (; covered < until; covered += std::uint64_t{1} << kMinBlockShift) {
      final_blocks.push_back(
          Cand{covered, kMinBlockShift, kBlockAllocated, 0});
      ++synthesized;
    }
  };
  for (const Cand& c : cands) {
    if (c.off < covered) {
      ++dropped;  // overlaps an accepted block
      continue;
    }
    fill_gap(c.off);
    final_blocks.push_back(c);
    covered += std::uint64_t{1} << c.cls;
  }
  fill_gap(sb_->user_size);

  // Rebuild from scratch: zero the whole hash region and the mutable meta,
  // then insert the final block list (adjacency-chained, free lists
  // rebuilt tail-append so delayed reuse survives the repair).
  pmem::nv_memset(base() + m->hash_off, 0,
                  level_offset(sb_->level0_slots, sb_->levels_max));
  pmem::nv_memset(m->free_heads, 0, sizeof(m->free_heads));
  pmem::nv_memset(m->level_count, 0, sizeof(m->level_count));
  pmem::nv_store(m->levels_active, 1u);
  pmem::nv_store(m->stat_splits, std::uint64_t{0});
  pmem::nv_store(m->stat_merges, std::uint64_t{0});
  pmem::nv_store(m->stat_window_merges, std::uint64_t{0});
  pmem::nv_store(m->stat_extensions, std::uint64_t{0});
  pmem::nv_store(m->stat_shrinks, std::uint64_t{0});
  pmem::nv_store(m->seal_csum_meta, std::uint64_t{0});
  pmem::nv_store(m->seal_csum_hash, std::uint64_t{0});

  HashTable table(m, base());
  UndoLogger no_undo(m->undo, base(), /*enabled=*/false);
  MemblockRec* prev = nullptr;
  MemblockRec* tails[kMaxClasses] = {};
  std::uint64_t live = 0, free_blocks = 0, bytes = 0;
  for (const Cand& c : final_blocks) {
    MemblockRec* rec = table.insert(c.off, no_undo);
    while (rec == nullptr) {
      // compute_geometry sizes the table for one record per 32 B block
      // with headroom, so extension always succeeds before capacity does
      // — but a failure here must degrade, not corrupt.
      if (!table.try_extend(no_undo)) return false;
      rec = table.insert(c.off, no_undo);
    }
    pmem::nv_store(rec->size_class, c.cls);
    pmem::nv_store(rec->status, c.status);
    pmem::nv_store(rec->prev_adj, prev != nullptr ? prev->key : 0);
    pmem::nv_store(rec->next_adj, std::uint64_t{0});
    pmem::nv_store(rec->prev_free, std::uint64_t{0});
    pmem::nv_store(rec->next_free, c.tag);
    if (prev != nullptr) pmem::nv_store(prev->next_adj, rec->key);
    prev = rec;
    if (c.status == kBlockFree) {
      if (tails[c.cls] == nullptr) {
        pmem::nv_store(m->free_heads[c.cls].head, rec->key);
      } else {
        pmem::nv_store(tails[c.cls]->next_free, rec->key);
        pmem::nv_store(rec->prev_free, tails[c.cls]->key);
      }
      pmem::nv_store(m->free_heads[c.cls].tail, rec->key);
      tails[c.cls] = rec;
      ++free_blocks;
    } else {
      ++live;
      bytes += std::uint64_t{1} << c.cls;
    }
  }
  pmem::nv_store(m->live_blocks, live);
  pmem::nv_store(m->free_blocks, free_blocks);
  pmem::nv_store(m->allocated_bytes, bytes);
  {
    // Meta and the rebuilt hash levels need no ordering between them (the
    // kSubheapRepairing state word gates the whole rebuild); one fence.
    pmem::FlushBatch batch;
    batch.add(m, sizeof(SubheapMeta));
    batch.add(base() + m->hash_off,
              level_offset(sb_->level0_slots, m->levels_active));
    batch.commit();
  }

  // Only a rebuild that passes the full invariant check goes back into
  // service; anything less becomes a quarantine at the caller.
  std::string why;
  if (!subheap(idx).check_invariants(&why)) return false;
  pmem::nv_store_release_persist(sb_->subheap_state[idx],
                                 std::uint64_t{kSubheapReady});
  metrics_->scavenge_repairs.inc();
  flight(obs::FlightOp::kScavenge, idx, 0, dropped);
  if (rep != nullptr) {
    rep->records_dropped += dropped;
    rep->records_synthesized += synthesized;
  }
  return true;
}

void PoolShard::validate_on_open(bool sb_repaired) {
  // Pre-MPK, single-threaded (the constructor has not published the heap),
  // and before recover(): log replay must never chew on metadata that
  // verification would have rejected.
  if (sb_repaired) {
    metrics_->corruption_detected.inc();
    flight(obs::FlightOp::kCorruption, 0, 0, 0);
  }
  const bool sealed = sb_->seal_state == kSealSealed;
  if (sealed && super_mutable_csum(*sb_) != sb_->mutable_csum) {
    // root / state words are suspect; the per-sub-heap checks below decide
    // each one's fate individually.
    metrics_->corruption_detected.inc();
    flight(obs::FlightOp::kCorruption, 0, 0, 1);
  }
  for (unsigned i = 0; i < sb_->nsubheaps; ++i) {
    if (!probe_subheap_readable(i)) {
      metrics_->corruption_detected.inc();
      flight(obs::FlightOp::kCorruption, i, 0, 2);
      quarantine_subheap(i);
      continue;
    }
    SubheapMeta* m = meta_of(i);
    const std::uint64_t st = sb_->subheap_state[i];
    switch (st) {
      case kSubheapAbsent:
        // Resurrection rule: ONLY at a sealed open may a valid, fully
        // checksummed sub-heap behind an absent state word be brought
        // back — then the state word itself was what rotted.  At an
        // unsealed open an absent state with leftover metadata is the
        // normal signature of a crash mid-format; reformat handles it.
        if (sealed && subheap_sane(i) && seal_csums_match(base(), *m)) {
          metrics_->corruption_detected.inc();
          flight(obs::FlightOp::kCorruption, i, 0, 3);
          pmem::nv_store_release_persist(sb_->subheap_state[i],
                                         std::uint64_t{kSubheapReady});
          metrics_->scavenge_repairs.inc();
        }
        break;
      case kSubheapQuarantined:
        break;  // stays down; an explicit fsck() may retry it
      case kSubheapRepairing:
        // A scavenge was interrupted: re-run it.
        if (!scavenge_subheap(i, nullptr)) quarantine_subheap(i);
        break;
      case kSubheapReady: {
        bool ok = subheap_sane(i);
        if (ok && sealed) ok = seal_csums_match(base(), *m);
        if (!ok) {
          metrics_->corruption_detected.inc();
          flight(obs::FlightOp::kCorruption, i, 0, 4);
          if (!scavenge_subheap(i, nullptr)) quarantine_subheap(i);
        }
        break;
      }
      default:
        // Garbage state word.
        metrics_->corruption_detected.inc();
        flight(obs::FlightOp::kCorruption, i, 0, 5);
        if (sealed && subheap_sane(i) && seal_csums_match(base(), *m)) {
          pmem::nv_store_release_persist(sb_->subheap_state[i],
                                         std::uint64_t{kSubheapReady});
          metrics_->scavenge_repairs.inc();
        } else if (m->magic == kSubheapMagic) {
          if (!scavenge_subheap(i, nullptr)) quarantine_subheap(i);
        } else {
          // No recognizable metadata at all behind a garbage state word:
          // formatting over it could destroy data, so park it.
          quarantine_subheap(i);
        }
        break;
    }
  }
  // Drop the seal before traffic: from here on the checksums go stale by
  // design, and only the next clean close re-establishes them.
  if (sealed) {
    pmem::nv_store_persist(sb_->seal_state, std::uint64_t{kSealDirty});
  }
}

void PoolShard::seal_all() noexcept {
  // Clean-close quiesce: checksum every ready sub-heap's metadata + active
  // hash levels, then the superblock's mutable range, then flip the seal
  // word last (the commit point — a crash anywhere before it simply leaves
  // the heap unsealed, which the next open treats as plain crash recovery).
  // This also runs after a simulated crash (the destructor still executes):
  // that is harmless, because the checksums are computed over whatever
  // state exists NOW, so the next open's validation passes and normal
  // undo-replay recovery proceeds exactly as it would unsealed.
  mpk::WriteWindow w(prot_.get());
  pmem::fault::FaultGuard guard;
  // The per-sub-heap checksum pairs are independent of each other — only
  // the seal flip below needs them all durable first — so batch the
  // write-backs and fence once instead of per sub-heap.  (The early return
  // on a poisoned sub-heap is safe: the batch destructor commits.)
  pmem::FlushBatch batch;
  for (unsigned i = 0; i < sb_->nsubheaps; ++i) {
    if (pmem::nv_load_acquire(sb_->subheap_state[i]) != kSubheapReady) {
      continue;
    }
    SubheapMeta* m = meta_of(i);
    if (!probe_subheap_readable(i)) return;  // poisoned: leave seal dirty
    pmem::nv_store(m->seal_csum_meta, subheap_meta_csum(*m));
    pmem::nv_store(m->seal_csum_hash, active_hash_csum(base(), *m));
    batch.add(&m->seal_csum_meta, 2 * sizeof(std::uint64_t));
  }
  batch.commit();
  pmem::nv_store_persist(sb_->mutable_csum, super_mutable_csum(*sb_));
  pmem::nv_store_release_persist(sb_->seal_state, std::uint64_t{kSealSealed});
  // Owner record cleared LAST, strictly after the seal flip: a crash
  // between the two leaves a sealed heap with a stamped owner, and the
  // next open counts a (harmless, truthful) takeover — whereas clearing
  // first could mark a heap ownerless while its logs still need replay.
  clear_owner(sb_);
}

void PoolShard::refresh_owner_heartbeat() {
  if (pool_.read_only()) return;
  std::lock_guard<std::mutex> lk(admin_mu_);
  mpk::WriteWindow w(prot_.get());
  refresh_heartbeat(sb_);
}

FsckReport PoolShard::fsck() {
  if (pool_.read_only()) {
    throw Error(ErrorCode::kInvalidArgument,
                pool_.path() + ": heap is open read-only (fsck repairs)");
  }
  // The heap-wide fsck_runs metric is counted once by the front-end.
  FsckReport rep;
  std::lock_guard<std::mutex> lk(admin_mu_);
  mpk::WriteWindow w(prot_.get());
  // A long-lived owner leaves a liveness trail for inspectors.
  refresh_heartbeat(sb_);
  for (unsigned i = 0; i < sb_->nsubheaps; ++i) {
    const std::uint64_t st = pmem::nv_load_acquire(sb_->subheap_state[i]);
    if (st == kSubheapAbsent) continue;
    ++rep.checked;
    if (!probe_subheap_readable(i)) {
      // Still faulting (e.g. the poisoned mapping is the current one):
      // nothing to rebuild from yet.  A later open of a clean mapping can.
      quarantine_subheap(i);
      ++rep.quarantined;
      continue;
    }
    Guard<Spinlock> g(subs_[i]->lock);
    if (st == kSubheapReady) {
      std::string why;
      if (subheap_sane(i) && subheap(i).check_invariants(&why)) {
        ++rep.clean;
        continue;
      }
      metrics_->corruption_detected.inc();
      flight(obs::FlightOp::kCorruption, i, 0, 6);
    }
    // Ready-but-broken, quarantined, or repairing: try the rebuild.
    if (scavenge_subheap(i, &rep)) {
      ++rep.repaired;
    } else {
      quarantine_subheap(i);
      ++rep.quarantined;
    }
  }
  return rep;
}

SubheapHealth PoolShard::subheap_health(unsigned idx) const noexcept {
  if (idx >= sb_->nsubheaps) return SubheapHealth::kAbsent;
  switch (pmem::nv_load_acquire(sb_->subheap_state[idx])) {
    case kSubheapReady: return SubheapHealth::kReady;
    case kSubheapRepairing: return SubheapHealth::kRepairing;
    case kSubheapQuarantined: return SubheapHealth::kQuarantined;
    default: return SubheapHealth::kAbsent;
  }
}

}  // namespace poseidon::core
