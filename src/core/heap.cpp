#include "core/heap.hpp"

#include <algorithm>
#include <cerrno>
#include <stdexcept>
#include <system_error>
#include <thread>

#include "common/error.hpp"
#include "common/numa.hpp"
#include "common/topology.hpp"
#include "core/registry.hpp"
#include "pmem/crashpoint.hpp"

namespace poseidon::core {

namespace {

// Member file naming: the head (shard 0, holds the root) sits at `path`
// itself, so a set of one is byte-for-byte where a pre-v5 heap was.
std::string shard_file_path(const std::string& head, unsigned i) {
  return i == 0 ? head : head + ".shard" + std::to_string(i);
}

unsigned shard_home_node(unsigned shard) noexcept {
  return shard % numa_node_count();
}

}  // namespace

Heap::Heap(std::string head_path, const Options& opts)
    : head_path_(std::move(head_path)), opts_(opts) {}

std::unique_ptr<Heap> Heap::create(const std::string& path,
                                   std::uint64_t capacity,
                                   const Options& opts) {
  if (opts.read_only) {
    throw std::invalid_argument("cannot create a heap read-only");
  }
  // Resolve the persistence domain before the first metadata store of
  // format; every barrier below runs under the resolved domain.
  pmem::apply_persist_domain(opts.persist_domain);
  if (opts.nsubheaps > kMaxSubheaps) {
    throw std::invalid_argument("too many sub-heaps");
  }
  if (opts.nshards > kMaxShards) {
    throw std::invalid_argument("too many shards");
  }
  unsigned nshards = opts.nshards != 0 ? opts.nshards : numa_node_count();
  if (nshards == 0) nshards = 1;
  if (nshards > kMaxShards) nshards = kMaxShards;
  unsigned per_shard = 0;
  if (opts.nsubheaps == 0) {
    // Auto: roughly one sub-heap per online CPU, split across the shards.
    per_shard =
        std::max(1u, std::min(cpu_count(), kMaxSubheaps) / nshards);
  } else {
    // An explicit total wins over the shard count: shrink the set to the
    // largest divisor so nsubheaps() is exactly what the caller asked for.
    while (opts.nsubheaps % nshards != 0) --nshards;
    per_shard = opts.nsubheaps / nshards;
  }
  const std::uint64_t per_capacity =
      std::max<std::uint64_t>(capacity / nshards, 1);
  const std::uint64_t set_id = random_nonzero_u64();
  const std::uint64_t epoch = random_nonzero_u64();

  // Fail before the stale-member sweep: a head file at `path` means a
  // committed shard set lives here, and unlinking its members would leave
  // the surviving head permanently unopenable (kShardMismatch).  The head
  // Pool::create's O_EXCL would also refuse, but only after the members
  // were already destroyed.
  if (pmem::Pool::exists(path)) {
    throw std::system_error(EEXIST, std::generic_category(),
                            "create heap " + path + ": head file exists");
  }

  std::unique_ptr<Heap> h(new Heap(path, opts));
  h->nshards_ = nshards;
  h->per_shard_subs_ = per_shard;
  h->shards_.resize(nshards);
  // Sweep members of a previous create that crashed before its head landed
  // (no head file -> the set never committed; its members are garbage).
  for (unsigned i = 1; i < kMaxShards; ++i) {
    pmem::Pool::unlink(shard_file_path(path, i));
  }
  // Members first, head last: the head's magic is the shard set's commit
  // point.  A crash anywhere in this loop leaves no openable heap.
  for (unsigned i = 1; i < nshards; ++i) {
    const ShardLink link{set_id, epoch, i, nshards};
    h->shards_[i] =
        PoolShard::create(shard_file_path(path, i), per_capacity, opts,
                          per_shard, link, shard_home_node(i), &h->metrics_);
    POSEIDON_CRASH_POINT("shard.after_member_create");
  }
  const ShardLink head{set_id, epoch, 0, nshards};
  h->shards_[0] = PoolShard::create(path, per_capacity, opts, per_shard,
                                    head, shard_home_node(0), &h->metrics_);
  registry::add(h.get());
  return h;
}

std::unique_ptr<Heap> Heap::open(const std::string& path,
                                 const Options& opts) {
  const ShardLink head = PoolShard::peek(path);
  if (head.index != 0) {
    throw Error(ErrorCode::kShardMismatch,
                path + ": member " + std::to_string(head.index) +
                    " of a shard set; open the head file instead");
  }
  if (head.count == 0 || head.count > kMaxShards) {
    throw Error(ErrorCode::kCorruptSuperblock,
                path + ": shard count " + std::to_string(head.count) +
                    " out of bounds");
  }
  // Before recovery: replay barriers run under the resolved domain too.
  pmem::apply_persist_domain(opts.persist_domain);
  std::unique_ptr<Heap> h(new Heap(path, opts));
  h->nshards_ = head.count;
  h->shards_.resize(head.count);
  std::vector<std::exception_ptr> errs(head.count);
  // Ownership phase, before any recovery work: take every member's OFD
  // lock sequentially in canonical order — members 1..N-1 first, the head
  // (the set's commit point) last.  Every opener follows the same order
  // and fails fast on conflict, so two racing opens can never each end up
  // holding part of one set: whoever loses releases everything it took,
  // in reverse, and surfaces kHeapBusy.  Read-only opens take no locks
  // and sail through.  A member whose file is merely damaged or missing
  // (non-busy Error) is recorded for the quarantine path below.
  std::vector<pmem::Pool> pools(head.count);
  auto acquire = [&](unsigned i) {
    try {
      pools[i] = pmem::Pool::open(shard_file_path(path, i), opts.read_only);
    } catch (const Error& e) {
      // kHeapBusy on ANY member refuses the whole open: a set with a live
      // owner on one member must not be half-claimed.  The head must open
      // regardless of why it failed.
      if (i == 0 || e.poseidon_code() == ErrorCode::kHeapBusy) throw;
      errs[i] = std::current_exception();
    }
  };
  try {
    for (unsigned i = 1; i < head.count; ++i) acquire(i);
    acquire(0);
  } catch (...) {
    // Release in reverse acquisition order: head (if reached), then
    // members descending.  close() is a no-op on a never-opened slot.
    pools[0].close();
    for (unsigned j = head.count; j-- > 1;) pools[j].close();
    throw;
  }
  auto open_one = [&](unsigned i) {
    if (errs[i] != nullptr) return;  // pool never opened; quarantined below
    try {
      const ShardLink expect{head.set_id, head.epoch, i, head.count};
      h->shards_[i] = PoolShard::open(std::move(pools[i]), opts, &expect,
                                      shard_home_node(i), &h->metrics_);
    } catch (...) {
      errs[i] = std::current_exception();
    }
  };
  if (head.count == 1) {
    open_one(0);
  } else {
    // Shard-parallel recovery: one worker per member, pinned to the
    // member's NUMA node so log replay and first-touch happen node-local.
    std::vector<std::thread> workers;
    workers.reserve(head.count);
    for (unsigned i = 0; i < head.count; ++i) {
      workers.emplace_back([&, i] {
        pin_thread_to_node(shard_home_node(i));
        open_one(i);
      });
    }
    for (auto& w : workers) w.join();
  }
  // The head must open — it holds the root object and the set's identity.
  if (errs[0] != nullptr) std::rethrow_exception(errs[0]);
  for (unsigned i = 1; i < head.count; ++i) {
    if (errs[i] == nullptr) continue;
    try {
      std::rethrow_exception(errs[i]);
    } catch (const Error& e) {
      // A member that positively belongs to a DIFFERENT set (or build) is
      // a configuration error: refuse the whole open rather than serving
      // around it.  Damage — missing file, bad magic, failed checksums,
      // truncation, I/O — quarantines just that slot; the rest serve.
      if (e.poseidon_code() == ErrorCode::kShardMismatch ||
          e.poseidon_code() == ErrorCode::kWrongVersion) {
        throw;
      }
      h->shards_[i] = nullptr;
      h->metrics_.corruption_detected.inc();
    }
    // Anything that is not a typed Error (crash-point exceptions, logic
    // errors) propagates out of the catch above by rethrow.
  }
  // Members must agree with the head on geometry, or global sub-heap
  // indexing (and capacity accounting) would be ambiguous.
  for (unsigned i = 1; i < head.count; ++i) {
    if (h->shards_[i] != nullptr &&
        (h->shards_[i]->nsubheaps() != h->shards_[0]->nsubheaps() ||
         h->shards_[i]->user_capacity() != h->shards_[0]->user_capacity())) {
      throw Error(ErrorCode::kShardMismatch,
                  shard_file_path(path, i) +
                      ": geometry disagrees with the head shard");
    }
  }
  h->per_shard_subs_ = h->shards_[0]->nsubheaps();
  for (const auto& s : h->shards_) {
    if (s == nullptr) continue;
    const auto& pm = s->flight_postmortem();
    h->postmortem_.insert(h->postmortem_.end(), pm.begin(), pm.end());
  }
  std::sort(h->postmortem_.begin(), h->postmortem_.end(),
            [](const obs::FlightEvent& a, const obs::FlightEvent& b) {
              return a.tsc < b.tsc;
            });
  // Read-only heaps stay out of the registry: they own nothing, and a
  // writer (possibly in this same process) may hold the same heap ids.
  if (!opts.read_only) registry::add(h.get());
  return h;
}

std::unique_ptr<Heap> Heap::open_or_create(const std::string& path,
                                           std::uint64_t capacity,
                                           const Options& opts) {
  if (pmem::Pool::exists(path)) return open(path, opts);
  return create(path, capacity, opts);
}

Heap::~Heap() {
  // Unregister before the shards seal and unmap, so no conversion can
  // route into a heap that is mid-teardown.  (Pointer-keyed and a no-op
  // for read-only heaps, which were never added.)
  registry::remove(this);
  // Tear down in reverse lock-acquisition order — head first, then members
  // descending — mirroring open's canonical acquire order, so a concurrent
  // opener racing this close sees the commit point free before any member.
  if (!shards_.empty()) shards_[0].reset();
  for (unsigned i = nshards_; i-- > 1;) shards_[i].reset();
}

unsigned Heap::home_shard() const noexcept {
  switch (opts_.shard_policy) {
    case ShardPolicy::kPerNode:
      return numa_node_of_cpu(current_cpu()) % nshards_;
    case ShardPolicy::kPerThread:
      return thread_ordinal() % nshards_;
    case ShardPolicy::kFixed0:
      return 0;
  }
  return 0;
}

PoolShard* Heap::shard_by_id(std::uint64_t heap_id) const noexcept {
  // <= kMaxShards entries: a linear id scan beats any index and stays
  // wait-free on the free/raw hot paths.
  for (const auto& s : shards_) {
    if (s != nullptr && s->heap_id() == heap_id) return s.get();
  }
  return nullptr;
}

NvPtr Heap::alloc(std::uint64_t size) {
  metrics_.alloc_calls.inc();
  obs::CycleTimer lat(obs::latency_sample_tick() ? &metrics_.alloc_cycles
                                                 : nullptr);
  const unsigned start = home_shard();
  const unsigned attempts = opts_.allow_fallback ? nshards_ : 1;
  for (unsigned a = 0; a < attempts; ++a) {
    PoolShard* s = shards_[(start + a) % nshards_].get();
    if (s == nullptr) continue;  // quarantined member: serve from the rest
    const NvPtr p = s->alloc(size);
    if (!p.is_null()) return p;
  }
  metrics_.alloc_fails.inc();
  return NvPtr::null();
}

NvPtr Heap::tx_alloc(std::uint64_t size, bool is_end) {
  metrics_.tx_alloc_calls.inc();
  obs::CycleTimer lat(obs::latency_sample_tick() ? &metrics_.tx_alloc_cycles
                                                 : nullptr);
  // A pinned transaction must keep routing to its shard: the micro log
  // recording its allocation history lives there.
  for (const auto& s : shards_) {
    if (s != nullptr && s->tx_active_here()) return s->tx_alloc(size, is_end);
  }
  const unsigned start = home_shard();
  for (unsigned a = 0; a < nshards_; ++a) {
    PoolShard* s = shards_[(start + a) % nshards_].get();
    if (s == nullptr) continue;
    const NvPtr p = s->tx_alloc(size, is_end);
    // A produced block ends the search, as does a still-pinned shard
    // (multi-op attempt: later ops and the commit must land there even
    // if this shard is exhausted).  An exhausted single-op attempt
    // unpins without committing anything, and a shard that could not
    // pin at all (fully quarantined, or the thread has an open
    // transaction on another heap) never held the pin — both let the
    // next shard try.
    if (!p.is_null() || s->tx_active_here()) return p;
  }
  return NvPtr::null();
}

void Heap::tx_commit() {
  for (const auto& s : shards_) {
    if (s != nullptr && s->tx_active_here()) {
      s->tx_commit();
      return;
    }
  }
}

void Heap::tx_leak_open_transaction_for_test() {
  for (const auto& s : shards_) {
    if (s != nullptr && s->tx_active_here()) {
      s->tx_leak_open_transaction_for_test();
      return;
    }
  }
}

FreeResult Heap::free(NvPtr ptr) {
  metrics_.free_calls.inc();
  obs::CycleTimer lat(obs::latency_sample_tick() ? &metrics_.free_cycles
                                                 : nullptr);
  FreeResult r = FreeResult::kInvalidPointer;
  if (!ptr.is_null()) {
    if (PoolShard* s = shard_by_id(ptr.heap_id)) r = s->free(ptr);
  }
  if (r != FreeResult::kOk) metrics_.free_rejects.inc();
  return r;
}

unsigned Heap::alloc_batch(const std::uint64_t* sizes, unsigned n,
                           NvPtr* out) {
  unsigned got = 0;
  for (unsigned i = 0; i < n; ++i) {
    out[i] = alloc(sizes[i]);
    if (!out[i].is_null()) ++got;
  }
  return got;
}

unsigned Heap::tx_alloc_batch(const std::uint64_t* sizes, unsigned n,
                              NvPtr* out) {
  unsigned got = 0;
  for (unsigned i = 0; i < n; ++i) {
    out[i] = tx_alloc(sizes[i], /*is_end=*/false);
    if (!out[i].is_null()) ++got;
  }
  // Commit even when some ops failed: the survivors are the batch.
  tx_commit();
  return got;
}

void Heap::free_batch(const NvPtr* ptrs, unsigned n, FreeResult* out) {
  for (unsigned i = 0; i < n; ++i) {
    out[i] = free(ptrs[i]);
  }
}

unsigned Heap::tx_alloc_batch_tagged(const std::uint64_t* sizes, unsigned n,
                                     NvPtr* out, std::uint64_t tag) {
  unsigned got = 0;
  for (unsigned i = 0; i < n; ++i) {
    out[i] = tx_alloc(sizes[i], /*is_end=*/false);
    if (!out[i].is_null()) ++got;
  }
  // Stamp before the commit: rollback (crash pre-commit) frees the blocks
  // and overwrites the tags; commit leaves them tagged for reconcile.
  for (unsigned i = 0; i < n; ++i) {
    if (out[i].is_null()) continue;
    if (PoolShard* s = shard_by_id(out[i].heap_id)) {
      s->stamp_owner_tag(out[i], tag);
    }
  }
  tx_commit();
  return got;
}

FreeResult Heap::free_if_owner(NvPtr ptr, std::uint32_t nonce32) {
  metrics_.free_calls.inc();
  FreeResult r = FreeResult::kInvalidPointer;
  if (!ptr.is_null()) {
    if (PoolShard* s = shard_by_id(ptr.heap_id)) {
      r = s->free_if_owner(ptr, nonce32);
    }
  }
  if (r != FreeResult::kOk) metrics_.free_rejects.inc();
  return r;
}

unsigned Heap::reclaim_tagged(const std::uint64_t* tags, unsigned n) {
  unsigned freed = 0;
  for (const auto& s : shards_) {
    if (s != nullptr) freed += s->reclaim_tagged(tags, n);
  }
  return freed;
}

unsigned Heap::reclaim_orphans(const std::uint64_t* pairs, unsigned npairs) {
  unsigned freed = 0;
  for (const auto& s : shards_) {
    if (s != nullptr) freed += s->reclaim_orphans(pairs, npairs);
  }
  if (freed != 0) metrics_.svc_orphans_reclaimed.inc(freed);
  return freed;
}

void Heap::refresh_owner_heartbeat() {
  for (const auto& s : shards_) {
    if (s != nullptr) s->refresh_owner_heartbeat();
  }
}

void* Heap::raw(NvPtr ptr) const noexcept {
  if (ptr.is_null()) return nullptr;
  const PoolShard* s = shard_by_id(ptr.heap_id);
  return s != nullptr ? s->raw(ptr) : nullptr;
}

NvPtr Heap::from_raw(const void* p) const noexcept {
  for (const auto& s : shards_) {
    if (s != nullptr && s->contains(p)) return s->from_raw(p);
  }
  return NvPtr::null();
}

bool Heap::contains(const void* p) const noexcept {
  for (const auto& s : shards_) {
    if (s != nullptr && s->contains(p)) return true;
  }
  return false;
}

NvPtr Heap::root() const noexcept { return shards_[0]->root(); }

void Heap::set_root(NvPtr ptr) { shards_[0]->set_root(ptr); }

std::uint64_t Heap::user_capacity() const noexcept {
  // Serving capacity: a quarantined member's region is unavailable.
  std::uint64_t total = 0;
  for (const auto& s : shards_) {
    if (s != nullptr) total += s->user_capacity();
  }
  return total;
}

std::uint64_t Heap::file_allocated_bytes() const {
  std::uint64_t total = 0;
  for (const auto& s : shards_) {
    if (s != nullptr) total += s->file_allocated_bytes();
  }
  return total;
}

HeapStats Heap::stats() const {
  HeapStats s;
  s.nshards = nshards_;
  for (const auto& sh : shards_) {
    if (sh == nullptr) {
      // The member never opened: its sub-heaps are all effectively
      // quarantined and its capacity is not serving.
      s.nsubheaps += per_shard_subs_;
      s.subheaps_quarantined += per_shard_subs_;
      ++s.shards_quarantined;
      continue;
    }
    const HeapStats t = sh->stats();
    s.live_blocks += t.live_blocks;
    s.free_blocks += t.free_blocks;
    s.allocated_bytes += t.allocated_bytes;
    s.user_capacity += t.user_capacity;
    s.nsubheaps += t.nsubheaps;
    s.subheaps_materialized += t.subheaps_materialized;
    s.splits += t.splits;
    s.merges += t.merges;
    s.window_merges += t.window_merges;
    s.hash_extensions += t.hash_extensions;
    s.hash_shrinks += t.hash_shrinks;
    s.cache_cached_blocks += t.cache_cached_blocks;
    s.subheaps_quarantined += t.subheaps_quarantined;
  }
  // The PR-1 manual hit/miss/flush counters moved into the metrics
  // registry; HeapStats keeps its ABI and reads them back from there.
  s.cache_hits = metrics_.cache_hits.read();
  s.cache_misses = metrics_.cache_misses.read();
  s.cache_flushes = metrics_.cache_flushes.read();
  s.persist_domain = static_cast<std::uint8_t>(pmem::persist_domain());
  return s;
}

bool Heap::check_invariants(std::string* why) const {
  for (unsigned i = 0; i < nshards_; ++i) {
    if (shards_[i] == nullptr) continue;
    std::string reason;
    if (!shards_[i]->check_invariants(&reason)) {
      if (why != nullptr) {
        *why = "shard " + std::to_string(i) + ": " + reason;
      }
      return false;
    }
  }
  return true;
}

FsckReport Heap::fsck() {
  if (shards_[0]->read_only()) {
    // Gate before the shard workers fan out: a throw from inside a worker
    // thread would escape std::thread and terminate the process.
    throw Error(ErrorCode::kInvalidArgument,
                path() + ": heap is open read-only (fsck repairs)");
  }
  metrics_.fsck_runs.inc();
  std::vector<FsckReport> reps(nshards_);
  if (nshards_ == 1) {
    reps[0] = shards_[0]->fsck();
  } else {
    // Same shape as the parallel open: one node-pinned worker per shard.
    std::vector<std::thread> workers;
    workers.reserve(nshards_);
    for (unsigned i = 0; i < nshards_; ++i) {
      if (shards_[i] == nullptr) continue;
      workers.emplace_back([&, i] {
        pin_thread_to_node(shard_home_node(i));
        reps[i] = shards_[i]->fsck();
      });
    }
    for (auto& w : workers) w.join();
  }
  FsckReport rep;
  for (unsigned i = 0; i < nshards_; ++i) {
    if (shards_[i] == nullptr) {
      // Quarantined member: nothing to check, everything stays down.
      rep.checked += per_shard_subs_;
      rep.quarantined += per_shard_subs_;
      continue;
    }
    rep.checked += reps[i].checked;
    rep.clean += reps[i].clean;
    rep.repaired += reps[i].repaired;
    rep.quarantined += reps[i].quarantined;
    rep.records_dropped += reps[i].records_dropped;
    rep.records_synthesized += reps[i].records_synthesized;
  }
  return rep;
}

SubheapHealth Heap::subheap_health(unsigned idx) const noexcept {
  const unsigned s = per_shard_subs_ != 0 ? idx / per_shard_subs_ : nshards_;
  if (s >= nshards_) return SubheapHealth::kAbsent;
  if (shards_[s] == nullptr) return SubheapHealth::kQuarantined;
  return shards_[s]->subheap_health(idx % per_shard_subs_);
}

unsigned Heap::shard_node(unsigned i) const noexcept {
  return shard_home_node(i);
}

std::string Heap::shard_path(unsigned i) const {
  return shard_file_path(head_path_, i);
}

std::vector<obs::FlightEvent> Heap::flight_events() const {
  std::vector<obs::FlightEvent> all;
  for (const auto& s : shards_) {
    if (s == nullptr) continue;
    const auto evs = s->flight_events();
    all.insert(all.end(), evs.begin(), evs.end());
  }
  std::sort(all.begin(), all.end(),
            [](const obs::FlightEvent& a, const obs::FlightEvent& b) {
              return a.tsc < b.tsc;
            });
  return all;
}

}  // namespace poseidon::core
