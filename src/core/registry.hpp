// Process-wide registry of open heaps.
//
// Persistent pointers embed an 8-byte heap id; converting one to a raw
// pointer (and back) requires finding the mapped base of the owning heap,
// which this registry provides (paper §4.6's pointer-conversion APIs).
#pragma once

#include <cstdint>

namespace poseidon::core {

class Heap;

namespace registry {

// Registers an open heap.  Throws std::logic_error if a heap with the same
// id is already registered (e.g. the same pool opened twice).
void add(Heap* heap);
void remove(Heap* heap) noexcept;

// nullptr when not found.
Heap* by_id(std::uint64_t heap_id) noexcept;
// Heap whose user region contains `p`; nullptr when none.
Heap* by_address(const void* p) noexcept;

}  // namespace registry
}  // namespace poseidon::core
