// Process-wide registry of open heaps.
//
// Persistent pointers embed an 8-byte heap id — since v5, the id of the
// owning *shard* — and converting one to a raw pointer (and back) requires
// finding the heap that owns it (paper §4.6's pointer-conversion APIs).
//
// Hot-path conversions are wait-free: lookups read an immutable snapshot
// (a sorted id table plus a sorted address-interval table over every
// shard's user region) published through an atomic shared_ptr, RCU-style.
// Writers (Heap open/close) rebuild the snapshot under a mutex; readers
// never block, never lock, and never observe a heap mid-teardown — remove
// publishes the shrunken snapshot before the Heap's shards unmap.
#pragma once

#include <cstdint>

namespace poseidon::core {

class Heap;

namespace registry {

// Registers an open heap (every shard's id and address range).  Throws
// std::logic_error if any shard id is already registered (e.g. the same
// pool opened twice).
void add(Heap* heap);
void remove(Heap* heap) noexcept;

// Heap owning the shard with this id; nullptr when not found.
Heap* by_id(std::uint64_t heap_id) noexcept;
// Heap whose user data contains `p`; nullptr when none.
Heap* by_address(const void* p) noexcept;

}  // namespace registry
}  // namespace poseidon::core
