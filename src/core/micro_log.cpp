#include "core/micro_log.hpp"

#include "pmem/persist.hpp"

namespace poseidon::core {

bool micro_append(MicroLog& log, const NvPtr& ptr,
                  obs::Metrics* metrics) noexcept {
  const std::uint64_t n = log.count;
  if (n >= kMicroCap) return false;
  obs::CycleTimer lat(metrics != nullptr && obs::latency_sample_tick()
                          ? &metrics->log_write_cycles
                          : nullptr);
  // Entry must be durable before the count that makes it visible.  When
  // the entry shares the count's cache line (the first few appends,
  // depending on the log's alignment), one persist of that line commits
  // both atomically: x86 TSO orders the two stores within the line, and a
  // line is written back whole, so a surviving count implies a surviving
  // entry.  Otherwise the entry needs its own barrier before the count.
  pmem::nv_store(log.entries[n], ptr);
  const auto count_line = cache_line_of(&log.count);
  if (cache_line_of(&log.entries[n]) == count_line &&
      cache_line_of(reinterpret_cast<const char*>(&log.entries[n] + 1) - 1) ==
          count_line) {
    pmem::nv_store(log.count, n + 1);
    pmem::persist(&log.count, sizeof(log.count));
  } else {
    pmem::persist(&log.entries[n], sizeof(NvPtr));
    pmem::nv_store_persist(log.count, n + 1);
  }
  if (metrics != nullptr) metrics->micro_appends.inc();
  return true;
}

void micro_truncate(MicroLog& log) noexcept {
  pmem::nv_store_persist(log.count, std::uint64_t{0});
}

}  // namespace poseidon::core
