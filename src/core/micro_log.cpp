#include "core/micro_log.hpp"

#include "pmem/persist.hpp"

namespace poseidon::core {

bool micro_append(MicroLog& log, const NvPtr& ptr,
                  obs::Metrics* metrics) noexcept {
  const std::uint64_t n = log.count;
  if (n >= kMicroCap) return false;
  obs::CycleTimer lat(metrics != nullptr && obs::latency_sample_tick()
                          ? &metrics->log_write_cycles
                          : nullptr);
  // Entry must be durable before the count that makes it visible.
  pmem::nv_store(log.entries[n], ptr);
  pmem::persist(&log.entries[n], sizeof(NvPtr));
  pmem::nv_store_persist(log.count, n + 1);
  if (metrics != nullptr) metrics->micro_appends.inc();
  return true;
}

void micro_truncate(MicroLog& log) noexcept {
  pmem::nv_store_persist(log.count, std::uint64_t{0});
}

}  // namespace poseidon::core
