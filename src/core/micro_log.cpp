#include "core/micro_log.hpp"

#include "pmem/persist.hpp"

namespace poseidon::core {

bool micro_append(MicroLog& log, const NvPtr& ptr) noexcept {
  const std::uint64_t n = log.count;
  if (n >= kMicroCap) return false;
  // Entry must be durable before the count that makes it visible.
  pmem::nv_store(log.entries[n], ptr);
  pmem::persist(&log.entries[n], sizeof(NvPtr));
  pmem::nv_store_persist(log.count, n + 1);
  return true;
}

void micro_truncate(MicroLog& log) noexcept {
  pmem::nv_store_persist(log.count, std::uint64_t{0});
}

}  // namespace poseidon::core
