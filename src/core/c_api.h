/* Poseidon C API — exactly the programming interface of Fig. 5 in the
 * paper.  Thin wrapper over the C++ core (core/heap.hpp).
 *
 * nvmptr_t is the 16-byte persistent pointer: 8-byte heap id, 2-byte
 * sub-heap id and 6-byte offset packed into the second word.  A zero
 * heap_id is the null persistent pointer.
 */
#pragma once

#include <stdbool.h>
#include <stddef.h>
#include <stdint.h>

#ifdef __cplusplus
extern "C" {
#endif

typedef struct poseidon_heap heap_t;

typedef struct nvmptr {
  uint64_t heap_id;
  uint64_t packed; /* subheap:16 | offset:48 */
} nvmptr_t;

static inline nvmptr_t nvmptr_null(void) {
  nvmptr_t p = {0, 0};
  return p;
}
static inline bool nvmptr_is_null(nvmptr_t p) { return p.heap_id == 0; }

/* Initialize (open or create) a Poseidon heap with a given size and path.
 * Returns NULL on failure; poseidon_last_error() then describes why.
 *
 * The persistence domain (how much of the durability barrier the platform
 * needs: "cacheline" write-back + fence, "eadr" fence only, or "none") is
 * auto-detected at init; the POSEIDON_PERSIST_DOMAIN environment variable
 * ("cacheline" | "eadr" | "none") overrides detection.  The active domain
 * is reported in poseidon_stats_t.persist_domain. */
heap_t *poseidon_init(const char *heap_path, size_t heap_size);

/* Message describing the calling thread's most recent poseidon_init
 * failure, or NULL when its last poseidon_init succeeded.  The pointer is
 * valid until the thread's next poseidon_init call. */
const char *poseidon_last_error(void);

/* Typed error codes (mirrors poseidon::ErrorCode in common/error.hpp). */
#define POSEIDON_OK 0
#define POSEIDON_ERR_IO 1
#define POSEIDON_ERR_INVALID_ARGUMENT 2
#define POSEIDON_ERR_NOT_A_POOL 3
#define POSEIDON_ERR_WRONG_VERSION 4
#define POSEIDON_ERR_TRUNCATED 5
#define POSEIDON_ERR_CORRUPT_SUPERBLOCK 6
#define POSEIDON_ERR_CORRUPT_SUBHEAP 7
#define POSEIDON_ERR_QUARANTINED 8
#define POSEIDON_ERR_INTERNAL 9
#define POSEIDON_ERR_SHARD_MISMATCH 10
/* Another live process (or this one) holds the heap's exclusive lock. */
#define POSEIDON_ERR_HEAP_BUSY 11

/* Code classifying the calling thread's most recent poseidon_init failure
 * (POSEIDON_ERR_*), or POSEIDON_OK when its last poseidon_init succeeded.
 * Same lifetime rules as poseidon_last_error(). */
int poseidon_error_code(void);

/* Deinitialize a Poseidon heap. */
void poseidon_finish(heap_t *heap);

/* Allocate an NVMM space with a requested size; null pointer on failure. */
nvmptr_t poseidon_alloc(heap_t *heap, size_t sz);

/* Transactionally allocate memory; is_end denotes whether this is the last
 * allocation in the transaction (commit point). */
nvmptr_t poseidon_tx_alloc(heap_t *heap, size_t sz, bool is_end);

/* Commit the calling thread's open transaction without allocating
 * (truncates the micro log); no-op when no transaction is open.  Lets C
 * code order allocate -> initialize -> link -> commit. */
void poseidon_tx_commit(heap_t *heap);

/* Deallocate an NVMM space pointed to by ptr.  Invalid and double frees
 * are detected and ignored (returns nonzero FreeResult; 0 = ok). */
int poseidon_free(heap_t *heap, nvmptr_t ptr);

/* Convert an NVMM pointer to a raw pointer (NULL if unknown heap). */
void *poseidon_get_rawptr(nvmptr_t ptr);

/* Convert a raw pointer to an NVMM pointer (null if not in any heap). */
nvmptr_t poseidon_get_nvmptr(void *p);

/* Get/set the pointer of the root object. */
nvmptr_t poseidon_get_root(heap_t *heap);
void poseidon_set_root(heap_t *heap, nvmptr_t ptr);

/* Heap statistics (occupancy + mechanism counters).
 *
 * ABI note: this struct only ever grows at the tail (POSEIDON_C_API_VERSION
 * is bumped each time).  poseidon_get_stats() fills the full struct of the
 * header the *library* was built against, so callers must be compiled
 * against the same header — the normal case here, since the libraries are
 * static.  A caller that may be linked against a newer library build must
 * use poseidon_get_stats_sized() instead, which never writes past the size
 * the caller passes. */
typedef struct poseidon_stats {
  uint64_t live_blocks;
  uint64_t free_blocks;
  uint64_t allocated_bytes;
  uint64_t user_capacity;
  uint32_t nsubheaps;
  uint32_t subheaps_materialized;
  uint64_t splits;
  uint64_t merges;
  uint64_t hash_extensions;
  uint64_t hash_shrinks;
  /* Thread-cache counters; all zero unless the heap enables the cache. */
  uint64_t cache_hits;
  uint64_t cache_misses;
  uint64_t cache_flushes;
  uint64_t cache_cached_blocks;
  /* Sub-heaps currently quarantined or mid-repair (degraded service). */
  uint64_t subheaps_quarantined;
  /* NUMA shard set: member pool files, and members out of service. */
  uint32_t nshards;
  uint32_t shards_quarantined;
  /* Active persistence domain: 0 = cacheline flush (ADR), 1 = eADR
   * (fence only), 2 = none (no durability boundary). */
  uint32_t persist_domain;
  uint32_t reserved0; /* keeps the tail 8-byte aligned for future growth */
} poseidon_stats_t;

/* Version of the stats ABI: bumped whenever poseidon_stats_t grows.
 * v1: through cache_cached_blocks; v2: + subheaps_quarantined;
 * v3: + nshards, shards_quarantined; v4: + persist_domain, reserved0. */
#define POSEIDON_C_API_VERSION 4

/* Zero-fills *out when heap is NULL; no-op when out is NULL.  Writes
 * sizeof(poseidon_stats_t) bytes — see the ABI note above. */
void poseidon_get_stats(heap_t *heap, poseidon_stats_t *out);

/* Size-negotiated variant: fills at most out_size bytes of *out (a
 * possibly older, shorter poseidon_stats_t) and never writes past them;
 * fields the caller's struct lacks are simply dropped.  Returns the
 * library's full sizeof(poseidon_stats_t) so callers can detect
 * truncation; 0 when out is NULL or out_size is 0. */
size_t poseidon_get_stats_sized(heap_t *heap, void *out, size_t out_size);

/* Observability exporters (snprintf contract): write up to buf_len bytes
 * of NUL-terminated output into buf and return the number of bytes the
 * full dump needs (excluding the NUL) — a return >= buf_len means the
 * output was truncated; call again with a larger buffer.  Negative on
 * error (NULL heap).  buf may be NULL iff buf_len is 0 (size query). */

/* JSON dump of the heap's metrics registry, occupancy histograms and
 * flight-recorder contents. */
long poseidon_stats_dump(heap_t *heap, char *buf, size_t buf_len);

/* Human-readable flight-recorder dump: the most recent events plus, after
 * a crash, the previous session's surviving post-mortem events. */
long poseidon_flight_dump(heap_t *heap, char *buf, size_t buf_len);

/* Verify-and-repair pass over every materialized sub-heap: broken ones are
 * rebuilt from surviving block records (committed allocations preserved);
 * unrecoverable ones are quarantined but the heap keeps serving from the
 * rest.  Safe on a live heap. */
typedef struct poseidon_fsck_report {
  uint32_t checked;             /* sub-heaps examined */
  uint32_t clean;               /* passed verification untouched */
  uint32_t repaired;            /* rebuilt and returned to service */
  uint32_t quarantined;         /* taken (or left) out of service */
  uint64_t records_dropped;     /* invalid/overlapping records discarded */
  uint64_t records_synthesized; /* gap-filling records fabricated */
} poseidon_fsck_report_t;

/* Returns 0 on success (out may be NULL); nonzero POSEIDON_ERR_* on a NULL
 * heap or internal failure. */
int poseidon_fsck(heap_t *heap, poseidon_fsck_report_t *out);

/* Online snapshot: copy the live heap into dst_dir as an openable,
 * cleanly-closed image plus a MANIFEST (one consistent cut; writers keep
 * serving).  A crash mid-snapshot leaves a directory poseidon_open refuses
 * with POSEIDON_ERR_NOT_A_POOL. */
typedef struct poseidon_snapshot_report {
  uint32_t incremental; /* 1 when taken by poseidon_snapshot_incremental */
  uint32_t shards;      /* shard images written */
  uint64_t pages_copied;
  uint64_t bytes_copied;
} poseidon_snapshot_report_t;

/* Returns 0 on success (out may be NULL); POSEIDON_ERR_INVALID_ARGUMENT on
 * a NULL heap/path or a read-only heap; POSEIDON_ERR_IO on copy failure. */
int poseidon_snapshot(heap_t *heap, const char *dst_dir,
                      poseidon_snapshot_report_t *out);

/* Update the snapshot at dst_dir in place, copying only pages dirtied since
 * its MANIFEST was written.  Fails with POSEIDON_ERR_INVALID_ARGUMENT when
 * the live dirty tracker cannot prove that baseline (process restarted,
 * snapshotted elsewhere since, ...) — take a full snapshot then. */
int poseidon_snapshot_incremental(heap_t *heap, const char *dst_dir,
                                  poseidon_snapshot_report_t *out);

/* Mark [p, p+len) dirty for the incremental tracker — the escape hatch for
 * user-data stores the application never pushes through a persist. */
void poseidon_note_write(heap_t *heap, const void *p, size_t len);

#ifdef __cplusplus
}
#endif
