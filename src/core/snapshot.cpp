// Online snapshots + incremental backup (DESIGN.md "Snapshots &
// incremental backup").
//
// Protocol (one consistent cut across the shard set):
//
//   1. QUIESCE every shard — admin mutex, then every ready sub-heap's
//      spinlock, then a clean-close-style seal (checksums + seal_state)
//      WITHOUT clearing the owner.  tx mutexes are deliberately NOT taken:
//      an open transaction's micro log rides into the image and recovery
//      at snapshot-open frees its uncommitted allocations, exactly the
//      crash semantics the logs exist for.
//   2. COPY shards serially, resuming each right after its own copy, so
//      writers on already-copied shards keep serving while later shards
//      copy.  The ladder is FICLONE (reflink, instant on supporting
//      filesystems) -> copy_file_range -> read()+write().  The image gets
//      its owner record zeroed (it IS a clean close, for the copy) and the
//      head member's magic zeroed until commit.
//   3. COMMIT — manifest written tmp+rename, then the head magic restored.
//      A crash anywhere before the restore leaves a directory that
//      Heap::open refuses with kNotAPool.
//
// Incremental: every Pool feeds a pmem::PageMap through the persistence
// barriers; harvest() under quiesce yields exactly the pages made durable
// since the previous harvest.  A manifest's (pm_epoch, pm_gen) is the
// proof handle — the live tracker must still hold both, or the window
// between "then" and "now" is not the bitmap's accumulation window and a
// full snapshot is demanded instead.

#include <fcntl.h>
#include <sys/ioctl.h>
#include <sys/stat.h>
#include <unistd.h>

#ifdef __linux__
#include <linux/fs.h>  // FICLONE
#endif

#include <algorithm>
#include <cerrno>
#include <cinttypes>
#include <cstddef>
#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "common/error.hpp"
#include "core/heap.hpp"
#include "core/snapshot.hpp"
#include "pmem/crashpoint.hpp"
#include "pmem/fault_inject.hpp"
#include "pmem/page_map.hpp"
#include "pmem/retry.hpp"

namespace poseidon::core {

namespace {

[[noreturn]] void throw_io(const std::string& what) {
  throw Error(ErrorCode::kIo, what, errno);
}

std::string path_basename(const std::string& p) {
  const auto pos = p.find_last_of('/');
  return pos == std::string::npos ? p : p.substr(pos + 1);
}

// Same range as fsck.cpp's seal checksums: the active hash levels are
// contiguous from hash_off.
std::uint64_t active_hash_csum(const std::byte* heap_base,
                               const SubheapMeta& m) noexcept {
  return csum_bytes(heap_base + m.hash_off,
                    level_offset(m.level0_slots, m.levels_active));
}

struct Fd {
  int fd = -1;
  ~Fd() {
    if (fd >= 0) ::close(fd);
  }
  explicit operator bool() const noexcept { return fd >= 0; }
};

void fsync_or_throw(int fd, const std::string& what) {
  if (pmem::retry_eintr([&] { return ::fsync(fd); }) != 0) {
    throw_io("fsync " + what);
  }
}

void fsync_dir(const std::string& dir) {
  Fd d{::open(dir.c_str(), O_RDONLY | O_DIRECTORY)};
  if (!d) throw_io("open dir " + dir);
  fsync_or_throw(d.fd, dir);
}

void pwrite_all(int fd, const void* buf, std::size_t len, off_t off,
                const std::string& what) {
  const char* p = static_cast<const char*>(buf);
  while (len > 0) {
    const ssize_t n = ::pwrite(fd, p, len, off);
    if (n < 0) {
      if (errno == EINTR) continue;
      throw_io("pwrite " + what);
    }
    p += n;
    off += n;
    len -= static_cast<std::size_t>(n);
  }
}

void pread_all(int fd, void* buf, std::size_t len, off_t off,
               const std::string& what) {
  char* p = static_cast<char*>(buf);
  while (len > 0) {
    const ssize_t n = ::pread(fd, p, len, off);
    if (n < 0) {
      if (errno == EINTR) continue;
      throw_io("pread " + what);
    }
    if (n == 0) throw Error(ErrorCode::kTruncated, what + ": short read");
    p += n;
    off += n;
    len -= static_cast<std::size_t>(n);
  }
}

// FICLONE -> copy_file_range -> read/write.  Returns after the whole file
// is copied; the caller fsyncs.
void copy_shard_file(int src, int dst, std::uint64_t size,
                     const std::string& what) {
#ifdef FICLONE
  if (::ioctl(dst, FICLONE, src) == 0) return;
  // EOPNOTSUPP/EXDEV/EINVAL: no reflink here; fall through.
#endif
  std::uint64_t off = 0;
  bool cfr_ok = true;
  while (cfr_ok && off < size) {
    off_t in = static_cast<off_t>(off);
    off_t out = static_cast<off_t>(off);
    const ssize_t n =
        ::copy_file_range(src, &in, dst, &out, size - off, 0);
    if (n < 0) {
      if (errno == EINTR) continue;
      cfr_ok = false;  // EXDEV/EOPNOTSUPP/old kernel: buffer fallback
      break;
    }
    if (n == 0) {
      cfr_ok = false;
      break;
    }
    off += static_cast<std::uint64_t>(n);
  }
  if (off >= size) return;
  std::vector<char> buf(1u << 20);
  while (off < size) {
    const std::size_t want =
        static_cast<std::size_t>(std::min<std::uint64_t>(buf.size(),
                                                         size - off));
    pread_all(src, buf.data(), want, static_cast<off_t>(off), what);
    pwrite_all(dst, buf.data(), want, static_cast<off_t>(off), what);
    off += want;
  }
}

// The clean-close owner record (pid 0, checksummed) patched into images.
void patch_owner_cleared(int dst, const std::string& what) {
  OwnerRecord rec{};
  rec.csum = owner_csum(rec);
  pwrite_all(dst, &rec, sizeof rec,
             static_cast<off_t>(offsetof(SuperBlock, owner)), what);
}

std::uint64_t head_page_csum(int fd, bool restore_magic,
                             const std::string& what) {
  alignas(8) char page[kPageSize];
  pread_all(fd, page, sizeof page, 0, what);
  if (restore_magic) {
    // The image's magic is still zeroed at this point; the manifest
    // describes the committed image, whose magic is kSuperMagic.
    const std::uint64_t magic = kSuperMagic;
    std::memcpy(page, &magic, sizeof magic);
  }
  return csum_bytes(page, sizeof page);
}

// The head image's commit gate is BOTH magics: the superblock's and the
// shadow page's.  Zeroing only the superblock magic is not a refusal — the
// open path would decode (and a writable open repair) the config prefix
// from the intact shadow.  With both zeroed, open throws kNotAPool.
void write_commit_gate(const std::string& file, bool committed) {
  Fd fd{::open(file.c_str(), O_WRONLY)};
  if (!fd) throw_io("open " + file);
  const std::uint64_t magic = committed ? kSuperMagic : 0;
  const std::uint64_t shadow = committed ? kShadowMagic : 0;
  pwrite_all(fd.fd, &magic, sizeof magic, 0, file);
  pwrite_all(fd.fd, &shadow, sizeof shadow,
             static_cast<off_t>(super_shadow_off()), file);
  fsync_or_throw(fd.fd, file);
}

void write_manifest(const std::string& dir, const SnapshotManifest& man) {
  std::string text = "poseidon-snapshot v1\n";
  char line[256];
  std::snprintf(line, sizeof line, "kind %s\n",
                man.incremental ? "incremental" : "full");
  text += line;
  std::snprintf(line, sizeof line, "set_id %016" PRIx64 "\n", man.set_id);
  text += line;
  std::snprintf(line, sizeof line, "epoch %016" PRIx64 "\n", man.epoch);
  text += line;
  std::snprintf(line, sizeof line, "shard_count %u\n", man.shard_count);
  text += line;
  for (const ManifestShard& s : man.shards) {
    std::snprintf(line, sizeof line,
                  "shard %u file %s size %" PRIu64 " pm_epoch %016" PRIx64
                  " pm_gen %" PRIu64 " pages %" PRIu64
                  " head_csum %016" PRIx64 "\n",
                  s.index, s.file.c_str(), s.size, s.pm_epoch, s.pm_gen,
                  s.pages_copied, s.head_csum);
    text += line;
  }
  const std::string tmp = dir + "/MANIFEST.tmp";
  const std::string fin = dir + "/MANIFEST";
  {
    Fd fd{::open(tmp.c_str(), O_CREAT | O_TRUNC | O_WRONLY, 0644)};
    if (!fd) throw_io("create " + tmp);
    pwrite_all(fd.fd, text.data(), text.size(), 0, tmp);
    fsync_or_throw(fd.fd, tmp);
  }
  if (::rename(tmp.c_str(), fin.c_str()) != 0) {
    throw_io("rename " + tmp);
  }
  fsync_dir(dir);
}

// Resumes every still-quiesced shard on unwind (reverse order).
struct QuiesceGuard {
  std::vector<PoolShard*> held;
  ~QuiesceGuard() {
    for (auto it = held.rbegin(); it != held.rend(); ++it) {
      if (*it != nullptr) (*it)->snapshot_resume();
    }
  }
  void resume_one(PoolShard* s) noexcept {
    for (auto& h : held) {
      if (h == s) {
        h->snapshot_resume();
        h = nullptr;
        return;
      }
    }
  }
};

}  // namespace

SnapshotManifest read_snapshot_manifest(const std::string& path) {
  Fd fd{::open(path.c_str(), O_RDONLY)};
  if (!fd) throw_io("open manifest " + path);
  struct stat st{};
  if (::fstat(fd.fd, &st) != 0) throw_io("fstat " + path);
  if (st.st_size > 1 << 20) {
    throw Error(ErrorCode::kInvalidArgument, path + ": not a manifest");
  }
  std::string text(static_cast<std::size_t>(st.st_size), '\0');
  pread_all(fd.fd, text.data(), text.size(), 0, path);

  SnapshotManifest man;
  std::size_t pos = 0;
  bool header_ok = false;
  auto bad = [&](const std::string& why) -> Error {
    return Error(ErrorCode::kInvalidArgument, path + ": " + why);
  };
  while (pos < text.size()) {
    std::size_t eol = text.find('\n', pos);
    if (eol == std::string::npos) eol = text.size();
    const std::string line = text.substr(pos, eol - pos);
    pos = eol + 1;
    if (line.empty()) continue;
    if (!header_ok) {
      if (line != "poseidon-snapshot v1") throw bad("not a snapshot manifest");
      header_ok = true;
      continue;
    }
    char kind[16] = {};
    char file[128] = {};
    ManifestShard s;
    if (std::sscanf(line.c_str(), "kind %15s", kind) == 1) {
      man.incremental = std::strcmp(kind, "incremental") == 0;
    } else if (std::sscanf(line.c_str(), "set_id %" SCNx64, &man.set_id) ==
               1) {
    } else if (std::sscanf(line.c_str(), "epoch %" SCNx64, &man.epoch) == 1) {
    } else if (std::sscanf(line.c_str(), "shard_count %u",
                           &man.shard_count) == 1) {
    } else if (std::sscanf(line.c_str(),
                           "shard %u file %127s size %" SCNu64
                           " pm_epoch %" SCNx64 " pm_gen %" SCNu64
                           " pages %" SCNu64 " head_csum %" SCNx64,
                           &s.index, file, &s.size, &s.pm_epoch, &s.pm_gen,
                           &s.pages_copied, &s.head_csum) == 7) {
      s.file = file;
      man.shards.push_back(s);
    } else {
      throw bad("unparsable line: " + line);
    }
  }
  if (!header_ok || man.set_id == 0 || man.shard_count == 0 ||
      man.shards.empty()) {
    throw bad("incomplete manifest");
  }
  return man;
}

// ---- per-shard quiesce / copy ----------------------------------------------

void PoolShard::snapshot_quiesce() {
  admin_mu_.lock();
  snap_locked_.clear();
  for (unsigned i = 0; i < sb_->nsubheaps; ++i) {
    if (!subheap_ready(i)) continue;
    subs_[i]->lock.lock();
    snap_locked_.push_back(i);
  }
  // Seal exactly as a clean close would (fsck.cpp seal_all), minus the
  // owner clear: the copy gets a sealed, validating image while the live
  // heap stays owned.  All of these stores pass through the persistence
  // barriers, so their pages are dirty in the tracker BEFORE the harvest
  // below — the image always carries current seal checksums.
  mpk::WriteWindow w(prot_.get());
  pmem::fault::FaultGuard guard;
  pmem::FlushBatch batch;
  bool all_readable = true;
  for (const unsigned i : snap_locked_) {
    SubheapMeta* m = meta_of(i);
    if (!probe_subheap_readable(i)) {
      all_readable = false;  // poisoned: ship an unsealed (crash-like) image
      continue;
    }
    pmem::nv_store(m->seal_csum_meta, subheap_meta_csum(*m));
    pmem::nv_store(m->seal_csum_hash, active_hash_csum(base(), *m));
    batch.add(&m->seal_csum_meta, 2 * sizeof(std::uint64_t));
  }
  batch.commit();
  if (all_readable) {
    pmem::nv_store_persist(sb_->mutable_csum, super_mutable_csum(*sb_));
    pmem::nv_store_release_persist(sb_->seal_state,
                                   std::uint64_t{kSealSealed});
  }
}

void PoolShard::snapshot_resume() noexcept {
  {
    // Drop the seal while still holding every lock: the store dirties the
    // superblock page AFTER the harvest, so the next incremental recopies
    // it — and the source is back to normal "live heap" state before any
    // writer can observe it.
    mpk::WriteWindow w(prot_.get());
    if (sb_->seal_state == kSealSealed) {
      pmem::nv_store_persist(sb_->seal_state, std::uint64_t{kSealDirty});
    }
  }
  for (auto it = snap_locked_.rbegin(); it != snap_locked_.rend(); ++it) {
    subs_[*it]->lock.unlock();
  }
  snap_locked_.clear();
  admin_mu_.unlock();
}

bool PoolShard::snapshot_baseline(std::uint64_t* epoch,
                                  std::uint64_t* gen) const noexcept {
  const pmem::PageMap* pm = pool_.page_map();
  if (pm == nullptr) return false;
  *epoch = pm->epoch_id();
  *gen = pm->generation();
  return true;
}

PoolShard::SnapCopy PoolShard::snapshot_copy_full(const std::string& dst_file) {
  POSEIDON_CRASH_POINT("snap.copy");
  // Source opened by path: the page cache backing the MAP_SHARED mapping
  // is what read() sees, so the quiesced bytes arrive without an msync.
  Fd src{::open(pool_.path().c_str(), O_RDONLY)};
  if (!src) throw_io("open " + pool_.path());
  Fd dst{::open(dst_file.c_str(), O_CREAT | O_TRUNC | O_RDWR, 0644)};
  if (!dst) throw_io("create " + dst_file);
  copy_shard_file(src.fd, dst.fd, pool_.size(), dst_file);
  patch_owner_cleared(dst.fd, dst_file);
  const bool is_head = sb_->shard_index == 0;
  if (is_head) {
    // Commit gating: the head image stays magic-less (superblock AND
    // shadow — see write_commit_gate) until the manifest is durable;
    // Heap::snapshot restores both last.
    const std::uint64_t zero = 0;
    pwrite_all(dst.fd, &zero, sizeof zero, 0, dst_file);
    pwrite_all(dst.fd, &zero, sizeof zero,
               static_cast<off_t>(super_shadow_off()), dst_file);
  }
  fsync_or_throw(dst.fd, dst_file);

  SnapCopy c;
  c.file_size = pool_.size();
  c.bytes_copied = pool_.size();
  c.pages_copied = (pool_.size() + kPageSize - 1) / kPageSize;
  c.head_csum = head_page_csum(dst.fd, is_head, dst_file);
  // New incremental baseline: clear the bitmap under quiesce.  Everything
  // written from here on (starting with resume's seal drop) accumulates
  // for the next incremental.
  if (pmem::PageMap* pm = pool_.page_map()) {
    pm->harvest(nullptr);
    c.pm_epoch = pm->epoch_id();
    c.pm_gen = pm->generation();
  }
  return c;
}

PoolShard::SnapCopy PoolShard::snapshot_copy_incremental(
    const std::string& dst_file, std::uint64_t want_epoch,
    std::uint64_t want_gen) {
  pmem::PageMap* pm = pool_.page_map();
  if (pm == nullptr || pm->epoch_id() != want_epoch ||
      pm->generation() != want_gen) {
    throw Error(ErrorCode::kInvalidArgument,
                pool_.path() +
                    ": dirty tracker cannot prove the manifest baseline "
                    "(restarted, untracked, or snapshotted elsewhere since); "
                    "take a full snapshot");
  }
  POSEIDON_CRASH_POINT("snap.copy");
  Fd src{::open(pool_.path().c_str(), O_RDONLY)};
  if (!src) throw_io("open " + pool_.path());
  Fd dst{::open(dst_file.c_str(), O_RDWR)};
  if (!dst) {
    throw Error(ErrorCode::kInvalidArgument,
                dst_file + ": base snapshot image missing", errno);
  }
  struct stat st{};
  if (::fstat(dst.fd, &st) != 0) throw_io("fstat " + dst_file);
  if (static_cast<std::uint64_t>(st.st_size) != pool_.size()) {
    throw Error(ErrorCode::kTruncated,
                dst_file + ": base image size disagrees with the shard");
  }

  std::vector<std::uint32_t> pages;
  pm->harvest(&pages);
  const bool is_head = sb_->shard_index == 0;
  alignas(8) char buf[kPageSize];
  SnapCopy c;
  c.file_size = pool_.size();
  for (const std::uint32_t idx : pages) {
    const off_t off = static_cast<off_t>(idx) * kPageSize;
    const std::size_t len = static_cast<std::size_t>(
        std::min<std::uint64_t>(kPageSize, pool_.size() - off));
    pread_all(src.fd, buf, len, off, pool_.path());
    if (idx == 0) {
      // Page 0 carries the live owner record and the real magic; the image
      // must show a clean close and stay uncommitted until the manifest
      // lands (Heap::snapshot_incremental dropped the dst gate up front).
      OwnerRecord rec{};
      rec.csum = owner_csum(rec);
      std::memcpy(buf + offsetof(SuperBlock, owner), &rec, sizeof rec);
      if (is_head) std::memset(buf, 0, sizeof(std::uint64_t));
    } else if (is_head && off == static_cast<off_t>(super_shadow_off())) {
      // The shadow page rode into the dirty set: keep its magic down too,
      // or the un-committed image would be repairable from the shadow.
      std::memset(buf, 0, sizeof(std::uint64_t));
    }
    pwrite_all(dst.fd, buf, len, off, dst_file);
    ++c.pages_copied;
    c.bytes_copied += len;
  }
  fsync_or_throw(dst.fd, dst_file);
  c.head_csum = head_page_csum(dst.fd, is_head, dst_file);
  c.pm_epoch = pm->epoch_id();
  c.pm_gen = pm->generation();
  return c;
}

// ---- heap front-end ---------------------------------------------------------

void Heap::note_write(const void* p, std::size_t len) noexcept {
  pmem::pagemap_note(p, len);
}

SnapshotReport Heap::snapshot(const std::string& dst_dir) {
  if (shards_[0]->read_only()) {
    throw Error(ErrorCode::kInvalidArgument,
                path() + ": heap is open read-only (snapshot seals)");
  }
  std::lock_guard<std::mutex> lk(snapshot_mu_);
  metrics_.snapshot_runs.inc();
  if (::mkdir(dst_dir.c_str(), 0755) != 0 && errno != EEXIST) {
    throw_io("mkdir " + dst_dir);
  }

  SnapshotManifest man;
  const ShardLink link = shards_[0]->link();
  man.set_id = link.set_id;
  man.epoch = link.epoch;
  man.shard_count = nshards_;

  SnapshotReport rep;
  {
    // Global cut: every shard quiesced before the first byte is copied.
    QuiesceGuard guard;
    for (unsigned i = 0; i < nshards_; ++i) {
      if (shards_[i] == nullptr) continue;
      shards_[i]->snapshot_quiesce();
      guard.held.push_back(shards_[i].get());
    }
    POSEIDON_CRASH_POINT("snap.quiesce");
    for (unsigned i = 0; i < nshards_; ++i) {
      if (shards_[i] == nullptr) continue;  // quarantined: absent from image
      const std::string file = path_basename(shard_path(i));
      const PoolShard::SnapCopy c =
          shards_[i]->snapshot_copy_full(dst_dir + "/" + file);
      // Early release: this shard serves again while later shards copy.
      guard.resume_one(shards_[i].get());
      ManifestShard ms;
      ms.index = i;
      ms.file = file;
      ms.size = c.file_size;
      ms.pm_epoch = c.pm_epoch;
      ms.pm_gen = c.pm_gen;
      ms.pages_copied = c.pages_copied;
      ms.head_csum = c.head_csum;
      man.shards.push_back(ms);
      rep.pages_copied += c.pages_copied;
      rep.bytes_copied += c.bytes_copied;
      ++rep.shards;
      metrics_.snapshot_pages_copied.inc(c.pages_copied);
      metrics_.snapshot_bytes_copied.inc(c.bytes_copied);
      shards_[i]->note_flight(obs::FlightOp::kSnapshot, c.pages_copied);
    }
  }
  POSEIDON_CRASH_POINT("snap.manifest");
  write_manifest(dst_dir, man);
  // Commit point: the head image becomes openable only now.
  write_commit_gate(dst_dir + "/" + path_basename(shard_path(0)), true);
  rep.manifest_path = dst_dir + "/MANIFEST";
  return rep;
}

SnapshotReport Heap::snapshot_incremental(const std::string& dst_dir,
                                          const std::string& since_manifest) {
  if (shards_[0]->read_only()) {
    throw Error(ErrorCode::kInvalidArgument,
                path() + ": heap is open read-only (snapshot seals)");
  }
  std::lock_guard<std::mutex> lk(snapshot_mu_);
  const SnapshotManifest base = read_snapshot_manifest(since_manifest);
  const ShardLink link = shards_[0]->link();
  if (base.set_id != link.set_id || base.epoch != link.epoch) {
    throw Error(ErrorCode::kInvalidArgument,
                since_manifest + ": manifest describes a different heap");
  }
  if (base.shard_count != nshards_) {
    throw Error(ErrorCode::kShardMismatch,
                since_manifest + ": manifest shard count disagrees");
  }
  // Prove every baseline BEFORE touching the destination: a doomed
  // incremental must not un-commit a good base image.  snapshot_mu_ is
  // held, so the generations cannot move under us (only snapshots harvest).
  std::vector<const ManifestShard*> entry(nshards_, nullptr);
  for (const ManifestShard& s : base.shards) {
    if (s.index < nshards_) entry[s.index] = &s;
  }
  for (unsigned i = 0; i < nshards_; ++i) {
    if (shards_[i] == nullptr) continue;
    if (entry[i] == nullptr) {
      throw Error(ErrorCode::kShardMismatch,
                  since_manifest + ": shard " + std::to_string(i) +
                      " missing from the base manifest");
    }
    std::uint64_t ep = 0, gen = 0;
    if (!shards_[i]->snapshot_baseline(&ep, &gen) ||
        ep != entry[i]->pm_epoch || gen != entry[i]->pm_gen) {
      throw Error(ErrorCode::kInvalidArgument,
                  shard_path(i) +
                      ": dirty tracker cannot prove the manifest baseline "
                      "(restarted, untracked, or snapshotted elsewhere "
                      "since); take a full snapshot");
    }
  }
  metrics_.snapshot_runs.inc();

  SnapshotManifest man;
  man.incremental = true;
  man.set_id = link.set_id;
  man.epoch = link.epoch;
  man.shard_count = nshards_;

  // Un-commit the destination before the first patch: a crash mid-update
  // must leave a refused directory, never a half-patched "valid" one.
  write_commit_gate(dst_dir + "/" + entry[0]->file, false);

  SnapshotReport rep;
  rep.incremental = true;
  {
    QuiesceGuard guard;
    for (unsigned i = 0; i < nshards_; ++i) {
      if (shards_[i] == nullptr) continue;
      shards_[i]->snapshot_quiesce();
      guard.held.push_back(shards_[i].get());
    }
    POSEIDON_CRASH_POINT("snap.quiesce");
    for (unsigned i = 0; i < nshards_; ++i) {
      if (shards_[i] == nullptr) continue;
      const PoolShard::SnapCopy c = shards_[i]->snapshot_copy_incremental(
          dst_dir + "/" + entry[i]->file, entry[i]->pm_epoch,
          entry[i]->pm_gen);
      guard.resume_one(shards_[i].get());
      ManifestShard ms = *entry[i];
      ms.pm_epoch = c.pm_epoch;
      ms.pm_gen = c.pm_gen;
      ms.pages_copied = c.pages_copied;
      ms.head_csum = c.head_csum;
      man.shards.push_back(ms);
      rep.pages_copied += c.pages_copied;
      rep.bytes_copied += c.bytes_copied;
      ++rep.shards;
      metrics_.snapshot_pages_copied.inc(c.pages_copied);
      metrics_.snapshot_bytes_copied.inc(c.bytes_copied);
      shards_[i]->note_flight(obs::FlightOp::kSnapshot, c.pages_copied);
    }
  }
  POSEIDON_CRASH_POINT("snap.manifest");
  write_manifest(dst_dir, man);
  write_commit_gate(dst_dir + "/" + entry[0]->file, true);
  rep.manifest_path = dst_dir + "/MANIFEST";
  return rep;
}

}  // namespace poseidon::core
