// Physical undo logging (paper §4.5, §5.2).
//
// Before the first in-place mutation of any metadata range within an
// operation, the original bytes are appended to the undo log and persisted.
// Commit truncates the log by bumping its generation (one persisted 8-byte
// store).  If a crash interrupts the operation, recovery finds valid
// entries (matching generation + checksum) and restores them newest-first,
// so the oldest logged value — the pre-operation state — wins.  Replay is
// idempotent: it only rewrites ranges with their logged contents.
#pragma once

#include <cstddef>
#include <cstdint>

#include "core/layout.hpp"
#include "obs/metrics.hpp"

namespace poseidon::core {

// Cursor over a fixed-capacity undo log.  One live UndoLogger per
// operation; the sub-heap lock serializes access to the underlying log.
class UndoLogger {
 public:
  // `heap_base` anchors meta_off so replay works at any mapping address.
  // `enabled=false` turns logging off (ablation: unsafe mode).  `metrics`
  // (optional) receives save/commit counts and commit latency.
  UndoLogger(std::uint64_t* gen, UndoEntry* entries, std::size_t cap,
             std::byte* heap_base, bool enabled,
             obs::Metrics* metrics = nullptr) noexcept
      : gen_(gen), entries_(entries), cap_(cap), heap_base_(heap_base),
        enabled_(enabled), metrics_(metrics) {}

  template <std::size_t Cap>
  UndoLogger(UndoLogT<Cap>& log, std::byte* heap_base, bool enabled,
             obs::Metrics* metrics = nullptr) noexcept
      : UndoLogger(&log.gen, log.entries, Cap, heap_base, enabled, metrics) {}

  UndoLogger(const UndoLogger&) = delete;
  UndoLogger& operator=(const UndoLogger&) = delete;

  // Save the current contents of [addr, addr+len); len <= kUndoDataMax.
  // The entry is written back (clwb) but NOT fenced: callers group the
  // saves of one step and call seal() once before the first in-place
  // mutation, which is when the entries must be durable.
  void save(const void* addr, std::size_t len);

  // Fence any pending saves.  Must be called after the last save() of a
  // step and before the first nv_store to a saved range.
  void seal() noexcept;

  // Convenience: save an object.
  template <typename T>
  void save_obj(const T& obj) {
    static_assert(sizeof(T) <= kUndoDataMax);
    save(&obj, sizeof(T));
  }

  // Commit: truncate the log (generation bump, persisted).
  void commit() noexcept;

  // Abort: restore every saved range (newest-first) and truncate.
  // Used for clean internal aborts (e.g. out of memory mid-split).
  void rollback() noexcept;

  std::size_t used() const noexcept { return used_; }

  // Recovery entry point: restore any valid entries left in `log` and
  // truncate it.  Safe to call repeatedly / on an empty log.
  static void replay(std::uint64_t* gen, UndoEntry* entries, std::size_t cap,
                     std::byte* heap_base) noexcept;

  template <std::size_t Cap>
  static void replay(UndoLogT<Cap>& log, std::byte* heap_base) noexcept {
    replay(&log.gen, log.entries, Cap, heap_base);
  }

  static std::uint32_t checksum(const UndoEntry& e) noexcept;

 private:
  std::uint64_t* gen_;
  UndoEntry* entries_;
  std::size_t cap_;
  std::byte* heap_base_;
  bool enabled_;
  obs::Metrics* metrics_ = nullptr;
  bool pending_ = false;  // saves flushed but not yet fenced
  std::size_t used_ = 0;
};

}  // namespace poseidon::core
