// Persistent pointer (paper §4.6): 8-byte heap id, 2-byte sub-heap id,
// 6-byte offset within the sub-heap's user region.  Valid across
// application and system restarts regardless of where the pool is mapped;
// converted to/from raw pointers via the heap registry.
#pragma once

#include <cstdint>

namespace poseidon::core {

struct NvPtr {
  std::uint64_t heap_id = 0;           // 0 = null
  std::uint64_t packed = 0;            // sub:16 (high) | offset:48 (low)

  static constexpr std::uint64_t kOffsetBits = 48;
  static constexpr std::uint64_t kOffsetMask = (1ull << kOffsetBits) - 1;

  static constexpr NvPtr null() noexcept { return {}; }

  static constexpr NvPtr make(std::uint64_t heap_id, std::uint16_t subheap,
                              std::uint64_t offset) noexcept {
    return {heap_id,
            (static_cast<std::uint64_t>(subheap) << kOffsetBits) |
                (offset & kOffsetMask)};
  }

  constexpr bool is_null() const noexcept { return heap_id == 0; }
  constexpr std::uint16_t subheap() const noexcept {
    return static_cast<std::uint16_t>(packed >> kOffsetBits);
  }
  constexpr std::uint64_t offset() const noexcept { return packed & kOffsetMask; }

  friend constexpr bool operator==(const NvPtr&, const NvPtr&) = default;
};

static_assert(sizeof(NvPtr) == 16, "paper mandates 16-byte persistent pointers");

}  // namespace poseidon::core
