#include "core/c_api.h"

#include <algorithm>
#include <cstring>
#include <exception>
#include <memory>
#include <string>

#include "common/error.hpp"
#include "core/heap.hpp"
#include "core/registry.hpp"
#include "obs/exporter.hpp"

using poseidon::core::Heap;
using poseidon::core::NvPtr;

// The opaque handle owns the C++ heap.
struct poseidon_heap {
  std::unique_ptr<Heap> impl;
};

namespace {

NvPtr to_cpp(nvmptr_t p) noexcept { return NvPtr{p.heap_id, p.packed}; }
nvmptr_t to_c(NvPtr p) noexcept { return nvmptr_t{p.heap_id, p.packed}; }

// Most recent poseidon_init failure on this thread; empty = no error.
thread_local std::string tl_last_error;
thread_local int tl_last_code = POSEIDON_OK;

}  // namespace

extern "C" {

heap_t *poseidon_init(const char *heap_path, size_t heap_size) {
  tl_last_error.clear();
  tl_last_code = POSEIDON_OK;
  if (heap_path == nullptr) {
    tl_last_error = "heap_path is null";
    tl_last_code = POSEIDON_ERR_INVALID_ARGUMENT;
    return nullptr;
  }
  try {
    auto h = Heap::open_or_create(heap_path, heap_size);
    return new poseidon_heap{std::move(h)};
  } catch (const poseidon::Error &e) {
    tl_last_error = e.what();
    tl_last_code = static_cast<int>(e.poseidon_code());
    return nullptr;
  } catch (const std::invalid_argument &e) {
    tl_last_error = e.what();
    tl_last_code = POSEIDON_ERR_INVALID_ARGUMENT;
    return nullptr;
  } catch (const std::exception &e) {
    tl_last_error = e.what();
    if (tl_last_error.empty()) tl_last_error = "unknown error";
    tl_last_code = POSEIDON_ERR_INTERNAL;
    return nullptr;
  }
}

const char *poseidon_last_error(void) {
  return tl_last_error.empty() ? nullptr : tl_last_error.c_str();
}

int poseidon_error_code(void) { return tl_last_code; }

void poseidon_finish(heap_t *heap) { delete heap; }

nvmptr_t poseidon_alloc(heap_t *heap, size_t sz) {
  if (heap == nullptr) return nvmptr_null();
  return to_c(heap->impl->alloc(sz));
}

nvmptr_t poseidon_tx_alloc(heap_t *heap, size_t sz, bool is_end) {
  if (heap == nullptr) return nvmptr_null();
  return to_c(heap->impl->tx_alloc(sz, is_end));
}

void poseidon_tx_commit(heap_t *heap) {
  if (heap == nullptr) return;
  heap->impl->tx_commit();
}

int poseidon_free(heap_t *heap, nvmptr_t ptr) {
  if (heap == nullptr) {
    return static_cast<int>(poseidon::core::FreeResult::kInvalidPointer);
  }
  return static_cast<int>(heap->impl->free(to_cpp(ptr)));
}

void *poseidon_get_rawptr(nvmptr_t ptr) {
  Heap *h = poseidon::core::registry::by_id(ptr.heap_id);
  return h != nullptr ? h->raw(to_cpp(ptr)) : nullptr;
}

nvmptr_t poseidon_get_nvmptr(void *p) {
  Heap *h = poseidon::core::registry::by_address(p);
  return h != nullptr ? to_c(h->from_raw(p)) : nvmptr_null();
}

nvmptr_t poseidon_get_root(heap_t *heap) {
  if (heap == nullptr) return nvmptr_null();
  return to_c(heap->impl->root());
}

void poseidon_set_root(heap_t *heap, nvmptr_t ptr) {
  if (heap == nullptr) return;
  heap->impl->set_root(to_cpp(ptr));
}

void poseidon_get_stats(heap_t *heap, poseidon_stats_t *out) {
  if (out == nullptr) return;
  (void)poseidon_get_stats_sized(heap, out, sizeof(*out));
}

size_t poseidon_get_stats_sized(heap_t *heap, void *out, size_t out_size) {
  if (out == nullptr || out_size == 0) return 0;
  // Fill a full current-ABI struct locally, then copy only the prefix the
  // caller's (possibly older, shorter) struct has room for.
  poseidon_stats_t full;
  std::memset(&full, 0, sizeof(full));
  if (heap != nullptr) {
    const auto s = heap->impl->stats();
    full.live_blocks = s.live_blocks;
    full.free_blocks = s.free_blocks;
    full.allocated_bytes = s.allocated_bytes;
    full.user_capacity = s.user_capacity;
    full.nsubheaps = s.nsubheaps;
    full.subheaps_materialized = s.subheaps_materialized;
    full.splits = s.splits;
    full.merges = s.merges;
    full.hash_extensions = s.hash_extensions;
    full.hash_shrinks = s.hash_shrinks;
    full.cache_hits = s.cache_hits;
    full.cache_misses = s.cache_misses;
    full.cache_flushes = s.cache_flushes;
    full.cache_cached_blocks = s.cache_cached_blocks;
    full.subheaps_quarantined = s.subheaps_quarantined;
    full.nshards = s.nshards;
    full.shards_quarantined = s.shards_quarantined;
    full.persist_domain = s.persist_domain;
  }
  std::memcpy(out, &full, std::min(out_size, sizeof(full)));
  return sizeof(full);
}

int poseidon_fsck(heap_t *heap, poseidon_fsck_report_t *out) {
  if (out != nullptr) std::memset(out, 0, sizeof(*out));
  if (heap == nullptr) return POSEIDON_ERR_INVALID_ARGUMENT;
  try {
    const auto rep = heap->impl->fsck();
    if (out != nullptr) {
      out->checked = rep.checked;
      out->clean = rep.clean;
      out->repaired = rep.repaired;
      out->quarantined = rep.quarantined;
      out->records_dropped = rep.records_dropped;
      out->records_synthesized = rep.records_synthesized;
    }
    return POSEIDON_OK;
  } catch (const std::exception &) {
    return POSEIDON_ERR_INTERNAL;
  }
}

static int run_snapshot(heap_t *heap, const char *dst_dir,
                        poseidon_snapshot_report_t *out, bool incremental) {
  if (out != nullptr) std::memset(out, 0, sizeof(*out));
  if (heap == nullptr || dst_dir == nullptr) {
    return POSEIDON_ERR_INVALID_ARGUMENT;
  }
  try {
    const std::string dst(dst_dir);
    const auto rep = incremental
                         ? heap->impl->snapshot_incremental(dst, dst + "/MANIFEST")
                         : heap->impl->snapshot(dst);
    if (out != nullptr) {
      out->incremental = rep.incremental ? 1 : 0;
      out->shards = rep.shards;
      out->pages_copied = rep.pages_copied;
      out->bytes_copied = rep.bytes_copied;
    }
    return POSEIDON_OK;
  } catch (const poseidon::Error &e) {
    return static_cast<int>(e.poseidon_code());
  } catch (const std::exception &) {
    return POSEIDON_ERR_INTERNAL;
  }
}

int poseidon_snapshot(heap_t *heap, const char *dst_dir,
                      poseidon_snapshot_report_t *out) {
  return run_snapshot(heap, dst_dir, out, /*incremental=*/false);
}

int poseidon_snapshot_incremental(heap_t *heap, const char *dst_dir,
                                  poseidon_snapshot_report_t *out) {
  return run_snapshot(heap, dst_dir, out, /*incremental=*/true);
}

void poseidon_note_write(heap_t *heap, const void *p, size_t len) {
  if (heap != nullptr && p != nullptr) heap->impl->note_write(p, len);
}

namespace {

/* Shared snprintf contract: copy `s` into buf (truncating, always NUL-
 * terminated when buf_len > 0) and report the untruncated length. */
long dump_into(const std::string &s, char *buf, size_t buf_len) {
  if (buf != nullptr && buf_len > 0) {
    const size_t n = s.size() < buf_len - 1 ? s.size() : buf_len - 1;
    std::memcpy(buf, s.data(), n);
    buf[n] = '\0';
  }
  return static_cast<long>(s.size());
}

}  // namespace

long poseidon_stats_dump(heap_t *heap, char *buf, size_t buf_len) {
  if (heap == nullptr || (buf == nullptr && buf_len != 0)) return -1;
  return dump_into(poseidon::obs::Exporter(*heap->impl).json(), buf, buf_len);
}

long poseidon_flight_dump(heap_t *heap, char *buf, size_t buf_len) {
  if (heap == nullptr || (buf == nullptr && buf_len != 0)) return -1;
  return dump_into(poseidon::obs::Exporter(*heap->impl).text(), buf, buf_len);
}

}  // extern "C"
