#include "core/pool_shard.hpp"

#include <fcntl.h>
#include <sys/stat.h>
#include <unistd.h>

#include <algorithm>
#include <cassert>
#include <cerrno>
#include <cstring>
#include <random>
#include <stdexcept>
#include <vector>

#include "common/bitops.hpp"
#include "common/error.hpp"
#include "common/numa.hpp"
#include "common/topology.hpp"
#include "core/micro_log.hpp"
#include "core/ownership.hpp"
#include "core/thread_cache.hpp"
#include "pmem/crashpoint.hpp"
#include "pmem/fault_inject.hpp"
#include "pmem/persist.hpp"
#include "pmem/retry.hpp"

namespace poseidon::core {

namespace {

constexpr std::uint64_t kMinUserSize = 64 * 1024;

void validate_options(const Options& opts, unsigned nsubheaps) {
  if (opts.level0_slots < kProbeWindow || opts.level0_slots % 256 != 0) {
    throw std::invalid_argument(
        "level0_slots must be a multiple of 256 and >= probe window");
  }
  if (nsubheaps > kMaxSubheaps) {
    throw std::invalid_argument("too many sub-heaps");
  }
}

// Per-thread open-transaction state (paper §5.3).  One open transaction
// per thread; the pinned sub-heap's tx_mu is held until commit.
struct TxState {
  std::uint64_t heap_id = 0;
  const void* owner = nullptr;  // PoolShard instance that pinned the sub-heap
  unsigned sub = 0;
  bool active = false;
};
thread_local TxState tl_tx;

}  // namespace

std::uint64_t random_nonzero_u64() {
  std::random_device rd;
  std::uint64_t id = 0;
  do {
    id = (static_cast<std::uint64_t>(rd()) << 32) ^ rd();
  } while (id == 0);
  return id;
}

std::unique_ptr<PoolShard> PoolShard::create(const std::string& path,
                                             std::uint64_t capacity,
                                             const Options& opts,
                                             unsigned nsubheaps,
                                             const ShardLink& link,
                                             unsigned node,
                                             obs::Metrics* metrics) {
  validate_options(opts, nsubheaps);
  const unsigned nsub = nsubheaps != 0
                            ? nsubheaps
                            : std::min(cpu_count(), kMaxSubheaps);
  const std::uint64_t per = capacity / nsub;
  const std::uint64_t user_size =
      round_up_pow2(per < kMinUserSize ? kMinUserSize : per);
  const Geometry geo = compute_geometry(nsub, user_size, opts.level0_slots);

  pmem::Pool pool = pmem::Pool::create(path, geo.file_size);
  auto* sb = reinterpret_cast<SuperBlock*>(pool.data());
  pmem::nv_memset(sb, 0, sizeof(SuperBlock));
  pmem::nv_store(sb->version, kVersion);
  pmem::nv_store(sb->nsubheaps, nsub);
  pmem::nv_store(sb->heap_id, random_nonzero_u64());
  pmem::nv_store(sb->file_size, geo.file_size);
  pmem::nv_store(sb->meta_size, geo.meta_size);
  pmem::nv_store(sb->subheap_meta_off, geo.subheap_meta_off);
  pmem::nv_store(sb->subheap_meta_stride, geo.subheap_meta_stride);
  pmem::nv_store(sb->hash_region_off, geo.hash_region_off);
  pmem::nv_store(sb->hash_region_stride, geo.hash_region_stride);
  pmem::nv_store(sb->user_region_off, geo.user_region_off);
  pmem::nv_store(sb->user_size, geo.user_size);
  pmem::nv_store(sb->level0_slots, geo.level0_slots);
  pmem::nv_store(sb->levels_max, static_cast<std::uint64_t>(geo.levels_max));
  pmem::nv_store(sb->cache_log_off, geo.cache_log_off);
  pmem::nv_store(sb->cache_log_stride, geo.cache_log_stride);
  pmem::nv_store(sb->cache_slots, std::uint64_t{kCacheSlots});
  pmem::nv_store(sb->flight_off, geo.flight_off);
  pmem::nv_store(sb->flight_stride, geo.flight_stride);
  // Shard header (v5): covered by the config checksum below, so a member
  // can never be quietly re-labelled into another set.
  pmem::nv_store(sb->shard_set_id, link.set_id);
  pmem::nv_store(sb->shard_epoch, link.epoch);
  pmem::nv_store(sb->shard_index, link.index);
  pmem::nv_store(sb->shard_count, link.count);
  // Config checksum + shadow page (v4): computed over the prefix as it
  // will read once magic lands, so build the image in a local buffer.
  unsigned char cfg[kSuperConfigBytes];
  std::memcpy(cfg, sb, kSuperConfigBytes);
  std::memcpy(cfg, &kSuperMagic, sizeof(kSuperMagic));
  const std::uint64_t ccsum = csum_bytes(cfg, kSuperConfigBytes);
  auto* shadow = reinterpret_cast<SuperShadow*>(pool.data() + super_shadow_off());
  pmem::nv_memcpy(shadow->bytes, cfg, kSuperConfigBytes);
  pmem::nv_store(shadow->len, std::uint64_t{kSuperConfigBytes});
  pmem::nv_store(shadow->csum, ccsum);
  pmem::persist(shadow, sizeof(SuperShadow));
  pmem::nv_store_persist(shadow->magic, kShadowMagic);
  pmem::nv_store(sb->config_csum, ccsum);
  pmem::persist(sb, sizeof(SuperBlock));
  // Magic last: a half-created file is never mistaken for a valid heap.
  pmem::nv_store_persist(sb->magic, kSuperMagic);

  return std::unique_ptr<PoolShard>(
      new PoolShard(std::move(pool), opts, node, metrics, false));
}

std::unique_ptr<PoolShard> PoolShard::open(const std::string& path,
                                           const Options& opts,
                                           const ShardLink* expect,
                                           unsigned node,
                                           obs::Metrics* metrics) {
  return open(pmem::Pool::open(path, opts.read_only), opts, expect, node,
              metrics);
}

std::unique_ptr<PoolShard> PoolShard::open(pmem::Pool pool,
                                           const Options& opts,
                                           const ShardLink* expect,
                                           unsigned node,
                                           obs::Metrics* metrics) {
  const bool sb_repaired = validate_superblock(pool);
  const auto* sb = reinterpret_cast<const SuperBlock*>(pool.data());
  if (expect != nullptr) {
    if (sb->shard_set_id != expect->set_id ||
        sb->shard_epoch != expect->epoch ||
        sb->shard_index != expect->index ||
        sb->shard_count != expect->count) {
      throw Error(ErrorCode::kShardMismatch,
                  pool.path() + ": shard header (set " +
                      std::to_string(sb->shard_set_id) + " epoch " +
                      std::to_string(sb->shard_epoch) + " " +
                      std::to_string(sb->shard_index) + "/" +
                      std::to_string(sb->shard_count) +
                      ") does not match its shard set");
    }
  }
  return std::unique_ptr<PoolShard>(
      new PoolShard(std::move(pool), opts, node, metrics, sb_repaired));
}

ShardLink PoolShard::peek(const std::string& path) {
  // pread, never mmap: peeking must not consume mapping-time semantics —
  // emulated media errors (fault::poison_arm) land on the pool's *next*
  // mapping, which belongs to the subsequent open().
  int fd = -1;
  if (const int e = pmem::fault::intercept(pmem::fault::SysOp::kOpen)) {
    errno = e;
  } else {
    fd = ::open(path.c_str(), O_RDONLY);
  }
  if (fd < 0) {
    throw Error(ErrorCode::kIo,
                "open pool file " + path + ": " + std::strerror(errno));
  }
  struct stat st {};
  int stat_rc = -1;
  if (const int e = pmem::fault::intercept(pmem::fault::SysOp::kFstat)) {
    errno = e;
  } else {
    stat_rc = ::fstat(fd, &st);
  }
  if (stat_rc != 0) {
    const int err = errno;
    ::close(fd);
    throw Error(ErrorCode::kIo,
                "stat pool file " + path + ": " + std::strerror(err));
  }
  const std::uint64_t need = super_shadow_off() + sizeof(SuperShadow);
  if (static_cast<std::uint64_t>(st.st_size) < need) {
    ::close(fd);
    throw Error(ErrorCode::kNotAPool,
                path + ": too small to be a Poseidon heap");
  }
  std::vector<unsigned char> buf(need);
  if (!pmem::pread_full(fd, buf.data(), need, 0)) {
    ::close(fd);
    throw Error(ErrorCode::kIo, "read superblock of " + path);
  }
  ::close(fd);
  const auto* sb = reinterpret_cast<const SuperBlock*>(buf.data());
  SuperBlock decoded{};
  if (sb->magic == kSuperMagic && sb->version == kVersion &&
      super_config_csum(*sb) == sb->config_csum) {
    std::memcpy(&decoded, sb, kSuperConfigBytes);
  } else {
    // Decode through the shadow page without repairing in place — the
    // subsequent open() owns the repair and its corruption accounting.
    const auto* shadow =
        reinterpret_cast<const SuperShadow*>(buf.data() + super_shadow_off());
    const bool shadow_ok = shadow->magic == kShadowMagic &&
                           shadow->len == kSuperConfigBytes &&
                           shadow->csum == csum_bytes(shadow->bytes, shadow->len);
    if (shadow_ok) std::memcpy(&decoded, shadow->bytes, kSuperConfigBytes);
    if (!shadow_ok || decoded.magic != kSuperMagic) {
      if (sb->magic != kSuperMagic) {
        throw Error(ErrorCode::kNotAPool, path + ": not a Poseidon heap");
      }
      throw Error(ErrorCode::kCorruptSuperblock,
                  path + ": superblock checksum mismatch and shadow copy "
                         "invalid");
    }
    if (decoded.version != kVersion) {
      throw Error(ErrorCode::kWrongVersion,
                  path + ": layout version " + std::to_string(decoded.version) +
                      " (this build expects " + std::to_string(kVersion) + ")");
    }
  }
  return ShardLink{decoded.shard_set_id, decoded.shard_epoch,
                   decoded.shard_index, decoded.shard_count};
}

PoolShard::PoolShard(pmem::Pool pool, const Options& opts, unsigned node,
                     obs::Metrics* metrics, bool sb_repaired)
    : pool_(std::move(pool)), opts_(opts), node_(node), metrics_(metrics) {
  sb_ = reinterpret_cast<SuperBlock*>(pool_.data());
  // Inspector mode records nothing (the mapping is PROT_READ and volatile
  // rings would only see the inspector's own non-events), but the
  // persistent post-mortem capture below is pure reads and is kept.
  if (pool_.read_only()) opts_.flight = obs::FlightMode::kOff;
  subs_.reserve(sb_->nsubheaps);
  for (unsigned i = 0; i < sb_->nsubheaps; ++i) {
    subs_.push_back(std::make_unique<SubRuntime>());
  }
  // Flight rings come up before recovery: the post-mortem must be captured
  // before anything touches the pool, and recovery itself records events.
  init_flight();
  if (pool_.read_only()) {
    // No repair, no recovery, no caches, no owner stamp, no protection
    // domain (a null domain makes every WriteWindow a no-op): the file is
    // shown exactly as the last writer left it.
    return;
  }
  // Owner takeover (v6): we hold the OFD lock, so any stamped owner record
  // is a previous incarnation that never reached its clean close — count
  // it and record how it died before recovery overwrites the evidence.
  if (sb_->owner.pid != 0) {
    metrics_->owner_takeovers.inc();
    flight(obs::FlightOp::kOwnerTakeover, 0, 0,
           static_cast<std::uint64_t>(classify_owner(sb_->owner)));
  }
  // Checksum validation (and, if needed, scavenge/quarantine) runs before
  // undo replay: recovery must not chew on metadata that corruption has
  // turned into garbage.
  validate_on_open(sb_repaired);
  recover();
  flight(obs::FlightOp::kOpen, 0, 0, sb_->nsubheaps);
  flight(obs::FlightOp::kPersistDomain, 0, 0,
         static_cast<std::uint64_t>(pmem::persist_domain()));
  if (opts_.thread_cache && sb_->cache_slots != 0) {
    caches_.reserve(sb_->cache_slots);
    for (unsigned i = 0; i < sb_->cache_slots; ++i) {
      caches_.push_back(std::make_unique<ThreadCache>(cache_slot(i)));
    }
  }
  // Stamped only after recovery succeeded: an open that throws mid-way
  // leaves the previous record (and its takeover evidence) in place.
  stamp_owner(sb_);
  // Protection engages after recovery so replay does not need a window
  // before the domain exists; recovery itself is single-threaded.
  prot_ = std::make_unique<mpk::ProtectionDomain>(pool_.data(), sb_->meta_size,
                                                  opts_.protect);
}

PoolShard::~PoolShard() {
  // Cached blocks are deliberately NOT flushed: closing without a flush is
  // indistinguishable from a crash, and the next open's recovery drains the
  // cache logs through the validated free path.  This keeps destruction
  // trivially crash-equivalent (and exercises that path constantly).
  if (!pool_.read_only()) seal_all();
  prot_.reset();  // restore plain read-write before unmapping
}

CacheLogSlot* PoolShard::cache_slot(unsigned idx) const noexcept {
  return reinterpret_cast<CacheLogSlot*>(
      base() + sb_->cache_log_off + idx * sb_->cache_log_stride);
}

obs::FlightEvent* PoolShard::pm_flight_slots(unsigned idx) const noexcept {
  return reinterpret_cast<obs::FlightEvent*>(
      base() + sb_->flight_off + idx * sb_->flight_stride);
}

void PoolShard::init_flight() {
#if POSEIDON_OBS_ENABLED
  // Ring labels are heap-global sub-heap indices so event streams merged
  // across shards stay unambiguous.
  const std::uint32_t label_base = sb_->shard_index * sb_->nsubheaps;
  // Post-mortem first: whatever a previous session's persistent rings left
  // behind, captured before recovery or new traffic can overwrite it.
  for (unsigned i = 0; i < sb_->nsubheaps; ++i) {
    const obs::FlightRing prev(pm_flight_slots(i), obs::kFlightRingCap,
                               /*persistent=*/false, label_base + i);
    const auto evs = prev.snapshot();
    postmortem_.insert(postmortem_.end(), evs.begin(), evs.end());
  }
  if (opts_.flight == obs::FlightMode::kOff) return;
  const bool persistent = opts_.flight == obs::FlightMode::kPersistent;
  if (!persistent) {
    // Value-initialized: a volatile ring must start with all seqs zero.
    flight_mem_ = std::make_unique<obs::FlightEvent[]>(
        std::size_t{sb_->nsubheaps} * obs::kFlightRingCap);
  }
  rings_.reserve(sb_->nsubheaps);
  for (unsigned i = 0; i < sb_->nsubheaps; ++i) {
    obs::FlightEvent* slots =
        persistent ? pm_flight_slots(i)
                   : flight_mem_.get() + std::size_t{i} * obs::kFlightRingCap;
    // A persistent ring re-attaches: its head continues after the largest
    // surviving seq, so history is contiguous across sessions.
    rings_.push_back(std::make_unique<obs::FlightRing>(
        slots, obs::kFlightRingCap, persistent, label_base + i));
  }
#endif
}

obs::FlightMode PoolShard::flight_mode() const noexcept {
  return rings_.empty() ? obs::FlightMode::kOff : opts_.flight;
}

std::vector<obs::FlightEvent> PoolShard::flight_events() const {
  std::vector<obs::FlightEvent> all;
  for (const auto& r : rings_) {
    const auto evs = r->snapshot();
    all.insert(all.end(), evs.begin(), evs.end());
  }
  std::sort(all.begin(), all.end(),
            [](const obs::FlightEvent& a, const obs::FlightEvent& b) {
              return a.tsc < b.tsc;
            });
  return all;
}

ThreadCache& PoolShard::cache_for_thread() const noexcept {
  return *caches_[thread_ordinal() % caches_.size()];
}

SubheapMeta* PoolShard::meta_of(unsigned idx) const noexcept {
  return reinterpret_cast<SubheapMeta*>(
      base() + sb_->subheap_meta_off + idx * sb_->subheap_meta_stride);
}

Subheap PoolShard::subheap(unsigned idx) const noexcept {
  return Subheap(meta_of(idx), base(), const_cast<pmem::Pool*>(&pool_),
                 opts_.use_undo_log, opts_.eager_coalesce, metrics_);
}

unsigned PoolShard::pick_subheap() const noexcept {
  switch (opts_.policy) {
    case SubheapPolicy::kPerCpu:
      return current_cpu() % sb_->nsubheaps;
    case SubheapPolicy::kPerThread:
      return thread_ordinal() % sb_->nsubheaps;
    case SubheapPolicy::kFixed0:
      return 0;
  }
  return 0;
}

bool PoolShard::ensure_subheap(unsigned idx) {
  {
    const auto st = pmem::nv_load_acquire(sb_->subheap_state[idx]);
    if (st == kSubheapReady) return true;
    // Quarantined / repairing sub-heaps take no new allocations; only an
    // absent one may be formatted — and never through a read-only mapping.
    if (st != kSubheapAbsent || pool_.read_only()) return false;
  }
  std::lock_guard<std::mutex> lk(admin_mu_);
  {
    const auto st = pmem::nv_load_acquire(sb_->subheap_state[idx]);
    if (st == kSubheapReady) return true;
    if (st != kSubheapAbsent) return false;
  }
  mpk::WriteWindow w(prot_.get());
  const Geometry geo{sb_->file_size,
                     sb_->meta_size,
                     sb_->subheap_meta_off,
                     sb_->subheap_meta_stride,
                     sb_->hash_region_off,
                     sb_->hash_region_stride,
                     sb_->user_region_off,
                     sb_->user_size,
                     sb_->level0_slots,
                     static_cast<std::uint32_t>(sb_->levels_max),
                     sb_->cache_log_off,
                     sb_->cache_log_stride,
                     sb_->flight_off,
                     sb_->flight_stride};
  // Formatting is made atomic by the state flag: a crash mid-format leaves
  // state=absent and the next use re-formats from scratch.
  const unsigned cpu = current_cpu();
  Subheap::format(meta_of(idx), base(), geo, idx, cpu);
  // Paper §4.1: the whole shard lives on one NUMA node (node_), so every
  // sub-heap's pages carry the same placement hint and accesses from the
  // node's CPUs stay local.  Best-effort; a no-op on single-node machines.
  if (!numa_bind_region(base() + sb_->user_region_off + idx * sb_->user_size,
                        sb_->user_size, node_)) {
    metrics_->numa_bind_fails.inc();
    // One flight event per shard on the first refusal — enough to make a
    // misplaced shard diagnosable without flooding the ring.
    if (!numa_bind_failed_.exchange(true, std::memory_order_relaxed)) {
      flight(obs::FlightOp::kNumaBindFail, idx, 0, node_);
    }
  }
  pmem::nv_store_release_persist(sb_->subheap_state[idx], kSubheapReady);
  return true;
}

NvPtr PoolShard::alloc(std::uint64_t size) {
  if (pool_.read_only()) return NvPtr::null();
  if (!caches_.empty() && size != 0 && size <= sb_->user_size) {
    const unsigned cls = std::max(kMinBlockShift, log2_ceil(size));
    if (ThreadCache::cacheable(cls)) {
      ThreadCache& tc = cache_for_thread();
      {
        Guard<Spinlock> g(tc.mu());
        const NvPtr p = tc.pop_locked(cls);
        // Hit path stays bare beyond the two counters: no flight event, no
        // size-class sample — it is the operation the overhead budget is
        // measured against.
        if (!p.is_null()) {
          metrics_->cache_hits.inc();
          return p;
        }
      }
      metrics_->cache_misses.inc();
      const NvPtr p = cache_refill(tc, cls);
      if (!p.is_null()) {
        metrics_->alloc_size_class.add(cls);
        return p;
      }
      // Refill could not pop a single block (class dry everywhere the
      // batch looked, or the log is full): the slow path below still gets
      // to defragment and fall back across sub-heaps.
    }
  }
  const unsigned start = pick_subheap();
  const unsigned attempts = opts_.allow_fallback ? sb_->nsubheaps : 1;
  for (unsigned a = 0; a < attempts; ++a) {
    const unsigned idx = (start + a) % sb_->nsubheaps;
    if (!ensure_subheap(idx)) continue;  // quarantined: serve from the rest
    mpk::WriteWindow w(prot_.get());
    Guard<Spinlock> g(subs_[idx]->lock);
    Subheap sh = subheap(idx);
    if (const auto off = sh.alloc(size)) {
      const unsigned cls = std::max(kMinBlockShift, log2_ceil(size));
      metrics_->alloc_size_class.add(cls);
      flight(obs::FlightOp::kAlloc, idx, static_cast<std::uint16_t>(cls),
             *off);
      return NvPtr::make(sb_->heap_id, static_cast<std::uint16_t>(idx), *off);
    }
  }
  return NvPtr::null();
}

bool PoolShard::tx_active_here() const noexcept {
  return tl_tx.active && tl_tx.owner == this;
}

NvPtr PoolShard::tx_alloc(std::uint64_t size, bool is_end) {
  if (pool_.read_only()) return NvPtr::null();
  TxState& tx = tl_tx;
  if (tx.active && tx.owner != this) {
    if (tx.heap_id != sb_->heap_id) {
      // One open transaction per thread; refuse a second shard's tx (the
      // front-end routes a pinned thread back to its shard first, so this
      // only triggers for a transaction open on a different heap).
      return NvPtr::null();
    }
    // Same persistent heap id but a different PoolShard instance: the
    // pinning object is gone (e.g. a simulated crash destroyed it).  The
    // stale transaction's micro log was (or will be) replayed by recovery,
    // so the thread may simply start fresh.
    tx = TxState{};
  }
  // A transaction pinned before this call may already hold logged
  // allocations, so its commit must run even if this final alloc fails;
  // a transaction both opened and ended here logged nothing on failure.
  const bool was_pinned = tx.active;
  if (!tx.active) {
    // Pin a sub-heap for this transaction: its micro log records the
    // allocation history until commit.  Prefer an uncontended one.
    const unsigned start = pick_subheap();
    for (unsigned a = 0; a < sb_->nsubheaps; ++a) {
      const unsigned idx = (start + a) % sb_->nsubheaps;
      if (!ensure_subheap(idx)) continue;  // never pin a quarantined sub-heap
      if (subs_[idx]->tx_mu.try_lock()) {
        tx = TxState{sb_->heap_id, this, idx, true};
        break;
      }
    }
    if (!tx.active) {
      // Every healthy sub-heap is pinned by another thread: block on the
      // first healthy one (a quarantined sub-heap must never be pinned).
      for (unsigned a = 0; a < sb_->nsubheaps; ++a) {
        const unsigned idx = (start + a) % sb_->nsubheaps;
        if (!ensure_subheap(idx)) continue;
        subs_[idx]->tx_mu.lock();
        tx = TxState{sb_->heap_id, this, idx, true};
        break;
      }
    }
    if (!tx.active) return NvPtr::null();  // the whole shard is quarantined
  }

  NvPtr result = NvPtr::null();
  try {
    {
      mpk::WriteWindow w(prot_.get());
      Guard<Spinlock> g(subs_[tx.sub]->lock);
      Subheap sh = subheap(tx.sub);
      const TxHook hook{true, sb_->heap_id,
                        static_cast<std::uint16_t>(tx.sub)};
      if (const auto off = sh.alloc(size, hook)) {
        result = NvPtr::make(sb_->heap_id, static_cast<std::uint16_t>(tx.sub),
                             *off);
        const unsigned cls = std::max(kMinBlockShift, log2_ceil(size));
        metrics_->alloc_size_class.add(cls);
        flight(obs::FlightOp::kTxAlloc, tx.sub,
               static_cast<std::uint16_t>(cls), *off);
      }
    }
    if (is_end && (was_pinned || !result.is_null())) {
      // An empty single-op transaction (fresh pin, alloc failed) wrote
      // nothing to the micro log: no truncate, and counting it as a
      // commit would inflate tx_commits once per shard the front-end's
      // exhaustion fallback walks.
      POSEIDON_CRASH_POINT("tx.before_commit_truncate");
      {
        mpk::WriteWindow w(prot_.get());
        micro_truncate(meta_of(tx.sub)->micro);
      }
      POSEIDON_CRASH_POINT("tx.after_commit_truncate");
      metrics_->tx_commits.inc();
      flight(obs::FlightOp::kTxCommit, tx.sub, 0, 0);
    }
  } catch (...) {
    // A simulated crash (or any other exception) must not leave the
    // transaction pin behind: the micro log stays non-empty, so recovery
    // reclaims the allocations, exactly as after a real crash.
    subs_[tx.sub]->tx_mu.unlock();
    tx = TxState{};
    throw;
  }
  if (is_end) {
    subs_[tx.sub]->tx_mu.unlock();
    tx = TxState{};
  }
  return result;
}

void PoolShard::tx_commit() {
  TxState& tx = tl_tx;
  if (!tx.active || tx.owner != this) return;
  {
    mpk::WriteWindow w(prot_.get());
    micro_truncate(meta_of(tx.sub)->micro);
  }
  metrics_->tx_commits.inc();
  flight(obs::FlightOp::kTxCommit, tx.sub, 0, 0);
  subs_[tx.sub]->tx_mu.unlock();
  tx = TxState{};
}

void PoolShard::tx_leak_open_transaction_for_test() {
  TxState& tx = tl_tx;
  if (!tx.active || tx.owner != this) return;
  subs_[tx.sub]->tx_mu.unlock();
  tx = TxState{};
}

FreeResult PoolShard::free(NvPtr ptr) {
  if (pool_.read_only() || ptr.is_null() || ptr.heap_id != sb_->heap_id) {
    return FreeResult::kInvalidPointer;
  }
  const unsigned idx = ptr.subheap();
  if (idx >= sb_->nsubheaps) {
    return FreeResult::kInvalidPointer;
  }
  const auto st = pmem::nv_load_acquire(sb_->subheap_state[idx]);
  if (st == kSubheapQuarantined || st == kSubheapRepairing) {
    // Degraded mode: the block's metadata is untrusted, so the free is
    // refused (typed, not silently dropped).  The data stays readable.
    return FreeResult::kQuarantined;
  }
  if (st != kSubheapReady) {
    return FreeResult::kInvalidPointer;
  }
  if (!caches_.empty()) {
    if (const auto r = cache_free(ptr, idx)) {
      return *r;
    }
  }
  mpk::WriteWindow w(prot_.get());
  Guard<Spinlock> g(subs_[idx]->lock);
  Subheap sh = subheap(idx);
  const FreeResult r = sh.free_block(ptr.offset());
  if (r == FreeResult::kOk) {
    flight(obs::FlightOp::kFree, idx, 0, ptr.offset());
  }
  return r;
}

void PoolShard::stamp_owner_tag(NvPtr ptr, std::uint64_t tag) {
  if (pool_.read_only() || ptr.is_null() || ptr.heap_id != sb_->heap_id) return;
  const unsigned idx = ptr.subheap();
  if (idx >= sb_->nsubheaps || !subheap_ready(idx)) return;
  mpk::WriteWindow w(prot_.get());
  Guard<Spinlock> g(subs_[idx]->lock);
  Subheap sh = subheap(idx);
  MemblockRec* rec = sh.table().find(ptr.offset());
  if (rec != nullptr && rec->status == kBlockAllocated) {
    pmem::nv_store(rec->next_free, tag);
  }
}

FreeResult PoolShard::free_if_owner(NvPtr ptr, std::uint32_t nonce32) {
  if (pool_.read_only() || ptr.is_null() || ptr.heap_id != sb_->heap_id) {
    return FreeResult::kInvalidPointer;
  }
  const unsigned idx = ptr.subheap();
  if (idx >= sb_->nsubheaps) return FreeResult::kInvalidPointer;
  const auto st = pmem::nv_load_acquire(sb_->subheap_state[idx]);
  if (st == kSubheapQuarantined || st == kSubheapRepairing) {
    return FreeResult::kQuarantined;
  }
  if (st != kSubheapReady) return FreeResult::kInvalidPointer;
  // No thread-cache leg: the tag check and the free must be one step under
  // the sub-heap lock, or a re-allocation could slip between them.
  mpk::WriteWindow w(prot_.get());
  Guard<Spinlock> g(subs_[idx]->lock);
  Subheap sh = subheap(idx);
  const MemblockRec* rec = sh.table().find(ptr.offset());
  if (rec == nullptr) return FreeResult::kInvalidFree;
  if (rec->status != kBlockAllocated) return FreeResult::kDoubleFree;
  if (static_cast<std::uint32_t>(rec->next_free >> 32) != nonce32) {
    return FreeResult::kInvalidFree;  // freed and re-issued since: not ours
  }
  const FreeResult r = sh.free_block(ptr.offset());
  if (r == FreeResult::kOk) {
    flight(obs::FlightOp::kFree, idx, 0, ptr.offset());
  }
  return r;
}

unsigned PoolShard::reclaim_tagged(const std::uint64_t* tags, unsigned n) {
  if (pool_.read_only() || n == 0) return 0;
  unsigned freed = 0;
  for (unsigned idx = 0; idx < sb_->nsubheaps; ++idx) {
    if (!subheap_ready(idx)) continue;
    std::vector<std::uint64_t> offs;
    mpk::WriteWindow w(prot_.get());
    Guard<Spinlock> g(subs_[idx]->lock);
    Subheap sh = subheap(idx);
    sh.visit_records([&](const MemblockRec& rec) {
      if (rec.status != kBlockAllocated) return;
      for (unsigned t = 0; t < n; ++t) {
        if (rec.next_free == tags[t]) {
          offs.push_back(rec.key - 1);
          break;
        }
      }
    });
    // Free after the walk: free_block rewrites the table being iterated.
    for (const std::uint64_t off : offs) {
      if (sh.free_block(off) == FreeResult::kOk) {
        flight(obs::FlightOp::kFree, idx, 0, off);
        ++freed;
      }
    }
  }
  return freed;
}

unsigned PoolShard::reclaim_orphans(const std::uint64_t* pairs,
                                    unsigned npairs) {
  if (pool_.read_only() || npairs == 0) return 0;
  unsigned freed = 0;
  for (unsigned idx = 0; idx < sb_->nsubheaps; ++idx) {
    if (!subheap_ready(idx)) continue;
    std::vector<std::uint64_t> offs;
    mpk::WriteWindow w(prot_.get());
    Guard<Spinlock> g(subs_[idx]->lock);
    Subheap sh = subheap(idx);
    sh.visit_records([&](const MemblockRec& rec) {
      if (rec.status != kBlockAllocated) return;
      const std::uint64_t tag = rec.next_free;
      if ((tag >> 63) == 0) return;  // no owner tag parked here
      const auto nonce = static_cast<std::uint32_t>(tag >> 32);
      const auto req = static_cast<std::uint32_t>(tag);
      for (unsigned k = 0; k < npairs; ++k) {
        // Sessions complete strictly in FIFO request order, so every req
        // id at or below the watermark was consumed by the (now dead)
        // client; ids past it can never have been handed out.
        if (nonce == static_cast<std::uint32_t>(pairs[2 * k]) &&
            req > static_cast<std::uint32_t>(pairs[2 * k + 1])) {
          offs.push_back(rec.key - 1);
          break;
        }
      }
    });
    // Free after the walk: free_block rewrites the table being iterated.
    for (const std::uint64_t off : offs) {
      if (sh.free_block(off) == FreeResult::kOk) {
        flight(obs::FlightOp::kFree, idx, 0, off);
        ++freed;
      }
    }
  }
  if (freed != 0) flight(obs::FlightOp::kOrphanReclaim, 0, 0, freed);
  return freed;
}

NvPtr PoolShard::cache_refill(ThreadCache& tc, unsigned cls) {
  // Lock order: cache before sub-heap (the only place both are held).
  Guard<Spinlock> g(tc.mu());
  const unsigned room = tc.room_locked(cls);
  if (room == 0) return NvPtr::null();
  const unsigned want = std::min(room, ThreadCache::kRefillBatch);
  const unsigned idx = pick_subheap();
  // Quarantined home sub-heap: skip the batch; the slow path falls back.
  if (!ensure_subheap(idx)) return NvPtr::null();
  std::uint64_t offs[ThreadCache::kRefillBatch];
  Subheap::RefillResult r;
  {
    mpk::WriteWindow w(prot_.get());
    Guard<Spinlock> sg(subs_[idx]->lock);
    Subheap sh = subheap(idx);
    r = sh.alloc_batch(cls, want, offs, [&](std::uint64_t off) {
      tc.refill_append_locked(
          NvPtr::make(sb_->heap_id, static_cast<std::uint16_t>(idx), off));
    });
  }
  if (r.rolled_back || r.n == 0) {
    // The pops never committed (or nothing was popped): erase whatever
    // entries were staged so recovery has nothing stale to chew on.
    tc.refill_abort_locked();
    return NvPtr::null();
  }
  tc.refill_publish_locked(cls);
  // Hand the caller one of the batch; the alloc path already counted this
  // call as a miss, so no hit is recorded for it.
  return tc.pop_locked(cls);
}

std::optional<FreeResult> PoolShard::cache_free(NvPtr ptr, unsigned idx) {
  // Validate first (read-only, under the sub-heap lock but without a write
  // window or undo log) so the cache preserves the paper's invalid- and
  // double-free detection.  A block cached by ANOTHER thread's magazine
  // still reads as allocated here; that cross-thread double free is only
  // caught when the other cache flushes — the metadata never corrupts.
  unsigned cls = 0;
  {
    Guard<Spinlock> g(subs_[idx]->lock);
    const auto c = subheap(idx).classify(ptr.offset());
    if (c.result != FreeResult::kOk) return c.result;
    cls = c.size_class;
  }
  if (!ThreadCache::cacheable(cls)) return std::nullopt;
  ThreadCache& tc = cache_for_thread();
  bool flush = false;
  {
    Guard<Spinlock> g(tc.mu());
    switch (tc.push_locked(ptr, cls)) {
      case ThreadCache::PushResult::kDoubleFree:
        return FreeResult::kDoubleFree;
      case ThreadCache::PushResult::kFull:
        return std::nullopt;  // log exhausted: slow validated free
      case ThreadCache::PushResult::kCached:
        break;
    }
    flush = tc.over_watermark_locked(cls);
  }
  if (flush) cache_flush(tc, cls);
  return FreeResult::kOk;
}

void PoolShard::cache_flush(ThreadCache& tc, unsigned cls) {
  NvPtr ptrs[ThreadCache::kMagazineCap];
  std::uint32_t lis[ThreadCache::kMagazineCap];
  unsigned n = 0;
  {
    Guard<Spinlock> g(tc.mu());
    n = tc.flush_take_locked(cls, ThreadCache::kMagazineCap / 2, ptrs, lis);
  }
  if (n == 0) return;
  // Group by owning sub-heap so each gets one batched (single-commit) free.
  bool done[ThreadCache::kMagazineCap] = {};
  for (unsigned i = 0; i < n; ++i) {
    if (done[i]) continue;
    const unsigned idx = ptrs[i].subheap();
    std::uint64_t offs[ThreadCache::kMagazineCap];
    unsigned cnt = 0;
    for (unsigned j = i; j < n; ++j) {
      if (!done[j] && ptrs[j].subheap() == idx) {
        offs[cnt++] = ptrs[j].offset();
        done[j] = true;
      }
    }
    mpk::WriteWindow w(prot_.get());
    Guard<Spinlock> sg(subs_[idx]->lock);
    (void)subheap(idx).free_batch(offs, cnt);
    flight(obs::FlightOp::kCacheFlush, idx, static_cast<std::uint16_t>(cls),
           cnt);
  }
  metrics_->cache_flushes.inc();
  Guard<Spinlock> g(tc.mu());
  tc.flush_erase_locked(lis, n);
}

void* PoolShard::raw(NvPtr ptr) const noexcept {
  if (ptr.is_null() || ptr.heap_id != sb_->heap_id) return nullptr;
  const unsigned idx = ptr.subheap();
  if (idx >= sb_->nsubheaps || ptr.offset() >= sb_->user_size) return nullptr;
  return base() + sb_->user_region_off + idx * sb_->user_size + ptr.offset();
}

NvPtr PoolShard::from_raw(const void* p) const noexcept {
  if (!contains(p)) return NvPtr::null();
  const auto rel = static_cast<std::uint64_t>(
      static_cast<const std::byte*>(p) - (base() + sb_->user_region_off));
  const unsigned idx = static_cast<unsigned>(rel / sb_->user_size);
  return NvPtr::make(sb_->heap_id, static_cast<std::uint16_t>(idx),
                     rel % sb_->user_size);
}

bool PoolShard::contains(const void* p) const noexcept {
  const auto* b = static_cast<const std::byte*>(p);
  // Bound by the end of the user data, not file_size: the file tail is
  // padded for huge-page alignment, and an address in that padding would
  // otherwise let from_raw fabricate an NvPtr with an out-of-range
  // sub-heap index.
  return b >= base() + sb_->user_region_off &&
         b < base() + sb_->user_region_off + sb_->nsubheaps * sb_->user_size;
}

std::pair<const void*, std::size_t> PoolShard::user_range() const noexcept {
  return {base() + sb_->user_region_off,
          static_cast<std::size_t>(sb_->nsubheaps * sb_->user_size)};
}

NvPtr PoolShard::root() const noexcept {
  std::lock_guard<std::mutex> lk(admin_mu_);
  return sb_->root;
}

void PoolShard::set_root(NvPtr ptr) {
  if (pool_.read_only()) {
    throw Error(ErrorCode::kInvalidArgument,
                pool_.path() + ": heap is open read-only");
  }
  std::lock_guard<std::mutex> lk(admin_mu_);
  mpk::WriteWindow w(prot_.get());
  // The 16-byte root cannot be stored atomically; undo-log it so a crash
  // mid-update preserves the old root (paper §2.2 requires the root be
  // always recoverable).
  UndoLogger undo(sb_->undo, base(), opts_.use_undo_log, metrics_);
  undo.save_obj(sb_->root);
  POSEIDON_CRASH_POINT("root.after_log");
  pmem::nv_store(sb_->root, ptr);
  pmem::persist(&sb_->root, sizeof(NvPtr));
  POSEIDON_CRASH_POINT("root.before_commit");
  undo.commit();
}

mpk::ProtectMode PoolShard::protect_mode() const noexcept {
  return prot_ != nullptr ? prot_->mode() : mpk::ProtectMode::kNone;
}

HeapStats PoolShard::stats() const {
  HeapStats s;
  s.nsubheaps = sb_->nsubheaps;
  s.user_capacity = user_capacity();
  for (unsigned i = 0; i < sb_->nsubheaps; ++i) {
    const auto st = pmem::nv_load_acquire(sb_->subheap_state[i]);
    if (st == kSubheapQuarantined || st == kSubheapRepairing) {
      ++s.subheaps_quarantined;
      continue;
    }
    if (st != kSubheapReady) continue;
    Guard<Spinlock> g(subs_[i]->lock);
    const SubheapMeta* m = meta_of(i);
    s.live_blocks += m->live_blocks;
    s.free_blocks += m->free_blocks;
    s.allocated_bytes += m->allocated_bytes;
    s.splits += m->stat_splits;
    s.merges += m->stat_merges;
    s.window_merges += m->stat_window_merges;
    s.hash_extensions += m->stat_extensions;
    s.hash_shrinks += m->stat_shrinks;
    ++s.subheaps_materialized;
  }
  // The metrics-derived cache hit/miss/flush counters are heap-wide (the
  // registry is shared across shards); the front-end fills them in once.
  for (const auto& c : caches_) {
    Guard<Spinlock> g(c->mu());
    const ThreadCache::Stats cs = c->stats_locked();
    s.cache_cached_blocks += cs.cached_blocks;
    // Cached blocks read as allocated in the sub-heap counters but are
    // really available inventory; report them as free.
    s.live_blocks -= cs.cached_blocks;
    s.free_blocks += cs.cached_blocks;
    s.allocated_bytes -= cs.cached_bytes;
  }
  return s;
}

std::pair<void*, std::size_t> PoolShard::metadata_region() const noexcept {
  return {base(), sb_->meta_size};
}

std::pair<void*, std::size_t> PoolShard::crashsim_region() const noexcept {
  return {base(), sb_->flight_off};
}

bool PoolShard::check_invariants(std::string* why) const {
  for (unsigned i = 0; i < sb_->nsubheaps; ++i) {
    if (!subheap_ready(i)) continue;
    Guard<Spinlock> g(subs_[i]->lock);
    Subheap sh = subheap(i);
    std::string reason;
    if (!sh.check_invariants(&reason)) {
      if (why != nullptr) {
        *why = "subheap " + std::to_string(i) + ": " + reason;
      }
      return false;
    }
  }
  return true;
}

void PoolShard::recover() {
  // Paper §5.8.  Runs before the protection domain exists (plain RW
  // mapping) and before the heap is registered, so it is single-threaded.
  UndoLogger::replay(sb_->undo, base());
  for (unsigned i = 0; i < sb_->nsubheaps; ++i) {
    if (!subheap_ready(i)) continue;
    subheap(i).recover_undo();
    flight(obs::FlightOp::kRecover, i, 0, 0);
  }
  // Micro logs: a non-empty log is an uncommitted transaction; free every
  // address it allocated.  The validated free path makes replay idempotent
  // (already-freed entries are rejected as double frees).
  for (unsigned i = 0; i < sb_->nsubheaps; ++i) {
    if (!subheap_ready(i)) continue;
    MicroLog& micro = meta_of(i)->micro;
    const std::uint64_t n = micro_count(micro);
    for (std::uint64_t k = 0; k < n; ++k) {
      const NvPtr e = micro.entries[k];
      if (e.heap_id != sb_->heap_id || e.subheap() >= sb_->nsubheaps) continue;
      if (!subheap_ready(e.subheap())) continue;
      Subheap sh = subheap(e.subheap());
      (void)sh.free_block(e.offset());
      POSEIDON_CRASH_POINT("recover.after_micro_free");
    }
    if (n != 0) micro_truncate(micro);
  }
  // Cache logs: every logged block was parked in a volatile magazine that
  // died with the crash.  Hand each back through the validated free path
  // (idempotent: already-free entries are rejected) and clear the slot.
  // Slot clears are idempotent (a re-replayed entry bounces off the
  // validated free path), so one fence covers every cleared slot.
  pmem::FlushBatch batch;
  for (unsigned s = 0; s < sb_->cache_slots; ++s) {
    CacheLogSlot* slot = cache_slot(s);
    bool any = false;
    for (std::size_t k = 0; k < kCacheLogCap; ++k) {
      const NvPtr e = slot->entries[k];
      if (e.is_null()) continue;
      any = true;
      if (e.heap_id != sb_->heap_id || e.subheap() >= sb_->nsubheaps) continue;
      if (!subheap_ready(e.subheap())) continue;
      (void)subheap(e.subheap()).free_block(e.offset());
      POSEIDON_CRASH_POINT("recover.after_cache_free");
    }
    if (any) {
      pmem::nv_memset(slot->entries, 0, sizeof(slot->entries));
      batch.add(slot->entries, sizeof(slot->entries));
    }
  }
  batch.commit();
}

}  // namespace poseidon::core
