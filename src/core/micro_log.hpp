// Micro log: the history of addresses handed out by an open transactional
// allocation (paper §4.5, §5.3).  Appended to (and persisted) after each
// poseidon_tx_alloc; truncated at transaction commit (`is_end`).  A
// non-empty micro log at load time means the transaction never committed,
// so recovery frees every logged address — preventing the permanent leak
// the paper describes — and then truncates.  Replay is idempotent because
// `free` validates each address against the memblock hash table.
#pragma once

#include <cstdint>

#include "core/layout.hpp"
#include "obs/metrics.hpp"

namespace poseidon::core {

// Append `ptr`; returns false when the log is full (transaction too large).
// `metrics` (optional) receives the append count and persist latency.
bool micro_append(MicroLog& log, const NvPtr& ptr,
                  obs::Metrics* metrics = nullptr) noexcept;

// Truncate (transaction commit or end of recovery).
void micro_truncate(MicroLog& log) noexcept;

inline std::uint64_t micro_count(const MicroLog& log) noexcept {
  return log.count <= kMicroCap ? log.count : kMicroCap;
}

}  // namespace poseidon::core
