// On-media layout of a Poseidon heap (paper Fig. 4).
//
//   file:  [ SuperBlock | SubheapMeta x N | hash storage x N | cache logs |
//            flight rings x N | user x N ]
//          `----------- metadata region -----------------'
//
// The MPK-protected metadata region is contiguous at the front of the file
// so one protection domain covers all of it.  The per-thread cache logs sit
// between it and the user regions: they are persistent metadata but stay
// writable at all times so the thread-cache fast path never pays a wrpkru
// switch (a scribbled log entry cannot corrupt the allocator — recovery
// validates every entry through the free path).  The per-sub-heap flight
// recorder rings (layout v3, obs/flight_recorder.hpp) follow the cache
// logs for the same reason: recording an event must never open a write
// window, and a scribbled ring only corrupts diagnostics, never allocator
// state.  User regions follow, page aligned; the file tail is padded up to
// a 2 MiB boundary.
// Every struct here is trivially copyable, fixed width, and stores offsets
// rather than pointers (the pool may map at a different address each run).
#pragma once

#include <cstddef>
#include <cstdint>
#include <type_traits>

#include "common/bitops.hpp"
#include "common/hash.hpp"
#include "core/nvmptr.hpp"
#include "obs/flight_recorder.hpp"

namespace poseidon::core {

inline constexpr std::uint64_t kSuperMagic = 0x504f534549444f4eull;  // "POSEIDON"
inline constexpr std::uint64_t kSubheapMagic = 0x5355424845415030ull;
inline constexpr std::uint64_t kShadowMagic = 0x504f534549534841ull;  // "POSEISHA"
// v3: flight-recorder ring region carved between cache logs and user data.
// v4: fault-domain hardening — superblock config checksum + shadow page,
//     seal-state checksums over sub-heap metadata, quarantine states.
// v5: NUMA-node pool shards — every file carries a shard header (set id,
//     epoch, index, count) so a shard set refuses to assemble from
//     mismatched or partially-created members.  A single-shard heap is a
//     set of one; the per-file layout is otherwise unchanged from v4.
// v6: process ownership — a checksummed owner record (pid, boot id,
//     start time, heartbeat) between mutable_csum and the super undo log.
//     The OFD lock is the authority on liveness; the record exists so an
//     opener that finds the lock free can tell "clean close" (record
//     cleared) from "previous owner died" (record present, pid dead or
//     boot id changed) and count the takeover.
inline constexpr std::uint32_t kVersion = 6;

inline constexpr std::uint64_t kPageSize = 4096;
// File sizes are rounded up to this so DAX/THP-backed mappings can use
// PMD-size pages; the resulting tail padding holds no data.
inline constexpr std::uint64_t kHugePageSize = 2 * 1024 * 1024;

// Buddy size classes: class c holds blocks of 2^c bytes.
inline constexpr unsigned kMinBlockShift = 5;  // 32 B minimum granularity
inline constexpr unsigned kMaxClasses = 48;

inline constexpr unsigned kMaxSubheaps = 64;
inline constexpr unsigned kMaxHashLevels = 24;
inline constexpr unsigned kProbeWindow = 16;

// Pool shards: one backing file per NUMA node (paper §4.1 manycore story).
// The cap bounds the shard header fields and the routing tables; 16 covers
// every multi-socket box the reproduction targets.
inline constexpr unsigned kMaxShards = 16;

// ---- undo log (physical, checksummed entries) ------------------------------
//
// An entry is valid iff entry.gen == log.gen and its checksum matches;
// truncation is therefore a single persisted 8-byte generation bump.
// Recovery applies valid entries newest-to-oldest so the oldest logged
// value (the pre-operation state) wins.

inline constexpr std::size_t kUndoDataMax = 96;

struct UndoEntry {
  std::uint64_t gen;
  std::uint64_t meta_off;  // byte offset of the saved range from heap base
  std::uint32_t len;
  std::uint32_t csum;
  unsigned char data[kUndoDataMax];
  unsigned char pad[8];
};
static_assert(sizeof(UndoEntry) == 128);

template <std::size_t Cap>
struct UndoLogT {
  std::uint64_t gen;
  UndoEntry entries[Cap];
};

inline constexpr std::size_t kSubheapUndoCap = 1024;
inline constexpr std::size_t kSuperUndoCap = 16;

// ---- micro log (transactional allocation, paper §4.5) ----------------------

inline constexpr std::size_t kMicroCap = 64;

struct MicroLog {
  std::uint64_t count;
  NvPtr entries[kMicroCap];
};
static_assert(sizeof(MicroLog) == 8 + 16 * kMicroCap);

// ---- per-thread cache log --------------------------------------------------
//
// Blocks parked in a thread cache's volatile magazines stay kBlockAllocated
// in the owning sub-heap's metadata; each is additionally recorded in one of
// these fixed per-thread slots (same shape and replay discipline as the
// micro log) so Heap::recover() can drain a cache lost at a crash back to
// the free lists instead of leaking it.  An entry with heap_id 0 is empty.

inline constexpr unsigned kCacheSlots = 64;       // one per thread ordinal slot
inline constexpr std::size_t kCacheLogCap = 512;  // entries per slot

struct CacheLogSlot {
  std::uint64_t reserved0;
  std::uint64_t reserved1;
  NvPtr entries[kCacheLogCap];
};
static_assert(sizeof(CacheLogSlot) == 16 + 16 * kCacheLogCap);

// ---- memblock records (paper §4.4) -----------------------------------------
//
// One record per memory block (allocated or free), stored in the sub-heap's
// multi-level hash table keyed by block offset.  All offsets are byte
// offsets within the sub-heap user region, encoded +1 so 0 means null/empty.

enum BlockStatus : std::uint32_t {
  kBlockFree = 1,
  kBlockAllocated = 2,
};

struct MemblockRec {
  std::uint64_t key;        // block offset + 1; 0 = empty slot
  std::uint32_t size_class; // block size = 1 << size_class
  std::uint32_t status;     // BlockStatus
  std::uint64_t prev_adj;   // left-adjacent block offset + 1 (defrag)
  std::uint64_t next_adj;   // right-adjacent block offset + 1
  std::uint64_t prev_free;  // free-list links, offset + 1
  std::uint64_t next_free;
};
static_assert(sizeof(MemblockRec) == 48);

struct FreeListHead {
  std::uint64_t head;  // offset + 1; 0 = empty
  std::uint64_t tail;
};

// ---- sub-heap metadata ------------------------------------------------------

enum SubheapState : std::uint64_t {
  kSubheapAbsent = 0,
  kSubheapReady = 1,
  // Fault-domain states (v4).  Quarantined: validation or scavenge gave up
  // on this sub-heap — no new allocations, frees rejected with a typed
  // result, user data stays readable.  Repairing: a scavenge rebuild is in
  // flight; if it is interrupted the next open re-runs it (the rebuild is
  // idempotent) instead of trusting half-rebuilt metadata.
  kSubheapQuarantined = 2,
  kSubheapRepairing = 3,
};

struct SubheapMeta {
  std::uint64_t magic;
  std::uint32_t index;
  std::uint32_t preferred_cpu;
  std::uint64_t user_off;    // from heap base
  std::uint64_t user_size;   // power of two
  std::uint64_t hash_off;    // from heap base: start of this sub-heap's levels
  std::uint32_t levels_active;
  std::uint32_t levels_max;
  std::uint64_t level0_slots;
  FreeListHead free_heads[kMaxClasses];
  std::uint64_t level_count[kMaxHashLevels];  // live records per level
  std::uint64_t live_blocks;
  std::uint64_t free_blocks;
  std::uint64_t allocated_bytes;
  // Introspection counters (not crash-consistent; see bump_counters):
  std::uint64_t stat_splits;         // buddy splits performed
  std::uint64_t stat_merges;         // buddy merges (defragmentation)
  std::uint64_t stat_window_merges;  // merges triggered by hash pressure
  std::uint64_t stat_extensions;     // hash levels activated
  std::uint64_t stat_shrinks;        // hash levels punched back
  // Quiesce-point checksums (v4): written at clean close over everything
  // above (seal_csum_meta's own offset bounds the range) and over the
  // active hash levels; meaningful only while the superblock's seal_state
  // is kSealSealed.  The logs below are excluded — they self-validate
  // (generation + per-entry checksums).
  std::uint64_t seal_csum_meta;
  std::uint64_t seal_csum_hash;
  UndoLogT<kSubheapUndoCap> undo;
  MicroLog micro;
};

// ---- owner record (v6) ------------------------------------------------------
//
// Identifies the process that last held the heap's OFD lock.  (pid,
// boot_id, start_time) together name one process incarnation: pid alone is
// reusable, pid+start_time disambiguates reuse within a boot, and boot_id
// catches the record surviving a reboot (where every pid is meaningless).
// heartbeat is a coarse wall-clock stamp refreshed on fsck — diagnostic
// only, never consulted for liveness.

struct OwnerRecord {
  std::uint64_t pid;         // 0 = no owner
  std::uint64_t boot_id;     // FNV of /proc/sys/kernel/random/boot_id
  std::uint64_t start_time;  // /proc/<pid>/stat field 22 (clock ticks)
  std::uint64_t heartbeat;   // seconds since epoch at stamp / last fsck
  std::uint64_t csum;        // over the four fields above
};

inline std::uint64_t owner_csum(const OwnerRecord& o) noexcept {
  return hash_bytes(reinterpret_cast<const char*>(&o),
                    offsetof(OwnerRecord, csum));
}

// ---- superblock -------------------------------------------------------------

struct SuperBlock {
  std::uint64_t magic;
  std::uint32_t version;
  std::uint32_t nsubheaps;
  std::uint64_t heap_id;           // random, nonzero
  std::uint64_t file_size;
  std::uint64_t meta_size;         // MPK-protected prefix length
  std::uint64_t subheap_meta_off;
  std::uint64_t subheap_meta_stride;
  std::uint64_t hash_region_off;
  std::uint64_t hash_region_stride;
  std::uint64_t user_region_off;
  std::uint64_t user_size;         // per sub-heap, power of two
  std::uint64_t level0_slots;
  std::uint64_t levels_max;
  std::uint64_t cache_log_off;     // per-thread cache logs (outside meta_size)
  std::uint64_t cache_log_stride;
  std::uint64_t cache_slots;
  std::uint64_t flight_off;        // per-sub-heap flight rings (outside meta_size)
  std::uint64_t flight_stride;
  // Shard header (v5).  All members of a shard set share shard_set_id,
  // shard_epoch and shard_count; shard_index is this file's position.
  // Open refuses to assemble a set whose members disagree on any of these
  // — a member from an older create (stale epoch) or a different set can
  // never be mixed in silently.
  std::uint64_t shard_set_id;      // random, nonzero, same across members
  std::uint64_t shard_epoch;       // random per create, same across members
  std::uint32_t shard_index;       // 0 = head (holds the root object)
  std::uint32_t shard_count;       // members in the set (1..kMaxShards)
  // Everything above is immutable after create; config_csum covers it
  // (including magic) and a shadow copy lives in the page after the
  // superblock, so a scribbled field is repaired rather than trusted.
  std::uint64_t config_csum;
  NvPtr root;
  std::uint64_t subheap_state[kMaxSubheaps];
  // Quiesce seal (v4): seal_state is kSealSealed only between a clean
  // close and the next open.  While sealed, mutable_csum covers
  // [root, seal_state) and each ready sub-heap's seal_csum_* fields are
  // valid; open re-validates them, then drops the seal before admitting
  // traffic.  A crash (no clean close) leaves the seal dirty and open
  // falls back to plain log-replay recovery, exactly as pre-v4.
  std::uint64_t seal_state;
  std::uint64_t mutable_csum;
  // Owner record (v6).  pid == 0 means no owner (clean close, or never
  // opened).  Stamped after recovery at open, cleared after the seal flip
  // at clean close — so a crash anywhere in between leaves it set and the
  // next opener performs a takeover.  Covered by its own csum (not
  // mutable_csum: it changes while the seal is down) so a torn stamp is
  // detectable rather than trusted.
  OwnerRecord owner;
  UndoLogT<kSuperUndoCap> undo;
};

enum SealState : std::uint64_t {
  kSealDirty = 0,
  kSealSealed = 1,
};

static_assert(std::is_trivially_copyable_v<SuperBlock>);
static_assert(std::is_trivially_copyable_v<SubheapMeta>);
static_assert(std::is_standard_layout_v<SuperBlock>);
static_assert(std::is_standard_layout_v<SubheapMeta>);

// ---- checksums + superblock shadow (v4) ------------------------------------

// FNV-1a over a byte range; cold paths only (seal at close, validate at
// open, scavenge verify).
inline std::uint64_t csum_bytes(const void* p, std::uint64_t n) noexcept {
  return hash_bytes(static_cast<const char*>(p), n);
}

// The immutable config prefix: every field before config_csum.
inline constexpr std::uint64_t kSuperConfigBytes =
    offsetof(SuperBlock, config_csum);

inline std::uint64_t super_config_csum(const SuperBlock& sb) noexcept {
  return csum_bytes(&sb, kSuperConfigBytes);
}

inline std::uint64_t super_mutable_csum(const SuperBlock& sb) noexcept {
  const auto* b = reinterpret_cast<const unsigned char*>(&sb);
  return csum_bytes(b + offsetof(SuperBlock, root),
                    offsetof(SuperBlock, seal_state) -
                        offsetof(SuperBlock, root));
}

inline std::uint64_t subheap_meta_csum(const SubheapMeta& m) noexcept {
  return csum_bytes(&m, offsetof(SubheapMeta, seal_csum_meta));
}

// Mirror of the superblock config prefix, one page after the superblock.
// magic is stored last at create, so a torn shadow is simply invalid; csum
// covers bytes[0, len).  Restores a superblock whose config csum fails.
struct SuperShadow {
  std::uint64_t magic;  // kShadowMagic
  std::uint64_t len;    // = kSuperConfigBytes at create time
  std::uint64_t csum;
  unsigned char bytes[256];
};
static_assert(kSuperConfigBytes <= sizeof(SuperShadow::bytes));
static_assert(std::is_trivially_copyable_v<SuperShadow>);

constexpr std::uint64_t super_shadow_off() noexcept {
  return align_up(sizeof(SuperBlock), kPageSize);
}

// ---- geometry ---------------------------------------------------------------

struct Geometry {
  std::uint64_t file_size;
  std::uint64_t meta_size;
  std::uint64_t subheap_meta_off;
  std::uint64_t subheap_meta_stride;
  std::uint64_t hash_region_off;
  std::uint64_t hash_region_stride;
  std::uint64_t user_region_off;
  std::uint64_t user_size;
  std::uint64_t level0_slots;
  std::uint32_t levels_max;
  std::uint64_t cache_log_off;
  std::uint64_t cache_log_stride;
  std::uint64_t flight_off;
  std::uint64_t flight_stride;
};

// Slots in hash level `i` (levels double in capacity).
constexpr std::uint64_t level_slots(std::uint64_t level0, unsigned i) noexcept {
  return level0 << i;
}

// Byte offset of level `i` inside a sub-heap's hash region.
constexpr std::uint64_t level_offset(std::uint64_t level0, unsigned i) noexcept {
  // sum_{j<i} level0*2^j slots * 48 B
  return level0 * ((std::uint64_t{1} << i) - 1) * sizeof(MemblockRec);
}

// Computes the file layout for `nsubheaps` sub-heaps of `user_size` bytes
// each (power of two) with `level0` slots in the first hash level
// (multiple of 256 so every level is page aligned for hole punching).
constexpr Geometry compute_geometry(unsigned nsubheaps, std::uint64_t user_size,
                                    std::uint64_t level0) noexcept {
  Geometry g{};
  g.user_size = user_size;
  g.level0_slots = level0;
  // Worst case one record per 32 B block, with 25% probing headroom.
  const std::uint64_t worst_records = user_size >> kMinBlockShift;
  const std::uint64_t slots_needed = worst_records + worst_records / 4 + kProbeWindow;
  std::uint32_t levels = 1;
  while (level0 * ((std::uint64_t{1} << levels) - 1) < slots_needed &&
         levels < kMaxHashLevels) {
    ++levels;
  }
  g.levels_max = levels;
  // One page between the superblock and the sub-heap metas holds the
  // superblock's shadow copy (v4).
  g.subheap_meta_off = super_shadow_off() + kPageSize;
  g.subheap_meta_stride = align_up(sizeof(SubheapMeta), kPageSize);
  g.hash_region_off = g.subheap_meta_off + nsubheaps * g.subheap_meta_stride;
  g.hash_region_stride =
      align_up(level_offset(level0, levels), kPageSize);
  // The cache logs come after the hash storage but are excluded from the
  // protected prefix (meta_size): the thread-cache fast path appends and
  // erases entries without opening an MPK write window.
  g.cache_log_off = g.hash_region_off + nsubheaps * g.hash_region_stride;
  g.cache_log_stride = align_up(sizeof(CacheLogSlot), kPageSize);
  g.meta_size = g.cache_log_off;
  // Flight-recorder rings (one per sub-heap) live after the cache logs and,
  // like them, outside the protected prefix: recording never opens a write
  // window.  Page-aligned strides keep each ring hole-punchable.
  g.flight_off =
      align_up(g.cache_log_off + kCacheSlots * g.cache_log_stride, kPageSize);
  g.flight_stride =
      align_up(obs::kFlightRingCap * sizeof(obs::FlightEvent), kPageSize);
  g.user_region_off =
      align_up(g.flight_off + nsubheaps * g.flight_stride, kPageSize);
  g.file_size =
      align_up(g.user_region_off + nsubheaps * user_size, kHugePageSize);
  return g;
}

}  // namespace poseidon::core
