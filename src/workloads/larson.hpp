// Larson benchmark (paper §7.3): simulates a server with multiple
// concurrent, *cross-thread* allocations and deallocations of randomly
// sized objects.  A shared slot array is the handoff surface: each thread
// repeatedly picks a random slot anywhere in the array, swaps in a fresh
// allocation and frees whatever object another thread left there.
#pragma once

#include <cstdint>

#include "alloc_iface/allocator.hpp"

namespace poseidon::workloads {

struct LarsonConfig {
  unsigned nthreads = 1;
  std::size_t min_size = 8;
  std::size_t max_size = 1024;
  std::size_t slots_per_thread = 512;
  double seconds = 0.4;
  std::uint64_t seed = 0x1a450;
};

struct LarsonResult {
  std::uint64_t ops = 0;  // allocations + frees
  double seconds = 0;
  double ops_per_sec() const noexcept {
    return seconds > 0 ? static_cast<double>(ops) / seconds : 0;
  }
};

LarsonResult run_larson(iface::PAllocator& alloc, const LarsonConfig& cfg);

}  // namespace poseidon::workloads
