#include "workloads/trace.hpp"

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstring>
#include <istream>
#include <ostream>
#include <stdexcept>

#include "common/rng.hpp"

namespace poseidon::workloads {

Trace Trace::synthesize(std::uint64_t ops, std::uint32_t slots,
                        std::uint64_t min_size, std::uint64_t max_size,
                        std::uint64_t seed) {
  Trace t;
  t.ops_.reserve(ops + slots);
  Xoshiro256 rng(seed);
  std::vector<bool> full(slots, false);
  std::uint32_t nfull = 0;
  for (std::uint64_t i = 0; i < ops; ++i) {
    const bool do_alloc =
        nfull == 0 || (nfull < slots && (rng.next() & 1) != 0);
    if (do_alloc) {
      // Pick an empty slot (linear probe from a random start).
      std::uint32_t s = static_cast<std::uint32_t>(rng.next_below(slots));
      while (full[s]) s = (s + 1) % slots;
      const std::uint64_t size = min_size + rng.next_below(max_size - min_size + 1);
      t.ops_.push_back({TraceOp::kAlloc, s, size});
      full[s] = true;
      ++nfull;
    } else {
      std::uint32_t s = static_cast<std::uint32_t>(rng.next_below(slots));
      while (!full[s]) s = (s + 1) % slots;
      t.ops_.push_back({TraceOp::kFree, s, 0});
      full[s] = false;
      --nfull;
    }
  }
  for (std::uint32_t s = 0; s < slots; ++s) {
    if (full[s]) t.ops_.push_back({TraceOp::kFree, s, 0});
  }
  return t;
}

void Trace::serialize(std::ostream& out) const {
  out << "# poseidon-trace v1\n";
  for (const TraceOp& op : ops_) {
    if (op.kind == TraceOp::kAlloc) {
      out << "a " << op.slot << ' ' << op.size << '\n';
    } else {
      out << "f " << op.slot << '\n';
    }
  }
}

Trace Trace::parse(std::istream& in) {
  Trace t;
  std::string line;
  std::size_t lineno = 0;
  auto bad = [&](const char* why) {
    throw std::runtime_error("trace line " + std::to_string(lineno) + ": " +
                             why);
  };
  while (std::getline(in, line)) {
    ++lineno;
    if (line.empty() || line[0] == '#') continue;
    TraceOp op{};
    char kind = 0;
    unsigned long slot = 0;
    unsigned long long size = 0;
    const int n = std::sscanf(line.c_str(), "%c %lu %llu", &kind, &slot, &size);
    if (kind == 'a') {
      if (n != 3 || size == 0) bad("malformed alloc");
      op = {TraceOp::kAlloc, static_cast<std::uint32_t>(slot), size};
    } else if (kind == 'f') {
      if (n < 2) bad("malformed free");
      op = {TraceOp::kFree, static_cast<std::uint32_t>(slot), 0};
    } else {
      bad("unknown op");
    }
    t.ops_.push_back(op);
  }
  return t;
}

std::uint64_t Trace::peak_live_bytes() const noexcept {
  std::uint64_t live = 0, peak = 0;
  // Track per-slot sizes to subtract on free.
  std::uint32_t max_slot = 0;
  for (const TraceOp& op : ops_) max_slot = std::max(max_slot, op.slot);
  std::vector<std::uint64_t> sizes(max_slot + 1, 0);
  for (const TraceOp& op : ops_) {
    if (op.kind == TraceOp::kAlloc) {
      sizes[op.slot] = op.size;
      live += op.size;
      if (live > peak) peak = live;
    } else {
      live -= sizes[op.slot];
      sizes[op.slot] = 0;
    }
  }
  return peak;
}

Trace::ReplayResult Trace::replay(iface::PAllocator& alloc) const {
  ReplayResult r;
  std::uint32_t max_slot = 0;
  for (const TraceOp& op : ops_) max_slot = std::max(max_slot, op.slot);
  std::vector<void*> slots(max_slot + 1, nullptr);

  const auto t0 = std::chrono::steady_clock::now();
  for (const TraceOp& op : ops_) {
    if (op.kind == TraceOp::kAlloc) {
      if (slots[op.slot] != nullptr) {
        throw std::logic_error("trace overwrites a full slot");
      }
      void* p = alloc.alloc(op.size);
      if (p == nullptr) {
        ++r.failed_allocs;
        continue;
      }
      // Touch the block so replay measures usable memory, not just
      // bookkeeping.
      std::memset(p, 0x5c, op.size < 64 ? op.size : 64);
      slots[op.slot] = p;
    } else {
      if (slots[op.slot] == nullptr) {
        // Tolerated only when the matching alloc failed (heap too small).
        if (r.failed_allocs == 0) {
          throw std::logic_error("trace frees an empty slot");
        }
        continue;
      }
      alloc.free(slots[op.slot]);
      slots[op.slot] = nullptr;
    }
    ++r.completed;
  }
  r.seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
          .count();
  // Drain anything the trace left behind (defensive; synthesized traces
  // end balanced).
  for (void*& p : slots) {
    if (p != nullptr) {
      alloc.free(p);
      p = nullptr;
    }
  }
  return r;
}

}  // namespace poseidon::workloads
