// Allocation-trace recording and replay.
//
// A trace is a deterministic sequence of alloc/free operations with
// stable slot ids standing in for pointers, so the same workload can be
// replayed bit-for-bit over any allocator (or shipped in a bug report).
// Text format, one op per line:
//
//     # poseidon-trace v1
//     a <slot> <size>     allocate <size> bytes into <slot>
//     f <slot>            free the pointer held by <slot>
//
// Recorded traces are synthesized from a seed + shape parameters; replay
// reports throughput and verifies slot discipline (no slot is freed
// empty or overwritten while full).
#pragma once

#include <cstdint>
#include <iosfwd>
#include <string>
#include <vector>

#include "alloc_iface/allocator.hpp"

namespace poseidon::workloads {

struct TraceOp {
  enum Kind : std::uint8_t { kAlloc, kFree };
  Kind kind;
  std::uint32_t slot;
  std::uint64_t size;  // kAlloc only
};

class Trace {
 public:
  // Synthesize a churn trace: `ops` operations over `slots` slots with
  // sizes in [min_size, max_size], deterministic in `seed`.  Every slot
  // left full at the end is freed, so replays leave allocators balanced.
  static Trace synthesize(std::uint64_t ops, std::uint32_t slots,
                          std::uint64_t min_size, std::uint64_t max_size,
                          std::uint64_t seed);

  // Text round trip.  parse() throws std::runtime_error on malformed
  // input (with the line number).
  static Trace parse(std::istream& in);
  void serialize(std::ostream& out) const;

  std::size_t size() const noexcept { return ops_.size(); }
  const std::vector<TraceOp>& ops() const noexcept { return ops_; }

  // Largest number of bytes live at any point (for sizing heaps).
  std::uint64_t peak_live_bytes() const noexcept;

  struct ReplayResult {
    std::uint64_t completed = 0;  // ops executed
    std::uint64_t failed_allocs = 0;
    double seconds = 0;
  };
  // Replay over an allocator.  Throws std::logic_error on slot-discipline
  // violations (which indicate a corrupt trace, not allocator trouble).
  ReplayResult replay(iface::PAllocator& alloc) const;

 private:
  std::vector<TraceOp> ops_;
};

}  // namespace poseidon::workloads
