#include "workloads/kernels.hpp"

#include <cassert>
#include <cstring>

#include "common/rng.hpp"

namespace poseidon::workloads {

std::uint64_t ackermann_fill(void* buf, std::size_t len) {
  // Table of A(m, n) for m in [0,3]: four rows of `cols` entries.
  auto* table = static_cast<std::uint64_t*>(buf);
  const std::size_t cols = len / sizeof(std::uint64_t) / 4;
  if (cols == 0) return 0;
  auto at = [&](unsigned m, std::size_t n) -> std::uint64_t& {
    return table[m * cols + n];
  };
  for (std::size_t n = 0; n < cols; ++n) at(0, n) = n + 1;  // A(0,n)=n+1
  for (unsigned m = 1; m <= 3; ++m) {
    // A(m,0) = A(m-1,1); A(m,n) = A(m-1, A(m, n-1)) while the inner value
    // stays inside the memo table (the cache-bounded variant the paper's
    // 1 GB region implies).
    at(m, 0) = cols > 1 ? at(m - 1, 1) : 1;
    for (std::size_t n = 1; n < cols; ++n) {
      const std::uint64_t inner = at(m, n - 1);
      at(m, n) = inner < cols ? at(m - 1, inner)
                              : 2 * at(m, n - 1) + 1;  // closed-form tail
    }
  }
  std::uint64_t checksum = 0;
  for (std::size_t i = 0; i < cols * 4; ++i) checksum ^= table[i] + i;
  return checksum;
}

namespace {

struct Edge {
  std::uint32_t w;
  std::uint16_t u;
  std::uint16_t v;
};

std::uint16_t uf_find(std::uint16_t* parent, std::uint16_t x) noexcept {
  while (parent[x] != x) {
    parent[x] = parent[parent[x]];  // path halving
    x = parent[x];
  }
  return x;
}

}  // namespace

std::uint64_t kruskal_mst(void* edge_buf, void* uf_buf, void* out_buf,
                          unsigned order, std::uint64_t seed) {
  const unsigned nedges = order * (order - 1) / 2;
  assert(nedges * sizeof(Edge) <= kKruskalBufBytes);
  assert(order * sizeof(std::uint16_t) <= kKruskalBufBytes);

  auto* edges = static_cast<Edge*>(edge_buf);
  Xoshiro256 rng(seed);
  unsigned e = 0;
  for (unsigned u = 0; u < order; ++u) {
    for (unsigned v = u + 1; v < order; ++v) {
      edges[e++] = {static_cast<std::uint32_t>(rng.next_below(1000) + 1),
                    static_cast<std::uint16_t>(u),
                    static_cast<std::uint16_t>(v)};
    }
  }
  // Insertion sort by weight (tiny inputs).
  for (unsigned i = 1; i < nedges; ++i) {
    const Edge key = edges[i];
    unsigned j = i;
    while (j > 0 && edges[j - 1].w > key.w) {
      edges[j] = edges[j - 1];
      --j;
    }
    edges[j] = key;
  }

  auto* parent = static_cast<std::uint16_t*>(uf_buf);
  for (unsigned i = 0; i < order; ++i) parent[i] = static_cast<std::uint16_t>(i);

  auto* mst = static_cast<Edge*>(out_buf);
  unsigned picked = 0;
  std::uint64_t weight = 0;
  for (unsigned i = 0; i < nedges && picked + 1 < order; ++i) {
    const std::uint16_t ru = uf_find(parent, edges[i].u);
    const std::uint16_t rv = uf_find(parent, edges[i].v);
    if (ru == rv) continue;
    parent[ru] = rv;
    mst[picked++] = edges[i];
    weight += edges[i].w;
  }
  return weight;
}

std::uint64_t nqueens_solve(void* board_buf, unsigned n) {
  auto* col_of_row = static_cast<std::uint8_t*>(board_buf);
  std::memset(col_of_row, 0, n);
  std::uint64_t solutions = 0;
  unsigned row = 0;
  // Iterative backtracking over the board buffer.
  while (true) {
    bool placed = false;
    for (unsigned c = col_of_row[row]; c < n; ++c) {
      bool ok = true;
      for (unsigned r = 0; r < row && ok; ++r) {
        const unsigned pc = col_of_row[r] - 1;
        ok = pc != c && (row - r) != (c > pc ? c - pc : pc - c);
      }
      if (ok) {
        col_of_row[row] = static_cast<std::uint8_t>(c + 1);
        placed = true;
        break;
      }
    }
    if (placed) {
      if (row + 1 == n) {
        ++solutions;
        // Continue searching from the current row's next column.
      } else {
        ++row;
        col_of_row[row] = 0;
        continue;
      }
    } else {
      if (row == 0) break;
      col_of_row[row] = 0;
      --row;
    }
  }
  return solutions;
}

}  // namespace poseidon::workloads
