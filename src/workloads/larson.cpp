#include "workloads/larson.hpp"

#include <atomic>
#include <cstring>
#include <vector>

#include "common/rng.hpp"
#include "workloads/harness.hpp"

namespace poseidon::workloads {

LarsonResult run_larson(iface::PAllocator& alloc, const LarsonConfig& cfg) {
  const std::size_t nslots = cfg.slots_per_thread * cfg.nthreads;
  std::vector<std::atomic<void*>> slots(nslots);
  for (auto& s : slots) s.store(nullptr, std::memory_order_relaxed);

  const RunResult r = run_timed(
      cfg.nthreads, cfg.seconds,
      [&](unsigned tid, const std::atomic<bool>& stop) -> std::uint64_t {
        Xoshiro256 rng(cfg.seed + tid * 7919);
        std::uint64_t ops = 0;
        while (!stop.load(std::memory_order_relaxed)) {
          const std::size_t slot = rng.next_below(nslots);
          const std::size_t size = cfg.min_size +
                                   rng.next_below(cfg.max_size - cfg.min_size);
          void* fresh = alloc.alloc(size);
          if (fresh != nullptr) {
            std::memset(fresh, static_cast<int>(tid), size < 64 ? size : 64);
            ++ops;
          }
          void* old = slots[slot].exchange(fresh, std::memory_order_acq_rel);
          if (old != nullptr) {
            alloc.free(old);  // usually allocated by a different thread
            ++ops;
          }
        }
        return ops;
      });

  // Drain remaining slots so the allocator ends balanced.
  for (auto& s : slots) {
    if (void* p = s.exchange(nullptr, std::memory_order_acq_rel)) {
      alloc.free(p);
    }
  }
  return {r.ops, r.seconds};
}

}  // namespace poseidon::workloads
