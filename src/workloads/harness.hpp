// Thread-sweep measurement harness used by every benchmark binary.
// Reproduces the paper's figure format: one throughput series per
// allocator, swept over thread counts.
#pragma once

#include <atomic>
#include <cstdint>
#include <functional>
#include <string>
#include <vector>

namespace poseidon::workloads {

struct RunResult {
  std::uint64_t ops = 0;
  double seconds = 0;
  double mops() const noexcept {
    return seconds > 0 ? static_cast<double>(ops) / seconds / 1e6 : 0;
  }
};

// Run `body(tid)` on `nthreads` threads after a start barrier; the result
// aggregates the per-thread op counts over the wall time of the slowest
// thread (fixed-work mode).
RunResult run_parallel(unsigned nthreads,
                       const std::function<std::uint64_t(unsigned)>& body);

// Timed mode: threads run until `stop` is raised after `seconds`.
RunResult run_timed(
    unsigned nthreads, double seconds,
    const std::function<std::uint64_t(unsigned, const std::atomic<bool>&)>&
        body);

// {1,2,4,...} capped by POSEIDON_BENCH_MAX_THREADS (default 16; the paper
// sweeps to 64 on a 112-way box — oversubscription past the cap only adds
// scheduler noise on small machines).
std::vector<unsigned> default_thread_sweep();

// Per-run duration for timed benchmarks; POSEIDON_BENCH_SECONDS
// (default 0.4; the paper uses multi-second runs).
double bench_seconds();

// Aligned table output: "<figure> <series> threads=N  X.XX Mops/s".
// When POSEIDON_BENCH_JSON_DIR is set, print_point also maintains one JSON
// sidecar per (figure, series) under that directory —
// <dir>/<figure>_<series>.json with '/' and other non-filename characters
// replaced by '_'.  Sidecars are rewritten after every point, so a bench
// that is interrupted mid-sweep still leaves valid (partial) JSON behind
// for bench/plot_series.py.
void print_header(const std::string& figure, const std::string& unit);
void print_point(const std::string& figure, const std::string& series,
                 unsigned threads, double value);

}  // namespace poseidon::workloads
