// Zipfian key generator (YCSB's scrambled-zipfian distribution, after
// Gray et al.'s quick zipf algorithm).  Hot keys are scattered over the
// key space by a final hash so adjacent ranks do not collide in the index.
#pragma once

#include <cmath>
#include <cstdint>

#include "common/hash.hpp"
#include "common/rng.hpp"

namespace poseidon::workloads {

class ZipfGenerator {
 public:
  // items >= 1; theta in (0,1), YCSB default 0.99.
  ZipfGenerator(std::uint64_t items, double theta, std::uint64_t seed)
      : items_(items), theta_(theta), rng_(seed) {
    zetan_ = zeta(items, theta);
    zeta2_ = zeta(2, theta);
    alpha_ = 1.0 / (1.0 - theta_);
    eta_ = (1.0 - std::pow(2.0 / static_cast<double>(items_), 1.0 - theta_)) /
           (1.0 - zeta2_ / zetan_);
  }

  // Zipf rank in [0, items): rank 0 is the hottest.
  std::uint64_t next_rank() noexcept {
    const double u = rng_.next_double();
    const double uz = u * zetan_;
    if (uz < 1.0) return 0;
    if (uz < 1.0 + std::pow(0.5, theta_)) return 1;
    const auto r = static_cast<std::uint64_t>(
        static_cast<double>(items_) * std::pow(eta_ * u - eta_ + 1.0, alpha_));
    return r >= items_ ? items_ - 1 : r;
  }

  // Scrambled: uniform-looking key id in [0, items) with zipf popularity.
  std::uint64_t next_scrambled() noexcept {
    return mix64(next_rank()) % items_;
  }

 private:
  static double zeta(std::uint64_t n, double theta) noexcept {
    // O(n) precomputation; benchmark setup cost, done once.
    double sum = 0;
    for (std::uint64_t i = 1; i <= n; ++i) {
      sum += 1.0 / std::pow(static_cast<double>(i), theta);
    }
    return sum;
  }

  std::uint64_t items_;
  double theta_;
  Xoshiro256 rng_;
  double zetan_, zeta2_, alpha_, eta_;
};

}  // namespace poseidon::workloads
