#include "workloads/ycsb.hpp"

#include <cstring>

#include "common/hash.hpp"
#include "common/rng.hpp"
#include "index/fastfair.hpp"
#include "workloads/harness.hpp"
#include "workloads/zipf.hpp"

namespace poseidon::workloads {

namespace {

// Bijective, so all keys are distinct; +1 keeps ranks and ids apart.
std::uint64_t key_of(std::uint64_t i) noexcept { return mix64(i + 1); }

}  // namespace

YcsbResult run_ycsb(iface::PAllocator& alloc, const YcsbConfig& cfg) {
  index::FastFairTree tree(&alloc);
  YcsbResult result;

  // ---- Load: insert nkeys with allocated value payloads -------------------
  const RunResult load = run_parallel(cfg.nthreads, [&](unsigned tid) {
    const std::uint64_t per = cfg.nkeys / cfg.nthreads;
    const std::uint64_t lo = tid * per;
    const std::uint64_t hi =
        tid + 1 == cfg.nthreads ? cfg.nkeys : lo + per;
    std::uint64_t ops = 0;
    for (std::uint64_t i = lo; i < hi; ++i) {
      void* value = alloc.alloc(cfg.value_size);
      if (value == nullptr) break;
      std::memset(value, static_cast<int>(i), cfg.value_size < 64
                                                  ? cfg.value_size
                                                  : 64);
      if (tree.insert(key_of(i), reinterpret_cast<std::uint64_t>(value))) {
        ++ops;
      }
    }
    return ops;
  });
  result.load_mops = load.mops();

  // ---- Workload A: 50/50 read-update, zipfian key popularity --------------
  const RunResult a = run_timed(
      cfg.nthreads, cfg.seconds,
      [&](unsigned tid, const std::atomic<bool>& stop) -> std::uint64_t {
        ZipfGenerator zipf(cfg.nkeys, cfg.zipf_theta, cfg.seed + tid * 131);
        Xoshiro256 rng(cfg.seed ^ (tid * 2654435761u));
        std::uint64_t ops = 0;
        volatile std::uint64_t sink = 0;
        while (!stop.load(std::memory_order_relaxed)) {
          const std::uint64_t key = key_of(zipf.next_scrambled());
          if (rng.next_double() < cfg.read_ratio) {
            if (const auto v = tree.search(key)) {
              sink = sink + *reinterpret_cast<const std::uint64_t*>(*v);
              ++ops;
            }
          } else {
            void* fresh = alloc.alloc(cfg.value_size);
            if (fresh == nullptr) continue;
            std::memset(fresh, static_cast<int>(ops), 64);
            if (const auto old = tree.exchange(
                    key, reinterpret_cast<std::uint64_t>(fresh))) {
              alloc.free(reinterpret_cast<void*>(*old));
              ++ops;
            } else {
              alloc.free(fresh);  // key not present (short load)
            }
          }
        }
        return ops;
      });
  result.a_mops = a.mops();
  return result;
}

}  // namespace poseidon::workloads
