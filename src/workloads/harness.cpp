#include "workloads/harness.hpp"

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <map>
#include <mutex>
#include <thread>
#include <utility>

namespace poseidon::workloads {

namespace {

using Clock = std::chrono::steady_clock;

double elapsed_since(Clock::time_point t0) {
  return std::chrono::duration<double>(Clock::now() - t0).count();
}

// --- JSON sidecars (POSEIDON_BENCH_JSON_DIR) -----------------------------

struct JsonPoint {
  unsigned threads;
  double value;
};

std::mutex g_json_mu;
std::map<std::pair<std::string, std::string>, std::vector<JsonPoint>>
    g_json_series;

// Figure names contain '/' (e.g. "fig6/256B"); flatten everything that is
// not filename-safe to '_'.
std::string sanitize(const std::string& s) {
  std::string out = s;
  for (char& c : out) {
    const bool ok = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
                    (c >= '0' && c <= '9') || c == '.' || c == '-' ||
                    c == '+' || c == '_';
    if (!ok) c = '_';
  }
  return out;
}

void json_sidecar(const std::string& figure, const std::string& series,
                  unsigned threads, double value) {
  const char* dir = std::getenv("POSEIDON_BENCH_JSON_DIR");
  if (dir == nullptr || dir[0] == '\0') return;
  std::lock_guard<std::mutex> lk(g_json_mu);
  auto& pts = g_json_series[{figure, series}];
  pts.push_back({threads, value});
  const std::string path = std::string(dir) + "/" + sanitize(figure) + "_" +
                           sanitize(series) + ".json";
  // Rewrite the whole (small) file each point: an interrupted bench leaves
  // a complete JSON document covering every finished point.
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) return;  // unwritable dir: stdout stays authoritative
  std::fprintf(f, "{\"figure\": \"%s\", \"series\": \"%s\", \"points\": [",
               figure.c_str(), series.c_str());
  for (std::size_t i = 0; i < pts.size(); ++i) {
    std::fprintf(f, "%s{\"threads\": %u, \"value\": %.6f}",
                 i == 0 ? "" : ", ", pts[i].threads, pts[i].value);
  }
  std::fprintf(f, "]}\n");
  std::fclose(f);
}

}  // namespace

RunResult run_parallel(unsigned nthreads,
                       const std::function<std::uint64_t(unsigned)>& body) {
  std::atomic<unsigned> ready{0};
  std::atomic<bool> go{false};
  std::atomic<std::uint64_t> total{0};
  std::vector<std::thread> threads;
  threads.reserve(nthreads);
  for (unsigned tid = 0; tid < nthreads; ++tid) {
    threads.emplace_back([&, tid] {
      ready.fetch_add(1, std::memory_order_acq_rel);
      while (!go.load(std::memory_order_acquire)) std::this_thread::yield();
      total.fetch_add(body(tid), std::memory_order_relaxed);
    });
  }
  while (ready.load(std::memory_order_acquire) != nthreads) {
    std::this_thread::yield();
  }
  const auto t0 = Clock::now();
  go.store(true, std::memory_order_release);
  for (auto& t : threads) t.join();
  return {total.load(), elapsed_since(t0)};
}

RunResult run_timed(
    unsigned nthreads, double seconds,
    const std::function<std::uint64_t(unsigned, const std::atomic<bool>&)>&
        body) {
  std::atomic<unsigned> ready{0};
  std::atomic<bool> go{false};
  std::atomic<bool> stop{false};
  std::atomic<std::uint64_t> total{0};
  std::vector<std::thread> threads;
  threads.reserve(nthreads);
  for (unsigned tid = 0; tid < nthreads; ++tid) {
    threads.emplace_back([&, tid] {
      ready.fetch_add(1, std::memory_order_acq_rel);
      while (!go.load(std::memory_order_acquire)) std::this_thread::yield();
      total.fetch_add(body(tid, stop), std::memory_order_relaxed);
    });
  }
  while (ready.load(std::memory_order_acquire) != nthreads) {
    std::this_thread::yield();
  }
  const auto t0 = Clock::now();
  go.store(true, std::memory_order_release);
  std::this_thread::sleep_for(std::chrono::duration<double>(seconds));
  stop.store(true, std::memory_order_release);
  for (auto& t : threads) t.join();
  return {total.load(), elapsed_since(t0)};
}

std::vector<unsigned> default_thread_sweep() {
  unsigned cap = 16;
  if (const char* env = std::getenv("POSEIDON_BENCH_MAX_THREADS")) {
    const long v = std::strtol(env, nullptr, 10);
    if (v >= 1 && v <= 256) cap = static_cast<unsigned>(v);
  }
  std::vector<unsigned> sweep;
  for (unsigned t = 1; t <= cap; t *= 2) sweep.push_back(t);
  if (sweep.back() != cap) sweep.push_back(cap);
  return sweep;
}

double bench_seconds() {
  if (const char* env = std::getenv("POSEIDON_BENCH_SECONDS")) {
    const double v = std::strtod(env, nullptr);
    if (v > 0.01 && v <= 60) return v;
  }
  return 0.4;
}

void print_header(const std::string& figure, const std::string& unit) {
  std::printf("# %s  (%s)\n", figure.c_str(), unit.c_str());
  std::fflush(stdout);
}

void print_point(const std::string& figure, const std::string& series,
                 unsigned threads, double value) {
  std::printf("%-28s %-12s threads=%-3u %10.3f\n", figure.c_str(),
              series.c_str(), threads, value);
  std::fflush(stdout);
  json_sidecar(figure, series, threads, value);
}

}  // namespace poseidon::workloads
