#include "workloads/harness.hpp"

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <thread>

namespace poseidon::workloads {

namespace {

using Clock = std::chrono::steady_clock;

double elapsed_since(Clock::time_point t0) {
  return std::chrono::duration<double>(Clock::now() - t0).count();
}

}  // namespace

RunResult run_parallel(unsigned nthreads,
                       const std::function<std::uint64_t(unsigned)>& body) {
  std::atomic<unsigned> ready{0};
  std::atomic<bool> go{false};
  std::atomic<std::uint64_t> total{0};
  std::vector<std::thread> threads;
  threads.reserve(nthreads);
  for (unsigned tid = 0; tid < nthreads; ++tid) {
    threads.emplace_back([&, tid] {
      ready.fetch_add(1, std::memory_order_acq_rel);
      while (!go.load(std::memory_order_acquire)) std::this_thread::yield();
      total.fetch_add(body(tid), std::memory_order_relaxed);
    });
  }
  while (ready.load(std::memory_order_acquire) != nthreads) {
    std::this_thread::yield();
  }
  const auto t0 = Clock::now();
  go.store(true, std::memory_order_release);
  for (auto& t : threads) t.join();
  return {total.load(), elapsed_since(t0)};
}

RunResult run_timed(
    unsigned nthreads, double seconds,
    const std::function<std::uint64_t(unsigned, const std::atomic<bool>&)>&
        body) {
  std::atomic<unsigned> ready{0};
  std::atomic<bool> go{false};
  std::atomic<bool> stop{false};
  std::atomic<std::uint64_t> total{0};
  std::vector<std::thread> threads;
  threads.reserve(nthreads);
  for (unsigned tid = 0; tid < nthreads; ++tid) {
    threads.emplace_back([&, tid] {
      ready.fetch_add(1, std::memory_order_acq_rel);
      while (!go.load(std::memory_order_acquire)) std::this_thread::yield();
      total.fetch_add(body(tid, stop), std::memory_order_relaxed);
    });
  }
  while (ready.load(std::memory_order_acquire) != nthreads) {
    std::this_thread::yield();
  }
  const auto t0 = Clock::now();
  go.store(true, std::memory_order_release);
  std::this_thread::sleep_for(std::chrono::duration<double>(seconds));
  stop.store(true, std::memory_order_release);
  for (auto& t : threads) t.join();
  return {total.load(), elapsed_since(t0)};
}

std::vector<unsigned> default_thread_sweep() {
  unsigned cap = 16;
  if (const char* env = std::getenv("POSEIDON_BENCH_MAX_THREADS")) {
    const long v = std::strtol(env, nullptr, 10);
    if (v >= 1 && v <= 256) cap = static_cast<unsigned>(v);
  }
  std::vector<unsigned> sweep;
  for (unsigned t = 1; t <= cap; t *= 2) sweep.push_back(t);
  if (sweep.back() != cap) sweep.push_back(cap);
  return sweep;
}

double bench_seconds() {
  if (const char* env = std::getenv("POSEIDON_BENCH_SECONDS")) {
    const double v = std::strtod(env, nullptr);
    if (v > 0.01 && v <= 60) return v;
  }
  return 0.4;
}

void print_header(const std::string& figure, const std::string& unit) {
  std::printf("# %s  (%s)\n", figure.c_str(), unit.c_str());
  std::fflush(stdout);
}

void print_point(const std::string& figure, const std::string& series,
                 unsigned threads, double value) {
  std::printf("%-28s %-12s threads=%-3u %10.3f\n", figure.c_str(),
              series.c_str(), threads, value);
  std::fflush(stdout);
}

}  // namespace poseidon::workloads
