// YCSB driver over the FAST-FAIR persistent B+-tree (paper §7.5, Fig. 9).
// The paper evaluates the allocation-heavy workloads: Load (insert-only)
// and Workload A (50% read / 50% update, zipfian).  Inserts allocate tree
// nodes and value buffers; updates allocate a fresh value buffer and free
// the old one through the allocator under test.
#pragma once

#include <cstdint>

#include "alloc_iface/allocator.hpp"

namespace poseidon::workloads {

struct YcsbConfig {
  std::uint64_t nkeys = 200'000;  // paper: 10 M (scaled; see EXPERIMENTS.md)
  unsigned nthreads = 1;
  double seconds = 0.4;       // Workload A duration
  double read_ratio = 0.5;    // Workload A mix
  std::size_t value_size = 100;  // YCSB default field size
  double zipf_theta = 0.99;
  std::uint64_t seed = 0x9c5b;
};

struct YcsbResult {
  double load_mops = 0;
  double a_mops = 0;
};

// Runs Load then Workload A on a fresh tree over `alloc`.
YcsbResult run_ycsb(iface::PAllocator& alloc, const YcsbConfig& cfg);

}  // namespace poseidon::workloads
