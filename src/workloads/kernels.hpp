// Computation kernels for the paper's "real-world, high performance"
// benchmarks (§7.4, Fig. 8).  Each kernel does its work *inside a buffer
// obtained from the allocator under test*, so every iteration exercises an
// alloc → compute → free cycle:
//   * Ackermann — one large allocation used as a memoization cache;
//   * Kruskal  — three 512-byte allocations (edges, union-find, output)
//                per MST of order 5;
//   * N-Queens — one 32-byte allocation (the board) per 8-queens solve.
#pragma once

#include <cstddef>
#include <cstdint>

namespace poseidon::workloads {

// Fill `buf` with memoized Ackermann values (m <= 3) until the table is
// full; returns a checksum of the table (forces the stores).
std::uint64_t ackermann_fill(void* buf, std::size_t len);

// Kruskal MST of the complete graph on `order` vertices with
// deterministic pseudo-random weights.  The three buffers must each hold
// at least kKruskalBufBytes.  Returns the MST weight.
inline constexpr std::size_t kKruskalBufBytes = 512;
std::uint64_t kruskal_mst(void* edge_buf, void* uf_buf, void* out_buf,
                          unsigned order, std::uint64_t seed);

// Count N-queens solutions using `board_buf` (>= n bytes) as working
// state; n <= 16.  For n == 8 the answer is 92.
std::uint64_t nqueens_solve(void* board_buf, unsigned n);

}  // namespace poseidon::workloads
