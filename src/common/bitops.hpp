// Power-of-two and bit manipulation helpers used by the buddy allocator
// and the multi-level hash table.
#pragma once

#include <bit>
#include <cstddef>
#include <cstdint>

namespace poseidon {

constexpr bool is_pow2(std::uint64_t v) noexcept {
  return v != 0 && (v & (v - 1)) == 0;
}

// Floor of log2; undefined for v == 0 (asserted by callers).
constexpr unsigned log2_floor(std::uint64_t v) noexcept {
  return 63u - static_cast<unsigned>(std::countl_zero(v));
}

// Ceiling of log2; log2_ceil(1) == 0.
constexpr unsigned log2_ceil(std::uint64_t v) noexcept {
  return v <= 1 ? 0u : log2_floor(v - 1) + 1;
}

// Smallest power of two >= v (v must be <= 2^63).
constexpr std::uint64_t round_up_pow2(std::uint64_t v) noexcept {
  return v <= 1 ? 1 : (std::uint64_t{1} << log2_ceil(v));
}

constexpr std::uint64_t align_up(std::uint64_t v, std::uint64_t a) noexcept {
  return (v + a - 1) & ~(a - 1);
}

constexpr std::uint64_t align_down(std::uint64_t v, std::uint64_t a) noexcept {
  return v & ~(a - 1);
}

}  // namespace poseidon
