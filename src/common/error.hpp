// Typed error taxonomy for open/recovery failures.
//
// Every failure the allocator can surface to a caller carries an ErrorCode
// so "corrupt pool" is distinguishable from "wrong version" from "plain
// I/O error" — the C API exposes the code via poseidon_error_code().
// Error derives from std::system_error (itself a std::runtime_error), so
// pre-taxonomy call sites catching either base keep working; the contained
// errno is meaningful only for kIo.
//
// Lives in common/ because both the pmem substrate (Pool) and the core
// (Heap::open validation) throw it; pmem links below core.
#pragma once

#include <string>
#include <system_error>

namespace poseidon {

enum class ErrorCode : int {
  kOk = 0,
  kIo = 1,                // syscall failure (open/mmap/ftruncate/fstat/...)
  kInvalidArgument = 2,   // caller misuse (bad options, non-regular file)
  kNotAPool = 3,          // magic mismatch: file is not a Poseidon heap
  kWrongVersion = 4,      // valid pool, incompatible layout version
  kTruncated = 5,         // stored file_size disagrees with the file
  kCorruptSuperblock = 6, // superblock damaged beyond shadow repair
  kCorruptSubheap = 7,    // sub-heap metadata damaged beyond scavenge
  kQuarantined = 8,       // operation refused: sub-heap is quarantined
  kInternal = 9,          // invariant violation inside the allocator
  kShardMismatch = 10,    // shard set member disagrees on set id/epoch/count
  kHeapBusy = 11,         // another live process (or this one) owns the heap
  kSvcRetry = 12,         // allocation service is draining; retry later
  kSvcUnavailable = 13,   // allocation service is gone (server dead/stale)
};

inline const char* to_string(ErrorCode c) noexcept {
  switch (c) {
    case ErrorCode::kOk: return "ok";
    case ErrorCode::kIo: return "io-error";
    case ErrorCode::kInvalidArgument: return "invalid-argument";
    case ErrorCode::kNotAPool: return "not-a-pool";
    case ErrorCode::kWrongVersion: return "wrong-version";
    case ErrorCode::kTruncated: return "truncated";
    case ErrorCode::kCorruptSuperblock: return "corrupt-superblock";
    case ErrorCode::kCorruptSubheap: return "corrupt-subheap";
    case ErrorCode::kQuarantined: return "quarantined";
    case ErrorCode::kInternal: return "internal-error";
    case ErrorCode::kShardMismatch: return "shard-mismatch";
    case ErrorCode::kHeapBusy: return "heap-busy";
    case ErrorCode::kSvcRetry: return "svc-retry";
    case ErrorCode::kSvcUnavailable: return "svc-unavailable";
  }
  return "?";
}

class Error : public std::system_error {
 public:
  Error(ErrorCode code, const std::string& detail, int sys_errno = 0)
      : std::system_error(sys_errno, std::generic_category(),
                          std::string(to_string(code)) + ": " + detail),
        code_(code) {}

  // `code()` is taken by std::system_error (the errno-derived one).
  ErrorCode poseidon_code() const noexcept { return code_; }

 private:
  ErrorCode code_;
};

}  // namespace poseidon
