// Minimal NUMA topology + memory placement (paper §4.1: a sub-heap is
// created on the NUMA domain of the CPU that first allocates from it, so
// NVMM accesses stay local and every per-node memory controller is used).
//
// Implemented against sysfs + the raw mbind syscall so there is no
// libnuma dependency; on single-node machines (and machines without
// NUMA support) everything degrades to inexpensive no-ops.
#pragma once

#include <cstddef>
#include <cstdint>

namespace poseidon {

// Number of online NUMA nodes (>= 1; 1 when undeterminable).
unsigned numa_node_count() noexcept;

// NUMA node owning `cpu`; 0 when undeterminable.
unsigned numa_node_of_cpu(unsigned cpu) noexcept;

// Best-effort: prefer placing pages of [addr, addr+len) on `node`.
// Returns false when the kernel refuses (never fatal — placement is a
// performance hint, not a correctness requirement).  No-op on
// single-node systems and under the POSEIDON_FAKE_NUMA override (the
// fake nodes do not exist, so there is nothing to bind to).
bool numa_bind_region(void* addr, std::size_t len, unsigned node) noexcept;

// Best-effort: pin the calling thread to the CPUs of `node` (per the real
// or fake topology).  Used by shard-parallel open/recovery/fsck workers so
// each shard's first-touch and log replay happen node-local.  Returns
// false when the affinity call fails or the node has no CPUs; never fatal.
bool pin_thread_to_node(unsigned node) noexcept;

}  // namespace poseidon
