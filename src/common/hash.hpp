// 64-bit hash mixing (finalizer of splitmix64 / MurmurHash3 fmix64).
// Used to index memblock records by block offset.
#pragma once

#include <cstdint>

namespace poseidon {

constexpr std::uint64_t mix64(std::uint64_t x) noexcept {
  x += 0x9e3779b97f4a7c15ull;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ull;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebull;
  return x ^ (x >> 31);
}

// Hash a byte string (FNV-1a; used only off the hot path).
constexpr std::uint64_t hash_bytes(const char* data, std::uint64_t len) noexcept {
  std::uint64_t h = 0xcbf29ce484222325ull;
  for (std::uint64_t i = 0; i < len; ++i) {
    h ^= static_cast<unsigned char>(data[i]);
    h *= 0x100000001b3ull;
  }
  return h;
}

}  // namespace poseidon
