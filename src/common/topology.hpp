// CPU topology queries used for per-CPU sub-heap placement.
#pragma once

#include <cstdint>

namespace poseidon {

// Number of online CPUs (>= 1).
unsigned cpu_count() noexcept;

// CPU the calling thread is currently running on; 0 if undeterminable.
unsigned current_cpu() noexcept;

// Monotonically increasing id assigned to each thread on first use.
// Used by the PerThread sub-heap policy to emulate a manycore machine
// on boxes with fewer CPUs than benchmark threads.
unsigned thread_ordinal() noexcept;

}  // namespace poseidon
