// CPU topology queries used for per-CPU sub-heap placement.
#pragma once

#include <cstdint>

namespace poseidon {

// Number of online CPUs (>= 1).
unsigned cpu_count() noexcept;

// CPU the calling thread is currently running on; 0 if undeterminable.
unsigned current_cpu() noexcept;

// Monotonically increasing id assigned to each thread on first use.
// Used by the PerThread sub-heap policy to emulate a manycore machine
// on boxes with fewer CPUs than benchmark threads.
unsigned thread_ordinal() noexcept;

// Fake NUMA topology override for single-node CI runners and ablations:
// POSEIDON_FAKE_NUMA=N (2..64) makes numa_node_count() report N nodes and
// numa_node_of_cpu() report cpu % N, while memory binding becomes a
// successful no-op (the nodes do not exist).  Returns 0 when the override
// is not active.  Read once at first use, like the real topology.
unsigned fake_numa_nodes() noexcept;

// Parser behind fake_numa_nodes(), exposed so tests can cover the env
// contract without mutating the process environment: nullptr/empty/0/1,
// garbage and out-of-range values all mean "disabled" (returns 0).
unsigned parse_fake_numa(const char* value) noexcept;

}  // namespace poseidon
