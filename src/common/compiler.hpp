// Small compiler/platform helpers shared across the project.
#pragma once

#include <cstddef>
#include <cstdint>

namespace poseidon {

inline constexpr std::size_t kCacheLineSize = 64;

#define POSEIDON_LIKELY(x) __builtin_expect(!!(x), 1)
#define POSEIDON_UNLIKELY(x) __builtin_expect(!!(x), 0)

// Compiler-only barrier: forbids reordering of memory accesses across it.
inline void compiler_barrier() noexcept { asm volatile("" ::: "memory"); }

// Pause hint for spin loops.
inline void cpu_relax() noexcept { __builtin_ia32_pause(); }

inline std::uintptr_t cache_line_of(const void* p) noexcept {
  return reinterpret_cast<std::uintptr_t>(p) & ~(kCacheLineSize - 1);
}

}  // namespace poseidon
