#include "common/numa.hpp"

#include <sys/syscall.h>
#include <unistd.h>

#include <cstdio>
#include <cstdlib>
#include <cstring>

namespace poseidon {

namespace {

// Parse "0-3,8" style sysfs masks; returns the highest id + 1.
unsigned parse_max_plus_one(const char* path) {
  std::FILE* f = std::fopen(path, "r");
  if (f == nullptr) return 1;
  char buf[256] = {};
  const std::size_t n = std::fread(buf, 1, sizeof(buf) - 1, f);
  std::fclose(f);
  if (n == 0) return 1;
  unsigned max_id = 0;
  for (const char* p = buf; *p != '\0';) {
    char* end = nullptr;
    const unsigned long v = std::strtoul(p, &end, 10);
    if (end == p) break;
    if (v > max_id) max_id = static_cast<unsigned>(v);
    p = end;
    if (*p == '-' || *p == ',') ++p;
  }
  return max_id + 1;
}

}  // namespace

unsigned numa_node_count() noexcept {
  static const unsigned count =
      parse_max_plus_one("/sys/devices/system/node/online");
  return count == 0 ? 1 : count;
}

unsigned numa_node_of_cpu(unsigned cpu) noexcept {
  if (numa_node_count() == 1) return 0;
  // The cpu's node appears as a nodeN symlink in its sysfs directory.
  for (unsigned node = 0; node < numa_node_count(); ++node) {
    char path[128];
    std::snprintf(path, sizeof(path),
                  "/sys/devices/system/cpu/cpu%u/node%u", cpu, node);
    if (::access(path, F_OK) == 0) return node;
  }
  return 0;
}

bool numa_bind_region(void* addr, std::size_t len, unsigned node) noexcept {
  if (numa_node_count() <= 1) return true;  // nothing to place
#ifdef __NR_mbind
  constexpr int kMpolPreferred = 1;  // MPOL_PREFERRED
  unsigned long nodemask = 1ul << node;
  const long rc = ::syscall(__NR_mbind, addr, len, kMpolPreferred,
                            &nodemask, sizeof(nodemask) * 8 + 1, 0);
  return rc == 0;
#else
  (void)addr;
  (void)len;
  (void)node;
  return false;
#endif
}

}  // namespace poseidon
