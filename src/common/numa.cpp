#include "common/numa.hpp"

#include <sched.h>
#include <sys/syscall.h>
#include <unistd.h>

#include <cstdio>
#include <cstdlib>
#include <cstring>

#include "common/topology.hpp"

namespace poseidon {

namespace {

// Parse "0-3,8" style sysfs masks; returns the highest id + 1.
unsigned parse_max_plus_one(const char* path) {
  std::FILE* f = std::fopen(path, "r");
  if (f == nullptr) return 1;
  char buf[256] = {};
  const std::size_t n = std::fread(buf, 1, sizeof(buf) - 1, f);
  std::fclose(f);
  if (n == 0) return 1;
  unsigned max_id = 0;
  for (const char* p = buf; *p != '\0';) {
    char* end = nullptr;
    const unsigned long v = std::strtoul(p, &end, 10);
    if (end == p) break;
    if (v > max_id) max_id = static_cast<unsigned>(v);
    p = end;
    if (*p == '-' || *p == ',') ++p;
  }
  return max_id + 1;
}

}  // namespace

unsigned numa_node_count() noexcept {
  if (const unsigned fake = fake_numa_nodes(); fake != 0) return fake;
  static const unsigned count =
      parse_max_plus_one("/sys/devices/system/node/online");
  return count == 0 ? 1 : count;
}

unsigned numa_node_of_cpu(unsigned cpu) noexcept {
  if (const unsigned fake = fake_numa_nodes(); fake != 0) return cpu % fake;
  if (numa_node_count() == 1) return 0;
  // The cpu's node appears as a nodeN symlink in its sysfs directory.
  for (unsigned node = 0; node < numa_node_count(); ++node) {
    char path[128];
    std::snprintf(path, sizeof(path),
                  "/sys/devices/system/cpu/cpu%u/node%u", cpu, node);
    if (::access(path, F_OK) == 0) return node;
  }
  return 0;
}

bool numa_bind_region(void* addr, std::size_t len, unsigned node) noexcept {
  // A faked topology has no real nodes behind it: mbind with those node
  // ids would fail (or worse, land on an unrelated real node), so binding
  // is a successful no-op exactly like the single-node case.
  if (fake_numa_nodes() != 0) return true;
  if (numa_node_count() <= 1) return true;  // nothing to place
#ifdef __NR_mbind
  constexpr int kMpolPreferred = 1;  // MPOL_PREFERRED
  unsigned long nodemask = 1ul << node;
  const long rc = ::syscall(__NR_mbind, addr, len, kMpolPreferred,
                            &nodemask, sizeof(nodemask) * 8 + 1, 0);
  return rc == 0;
#else
  (void)addr;
  (void)len;
  (void)node;
  return false;
#endif
}

bool pin_thread_to_node(unsigned node) noexcept {
  const unsigned nodes = numa_node_count();
  if (nodes <= 1) return true;  // nowhere else to run
  cpu_set_t set;
  CPU_ZERO(&set);
  unsigned cpus_in_node = 0;
  const unsigned ncpu = cpu_count();
  for (unsigned cpu = 0; cpu < ncpu; ++cpu) {
    if (numa_node_of_cpu(cpu) == node % nodes) {
      CPU_SET(cpu, &set);
      ++cpus_in_node;
    }
  }
  if (cpus_in_node == 0) return false;
  return ::sched_setaffinity(0, sizeof(set), &set) == 0;
}

}  // namespace poseidon
