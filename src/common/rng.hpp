// xoshiro256** PRNG — fast, high quality, and deterministic across
// platforms, which matters for reproducible workloads and property tests.
#pragma once

#include <cstdint>

#include "common/hash.hpp"

namespace poseidon {

class Xoshiro256 {
 public:
  explicit Xoshiro256(std::uint64_t seed) noexcept {
    // splitmix64 seeding as recommended by the xoshiro authors.
    std::uint64_t x = seed;
    for (auto& word : s_) {
      x += 0x9e3779b97f4a7c15ull;
      word = mix64(x);
    }
  }

  std::uint64_t next() noexcept {
    const std::uint64_t result = rotl(s_[1] * 5, 7) * 9;
    const std::uint64_t t = s_[1] << 17;
    s_[2] ^= s_[0];
    s_[3] ^= s_[1];
    s_[1] ^= s_[2];
    s_[0] ^= s_[3];
    s_[2] ^= t;
    s_[3] = rotl(s_[3], 45);
    return result;
  }

  // Uniform integer in [0, bound); bound must be > 0.
  std::uint64_t next_below(std::uint64_t bound) noexcept {
    // Lemire's multiply-shift rejection-free approximation is fine here;
    // workloads do not need perfect uniformity at the 2^-64 level.
    return static_cast<std::uint64_t>(
        (static_cast<unsigned __int128>(next()) * bound) >> 64);
  }

  // Uniform integer in [lo, hi] inclusive.
  std::uint64_t next_in(std::uint64_t lo, std::uint64_t hi) noexcept {
    return lo + next_below(hi - lo + 1);
  }

  // Uniform double in [0, 1).
  double next_double() noexcept {
    return static_cast<double>(next() >> 11) * 0x1.0p-53;
  }

 private:
  static constexpr std::uint64_t rotl(std::uint64_t x, int k) noexcept {
    return (x << k) | (x >> (64 - k));
  }

  std::uint64_t s_[4];
};

}  // namespace poseidon
