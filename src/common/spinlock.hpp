// Test-and-test-and-set spinlock with bounded exponential backoff that
// falls back to yielding the CPU.  Sub-heap critical sections are short
// (a handful of cache-line writes plus persist barriers), so spinning
// wins on dedicated cores; the yield fallback keeps oversubscribed
// configurations (more threads than CPUs) from burning whole timeslices
// while the lock holder is descheduled.
#pragma once

#include <sched.h>

#include <atomic>
#include <cstdint>

#include "common/compiler.hpp"

namespace poseidon {

class Spinlock {
 public:
  Spinlock() noexcept = default;
  Spinlock(const Spinlock&) = delete;
  Spinlock& operator=(const Spinlock&) = delete;

  void lock() noexcept {
    while (true) {
      if (!locked_.exchange(true, std::memory_order_acquire)) return;
      unsigned spins = 0;
      while (locked_.load(std::memory_order_relaxed)) {
        if (spins < 6) {
          for (unsigned i = 0; i < (1u << spins); ++i) cpu_relax();
          ++spins;
        } else {
          ::sched_yield();
        }
      }
    }
  }

  bool try_lock() noexcept {
    return !locked_.load(std::memory_order_relaxed) &&
           !locked_.exchange(true, std::memory_order_acquire);
  }

  void unlock() noexcept { locked_.store(false, std::memory_order_release); }

 private:
  std::atomic<bool> locked_{false};
};

// std::lock_guard-compatible alias for readability at call sites.
template <typename Lock>
class Guard {
 public:
  explicit Guard(Lock& l) noexcept : lock_(l) { lock_.lock(); }
  ~Guard() { lock_.unlock(); }
  Guard(const Guard&) = delete;
  Guard& operator=(const Guard&) = delete;

 private:
  Lock& lock_;
};

}  // namespace poseidon
