#include "common/topology.hpp"

#include <sched.h>
#include <unistd.h>

#include <atomic>
#include <cstdlib>

namespace poseidon {

unsigned cpu_count() noexcept {
  const long n = sysconf(_SC_NPROCESSORS_ONLN);
  return n > 0 ? static_cast<unsigned>(n) : 1u;
}

unsigned current_cpu() noexcept {
  const int cpu = sched_getcpu();
  return cpu >= 0 ? static_cast<unsigned>(cpu) : 0u;
}

unsigned thread_ordinal() noexcept {
  static std::atomic<unsigned> next{0};
  thread_local const unsigned ordinal =
      next.fetch_add(1, std::memory_order_relaxed);
  return ordinal;
}

unsigned parse_fake_numa(const char* value) noexcept {
  if (value == nullptr || *value == '\0') return 0;
  char* end = nullptr;
  const unsigned long n = std::strtoul(value, &end, 10);
  // Trailing garbage, 0/1 (no-op topologies) and absurd counts all disable
  // the override rather than fabricating a half-valid topology.
  if (end == value || *end != '\0') return 0;
  if (n < 2 || n > 64) return 0;
  return static_cast<unsigned>(n);
}

unsigned fake_numa_nodes() noexcept {
  static const unsigned n = parse_fake_numa(std::getenv("POSEIDON_FAKE_NUMA"));
  return n;
}

}  // namespace poseidon
