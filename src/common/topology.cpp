#include "common/topology.hpp"

#include <sched.h>
#include <unistd.h>

#include <atomic>

namespace poseidon {

unsigned cpu_count() noexcept {
  const long n = sysconf(_SC_NPROCESSORS_ONLN);
  return n > 0 ? static_cast<unsigned>(n) : 1u;
}

unsigned current_cpu() noexcept {
  const int cpu = sched_getcpu();
  return cpu >= 0 ? static_cast<unsigned>(cpu) : 0u;
}

unsigned thread_ordinal() noexcept {
  static std::atomic<unsigned> next{0};
  thread_local const unsigned ordinal =
      next.fetch_add(1, std::memory_order_relaxed);
  return ordinal;
}

}  // namespace poseidon
