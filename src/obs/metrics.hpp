// Observability metrics registry (flight-recorder subsystem, pillar 1).
//
// Cache-line-padded per-thread-sharded counters and fixed-bucket log2
// histograms.  The hot path is a single uncontended relaxed fetch_add on
// the calling thread's shard (threads are folded onto kShards by their
// ordinal, so two threads share a shard only when more than kShards are
// live — still correct, just occasionally contended); aggregation happens
// on the cold read path by summing shards.  No locks anywhere, so the
// counters are safe from any allocator context, including inside sub-heap
// critical sections.
//
// Everything here is header-only: the mpk layer (below core in the link
// order) counts wrpkru window switches with the same Counter type without
// creating a library cycle.
//
// Compile-out: configuring with -DPOSEIDON_OBS=OFF defines
// POSEIDON_OBS_DISABLED and turns every record/inc into a no-op with the
// types still present, so call sites never change.  The overhead-budget
// acceptance test compares the two builds.
#pragma once

#include <atomic>
#include <cstdint>

#include "common/bitops.hpp"
#include "common/compiler.hpp"
#include "common/topology.hpp"

#ifdef POSEIDON_OBS_DISABLED
#define POSEIDON_OBS_ENABLED 0
#else
#define POSEIDON_OBS_ENABLED 1
#endif

namespace poseidon::obs {

inline constexpr unsigned kShards = 8;  // power of two
inline constexpr unsigned kHistBuckets = 64;

// Cycle counter for latency histograms.  tsc is not serializing — good:
// the measurement must not perturb the measured pipeline.
inline std::uint64_t rdtsc() noexcept {
#if POSEIDON_OBS_ENABLED
  return __builtin_ia32_rdtsc();
#else
  return 0;
#endif
}

inline unsigned shard_index() noexcept {
#if POSEIDON_OBS_ENABLED
  // Cached per thread: thread_ordinal() is an out-of-line call into another
  // translation unit, and shard_index() runs on every counter increment.
  thread_local const unsigned cached = thread_ordinal() & (kShards - 1);
  return cached;
#else
  return 0;
#endif
}

// Monotonic event counter, sharded to keep increments uncontended.
class Counter {
 public:
  void inc(std::uint64_t n = 1) noexcept {
#if POSEIDON_OBS_ENABLED
    shards_[shard_index()].v.fetch_add(n, std::memory_order_relaxed);
#else
    (void)n;
#endif
  }

  std::uint64_t read() const noexcept {
    std::uint64_t total = 0;
    for (const Shard& s : shards_) {
      total += s.v.load(std::memory_order_relaxed);
    }
    return total;
  }

 private:
  struct alignas(kCacheLineSize) Shard {
    std::atomic<std::uint64_t> v{0};
  };
  Shard shards_[kShards];
};

// Fixed-bucket histogram: 64 buckets, sharded like Counter.  Two indexing
// conventions share the type:
//   * record(value)  — bucket floor(log2(value)); value 0 lands in bucket
//     0.  Used for latencies (tsc deltas) and sizes: bucket b covers
//     [2^b, 2^(b+1)).
//   * add(bucket)    — direct linear bucket index (clamped), used for
//     small discrete quantities such as hash probe lengths and size
//     classes.
// Bucket counts are exact: every recorded value lands in exactly one
// bucket, which the bucket-boundary tests assert to the unit.
class Histogram {
 public:
  void record(std::uint64_t value) noexcept {
    add(value == 0 ? 0 : log2_floor(value));
  }

  void add(unsigned bucket) noexcept {
#if POSEIDON_OBS_ENABLED
    if (bucket >= kHistBuckets) bucket = kHistBuckets - 1;
    shards_[shard_index()].b[bucket].fetch_add(1, std::memory_order_relaxed);
#else
    (void)bucket;
#endif
  }

  std::uint64_t bucket(unsigned i) const noexcept {
    if (i >= kHistBuckets) return 0;
    std::uint64_t total = 0;
    for (const Shard& s : shards_) {
      total += s.b[i].load(std::memory_order_relaxed);
    }
    return total;
  }

  std::uint64_t count() const noexcept {
    std::uint64_t total = 0;
    for (unsigned i = 0; i < kHistBuckets; ++i) total += bucket(i);
    return total;
  }

  // Highest non-empty bucket + 1 (compact export); 0 when empty.
  unsigned used_buckets() const noexcept {
    for (unsigned i = kHistBuckets; i-- > 0;) {
      if (bucket(i) != 0) return i + 1;
    }
    return 0;
  }

 private:
  // One contiguous bucket array per shard: a thread mutates only its own
  // shard's lines, so there is no cross-thread false sharing, and the
  // buckets a single thread touches stay dense in its cache.
  struct alignas(kCacheLineSize) Shard {
    std::atomic<std::uint64_t> b[kHistBuckets]{};
  };
  Shard shards_[kShards];
};

// RAII latency probe: records rdtsc delta into a histogram on scope exit.
// The pointer form is a no-op when given nullptr (uninstrumented contexts
// and the sampled hot paths both use it).
class CycleTimer {
 public:
  explicit CycleTimer(Histogram& h) noexcept : h_(&h), t0_(rdtsc()) {}
  explicit CycleTimer(Histogram* h) noexcept
      : h_(h), t0_(h != nullptr ? rdtsc() : 0) {}
  ~CycleTimer() {
#if POSEIDON_OBS_ENABLED
    if (h_ != nullptr) h_->record(rdtsc() - t0_);
#endif
  }
  CycleTimer(const CycleTimer&) = delete;
  CycleTimer& operator=(const CycleTimer&) = delete;

 private:
  Histogram* h_;
  std::uint64_t t0_;
};

// Latency histograms on the per-operation hot paths sample 1 in
// kLatencySamplePeriod calls per thread: two rdtscs plus a bucket add on
// every operation would eat most of the <5% overhead budget, while the
// sampled log2 distribution converges on the same shape.
inline constexpr unsigned kLatencySamplePeriod = 64;

inline bool latency_sample_tick() noexcept {
#if POSEIDON_OBS_ENABLED
  thread_local unsigned tick = 0;
  return (++tick & (kLatencySamplePeriod - 1)) == 0;
#else
  return false;
#endif
}

// The per-heap metrics registry.  A fixed set of well-known instruments —
// enumerable via visit_counters/visit_histograms so exporters need no
// registration protocol and the hot path needs no name lookups.
struct Metrics {
  // Operation counters.
  Counter alloc_calls;     // Heap::alloc entered
  Counter alloc_fails;     // Heap::alloc exhausted every sub-heap
  Counter free_calls;      // Heap::free entered
  Counter free_rejects;    // invalid/double frees rejected (paper §5.5)
  Counter tx_alloc_calls;  // Heap::tx_alloc entered
  Counter tx_commits;      // micro-log truncations (commit points)
  Counter cache_hits;      // thread-cache magazine pops
  Counter cache_misses;    // magazine empty, refill path taken
  Counter cache_flushes;   // watermark flush batches
  Counter defrag_runs;     // §5.4 case-1 class-dry defragmentations
  Counter undo_commits;    // undo-log generation bumps
  Counter undo_saves;      // undo entries appended
  Counter micro_appends;   // micro-log appends (tx allocation history)

  // Fault-domain counters (detection / repair / degradation).
  Counter corruption_detected;   // checksum, probe or invariant failures
  Counter scavenge_repairs;      // sub-heaps rebuilt by scavenge
  Counter subheaps_quarantined;  // transitions into the quarantined state
  Counter punch_hole_skips;      // fallocate degradations (EOPNOTSUPP/ENOSPC)
  Counter fsck_runs;             // explicit Heap::fsck() passes
  Counter numa_bind_fails;       // mbind refused a sub-heap placement hint
  Counter owner_takeovers;       // stale owner records superseded at open

  // Allocation-service counters (src/svc; zero unless a server runs on
  // this heap).
  Counter svc_requests;           // ring requests executed by service threads
  Counter svc_ops;                // individual ops inside those requests
  Counter svc_sessions_opened;    // client sessions admitted
  Counter svc_sessions_reclaimed; // sessions reclaimed (clean or zombie)
  Counter svc_claims_discarded;   // dead-claimant submission slots recycled
  Counter svc_cpl_overflows;      // completion-ring-full: results freed back
  Counter svc_wakeups;            // service-thread futex sleeps ended
  Counter svc_failovers;          // server starts that replaced a crashed one
  Counter svc_reconnects;         // session admissions that were reconnects
  Counter svc_reconcile_dropped;  // orphaned tagged blocks freed (lost allocs)
  Counter svc_reconcile_replayed; // lost-completion frees replayed if-owner
  Counter svc_orphans_reclaimed;  // tagged blocks freed past a dead session's
                                  // consumed watermark (client+server death)

  // Snapshot counters (core/snapshot.cpp).
  Counter snapshot_runs;          // Heap::snapshot / snapshot_incremental
  Counter snapshot_pages_copied;  // 4 KiB pages written into snapshot images
  Counter snapshot_bytes_copied;  // bytes written into snapshot images

  // Crash-state exploration (src/crashcheck, driven by torture
  // --crashcheck).  Bumped on the audited heap by the harness so a
  // postmortem shows how much exploration the file has survived.
  Counter crashcheck_states;      // distinct persistent images audited
  Counter crashcheck_violations;  // recovery violations found (should stay 0)

  // Latency histograms (rdtsc cycles, log2 buckets).
  Histogram alloc_cycles;
  Histogram free_cycles;
  Histogram tx_alloc_cycles;
  Histogram defrag_cycles;
  Histogram undo_commit_cycles;  // commit = truncation persist
  Histogram log_write_cycles;    // micro/cache log append persists
  Histogram svc_req_cycles;      // ring request service time (dequeue→reply)

  // Shape histograms (linear buckets).
  Histogram probe_len;         // hash-table insert probe distance
  Histogram alloc_size_class;  // size class of every successful alloc
  Histogram svc_ring_depth;    // submission depth observed per dequeue (log2)

  template <typename F>
  void visit_counters(F&& f) const {
    f("alloc_calls", alloc_calls);
    f("alloc_fails", alloc_fails);
    f("free_calls", free_calls);
    f("free_rejects", free_rejects);
    f("tx_alloc_calls", tx_alloc_calls);
    f("tx_commits", tx_commits);
    f("cache_hits", cache_hits);
    f("cache_misses", cache_misses);
    f("cache_flushes", cache_flushes);
    f("defrag_runs", defrag_runs);
    f("undo_commits", undo_commits);
    f("undo_saves", undo_saves);
    f("micro_appends", micro_appends);
    f("corruption_detected", corruption_detected);
    f("scavenge_repairs", scavenge_repairs);
    f("subheaps_quarantined", subheaps_quarantined);
    f("punch_hole_skips", punch_hole_skips);
    f("fsck_runs", fsck_runs);
    f("numa_bind_fails", numa_bind_fails);
    f("owner_takeovers", owner_takeovers);
    f("svc_requests", svc_requests);
    f("svc_ops", svc_ops);
    f("svc_sessions_opened", svc_sessions_opened);
    f("svc_sessions_reclaimed", svc_sessions_reclaimed);
    f("svc_claims_discarded", svc_claims_discarded);
    f("svc_cpl_overflows", svc_cpl_overflows);
    f("svc_wakeups", svc_wakeups);
    f("svc_failovers", svc_failovers);
    f("svc_reconnects", svc_reconnects);
    f("svc_reconcile_dropped", svc_reconcile_dropped);
    f("svc_reconcile_replayed", svc_reconcile_replayed);
    f("svc_orphans_reclaimed", svc_orphans_reclaimed);
    f("snapshot_runs", snapshot_runs);
    f("snapshot_pages_copied", snapshot_pages_copied);
    f("snapshot_bytes_copied", snapshot_bytes_copied);
    f("crashcheck_states", crashcheck_states);
    f("crashcheck_violations", crashcheck_violations);
  }

  template <typename F>
  void visit_histograms(F&& f) const {
    f("alloc_cycles", alloc_cycles);
    f("free_cycles", free_cycles);
    f("tx_alloc_cycles", tx_alloc_cycles);
    f("defrag_cycles", defrag_cycles);
    f("undo_commit_cycles", undo_commit_cycles);
    f("log_write_cycles", log_write_cycles);
    f("svc_req_cycles", svc_req_cycles);
    f("probe_len", probe_len);
    f("alloc_size_class", alloc_size_class);
    f("svc_ring_depth", svc_ring_depth);
  }
};

}  // namespace poseidon::obs
