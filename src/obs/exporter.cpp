#include "obs/exporter.hpp"

#include <cinttypes>
#include <cstdarg>
#include <cstdio>

#include "core/heap.hpp"
#include "mpk/mpk.hpp"
#include "obs/flight_recorder.hpp"
#include "obs/metrics.hpp"
#include "pmem/persist.hpp"

namespace poseidon::obs {

namespace {

void fmt(std::string& out, const char* f, ...) {
  char buf[256];
  va_list ap;
  va_start(ap, f);
  const int n = std::vsnprintf(buf, sizeof(buf), f, ap);
  va_end(ap);
  if (n > 0) out.append(buf, static_cast<std::size_t>(n));
}

// Per-size-class occupancy, computed from the block index (takes each
// sub-heap lock in turn).
struct Occupancy {
  std::uint64_t live[core::kMaxClasses] = {};
  std::uint64_t free[core::kMaxClasses] = {};
};

Occupancy scan_occupancy(const core::Heap& heap) {
  Occupancy occ;
  heap.visit_blocks([&](unsigned, std::uint64_t, std::uint32_t cls,
                        std::uint32_t status) {
    if (cls >= core::kMaxClasses) return;
    if (status == core::kBlockAllocated) {
      ++occ.live[cls];
    } else {
      ++occ.free[cls];
    }
  });
  return occ;
}

void json_events(std::string& out, const std::vector<FlightEvent>& evs) {
  out += "[";
  for (std::size_t i = 0; i < evs.size(); ++i) {
    const FlightEvent& e = evs[i];
    if (i != 0) out += ",";
    fmt(out,
        "{\"seq\":%" PRIu64 ",\"tsc\":%" PRIu64
        ",\"op\":\"%s\",\"size_class\":%u,\"subheap\":%u,\"arg\":%" PRIu64
        "}",
        e.seq, e.tsc, op_name(static_cast<FlightOp>(e.op)),
        unsigned{e.size_class}, unsigned{e.subheap}, e.arg);
  }
  out += "]";
}

}  // namespace

std::string Exporter::json() const {
  const core::HeapStats st = heap_.stats();
  const Metrics& m = heap_.metrics();
  std::string out;
  out.reserve(4096);

  out += "{\"heap\":{";
  fmt(out, "\"id\":%" PRIu64 ",\"nsubheaps\":%u,\"user_capacity\":%" PRIu64,
      heap_.heap_id(), heap_.nsubheaps(), heap_.user_capacity());
  fmt(out, ",\"nshards\":%u,\"protect\":\"%s\",\"obs_compiled\":%s",
      heap_.shard_count(), mpk::mode_name(heap_.protect_mode()),
      POSEIDON_OBS_ENABLED ? "true" : "false");
  fmt(out, ",\"persist_domain\":\"%s\",\"flush_insn\":\"%s\"",
      pmem::persist_domain_name(pmem::persist_domain()),
      pmem::flush_insn_name());
  out += ",\"shards\":[";
  for (unsigned s = 0; s < heap_.shard_count(); ++s) {
    const core::PoolShard* sh = heap_.shard(s);
    if (s != 0) out += ",";
    if (sh == nullptr) {
      fmt(out, "{\"index\":%u,\"quarantined\":true}", s);
    } else {
      fmt(out,
          "{\"index\":%u,\"quarantined\":false,\"id\":%" PRIu64
          ",\"node\":%u,\"nsubheaps\":%u}",
          s, sh->heap_id(), heap_.shard_node(s), sh->nsubheaps());
    }
  }
  out += "]}";

  out += ",\"stats\":{";
  fmt(out,
      "\"live_blocks\":%" PRIu64 ",\"free_blocks\":%" PRIu64
      ",\"allocated_bytes\":%" PRIu64 ",\"subheaps_materialized\":%u",
      st.live_blocks, st.free_blocks, st.allocated_bytes,
      st.subheaps_materialized);
  fmt(out,
      ",\"splits\":%" PRIu64 ",\"merges\":%" PRIu64
      ",\"window_merges\":%" PRIu64 ",\"hash_extensions\":%" PRIu64
      ",\"hash_shrinks\":%" PRIu64 ",\"cache_cached_blocks\":%" PRIu64 "}",
      st.splits, st.merges, st.window_merges, st.hash_extensions,
      st.hash_shrinks, st.cache_cached_blocks);

  out += ",\"counters\":{";
  bool first = true;
  m.visit_counters([&](const char* name, const Counter& c) {
    fmt(out, "%s\"%s\":%" PRIu64, first ? "" : ",", name, c.read());
    first = false;
  });
  fmt(out, "%s\"mpk_window_switches\":%" PRIu64 "}", first ? "" : ",",
      mpk::write_window_switches());

  out += ",\"histograms\":{";
  first = true;
  m.visit_histograms([&](const char* name, const Histogram& h) {
    fmt(out, "%s\"%s\":{\"count\":%" PRIu64 ",\"buckets\":[", first ? "" : ",",
        name, h.count());
    first = false;
    const unsigned used = h.used_buckets();
    for (unsigned i = 0; i < used; ++i) {
      fmt(out, "%s%" PRIu64, i == 0 ? "" : ",", h.bucket(i));
    }
    out += "]}";
  });
  out += "}";

  const Occupancy occ = scan_occupancy(heap_);
  out += ",\"size_classes\":[";
  first = true;
  for (unsigned c = 0; c < core::kMaxClasses; ++c) {
    if (occ.live[c] == 0 && occ.free[c] == 0) continue;
    fmt(out, "%s{\"class\":%u,\"block_bytes\":%" PRIu64 ",\"live\":%" PRIu64
        ",\"free\":%" PRIu64 "}",
        first ? "" : ",", c, std::uint64_t{1} << c, occ.live[c], occ.free[c]);
    first = false;
  }
  out += "]";

  fmt(out, ",\"flight\":{\"mode\":\"%s\",\"events\":",
      mode_name(heap_.flight_mode()));
  json_events(out, heap_.flight_events());
  out += ",\"postmortem\":";
  json_events(out, heap_.flight_postmortem());
  out += "}}";
  return out;
}

std::string Exporter::text() const {
  const core::HeapStats st = heap_.stats();
  const Metrics& m = heap_.metrics();
  std::string out;
  out.reserve(4096);

  fmt(out, "poseidon heap %" PRIu64 ": %u shard(s), %u sub-heaps, %" PRIu64
      " B user capacity, protect=%s, obs=%s, domain=%s (%s)\n",
      heap_.heap_id(), heap_.shard_count(), heap_.nsubheaps(),
      heap_.user_capacity(), mpk::mode_name(heap_.protect_mode()),
      POSEIDON_OBS_ENABLED ? "on" : "compiled-out",
      pmem::persist_domain_name(pmem::persist_domain()),
      pmem::flush_insn_name());
  fmt(out, "occupancy: %" PRIu64 " live / %" PRIu64 " free blocks, %" PRIu64
      " B allocated\n",
      st.live_blocks, st.free_blocks, st.allocated_bytes);

  out += "counters:\n";
  m.visit_counters([&](const char* name, const Counter& c) {
    fmt(out, "  %-20s %" PRIu64 "\n", name, c.read());
  });
  fmt(out, "  %-20s %" PRIu64 "\n", "mpk_window_switches",
      mpk::write_window_switches());

  out += "histograms (log2 buckets unless noted):\n";
  m.visit_histograms([&](const char* name, const Histogram& h) {
    const std::uint64_t total = h.count();
    if (total == 0) return;
    fmt(out, "  %s: %" PRIu64 " samples\n", name, total);
    const unsigned used = h.used_buckets();
    for (unsigned i = 0; i < used; ++i) {
      const std::uint64_t n = h.bucket(i);
      if (n == 0) continue;
      fmt(out, "    [%2u] %" PRIu64 "\n", i, n);
    }
  });

  fmt(out, "flight recorder (%s):\n", mode_name(heap_.flight_mode()));
  const std::vector<FlightEvent> evs = heap_.flight_events();
  // Most recent events only — the full ring belongs in the JSON dump.
  constexpr std::size_t kTextTail = 16;
  const std::size_t start = evs.size() > kTextTail ? evs.size() - kTextTail : 0;
  for (std::size_t i = start; i < evs.size(); ++i) {
    const FlightEvent& e = evs[i];
    fmt(out, "  #%-6" PRIu64 " sub%-2u %-11s class=%-2u arg=%" PRIu64 "\n",
        e.seq, unsigned{e.subheap}, op_name(static_cast<FlightOp>(e.op)),
        unsigned{e.size_class}, e.arg);
  }
  const std::vector<FlightEvent>& pm = heap_.flight_postmortem();
  if (!pm.empty()) {
    fmt(out, "post-mortem (previous session, %zu events survived):\n",
        pm.size());
    const std::size_t pstart = pm.size() > kTextTail ? pm.size() - kTextTail : 0;
    for (std::size_t i = pstart; i < pm.size(); ++i) {
      const FlightEvent& e = pm[i];
      fmt(out, "  #%-6" PRIu64 " sub%-2u %-11s class=%-2u arg=%" PRIu64 "\n",
          e.seq, unsigned{e.subheap}, op_name(static_cast<FlightOp>(e.op)),
          unsigned{e.size_class}, e.arg);
    }
  }
  return out;
}

}  // namespace poseidon::obs
