// Exporters (observability subsystem, pillar 3): render one heap's
// metrics registry, occupancy and flight-recorder contents as JSON (for
// tooling — heap_inspect, bench sidecars, poseidon_stats_dump) or as a
// human-readable text summary.
//
// Both renderings are cold-path: they aggregate the sharded instruments,
// walk the block index under the sub-heap locks for per-class occupancy,
// and snapshot the flight rings.  Neither perturbs the hot path beyond
// the reads themselves.
#pragma once

#include <string>

namespace poseidon::core {
class Heap;
}

namespace poseidon::obs {

class Exporter {
 public:
  explicit Exporter(const core::Heap& heap) noexcept : heap_(heap) {}

  // Machine-readable dump: heap identity + HeapStats + every counter and
  // histogram + per-size-class live/free occupancy + flight events (live
  // ring and, when present, the post-mortem captured at open()).
  std::string json() const;

  // Human-readable summary of the same data (histograms as one line per
  // non-empty bucket; flight recorder as the most recent events).
  std::string text() const;

 private:
  const core::Heap& heap_;
};

}  // namespace poseidon::obs
