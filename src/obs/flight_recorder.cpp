#include "obs/flight_recorder.hpp"

#include <algorithm>

#include "pmem/persist.hpp"

namespace poseidon::obs {

const char* mode_name(FlightMode m) noexcept {
  switch (m) {
    case FlightMode::kOff: return "off";
    case FlightMode::kVolatile: return "volatile";
    case FlightMode::kPersistent: return "persistent";
  }
  return "?";
}

const char* op_name(FlightOp op) noexcept {
  switch (op) {
    case FlightOp::kNone: return "none";
    case FlightOp::kAlloc: return "alloc";
    case FlightOp::kFree: return "free";
    case FlightOp::kTxAlloc: return "tx-alloc";
    case FlightOp::kTxCommit: return "tx-commit";
    case FlightOp::kCacheHit: return "cache-hit";
    case FlightOp::kCacheFlush: return "cache-flush";
    case FlightOp::kDefrag: return "defrag";
    case FlightOp::kRecover: return "recover";
    case FlightOp::kOpen: return "open";
    case FlightOp::kCorruption: return "corruption";
    case FlightOp::kScavenge: return "scavenge";
    case FlightOp::kQuarantine: return "quarantine";
    case FlightOp::kNumaBindFail: return "numa-bind-fail";
    case FlightOp::kOwnerTakeover: return "owner-takeover";
    case FlightOp::kPersistDomain: return "persist-domain";
    case FlightOp::kSvcSession: return "svc-session";
    case FlightOp::kSvcReclaim: return "svc-reclaim";
    case FlightOp::kSvcState: return "svc-state";
    case FlightOp::kSvcFailover: return "svc-failover";
    case FlightOp::kSvcReconcile: return "svc-reconcile";
    case FlightOp::kSnapshot: return "snapshot";
    case FlightOp::kOrphanReclaim: return "orphan-reclaim";
    case FlightOp::kCrashCheck: return "crashcheck";
  }
  return "?";
}

namespace {

// Every slot field is accessed through atomic_ref: two writers may collide
// on one slot after a wrap-around, and snapshots run concurrently with
// writers — relaxed atomics keep both well-defined (and compile to plain
// MOVs on x86).  seq is stored last (release) / loaded first (acquire) so
// observing a seq implies observing its payload.
template <typename T>
inline void put(T& dst, T val) noexcept {
  std::atomic_ref<T>(dst).store(val, std::memory_order_relaxed);
}

template <typename T>
inline T get(const T& src) noexcept {
  return std::atomic_ref<const T>(src).load(std::memory_order_relaxed);
}

inline std::uint64_t load_seq(const FlightEvent& e) noexcept {
  return std::atomic_ref<const std::uint64_t>(e.seq).load(
      std::memory_order_acquire);
}

}  // namespace

FlightRing::FlightRing(FlightEvent* slots, std::uint64_t capacity,
                       bool persistent, std::uint32_t subheap) noexcept
    : slots_(slots), cap_(capacity), persistent_(persistent),
      subheap_(subheap), head_(0) {
  // Re-derive the head from surviving contents: the largest stored seq is
  // the last claim that completed before the previous session ended.  A
  // fresh (all-zero) ring yields head 0.
  std::uint64_t max_seq = 0;
  for (std::uint64_t i = 0; i < cap_; ++i) {
    max_seq = std::max(max_seq, load_seq(slots_[i]));
  }
  head_.store(max_seq, std::memory_order_relaxed);
}

void FlightRing::record(FlightOp op, std::uint16_t size_class,
                        std::uint64_t arg) noexcept {
  const std::uint64_t seq = head_.fetch_add(1, std::memory_order_relaxed) + 1;
  FlightEvent& e = slots_[(seq - 1) % cap_];
  // Invalidate before overwriting: a crash mid-payload then leaves seq 0
  // (skipped at dump) instead of the old seq over a half-new payload.
  std::atomic_ref<std::uint64_t>(e.seq).store(0, std::memory_order_release);
  put(e.tsc, rdtsc());
  put(e.op, static_cast<std::uint16_t>(op));
  put(e.size_class, size_class);
  put(e.subheap, subheap_);
  put(e.arg, arg);
  std::atomic_ref<std::uint64_t>(e.seq).store(seq, std::memory_order_release);
  if (persistent_) {
    // Write-back without a fence: a lost trailing event only shortens the
    // post-mortem by one; the allocator's own persists fence soon after.
    pmem::flush(&e, sizeof(FlightEvent));
  }
}

std::vector<FlightEvent> FlightRing::snapshot() const {
  const std::uint64_t h = head_.load(std::memory_order_acquire);
  std::vector<FlightEvent> out;
  if (h == 0) return out;
  out.reserve(static_cast<std::size_t>(std::min(h, cap_)));
  for (std::uint64_t i = 0; i < cap_; ++i) {
    const FlightEvent& e = slots_[i];
    const std::uint64_t seq = load_seq(e);
    // A valid slot holds a claimed seq that actually maps onto it; a torn
    // write from a crashed claim leaves the previous occupant's seq (which
    // still maps here — its payload is the old, complete event) or zero.
    if (seq == 0 || seq > h || (seq - 1) % cap_ != i) continue;
    FlightEvent copy;
    copy.seq = seq;
    copy.tsc = get(e.tsc);
    copy.op = get(e.op);
    copy.size_class = get(e.size_class);
    copy.subheap = get(e.subheap);
    copy.arg = get(e.arg);
    out.push_back(copy);
  }
  std::sort(out.begin(), out.end(),
            [](const FlightEvent& a, const FlightEvent& b) {
              return a.seq < b.seq;
            });
  return out;
}

}  // namespace poseidon::obs
