// Flight recorder (observability subsystem, pillar 2): a lock-free
// per-sub-heap ring of fixed-size binary events — what the allocator was
// doing right before a crash.
//
// Each event is 32 bytes: a 1-based sequence number, the raw tsc, the
// operation, the size class, the owning sub-heap and one argument (block
// offset or payload).  Writers claim a slot with one relaxed fetch_add on
// the ring head and fill it in place; the sequence word is stored last
// (release), so a torn slot is detectable at dump time — its stored seq
// does not match the seq the head implies for that slot.
//
// Two placements share the code path:
//   * volatile  — the ring lives in DRAM; events cost ~a cache line write.
//   * persistent — the ring lives in the PM pool (outside the MPK-guarded
//     prefix, like the cache logs, so recording never pays a wrpkru
//     switch).  Each completed event is written back (clwb, no fence: the
//     recorder is diagnostic and piggybacks on the operation's own
//     fences), and Heap::open() snapshots the surviving events before any
//     new operation runs — every crash-point test becomes a post-mortem
//     with history.
//
// The head counter intentionally lives in DRAM only: recovery re-derives
// it as max(slot seq), so no header needs crash consistency.
#pragma once

#include <atomic>
#include <cstdint>
#include <vector>

#include "obs/metrics.hpp"

namespace poseidon::obs {

enum class FlightMode : std::uint8_t {
  kOff = 0,
  kVolatile = 1,    // DRAM ring (default)
  kPersistent = 2,  // ring in the PM pool; survives crashes
};

const char* mode_name(FlightMode m) noexcept;

enum class FlightOp : std::uint16_t {
  kNone = 0,
  kAlloc = 1,      // singleton allocation committed; arg = block offset
  kFree = 2,       // validated free committed; arg = block offset
  kTxAlloc = 3,    // transactional allocation; arg = block offset
  kTxCommit = 4,   // micro log truncated
  kCacheHit = 5,   // alloc served from a thread-cache magazine
  kCacheFlush = 6, // magazine watermark flush; arg = blocks flushed
  kDefrag = 7,     // class-dry defragmentation ran; arg = target class
  kRecover = 8,    // recovery replayed state for this sub-heap
  kOpen = 9,       // heap instance attached (marks session boundaries)
  kCorruption = 10, // validation detected damaged metadata; arg = detail
  kScavenge = 11,   // scavenge rebuilt this sub-heap; arg = records kept
  kQuarantine = 12, // sub-heap entered quarantine
  kNumaBindFail = 13, // first refused mbind on this shard; arg = node
  kOwnerTakeover = 14, // stale owner superseded; arg = OwnerStaleness class
  kPersistDomain = 15, // domain active at open; arg = pmem::PersistDomain
  kSvcSession = 16,    // service session opened; arg = session index
  kSvcReclaim = 17,    // session reclaimed; arg = session index
  kSvcState = 18,      // service state transition; arg = svc::SvcState
  kSvcFailover = 19,   // server start replacing a crashed one; arg = old gen
  kSvcReconcile = 20,  // reconcile op executed; arg = blocks freed/replayed
  kSnapshot = 21,      // shard image captured; arg = pages copied
  kOrphanReclaim = 22, // dead-session watermark sweep; arg = blocks freed
  kCrashCheck = 23,    // crash-state exploration pass; arg = distinct states
};

const char* op_name(FlightOp op) noexcept;

struct FlightEvent {
  std::uint64_t seq;  // 1-based; 0 = slot never written
  std::uint64_t tsc;
  std::uint16_t op;          // FlightOp
  std::uint16_t size_class;  // 0 when not applicable
  std::uint32_t subheap;
  std::uint64_t arg;  // block offset or op-specific payload
};
static_assert(sizeof(FlightEvent) == 32);

// Events per sub-heap ring; kept modest so the persistent carve-out stays
// one hole-punchable page bundle per sub-heap (1024 * 32 B = 32 KiB).
inline constexpr std::uint64_t kFlightRingCap = 1024;

// One ring over caller-owned storage of `capacity` FlightEvents (zeroed on
// first use; persistent rings re-attach to surviving contents).
class FlightRing {
 public:
  FlightRing(FlightEvent* slots, std::uint64_t capacity, bool persistent,
             std::uint32_t subheap) noexcept;

  FlightRing(const FlightRing&) = delete;
  FlightRing& operator=(const FlightRing&) = delete;

  // Lock-free, wait-free bar the fetch_add; safe from any thread.
  void record(FlightOp op, std::uint16_t size_class,
              std::uint64_t arg) noexcept;

  // Events currently in the ring, oldest first, torn/stale slots skipped.
  // Racy with concurrent writers by design (diagnostic snapshot).
  std::vector<FlightEvent> snapshot() const;

  std::uint64_t head() const noexcept {
    return head_.load(std::memory_order_relaxed);
  }
  std::uint64_t capacity() const noexcept { return cap_; }

 private:
  FlightEvent* slots_;
  std::uint64_t cap_;
  bool persistent_;
  std::uint32_t subheap_;
  std::atomic<std::uint64_t> head_;  // next seq - 1 (count of claims)
};

}  // namespace poseidon::obs
