#include "pmem/page_map.hpp"

#include <mutex>
#include <random>

namespace poseidon::pmem {

namespace {

std::uint64_t random_epoch_id() {
  static std::mutex mu;
  static std::mt19937_64 rng{std::random_device{}()};
  std::lock_guard<std::mutex> lk(mu);
  std::uint64_t v = 0;
  while (v == 0) v = rng();
  return v;
}

}  // namespace

PageMap::PageMap(const void* base, std::size_t len)
    : lo_(reinterpret_cast<std::uintptr_t>(base)),
      hi_(reinterpret_cast<std::uintptr_t>(base) + len),
      npages_((len + kPageMapPageSize - 1) / kPageMapPageSize),
      epoch_id_(random_epoch_id()) {
  const std::size_t nwords = (npages_ + 63) / 64;
  words_ = std::make_unique<std::atomic<std::uint64_t>[]>(nwords);
  for (std::size_t i = 0; i < nwords; ++i) {
    words_[i].store(0, std::memory_order_relaxed);
  }
}

std::size_t PageMap::harvest(std::vector<std::uint32_t>* out) noexcept {
  std::size_t count = 0;
  const std::size_t nwords = (npages_ + 63) / 64;
  for (std::size_t w = 0; w < nwords; ++w) {
    std::uint64_t bits = words_[w].exchange(0, std::memory_order_relaxed);
    while (bits != 0) {
      const unsigned b = static_cast<unsigned>(__builtin_ctzll(bits));
      bits &= bits - 1;
      ++count;
      if (out != nullptr) {
        out->push_back(static_cast<std::uint32_t>(w * 64 + b));
      }
    }
  }
  gen_.fetch_add(1, std::memory_order_relaxed);
  return count;
}

// ---- registry ---------------------------------------------------------------

std::atomic<unsigned> g_pagemap_active{0};

namespace {

constexpr unsigned kMaxTracked = 32;

struct TrackSlot {
  std::atomic<std::uintptr_t> lo{0};
  std::atomic<std::uintptr_t> hi{0};
  std::atomic<PageMap*> pm{nullptr};
};

TrackSlot g_slots[kMaxTracked];
std::mutex g_reg_mu;

}  // namespace

void pagemap_register(PageMap* pm, const void* base,
                      std::size_t len) noexcept {
  std::lock_guard<std::mutex> lk(g_reg_mu);
  for (auto& s : g_slots) {
    if (s.pm.load(std::memory_order_relaxed) != nullptr) continue;
    s.pm.store(pm, std::memory_order_relaxed);
    // Bounds published last (release): a lookup that sees them sees the
    // tracker pointer too.
    s.lo.store(reinterpret_cast<std::uintptr_t>(base),
               std::memory_order_relaxed);
    s.hi.store(reinterpret_cast<std::uintptr_t>(base) + len,
               std::memory_order_release);
    g_pagemap_active.fetch_add(1, std::memory_order_relaxed);
    return;
  }
  // Table full: this pool goes untracked.  snapshot_incremental detects
  // the missing tracker through the epoch handshake and demands a full.
}

void pagemap_unregister(PageMap* pm) noexcept {
  std::lock_guard<std::mutex> lk(g_reg_mu);
  for (auto& s : g_slots) {
    if (s.pm.load(std::memory_order_relaxed) != pm) continue;
    // Clear bounds first: lookups range-check before dereferencing, so a
    // cleared slot can never route a note to a dying tracker.
    s.hi.store(0, std::memory_order_release);
    s.lo.store(0, std::memory_order_relaxed);
    s.pm.store(nullptr, std::memory_order_release);
    g_pagemap_active.fetch_sub(1, std::memory_order_relaxed);
    return;
  }
}

void pagemap_note_slow(const void* p, std::size_t len) noexcept {
  const auto a = reinterpret_cast<std::uintptr_t>(p);
  for (auto& s : g_slots) {
    const std::uintptr_t hi = s.hi.load(std::memory_order_acquire);
    if (hi == 0 || a >= hi) continue;
    if (a < s.lo.load(std::memory_order_relaxed)) continue;
    PageMap* pm = s.pm.load(std::memory_order_relaxed);
    if (pm != nullptr) pm->note(p, len);
    return;
  }
}

}  // namespace poseidon::pmem
