// Persistence primitives for NVMM: cache-line write-back (clwb /
// clflushopt / clflush, selected at runtime) followed by a store fence.
//
// All *metadata* mutations in the Poseidon core go through the nv_* helpers
// below instead of raw stores.  In normal operation they compile down to a
// plain store; when a pmem::SimDomain is active (crash-consistency tests),
// every store additionally marks the covering cache lines dirty in the
// simulator and every persist commits them, letting tests model the loss of
// unflushed lines at a crash.
#pragma once

#include <cstddef>
#include <cstdint>
#include <cstring>
#include <atomic>

#include "common/compiler.hpp"

namespace poseidon::pmem {

// ---- simulator hooks (defined in sim_domain.cpp) --------------------------

// True when a SimDomain is registered; kept in a single atomic flag so the
// fast path costs one relaxed load.
extern std::atomic<bool> g_sim_active;

void sim_note_store(const void* addr, std::size_t len) noexcept;
void sim_note_persist(const void* addr, std::size_t len) noexcept;

inline bool sim_active() noexcept {
  return g_sim_active.load(std::memory_order_relaxed);
}

// ---- flush primitives ------------------------------------------------------

// Write back every cache line covering [addr, addr+len) without fencing.
void flush_lines(const void* addr, std::size_t len) noexcept;

// Store fence ordering prior write-backs.
void fence() noexcept;

// flush_lines + fence: the paper's "persistent barrier".
inline void persist(const void* addr, std::size_t len) noexcept {
  flush_lines(addr, len);
  fence();
  if (POSEIDON_UNLIKELY(sim_active())) sim_note_persist(addr, len);
}

// Flush without the trailing fence (callers batch several flushes and fence
// once).  The simulator treats it as persisted: clwb-initiated write-backs
// are not reordered with respect to each other by a later sfence, and we
// only model line-granularity loss, not store reordering inside a line.
inline void flush(const void* addr, std::size_t len) noexcept {
  flush_lines(addr, len);
  if (POSEIDON_UNLIKELY(sim_active())) sim_note_persist(addr, len);
}

// ---- instrumented store helpers -------------------------------------------

// Store a trivially-copyable value to NVMM.  Not atomic with respect to
// readers; callers serialize via the sub-heap lock.
template <typename T>
inline void nv_store(T& dst, const T& val) noexcept {
  static_assert(std::is_trivially_copyable_v<T>);
  dst = val;
  if (POSEIDON_UNLIKELY(sim_active())) sim_note_store(&dst, sizeof(T));
}

inline void nv_memcpy(void* dst, const void* src, std::size_t n) noexcept {
  std::memcpy(dst, src, n);
  if (POSEIDON_UNLIKELY(sim_active())) sim_note_store(dst, n);
}

inline void nv_memset(void* dst, int c, std::size_t n) noexcept {
  std::memset(dst, c, n);
  if (POSEIDON_UNLIKELY(sim_active())) sim_note_store(dst, n);
}

// Store + persist of a single value: the atomic commit idiom (e.g. log
// truncation writes an 8-byte count and persists it).
template <typename T>
inline void nv_store_persist(T& dst, const T& val) noexcept {
  nv_store(dst, val);
  persist(&dst, sizeof(T));
}

// Publication variant for the few 8-byte flags that lock-free readers poll
// without holding the owning lock (e.g. the sub-heap ready states): the
// store is release so readers pair with nv_load_acquire, which also keeps
// ThreadSanitizer builds clean on those paths.
inline void nv_store_release_persist(std::uint64_t& dst,
                                     std::uint64_t val) noexcept {
  std::atomic_ref<std::uint64_t>(dst).store(val, std::memory_order_release);
  if (POSEIDON_UNLIKELY(sim_active())) sim_note_store(&dst, sizeof dst);
  persist(&dst, sizeof dst);
}

inline std::uint64_t nv_load_acquire(const std::uint64_t& src) noexcept {
  return std::atomic_ref<std::uint64_t>(const_cast<std::uint64_t&>(src))
      .load(std::memory_order_acquire);
}

}  // namespace poseidon::pmem
