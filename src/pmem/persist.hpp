// Persistence primitives for NVMM: cache-line write-back (clwb /
// clflushopt / clflush, selected at runtime) followed by a store fence.
//
// All *metadata* mutations in the Poseidon core go through the nv_* helpers
// below instead of raw stores.  In normal operation they compile down to a
// plain store; when a pmem::SimDomain is active (crash-consistency tests),
// every store additionally marks the covering cache lines dirty in the
// simulator, every flush marks them flushed-pending, and every fence
// commits the pending lines — letting tests model the loss of unflushed
// (and flushed-but-unfenced) lines at a crash.
//
// The *persistence domain* decides how much of the barrier the platform
// actually needs.  On ADR hardware the caches sit outside the persistence
// domain, so a durable store costs a write-back plus a fence.  On eADR
// platforms the CPU caches are flushed on power failure, so a store is
// durable the moment it is globally visible and the write-back loop is
// wasted work — only the ordering fence remains.  On the DRAM-backed rigs
// the tests and benchmarks run on there is no power-failure durability at
// all (the file survives process death byte-for-byte), so both halves can
// be elided.  The domain is selected at runtime (Options::persist_domain,
// the POSEIDON_PERSIST_DOMAIN environment override, or /sys detection) and
// checked with one relaxed load on the fast path, mirroring g_sim_active.
#pragma once

#include <cstddef>
#include <cstdint>
#include <cstring>
#include <atomic>

#include "common/compiler.hpp"
#include "pmem/page_map.hpp"

namespace poseidon::pmem {

// ---- persistence domains ---------------------------------------------------

// Where the persistence boundary sits on this platform.
enum class PersistDomain : std::uint8_t {
  kCacheLineFlush = 0,  // ADR: write back every line, then fence
  kEadr = 1,            // caches inside the domain: ordering fence only
  kNone = 2,            // no durability boundary (DRAM rig): elide everything
};

// How a heap selects the domain (Options::persist_domain).  Resolution
// order: POSEIDON_PERSIST_DOMAIN env override > explicit mode > platform
// detection (kDetect).  The resolved domain is process-global.
enum class PersistDomainMode : std::uint8_t {
  kDetect = 0,
  kCacheLineFlush = 1,
  kEadr = 2,
  kNone = 3,
};

// The active domain; one relaxed load on every barrier fast path.
extern std::atomic<std::uint8_t> g_persist_domain;

inline PersistDomain persist_domain() noexcept {
  return static_cast<PersistDomain>(
      g_persist_domain.load(std::memory_order_relaxed));
}

void set_persist_domain(PersistDomain d) noexcept;

// Resolve env override > `mode` > platform probe, make it current, and
// return it.  Called by Heap::create/open; kDetect re-resolves every time
// so an explicit override never outlives the heap that asked for it.
PersistDomain apply_persist_domain(PersistDomainMode mode) noexcept;

// Platform probe only (result cached): a /sys/bus/nd device advertising a
// CPU-cache persistence domain means eADR; everything else (including no
// NVDIMMs at all) is the conservative cache-line-flush default.
PersistDomain detect_persist_domain() noexcept;

const char* persist_domain_name(PersistDomain d) noexcept;
// Accepts "cacheline"/"clwb"/"adr"/"flush", "eadr", "none"/"off".
bool parse_persist_domain(const char* s, PersistDomain* out) noexcept;

// Runtime-selected write-back instruction, for diagnostics/exporters.
const char* flush_insn_name() noexcept;

// False when the fallback is legacy clflush: CLFLUSH executions are
// ordered with respect to each other and to writes (Intel SDM vol. 2A,
// CLFLUSH), so the trailing SFENCE of a persist barrier buys nothing
// there.  CLWB/CLFLUSHOPT are weakly ordered and need the fence.
extern const bool g_flush_needs_fence;

// Scoped override of the process-global domain (tests and benches).
class ScopedPersistDomain {
 public:
  explicit ScopedPersistDomain(PersistDomain d) noexcept
      : prev_(persist_domain()) {
    set_persist_domain(d);
  }
  ~ScopedPersistDomain() { set_persist_domain(prev_); }

  ScopedPersistDomain(const ScopedPersistDomain&) = delete;
  ScopedPersistDomain& operator=(const ScopedPersistDomain&) = delete;

 private:
  PersistDomain prev_;
};

// ---- simulator hooks (defined in sim_domain.cpp) --------------------------

// True when a SimDomain or a SimObserver is registered; kept in a single
// atomic flag so the fast path costs one relaxed load.
extern std::atomic<bool> g_sim_active;

void sim_note_store(const void* addr, std::size_t len) noexcept;
void sim_note_flush(const void* addr, std::size_t len) noexcept;
void sim_note_fence() noexcept;

inline bool sim_active() noexcept {
  return g_sim_active.load(std::memory_order_relaxed);
}

// Passive tap on the same event stream a SimDomain consumes: every nv_*
// store, flush and fence is forwarded in program order, together with the
// address of the instrumented call site (the return address into the
// caller of the nv_* helper — the helpers are inlined, so it points at the
// allocator code that issued the barrier).  The crashcheck trace recorder
// (src/crashcheck/) is the one consumer; unlike a SimDomain an observer
// never mutates memory, so it composes with or without a domain.
class SimObserver {
 public:
  virtual void on_store(const void* addr, std::size_t len,
                        void* site) noexcept = 0;
  virtual void on_flush(const void* addr, std::size_t len,
                        void* site) noexcept = 0;
  virtual void on_fence() noexcept = 0;
  // Named crash points (pmem/crashpoint.hpp) hit while recording.
  virtual void on_crash_point(const char* name) noexcept = 0;

 protected:
  ~SimObserver() = default;
};

// Register/unregister (nullptr) the process-global observer.  Like
// SimDomain registration this is not thread-safe against concurrent nv_*
// traffic from other threads — recorders run single-threaded workloads.
void sim_set_observer(SimObserver* obs) noexcept;
SimObserver* sim_observer() noexcept;

// ---- persist sabotage (crashcheck's deliberately-broken build) -------------

// Test hook modeling a forgotten persistence barrier: the `nth` (1-based)
// persist() after arming is elided entirely — the store stays visible, no
// line is flushed and no fence retires — exactly the bug class the
// crashcheck explorer and flush lint exist to catch.  Only consulted when
// the simulator is active, so production fast paths keep their single
// relaxed load.
extern std::atomic<bool> g_persist_sabotage_armed;

void arm_persist_sabotage(std::uint64_t nth) noexcept;
void disarm_persist_sabotage() noexcept;
// Barriers seen since arming (counts past the elided one).
std::uint64_t persist_sabotage_hits() noexcept;
// Internal: counts one barrier; true when this is the one to elide.
bool persist_sabotage_tick() noexcept;

inline bool persist_sabotaged() noexcept {
  return POSEIDON_UNLIKELY(
             g_persist_sabotage_armed.load(std::memory_order_relaxed)) &&
         persist_sabotage_tick();
}

// ---- flush primitives ------------------------------------------------------

// Write back every cache line covering [addr, addr+len) without fencing.
// Domain-blind: callers below decide whether the platform needs it.
void flush_lines(const void* addr, std::size_t len) noexcept;

// Raw store fence, regardless of domain.
inline void sfence() noexcept { asm volatile("sfence" ::: "memory"); }

// Store fence ordering prior write-backs (elided under kNone).
inline void fence() noexcept {
  if (POSEIDON_LIKELY(persist_domain() != PersistDomain::kNone)) sfence();
  if (POSEIDON_UNLIKELY(sim_active())) sim_note_fence();
}

// flush_lines + fence: the paper's "persistent barrier".  Under eADR the
// write-back loop is elided (stores are durable at visibility; the fence
// still orders them); under kNone the whole barrier disappears.
inline void persist(const void* addr, std::size_t len) noexcept {
  if (POSEIDON_UNLIKELY(len == 0)) return;  // nothing to persist: no fence
  if (POSEIDON_UNLIKELY(sim_active()) && persist_sabotaged()) return;
  // Dirty-page tracking taps the barrier, not the stores: every range a
  // writer makes durable is exactly the set an incremental snapshot must
  // recopy.  Noted before the domain switch so eADR/kNone elision (which
  // skips the flush work, not the durability) never hides a write.
  pagemap_note(addr, len);
  switch (persist_domain()) {
    case PersistDomain::kCacheLineFlush:
      flush_lines(addr, len);
      if (g_flush_needs_fence) sfence();
      break;
    case PersistDomain::kEadr:
      sfence();
      break;
    case PersistDomain::kNone:
      break;
  }
  if (POSEIDON_UNLIKELY(sim_active())) {
    sim_note_flush(addr, len);
    sim_note_fence();
  }
}

// Flush without the trailing fence (callers batch several flushes and
// fence once).  The simulator marks the lines flushed-pending: they become
// durable only at the next fence(), so a crash in between can still lose
// them — a clwb only *initiates* the write-back; the fence is what
// guarantees completion.
inline void flush(const void* addr, std::size_t len) noexcept {
  if (len == 0) return;
  pagemap_note(addr, len);
  if (POSEIDON_LIKELY(persist_domain() == PersistDomain::kCacheLineFlush)) {
    flush_lines(addr, len);
  }
  if (POSEIDON_UNLIKELY(sim_active())) sim_note_flush(addr, len);
}

// ---- batched range flushing ------------------------------------------------

// Accumulates the line-aligned ranges of a multi-range metadata write and
// retires them with coalesced flushes and ONE fence at commit().  Replaces
// the per-range persist() loops of the cold writers (undo commit/replay,
// scavenge, seal, cache-log recovery): adjacent and overlapping ranges
// merge, so k touching records cost one flush loop instead of k fences.
//
// Only safe where the caller needs no ordering BETWEEN the added ranges —
// everything added becomes durable together at commit().  Ordered chains
// (micro-log entry before count, shadow body before magic) must keep their
// individual persists.
class FlushBatch {
 public:
  FlushBatch() = default;
  ~FlushBatch() { commit(); }

  FlushBatch(const FlushBatch&) = delete;
  FlushBatch& operator=(const FlushBatch&) = delete;

  void add(const void* addr, std::size_t len) noexcept {
    if (len == 0) return;
    any_ = true;
    // Before the elision below: under eADR/kNone the ranges never reach
    // flush(), so the dirty-page tracker must see them here.
    pagemap_note(addr, len);
    if (persist_domain() != PersistDomain::kCacheLineFlush &&
        POSEIDON_LIKELY(!sim_active())) {
      return;  // flushes elided; commit() still fences once
    }
    const std::uintptr_t lo = cache_line_of(addr);
    const std::uintptr_t hi =
        (reinterpret_cast<std::uintptr_t>(addr) + len + kCacheLineSize - 1) &
        ~static_cast<std::uintptr_t>(kCacheLineSize - 1);
    for (std::size_t i = 0; i < n_; ++i) {
      // Merge touching/overlapping ranges ([lo,hi) exclusive, so adjacency
      // is lo == ranges_[i].hi).  A bridged pair of older ranges may end
      // up overlapping each other afterwards — a wasted duplicate flush at
      // worst, never a missed one.
      if (lo <= ranges_[i].hi && hi >= ranges_[i].lo) {
        if (lo < ranges_[i].lo) ranges_[i].lo = lo;
        if (hi > ranges_[i].hi) ranges_[i].hi = hi;
        return;
      }
    }
    if (n_ == kMaxRanges) drain();  // flush early; the fence stays deferred
    ranges_[n_].lo = lo;
    ranges_[n_].hi = hi;
    ++n_;
  }

  // Flush every accumulated range, then fence once.  Idempotent.
  void commit() noexcept {
    drain();
    if (any_) {
      fence();
      any_ = false;
    }
  }

 private:
  struct Range {
    std::uintptr_t lo;
    std::uintptr_t hi;  // exclusive
  };
  static constexpr std::size_t kMaxRanges = 8;

  void drain() noexcept {
    for (std::size_t i = 0; i < n_; ++i) {
      flush(reinterpret_cast<const void*>(ranges_[i].lo),
            ranges_[i].hi - ranges_[i].lo);
    }
    n_ = 0;
  }

  Range ranges_[kMaxRanges];
  std::size_t n_ = 0;
  bool any_ = false;
};

// ---- instrumented store helpers -------------------------------------------

// Store a trivially-copyable value to NVMM.  Not atomic with respect to
// readers; callers serialize via the sub-heap lock.
template <typename T>
inline void nv_store(T& dst, const T& val) noexcept {
  static_assert(std::is_trivially_copyable_v<T>);
  dst = val;
  if (POSEIDON_UNLIKELY(sim_active())) sim_note_store(&dst, sizeof(T));
}

inline void nv_memcpy(void* dst, const void* src, std::size_t n) noexcept {
  std::memcpy(dst, src, n);
  if (POSEIDON_UNLIKELY(sim_active())) sim_note_store(dst, n);
}

inline void nv_memset(void* dst, int c, std::size_t n) noexcept {
  std::memset(dst, c, n);
  if (POSEIDON_UNLIKELY(sim_active())) sim_note_store(dst, n);
}

// Store + persist of a single value: the atomic commit idiom (e.g. log
// truncation writes an 8-byte count and persists it).
template <typename T>
inline void nv_store_persist(T& dst, const T& val) noexcept {
  nv_store(dst, val);
  persist(&dst, sizeof(T));
}

// Publication variant for the few 8-byte flags that lock-free readers poll
// without holding the owning lock (e.g. the sub-heap ready states): the
// store is release so readers pair with nv_load_acquire, which also keeps
// ThreadSanitizer builds clean on those paths.
inline void nv_store_release_persist(std::uint64_t& dst,
                                     std::uint64_t val) noexcept {
  std::atomic_ref<std::uint64_t>(dst).store(val, std::memory_order_release);
  if (POSEIDON_UNLIKELY(sim_active())) sim_note_store(&dst, sizeof dst);
  persist(&dst, sizeof dst);
}

inline std::uint64_t nv_load_acquire(const std::uint64_t& src) noexcept {
  return std::atomic_ref<std::uint64_t>(const_cast<std::uint64_t&>(src))
      .load(std::memory_order_acquire);
}

}  // namespace poseidon::pmem
