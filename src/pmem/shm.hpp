// Volatile shared-memory segment: the DRAM control plane of the
// allocation service (src/svc).
//
// Unlike Pool, a segment carries no persistence contract — it is scratch
// coordination state (command rings, session table) recreated by every
// server incarnation.  It is still a file-backed MAP_SHARED mapping so
// unrelated processes can attach by path, and its lifecycle syscalls run
// behind the same fault-injection hooks as the pool's (POSEIDON_FAULT
// open/mmap/ftruncate/fstat clauses apply), so the service's degraded
// paths are testable with the existing machinery.
//
// Lifecycle discipline: the server unlinks any stale segment and creates a
// fresh one (O_EXCL) before publishing it as serving; clients only ever
// attach.  No locks — liveness is the service's own problem (heartbeat +
// pid checks in the segment header), because an OFD lock would make
// read-only inspectors indistinguishable from dead servers.
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>

namespace poseidon::pmem {

class ShmSegment {
 public:
  // Creates a `size`-byte zero-filled segment, failing if the file exists
  // (callers unlink stale segments first, so two servers never share one).
  static ShmSegment create(const std::string& path, std::size_t size);

  // Maps an existing segment whole; read_only attaches PROT_READ (the
  // inspector path).  Throws Error{kIo} on any syscall failure and
  // Error{kSvcUnavailable} when the file does not exist.
  static ShmSegment attach(const std::string& path, bool read_only = false);

  ShmSegment() noexcept = default;
  ~ShmSegment();

  ShmSegment(ShmSegment&& other) noexcept;
  ShmSegment& operator=(ShmSegment&& other) noexcept;
  ShmSegment(const ShmSegment&) = delete;
  ShmSegment& operator=(const ShmSegment&) = delete;

  std::byte* data() const noexcept { return base_; }
  std::size_t size() const noexcept { return size_; }
  const std::string& path() const noexcept { return path_; }
  bool valid() const noexcept { return base_ != nullptr; }
  bool read_only() const noexcept { return read_only_; }

  // Unmap and close without deleting the file (a dead server's segment
  // stays inspectable until the next incarnation sweeps it).
  void close() noexcept;

  static void unlink(const std::string& path) noexcept;
  static bool exists(const std::string& path) noexcept;

 private:
  ShmSegment(std::string path, std::byte* base, std::size_t size,
             bool read_only) noexcept
      : path_(std::move(path)), base_(base), size_(size),
        read_only_(read_only) {}

  std::string path_;
  std::byte* base_ = nullptr;
  std::size_t size_ = 0;
  bool read_only_ = false;
};

}  // namespace poseidon::pmem
