// File-backed persistent memory pool.
//
// Emulates a DAX-mapped NVMM file: the pool is a (sparse) file on a
// DAX/tmpfs filesystem, mmap-ed MAP_SHARED so that stores reach the backing
// pages directly.  Provides fallocate-based hole punching, which Poseidon
// uses to return unused metadata (hash-table levels) to the filesystem
// (paper §5.6).
//
// Ownership (DESIGN.md "Process model & ownership"): a writable pool holds
// an exclusive OFD lock (fcntl F_OFD_SETLK) on its backing file for its
// whole lifetime.  OFD locks belong to the open file description, conflict
// across processes AND across descriptions within one process, and vanish
// automatically when the owning process dies — so "lock free but owner
// record present" is an unambiguous stale-owner signature.  A conflicting
// open fails with Error(kHeapBusy).  Read-only pools take no lock and map
// PROT_READ, so inspectors coexist with a live writer and can never mutate
// the file.
#pragma once

#include <cstddef>
#include <cstdint>
#include <memory>
#include <string>

namespace poseidon::pmem {

class PageMap;

class Pool {
 public:
  // Creates a new pool file of `size` bytes (sparse), locks it exclusively
  // and maps it read-write.  Fails if the file already exists.
  static Pool create(const std::string& path, std::size_t size);

  // Opens and maps an existing pool file (whole file).  A writable open
  // takes the exclusive OFD lock first and throws Error(kHeapBusy) when
  // another live pool — in any process, including this one — already holds
  // it.  A read-only open takes no lock and maps PROT_READ.
  static Pool open(const std::string& path, bool read_only = false);

  Pool() noexcept = default;
  ~Pool();

  Pool(Pool&& other) noexcept;
  Pool& operator=(Pool&& other) noexcept;
  Pool(const Pool&) = delete;
  Pool& operator=(const Pool&) = delete;

  std::byte* data() const noexcept { return base_; }
  std::size_t size() const noexcept { return size_; }
  const std::string& path() const noexcept { return path_; }
  bool valid() const noexcept { return base_ != nullptr; }
  bool read_only() const noexcept { return read_only_; }

  // Deallocate [offset, offset+len) from the backing file, keeping the
  // mapping intact; the pages read back as zero and are re-allocated by the
  // filesystem on the next store.  Offset/len must be page-aligned.
  // Returns true when the range was deallocated.  EINTR is retried;
  // EOPNOTSUPP/ENOSPC return false (the hole is skipped — a space
  // regression, not an error, so defrag keeps running); anything else
  // throws poseidon::Error{kIo}.
  bool punch_hole(std::size_t offset, std::size_t len);

  // Bytes actually allocated by the filesystem (st_blocks).
  std::size_t allocated_bytes() const;

  // msync the mapped range [offset, offset+len) to the backing file
  // (EINTR-retried).  The allocator's own persistence uses clwb, so this is
  // for callers that need a file-level durability point (tools).
  void sync_range(std::size_t offset, std::size_t len);

  // Dirty-page tracker for this mapping (writable pools only; nullptr for
  // read-only opens).  Registered with the process-global pagemap registry
  // for the life of the mapping, so the persistence barriers route every
  // durable write here without Pool in their signatures.
  PageMap* page_map() const noexcept { return page_map_.get(); }

  // Unmap, drop the OFD lock and close without deleting the file.
  void close() noexcept;

  // Delete a pool file (helper for tests/benches).
  static void unlink(const std::string& path) noexcept;
  static bool exists(const std::string& path) noexcept;

 private:
  // Builds the dirty tracker over the fresh mapping and registers it.
  void attach_page_map();

  Pool(std::string path, int fd, std::byte* base, std::size_t size,
       bool read_only, bool in_proc_registered) noexcept
      : path_(std::move(path)), fd_(fd), base_(base), size_(size),
        read_only_(read_only), in_proc_registered_(in_proc_registered) {}

  std::string path_;
  int fd_ = -1;
  // unique_ptr: the PageMap's address must survive Pool moves (the global
  // registry holds a raw pointer to it until close()).
  std::unique_ptr<PageMap> page_map_;
  std::byte* base_ = nullptr;
  std::size_t size_ = 0;
  bool read_only_ = false;
  // This pool's (dev, ino) is in the process-wide writable-pool table; the
  // table catches a same-process double open one layer before the OFD lock
  // would, with a message naming the real mistake.
  bool in_proc_registered_ = false;
};

}  // namespace poseidon::pmem
