// File-backed persistent memory pool.
//
// Emulates a DAX-mapped NVMM file: the pool is a (sparse) file on a
// DAX/tmpfs filesystem, mmap-ed MAP_SHARED so that stores reach the backing
// pages directly.  Provides fallocate-based hole punching, which Poseidon
// uses to return unused metadata (hash-table levels) to the filesystem
// (paper §5.6).
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>

namespace poseidon::pmem {

class Pool {
 public:
  // Creates a new pool file of `size` bytes (sparse) and maps it.
  // Fails if the file already exists.
  static Pool create(const std::string& path, std::size_t size);

  // Opens and maps an existing pool file (whole file).
  static Pool open(const std::string& path);

  Pool() noexcept = default;
  ~Pool();

  Pool(Pool&& other) noexcept;
  Pool& operator=(Pool&& other) noexcept;
  Pool(const Pool&) = delete;
  Pool& operator=(const Pool&) = delete;

  std::byte* data() const noexcept { return base_; }
  std::size_t size() const noexcept { return size_; }
  const std::string& path() const noexcept { return path_; }
  bool valid() const noexcept { return base_ != nullptr; }

  // Deallocate [offset, offset+len) from the backing file, keeping the
  // mapping intact; the pages read back as zero and are re-allocated by the
  // filesystem on the next store.  Offset/len must be page-aligned.
  // Returns true when the range was deallocated.  EINTR is retried;
  // EOPNOTSUPP/ENOSPC return false (the hole is skipped — a space
  // regression, not an error, so defrag keeps running); anything else
  // throws poseidon::Error{kIo}.
  bool punch_hole(std::size_t offset, std::size_t len);

  // Bytes actually allocated by the filesystem (st_blocks).
  std::size_t allocated_bytes() const;

  // Unmap and close without deleting the file.
  void close() noexcept;

  // Delete a pool file (helper for tests/benches).
  static void unlink(const std::string& path) noexcept;
  static bool exists(const std::string& path) noexcept;

 private:
  Pool(std::string path, int fd, std::byte* base, std::size_t size) noexcept
      : path_(std::move(path)), fd_(fd), base_(base), size_(size) {}

  std::string path_;
  int fd_ = -1;
  std::byte* base_ = nullptr;
  std::size_t size_ = 0;
};

}  // namespace poseidon::pmem
