// Crash-point injection.
//
// The allocator's critical sections are annotated with named crash points
// (POSEIDON_CRASH_POINT("alloc.after_undo_log")).  In production builds the
// annotation costs one relaxed atomic load.  Crash-consistency tests arm a
// point ("abort at the k-th hit of points whose name starts with <prefix>")
// and choose how the crash manifests:
//   * Action::kThrow — throws CrashException, which the test catches at the
//     API boundary; combined with pmem::SimDomain::crash() this simulates a
//     power failure in-process.
//   * Action::kExit — _exit(42); used by forked-child tests that re-open the
//     pool file from the parent.
#pragma once

#include <atomic>
#include <cstdint>
#include <string>

namespace poseidon::pmem {

struct CrashException {
  const char* point;
};

enum class CrashAction { kThrow, kExit };

extern std::atomic<bool> g_crash_armed;

// Arm: the `nth` (1-based) hit of a point whose name starts with `prefix`
// (empty prefix matches every point) triggers `action`.
void crash_arm(std::string prefix, std::uint64_t nth, CrashAction action);
void crash_disarm() noexcept;

// Total hits of matching points since the last arm (counts even past the
// trigger; used by tests to enumerate crash points in an operation).
std::uint64_t crash_hits() noexcept;

void crash_point_slow(const char* name);

inline void crash_point(const char* name) {
  if (g_crash_armed.load(std::memory_order_relaxed)) crash_point_slow(name);
}

#define POSEIDON_CRASH_POINT(name) ::poseidon::pmem::crash_point(name)

}  // namespace poseidon::pmem
