// Crash-consistency simulator.
//
// x86 NVMM gives no durability guarantee for a store until the covering
// cache line has been written back (clwb/clflushopt) AND a subsequent
// fence has retired — and, conversely, an *unflushed* line may still reach
// NVMM at any time via cache eviction.  SimDomain models exactly that:
//
//   * a shadow copy of the covered range holds the "persistent image";
//   * nv_store marks the covering lines dirty (in cache, not yet durable);
//   * flush marks dirty lines flushed-pending: the write-back has been
//     initiated but only the fence guarantees completion, so a crash in
//     between treats them like any other dirty line (a coin flip);
//   * fence commits every pending line from the real mapping into the
//     shadow (persist = flush + fence commits in one step);
//   * crash(survive_prob) flips a coin per dirty line — with probability
//     survive_prob the line is treated as having been evicted (committed),
//     otherwise its unflushed contents are lost — then restores the real
//     mapping from the shadow image.
//
// The simulator is domain-aware: a SimDomain models the persistence domain
// active at its construction (or an explicit one, for simulator unit
// tests).  Under kEadr a store is durable the moment it is globally
// visible, and under kNone the file-backed mapping survives process death
// byte-for-byte, so in both cases crash() commits every dirty line instead
// of coin-flipping — recovery tests exercise the same protocol with the
// line-loss model each domain actually has.
//
// Granularity caveat: loss is modeled per line, not per store.  A line
// re-stored after an unfenced flush simply returns to plain-dirty (the
// in-flight write-back of its older contents is not replayed).
//
// Tests register a domain over a heap's metadata region, run operations
// that abort at an injected crash point, call crash(), re-open the heap and
// assert that recovery restores every invariant.
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

#include "pmem/persist.hpp"

namespace poseidon::pmem {

class SimDomain {
 public:
  // Registers the domain globally (at most one may be active per process)
  // and snapshots [base, base+size) as the initial persistent image.
  // Models the process-global persist_domain() active at construction.
  SimDomain(void* base, std::size_t size);
  // As above with an explicit modeled domain (simulator unit tests pin
  // kCacheLineFlush so their loss assertions hold in every process mode).
  SimDomain(void* base, std::size_t size, PersistDomain modeled);
  ~SimDomain();

  SimDomain(const SimDomain&) = delete;
  SimDomain& operator=(const SimDomain&) = delete;

  // Simulate a power failure: decide the fate of each dirty line, then
  // overwrite the real mapping with the resulting persistent image.
  // survive_prob = 1.0 keeps every unflushed line (pure store-visibility
  // crash); 0.0 drops them all (worst case).  Under a modeled kEadr/kNone
  // domain every dirty line survives regardless of survive_prob.
  void crash(std::uint64_t seed, double survive_prob);

  // Mark all lines clean without restoring (used after verified commits).
  void checkpoint();

  std::size_t dirty_line_count() const noexcept;
  // Lines flushed (write-back initiated) but not yet fenced.
  std::size_t flushed_pending_line_count() const noexcept;
  // Lines the most recent note_fence scanned — its actual cost.  Must stay
  // proportional to the lines pending at that fence, not to the high-water
  // window of earlier flushes (the window resets after every fence).
  std::size_t last_fence_scan_lines() const noexcept {
    return last_fence_scan_;
  }
  std::size_t size() const noexcept { return size_; }
  PersistDomain modeled_domain() const noexcept { return modeled_; }

  // Internal: called from the persist.hpp hooks.
  void note_store(const void* addr, std::size_t len) noexcept;
  void note_flush(const void* addr, std::size_t len) noexcept;
  void note_fence() noexcept;

 private:
  bool covers(const void* addr) const noexcept;
  // First/last line index covering [addr, addr+len).
  std::pair<std::size_t, std::size_t> line_range(const void* addr,
                                                 std::size_t len) const noexcept;
  void commit_line(std::size_t i) noexcept;

  std::byte* base_;
  std::size_t size_;
  PersistDomain modeled_;
  std::vector<std::byte> shadow_;
  std::vector<bool> dirty_;    // one flag per cache line
  std::vector<bool> pending_;  // flushed but not yet fenced
  // Window of line indices that may be pending, so note_fence scans a few
  // lines instead of the whole (potentially multi-MB) region.
  std::size_t pending_lo_ = 0;
  std::size_t pending_hi_ = 0;  // exclusive; lo == hi means none
  std::size_t last_fence_scan_ = 0;
};

}  // namespace poseidon::pmem
