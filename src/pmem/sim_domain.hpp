// Crash-consistency simulator.
//
// x86 NVMM gives no durability guarantee for a store until the covering
// cache line has been written back (clwb/clflushopt) and fenced — and,
// conversely, an *unflushed* line may still reach NVMM at any time via
// cache eviction.  SimDomain models exactly that:
//
//   * a shadow copy of the covered range holds the "persistent image";
//   * nv_store marks the covering lines dirty (in cache, not yet durable);
//   * persist commits lines from the real mapping into the shadow;
//   * crash(survive_prob) flips a coin per dirty line — with probability
//     survive_prob the line is treated as having been evicted (committed),
//     otherwise its unflushed contents are lost — then restores the real
//     mapping from the shadow image.
//
// Tests register a domain over a heap's metadata region, run operations
// that abort at an injected crash point, call crash(), re-open the heap and
// assert that recovery restores every invariant.
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

namespace poseidon::pmem {

class SimDomain {
 public:
  // Registers the domain globally (at most one may be active per process)
  // and snapshots [base, base+size) as the initial persistent image.
  SimDomain(void* base, std::size_t size);
  ~SimDomain();

  SimDomain(const SimDomain&) = delete;
  SimDomain& operator=(const SimDomain&) = delete;

  // Simulate a power failure: decide the fate of each dirty line, then
  // overwrite the real mapping with the resulting persistent image.
  // survive_prob = 1.0 keeps every unflushed line (pure store-visibility
  // crash); 0.0 drops them all (worst case).
  void crash(std::uint64_t seed, double survive_prob);

  // Mark all lines clean without restoring (used after verified commits).
  void checkpoint();

  std::size_t dirty_line_count() const noexcept;
  std::size_t size() const noexcept { return size_; }

  // Internal: called from the persist.hpp hooks.
  void note_store(const void* addr, std::size_t len) noexcept;
  void note_persist(const void* addr, std::size_t len) noexcept;

 private:
  bool covers(const void* addr) const noexcept;
  // First/last line index covering [addr, addr+len).
  std::pair<std::size_t, std::size_t> line_range(const void* addr,
                                                 std::size_t len) const noexcept;

  std::byte* base_;
  std::size_t size_;
  std::vector<std::byte> shadow_;
  std::vector<bool> dirty_;  // one flag per cache line
};

}  // namespace poseidon::pmem
