#include "pmem/shm.hpp"

#include <fcntl.h>
#include <sys/mman.h>
#include <sys/stat.h>
#include <unistd.h>

#include <cerrno>
#include <utility>

#include "common/error.hpp"
#include "pmem/fault_inject.hpp"
#include "pmem/retry.hpp"

namespace poseidon::pmem {

namespace {

[[noreturn]] void throw_io(const std::string& what) {
  throw Error(ErrorCode::kIo, what, errno);
}

// Same discipline as Pool's wrappers: consult the injector first, retry
// while the failure (real or injected) is EINTR.
template <typename F>
int intercepted_retry_eintr(fault::SysOp op, F&& call) {
  for (;;) {
    int rc = -1;
    if (const int e = fault::intercept(op)) {
      errno = e;
    } else {
      rc = retry_eintr(call);
    }
    if (rc < 0 && errno == EINTR) continue;
    return rc;
  }
}

std::byte* map_fd(int fd, std::size_t size, bool read_only) {
  void* p = MAP_FAILED;
  const int prot = read_only ? PROT_READ : PROT_READ | PROT_WRITE;
  if (const int e = fault::intercept(fault::SysOp::kMmap)) {
    errno = e;
  } else {
    p = ::mmap(nullptr, size, prot, MAP_SHARED, fd, 0);
  }
  if (p == MAP_FAILED) throw_io("mmap shm segment");
  return static_cast<std::byte*>(p);
}

}  // namespace

ShmSegment ShmSegment::create(const std::string& path, std::size_t size) {
  const int fd = intercepted_retry_eintr(fault::SysOp::kOpen, [&] {
    return ::open(path.c_str(), O_RDWR | O_CREAT | O_EXCL | O_CLOEXEC, 0644);
  });
  if (fd < 0) throw_io("create shm segment " + path);
  if (intercepted_retry_eintr(fault::SysOp::kFtruncate, [&] {
        return ::ftruncate(fd, static_cast<off_t>(size));
      }) != 0) {
    const int e = errno;
    (void)::close(fd);
    (void)::unlink(path.c_str());
    errno = e;
    throw_io("size shm segment " + path);
  }
  std::byte* base;
  try {
    base = map_fd(fd, size, /*read_only=*/false);
  } catch (...) {
    (void)::close(fd);
    (void)::unlink(path.c_str());
    throw;
  }
  (void)::close(fd);  // the mapping keeps the segment alive
  return ShmSegment(path, base, size, /*read_only=*/false);
}

ShmSegment ShmSegment::attach(const std::string& path, bool read_only) {
  const int fd = intercepted_retry_eintr(fault::SysOp::kOpen, [&] {
    return ::open(path.c_str(), (read_only ? O_RDONLY : O_RDWR) | O_CLOEXEC);
  });
  if (fd < 0) {
    if (errno == ENOENT) {
      throw Error(ErrorCode::kSvcUnavailable,
                  path + ": no service segment (server not running?)");
    }
    throw_io("open shm segment " + path);
  }
  struct stat st {};
  if (intercepted_retry_eintr(fault::SysOp::kFstat,
                              [&] { return ::fstat(fd, &st); }) != 0) {
    const int e = errno;
    (void)::close(fd);
    errno = e;
    throw_io("stat shm segment " + path);
  }
  if (!S_ISREG(st.st_mode) || st.st_size <= 0) {
    (void)::close(fd);
    throw Error(ErrorCode::kSvcUnavailable,
                path + ": service segment is not a regular non-empty file");
  }
  const auto size = static_cast<std::size_t>(st.st_size);
  std::byte* base;
  try {
    base = map_fd(fd, size, read_only);
  } catch (...) {
    (void)::close(fd);
    throw;
  }
  (void)::close(fd);
  return ShmSegment(path, base, size, read_only);
}

ShmSegment::~ShmSegment() { close(); }

ShmSegment::ShmSegment(ShmSegment&& other) noexcept
    : path_(std::move(other.path_)), base_(other.base_), size_(other.size_),
      read_only_(other.read_only_) {
  other.base_ = nullptr;
  other.size_ = 0;
}

ShmSegment& ShmSegment::operator=(ShmSegment&& other) noexcept {
  if (this != &other) {
    close();
    path_ = std::move(other.path_);
    base_ = other.base_;
    size_ = other.size_;
    read_only_ = other.read_only_;
    other.base_ = nullptr;
    other.size_ = 0;
  }
  return *this;
}

void ShmSegment::close() noexcept {
  if (base_ != nullptr) {
    (void)::munmap(base_, size_);
    base_ = nullptr;
    size_ = 0;
  }
}

void ShmSegment::unlink(const std::string& path) noexcept {
  (void)::unlink(path.c_str());
}

bool ShmSegment::exists(const std::string& path) noexcept {
  struct stat st {};
  return ::stat(path.c_str(), &st) == 0 && S_ISREG(st.st_mode);
}

}  // namespace poseidon::pmem
