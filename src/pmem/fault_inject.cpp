#include "pmem/fault_inject.hpp"

#include <sys/mman.h>
#include <unistd.h>

#include <atomic>
#include <cerrno>
#include <csetjmp>
#include <cstdlib>
#include <cstring>
#include <mutex>
#include <string>
#include <vector>

namespace poseidon::pmem::fault {

namespace {

// Set iff any op is armed or a poison range is pending; the fast path in
// intercept()/apply_poison() is one relaxed load of this flag.
std::atomic<bool> g_armed{false};

struct Arm {
  bool on = false;
  std::uint64_t nth = 0;     // 1-based trigger point
  std::uint64_t period = 0;  // 0 = one-shot at nth; else every period-th
  int err = 0;
  std::uint64_t hits = 0;
};

struct PoisonRange {
  std::uint64_t off;
  std::uint64_t len;
};

std::mutex g_mu;
Arm g_arms[kSysOpCount];
std::vector<PoisonRange>& poison_ranges() {
  static std::vector<PoisonRange> v;
  return v;
}

void refresh_armed_locked() noexcept {
  bool any = !poison_ranges().empty();
  for (const Arm& a : g_arms) any = any || a.on;
  g_armed.store(any, std::memory_order_relaxed);
}

bool op_from_name(const std::string& name, SysOp* out) noexcept {
  if (name == "open") *out = SysOp::kOpen;
  else if (name == "mmap") *out = SysOp::kMmap;
  else if (name == "ftruncate") *out = SysOp::kFtruncate;
  else if (name == "fstat") *out = SysOp::kFstat;
  else if (name == "fallocate") *out = SysOp::kFallocate;
  else return false;
  return true;
}

// POSEIDON_FAULT="op:period:errno[,op:period:errno...]"; malformed clauses
// are skipped (an injection knob must never break production startup).
void parse_env_locked() {
  const char* env = std::getenv("POSEIDON_FAULT");
  if (env == nullptr) return;
  std::string spec(env);
  std::size_t pos = 0;
  while (pos < spec.size()) {
    const std::size_t end = spec.find(',', pos);
    const std::string clause =
        spec.substr(pos, end == std::string::npos ? end : end - pos);
    pos = end == std::string::npos ? spec.size() : end + 1;
    const std::size_t c1 = clause.find(':');
    const std::size_t c2 = c1 == std::string::npos ? std::string::npos
                                                   : clause.find(':', c1 + 1);
    if (c2 == std::string::npos) continue;
    SysOp op;
    if (!op_from_name(clause.substr(0, c1), &op)) continue;
    const long period = std::atol(clause.c_str() + c1 + 1);
    const long err = std::atol(clause.c_str() + c2 + 1);
    if (period <= 0 || err <= 0) continue;
    Arm& a = g_arms[static_cast<unsigned>(op)];
    a = Arm{};
    a.on = true;
    a.nth = static_cast<std::uint64_t>(period);
    a.period = static_cast<std::uint64_t>(period);
    a.err = static_cast<int>(err);
  }
}

void env_init() {
  static std::once_flag once;
  std::call_once(once, [] {
    std::lock_guard<std::mutex> lk(g_mu);
    parse_env_locked();
    refresh_armed_locked();
  });
}

}  // namespace

void arm(SysOp op, std::uint64_t nth, int err) {
  env_init();
  std::lock_guard<std::mutex> lk(g_mu);
  g_arms[static_cast<unsigned>(op)] = Arm{true, nth == 0 ? 1 : nth, 0, err, 0};
  refresh_armed_locked();
}

void arm_every(SysOp op, std::uint64_t period, int err) {
  env_init();
  std::lock_guard<std::mutex> lk(g_mu);
  g_arms[static_cast<unsigned>(op)] =
      Arm{true, period == 0 ? 1 : period, period == 0 ? 1 : period, err, 0};
  refresh_armed_locked();
}

void disarm(SysOp op) noexcept {
  std::lock_guard<std::mutex> lk(g_mu);
  g_arms[static_cast<unsigned>(op)].on = false;
  refresh_armed_locked();
}

void disarm_all() noexcept {
  std::lock_guard<std::mutex> lk(g_mu);
  for (Arm& a : g_arms) a.on = false;
  poison_ranges().clear();
  refresh_armed_locked();
}

std::uint64_t hits(SysOp op) noexcept {
  std::lock_guard<std::mutex> lk(g_mu);
  return g_arms[static_cast<unsigned>(op)].hits;
}

int intercept(SysOp op) noexcept {
  env_init();
  if (!g_armed.load(std::memory_order_relaxed)) return 0;
  std::lock_guard<std::mutex> lk(g_mu);
  Arm& a = g_arms[static_cast<unsigned>(op)];
  if (!a.on) return 0;
  ++a.hits;
  if (a.period != 0) {
    return a.hits % a.period == 0 ? a.err : 0;
  }
  if (a.hits == a.nth) {
    a.on = false;  // one-shot consumed
    refresh_armed_locked();
    return a.err;
  }
  return 0;
}

void poison_arm(std::uint64_t off, std::uint64_t len) {
  const std::uint64_t page = static_cast<std::uint64_t>(::sysconf(_SC_PAGESIZE));
  const std::uint64_t lo = off & ~(page - 1);
  const std::uint64_t hi = (off + len + page - 1) & ~(page - 1);
  std::lock_guard<std::mutex> lk(g_mu);
  poison_ranges().push_back(PoisonRange{lo, hi - lo});
  g_armed.store(true, std::memory_order_relaxed);
}

void poison_clear() noexcept {
  std::lock_guard<std::mutex> lk(g_mu);
  poison_ranges().clear();
  refresh_armed_locked();
}

void apply_poison(std::byte* base, std::size_t size) noexcept {
  if (!g_armed.load(std::memory_order_relaxed)) return;
  std::lock_guard<std::mutex> lk(g_mu);
  auto& ranges = poison_ranges();
  for (const PoisonRange& r : ranges) {
    if (r.off + r.len <= size) {
      (void)::mprotect(base + r.off, r.len, PROT_NONE);
    }
  }
  ranges.clear();
  refresh_armed_locked();
}

// ---- FaultGuard ------------------------------------------------------------

namespace {

thread_local sigjmp_buf tl_probe_jmp;
thread_local volatile sig_atomic_t tl_probing = 0;

void probe_handler(int sig) {
  if (tl_probing != 0) {
    tl_probing = 0;
    siglongjmp(tl_probe_jmp, 1);
  }
  // A fault outside a probe is a genuine crash: fall through to the
  // default disposition so it is not silently swallowed.
  ::signal(sig, SIG_DFL);
  ::raise(sig);
}

bool probe_byte(const volatile unsigned char* p) noexcept {
  tl_probing = 1;
  if (sigsetjmp(tl_probe_jmp, 1) != 0) return false;
  (void)*p;
  tl_probing = 0;
  return true;
}

}  // namespace

FaultGuard::FaultGuard() noexcept {
  struct sigaction sa {};
  sa.sa_handler = probe_handler;
  sigemptyset(&sa.sa_mask);
  ::sigaction(SIGSEGV, &sa, &old_segv_);
  ::sigaction(SIGBUS, &sa, &old_bus_);
}

FaultGuard::~FaultGuard() {
  ::sigaction(SIGSEGV, &old_segv_, nullptr);
  ::sigaction(SIGBUS, &old_bus_, nullptr);
}

bool FaultGuard::readable(const void* p, std::size_t len) noexcept {
  if (len == 0) return true;
  const auto* b = static_cast<const volatile unsigned char*>(p);
  const std::size_t page = static_cast<std::size_t>(::sysconf(_SC_PAGESIZE));
  for (std::size_t i = 0; i < len; i += page) {
    if (!probe_byte(b + i)) return false;
  }
  return probe_byte(b + len - 1);
}

}  // namespace poseidon::pmem::fault
