#include "pmem/persist.hpp"

#include <cpuid.h>
#include <immintrin.h>

namespace poseidon::pmem {

namespace {

enum class FlushInsn { kClwb, kClflushOpt, kClflush };

FlushInsn detect_flush_insn() noexcept {
  unsigned eax = 0, ebx = 0, ecx = 0, edx = 0;
  if (__get_cpuid_count(7, 0, &eax, &ebx, &ecx, &edx)) {
    if (ebx & bit_CLWB) return FlushInsn::kClwb;
    if (ebx & bit_CLFLUSHOPT) return FlushInsn::kClflushOpt;
  }
  return FlushInsn::kClflush;
}

const FlushInsn g_flush_insn = detect_flush_insn();

}  // namespace

void flush_lines(const void* addr, std::size_t len) noexcept {
  if (len == 0) return;
  const auto start = cache_line_of(addr);
  const auto end =
      reinterpret_cast<std::uintptr_t>(addr) + len;  // exclusive
  switch (g_flush_insn) {
    case FlushInsn::kClwb:
      for (auto line = start; line < end; line += kCacheLineSize) {
        _mm_clwb(reinterpret_cast<void*>(line));
      }
      break;
    case FlushInsn::kClflushOpt:
      for (auto line = start; line < end; line += kCacheLineSize) {
        _mm_clflushopt(reinterpret_cast<void*>(line));
      }
      break;
    case FlushInsn::kClflush:
      for (auto line = start; line < end; line += kCacheLineSize) {
        _mm_clflush(reinterpret_cast<void*>(line));
      }
      break;
  }
}

void fence() noexcept { _mm_sfence(); }

}  // namespace poseidon::pmem
