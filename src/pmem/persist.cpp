#include "pmem/persist.hpp"

#include <cpuid.h>
#include <dirent.h>
#include <immintrin.h>

#include <cstdio>
#include <cstdlib>
#include <cstring>

namespace poseidon::pmem {

namespace {

enum class FlushInsn { kClwb, kClflushOpt, kClflush };

FlushInsn detect_flush_insn() noexcept {
  unsigned eax = 0, ebx = 0, ecx = 0, edx = 0;
  if (__get_cpuid_count(7, 0, &eax, &ebx, &ecx, &edx)) {
    if (ebx & bit_CLWB) return FlushInsn::kClwb;
    if (ebx & bit_CLFLUSHOPT) return FlushInsn::kClflushOpt;
  }
  return FlushInsn::kClflush;
}

const FlushInsn g_flush_insn = detect_flush_insn();

// One pass over the NVDIMM bus: any region/namespace whose
// persistence_domain includes the CPU caches makes the platform eADR.
// Missing directory (no NVDIMMs, containers) or unreadable attributes fall
// back to the conservative cache-line-flush answer.
PersistDomain probe_platform_domain() noexcept {
  DIR* dir = ::opendir("/sys/bus/nd/devices");
  if (dir == nullptr) return PersistDomain::kCacheLineFlush;
  PersistDomain d = PersistDomain::kCacheLineFlush;
  while (const dirent* ent = ::readdir(dir)) {
    if (ent->d_name[0] == '.') continue;
    char path[512];
    std::snprintf(path, sizeof(path),
                  "/sys/bus/nd/devices/%s/persistence_domain", ent->d_name);
    std::FILE* f = std::fopen(path, "re");
    if (f == nullptr) continue;
    char buf[64];
    const std::size_t n = std::fread(buf, 1, sizeof(buf) - 1, f);
    std::fclose(f);
    buf[n] = '\0';
    if (std::strstr(buf, "cpu_cache") != nullptr) {
      d = PersistDomain::kEadr;
      break;
    }
  }
  ::closedir(dir);
  return d;
}

// Zero-initialization of g_persist_domain (kCacheLineFlush) covers any
// cross-TU static initializer that persists before this runs.
std::uint8_t initial_domain() noexcept {
  PersistDomain d = PersistDomain::kCacheLineFlush;
  if (const char* env = std::getenv("POSEIDON_PERSIST_DOMAIN")) {
    (void)parse_persist_domain(env, &d);
  }
  return static_cast<std::uint8_t>(d);
}

}  // namespace

std::atomic<std::uint8_t> g_persist_domain{initial_domain()};

const bool g_flush_needs_fence = g_flush_insn != FlushInsn::kClflush;

void set_persist_domain(PersistDomain d) noexcept {
  g_persist_domain.store(static_cast<std::uint8_t>(d),
                         std::memory_order_relaxed);
}

PersistDomain detect_persist_domain() noexcept {
  static const PersistDomain cached = probe_platform_domain();
  return cached;
}

PersistDomain apply_persist_domain(PersistDomainMode mode) noexcept {
  PersistDomain d;
  const char* env = std::getenv("POSEIDON_PERSIST_DOMAIN");
  if (env != nullptr && parse_persist_domain(env, &d)) {
    set_persist_domain(d);
    return d;
  }
  switch (mode) {
    case PersistDomainMode::kCacheLineFlush:
      d = PersistDomain::kCacheLineFlush;
      break;
    case PersistDomainMode::kEadr:
      d = PersistDomain::kEadr;
      break;
    case PersistDomainMode::kNone:
      d = PersistDomain::kNone;
      break;
    case PersistDomainMode::kDetect:
    default:
      d = detect_persist_domain();
      break;
  }
  set_persist_domain(d);
  return d;
}

const char* persist_domain_name(PersistDomain d) noexcept {
  switch (d) {
    case PersistDomain::kCacheLineFlush: return "cacheline";
    case PersistDomain::kEadr: return "eadr";
    case PersistDomain::kNone: return "none";
  }
  return "?";
}

bool parse_persist_domain(const char* s, PersistDomain* out) noexcept {
  if (s == nullptr || out == nullptr) return false;
  if (std::strcmp(s, "cacheline") == 0 || std::strcmp(s, "clwb") == 0 ||
      std::strcmp(s, "adr") == 0 || std::strcmp(s, "flush") == 0) {
    *out = PersistDomain::kCacheLineFlush;
    return true;
  }
  if (std::strcmp(s, "eadr") == 0) {
    *out = PersistDomain::kEadr;
    return true;
  }
  if (std::strcmp(s, "none") == 0 || std::strcmp(s, "off") == 0) {
    *out = PersistDomain::kNone;
    return true;
  }
  return false;
}

const char* flush_insn_name() noexcept {
  switch (g_flush_insn) {
    case FlushInsn::kClwb: return "clwb";
    case FlushInsn::kClflushOpt: return "clflushopt";
    case FlushInsn::kClflush: return "clflush";
  }
  return "?";
}

void flush_lines(const void* addr, std::size_t len) noexcept {
  if (len == 0) return;
  const auto start = cache_line_of(addr);
  const auto end =
      reinterpret_cast<std::uintptr_t>(addr) + len;  // exclusive
  switch (g_flush_insn) {
    case FlushInsn::kClwb:
      for (auto line = start; line < end; line += kCacheLineSize) {
        _mm_clwb(reinterpret_cast<void*>(line));
      }
      break;
    case FlushInsn::kClflushOpt:
      for (auto line = start; line < end; line += kCacheLineSize) {
        _mm_clflushopt(reinterpret_cast<void*>(line));
      }
      break;
    case FlushInsn::kClflush:
      for (auto line = start; line < end; line += kCacheLineSize) {
        _mm_clflush(reinterpret_cast<void*>(line));
      }
      break;
  }
}

}  // namespace poseidon::pmem
