// Fault injection for the pmem substrate (robustness testing).
//
// Mirrors crashpoint.hpp's arming discipline: in production the cost of an
// uninstrumented call is one relaxed atomic load.  Two mechanisms:
//
//   * Syscall faults — Pool's open/mmap/ftruncate/fstat/fallocate wrappers
//     consult intercept(op) first; an armed op makes the k-th (or every
//     k-th) call fail with a chosen errno without entering the kernel.
//     Arm programmatically (fault::arm / fault::arm_every) or via the
//     environment:  POSEIDON_FAULT="fallocate:17:95,fstat:1:5"
//     (op:period:errno — every period-th call fails; parsed once).
//
//   * Page poisoning — poison_arm(off, len) makes the next Pool mapping
//     mprotect that file range PROT_NONE, simulating a PM media error (a
//     DAX read of a bad page raises SIGBUS).  Arming is one-shot: it
//     applies to the next map only, so a later re-open maps clean pages
//     and repair can be exercised.
//
// FaultGuard provides the matching detection side: a scoped SIGSEGV/SIGBUS
// capture under which readable(p, len) probes one byte per page and reports
// false instead of crashing — Heap::open uses it to turn a poisoned
// metadata page into a quarantined sub-heap rather than a dead process.
#pragma once

#include <csignal>
#include <cstddef>
#include <cstdint>

namespace poseidon::pmem::fault {

enum class SysOp : unsigned {
  kOpen = 0,
  kMmap = 1,
  kFtruncate = 2,
  kFstat = 3,
  kFallocate = 4,
};
inline constexpr unsigned kSysOpCount = 5;

// One-shot: exactly the `nth` (1-based) call to `op` fails with `err`.
void arm(SysOp op, std::uint64_t nth, int err);
// Periodic: every `period`-th call to `op` fails with `err` until disarmed.
void arm_every(SysOp op, std::uint64_t period, int err);
void disarm(SysOp op) noexcept;
void disarm_all() noexcept;

// Calls to `op` observed since its last arm (diagnostic).
std::uint64_t hits(SysOp op) noexcept;

// Returns 0 (proceed with the real syscall) or the errno the caller must
// fail with.  Cheap when nothing is armed.
int intercept(SysOp op) noexcept;

// Poison [off, off+len) (rounded out to pages) of the NEXT pool mapping.
void poison_arm(std::uint64_t off, std::uint64_t len);
void poison_clear() noexcept;
// Called by Pool after mmap: applies and consumes any armed poison ranges
// that fit inside [base, base+size).
void apply_poison(std::byte* base, std::size_t size) noexcept;

// Scoped SIGSEGV/SIGBUS capture for metadata probes.  Not reentrant with
// other signal-handling machinery; intended for single-threaded admin
// paths (open-time validation, fsck).
class FaultGuard {
 public:
  FaultGuard() noexcept;
  ~FaultGuard();
  FaultGuard(const FaultGuard&) = delete;
  FaultGuard& operator=(const FaultGuard&) = delete;

  // True when every page of [p, p+len) reads without faulting.
  bool readable(const void* p, std::size_t len) noexcept;

 private:
  struct sigaction old_segv_;
  struct sigaction old_bus_;
};

}  // namespace poseidon::pmem::fault
