// EINTR-retry for interruptible pool syscalls.
//
// Poseidon processes get killed — the kill-torture harness does it on
// purpose — and a signal that lands while open/ftruncate/fallocate/pread
// is blocked surfaces as a spurious EINTR failure unless every call site
// retries.  Pool::punch_hole grew the first hand-rolled loop; this header
// is the one shared treatment so no site regresses back to a bare call.
#pragma once

#include <unistd.h>

#include <cerrno>
#include <cstddef>
#include <sys/types.h>
#include <utility>

namespace poseidon::pmem {

// Re-issues f() while it fails with EINTR.  f must return -1 with errno
// set on failure (the syscall convention); any other result is final.
template <typename F>
inline auto retry_eintr(F&& f) noexcept(noexcept(f())) {
  decltype(f()) rc;
  do {
    rc = f();
  } while (rc == -1 && errno == EINTR);
  return rc;
}

// Full-buffer pread: loops over short reads and EINTR.  Returns true when
// exactly `len` bytes landed; false on EOF or error (errno holds why, 0 on
// plain EOF).
inline bool pread_full(int fd, void* buf, std::size_t len,
                       off_t offset) noexcept {
  auto* p = static_cast<unsigned char*>(buf);
  std::size_t got = 0;
  while (got < len) {
    const ssize_t n = retry_eintr(
        [&] { return ::pread(fd, p + got, len - got, offset + static_cast<off_t>(got)); });
    if (n == 0) {
      errno = 0;  // EOF before len: not a syscall failure
      return false;
    }
    if (n < 0) return false;
    got += static_cast<std::size_t>(n);
  }
  return true;
}

// Full-buffer pwrite, same contract as pread_full.
inline bool pwrite_full(int fd, const void* buf, std::size_t len,
                        off_t offset) noexcept {
  const auto* p = static_cast<const unsigned char*>(buf);
  std::size_t put = 0;
  while (put < len) {
    const ssize_t n = retry_eintr(
        [&] { return ::pwrite(fd, p + put, len - put, offset + static_cast<off_t>(put)); });
    if (n <= 0) return false;
    put += static_cast<std::size_t>(n);
  }
  return true;
}

}  // namespace poseidon::pmem
