#include "pmem/sim_domain.hpp"

#include <cassert>
#include <cstring>
#include <stdexcept>

#include "common/compiler.hpp"
#include "common/rng.hpp"
#include "pmem/persist.hpp"

namespace poseidon::pmem {

std::atomic<bool> g_sim_active{false};

namespace {
SimDomain* g_domain = nullptr;
}  // namespace

void sim_note_store(const void* addr, std::size_t len) noexcept {
  if (g_domain != nullptr) g_domain->note_store(addr, len);
}

void sim_note_persist(const void* addr, std::size_t len) noexcept {
  if (g_domain != nullptr) g_domain->note_persist(addr, len);
}

SimDomain::SimDomain(void* base, std::size_t size)
    : base_(static_cast<std::byte*>(base)),
      size_(size),
      shadow_(size),
      dirty_((size + kCacheLineSize - 1) / kCacheLineSize, false) {
  if (g_domain != nullptr) {
    throw std::logic_error("SimDomain: another domain is already active");
  }
  std::memcpy(shadow_.data(), base_, size_);
  g_domain = this;
  g_sim_active.store(true, std::memory_order_release);
}

SimDomain::~SimDomain() {
  g_sim_active.store(false, std::memory_order_release);
  g_domain = nullptr;
}

bool SimDomain::covers(const void* addr) const noexcept {
  const auto* p = static_cast<const std::byte*>(addr);
  return p >= base_ && p < base_ + size_;
}

std::pair<std::size_t, std::size_t> SimDomain::line_range(
    const void* addr, std::size_t len) const noexcept {
  const auto off = static_cast<std::size_t>(
      static_cast<const std::byte*>(addr) - base_);
  const std::size_t first = off / kCacheLineSize;
  std::size_t end = (off + len + kCacheLineSize - 1) / kCacheLineSize;
  if (end > dirty_.size()) end = dirty_.size();
  return {first, end};
}

void SimDomain::note_store(const void* addr, std::size_t len) noexcept {
  if (!covers(addr) || len == 0) return;
  const auto [first, end] = line_range(addr, len);
  for (std::size_t i = first; i < end; ++i) dirty_[i] = true;
}

void SimDomain::note_persist(const void* addr, std::size_t len) noexcept {
  if (!covers(addr) || len == 0) return;
  const auto [first, end] = line_range(addr, len);
  for (std::size_t i = first; i < end; ++i) {
    if (!dirty_[i]) continue;
    std::memcpy(shadow_.data() + i * kCacheLineSize,
                base_ + i * kCacheLineSize, kCacheLineSize);
    dirty_[i] = false;
  }
}

void SimDomain::crash(std::uint64_t seed, double survive_prob) {
  Xoshiro256 rng(seed);
  for (std::size_t i = 0; i < dirty_.size(); ++i) {
    if (!dirty_[i]) continue;
    if (rng.next_double() < survive_prob) {
      // Line was evicted before the failure: its contents are durable.
      std::memcpy(shadow_.data() + i * kCacheLineSize,
                  base_ + i * kCacheLineSize, kCacheLineSize);
    }
    dirty_[i] = false;
  }
  std::memcpy(base_, shadow_.data(), size_);
}

void SimDomain::checkpoint() {
  std::memcpy(shadow_.data(), base_, size_);
  std::fill(dirty_.begin(), dirty_.end(), false);
}

std::size_t SimDomain::dirty_line_count() const noexcept {
  std::size_t n = 0;
  for (const bool d : dirty_) n += d ? 1 : 0;
  return n;
}

}  // namespace poseidon::pmem
