#include "pmem/sim_domain.hpp"

#include <cassert>
#include <cstring>
#include <stdexcept>

#include "common/compiler.hpp"
#include "common/rng.hpp"

namespace poseidon::pmem {

std::atomic<bool> g_sim_active{false};

namespace {
SimDomain* g_domain = nullptr;
SimObserver* g_observer = nullptr;

void refresh_sim_active() noexcept {
  g_sim_active.store(g_domain != nullptr || g_observer != nullptr,
                     std::memory_order_release);
}
}  // namespace

void sim_note_store(const void* addr, std::size_t len) noexcept {
  if (g_domain != nullptr) g_domain->note_store(addr, len);
  if (g_observer != nullptr) {
    // The nv_* helpers are inlined, so our immediate caller IS the
    // allocator code that issued the store — the lint's "call site".
    g_observer->on_store(addr, len, __builtin_return_address(0));
  }
}

void sim_note_flush(const void* addr, std::size_t len) noexcept {
  if (g_domain != nullptr) g_domain->note_flush(addr, len);
  if (g_observer != nullptr) {
    g_observer->on_flush(addr, len, __builtin_return_address(0));
  }
}

void sim_note_fence() noexcept {
  if (g_domain != nullptr) g_domain->note_fence();
  if (g_observer != nullptr) g_observer->on_fence();
}

void sim_set_observer(SimObserver* obs) noexcept {
  g_observer = obs;
  refresh_sim_active();
}

SimObserver* sim_observer() noexcept { return g_observer; }

// ---- persist sabotage ------------------------------------------------------

std::atomic<bool> g_persist_sabotage_armed{false};

namespace {
std::atomic<std::uint64_t> g_sabotage_nth{0};
std::atomic<std::uint64_t> g_sabotage_hits{0};
}  // namespace

void arm_persist_sabotage(std::uint64_t nth) noexcept {
  g_sabotage_nth.store(nth, std::memory_order_relaxed);
  g_sabotage_hits.store(0, std::memory_order_relaxed);
  g_persist_sabotage_armed.store(true, std::memory_order_release);
}

void disarm_persist_sabotage() noexcept {
  g_persist_sabotage_armed.store(false, std::memory_order_release);
}

std::uint64_t persist_sabotage_hits() noexcept {
  return g_sabotage_hits.load(std::memory_order_relaxed);
}

bool persist_sabotage_tick() noexcept {
  const auto hit = g_sabotage_hits.fetch_add(1, std::memory_order_relaxed) + 1;
  return hit == g_sabotage_nth.load(std::memory_order_relaxed);
}

SimDomain::SimDomain(void* base, std::size_t size)
    : SimDomain(base, size, persist_domain()) {}

SimDomain::SimDomain(void* base, std::size_t size, PersistDomain modeled)
    : base_(static_cast<std::byte*>(base)),
      size_(size),
      modeled_(modeled),
      shadow_(size),
      dirty_((size + kCacheLineSize - 1) / kCacheLineSize, false),
      pending_(dirty_.size(), false) {
  if (g_domain != nullptr) {
    throw std::logic_error("SimDomain: another domain is already active");
  }
  std::memcpy(shadow_.data(), base_, size_);
  g_domain = this;
  refresh_sim_active();
}

SimDomain::~SimDomain() {
  g_domain = nullptr;
  refresh_sim_active();
}

bool SimDomain::covers(const void* addr) const noexcept {
  const auto* p = static_cast<const std::byte*>(addr);
  return p >= base_ && p < base_ + size_;
}

std::pair<std::size_t, std::size_t> SimDomain::line_range(
    const void* addr, std::size_t len) const noexcept {
  const auto off = static_cast<std::size_t>(
      static_cast<const std::byte*>(addr) - base_);
  const std::size_t first = off / kCacheLineSize;
  std::size_t end = (off + len + kCacheLineSize - 1) / kCacheLineSize;
  if (end > dirty_.size()) end = dirty_.size();
  return {first, end};
}

void SimDomain::commit_line(std::size_t i) noexcept {
  std::memcpy(shadow_.data() + i * kCacheLineSize,
              base_ + i * kCacheLineSize, kCacheLineSize);
}

void SimDomain::note_store(const void* addr, std::size_t len) noexcept {
  if (!covers(addr) || len == 0) return;
  const auto [first, end] = line_range(addr, len);
  for (std::size_t i = first; i < end; ++i) {
    dirty_[i] = true;
    // A store after an unfenced flush re-dirties the line: the in-flight
    // write-back (if any) carried the older contents, so only a fresh
    // flush+fence makes the line durable again (line-granularity model).
    pending_[i] = false;
  }
}

void SimDomain::note_flush(const void* addr, std::size_t len) noexcept {
  if (!covers(addr) || len == 0) return;
  const auto [first, end] = line_range(addr, len);
  for (std::size_t i = first; i < end; ++i) {
    if (dirty_[i]) pending_[i] = true;
  }
  if (pending_lo_ == pending_hi_) {
    pending_lo_ = first;
    pending_hi_ = end;
  } else {
    if (first < pending_lo_) pending_lo_ = first;
    if (end > pending_hi_) pending_hi_ = end;
  }
}

void SimDomain::note_fence() noexcept {
  last_fence_scan_ = pending_hi_ - pending_lo_;
  for (std::size_t i = pending_lo_; i < pending_hi_; ++i) {
    if (!pending_[i]) continue;
    commit_line(i);
    dirty_[i] = false;
    pending_[i] = false;
  }
  pending_lo_ = pending_hi_ = 0;
}

void SimDomain::crash(std::uint64_t seed, double survive_prob) {
  if (modeled_ != PersistDomain::kCacheLineFlush) {
    // eADR: a globally visible store is inside the persistence domain, so
    // every dirty line survives.  kNone models the DRAM rig, where the
    // file-backed mapping survives process death byte-for-byte — same
    // outcome.
    for (std::size_t i = 0; i < dirty_.size(); ++i) {
      if (!dirty_[i]) continue;
      commit_line(i);
      dirty_[i] = false;
      pending_[i] = false;
    }
  } else {
    Xoshiro256 rng(seed);
    for (std::size_t i = 0; i < dirty_.size(); ++i) {
      if (!dirty_[i]) continue;
      // Flushed-but-unfenced (pending) lines coin-flip like any other
      // dirty line: the write-back was initiated but only a fence
      // guarantees it completed before the failure.
      if (rng.next_double() < survive_prob) commit_line(i);
      dirty_[i] = false;
      pending_[i] = false;
    }
  }
  pending_lo_ = pending_hi_ = 0;
  std::memcpy(base_, shadow_.data(), size_);
}

void SimDomain::checkpoint() {
  std::memcpy(shadow_.data(), base_, size_);
  std::fill(dirty_.begin(), dirty_.end(), false);
  std::fill(pending_.begin(), pending_.end(), false);
  pending_lo_ = pending_hi_ = 0;
}

std::size_t SimDomain::dirty_line_count() const noexcept {
  std::size_t n = 0;
  for (const bool d : dirty_) n += d ? 1 : 0;
  return n;
}

std::size_t SimDomain::flushed_pending_line_count() const noexcept {
  std::size_t n = 0;
  for (const bool p : pending_) n += p ? 1 : 0;
  return n;
}

}  // namespace poseidon::pmem
