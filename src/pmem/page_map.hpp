// Page-granular dirty tracking for mapped pools (incremental snapshots).
//
// A PageMap covers one mapped range with a DRAM-resident atomic bitmap,
// one bit per 4 KiB page, plus a harvest generation.  It is fed by the
// persistence barriers (pmem/persist.hpp): every persist()/flush()/
// FlushBatch range lands here through pagemap_note(), so any write the
// allocator makes durable is tracked without new call sites — undo
// commit/rollback/replay, micro_append, cache-log writes, fsck
// seal/repair, and user-data persists all funnel through those barriers.
// Pool::punch_hole notes the punched range explicitly (the pages read
// back as zero afterwards: an incremental that missed them would revive
// stale data in the backup).  Writes that bypass the barriers entirely
// (flight-recorder rings, apps doing unflushed stores) are NOT tracked;
// Heap::note_write is the documented escape hatch.
//
// The tracker is volatile by design: a fresh mapping starts all-clean
// with a new random epoch id, and an incremental snapshot is only valid
// against a base manifest carrying the SAME epoch id and generation —
// the bitmap's accumulation window provably spans base..now.  Anything
// else (process restart, an intervening snapshot to another directory)
// must take a full snapshot first.
//
// Concurrency: note() is wait-free (test-first fetch_or).  harvest()
// requires external quiesce of writers to the covered range (the
// snapshot driver holds every sub-heap lock).  The process-global
// registry makes pagemap_note callable from free functions that only
// know an address: one relaxed load when no tracker is registered,
// mirroring g_sim_active.  Slots clear their bounds before the PageMap
// dies, and a note targeting a pool's range can only come from a thread
// actively writing that pool — the same contract munmap itself imposes.
#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <memory>
#include <vector>

#include "common/compiler.hpp"

namespace poseidon::pmem {

inline constexpr std::size_t kPageMapPageSize = 4096;

class PageMap {
 public:
  // Covers [base, base + len); starts all-clean at generation 0 with a
  // fresh random nonzero epoch id.
  PageMap(const void* base, std::size_t len);

  PageMap(const PageMap&) = delete;
  PageMap& operator=(const PageMap&) = delete;

  // Mark every page overlapping [p, p + len) dirty.  Wait-free.
  void note(const void* p, std::size_t len) noexcept {
    const auto a = reinterpret_cast<std::uintptr_t>(p);
    if (a < lo_ || a >= hi_ || len == 0) return;
    std::size_t first = (a - lo_) / kPageMapPageSize;
    std::size_t last = (a - lo_ + len - 1) / kPageMapPageSize;
    if (last >= npages_) last = npages_ - 1;
    for (std::size_t i = first; i <= last; ++i) {
      std::atomic<std::uint64_t>& w = words_[i / 64];
      const std::uint64_t bit = std::uint64_t{1} << (i % 64);
      // Read-first: the common case (page already dirty) stays a shared
      // cache-line load, no RFO storm on hot metadata pages.
      if ((w.load(std::memory_order_relaxed) & bit) == 0) {
        w.fetch_or(bit, std::memory_order_relaxed);
      }
    }
  }

  // Collect the dirty page indices, clear the bitmap and bump the
  // generation.  Caller must have quiesced writers to the covered range.
  // Returns the number of dirty pages (appended to *out when non-null).
  std::size_t harvest(std::vector<std::uint32_t>* out) noexcept;

  std::uint64_t epoch_id() const noexcept { return epoch_id_; }
  std::uint64_t generation() const noexcept {
    return gen_.load(std::memory_order_relaxed);
  }
  std::size_t npages() const noexcept { return npages_; }

 private:
  const std::uintptr_t lo_;
  const std::uintptr_t hi_;
  std::size_t npages_;
  std::uint64_t epoch_id_;
  std::atomic<std::uint64_t> gen_{0};
  std::unique_ptr<std::atomic<std::uint64_t>[]> words_;
};

// ---- process-global registry ----------------------------------------------

// Count of registered trackers; the barrier fast path is one relaxed load.
extern std::atomic<unsigned> g_pagemap_active;

// Register/unregister a tracker for its covered range.  Registration is
// bounded (excess trackers are silently untracked — a diagnostic-quality
// degradation, never a correctness one, because snapshot_incremental
// refuses epochs it cannot prove).  unregister clears the slot bounds
// before returning, after which the PageMap may be destroyed.
void pagemap_register(PageMap* pm, const void* base, std::size_t len) noexcept;
void pagemap_unregister(PageMap* pm) noexcept;

void pagemap_note_slow(const void* p, std::size_t len) noexcept;

// Route a written range to whichever registered tracker covers it.
inline void pagemap_note(const void* p, std::size_t len) noexcept {
  if (POSEIDON_LIKELY(
          g_pagemap_active.load(std::memory_order_relaxed) == 0)) {
    return;
  }
  pagemap_note_slow(p, len);
}

}  // namespace poseidon::pmem
