#include "pmem/crashpoint.hpp"

#include <unistd.h>

#include <mutex>

#include "pmem/persist.hpp"

namespace poseidon::pmem {

std::atomic<bool> g_crash_armed{false};

namespace {

std::mutex g_mutex;
std::string g_prefix;
std::uint64_t g_nth = 0;
std::uint64_t g_hits = 0;
CrashAction g_action = CrashAction::kThrow;

}  // namespace

void crash_arm(std::string prefix, std::uint64_t nth, CrashAction action) {
  std::lock_guard<std::mutex> lk(g_mutex);
  g_prefix = std::move(prefix);
  g_nth = nth;
  g_hits = 0;
  g_action = action;
  g_crash_armed.store(true, std::memory_order_release);
}

void crash_disarm() noexcept {
  g_crash_armed.store(false, std::memory_order_release);
}

std::uint64_t crash_hits() noexcept {
  std::lock_guard<std::mutex> lk(g_mutex);
  return g_hits;
}

void crash_point_slow(const char* name) {
  // Trace recorders (src/crashcheck/) arm a never-firing trigger
  // (nth = UINT64_MAX) purely to route every hit through here; forward the
  // name so the explorer can treat named points as crash instants too.
  if (SimObserver* obs = sim_observer(); obs != nullptr) {
    obs->on_crash_point(name);
  }
  CrashAction action;
  {
    std::lock_guard<std::mutex> lk(g_mutex);
    if (!g_crash_armed.load(std::memory_order_acquire)) return;
    const std::string_view sv(name);
    if (sv.substr(0, g_prefix.size()) != g_prefix) return;
    ++g_hits;
    if (g_hits != g_nth) return;
    action = g_action;
  }
  if (action == CrashAction::kExit) _exit(42);
  throw CrashException{name};
}

}  // namespace poseidon::pmem
