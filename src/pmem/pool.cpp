#include "pmem/pool.hpp"

#include <fcntl.h>
#include <sys/mman.h>
#include <sys/stat.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <mutex>
#include <set>
#include <stdexcept>
#include <utility>

#include "common/error.hpp"
#include "pmem/fault_inject.hpp"
#include "pmem/page_map.hpp"
#include "pmem/retry.hpp"

namespace poseidon::pmem {

namespace {

[[noreturn]] void throw_io(const std::string& what) {
  throw Error(ErrorCode::kIo, what, errno);
}

std::byte* map_fd(int fd, std::size_t size, bool read_only) {
  void* p = MAP_FAILED;
  const int prot = read_only ? PROT_READ : PROT_READ | PROT_WRITE;
  if (const int e = fault::intercept(fault::SysOp::kMmap)) {
    errno = e;
  } else {
    p = ::mmap(nullptr, size, prot, MAP_SHARED, fd, 0);
  }
  if (p == MAP_FAILED) throw_io("mmap pool");
  auto* base = static_cast<std::byte*>(p);
  // Armed media-error emulation (PROT_NONE pages) lands at map time.
  fault::apply_poison(base, size);
  return base;
}

// ---- exclusive ownership ---------------------------------------------------
//
// Two independent guards, both scoped to writable pools:
//
//  * The OFD lock is the authority: per open-file-description, so it
//    conflicts between two opens of the same file even inside one process,
//    and the kernel releases it when the owner dies — which is exactly the
//    stale-owner signature the superblock owner record is checked against.
//  * The (dev, ino) table catches the same-process double open one layer
//    earlier with a message naming the actual mistake; it also covers the
//    corner where both opens are in this process and a future kernel would
//    coalesce their descriptions.

struct DevIno {
  dev_t dev;
  ino_t ino;
  bool operator<(const DevIno& o) const noexcept {
    return dev != o.dev ? dev < o.dev : ino < o.ino;
  }
};

std::mutex g_open_mu;
std::set<DevIno>& open_writable_pools() {
  static std::set<DevIno> s;
  return s;
}

// Registers (dev, ino) as writable-open in this process; throws kHeapBusy
// when it already is.
void register_in_proc(const std::string& path, const struct stat& st) {
  std::lock_guard<std::mutex> lk(g_open_mu);
  if (!open_writable_pools().insert(DevIno{st.st_dev, st.st_ino}).second) {
    throw Error(ErrorCode::kHeapBusy,
                path + ": pool is already open read-write in this process");
  }
}

void unregister_in_proc(const struct stat& st) noexcept {
  std::lock_guard<std::mutex> lk(g_open_mu);
  open_writable_pools().erase(DevIno{st.st_dev, st.st_ino});
}

// Takes the exclusive OFD lock on fd, non-blocking.  Throws kHeapBusy when
// another open description holds it.  fcntl locking is deliberately NOT a
// fault::SysOp: adding it would shift the syscall ordinals every armed
// POSEIDON_FAULT test depends on, and an injected lock failure is
// indistinguishable from the real contention the tests already cover.
void lock_exclusive(int fd, const std::string& path) {
  struct flock fl {};
  fl.l_type = F_WRLCK;
  fl.l_whence = SEEK_SET;
  fl.l_start = 0;
  fl.l_len = 0;  // whole file
  const int rc = retry_eintr([&] { return ::fcntl(fd, F_OFD_SETLK, &fl); });
  if (rc == 0) return;
  if (errno == EAGAIN || errno == EACCES) {
    throw Error(ErrorCode::kHeapBusy,
                path + ": pool is locked by another live process",
                errno);
  }
  throw_io("lock pool file " + path);
}

// Runs `call` behind the fault injector for `op`, retrying while the
// failure — real or injected — is EINTR.  The injected variety matters:
// a one-shot armed EINTR is consumed by its first firing, so the retry
// falls through to the real syscall, proving the interruptible paths are
// EINTR-transparent under POSEIDON_FAULT exactly as under real signals.
template <typename F>
int intercepted_retry_eintr(fault::SysOp op, F&& call) {
  for (;;) {
    int rc = -1;
    if (const int e = fault::intercept(op)) {
      errno = e;
    } else {
      rc = retry_eintr(call);
    }
    if (rc < 0 && errno == EINTR) continue;
    return rc;
  }
}

}  // namespace

Pool Pool::create(const std::string& path, std::size_t size) {
  // O_EXCL would fail on an existing directory anyway, but with a
  // confusing "File exists"; diagnose the common mistake up front.
  struct stat st{};
  if (::stat(path.c_str(), &st) == 0 && !S_ISREG(st.st_mode)) {
    throw std::invalid_argument(path +
                                ": exists and is not a regular file "
                                "(Poseidon pools must be regular files)");
  }
  const int fd = intercepted_retry_eintr(fault::SysOp::kOpen, [&] {
    return ::open(path.c_str(), O_CREAT | O_EXCL | O_RDWR, 0644);
  });
  if (fd < 0) throw_io("create pool file " + path);
  bool registered = false;
  try {
    // A freshly O_EXCL-created file can still race a concurrent open(): the
    // path is visible the moment the dentry lands.  Lock at birth so the
    // window where a second opener could also lock it never exists.
    lock_exclusive(fd, path);
    const int trunc_rc = intercepted_retry_eintr(
        fault::SysOp::kFtruncate,
        [&] { return ::ftruncate(fd, static_cast<off_t>(size)); });
    if (trunc_rc != 0) throw_io("ftruncate pool file " + path);
    // Raw fstat (not fault::intercept'd): this call exists only to feed the
    // in-process table, and routing it through the injector would shift the
    // ordinals of every armed fstat-fault test.
    struct stat fst{};
    if (retry_eintr([&] { return ::fstat(fd, &fst); }) != 0) {
      throw_io("fstat pool file " + path);
    }
    register_in_proc(path, fst);
    registered = true;
    Pool p(path, fd, map_fd(fd, size, /*read_only=*/false), size,
           /*read_only=*/false, /*in_proc_registered=*/true);
    p.attach_page_map();
    return p;
  } catch (...) {
    const int saved = errno;
    if (registered) {
      struct stat fst{};
      if (::fstat(fd, &fst) == 0) unregister_in_proc(fst);
    }
    ::close(fd);
    ::unlink(path.c_str());
    errno = saved;
    throw;
  }
}

Pool Pool::open(const std::string& path, bool read_only) {
  const int fd = intercepted_retry_eintr(fault::SysOp::kOpen, [&] {
    return ::open(path.c_str(), read_only ? O_RDONLY : O_RDWR);
  });
  if (fd < 0) throw_io("open pool file " + path);
  struct stat st{};
  const int stat_rc = intercepted_retry_eintr(
      fault::SysOp::kFstat, [&] { return ::fstat(fd, &st); });
  if (stat_rc != 0) {
    const int saved = errno;
    ::close(fd);
    errno = saved;
    throw_io("fstat pool file " + path);
  }
  if (!S_ISREG(st.st_mode)) {
    ::close(fd);
    // Devices and FIFOs stat fine but cannot back a pool; mmap/ftruncate
    // would fail later with a far less actionable errno.
    throw std::invalid_argument(path +
                                ": not a regular file "
                                "(Poseidon pools must be regular files)");
  }
  const auto size = static_cast<std::size_t>(st.st_size);
  bool registered = false;
  try {
    if (!read_only) {
      // In-process check first: its message names the real mistake; the
      // OFD lock behind it is the cross-process (and belt-and-braces
      // same-process) authority.
      register_in_proc(path, st);
      registered = true;
      lock_exclusive(fd, path);
    }
    Pool p(path, fd, map_fd(fd, size, read_only), size, read_only,
           registered);
    if (!read_only) p.attach_page_map();
    return p;
  } catch (...) {
    if (registered) unregister_in_proc(st);
    ::close(fd);
    throw;
  }
}

Pool::~Pool() { close(); }

void Pool::attach_page_map() {
  page_map_ = std::make_unique<PageMap>(base_, size_);
  pagemap_register(page_map_.get(), base_, size_);
}

Pool::Pool(Pool&& other) noexcept
    : path_(std::move(other.path_)),
      fd_(std::exchange(other.fd_, -1)),
      page_map_(std::move(other.page_map_)),
      base_(std::exchange(other.base_, nullptr)),
      size_(std::exchange(other.size_, 0)),
      read_only_(std::exchange(other.read_only_, false)),
      in_proc_registered_(std::exchange(other.in_proc_registered_, false)) {}

Pool& Pool::operator=(Pool&& other) noexcept {
  if (this != &other) {
    close();
    path_ = std::move(other.path_);
    fd_ = std::exchange(other.fd_, -1);
    page_map_ = std::move(other.page_map_);
    base_ = std::exchange(other.base_, nullptr);
    size_ = std::exchange(other.size_, 0);
    read_only_ = std::exchange(other.read_only_, false);
    in_proc_registered_ = std::exchange(other.in_proc_registered_, false);
  }
  return *this;
}

bool Pool::punch_hole(std::size_t offset, std::size_t len) {
  const int rc = intercepted_retry_eintr(fault::SysOp::kFallocate, [&] {
    return ::fallocate(fd_, FALLOC_FL_PUNCH_HOLE | FALLOC_FL_KEEP_SIZE,
                       static_cast<off_t>(offset), static_cast<off_t>(len));
  });
  if (rc == 0) {
    // The punched pages read back as zero: the next incremental snapshot
    // must recopy them or it would revive the pre-punch bytes.
    if (page_map_ != nullptr) page_map_->note(base_ + offset, len);
    return true;
  }
  if (errno == EOPNOTSUPP || errno == ENOSPC) {
    // The filesystem cannot punch (or cannot afford the metadata).
    // Leaving the bytes backed is only a space regression — a
    // deactivated level holds no records, so its content is dead either
    // way — and must never kill the defrag path that asked for it.
    return false;
  }
  throw_io("fallocate(PUNCH_HOLE) " + path_);
}

std::size_t Pool::allocated_bytes() const {
  struct stat st{};
  const int rc = intercepted_retry_eintr(
      fault::SysOp::kFstat, [&] { return ::fstat(fd_, &st); });
  if (rc != 0) throw_io("fstat " + path_);
  return static_cast<std::size_t>(st.st_blocks) * 512u;
}

void Pool::sync_range(std::size_t offset, std::size_t len) {
  if (base_ == nullptr) return;
  const int rc = retry_eintr(
      [&] { return ::msync(base_ + offset, len, MS_SYNC); });
  if (rc != 0) throw_io("msync " + path_);
}

void Pool::close() noexcept {
  if (page_map_ != nullptr) {
    // Deregister before the tracker dies and before munmap: a note can
    // only target this range from a thread still writing the pool, which
    // close() already forbids.
    pagemap_unregister(page_map_.get());
    page_map_.reset();
  }
  if (in_proc_registered_) {
    struct stat st{};
    if (fd_ >= 0 && ::fstat(fd_, &st) == 0) unregister_in_proc(st);
    in_proc_registered_ = false;
  }
  if (base_ != nullptr) {
    ::munmap(base_, size_);
    base_ = nullptr;
  }
  if (fd_ >= 0) {
    // Closing the description releases the OFD lock with it: lock lifetime
    // is exactly pool lifetime, with kernel cleanup on process death.
    ::close(fd_);
    fd_ = -1;
  }
  size_ = 0;
  read_only_ = false;
}

void Pool::unlink(const std::string& path) noexcept { ::unlink(path.c_str()); }

bool Pool::exists(const std::string& path) noexcept {
  struct stat st{};
  // Only regular files count: a directory or device at `path` is not a
  // pool, and claiming it exists would route open_or_create into open().
  return ::stat(path.c_str(), &st) == 0 && S_ISREG(st.st_mode);
}

}  // namespace poseidon::pmem
