#include "pmem/pool.hpp"

#include <fcntl.h>
#include <sys/mman.h>
#include <sys/stat.h>
#include <unistd.h>

#include <cerrno>
#include <stdexcept>
#include <utility>

#include "common/error.hpp"
#include "pmem/fault_inject.hpp"

namespace poseidon::pmem {

namespace {

[[noreturn]] void throw_io(const std::string& what) {
  throw Error(ErrorCode::kIo, what, errno);
}

std::byte* map_fd(int fd, std::size_t size) {
  void* p = MAP_FAILED;
  if (const int e = fault::intercept(fault::SysOp::kMmap)) {
    errno = e;
  } else {
    p = ::mmap(nullptr, size, PROT_READ | PROT_WRITE, MAP_SHARED, fd, 0);
  }
  if (p == MAP_FAILED) throw_io("mmap pool");
  auto* base = static_cast<std::byte*>(p);
  // Armed media-error emulation (PROT_NONE pages) lands at map time.
  fault::apply_poison(base, size);
  return base;
}

}  // namespace

Pool Pool::create(const std::string& path, std::size_t size) {
  // O_EXCL would fail on an existing directory anyway, but with a
  // confusing "File exists"; diagnose the common mistake up front.
  struct stat st{};
  if (::stat(path.c_str(), &st) == 0 && !S_ISREG(st.st_mode)) {
    throw std::invalid_argument(path +
                                ": exists and is not a regular file "
                                "(Poseidon pools must be regular files)");
  }
  int fd = -1;
  if (const int e = fault::intercept(fault::SysOp::kOpen)) {
    errno = e;
  } else {
    fd = ::open(path.c_str(), O_CREAT | O_EXCL | O_RDWR, 0644);
  }
  if (fd < 0) throw_io("create pool file " + path);
  int trunc_rc = -1;
  if (const int e = fault::intercept(fault::SysOp::kFtruncate)) {
    errno = e;
  } else {
    trunc_rc = ::ftruncate(fd, static_cast<off_t>(size));
  }
  if (trunc_rc != 0) {
    const int saved = errno;
    ::close(fd);
    ::unlink(path.c_str());
    errno = saved;
    throw_io("ftruncate pool file " + path);
  }
  return Pool(path, fd, map_fd(fd, size), size);
}

Pool Pool::open(const std::string& path) {
  int fd = -1;
  if (const int e = fault::intercept(fault::SysOp::kOpen)) {
    errno = e;
  } else {
    fd = ::open(path.c_str(), O_RDWR);
  }
  if (fd < 0) throw_io("open pool file " + path);
  struct stat st{};
  int stat_rc = -1;
  if (const int e = fault::intercept(fault::SysOp::kFstat)) {
    errno = e;
  } else {
    stat_rc = ::fstat(fd, &st);
  }
  if (stat_rc != 0) {
    const int saved = errno;
    ::close(fd);
    errno = saved;
    throw_io("fstat pool file " + path);
  }
  if (!S_ISREG(st.st_mode)) {
    ::close(fd);
    // Devices and FIFOs stat fine but cannot back a pool; mmap/ftruncate
    // would fail later with a far less actionable errno.
    throw std::invalid_argument(path +
                                ": not a regular file "
                                "(Poseidon pools must be regular files)");
  }
  const auto size = static_cast<std::size_t>(st.st_size);
  return Pool(path, fd, map_fd(fd, size), size);
}

Pool::~Pool() { close(); }

Pool::Pool(Pool&& other) noexcept
    : path_(std::move(other.path_)),
      fd_(std::exchange(other.fd_, -1)),
      base_(std::exchange(other.base_, nullptr)),
      size_(std::exchange(other.size_, 0)) {}

Pool& Pool::operator=(Pool&& other) noexcept {
  if (this != &other) {
    close();
    path_ = std::move(other.path_);
    fd_ = std::exchange(other.fd_, -1);
    base_ = std::exchange(other.base_, nullptr);
    size_ = std::exchange(other.size_, 0);
  }
  return *this;
}

bool Pool::punch_hole(std::size_t offset, std::size_t len) {
  for (;;) {
    int rc = -1;
    if (const int e = fault::intercept(fault::SysOp::kFallocate)) {
      errno = e;
    } else {
      rc = ::fallocate(fd_, FALLOC_FL_PUNCH_HOLE | FALLOC_FL_KEEP_SIZE,
                       static_cast<off_t>(offset), static_cast<off_t>(len));
    }
    if (rc == 0) return true;
    if (errno == EINTR) continue;  // signal landed mid-call: retry
    if (errno == EOPNOTSUPP || errno == ENOSPC) {
      // The filesystem cannot punch (or cannot afford the metadata).
      // Leaving the bytes backed is only a space regression — a
      // deactivated level holds no records, so its content is dead either
      // way — and must never kill the defrag path that asked for it.
      return false;
    }
    throw_io("fallocate(PUNCH_HOLE) " + path_);
  }
}

std::size_t Pool::allocated_bytes() const {
  struct stat st{};
  int rc = -1;
  if (const int e = fault::intercept(fault::SysOp::kFstat)) {
    errno = e;
  } else {
    rc = ::fstat(fd_, &st);
  }
  if (rc != 0) throw_io("fstat " + path_);
  return static_cast<std::size_t>(st.st_blocks) * 512u;
}

void Pool::close() noexcept {
  if (base_ != nullptr) {
    ::munmap(base_, size_);
    base_ = nullptr;
  }
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
  size_ = 0;
}

void Pool::unlink(const std::string& path) noexcept { ::unlink(path.c_str()); }

bool Pool::exists(const std::string& path) noexcept {
  struct stat st{};
  // Only regular files count: a directory or device at `path` is not a
  // pool, and claiming it exists would route open_or_create into open().
  return ::stat(path.c_str(), &st) == 0 && S_ISREG(st.st_mode);
}

}  // namespace poseidon::pmem
