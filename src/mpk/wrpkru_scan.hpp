// Binary inspection for MPK-bypass gadgets (paper §8, Limitations).
//
// MPK protection can be subverted by an attacker who hijacks control flow
// into a stray WRPKRU (or XRSTOR, which can also load PKRU) instruction.
// The countermeasure the paper points to (Hodor, ERIM) is binary
// inspection: scan every executable mapping and verify that the only
// PKRU-writing instructions are the allocator's own, trusted call sites.
//
// This module implements the scanning half: find all occurrences of the
// WRPKRU (0F 01 EF) and XRSTOR (0F AE modrm.reg=5) encodings in a byte
// range or in the process's executable mappings.  Like ERIM, the scan is
// byte-exact and deliberately over-approximate (an encoding spanning an
// instruction boundary still counts — an attacker can jump mid-
// instruction).
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

namespace poseidon::mpk {

enum class GadgetKind { kWrpkru, kXrstor };

struct GadgetHit {
  std::uintptr_t addr = 0;
  GadgetKind kind = GadgetKind::kWrpkru;
  std::string mapping;  // source mapping (scan_executable_mappings only)
};

const char* gadget_name(GadgetKind k) noexcept;

// Scan [base, base+len) for PKRU-writing encodings.
std::vector<GadgetHit> scan_range(const void* base, std::size_t len);

// Scan every executable mapping of the current process (/proc/self/maps).
// `skip_vdso` excludes kernel-provided mappings.
std::vector<GadgetHit> scan_executable_mappings(bool skip_vdso = true);

// Convenience verdict for hardening checks: true when every WRPKRU found
// in the process text lies inside one of the allowed ranges (e.g. the
// allocator's own protection-domain code).
struct AllowedRange {
  std::uintptr_t begin;
  std::uintptr_t end;
};
bool only_allowed_gadgets(const std::vector<AllowedRange>& allowed,
                          std::vector<GadgetHit>* offenders = nullptr);

}  // namespace poseidon::mpk
