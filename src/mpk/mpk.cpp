#include "mpk/mpk.hpp"

#include <sys/mman.h>
#include <unistd.h>

#include <cerrno>
#include <system_error>

#include "obs/metrics.hpp"

namespace poseidon::mpk {

thread_local int ProtectionDomain::tl_nest_ = 0;

namespace {

// Sharded so the count never serializes the windows it is counting.
obs::Counter g_window_switches;

[[noreturn]] void throw_errno(const char* what) {
  throw std::system_error(errno, std::generic_category(), what);
}

bool probe_pku() noexcept {
  const int key = ::pkey_alloc(0, 0);
  if (key < 0) return false;
  ::pkey_free(key);
  return true;
}

}  // namespace

bool pku_supported() noexcept {
  static const bool supported = probe_pku();
  return supported;
}

std::uint64_t write_window_switches() noexcept {
  return g_window_switches.read();
}

const char* mode_name(ProtectMode m) noexcept {
  switch (m) {
    case ProtectMode::kAuto: return "auto";
    case ProtectMode::kPkey: return "pkey";
    case ProtectMode::kMprotect: return "mprotect";
    case ProtectMode::kNone: return "none";
  }
  return "?";
}

ProtectionDomain::ProtectionDomain(void* base, std::size_t len,
                                   ProtectMode requested)
    : base_(base), len_(len), mode_(requested) {
  if (mode_ == ProtectMode::kAuto) {
    mode_ = pku_supported() ? ProtectMode::kPkey : ProtectMode::kNone;
  }
  switch (mode_) {
    case ProtectMode::kPkey: {
      pkey_ = ::pkey_alloc(0, PKEY_DISABLE_WRITE);
      if (pkey_ < 0) throw_errno("pkey_alloc");
      if (::pkey_mprotect(base_, len_, PROT_READ | PROT_WRITE, pkey_) != 0) {
        const int saved = errno;
        ::pkey_free(pkey_);
        errno = saved;
        throw_errno("pkey_mprotect");
      }
      break;
    }
    case ProtectMode::kMprotect:
      if (::mprotect(base_, len_, PROT_READ) != 0) throw_errno("mprotect");
      break;
    case ProtectMode::kNone:
      break;
    case ProtectMode::kAuto:
      break;  // unreachable
  }
}

ProtectionDomain::~ProtectionDomain() {
  switch (mode_) {
    case ProtectMode::kPkey:
      // Detach the key from the pages before freeing it so a recycled key
      // does not inherit our mapping.
      ::pkey_mprotect(base_, len_, PROT_READ | PROT_WRITE, 0);
      ::pkey_free(pkey_);
      break;
    case ProtectMode::kMprotect:
      ::mprotect(base_, len_, PROT_READ | PROT_WRITE);
      break;
    default:
      break;
  }
}

void ProtectionDomain::allow_writes() {
  switch (mode_) {
    case ProtectMode::kPkey:
      if (tl_nest_++ == 0) {
        ::pkey_set(pkey_, 0);
        g_window_switches.inc();
      }
      break;
    case ProtectMode::kMprotect: {
      std::lock_guard<std::mutex> lk(mprotect_mu_);
      if (nest_++ == 0) {
        if (::mprotect(base_, len_, PROT_READ | PROT_WRITE) != 0) {
          throw_errno("mprotect(rw)");
        }
        g_window_switches.inc();
      }
      break;
    }
    default:
      break;
  }
}

void ProtectionDomain::revoke_writes() {
  switch (mode_) {
    case ProtectMode::kPkey:
      if (--tl_nest_ == 0) ::pkey_set(pkey_, PKEY_DISABLE_WRITE);
      break;
    case ProtectMode::kMprotect: {
      std::lock_guard<std::mutex> lk(mprotect_mu_);
      if (--nest_ == 0) {
        if (::mprotect(base_, len_, PROT_READ) != 0) {
          throw_errno("mprotect(ro)");
        }
      }
      break;
    }
    default:
      break;
  }
}

}  // namespace poseidon::mpk
