#include "mpk/wrpkru_scan.hpp"

#include <cstdio>
#include <cstring>

namespace poseidon::mpk {

const char* gadget_name(GadgetKind k) noexcept {
  switch (k) {
    case GadgetKind::kWrpkru: return "wrpkru";
    case GadgetKind::kXrstor: return "xrstor";
  }
  return "?";
}

std::vector<GadgetHit> scan_range(const void* base, std::size_t len) {
  std::vector<GadgetHit> hits;
  const auto* p = static_cast<const unsigned char*>(base);
  if (len < 3) return hits;
  for (std::size_t i = 0; i + 2 < len; ++i) {
    if (p[i] != 0x0f) continue;
    if (p[i + 1] == 0x01 && p[i + 2] == 0xef) {
      hits.push_back({reinterpret_cast<std::uintptr_t>(p + i),
                      GadgetKind::kWrpkru,
                      {}});
    } else if (p[i + 1] == 0xae && ((p[i + 2] >> 3) & 7) == 5) {
      // 0F AE /5 = XRSTOR (loads PKRU when the XSAVE mask includes it).
      hits.push_back({reinterpret_cast<std::uintptr_t>(p + i),
                      GadgetKind::kXrstor,
                      {}});
    }
  }
  return hits;
}

std::vector<GadgetHit> scan_executable_mappings(bool skip_vdso) {
  std::vector<GadgetHit> hits;
  std::FILE* maps = std::fopen("/proc/self/maps", "r");
  if (maps == nullptr) return hits;
  char line[512];
  while (std::fgets(line, sizeof(line), maps) != nullptr) {
    std::uintptr_t begin = 0, end = 0;
    char perms[8] = {};
    char path[384] = {};
    if (std::sscanf(line, "%lx-%lx %7s %*s %*s %*s %383s",
                    &begin, &end, perms, path) < 3) {
      continue;
    }
    if (std::strchr(perms, 'x') == nullptr) continue;
    if (skip_vdso && (std::strstr(path, "[vdso]") != nullptr ||
                      std::strstr(path, "[vsyscall]") != nullptr)) {
      continue;
    }
    auto found = scan_range(reinterpret_cast<const void*>(begin), end - begin);
    for (auto& h : found) h.mapping = path;
    hits.insert(hits.end(), found.begin(), found.end());
  }
  std::fclose(maps);
  return hits;
}

bool only_allowed_gadgets(const std::vector<AllowedRange>& allowed,
                          std::vector<GadgetHit>* offenders) {
  bool clean = true;
  for (const GadgetHit& h : scan_executable_mappings()) {
    bool ok = false;
    for (const AllowedRange& r : allowed) {
      if (h.addr >= r.begin && h.addr < r.end) {
        ok = true;
        break;
      }
    }
    if (!ok) {
      clean = false;
      if (offenders != nullptr) offenders->push_back(h);
    }
  }
  return clean;
}

}  // namespace poseidon::mpk
