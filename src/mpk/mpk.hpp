// Metadata protection via Intel Memory Protection Keys (paper §4.3).
//
// The heap metadata region is mapped under an MPK protection key whose
// access rights default to "no write".  At the entry of every alloc/free
// operation the executing thread grants itself write access with a ~23
// cycle wrpkru; the permission is thread-local (PKRU is a per-core
// register), so a concurrent buggy thread still cannot scribble on the
// metadata.
//
// Hardware PKU is not universal, so the domain supports three modes:
//   kPkey     — real pkey_alloc/pkey_mprotect/wrpkru (used when available);
//   kMprotect — mprotect(PROT_READ) emulation: identical fault-on-write
//               semantics but process-wide and syscall-priced; a nesting
//               counter keeps the region writable while any thread is
//               inside the allocator;
//   kNone     — no protection (baseline/ablation).
// Mode kAuto picks kPkey when the CPU+kernel support it and kNone
// otherwise, so performance runs never pay the unrepresentative mprotect
// tax (see DESIGN.md).
#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <mutex>

namespace poseidon::mpk {

enum class ProtectMode { kAuto, kPkey, kMprotect, kNone };

// True if pkey_alloc succeeds on this machine (probed once).
bool pku_supported() noexcept;

const char* mode_name(ProtectMode m) noexcept;

// Process-wide count of write-window openings (outermost allow_writes
// calls under kPkey/kMprotect; kNone opens no window).  Observability
// only — the paper's ~23-cycle wrpkru claim becomes measurable as
// switches / operations.
std::uint64_t write_window_switches() noexcept;

class ProtectionDomain {
 public:
  // Places [base, base+len) (page-aligned) under protection.  With kAuto,
  // resolves to kPkey or kNone.  Throws std::system_error on syscall
  // failure of an explicitly requested mode.
  ProtectionDomain(void* base, std::size_t len, ProtectMode requested);
  ~ProtectionDomain();

  ProtectionDomain(const ProtectionDomain&) = delete;
  ProtectionDomain& operator=(const ProtectionDomain&) = delete;

  // Resolved mode actually in effect.
  ProtectMode mode() const noexcept { return mode_; }

  // Grant/revoke write permission for the calling thread (kPkey) or the
  // process (kMprotect).  Nestable.
  void allow_writes();
  void revoke_writes();

 private:
  void* base_;
  std::size_t len_;
  ProtectMode mode_;
  int pkey_ = -1;
  // kMprotect bookkeeping: region is writable while nest_ > 0.
  std::mutex mprotect_mu_;
  int nest_ = 0;
  static thread_local int tl_nest_;  // kPkey nesting per thread
};

// RAII write window around an allocator operation.
class WriteWindow {
 public:
  explicit WriteWindow(ProtectionDomain* d) : domain_(d) {
    if (domain_ != nullptr) domain_->allow_writes();
  }
  ~WriteWindow() {
    if (domain_ != nullptr) domain_->revoke_writes();
  }
  WriteWindow(const WriteWindow&) = delete;
  WriteWindow& operator=(const WriteWindow&) = delete;

 private:
  ProtectionDomain* domain_;
};

}  // namespace poseidon::mpk
