// The allocation-service server: owns the heap (OFD lock and all), hosts
// one service thread per pool shard plus a housekeeping thread, and
// serves ring requests from other processes (svc_layout.hpp for the wire
// format, ring.hpp for the algorithms).
//
// Thread roles:
//   * service thread (one per shard) — drains that shard's submission
//     ring and executes requests through the Heap batch entry points.
//     The heap is opened with thread_cache forced on, so each service
//     thread's magazines are the L2 that batches undo commits under the
//     clients' L1 magazines (SpeedMalloc's split).  Each loop iteration
//     publishes the thread's view of the global epoch; while
//     futex-sleeping it publishes "quiescent" so idle shards never stall
//     reclamation.
//   * housekeeping — advances the epoch, stamps the segment heartbeat
//     (clients' liveness signal), re-stamps the heap's persistent owner
//     heartbeat, and runs the session reclaimer.
//
// Session reclamation (client death mid-batch):
//   1. detect: pid dead or start_time mismatch (core/ownership helpers) —
//      the session becomes a zombie at retire_epoch = current epoch, and
//      the submission rings' enqueue positions are snapshotted.
//   2. grace: wait until every service thread's epoch passes retire_epoch
//      (no thread can still be executing a request that predates the
//      zombie marking) and every ring's dequeue cursor passes its
//      snapshot (every request the dead client published has been
//      executed or discarded; service threads discard requests whose
//      session is not active).
//   3. reclaim: drain the zombie's completion ring and free every alloc
//      result still in it — the client provably never dequeued those
//      handles, so freeing them is the no-leak guarantee.  Handles the
//      client *did* consume stay allocated (its persistent structures may
//      reference them); that is a bounded leak recovered by fsck-level
//      tools, never an unsafe reuse.  Finally the slot's generation bumps
//      and the session returns to the free pool.
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "core/heap.hpp"
#include "pmem/shm.hpp"
#include "svc/svc_layout.hpp"

namespace poseidon::svc {

struct ServerOptions {
  // Heap open options; thread_cache is forced on and read_only off.
  core::Options heap_opts{};
  // When nonzero, open_or_create with this capacity (tools/tests).
  std::uint64_t create_capacity = 0;
  // Housekeeping cadence (heartbeat, epoch advance, reclamation scan).
  std::uint64_t housekeep_ms = 20;
  // A kSessClaiming slot with a heartbeat older than this is an admission
  // crash and reclaimed without grace (it never submitted anything).
  std::uint64_t claim_stale_ns = 2'000'000'000;
  // Service threads spin this many polls before futex-sleeping.
  unsigned idle_spins = 4096;
};

class SvcServer {
 public:
  // Opens the heap exclusively (throws Error{kHeapBusy} through from
  // Heap::open if another owner is live) and publishes a fresh segment at
  // svc_path(heap_path), replacing any stale one.  A stale segment is
  // first retired in place: its generation is read (the new segment
  // publishes generation+1), dead sessions' never-dequeued alloc results
  // are freed back to the heap, and its header flips kDead with every
  // doorbell woken so clients still mapping it fail over immediately.
  static std::unique_ptr<SvcServer> start(const std::string& heap_path,
                                          const ServerOptions& opts = {});

  ~SvcServer();
  SvcServer(const SvcServer&) = delete;
  SvcServer& operator=(const SvcServer&) = delete;

  // Stop accepting new submissions (clients get kSvcRetry); already
  // published requests are still served.
  void drain() noexcept;

  // Drain, serve out the rings, join every thread, mark the segment
  // kDead.  The segment file is left on disk for inspection; the next
  // server incarnation sweeps it.  Idempotent.
  void stop();

  core::Heap& heap() noexcept { return *heap_; }
  const std::string& segment_path() const noexcept { return seg_.path(); }
  SvcState state() const noexcept;

  // Test/diagnostic peeks.
  std::uint64_t requests_served() const noexcept {
    return requests_served_.load(std::memory_order_relaxed);
  }
  std::uint64_t sessions_reclaimed() const noexcept {
    return sessions_reclaimed_.load(std::memory_order_relaxed);
  }
  std::byte* segment_base() noexcept { return seg_.data(); }
  std::uint64_t generation() const noexcept { return generation_; }

 private:
  SvcServer(std::unique_ptr<core::Heap> heap, pmem::ShmSegment seg,
            ServerOptions opts, std::uint64_t generation, bool failover);

  void service_loop(unsigned shard);
  void housekeep_loop();
  // Executes one request and enqueues its completion; frees alloc results
  // when the completion ring is full or the session is no longer active.
  void execute(unsigned shard, const struct SubReq& req);
  void mark_zombie(unsigned sess, std::uint32_t state_now);
  bool grace_elapsed(unsigned sess) const noexcept;
  void reclaim_session(unsigned sess);
  std::uint64_t min_thread_epoch() const noexcept;

  std::unique_ptr<core::Heap> heap_;
  pmem::ShmSegment seg_;
  ServerOptions opts_;
  unsigned nshards_ = 0;
  std::uint64_t generation_ = 1;

  std::atomic<bool> stop_{false};
  std::atomic<std::uint64_t> requests_served_{0};
  std::atomic<std::uint64_t> sessions_reclaimed_{0};

  // Per-service-thread published epoch; UINT64_MAX = quiescent (sleeping
  // or exited), which never holds up a grace period.
  struct alignas(64) ThreadEpoch {
    std::atomic<std::uint64_t> v{UINT64_MAX};
  };
  std::vector<std::unique_ptr<ThreadEpoch>> epochs_;

  // Reclaimer bookkeeping (server-local; the segment only carries what
  // clients and inspectors need).
  struct SessionBook {
    std::uint32_t seen_gen = UINT32_MAX;  // last gen counted as "opened"
    std::vector<std::uint64_t> enq_snap;  // per-shard enqueue snapshot
  };
  std::vector<SessionBook> book_;

  std::vector<std::thread> threads_;
  std::thread housekeeper_;
};

}  // namespace poseidon::svc
