// Client side of the allocation service: session admission, request
// submission, completion waits, degraded-mode detection, and the data
// windows that let a client read and write *user* memory directly while
// the server keeps the heap's metadata to itself.
//
// A client process never opens the heap through Pool/Heap (the server
// holds the OFD locks).  Instead it maps each shard file PROT_READ up to
// the end of the user region and flips only the user region itself
// read-write — so client code can build its persistent structures in
// place, while every byte of allocator metadata stays unwritable from the
// client, mirroring the MPK story inside the server.  NvPtr conversion
// needs just the three geometry numbers the server publishes per shard
// (user_region_off, user_size, nsubheaps).
//
// Degraded modes a caller sees as typed results:
//   * server draining      -> ErrorCode::kSvcRetry (submission refused)
//   * server dead/stale    -> ErrorCode::kSvcUnavailable (heartbeat aged
//     out AND the server pid is gone — pid reuse guarded by start_time);
//     the alloc_iface adapter then fails over to a read_only Heap open.
//
// Threading: one SvcClient is one session driven by one thread — use one
// per thread (the alloc_iface adapter does exactly that).  Within a
// session the magazine refill and free-stash flush paths pipeline up to
// refill_batches requests before collecting completions; the home ring is
// consumed in FIFO order by a single service thread, so completions for a
// session always arrive in submission order.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "common/error.hpp"
#include "core/nvmptr.hpp"
#include "core/subheap.hpp"
#include "pmem/shm.hpp"
#include "svc/svc_layout.hpp"

namespace poseidon::svc {

struct CplMsg;  // ring.hpp

struct ClientOptions {
  // Heartbeat age beyond which a non-responding server is presumed dead
  // (combined with a pid liveness check before declaring kSvcUnavailable).
  std::uint64_t server_stale_ns = 3'000'000'000;
  // How long submission retries a full ring / starting server before
  // giving up with kSvcRetry.
  std::uint64_t submit_timeout_ns = 2'000'000'000;
  // Spins before a completion wait futex-sleeps.  On a single-CPU box the
  // effective value is 0: spinning there steals the only core the server
  // needs to produce the completion being waited for.
  unsigned wait_spins = 4096;
  // Pipelined batches per magazine refill / free-stash flush: this many
  // kMaxOpsPerReq-sized requests are submitted back-to-back before the
  // first completion is collected, amortizing one ring round-trip (and on
  // contended boxes one pair of context switches) over
  // refill_batches * kMaxOpsPerReq blocks.  Clamped to kCplRingSlots / 2
  // so a session can never overflow its own completion ring.
  unsigned refill_batches = 6;
  // Map the shard user regions writable (the normal mode).  Off for
  // control-plane-only probes.
  bool map_data = true;

  // ---- failover (DESIGN.md, "Failover and self-healing") -------------------

  // When the server dies mid-operation, run the reconnect protocol
  // (reattach at the next generation, reconcile in-flight requests) and
  // retry instead of surfacing kSvcUnavailable.  Off restores the fail-
  // fast behavior the read-only degradation ladder expects.
  bool auto_failover = true;
  // Reattach attempts before a reconnect gives up; each failed attempt
  // waits out one backoff step below.
  unsigned reconnect_attempts = 30;
  // Capped exponential backoff between reattach attempts, with jitter so
  // losing clients do not stampede the new server's admission CASes.
  std::uint64_t reconnect_backoff_ns = 2'000'000;        // first wait
  std::uint64_t reconnect_backoff_max_ns = 200'000'000;  // cap
  // Election hook: called every few failed reattach attempts so somebody
  // can become (or fork) the replacement server.  May be invoked by many
  // clients at once — the heap's OFD owner lock arbitrates, losers just
  // fail Heap::open with kHeapBusy.  Exceptions are swallowed.
  std::function<void()> elect;
  // Injectable clock for liveness classification (tests); null uses
  // monotonic_ns().
  std::uint64_t (*now)() = nullptr;
};

class SvcClient {
 public:
  // Attaches to the segment beside `heap_path` and claims a session.
  // Throws Error{kSvcUnavailable} (no segment / dead server),
  // Error{kSvcRetry} (draining), or Error{kInternal} (session table full).
  static std::unique_ptr<SvcClient> connect(const std::string& heap_path,
                                            const ClientOptions& opts = {});

  ~SvcClient();
  SvcClient(const SvcClient&) = delete;
  SvcClient& operator=(const SvcClient&) = delete;

  // ---- batched operations (one ring round-trip each) -----------------------

  // n <= kMaxOpsPerReq for every batch call.
  ErrorCode alloc(const std::uint64_t* sizes, unsigned n, core::NvPtr* out);
  ErrorCode tx_alloc(const std::uint64_t* sizes, unsigned n, core::NvPtr* out);
  ErrorCode free_blocks(const core::NvPtr* ptrs, unsigned n,
                        core::FreeResult* out);
  ErrorCode get_root(core::NvPtr* out);
  ErrorCode set_root(core::NvPtr root);
  ErrorCode ping();

  // Ask the server to snapshot its heap into dst_dir (one consistent cut
  // while every session keeps submitting); incremental updates an existing
  // snapshot against dst_dir/MANIFEST.  The path must fit a request
  // payload (< 96 bytes).  kInvalidArgument reflects a server-side refusal
  // (bad path, unprovable incremental baseline, ...).
  ErrorCode snapshot(const std::string& dst_dir, bool incremental,
                     std::uint64_t* pages_out = nullptr);

  // ---- cached single ops (the client-side L1 over the ring's L2) -----------

  // Magazine-cached allocation: pops the size-class magazine and refills
  // it with one batched ring request on miss.  Null on exhaustion or
  // degraded service (err carries the reason; kOk + null = exhausted).
  core::NvPtr alloc_one(std::uint64_t size, ErrorCode* err = nullptr);
  // Stashes the pointer; at the watermark the stash is submitted as
  // fire-and-forget batches (free results are not reported back), so the
  // caller never blocks on the free path.
  ErrorCode free_one(core::NvPtr ptr);
  // Pushes out pending frees and returns unused magazine blocks, then
  // blocks until the server has executed everything this session sent.
  ErrorCode flush_caches();

  // ---- data windows --------------------------------------------------------

  // NvPtr -> pointer inside this process's data windows; nullptr for
  // null/unknown pointers or when map_data was off.
  void* raw(core::NvPtr ptr) const noexcept;
  core::NvPtr from_raw(const void* p) const noexcept;

  // ---- liveness / identity -------------------------------------------------

  // kOk while serving; kSvcRetry when draining; kSvcUnavailable when the
  // heartbeat aged out and the server pid is gone.
  ErrorCode server_state() const noexcept;
  unsigned session() const noexcept { return session_; }
  unsigned shard() const noexcept { return shard_; }
  // Segment generation this client is attached to; bumps on failover.
  std::uint64_t generation() const noexcept { return generation_; }

  // ---- failover ------------------------------------------------------------

  // Runs the full reconnect protocol now: drain the orphaned completion
  // ring, classify in-flight requests, reattach to a successor segment
  // (calling opts.elect as needed) with backoff, re-admit under the same
  // session nonce, and reconcile — orphaned tagged allocations are freed
  // through kReclaimOrphans, unacknowledged frees replayed through
  // kFreeIfOwner, both idempotent so a failover *during* reconcile just
  // runs it again.  Returns kOk once reconciled on a serving successor;
  // kSvcUnavailable when the reattach budget is exhausted.  The automatic
  // paths call this; it is public for adapters and drills.
  ErrorCode reconnect();

  // ---- torture hooks -------------------------------------------------------

  // Claims up to n submission slots and never publishes them — simulates
  // death mid-submit when the caller is then SIGKILLed.  Returns how many
  // were claimed.  The session is wedged afterwards; only for tests.
  unsigned hold_claims_for_test(unsigned n);
  // Submits one alloc without consuming its completion — makes in-flight
  // handles for the reclaimer to find.  Only for tests.
  ErrorCode submit_alloc_no_wait_for_test(std::uint64_t size);
  // Client-defined progress marker visible to other processes.
  void set_phase(std::uint64_t v) noexcept;

 private:
  SvcClient(pmem::ShmSegment seg, ClientOptions opts);

  struct Window {
    std::uint64_t heap_id = 0;
    std::byte* base = nullptr;  // mapping base (file offset 0)
    std::size_t len = 0;
    std::uint64_t user_off = 0;
    std::uint64_t user_size = 0;
    std::uint32_t nsubheaps = 0;
  };

  SessionSlot& sess() const noexcept;
  ErrorCode admission(const std::string& heap_path);
  void map_windows(const std::string& heap_path);
  std::uint64_t now_ns() const noexcept;
  bool failover_armed() const noexcept;
  // One reconnect round: drain, classify, reattach, re-admit, reconcile.
  ErrorCode reconnect_impl();
  // Replays the reconcile backlog (lost_tags_ / replay_frees_) through the
  // current server; entries leave the backlog only on kOk completions.
  ErrorCode reconcile();
  // roundtrip() minus the failover retry loop; *submitted reports whether
  // the request made it into the ring (decides replay semantics).
  ErrorCode roundtrip_once(SvcOp op, const std::uint64_t* payload,
                           unsigned nops, CplMsg* out, bool* submitted);
  ErrorCode roundtrip(SvcOp op, const std::uint64_t* payload, unsigned nops,
                      CplMsg* out);
  ErrorCode submit(SvcOp op, const std::uint64_t* payload, unsigned nops,
                   std::uint32_t req_id);
  // Strikes a dequeued completion's req_id off the in-flight registries.
  void note_completed(const CplMsg& msg);
  ErrorCode wait_completion(std::uint32_t req_id, CplMsg* out);
  // Flushes the whole pending-free stash as fire-and-forget batches; with
  // sync, blocks until the server has executed every outstanding request.
  // The outer function retries through reconnect(); _inner is one attempt.
  ErrorCode flush_pending(bool sync);
  ErrorCode flush_pending_inner(bool sync);
  core::NvPtr alloc_one_inner(std::uint64_t size, ErrorCode* err);
  // Blocks until every outstanding completion has been collected.  FIFO
  // completion order makes waiting on the last submitted id sufficient.
  ErrorCode drain_outstanding();
  // Books a dequeued completion nobody is synchronously waiting for: a
  // prefetched refill's blocks go into its magazine, everything else
  // (fire-and-forget frees, abandoned waits) is dropped.
  void absorb_completion(const CplMsg& msg);
  // Keeps enough single-batch refill requests in flight that the next
  // magazine miss usually finds its completions already queued.
  void prefetch(unsigned cls, std::uint64_t size);
  // Collects completions until `count` more can be enqueued without the
  // server ever seeing a full completion ring.
  ErrorCode ensure_cpl_space(unsigned count);
  unsigned pipeline_depth() const noexcept;

  pmem::ShmSegment seg_;
  ClientOptions opts_;
  unsigned effective_spins_ = 0;  // wait_spins, or 0 on a single-CPU box
  unsigned session_ = 0;
  unsigned shard_ = 0;  // home submission ring
  std::string heap_path_;         // reattach key: svc_path(heap_path_)
  std::uint64_t generation_ = 0;  // segment generation currently attached
  // Session nonce (top bit set, never zero): stamped into every alloc this
  // session makes (tag = nonce << 32 | req_id) and stable across
  // reconnects, so reconcile frees only blocks provably this session's.
  std::uint32_t nonce32_ = 0;
  bool reconnected_once_ = false;  // admission publishes it for accounting
  bool in_reconnect_ = false;      // reconcile round-trips must not recurse
  std::uint32_t next_req_id_ = 1;
  std::uint32_t last_submitted_id_ = 0;
  // Local mirror of SessionSlot::alloc_watermark (max consumed kOkAlloc
  // req id); re-published into the slot at every (re)admission so a
  // successor server never reclaims blocks an earlier generation already
  // delivered.
  std::uint64_t alloc_watermark_ = 0;
  // Successful submissions whose completions have not been dequeued yet.
  // Kept exact so ensure_cpl_space() can guarantee the server never finds
  // the completion ring full (a dropped alloc completion would otherwise
  // wedge the wait for it).
  unsigned outstanding_ = 0;
  std::vector<Window> windows_;

  // L1 magazines: per size class blocks prefetched from the service, plus
  // a pending-free stash flushed a batch at a time.
  std::vector<core::NvPtr> magazine_[64];
  std::vector<core::NvPtr> pending_free_;
  // In-flight async refill requests: ids per class (collected in FIFO
  // order on a miss) and the id -> class map that lets any dequeue path
  // route prefetched blocks to the right magazine.
  std::vector<std::uint32_t> refill_ids_[64];
  std::vector<std::pair<std::uint32_t, unsigned>> inflight_allocs_;

  // Failover bookkeeping.  Every successful submit registers its request
  // here (allocs by id, frees by id + pointer list) and every dequeued
  // completion strikes it off — so at the instant a server dies, these
  // hold exactly the requests with unknown fates.  reconnect() converts
  // them into the reconcile backlog below; entries leave the backlog only
  // when the successor acknowledges them, surviving repeated failovers.
  std::vector<std::uint32_t> alloc_reqs_;
  std::vector<std::pair<std::uint32_t, std::vector<core::NvPtr>>> free_reqs_;
  std::vector<std::uint64_t> lost_tags_;      // kReclaimOrphans backlog
  std::vector<core::NvPtr> replay_frees_;     // kFreeIfOwner backlog
};

}  // namespace poseidon::svc
