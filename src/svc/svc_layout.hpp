// Shared-memory layout of the allocation service ("Poseidon as a server").
//
//   segment:  [ SvcHeader | ShardEntry x kMaxShards | SubRing x nshards |
//               SessionSlot x kMaxSessions | CplRing x kMaxSessions ]
//
// The segment is volatile DRAM state recreated by every server
// incarnation (pmem/shm.hpp); only the *heap* is persistent.  Client
// processes submit alloc/free/tx batches through per-shard MPSC
// submission rings and collect results from per-session completion rings;
// the server's per-shard service threads — which own the sub-heap locks
// outright, the SpeedMalloc "allocation core" — execute them.
//
// Crash tolerance is the design center.  A client can be SIGKILLed at any
// instruction, so the submission ring cannot use a shared-ticket queue (a
// ticket taken by a dead producer would wedge the consumer forever).
// Instead every slot carries one atomic word encoding
//
//     word = position << 8 | session << 2 | tag      (svc_word)
//
// and a producer claims the slot for `position` by CAS from
// tag=kTagFree to kTagClaimed *with its session id in the same word* —
// there is never an anonymous claim.  If the claimant dies before
// publishing (kTagReady), the service thread sees a claimed slot whose
// session is dead and recycles it; a live-but-preempted claimant is
// waited for (its publish is a handful of stores away).  Completion rings
// only ever have server-side producers, so they use a plain ticket
// (Vyukov) scheme — if the server dies, clients detect it globally via
// heartbeat + pid liveness, not per-slot.
//
// All slots are one cache line wide or a multiple (128 B: sequence word +
// payload), and every cross-process doorbell is a 32-bit futex word.
#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <string>

#include "common/bitops.hpp"
#include "common/compiler.hpp"
#include "core/layout.hpp"
#include "core/nvmptr.hpp"

namespace poseidon::svc {

inline constexpr std::uint64_t kSvcMagic = 0x504f534549535643ull;  // "POSEISVC"
// v2: SvcHeader::generation + session nonces (failover / reconnect).
// v3: SessionSlot::alloc_watermark (orphan reclaim past dead sessions) +
//     SvcOp::kSnapshot.
inline constexpr std::uint32_t kSvcVersion = 3;

// Session slots; 64 keeps the session id in 6 bits of the slot word.
inline constexpr unsigned kMaxSessions = 64;
// Ops per request/completion slot: 6 sizes, 6 NvPtrs or 6 result words
// all fit the 96-byte payload.
inline constexpr unsigned kMaxOpsPerReq = 6;
// Submission slots per shard ring (power of two).
inline constexpr unsigned kSubRingSlots = 256;
// Completion slots per session ring (power of two).  Clients are
// synchronous (one outstanding request per session) so this is slack for
// torture's deliberately-unconsumed bursts, not a throughput knob.
inline constexpr unsigned kCplRingSlots = 32;

// ---- slot word (submission ring) -------------------------------------------

enum SlotTag : std::uint64_t {
  kTagFree = 0,     // free for the position encoded in the word
  kTagClaimed = 1,  // claimed by `session`, payload being written
  kTagReady = 2,    // published; consumable
};

inline constexpr std::uint64_t svc_word(std::uint64_t pos, std::uint32_t session,
                                        std::uint64_t tag) noexcept {
  return (pos << 8) | (std::uint64_t{session} << 2) | tag;
}
inline constexpr std::uint64_t word_pos(std::uint64_t w) noexcept {
  return w >> 8;
}
inline constexpr std::uint32_t word_session(std::uint64_t w) noexcept {
  return static_cast<std::uint32_t>((w >> 2) & 0x3f);
}
inline constexpr std::uint64_t word_tag(std::uint64_t w) noexcept {
  return w & 0x3;
}

// ---- operations ------------------------------------------------------------

enum class SvcOp : std::uint16_t {
  kNone = 0,
  kAlloc = 1,    // payload: nops sizes        -> results: nops NvPtrs (2 words)
  kTxAlloc = 2,  // as kAlloc, inside one transaction committed server-side
  kFree = 3,     // payload: nops NvPtrs       -> results: nops FreeResult codes
  kGetRoot = 4,  //                            -> results[0..1] = root NvPtr
  kSetRoot = 5,  // payload[0..1] = root NvPtr
  kPing = 6,     // liveness probe; echoes
  // Reconcile ops — both idempotent, so a reconnect interrupted by yet
  // another failover can simply resend them.
  kFreeIfOwner = 7,     // payload: nops NvPtrs -> results: 1 freed / 0 skipped;
                        // frees only blocks still carrying this session's
                        // owner tag (replayed lost-completion frees can never
                        // hit a block the server already freed and re-issued)
  kReclaimOrphans = 8,  // payload: nops owner tags -> results[0] = blocks
                        // freed; sweeps the heap for blocks stamped with the
                        // given tags (allocs whose completions were lost)
  kSnapshot = 9,        // payload: dst directory path (NUL-padded, <=96 B);
                        // nops = 1 for incremental (against dst/MANIFEST),
                        // 0 for full -> results[0] = pages copied.  Runs on
                        // the server's heap: one consistent cut while every
                        // session keeps submitting
};

enum class SvcStatus : std::uint16_t {
  kOk = 0,
  kBadRequest = 1,  // malformed op/nops (client bug); nothing executed
  kOkAlloc = 2,     // success AND results are NvPtr pairs — the reclaimer
                    // frees these when the client dies before dequeuing
};

struct alignas(2 * kCacheLineSize) ReqSlot {
  std::atomic<std::uint64_t> word;  // svc_word; the publication point
  std::uint32_t req_id;             // client cookie, echoed in the completion
  std::uint16_t op;                 // SvcOp
  std::uint16_t nops;
  std::uint64_t payload[2 * kMaxOpsPerReq];
};
static_assert(sizeof(ReqSlot) == 128);

struct alignas(2 * kCacheLineSize) CplSlot {
  std::atomic<std::uint64_t> seq;  // Vyukov: pos+1 = ready, pos+cap = free
  std::uint32_t req_id;
  std::uint16_t status;  // SvcStatus
  std::uint16_t nops;
  std::uint64_t results[2 * kMaxOpsPerReq];
};
static_assert(sizeof(CplSlot) == 128);

// ---- ring headers ----------------------------------------------------------

// Per-shard submission ring header.  enq_hint is advisory (producers probe
// forward from it); deq_pos is the service thread's authoritative cursor,
// stored relaxed so inspectors can report depth.  doorbell counts
// publications mod 2^32 and doubles as the consumer's futex word.
struct alignas(2 * kCacheLineSize) SubRingHdr {
  std::atomic<std::uint64_t> enq_hint;
  std::atomic<std::uint64_t> deq_pos;
  std::atomic<std::uint32_t> doorbell;
  std::atomic<std::uint32_t> consumer_sleeping;
};
static_assert(sizeof(SubRingHdr) == 128);

// ---- sessions --------------------------------------------------------------

enum SessionState : std::uint32_t {
  kSessFree = 0,
  kSessClaiming = 1,  // client CAS-won the slot, identity being written
  kSessActive = 2,
  kSessClosed = 3,    // clean disconnect; server reclaims without grace hurry
  kSessZombie = 4,    // owner pid is dead; awaiting epoch grace
};

struct alignas(2 * kCacheLineSize) SessionSlot {
  std::atomic<std::uint32_t> state;  // SessionState
  std::uint32_t gen;                 // bumped by the server at each reclaim
  std::uint64_t pid;
  std::uint64_t start_time;          // /proc/<pid>/stat field 22 (pid reuse guard)
  std::atomic<std::uint64_t> heartbeat;   // client ns timestamp, per submit
  std::atomic<std::uint64_t> ops;         // client progress counter (diagnostic)
  std::atomic<std::uint64_t> phase;       // client-defined marker (torture)
  std::uint32_t preferred_shard;
  std::atomic<std::uint32_t> doorbell;    // completion futex word
  std::atomic<std::uint64_t> cpl_enq;     // server-side ticket (Vyukov)
  std::atomic<std::uint64_t> cpl_deq;     // client cursor (inspectability)
  std::uint64_t retire_epoch;             // server-side: zombie grace marker
  // Client-stable reconnect identity: generated once at first connect
  // (top bit set so owner tags never collide with free-list links), kept
  // across failovers so the new server can match owner-tagged blocks.
  std::uint64_t nonce;
  std::atomic<std::uint64_t> reconnected;  // 1 = this admission is a reconnect
  // Highest kOkAlloc req_id this client has CONSUMED from its completion
  // ring (monotone; maintained client-side at every alloc dequeue).
  // Completions are produced and consumed strictly in req-id order, so if
  // the session dies, every alloc with req_id <= watermark reached the
  // client (its blocks are the dead app's data — a leak by design) and
  // every tagged block with req_id > watermark was never received:
  // reclaim_orphans(nonce, watermark) frees exactly those.
  std::atomic<std::uint64_t> alloc_watermark;
};
static_assert(sizeof(SessionSlot) == 128);

// ---- header ----------------------------------------------------------------

enum class SvcState : std::uint32_t {
  kStarting = 0,
  kServing = 1,
  kDraining = 2,  // submissions rejected client-side with kSvcRetry
  kDead = 3,      // server closed; clients fail over to read_only
};

const char* state_name(SvcState s) noexcept;

// Per-shard geometry a client needs to map the heap's user regions and
// convert NvPtrs without any core machinery: raw(p) =
//   shard_base + user_region_off + p.subheap() * user_size + p.offset().
struct ShardEntry {
  std::uint64_t heap_id;  // 0 = quarantined slot (no ring, no mapping)
  std::uint64_t user_region_off;
  std::uint64_t user_size;  // per sub-heap
  std::uint32_t nsubheaps;
  std::uint32_t reserved;
  std::uint64_t file_size;
};

struct SvcHeader {
  std::uint64_t magic;
  std::uint32_t version;
  std::atomic<std::uint32_t> state;  // SvcState
  std::uint64_t server_pid;
  std::uint64_t server_start_time;   // pid-reuse guard, like OwnerRecord
  std::uint64_t server_boot_id;
  // Bumped on every server start (old segment's generation + 1, read
  // before the rebuild unlinks it).  A client that reattaches after a
  // failover accepts the new segment only when the generation moved, so a
  // stale mapping can never be mistaken for a rebuilt one.
  std::uint64_t generation;
  std::atomic<std::uint64_t> heartbeat_ns;  // CLOCK_MONOTONIC, housekeeping
  std::atomic<std::uint64_t> epoch;         // global reclamation epoch
  std::uint32_t nshards;
  std::uint32_t nsessions;
  std::uint32_t sub_ring_slots;
  std::uint32_t cpl_ring_slots;
  // Segment geometry (byte offsets from the segment base).
  std::uint64_t shard_entries_off;
  std::uint64_t sub_rings_off;   // nshards rings of sub_ring_bytes each
  std::uint64_t sub_ring_bytes;
  std::uint64_t sessions_off;
  std::uint64_t cpl_rings_off;   // nsessions rings of cpl_ring_bytes each
  std::uint64_t cpl_ring_bytes;
  std::uint64_t segment_bytes;
};

// ---- geometry --------------------------------------------------------------

struct SvcGeometry {
  std::uint64_t shard_entries_off;
  std::uint64_t sub_rings_off;
  std::uint64_t sub_ring_bytes;
  std::uint64_t sessions_off;
  std::uint64_t cpl_rings_off;
  std::uint64_t cpl_ring_bytes;
  std::uint64_t segment_bytes;
};

constexpr SvcGeometry compute_svc_geometry(unsigned nshards) noexcept {
  SvcGeometry g{};
  const std::uint64_t page = core::kPageSize;
  g.shard_entries_off = align_up(sizeof(SvcHeader), std::uint64_t{128});
  g.sub_ring_bytes = sizeof(SubRingHdr) + kSubRingSlots * sizeof(ReqSlot);
  g.sub_rings_off = align_up(
      g.shard_entries_off + core::kMaxShards * sizeof(ShardEntry), page);
  g.sessions_off = align_up(g.sub_rings_off + nshards * g.sub_ring_bytes, page);
  g.cpl_ring_bytes = kCplRingSlots * sizeof(CplSlot);
  g.cpl_rings_off =
      align_up(g.sessions_off + kMaxSessions * sizeof(SessionSlot), page);
  g.segment_bytes = align_up(g.cpl_rings_off + kMaxSessions * g.cpl_ring_bytes,
                             page);
  return g;
}

// ---- views -----------------------------------------------------------------

inline SvcHeader* header_of(std::byte* base) noexcept {
  return reinterpret_cast<SvcHeader*>(base);
}
inline ShardEntry* shard_entries_of(std::byte* base) noexcept {
  return reinterpret_cast<ShardEntry*>(base +
                                       header_of(base)->shard_entries_off);
}
inline SubRingHdr* sub_ring_of(std::byte* base, unsigned shard) noexcept {
  SvcHeader* h = header_of(base);
  return reinterpret_cast<SubRingHdr*>(base + h->sub_rings_off +
                                       shard * h->sub_ring_bytes);
}
inline ReqSlot* sub_slots_of(SubRingHdr* hdr) noexcept {
  return reinterpret_cast<ReqSlot*>(hdr + 1);
}
inline SessionSlot* sessions_of(std::byte* base) noexcept {
  return reinterpret_cast<SessionSlot*>(base + header_of(base)->sessions_off);
}
inline CplSlot* cpl_ring_of(std::byte* base, unsigned session) noexcept {
  SvcHeader* h = header_of(base);
  return reinterpret_cast<CplSlot*>(base + h->cpl_rings_off +
                                    session * h->cpl_ring_bytes);
}

// Service segment path convention: beside the heap's head file.
inline std::string svc_path(const std::string& heap_path) {
  return heap_path + ".svc";
}

// Owner tag stamped into the (dead-while-allocated) free-list link word of
// every block the server hands out: session nonce high, request id low.
// The nonce's top bit is always set, so a tag can never collide with a
// real link value (offset + 1, far below 2^62) and "has the top bit" is a
// cheap is-tagged test.
inline constexpr std::uint64_t make_tag(std::uint32_t nonce32,
                                        std::uint32_t req_id) noexcept {
  return (std::uint64_t{nonce32} << 32) | req_id;
}

// Monotonic nanoseconds (CLOCK_MONOTONIC): the timebase of every svc
// heartbeat, comparable across the processes of one boot.
std::uint64_t monotonic_ns() noexcept;

}  // namespace poseidon::svc
