// Ring algorithms for the allocation service, shared by server, client,
// inspector, and tests (header-only; everything operates on the raw
// svc_layout structs inside the shm segment).
//
// Submission ring (per shard, MPSC, crash-tolerant): producers claim the
// slot for position p by CAS on the slot word free(p) -> claimed(p,session)
// and publish with a release store of ready(p,session).  The consumer
// drains strictly in position order; a position can only be skipped by a
// producer when it is already claimed, so a free(p) under the consumer's
// cursor means "nothing published at or beyond p".  When the consumer
// meets a claimed-but-unpublished slot it cannot tell a preempted producer
// from a SIGKILLed one by the word alone — the *server* resolves that with
// the session table (pid + start_time) and calls sub_discard() for dead
// claimants; the request was never published, so it never executed, so
// discarding is safe.
//
// Completion ring (per session, producers = server service threads):
// classic bounded ticket queue (Vyukov).  Server threads only die with the
// whole server, which clients detect via header heartbeat + pid liveness
// rather than per-slot state, so no crash-tolerant claim is needed here.
//
// Doorbells are 32-bit futex words (FUTEX_WAIT/WAKE without PRIVATE —
// they cross processes).  Waiters advertise themselves in a *_sleeping
// word so the fast path costs producers one relaxed load, no syscall.
#pragma once

#include <linux/futex.h>
#include <sys/syscall.h>
#include <time.h>
#include <unistd.h>

#include <atomic>
#include <cstdint>
#include <cstring>

#include "svc/svc_layout.hpp"

namespace poseidon::svc {

// ---- futex -----------------------------------------------------------------

inline long futex_wait(std::atomic<std::uint32_t>* word, std::uint32_t expect,
                       std::uint64_t timeout_ns) noexcept {
  timespec ts{static_cast<time_t>(timeout_ns / 1000000000ull),
              static_cast<long>(timeout_ns % 1000000000ull)};
  return ::syscall(SYS_futex, reinterpret_cast<std::uint32_t*>(word),
                   FUTEX_WAIT, expect, &ts, nullptr, 0);
}

inline void futex_wake(std::atomic<std::uint32_t>* word, int n) noexcept {
  (void)::syscall(SYS_futex, reinterpret_cast<std::uint32_t*>(word),
                  FUTEX_WAKE, n, nullptr, nullptr, 0);
}

// ---- submission ring -------------------------------------------------------

inline void sub_ring_init(SubRingHdr* hdr) noexcept {
  hdr->enq_hint.store(0, std::memory_order_relaxed);
  hdr->deq_pos.store(0, std::memory_order_relaxed);
  hdr->doorbell.store(0, std::memory_order_relaxed);
  hdr->consumer_sleeping.store(0, std::memory_order_relaxed);
  ReqSlot* slots = sub_slots_of(hdr);
  for (unsigned i = 0; i < kSubRingSlots; ++i) {
    slots[i].word.store(svc_word(i, 0, kTagFree), std::memory_order_relaxed);
  }
}

// Claims one slot for `session`; returns nullptr when the ring is full (or
// wedged behind an abandoned previous-generation claim the server has not
// recycled yet) — the caller backs off and retries.  On success the slot is
// claimed(pos, session): fill req_id/op/nops/payload, then sub_publish().
inline ReqSlot* sub_claim(SubRingHdr* hdr, std::uint32_t session) noexcept {
  ReqSlot* slots = sub_slots_of(hdr);
  std::uint64_t pos = hdr->enq_hint.load(std::memory_order_relaxed);
  for (unsigned attempts = 0; attempts < kSubRingSlots; ++attempts, ++pos) {
    ReqSlot* slot = &slots[pos & (kSubRingSlots - 1)];
    std::uint64_t w = slot->word.load(std::memory_order_acquire);
    if (word_pos(w) < pos) return nullptr;  // previous lap not consumed: full
    if (w != svc_word(pos, 0, kTagFree)) continue;  // this position is taken
    if (slot->word.compare_exchange_strong(
            w, svc_word(pos, session, kTagClaimed), std::memory_order_acq_rel,
            std::memory_order_acquire)) {
      // Advance the hint monotonically; losing this race is harmless.
      std::uint64_t hint = hdr->enq_hint.load(std::memory_order_relaxed);
      while (hint < pos + 1 &&
             !hdr->enq_hint.compare_exchange_weak(hint, pos + 1,
                                                  std::memory_order_relaxed)) {
      }
      return slot;
    }
    // CAS lost: someone else owns this position now; probe the next one.
  }
  return nullptr;
}

inline std::uint64_t slot_pos(const SubRingHdr* hdr,
                              const ReqSlot* slot) noexcept {
  return word_pos(slot->word.load(std::memory_order_relaxed));
}

// Publishes a previously claimed slot and rings the consumer doorbell.
inline void sub_publish(SubRingHdr* hdr, ReqSlot* slot,
                        std::uint32_t session) noexcept {
  const std::uint64_t pos = slot_pos(hdr, slot);
  slot->word.store(svc_word(pos, session, kTagReady),
                   std::memory_order_release);
  hdr->doorbell.fetch_add(1, std::memory_order_release);
  if (hdr->consumer_sleeping.load(std::memory_order_acquire) != 0) {
    futex_wake(&hdr->doorbell, 1);
  }
}

enum class SubPoll {
  kEmpty,      // nothing published at the cursor
  kGot,        // request copied out; slot recycled; cursor advanced
  kClaimWait,  // cursor blocked on a claimed-but-unpublished slot
};

struct SubReq {
  std::uint32_t session;
  std::uint32_t req_id;
  SvcOp op;
  std::uint16_t nops;
  std::uint64_t payload[2 * kMaxOpsPerReq];
};

// Single-consumer poll at deq_pos.  kClaimWait reports the claiming
// session; the server spins briefly, and if the claimant is dead calls
// sub_discard() to recycle the wedge.
inline SubPoll sub_poll(SubRingHdr* hdr, SubReq* out,
                        std::uint32_t* claimant) noexcept {
  const std::uint64_t pos = hdr->deq_pos.load(std::memory_order_relaxed);
  ReqSlot* slot = &sub_slots_of(hdr)[pos & (kSubRingSlots - 1)];
  const std::uint64_t w = slot->word.load(std::memory_order_acquire);
  if (word_pos(w) != pos) return SubPoll::kEmpty;  // free for an earlier lap
  switch (word_tag(w)) {
    case kTagReady: {
      out->session = word_session(w);
      out->req_id = slot->req_id;
      out->op = static_cast<SvcOp>(slot->op);
      out->nops = slot->nops;
      std::memcpy(out->payload, slot->payload, sizeof(out->payload));
      slot->word.store(svc_word(pos + kSubRingSlots, 0, kTagFree),
                       std::memory_order_release);
      hdr->deq_pos.store(pos + 1, std::memory_order_release);
      return SubPoll::kGot;
    }
    case kTagClaimed:
      *claimant = word_session(w);
      return SubPoll::kClaimWait;
    default:
      return SubPoll::kEmpty;
  }
}

// Session id of the next published-but-unconsumed request, or -1 when the
// cursor slot is not ready.  Lets the consumer coalesce completion wakeups:
// while the next request is from the same session, that session's client is
// guaranteed another completion momentarily, so the doorbell can wait.
inline int sub_peek_next_session(SubRingHdr* hdr) noexcept {
  const std::uint64_t pos = hdr->deq_pos.load(std::memory_order_relaxed);
  const ReqSlot* slot = &sub_slots_of(hdr)[pos & (kSubRingSlots - 1)];
  const std::uint64_t w = slot->word.load(std::memory_order_acquire);
  if (word_pos(w) != pos || word_tag(w) != kTagReady) return -1;
  return static_cast<int>(word_session(w));
}

// Recycles the claimed slot at the cursor without executing it; only legal
// once the server proved the claiming session's process is dead (it can
// never publish again) or during drain teardown.
inline void sub_discard(SubRingHdr* hdr) noexcept {
  const std::uint64_t pos = hdr->deq_pos.load(std::memory_order_relaxed);
  ReqSlot* slot = &sub_slots_of(hdr)[pos & (kSubRingSlots - 1)];
  slot->word.store(svc_word(pos + kSubRingSlots, 0, kTagFree),
                   std::memory_order_release);
  hdr->deq_pos.store(pos + 1, std::memory_order_release);
}

// Published-but-unconsumed depth (approximate: concurrent claims in
// flight are not counted).  Used by metrics and heap_inspect.
inline std::uint64_t sub_depth(const SubRingHdr* hdr) noexcept {
  const std::uint64_t enq = hdr->enq_hint.load(std::memory_order_relaxed);
  const std::uint64_t deq = hdr->deq_pos.load(std::memory_order_relaxed);
  return enq > deq ? enq - deq : 0;
}

// ---- completion ring -------------------------------------------------------

inline void cpl_ring_init(SessionSlot* sess, CplSlot* ring) noexcept {
  sess->cpl_enq.store(0, std::memory_order_relaxed);
  sess->cpl_deq.store(0, std::memory_order_relaxed);
  for (unsigned i = 0; i < kCplRingSlots; ++i) {
    ring[i].seq.store(i, std::memory_order_relaxed);
  }
}

struct CplMsg {
  std::uint32_t req_id;
  SvcStatus status;
  std::uint16_t nops;
  std::uint64_t results[2 * kMaxOpsPerReq];
};

// Multi-producer enqueue (server threads); false when the ring is full —
// the server then owns cleanup of the message's handles (the client never
// saw them).  Rings the session doorbell on success; pass wake=false to
// defer the futex wake when another completion for the same session is
// imminent (the doorbell word still advances, so a client mid-handshake
// never sleeps through it).
inline bool cpl_enqueue(SessionSlot* sess, CplSlot* ring,
                        const CplMsg& msg, bool wake = true) noexcept {
  std::uint64_t pos = sess->cpl_enq.load(std::memory_order_relaxed);
  for (;;) {
    CplSlot* slot = &ring[pos & (kCplRingSlots - 1)];
    const std::uint64_t seq = slot->seq.load(std::memory_order_acquire);
    const auto dif = static_cast<std::int64_t>(seq) -
                     static_cast<std::int64_t>(pos);
    if (dif == 0) {
      if (sess->cpl_enq.compare_exchange_weak(pos, pos + 1,
                                              std::memory_order_relaxed)) {
        slot->req_id = msg.req_id;
        slot->status = static_cast<std::uint16_t>(msg.status);
        slot->nops = msg.nops;
        std::memcpy(slot->results, msg.results, sizeof(slot->results));
        slot->seq.store(pos + 1, std::memory_order_release);
        sess->doorbell.fetch_add(1, std::memory_order_release);
        if (wake) futex_wake(&sess->doorbell, 1);
        return true;
      }
    } else if (dif < 0) {
      return false;  // full
    } else {
      pos = sess->cpl_enq.load(std::memory_order_relaxed);
    }
  }
}

// Single-consumer dequeue (the owning client, or the server reclaiming a
// dead session's unread completions).
inline bool cpl_dequeue(SessionSlot* sess, CplSlot* ring,
                        CplMsg* out) noexcept {
  const std::uint64_t pos = sess->cpl_deq.load(std::memory_order_relaxed);
  CplSlot* slot = &ring[pos & (kCplRingSlots - 1)];
  const std::uint64_t seq = slot->seq.load(std::memory_order_acquire);
  if (static_cast<std::int64_t>(seq) - static_cast<std::int64_t>(pos + 1) < 0) {
    return false;  // empty
  }
  out->req_id = slot->req_id;
  out->status = static_cast<SvcStatus>(slot->status);
  out->nops = slot->nops;
  std::memcpy(out->results, slot->results, sizeof(out->results));
  slot->seq.store(pos + kCplRingSlots, std::memory_order_release);
  sess->cpl_deq.store(pos + 1, std::memory_order_release);
  return true;
}

inline std::uint64_t cpl_depth(const SessionSlot* sess) noexcept {
  const std::uint64_t enq = sess->cpl_enq.load(std::memory_order_relaxed);
  const std::uint64_t deq = sess->cpl_deq.load(std::memory_order_relaxed);
  return enq > deq ? enq - deq : 0;
}

}  // namespace poseidon::svc
