#include "svc/server.hpp"

#include <time.h>
#include <unistd.h>

#include <algorithm>
#include <cstring>

#include "common/error.hpp"
#include "core/ownership.hpp"
#include "obs/metrics.hpp"
#include "svc/ring.hpp"

namespace poseidon::svc {

std::uint64_t monotonic_ns() noexcept {
  timespec ts{};
  (void)::clock_gettime(CLOCK_MONOTONIC, &ts);
  return static_cast<std::uint64_t>(ts.tv_sec) * 1000000000ull +
         static_cast<std::uint64_t>(ts.tv_nsec);
}

const char* state_name(SvcState s) noexcept {
  switch (s) {
    case SvcState::kStarting: return "starting";
    case SvcState::kServing: return "serving";
    case SvcState::kDraining: return "draining";
    case SvcState::kDead: return "dead";
  }
  return "?";
}

std::unique_ptr<SvcServer> SvcServer::start(const std::string& heap_path,
                                            const ServerOptions& opts) {
  ServerOptions o = opts;
  // The service threads are the only allocator threads in this process;
  // their magazines are the batching layer the rings were built for.
  o.heap_opts.thread_cache = true;
  o.heap_opts.read_only = false;

  std::unique_ptr<core::Heap> heap =
      o.create_capacity != 0
          ? core::Heap::open_or_create(heap_path, o.create_capacity,
                                       o.heap_opts)
          : core::Heap::open(heap_path, o.heap_opts);

  // Holding the heap's OFD locks proves any prior server is gone, so its
  // stale segment (fresh or crashed) can be swept unconditionally.
  const std::string seg_path = svc_path(heap_path);
  std::uint64_t generation = 1;
  bool failover = false;
  if (pmem::ShmSegment::exists(seg_path)) {
    try {
      pmem::ShmSegment old =
          pmem::ShmSegment::attach(seg_path, /*read_only=*/false);
      std::byte* ob = old.data();
      SvcHeader* oh = header_of(ob);
      if (old.size() >= sizeof(SvcHeader) && oh->magic == kSvcMagic &&
          oh->version == kSvcVersion && oh->segment_bytes <= old.size()) {
        generation = oh->generation + 1;
        // A predecessor that never reached kDead crashed in office.
        failover = static_cast<SvcState>(oh->state.load(
                       std::memory_order_acquire)) != SvcState::kDead;
        // Free the never-dequeued alloc results of sessions whose owners
        // are gone too — nobody is left to learn those handles.  Sessions
        // whose client is still alive keep their rings: that client drains
        // them itself when it reconnects to the new generation.
        SessionSlot* osess = sessions_of(ob);
        for (unsigned i = 0; i < oh->nsessions && i < kMaxSessions; ++i) {
          SessionSlot& s = osess[i];
          const std::uint32_t st = s.state.load(std::memory_order_acquire);
          if (st == kSessFree) continue;
          const auto pid = static_cast<pid_t>(s.pid);
          const bool live = st != kSessClosed && pid != 0 &&
                            core::process_alive(pid) &&
                            core::proc_start_time(pid) == s.start_time;
          if (live) continue;
          const auto nonce32 = static_cast<std::uint32_t>(s.nonce);
          CplMsg msg;
          while (cpl_dequeue(&s, cpl_ring_of(ob, i), &msg)) {
            if (msg.status != SvcStatus::kOkAlloc) continue;
            for (unsigned k = 0; k + 1 < 2u * msg.nops; k += 2) {
              const core::NvPtr p{msg.results[k], msg.results[k + 1]};
              if (p.is_null()) continue;
              // free_if_owner, not free: a cached free would leave the
              // stale-tagged media record for the sweep below to re-free.
              if (nonce32 != 0) {
                (void)heap->free_if_owner(p, nonce32);
              } else {
                (void)heap->free(p);
              }
            }
          }
          // Client AND server died together: allocs the dead server
          // committed but never got into this ring are invisible to the
          // drain above.  They still carry the session's owner tags with
          // req ids past the consumed watermark — sweep them out (the
          // drain's frees cleared those records, so no double free).
          const std::uint64_t wm =
              s.alloc_watermark.load(std::memory_order_acquire);
          if (nonce32 != 0) {
            const std::uint64_t pair[2] = {nonce32, wm};
            const unsigned freed = heap->reclaim_orphans(pair, 1);
            if (freed != 0) {
              heap->note_flight(obs::FlightOp::kOrphanReclaim, freed);
            }
          }
          // Same marker reclaim_session leaves on the live segment, so a
          // post-mortem can tell "swept at startup" from "never swept".
          heap->note_flight(obs::FlightOp::kSvcReclaim, i);
        }
        // Retire the old incarnation in place: stale client mappings read
        // kDead instantly instead of waiting out the heartbeat, and every
        // woken sleeper re-reads the state word.
        oh->state.store(static_cast<std::uint32_t>(SvcState::kDead),
                        std::memory_order_release);
        for (unsigned i = 0; i < oh->nshards && i < core::kMaxShards; ++i) {
          SubRingHdr* r = sub_ring_of(ob, i);
          r->doorbell.fetch_add(1, std::memory_order_release);
          futex_wake(&r->doorbell, 64);
        }
        for (unsigned i = 0; i < oh->nsessions && i < kMaxSessions; ++i) {
          osess[i].doorbell.fetch_add(1, std::memory_order_release);
          futex_wake(&osess[i].doorbell, 64);
        }
      }
    } catch (...) {
      // Unreadable stale segment: rebuild from scratch at generation 1.
    }
  }
  pmem::ShmSegment::unlink(seg_path);
  const SvcGeometry geo = compute_svc_geometry(heap->shard_count());
  pmem::ShmSegment seg = pmem::ShmSegment::create(seg_path, geo.segment_bytes);

  return std::unique_ptr<SvcServer>(new SvcServer(
      std::move(heap), std::move(seg), std::move(o), generation, failover));
}

SvcServer::SvcServer(std::unique_ptr<core::Heap> heap, pmem::ShmSegment seg,
                     ServerOptions opts, std::uint64_t generation,
                     bool failover)
    : heap_(std::move(heap)),
      seg_(std::move(seg)),
      opts_(std::move(opts)),
      generation_(generation) {
  nshards_ = heap_->shard_count();
  std::byte* base = seg_.data();

  SvcHeader* h = header_of(base);
  const SvcGeometry geo = compute_svc_geometry(nshards_);
  h->magic = kSvcMagic;
  h->version = kSvcVersion;
  h->state.store(static_cast<std::uint32_t>(SvcState::kStarting),
                 std::memory_order_relaxed);
  h->server_pid = static_cast<std::uint64_t>(::getpid());
  h->server_start_time = core::proc_start_time(::getpid());
  h->server_boot_id = core::boot_id_hash();
  h->generation = generation_;
  // Release like every other publishing stamp: a client that acquires the
  // heartbeat must see the identity fields written above.
  h->heartbeat_ns.store(monotonic_ns(), std::memory_order_release);
  h->epoch.store(1, std::memory_order_relaxed);
  h->nshards = nshards_;
  h->nsessions = kMaxSessions;
  h->sub_ring_slots = kSubRingSlots;
  h->cpl_ring_slots = kCplRingSlots;
  h->shard_entries_off = geo.shard_entries_off;
  h->sub_rings_off = geo.sub_rings_off;
  h->sub_ring_bytes = geo.sub_ring_bytes;
  h->sessions_off = geo.sessions_off;
  h->cpl_rings_off = geo.cpl_rings_off;
  h->cpl_ring_bytes = geo.cpl_ring_bytes;
  h->segment_bytes = geo.segment_bytes;

  ShardEntry* entries = shard_entries_of(base);
  for (unsigned i = 0; i < nshards_; ++i) {
    ShardEntry& e = entries[i];
    const core::PoolShard* s = heap_->shard(i);
    if (s == nullptr) {  // quarantined member: no ring traffic routes here
      e = ShardEntry{};
      continue;
    }
    const auto [ulo, ulen] = s->user_range();
    e.heap_id = s->heap_id();
    e.user_region_off = static_cast<std::uint64_t>(
        static_cast<const std::byte*>(ulo) -
        static_cast<const std::byte*>(
            const_cast<core::PoolShard*>(s)->metadata_region().first));
    e.nsubheaps = s->nsubheaps();
    e.user_size = ulen / e.nsubheaps;
    e.reserved = 0;
    // The minimal mapping a client data window needs.
    e.file_size = e.user_region_off + ulen;
  }

  for (unsigned i = 0; i < nshards_; ++i) sub_ring_init(sub_ring_of(base, i));
  SessionSlot* sess = sessions_of(base);
  for (unsigned i = 0; i < kMaxSessions; ++i) {
    std::memset(static_cast<void*>(&sess[i]), 0, sizeof(SessionSlot));
    cpl_ring_init(&sess[i], cpl_ring_of(base, i));
  }

  epochs_.reserve(nshards_);
  for (unsigned i = 0; i < nshards_; ++i) {
    epochs_.push_back(std::make_unique<ThreadEpoch>());
  }
  book_.resize(kMaxSessions);
  for (auto& b : book_) b.enq_snap.assign(nshards_, 0);

  threads_.reserve(nshards_);
  for (unsigned i = 0; i < nshards_; ++i) {
    threads_.emplace_back([this, i] { service_loop(i); });
  }
  housekeeper_ = std::thread([this] { housekeep_loop(); });

  h->state.store(static_cast<std::uint32_t>(SvcState::kServing),
                 std::memory_order_release);
  heap_->note_flight(obs::FlightOp::kSvcState,
                     static_cast<std::uint64_t>(SvcState::kServing));
  if (failover) {
    heap_->metrics_mut().svc_failovers.inc();
    heap_->note_flight(obs::FlightOp::kSvcFailover, generation_ - 1);
  }
}

SvcServer::~SvcServer() {
  try {
    stop();
  } catch (...) {
  }
}

SvcState SvcServer::state() const noexcept {
  return static_cast<SvcState>(
      header_of(const_cast<SvcServer*>(this)->seg_.data())
          ->state.load(std::memory_order_acquire));
}

void SvcServer::drain() noexcept {
  SvcHeader* h = header_of(seg_.data());
  std::uint32_t cur = h->state.load(std::memory_order_acquire);
  if (cur == static_cast<std::uint32_t>(SvcState::kServing)) {
    h->state.store(static_cast<std::uint32_t>(SvcState::kDraining),
                   std::memory_order_release);
    heap_->note_flight(obs::FlightOp::kSvcState,
                       static_cast<std::uint64_t>(SvcState::kDraining));
  }
}

void SvcServer::stop() {
  if (stop_.exchange(true, std::memory_order_acq_rel)) return;
  drain();
  // Wake every sleeper so the loops observe stop_ promptly.
  std::byte* base = seg_.data();
  for (unsigned i = 0; i < nshards_; ++i) {
    SubRingHdr* r = sub_ring_of(base, i);
    r->doorbell.fetch_add(1, std::memory_order_release);
    futex_wake(&r->doorbell, 1);
  }
  for (std::thread& t : threads_) {
    if (t.joinable()) t.join();
  }
  if (housekeeper_.joinable()) housekeeper_.join();
  SvcHeader* h = header_of(base);
  h->heartbeat_ns.store(monotonic_ns(), std::memory_order_release);
  h->state.store(static_cast<std::uint32_t>(SvcState::kDead),
                 std::memory_order_release);
  heap_->note_flight(obs::FlightOp::kSvcState,
                     static_cast<std::uint64_t>(SvcState::kDead));
  // Wake any client blocked on a completion that will never come; they
  // read the state word and fail over.
  SessionSlot* sess = sessions_of(base);
  for (unsigned i = 0; i < kMaxSessions; ++i) {
    sess[i].doorbell.fetch_add(1, std::memory_order_release);
    futex_wake(&sess[i].doorbell, 1);
  }
}

// ---- service threads -------------------------------------------------------

void SvcServer::service_loop(unsigned shard) {
  std::byte* base = seg_.data();
  SvcHeader* h = header_of(base);
  SubRingHdr* ring = sub_ring_of(base, shard);
  obs::Metrics& m = heap_->metrics_mut();
  // On a single-CPU box an idle-spinning service thread competes with the
  // very client that is about to submit; sleep almost immediately there
  // (the doorbell handshake below makes the early sleep lossless).
  const unsigned idle_spins =
      std::thread::hardware_concurrency() > 1 ? opts_.idle_spins : 16;
  unsigned idle = 0;
  unsigned claim_spins = 0;

  while (true) {
    epochs_[shard]->v.store(h->epoch.load(std::memory_order_acquire),
                            std::memory_order_release);
    SubReq req;
    std::uint32_t claimant = 0;
    switch (sub_poll(ring, &req, &claimant)) {
      case SubPoll::kGot: {
        idle = 0;
        claim_spins = 0;
        m.svc_ring_depth.record(sub_depth(ring));
        const std::uint64_t t0 = obs::rdtsc();
        execute(shard, req);
        m.svc_req_cycles.record(obs::rdtsc() - t0);
        m.svc_requests.inc();
        m.svc_ops.inc(req.nops);
        requests_served_.fetch_add(1, std::memory_order_relaxed);
        continue;
      }
      case SubPoll::kClaimWait: {
        // A claimed-but-unpublished slot: the claimant is either a few
        // stores from publishing or dead.  Spin briefly, then consult the
        // session table.
        if (++claim_spins < 256) {
          cpu_relax();
          continue;
        }
        claim_spins = 0;
        SessionSlot& s = sessions_of(base)[claimant];
        const auto pid = static_cast<pid_t>(s.pid);
        const bool live = s.state.load(std::memory_order_acquire) != 0 &&
                          pid != 0 && core::process_alive(pid) &&
                          core::proc_start_time(pid) == s.start_time;
        if (!live) {
          // A SIGKILLed claimant can never publish; recycling the wedge
          // is safe because the request was never visible, hence never
          // executed.
          sub_discard(ring);
          m.svc_claims_discarded.inc();
        } else {
          std::this_thread::yield();
        }
        continue;
      }
      case SubPoll::kEmpty:
        break;
    }
    if (stop_.load(std::memory_order_acquire)) {
      // Rings stay empty once the state is kDraining/kDead (clients stop
      // submitting), so an empty poll here is the drained condition.
      break;
    }
    if (++idle < idle_spins) {
      cpu_relax();
      continue;
    }
    // Sleep: publish quiescence first so an idle shard never delays a
    // zombie grace period, and re-check the ring after raising the
    // sleeper flag (the standard lost-wakeup handshake).
    epochs_[shard]->v.store(UINT64_MAX, std::memory_order_release);
    ring->consumer_sleeping.store(1, std::memory_order_release);
    const std::uint32_t bell = ring->doorbell.load(std::memory_order_acquire);
    if (sub_depth(ring) == 0 && !stop_.load(std::memory_order_acquire)) {
      futex_wait(&ring->doorbell, bell, 10'000'000);  // 10 ms heartbeat tick
      m.svc_wakeups.inc();
    }
    ring->consumer_sleeping.store(0, std::memory_order_release);
    idle = 0;
  }
  epochs_[shard]->v.store(UINT64_MAX, std::memory_order_release);
}

void SvcServer::execute(unsigned shard, const SubReq& req) {
  std::byte* base = seg_.data();
  obs::Metrics& m = heap_->metrics_mut();
  SessionSlot& sess = sessions_of(base)[req.session];

  // A request from a session that is no longer active is from a reclaimed
  // (or mid-reclaim) client: executing it could hand results to the slot's
  // next occupant, so it is dropped whole.
  if (sess.state.load(std::memory_order_acquire) != kSessActive) return;

  CplMsg cpl{};
  cpl.req_id = req.req_id;
  cpl.status = SvcStatus::kOk;
  cpl.nops = req.nops;

  const unsigned n = std::min<unsigned>(req.nops, kMaxOpsPerReq);
  core::NvPtr ptrs[kMaxOpsPerReq];
  bool results_are_allocs = false;

  switch (req.op) {
    case SvcOp::kAlloc:
    case SvcOp::kTxAlloc: {
      if (n == 0 || n != req.nops) {
        cpl.status = SvcStatus::kBadRequest;
        cpl.nops = 0;
        break;
      }
      // Every alloc for a nonce-carrying session runs as a tagged
      // transaction: a server SIGKILL before the commit rolls the blocks
      // back at the next heap open; after it, they sit committed and
      // tagged for the client's reconcile sweep.  Cache-served pops would
      // leak on either side of a lost completion.
      const auto nonce32 = static_cast<std::uint32_t>(sess.nonce);
      if (nonce32 != 0) {
        heap_->tx_alloc_batch_tagged(req.payload, n, ptrs,
                                     make_tag(nonce32, req.req_id));
      } else if (req.op == SvcOp::kAlloc) {
        heap_->alloc_batch(req.payload, n, ptrs);
      } else {
        heap_->tx_alloc_batch(req.payload, n, ptrs);
      }
      for (unsigned i = 0; i < n; ++i) {
        cpl.results[2 * i] = ptrs[i].heap_id;
        cpl.results[2 * i + 1] = ptrs[i].packed;
      }
      cpl.status = SvcStatus::kOkAlloc;
      results_are_allocs = true;
      break;
    }
    case SvcOp::kFree: {
      if (n == 0 || n != req.nops) {
        cpl.status = SvcStatus::kBadRequest;
        cpl.nops = 0;
        break;
      }
      core::FreeResult res[kMaxOpsPerReq];
      for (unsigned i = 0; i < n; ++i) {
        ptrs[i] = core::NvPtr{req.payload[2 * i], req.payload[2 * i + 1]};
      }
      heap_->free_batch(ptrs, n, res);
      for (unsigned i = 0; i < n; ++i) {
        cpl.results[i] = static_cast<std::uint64_t>(res[i]);
      }
      break;
    }
    case SvcOp::kGetRoot: {
      const core::NvPtr r = heap_->root();
      cpl.results[0] = r.heap_id;
      cpl.results[1] = r.packed;
      cpl.nops = 1;
      break;
    }
    case SvcOp::kSetRoot:
      heap_->set_root(core::NvPtr{req.payload[0], req.payload[1]});
      cpl.nops = 0;
      break;
    case SvcOp::kPing:
      std::memcpy(cpl.results, req.payload, sizeof(cpl.results));
      break;
    case SvcOp::kFreeIfOwner: {
      // Replay of a lost-completion free: only blocks still stamped with
      // this session's nonce are freed, so a block the dead server already
      // freed (and a successor re-issued) is skipped, never double-freed.
      if (n == 0 || n != req.nops) {
        cpl.status = SvcStatus::kBadRequest;
        cpl.nops = 0;
        break;
      }
      const auto nonce32 = static_cast<std::uint32_t>(sess.nonce);
      unsigned replayed = 0;
      for (unsigned i = 0; i < n; ++i) {
        const core::NvPtr p{req.payload[2 * i], req.payload[2 * i + 1]};
        const bool freed =
            nonce32 != 0 &&
            heap_->free_if_owner(p, nonce32) == core::FreeResult::kOk;
        cpl.results[i] = freed ? 1 : 0;
        replayed += freed ? 1u : 0u;
      }
      if (replayed != 0) {
        m.svc_reconcile_replayed.inc(replayed);
        heap_->note_flight(obs::FlightOp::kSvcReconcile, replayed);
      }
      break;
    }
    case SvcOp::kReclaimOrphans: {
      // Sweep for blocks tagged by this session's lost alloc requests.
      // Only tags carrying the session's own nonce are honored.
      if (n == 0 || n != req.nops) {
        cpl.status = SvcStatus::kBadRequest;
        cpl.nops = 0;
        break;
      }
      const auto nonce32 = static_cast<std::uint32_t>(sess.nonce);
      std::uint64_t tags[kMaxOpsPerReq];
      unsigned ntags = 0;
      for (unsigned i = 0; i < n; ++i) {
        if (nonce32 != 0 &&
            static_cast<std::uint32_t>(req.payload[i] >> 32) == nonce32) {
          tags[ntags++] = req.payload[i];
        }
      }
      const unsigned freed =
          ntags != 0 ? heap_->reclaim_tagged(tags, ntags) : 0;
      cpl.results[0] = freed;
      cpl.nops = 1;
      if (freed != 0) {
        m.svc_reconcile_dropped.inc(freed);
        heap_->note_flight(obs::FlightOp::kSvcReconcile, freed);
      }
      break;
    }
    case SvcOp::kSnapshot: {
      // Control op: nops is the incremental flag (0 full / 1 incremental),
      // the payload a NUL-terminated destination directory.  The heap's
      // own snapshot mutex serializes concurrent requests; the quiesce
      // briefly stalls the other service threads at their sub-heap locks,
      // exactly like any client thread.
      const char* path = reinterpret_cast<const char*>(req.payload);
      const std::size_t len = ::strnlen(path, sizeof(req.payload));
      if (req.nops > 1 || len == 0 || len >= sizeof(req.payload)) {
        cpl.status = SvcStatus::kBadRequest;
        cpl.nops = 0;
        break;
      }
      const std::string dst(path, len);
      try {
        const core::SnapshotReport r =
            req.nops == 1
                ? heap_->snapshot_incremental(dst, dst + "/MANIFEST")
                : heap_->snapshot(dst);
        cpl.results[0] = r.pages_copied;
        cpl.nops = 1;
      } catch (const Error&) {
        // Unwritable path, unprovable incremental baseline, ...: the
        // client sees a typed refusal, the heap is already resumed.
        cpl.status = SvcStatus::kBadRequest;
        cpl.nops = 0;
      }
      break;
    }
    default:
      cpl.status = SvcStatus::kBadRequest;
      cpl.nops = 0;
      break;
  }

  // Wake coalescing: while the next published request is from the same
  // session (a pipelined refill or free wave), that client gets another
  // completion within this loop iteration — deliver the whole wave with
  // one futex wake instead of one per batch.
  const bool wake =
      sub_peek_next_session(sub_ring_of(base, shard)) !=
      static_cast<int>(req.session);
  if (!cpl_enqueue(&sess, cpl_ring_of(base, req.session), cpl, wake)) {
    // Completion ring full: the client can never learn these handles, so
    // returning them to the heap right now is leak-free and safe.
    if (results_are_allocs) {
      for (unsigned i = 0; i < n; ++i) {
        if (!ptrs[i].is_null()) (void)heap_->free(ptrs[i]);
      }
    }
    m.svc_cpl_overflows.inc();
  }
}

// ---- housekeeping ----------------------------------------------------------

std::uint64_t SvcServer::min_thread_epoch() const noexcept {
  std::uint64_t e = UINT64_MAX;
  for (const auto& t : epochs_) {
    e = std::min(e, t->v.load(std::memory_order_acquire));
  }
  return e;
}

void SvcServer::mark_zombie(unsigned sess_idx, std::uint32_t state_now) {
  std::byte* base = seg_.data();
  SessionSlot& s = sessions_of(base)[sess_idx];
  s.retire_epoch = header_of(base)->epoch.load(std::memory_order_acquire);
  for (unsigned i = 0; i < nshards_; ++i) {
    book_[sess_idx].enq_snap[i] =
        sub_ring_of(base, i)->enq_hint.load(std::memory_order_acquire);
  }
  (void)state_now;
  s.state.store(kSessZombie, std::memory_order_release);
}

bool SvcServer::grace_elapsed(unsigned sess_idx) const noexcept {
  std::byte* base = const_cast<SvcServer*>(this)->seg_.data();
  const SessionSlot& s = sessions_of(base)[sess_idx];
  // Every service thread must have passed the retire epoch (no request
  // that predates the zombie marking can still be mid-execution)...
  if (min_thread_epoch() <= s.retire_epoch) return false;
  // ...and every ring's dequeue cursor must have passed its snapshot (no
  // request the dead client published remains unconsumed).
  for (unsigned i = 0; i < nshards_; ++i) {
    const SubRingHdr* r = sub_ring_of(base, i);
    if (r->deq_pos.load(std::memory_order_acquire) <
        book_[sess_idx].enq_snap[i]) {
      return false;
    }
  }
  return true;
}

void SvcServer::reclaim_session(unsigned sess_idx) {
  std::byte* base = seg_.data();
  SessionSlot& s = sessions_of(base)[sess_idx];
  // Alloc results the client never dequeued go back to the heap; consumed
  // handles stay out (the client's persistent structures may hold them).
  // Tagged blocks go through free_if_owner: a plain free would park the
  // block in this thread's magazine while the media record keeps its stale
  // owner tag (the cache log defers the update), and the orphan sweep
  // below would then free the same record underneath the magazine.
  const auto nonce32 = static_cast<std::uint32_t>(s.nonce);
  CplMsg msg;
  while (cpl_dequeue(&s, cpl_ring_of(base, sess_idx), &msg)) {
    if (msg.status != SvcStatus::kOkAlloc) continue;
    for (unsigned i = 0; i + 1 < 2u * msg.nops; i += 2) {
      const core::NvPtr p{msg.results[i], msg.results[i + 1]};
      if (p.is_null()) continue;
      if (nonce32 != 0) {
        (void)heap_->free_if_owner(p, nonce32);
      } else {
        (void)heap_->free(p);
      }
    }
  }
  // Belt and braces past the ring drain: any still-tagged block of this
  // session with a req id past the consumed watermark was provably never
  // delivered (a predecessor's lost completion that survived failover).
  {
    if (nonce32 != 0) {
      const std::uint64_t pair[2] = {
          nonce32, s.alloc_watermark.load(std::memory_order_acquire)};
      const unsigned freed = heap_->reclaim_orphans(pair, 1);
      if (freed != 0) {
        heap_->note_flight(obs::FlightOp::kOrphanReclaim, freed);
      }
    }
  }
  cpl_ring_init(&s, cpl_ring_of(base, sess_idx));
  s.pid = 0;
  s.start_time = 0;
  s.gen += 1;
  s.retire_epoch = 0;
  s.nonce = 0;
  s.reconnected.store(0, std::memory_order_relaxed);
  s.alloc_watermark.store(0, std::memory_order_relaxed);
  s.state.store(kSessFree, std::memory_order_release);
  heap_->metrics_mut().svc_sessions_reclaimed.inc();
  sessions_reclaimed_.fetch_add(1, std::memory_order_relaxed);
  heap_->note_flight(obs::FlightOp::kSvcReclaim, sess_idx);
}

void SvcServer::housekeep_loop() {
  std::byte* base = seg_.data();
  SvcHeader* h = header_of(base);
  obs::Metrics& m = heap_->metrics_mut();
  std::uint64_t last_owner_beat = 0;

  while (!stop_.load(std::memory_order_acquire)) {
    const std::uint64_t now = monotonic_ns();
    h->heartbeat_ns.store(now, std::memory_order_release);
    h->epoch.fetch_add(1, std::memory_order_acq_rel);
    // The persistent owner record's trail, reused from PR 5; once a
    // second is plenty for inspectors.
    if (now - last_owner_beat > 1'000'000'000ull) {
      heap_->refresh_owner_heartbeat();
      last_owner_beat = now;
    }

    SessionSlot* sess = sessions_of(base);
    for (unsigned i = 0; i < kMaxSessions; ++i) {
      SessionSlot& s = sess[i];
      const std::uint32_t st = s.state.load(std::memory_order_acquire);
      switch (st) {
        case kSessActive: {
          if (book_[i].seen_gen != s.gen) {
            book_[i].seen_gen = s.gen;
            m.svc_sessions_opened.inc();
            if (s.reconnected.load(std::memory_order_acquire) != 0) {
              m.svc_reconnects.inc();
            }
            heap_->note_flight(obs::FlightOp::kSvcSession, i);
          }
          const auto pid = static_cast<pid_t>(s.pid);
          if (!core::process_alive(pid) ||
              core::proc_start_time(pid) != s.start_time) {
            mark_zombie(i, st);
          }
          break;
        }
        case kSessClosed:
          // Clean disconnect: same grace machinery, for uniformity (a
          // request of theirs may still be in flight).
          mark_zombie(i, st);
          break;
        case kSessClaiming: {
          // Admission crash: never active, never submitted.  Reclaim once
          // the claim heartbeat goes stale or the pid is provably dead.
          const std::uint64_t hb = s.heartbeat.load(std::memory_order_acquire);
          const auto pid = static_cast<pid_t>(s.pid);
          const bool pid_dead =
              pid != 0 && (!core::process_alive(pid) ||
                           core::proc_start_time(pid) != s.start_time);
          if (pid_dead || now - hb > opts_.claim_stale_ns) {
            reclaim_session(i);
          }
          break;
        }
        case kSessZombie:
          if (grace_elapsed(i)) reclaim_session(i);
          break;
        default:
          break;
      }
    }

    std::this_thread::sleep_for(
        std::chrono::milliseconds(opts_.housekeep_ms));
  }
}

}  // namespace poseidon::svc
