#include "svc/client.hpp"

#include <fcntl.h>
#include <sys/mman.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <chrono>
#include <cstring>
#include <thread>

#include "common/bitops.hpp"
#include "common/compiler.hpp"
#include "core/ownership.hpp"
#include "svc/ring.hpp"

namespace poseidon::svc {

namespace {

// Shard member path convention, mirrored from the front-end (heap.cpp).
std::string member_path(const std::string& head, unsigned i) {
  return i == 0 ? head : head + ".shard" + std::to_string(i);
}

unsigned size_class_of(std::uint64_t size) noexcept {
  return size <= 32 ? 5u : static_cast<unsigned>(log2_floor(size - 1)) + 1u;
}

// Session nonce: unique enough that no two sessions alive in one heap's
// lifetime collide (pid, boot-relative times and a process-local counter
// mixed through splitmix64).  The top bit is forced on so a tag's high
// word can never equal zero and never equal a free-list link's
// offset-plus-one encoding.
// Failovers one public operation will ride out before giving up: each
// retry already burns a full reconnect budget, so this bounds pathological
// crash loops, not ordinary ones.
constexpr unsigned kFailoverRetries = 8;

std::uint32_t make_nonce() noexcept {
  static std::atomic<std::uint64_t> seq{0};
  std::uint64_t x = static_cast<std::uint64_t>(::getpid());
  x ^= core::proc_start_time(::getpid()) << 17;
  x ^= monotonic_ns();
  x += seq.fetch_add(1, std::memory_order_relaxed) * 0x9e3779b97f4a7c15ull;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ull;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebull;
  x ^= x >> 31;
  return 0x8000'0000u | static_cast<std::uint32_t>(x);
}

}  // namespace

std::unique_ptr<SvcClient> SvcClient::connect(const std::string& heap_path,
                                              const ClientOptions& opts) {
  pmem::ShmSegment seg =
      pmem::ShmSegment::attach(svc_path(heap_path), /*read_only=*/false);
  const SvcHeader* h = header_of(seg.data());
  if (seg.size() < sizeof(SvcHeader) || h->magic != kSvcMagic ||
      h->version != kSvcVersion || h->segment_bytes > seg.size()) {
    throw Error(ErrorCode::kSvcUnavailable,
                heap_path + ": malformed service segment");
  }

  std::unique_ptr<SvcClient> c(new SvcClient(std::move(seg), opts));
  c->heap_path_ = heap_path;

  // Admission gate: wait out a starting server briefly; refuse the rest.
  const std::uint64_t deadline = monotonic_ns() + opts.submit_timeout_ns;
  for (;;) {
    const ErrorCode st = c->server_state();
    if (st == ErrorCode::kOk) break;
    if (st == ErrorCode::kSvcUnavailable) {
      throw Error(ErrorCode::kSvcUnavailable,
                  heap_path + ": allocation service is gone");
    }
    if (monotonic_ns() > deadline) {
      throw Error(ErrorCode::kSvcRetry,
                  heap_path + ": allocation service is not serving");
    }
    std::this_thread::yield();
  }

  if (c->admission(heap_path) != ErrorCode::kOk) {
    throw Error(ErrorCode::kInternal, heap_path + ": session table is full");
  }
  if (opts.map_data) c->map_windows(heap_path);
  return c;
}

SvcClient::SvcClient(pmem::ShmSegment seg, ClientOptions opts)
    : seg_(std::move(seg)), opts_(opts) {
  // Spinning for a completion only helps when the service thread can make
  // progress on another CPU; on a single-CPU box it burns exactly the
  // timeslice the server needs, so sleep immediately instead.
  effective_spins_ =
      std::thread::hardware_concurrency() > 1 ? opts_.wait_spins : 0;
  generation_ = header_of(seg_.data())->generation;
  nonce32_ = make_nonce();
}

std::uint64_t SvcClient::now_ns() const noexcept {
  return opts_.now != nullptr ? opts_.now() : monotonic_ns();
}

bool SvcClient::failover_armed() const noexcept {
  return opts_.auto_failover && !in_reconnect_ &&
         opts_.reconnect_attempts > 0;
}

unsigned SvcClient::pipeline_depth() const noexcept {
  return std::min(std::max(opts_.refill_batches, 1u), kCplRingSlots / 2);
}

SvcClient::~SvcClient() {
  (void)flush_caches();
  // Clean disconnect: the server reclaims the session through the same
  // grace machinery as a crash, so nothing here may race its reclaimer.
  sess().state.store(kSessClosed, std::memory_order_release);
  for (Window& w : windows_) {
    if (w.base != nullptr) (void)::munmap(w.base, w.len);
  }
}

SessionSlot& SvcClient::sess() const noexcept {
  return sessions_of(const_cast<SvcClient*>(this)->seg_.data())[session_];
}

ErrorCode SvcClient::admission(const std::string&) {
  std::byte* base = seg_.data();
  SessionSlot* sessions = sessions_of(base);
  const SvcHeader* h = header_of(base);
  for (unsigned i = 0; i < h->nsessions; ++i) {
    std::uint32_t expect = kSessFree;
    if (!sessions[i].state.compare_exchange_strong(
            expect, kSessClaiming, std::memory_order_acq_rel,
            std::memory_order_acquire)) {
      continue;
    }
    SessionSlot& s = sessions[i];
    // Heartbeat first: a crash after the CAS but before the identity is
    // written leaves a claiming slot the server times out on.
    s.heartbeat.store(monotonic_ns(), std::memory_order_release);
    s.pid = static_cast<std::uint64_t>(::getpid());
    s.start_time = core::proc_start_time(::getpid());
    s.nonce = nonce32_;
    s.reconnected.store(reconnected_once_ ? 1 : 0, std::memory_order_relaxed);
    // Republish the consumed-alloc watermark before going active: a
    // successor sweeping this session after a crash must never reclaim
    // blocks an earlier segment generation already delivered.
    s.alloc_watermark.store(alloc_watermark_, std::memory_order_relaxed);
    s.ops.store(0, std::memory_order_relaxed);
    s.phase.store(0, std::memory_order_relaxed);
    session_ = i;
    // Home ring: sessions spread round-robin over the serving shards.
    std::vector<unsigned> serving;
    const ShardEntry* entries = shard_entries_of(base);
    for (unsigned j = 0; j < h->nshards; ++j) {
      if (entries[j].heap_id != 0) serving.push_back(j);
    }
    shard_ = serving.empty() ? 0 : serving[i % serving.size()];
    s.preferred_shard = shard_;
    cpl_ring_init(&s, cpl_ring_of(base, i));
    s.state.store(kSessActive, std::memory_order_release);
    return ErrorCode::kOk;
  }
  return ErrorCode::kInternal;
}

void SvcClient::map_windows(const std::string& heap_path) {
  std::byte* base = seg_.data();
  const SvcHeader* h = header_of(base);
  const ShardEntry* entries = shard_entries_of(base);
  for (unsigned i = 0; i < h->nshards; ++i) {
    const ShardEntry& e = entries[i];
    if (e.heap_id == 0) continue;  // quarantined slot: no data to map
    const std::string path = member_path(heap_path, i);
    const int fd = ::open(path.c_str(), O_RDWR | O_CLOEXEC);
    if (fd < 0) {
      throw Error(ErrorCode::kIo, "open data window " + path, errno);
    }
    void* p = ::mmap(nullptr, e.file_size, PROT_READ, MAP_SHARED, fd, 0);
    const int mmap_errno = errno;
    (void)::close(fd);
    if (p == MAP_FAILED) {
      throw Error(ErrorCode::kIo, "map data window " + path, mmap_errno);
    }
    // Only the user region becomes writable; the metadata prefix stays
    // PROT_READ in every client (the cross-process face of the MPK rule).
    auto* wbase = static_cast<std::byte*>(p);
    if (::mprotect(wbase + e.user_region_off,
                   static_cast<std::size_t>(e.nsubheaps) * e.user_size,
                   PROT_READ | PROT_WRITE) != 0) {
      const int mp_errno = errno;
      (void)::munmap(p, e.file_size);
      throw Error(ErrorCode::kIo, "unprotect user region " + path, mp_errno);
    }
    windows_.push_back(Window{e.heap_id, wbase,
                              static_cast<std::size_t>(e.file_size),
                              e.user_region_off, e.user_size, e.nsubheaps});
  }
}

// ---- liveness --------------------------------------------------------------

ErrorCode SvcClient::server_state() const noexcept {
  const SvcHeader* h = header_of(const_cast<SvcClient*>(this)->seg_.data());
  switch (static_cast<SvcState>(h->state.load(std::memory_order_acquire))) {
    case SvcState::kServing: {
      const std::uint64_t hb = h->heartbeat_ns.load(std::memory_order_acquire);
      const std::uint64_t now = now_ns();
      if (now > hb && now - hb > opts_.server_stale_ns) {
        // Heartbeat aged out: only a provably dead server pid demotes the
        // verdict to unavailable (a wedged box is not a dead server).
        const auto pid = static_cast<pid_t>(h->server_pid);
        if (!core::process_alive(pid) ||
            core::proc_start_time(pid) != h->server_start_time) {
          return ErrorCode::kSvcUnavailable;
        }
      }
      return ErrorCode::kOk;
    }
    case SvcState::kStarting:
    case SvcState::kDraining:
      return ErrorCode::kSvcRetry;
    case SvcState::kDead:
    default:
      return ErrorCode::kSvcUnavailable;
  }
}

// ---- failover --------------------------------------------------------------

ErrorCode SvcClient::reconnect() {
  if (in_reconnect_) return ErrorCode::kSvcUnavailable;
  in_reconnect_ = true;
  ErrorCode rc = ErrorCode::kSvcUnavailable;
  // A successor can die *during* reconcile; every step below is idempotent
  // and re-entrant, so just run the whole protocol against the next one.
  for (unsigned round = 0; round < 3; ++round) {
    rc = reconnect_impl();
    if (rc != ErrorCode::kSvcUnavailable) break;
  }
  in_reconnect_ = false;
  return rc;
}

ErrorCode SvcClient::reconnect_impl() {
  // 1. Drain the orphaned completion ring.  Safe without a server: a
  // replacement always publishes a *new* segment file, so this mapping is
  // private by the time anyone else could touch it, and a dead server
  // enqueues nothing — a plain single-consumer drain.  Completions found
  // here resolve their requests' fates the normal way.
  {
    SessionSlot& s = sess();
    CplSlot* ring = cpl_ring_of(seg_.data(), session_);
    CplMsg msg;
    while (cpl_dequeue(&s, ring, &msg)) {
      note_completed(msg);
      absorb_completion(msg);
    }
    // This slot is never used again; close it so a sweep of the old
    // segment reads it as a clean disconnect.
    s.state.store(kSessClosed, std::memory_order_release);
  }
  outstanding_ = 0;

  // 2. Classify what is still unacknowledged: allocs whose completions
  // never arrived become reclaim-by-tag orphans, frees become if-owner
  // replays.  In-flight refills died with the ring (blocks that *did*
  // arrive were routed to magazines in step 1).
  for (const std::uint32_t id : alloc_reqs_) {
    lost_tags_.push_back(make_tag(nonce32_, id));
  }
  alloc_reqs_.clear();
  for (auto& [id, ptrs] : free_reqs_) {
    (void)id;
    replay_frees_.insert(replay_frees_.end(), ptrs.begin(), ptrs.end());
  }
  free_reqs_.clear();
  inflight_allocs_.clear();
  for (auto& ids : refill_ids_) ids.clear();

  // 3. Reattach with capped exponential backoff plus jitter.  Only a
  // serving segment at a *different* generation counts: the dead
  // incarnation's own file must never be mistaken for a successor.
  const std::uint64_t old_gen = generation_;
  std::uint64_t backoff =
      std::max<std::uint64_t>(opts_.reconnect_backoff_ns, 100'000);
  const std::uint64_t backoff_cap =
      std::max<std::uint64_t>(opts_.reconnect_backoff_max_ns, backoff);
  bool attached = false;
  for (unsigned attempt = 0; attempt < opts_.reconnect_attempts; ++attempt) {
    try {
      pmem::ShmSegment seg =
          pmem::ShmSegment::attach(svc_path(heap_path_), /*read_only=*/false);
      const SvcHeader* h = header_of(seg.data());
      if (seg.size() >= sizeof(SvcHeader) && h->magic == kSvcMagic &&
          h->version == kSvcVersion && h->segment_bytes <= seg.size() &&
          h->generation != old_gen &&
          static_cast<SvcState>(h->state.load(std::memory_order_acquire)) ==
              SvcState::kServing) {
        seg_ = std::move(seg);
        attached = true;
        break;
      }
    } catch (...) {
      // No successor segment yet.
    }
    // Nobody may be running for the job: nominate one.  Concurrent
    // elections are safe — the heap's OFD owner lock arbitrates and
    // losers fail Heap::open with kHeapBusy.
    if (opts_.elect && attempt % 4 == 0) {
      try {
        opts_.elect();
      } catch (...) {
      }
    }
    const std::uint64_t half = backoff / 2;
    const std::uint64_t jitter =
        half == 0 ? 0
                  : (monotonic_ns() ^ (std::uint64_t{nonce32_} << 13)) % half;
    std::this_thread::sleep_for(std::chrono::nanoseconds(half + jitter));
    backoff = std::min(backoff * 2, backoff_cap);
  }
  if (!attached) return ErrorCode::kSvcUnavailable;

  // 4. Re-admit on the successor under the *same* nonce: tags stamped via
  // the previous incarnation stay reclaimable by this session alone.
  generation_ = header_of(seg_.data())->generation;
  reconnected_once_ = true;
  const ErrorCode adm = admission(heap_path_);
  if (adm != ErrorCode::kOk) return adm;

  // 5. Reconcile before anything else flows: while the backlog is
  // non-empty a retried batch could double-count.
  return reconcile();
}

ErrorCode SvcClient::reconcile() {
  // Orphan reclaim first, replays second.  The sets are disjoint — a lost
  // alloc's handle never reached the caller, so no free can name it.
  while (!lost_tags_.empty()) {
    const unsigned n = static_cast<unsigned>(
        std::min<std::size_t>(lost_tags_.size(), kMaxOpsPerReq));
    const std::size_t off = lost_tags_.size() - n;
    std::uint64_t payload[2 * kMaxOpsPerReq] = {};
    for (unsigned i = 0; i < n; ++i) payload[i] = lost_tags_[off + i];
    CplMsg msg;
    const ErrorCode rc = roundtrip(SvcOp::kReclaimOrphans, payload, n, &msg);
    if (rc != ErrorCode::kOk) return rc;  // backlog kept for the next round
    lost_tags_.resize(off);
  }
  while (!replay_frees_.empty()) {
    const unsigned n = static_cast<unsigned>(
        std::min<std::size_t>(replay_frees_.size(), kMaxOpsPerReq));
    const std::size_t off = replay_frees_.size() - n;
    std::uint64_t payload[2 * kMaxOpsPerReq] = {};
    for (unsigned i = 0; i < n; ++i) {
      payload[2 * i] = replay_frees_[off + i].heap_id;
      payload[2 * i + 1] = replay_frees_[off + i].packed;
    }
    CplMsg msg;
    const ErrorCode rc = roundtrip(SvcOp::kFreeIfOwner, payload, n, &msg);
    if (rc != ErrorCode::kOk) return rc;
    replay_frees_.resize(off);
  }
  return ErrorCode::kOk;
}

// ---- submission / completion -----------------------------------------------

ErrorCode SvcClient::submit(SvcOp op, const std::uint64_t* payload,
                            unsigned nops, std::uint32_t req_id) {
  std::byte* base = seg_.data();
  SubRingHdr* ring = sub_ring_of(base, shard_);
  const std::uint64_t deadline = monotonic_ns() + opts_.submit_timeout_ns;
  for (;;) {
    const ErrorCode st = server_state();
    if (st != ErrorCode::kOk) return st;
    ReqSlot* slot = sub_claim(ring, session_);
    if (slot != nullptr) {
      slot->req_id = req_id;
      slot->op = static_cast<std::uint16_t>(op);
      slot->nops = static_cast<std::uint16_t>(nops);
      if (payload != nullptr) {
        std::memcpy(slot->payload, payload, sizeof(slot->payload));
      } else {
        std::memset(slot->payload, 0, sizeof(slot->payload));
      }
      sub_publish(ring, slot, session_);
      SessionSlot& s = sess();
      s.heartbeat.store(monotonic_ns(), std::memory_order_release);
      s.ops.fetch_add(1, std::memory_order_relaxed);
      last_submitted_id_ = req_id;
      ++outstanding_;
      // Register the request so a failover knows its fate is unknown:
      // allocs become reclaim-by-tag candidates, frees become replays.
      if (op == SvcOp::kAlloc || op == SvcOp::kTxAlloc) {
        alloc_reqs_.push_back(req_id);
      } else if (op == SvcOp::kFree || op == SvcOp::kFreeIfOwner) {
        std::vector<core::NvPtr> ptrs;
        ptrs.reserve(nops);
        for (unsigned i = 0; i < nops; ++i) {
          ptrs.push_back(core::NvPtr{payload[2 * i], payload[2 * i + 1]});
        }
        free_reqs_.emplace_back(req_id, std::move(ptrs));
      }
      return ErrorCode::kOk;
    }
    if (monotonic_ns() > deadline) {
      // Deadline with the ring still full: re-check liveness before
      // answering.  A server that died right after the loop's last check
      // must surface as kSvcUnavailable (triggering failover), not as a
      // retryable full ring the caller would spin on forever.
      const ErrorCode verdict = server_state();
      return verdict == ErrorCode::kOk ? ErrorCode::kSvcRetry : verdict;
    }
    std::this_thread::yield();
  }
}

void SvcClient::note_completed(const CplMsg& msg) {
  // Every dequeue path funnels through here, so this is the single point
  // where a delivered alloc moves the consumed watermark.  Completions are
  // produced and consumed in submission order, so the consumed set is
  // always the exact prefix [1, watermark] — what makes the dead-session
  // orphan sweep (req_id > watermark) safe.
  if (msg.status == SvcStatus::kOkAlloc && msg.req_id > alloc_watermark_) {
    alloc_watermark_ = msg.req_id;
    sess().alloc_watermark.store(alloc_watermark_, std::memory_order_release);
  }
  const auto a = std::find(alloc_reqs_.begin(), alloc_reqs_.end(), msg.req_id);
  if (a != alloc_reqs_.end()) {
    alloc_reqs_.erase(a);
    return;
  }
  for (auto it = free_reqs_.begin(); it != free_reqs_.end(); ++it) {
    if (it->first == msg.req_id) {
      free_reqs_.erase(it);
      return;
    }
  }
}

ErrorCode SvcClient::wait_completion(std::uint32_t req_id, CplMsg* out) {
  std::byte* base = seg_.data();
  SessionSlot& s = sess();
  CplSlot* ring = cpl_ring_of(base, session_);
  unsigned spins = 0;
  for (;;) {
    CplMsg msg;
    while (cpl_dequeue(&s, ring, &msg)) {
      if (outstanding_ > 0) --outstanding_;
      note_completed(msg);
      if (msg.req_id == req_id) {
        *out = msg;
        return ErrorCode::kOk;
      }
      // Earlier completion nobody blocks on (prefetched refills,
      // fire-and-forget free batches, abandoned waits).  FIFO order means
      // a wait can only ever skip over ids submitted *before* its own.
      absorb_completion(msg);
    }
    if (++spins < effective_spins_) {
      cpu_relax();
      continue;
    }
    spins = 0;
    const std::uint32_t bell = s.doorbell.load(std::memory_order_acquire);
    if (cpl_depth(&s) == 0) {
      futex_wait(&s.doorbell, bell, 50'000'000);  // 50 ms liveness tick
    }
    // A draining server still completes published requests, so only a
    // dead one aborts the wait.
    if (server_state() == ErrorCode::kSvcUnavailable) {
      return ErrorCode::kSvcUnavailable;
    }
  }
}

ErrorCode SvcClient::drain_outstanding() {
  if (outstanding_ == 0) return ErrorCode::kOk;
  // The uncollected completions are always a suffix of the submission
  // order ending at last_submitted_id_; waiting for it drains the rest.
  CplMsg msg;
  const ErrorCode rc = wait_completion(last_submitted_id_, &msg);
  if (rc == ErrorCode::kOk) absorb_completion(msg);  // may be a refill's
  return rc;
}

void SvcClient::absorb_completion(const CplMsg& msg) {
  if (msg.status != SvcStatus::kOkAlloc) return;
  for (auto it = inflight_allocs_.begin(); it != inflight_allocs_.end();
       ++it) {
    if (it->first != msg.req_id) continue;
    const unsigned cls = it->second;
    inflight_allocs_.erase(it);
    std::vector<std::uint32_t>& ids = refill_ids_[cls];
    const auto pos = std::find(ids.begin(), ids.end(), msg.req_id);
    if (pos != ids.end()) ids.erase(pos);
    for (unsigned i = 0; i < msg.nops && i < kMaxOpsPerReq; ++i) {
      const core::NvPtr p{msg.results[2 * i], msg.results[2 * i + 1]};
      if (!p.is_null()) magazine_[cls].push_back(p);
    }
    return;
  }
  // Not a registered refill: a synchronous alloc whose waiter gave up
  // (typically a failover mid-wait).  The caller never saw these handles,
  // so stash them for the free path instead of leaking them until session
  // death.
  for (unsigned i = 0; i < msg.nops && i < kMaxOpsPerReq; ++i) {
    const core::NvPtr p{msg.results[2 * i], msg.results[2 * i + 1]};
    if (!p.is_null()) pending_free_.push_back(p);
  }
}

ErrorCode SvcClient::ensure_cpl_space(unsigned count) {
  std::byte* base = seg_.data();
  SessionSlot& s = sess();
  CplSlot* ring = cpl_ring_of(base, session_);
  CplMsg msg;
  while (outstanding_ + count > kCplRingSlots) {
    if (cpl_dequeue(&s, ring, &msg)) {
      if (outstanding_ > 0) --outstanding_;
      note_completed(msg);
      absorb_completion(msg);
      continue;
    }
    const std::uint32_t bell = s.doorbell.load(std::memory_order_acquire);
    if (cpl_depth(&s) == 0) {
      futex_wait(&s.doorbell, bell, 50'000'000);  // 50 ms liveness tick
    }
    if (server_state() == ErrorCode::kSvcUnavailable) {
      return ErrorCode::kSvcUnavailable;
    }
  }
  return ErrorCode::kOk;
}

ErrorCode SvcClient::roundtrip_once(SvcOp op, const std::uint64_t* payload,
                                    unsigned nops, CplMsg* out,
                                    bool* submitted) {
  *submitted = false;
  const ErrorCode sp = ensure_cpl_space(1);
  if (sp != ErrorCode::kOk) return sp;
  const std::uint32_t req_id = next_req_id_++;
  const ErrorCode sub = submit(op, payload, nops, req_id);
  if (sub != ErrorCode::kOk) return sub;
  *submitted = true;
  const ErrorCode cpl = wait_completion(req_id, out);
  if (cpl != ErrorCode::kOk) return cpl;
  return out->status == SvcStatus::kBadRequest ? ErrorCode::kInvalidArgument
                                               : ErrorCode::kOk;
}

ErrorCode SvcClient::roundtrip(SvcOp op, const std::uint64_t* payload,
                               unsigned nops, CplMsg* out) {
  if (nops > kMaxOpsPerReq) return ErrorCode::kInvalidArgument;
  for (unsigned attempt = 0;; ++attempt) {
    bool submitted = false;
    const ErrorCode rc = roundtrip_once(op, payload, nops, out, &submitted);
    if (rc != ErrorCode::kSvcUnavailable || !failover_armed() ||
        attempt >= kFailoverRetries) {
      return rc;
    }
    const ErrorCode rr = reconnect();
    if (rr != ErrorCode::kOk) return rr;
    if (submitted && (op == SvcOp::kFree || op == SvcOp::kFreeIfOwner)) {
      // The reconcile just replayed this batch with an if-owner guard:
      // whether the old server executed it or the replay did, each pointer
      // is free exactly once by now.  Synthesize success — per-pointer
      // verdicts are unknowable across a failover and documented as such.
      out->req_id = 0;
      out->status = SvcStatus::kOk;
      out->nops = static_cast<std::uint16_t>(nops);
      for (unsigned i = 0; i < kMaxOpsPerReq; ++i) {
        out->results[i] =
            static_cast<std::uint64_t>(core::FreeResult::kOk);
      }
      return ErrorCode::kOk;
    }
    // Everything else resubmits safely: a lost alloc's blocks were just
    // reclaimed by tag, and root/ping ops are idempotent.
  }
}

// ---- batched operations ----------------------------------------------------

ErrorCode SvcClient::alloc(const std::uint64_t* sizes, unsigned n,
                           core::NvPtr* out) {
  std::uint64_t payload[2 * kMaxOpsPerReq] = {};
  for (unsigned i = 0; i < n && i < kMaxOpsPerReq; ++i) payload[i] = sizes[i];
  CplMsg msg;
  const ErrorCode rc = roundtrip(SvcOp::kAlloc, payload, n, &msg);
  if (rc != ErrorCode::kOk) return rc;
  for (unsigned i = 0; i < n; ++i) {
    out[i] = core::NvPtr{msg.results[2 * i], msg.results[2 * i + 1]};
  }
  return ErrorCode::kOk;
}

ErrorCode SvcClient::tx_alloc(const std::uint64_t* sizes, unsigned n,
                              core::NvPtr* out) {
  std::uint64_t payload[2 * kMaxOpsPerReq] = {};
  for (unsigned i = 0; i < n && i < kMaxOpsPerReq; ++i) payload[i] = sizes[i];
  CplMsg msg;
  const ErrorCode rc = roundtrip(SvcOp::kTxAlloc, payload, n, &msg);
  if (rc != ErrorCode::kOk) return rc;
  for (unsigned i = 0; i < n; ++i) {
    out[i] = core::NvPtr{msg.results[2 * i], msg.results[2 * i + 1]};
  }
  return ErrorCode::kOk;
}

ErrorCode SvcClient::free_blocks(const core::NvPtr* ptrs, unsigned n,
                                 core::FreeResult* out) {
  std::uint64_t payload[2 * kMaxOpsPerReq] = {};
  for (unsigned i = 0; i < n && i < kMaxOpsPerReq; ++i) {
    payload[2 * i] = ptrs[i].heap_id;
    payload[2 * i + 1] = ptrs[i].packed;
  }
  CplMsg msg;
  const ErrorCode rc = roundtrip(SvcOp::kFree, payload, n, &msg);
  if (rc != ErrorCode::kOk) return rc;
  for (unsigned i = 0; i < n; ++i) {
    out[i] = static_cast<core::FreeResult>(msg.results[i]);
  }
  return ErrorCode::kOk;
}

ErrorCode SvcClient::get_root(core::NvPtr* out) {
  CplMsg msg;
  const ErrorCode rc = roundtrip(SvcOp::kGetRoot, nullptr, 0, &msg);
  if (rc != ErrorCode::kOk) return rc;
  *out = core::NvPtr{msg.results[0], msg.results[1]};
  return ErrorCode::kOk;
}

ErrorCode SvcClient::set_root(core::NvPtr root) {
  std::uint64_t payload[2 * kMaxOpsPerReq] = {root.heap_id, root.packed};
  CplMsg msg;
  return roundtrip(SvcOp::kSetRoot, payload, 0, &msg);
}

ErrorCode SvcClient::ping() {
  CplMsg msg;
  return roundtrip(SvcOp::kPing, nullptr, 0, &msg);
}

ErrorCode SvcClient::snapshot(const std::string& dst_dir, bool incremental,
                              std::uint64_t* pages_out) {
  std::uint64_t payload[2 * kMaxOpsPerReq] = {};
  if (dst_dir.empty() || dst_dir.size() >= sizeof(payload)) {
    return ErrorCode::kInvalidArgument;  // must fit NUL-terminated
  }
  std::memcpy(payload, dst_dir.data(), dst_dir.size());
  CplMsg msg;
  const ErrorCode rc =
      roundtrip(SvcOp::kSnapshot, payload, incremental ? 1 : 0, &msg);
  if (rc != ErrorCode::kOk) return rc;
  if (msg.status != SvcStatus::kOk) return ErrorCode::kInvalidArgument;
  if (pages_out != nullptr) *pages_out = msg.results[0];
  return ErrorCode::kOk;
}

// ---- cached single ops -----------------------------------------------------

void SvcClient::prefetch(unsigned cls, std::uint64_t size) {
  // Caps: per class so one hot class cannot monopolize the pipeline, and
  // global so prefetches plus a free flush can never approach the
  // completion ring's capacity.
  std::vector<std::uint32_t>& ids = refill_ids_[cls];
  while (magazine_[cls].size() + kMaxOpsPerReq * ids.size() <
             std::size_t{pipeline_depth()} * kMaxOpsPerReq &&
         ids.size() < 8 && inflight_allocs_.size() < 16) {
    if (ensure_cpl_space(1) != ErrorCode::kOk) return;
    std::uint64_t payload[2 * kMaxOpsPerReq] = {};
    for (unsigned i = 0; i < kMaxOpsPerReq; ++i) payload[i] = size;
    const std::uint32_t id = next_req_id_++;
    if (submit(SvcOp::kAlloc, payload, kMaxOpsPerReq, id) !=
        ErrorCode::kOk) {
      return;  // degraded service: the miss path reports it
    }
    ids.push_back(id);
    inflight_allocs_.emplace_back(id, cls);
  }
}

core::NvPtr SvcClient::alloc_one(std::uint64_t size, ErrorCode* err) {
  ErrorCode e = ErrorCode::kOk;
  core::NvPtr p = alloc_one_inner(size, &e);
  for (unsigned attempt = 0;
       p.is_null() && e == ErrorCode::kSvcUnavailable && failover_armed() &&
       attempt < kFailoverRetries;
       ++attempt) {
    const ErrorCode rr = reconnect();
    if (rr != ErrorCode::kOk) {
      e = rr;
      break;
    }
    e = ErrorCode::kOk;
    p = alloc_one_inner(size, &e);
  }
  if (err != nullptr) *err = e;
  return p;
}

core::NvPtr SvcClient::alloc_one_inner(std::uint64_t size, ErrorCode* err) {
  if (err != nullptr) *err = ErrorCode::kOk;
  const unsigned cls = size_class_of(size) & 63;
  std::vector<core::NvPtr>& mag = magazine_[cls];
  // A miss collects the in-flight prefetches first: by the time the
  // magazine runs dry their completions are usually already queued, so
  // this rarely sleeps.
  while (mag.empty() && !refill_ids_[cls].empty()) {
    const std::uint32_t id = refill_ids_[cls].front();
    CplMsg msg;
    const ErrorCode w = wait_completion(id, &msg);
    if (w != ErrorCode::kOk) {
      if (err != nullptr) *err = w;
      return core::NvPtr::null();
    }
    absorb_completion(msg);  // erases id from refill_ids_[cls]
  }
  if (mag.empty()) {
    // Cold start (or prefetch could not keep up): a synchronous pipelined
    // refill — submit every batch before collecting the first completion,
    // so the whole refill pays one round-trip of latency.  The home ring
    // is FIFO per session, so collecting in submission order never races
    // a completion past its wait.
    const unsigned batches = pipeline_depth();
    std::uint64_t payload[2 * kMaxOpsPerReq] = {};
    for (unsigned i = 0; i < kMaxOpsPerReq; ++i) payload[i] = size;
    std::uint32_t ids[kCplRingSlots / 2];
    unsigned submitted = 0;
    ErrorCode rc = ensure_cpl_space(batches);
    if (rc != ErrorCode::kOk) {
      if (err != nullptr) *err = rc;
      return core::NvPtr::null();
    }
    for (unsigned b = 0; b < batches; ++b) {
      ids[b] = next_req_id_++;
      rc = submit(SvcOp::kAlloc, payload, kMaxOpsPerReq, ids[b]);
      if (rc != ErrorCode::kOk) break;
      // Registered like a prefetch so every arrival — even one collected
      // by an unrelated wait after this path abandons it — lands in the
      // magazine rather than leaking.
      refill_ids_[cls].push_back(ids[b]);
      inflight_allocs_.emplace_back(ids[b], cls);
      ++submitted;
    }
    for (unsigned b = 0; b < submitted; ++b) {
      CplMsg msg;
      const ErrorCode w = wait_completion(ids[b], &msg);
      if (w != ErrorCode::kOk) {
        // Waits abandoned here leave their requests registered; a
        // failover converts them into reclaim-by-tag orphans.
        rc = w;
        break;
      }
      absorb_completion(msg);  // routes blocks to mag, deregisters the id
    }
    if (mag.empty()) {
      if (err != nullptr) *err = rc;  // kOk + null = heap exhausted
      return core::NvPtr::null();
    }
  }
  const core::NvPtr p = mag.back();
  mag.pop_back();
  prefetch(cls, size);
  return p;
}

ErrorCode SvcClient::free_one(core::NvPtr ptr) {
  if (ptr.is_null()) return ErrorCode::kOk;
  pending_free_.push_back(ptr);
  if (pending_free_.size() <
      std::size_t{pipeline_depth()} * kMaxOpsPerReq) {
    return ErrorCode::kOk;
  }
  return flush_pending(/*sync=*/false);
}

ErrorCode SvcClient::flush_pending(bool sync) {
  ErrorCode rc = flush_pending_inner(sync);
  for (unsigned attempt = 0; rc == ErrorCode::kSvcUnavailable &&
                             failover_armed() && attempt < kFailoverRetries;
       ++attempt) {
    const ErrorCode rr = reconnect();
    if (rr != ErrorCode::kOk) return rr;
    rc = flush_pending_inner(sync);
  }
  return rc;
}

ErrorCode SvcClient::flush_pending_inner(bool sync) {
  while (!pending_free_.empty()) {
    const unsigned n = static_cast<unsigned>(
        std::min<std::size_t>(pending_free_.size(), kMaxOpsPerReq));
    std::uint64_t payload[2 * kMaxOpsPerReq] = {};
    const std::size_t off = pending_free_.size() - n;
    for (unsigned i = 0; i < n; ++i) {
      payload[2 * i] = pending_free_[off + i].heap_id;
      payload[2 * i + 1] = pending_free_[off + i].packed;
    }
    // Fire-and-forget: nobody reads a free batch's results, so the only
    // wait the free path ever takes is for completion-ring space.
    const ErrorCode sp = ensure_cpl_space(1);
    if (sp != ErrorCode::kOk) return sp;
    const ErrorCode rc =
        submit(SvcOp::kFree, payload, n, next_req_id_++);
    if (rc != ErrorCode::kOk) return rc;
    // Submitted batches move from the stash to the free_reqs_ registry
    // (inside submit): never double-freed by a retry here, still replayed
    // if-owner should the server die before acknowledging them.
    pending_free_.resize(off);
  }
  return sync ? drain_outstanding() : ErrorCode::kOk;
}

ErrorCode SvcClient::flush_caches() {
  // Land the in-flight prefetches first — their blocks must be in the
  // magazines before the sweep below, or they would survive the flush.
  ErrorCode dr = drain_outstanding();
  for (unsigned attempt = 0; dr == ErrorCode::kSvcUnavailable &&
                             failover_armed() && attempt < kFailoverRetries;
       ++attempt) {
    const ErrorCode rr = reconnect();
    if (rr != ErrorCode::kOk) return rr;
    dr = drain_outstanding();  // nothing outstanding after a reconnect
  }
  if (dr != ErrorCode::kOk) return dr;
  for (unsigned cls = 0; cls < 64; ++cls) {
    for (const core::NvPtr& p : magazine_[cls]) pending_free_.push_back(p);
    magazine_[cls].clear();
  }
  // Synchronous: when this returns kOk the server has executed every
  // request this session ever submitted (exact-zero leak checks rely on
  // it).
  return flush_pending(/*sync=*/true);
}

// ---- data windows ----------------------------------------------------------

void* SvcClient::raw(core::NvPtr ptr) const noexcept {
  if (ptr.is_null()) return nullptr;
  for (const Window& w : windows_) {
    if (w.heap_id != ptr.heap_id) continue;
    const unsigned sub = ptr.subheap();
    const std::uint64_t off = ptr.offset();
    if (sub >= w.nsubheaps || off >= w.user_size) return nullptr;
    return w.base + w.user_off + sub * w.user_size + off;
  }
  return nullptr;
}

core::NvPtr SvcClient::from_raw(const void* p) const noexcept {
  const auto* b = static_cast<const std::byte*>(p);
  for (const Window& w : windows_) {
    const std::byte* lo = w.base + w.user_off;
    const std::byte* hi = lo + static_cast<std::uint64_t>(w.nsubheaps) *
                                   w.user_size;
    if (b < lo || b >= hi) continue;
    const std::uint64_t rel = static_cast<std::uint64_t>(b - lo);
    return core::NvPtr::make(w.heap_id,
                             static_cast<std::uint16_t>(rel / w.user_size),
                             rel % w.user_size);
  }
  return core::NvPtr::null();
}

// ---- torture hooks ---------------------------------------------------------

unsigned SvcClient::hold_claims_for_test(unsigned n) {
  SubRingHdr* ring = sub_ring_of(seg_.data(), shard_);
  unsigned held = 0;
  for (unsigned i = 0; i < n; ++i) {
    if (sub_claim(ring, session_) == nullptr) break;
    ++held;
  }
  return held;
}

ErrorCode SvcClient::submit_alloc_no_wait_for_test(std::uint64_t size) {
  std::uint64_t payload[2 * kMaxOpsPerReq] = {size};
  return submit(SvcOp::kAlloc, payload, 1, next_req_id_++);
}

void SvcClient::set_phase(std::uint64_t v) noexcept {
  sess().phase.store(v, std::memory_order_release);
}

}  // namespace poseidon::svc
