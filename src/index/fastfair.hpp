// FAST-FAIR-style persistent B+-tree (Hwang et al., FAST'18) — the index
// the paper's YCSB experiment (§7.5) builds on top of each allocator.
//
// Byte-addressable persistent B+-tree with failure-atomic in-node shifts:
// entries are moved with 8-byte stores ordered by clwb+sfence per touched
// cache line (FAIR), so a crash leaves at worst a transient duplicate that
// readers skip.  Node concurrency uses B-link sibling pointers with
// per-node sequence locks: writers lock the node (version goes odd),
// readers snapshot optimistically and retry on version change — a
// simplification of FAST's duplicate-tolerant lock-free reads that keeps
// the same structure and persistence ordering (see DESIGN.md).
//
// Nodes and values are carved from the pluggable PAllocator, which is the
// point: tree build/update throughput is dominated by allocator behaviour.
#pragma once

#include <atomic>
#include <cstdint>
#include <mutex>
#include <optional>
#include <string>
#include <vector>

#include "alloc_iface/allocator.hpp"

namespace poseidon::index {

class FastFairTree {
 public:
  static constexpr unsigned kNodeSize = 512;

  // The tree does not own the allocator.  Creates an empty root leaf.
  explicit FastFairTree(iface::PAllocator* alloc);

  // Insert; false when the key exists or allocation failed.
  bool insert(std::uint64_t key, std::uint64_t value);
  // Point lookup.
  std::optional<std::uint64_t> search(std::uint64_t key) const;
  // In-place value replacement; false when absent.
  bool update(std::uint64_t key, std::uint64_t value);
  // Replace the value and return the previous one (under the leaf lock),
  // so concurrent updaters never free the same old value twice.
  std::optional<std::uint64_t> exchange(std::uint64_t key,
                                        std::uint64_t value);
  // Delete; false when absent.
  bool remove(std::uint64_t key);
  // Scan up to `limit` entries with key >= from; returns count.
  std::size_t scan(std::uint64_t from, std::size_t limit,
                   std::uint64_t* out_values) const;

  std::uint64_t height() const noexcept;

  // Test support: verify sortedness, fence keys and sibling links.
  bool check(std::string* why = nullptr) const;

 private:
  struct Node;

  Node* new_node(bool leaf, unsigned level, std::uint64_t min_key);
  Node* descend_to(std::uint64_t key, unsigned target_level,
                   std::vector<Node*>* path) const;
  // Lock `n`, moving right along siblings until it covers `key`.
  static Node* lock_covering(Node* n, std::uint64_t key);
  // Insert (key, right) into the parent of `child` at `level`.
  void insert_upward(Node* child, std::uint64_t sep, Node* right,
                     unsigned level, std::vector<Node*>& path);

  iface::PAllocator* alloc_;
  std::atomic<Node*> root_;
  mutable std::mutex root_mu_;
};

}  // namespace poseidon::index
