// PersistentBTree — a restart-surviving B+-tree over a single Poseidon
// heap.
//
// Where the FAST-FAIR tree (fastfair.hpp) chases raw pointers — the
// representation the original FAST-FAIR code uses, valid only within one
// process lifetime — this tree links nodes with 8-byte *packed persistent
// references* (sub-heap:16 | offset:48; the heap id is implicit), so the
// whole index survives arbitrary restarts and remaps: re-`attach` to the
// handle object and keep going.
//
// Crash consistency without logging, FAIR-style, by ordering 8-byte
// publication points:
//   * in-node inserts shift right-to-left and persist the moved range
//     before the count that exposes it;
//   * splits build and persist the right node completely, then publish it
//     with one 8-byte sibling-link store; a crash between sibling link and
//     parent insert leaves a B-link-searchable tree (lookups move right);
//   * root growth publishes through one 8-byte store in the handle.
// A crash between a node's allocation and its publishing link can leak
// that one node — never corrupt or dangle (leak-not-corruption is the
// right side of the trade; Heap::visit_blocks enables offline sweeps).
//
// Concurrency: one reader-writer lock per tree — simple and correct; the
// FAST-FAIR tree is the scalable-writes option.
#pragma once

#include <cstdint>
#include <optional>
#include <shared_mutex>
#include <string>

#include "core/heap.hpp"

namespace poseidon::index {

class PersistentBTree {
 public:
  static constexpr unsigned kNodeSize = 512;

  // Create an empty tree on `heap`; the returned handle pointer should be
  // anchored by the application (e.g. heap.set_root(tree.handle())).
  static PersistentBTree create(core::Heap& heap);

  // Re-attach to an existing tree after a restart.  Throws
  // std::runtime_error if `handle` does not reference a tree.
  static PersistentBTree attach(core::Heap& heap, core::NvPtr handle);

  PersistentBTree(PersistentBTree&&) noexcept;
  ~PersistentBTree();
  PersistentBTree(const PersistentBTree&) = delete;
  PersistentBTree& operator=(const PersistentBTree&) = delete;

  // Persistent pointer to the tree's handle object.
  core::NvPtr handle() const noexcept;

  // False when the key exists or allocation fails.
  bool insert(std::uint64_t key, std::uint64_t value);
  std::optional<std::uint64_t> search(std::uint64_t key) const;
  bool update(std::uint64_t key, std::uint64_t value);
  // Replace and return the previous value (for safe old-value disposal).
  std::optional<std::uint64_t> exchange(std::uint64_t key,
                                        std::uint64_t value);
  bool remove(std::uint64_t key);
  std::size_t scan(std::uint64_t from, std::size_t limit,
                   std::uint64_t* out_values) const;

  std::uint64_t size() const noexcept;    // live keys
  std::uint64_t height() const noexcept;

  // Structural verification (sortedness, fences, sibling chains, size).
  bool check(std::string* why = nullptr) const;

 private:
  struct Node;
  struct Handle;

  PersistentBTree(core::Heap& heap, core::NvPtr handle);

  Node* node_at(std::uint64_t pref) const noexcept;
  std::uint64_t pref_of(const core::NvPtr& p) const noexcept;
  // Allocate a node inside the current tx; 0 on exhaustion.
  std::uint64_t new_node(bool leaf, unsigned level, std::uint64_t min_key);
  std::uint64_t descend(std::uint64_t key, unsigned target_level) const;
  void insert_upward(std::uint64_t left, std::uint64_t sep,
                     std::uint64_t right, unsigned level);

  core::Heap* heap_;
  core::NvPtr handle_ptr_;
  Handle* handle_ = nullptr;
  mutable std::shared_mutex mu_;
};

}  // namespace poseidon::index
