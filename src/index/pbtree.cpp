#include "index/pbtree.hpp"

#include <cassert>
#include <cstring>
#include <stdexcept>

#include "pmem/persist.hpp"

namespace poseidon::index {

using core::Heap;
using core::NvPtr;

namespace {
constexpr std::uint32_t kNodeMagic = 0x42545231;  // "BTR1"
constexpr std::uint64_t kHandleMagic = 0x50425452454531ull;
constexpr std::uint64_t kNullRef = 0;
}  // namespace

// 8-byte packed persistent reference (+1 so 0 is null); heap id implicit.
struct PersistentBTree::Node {
  struct Entry {
    std::uint64_t key;
    std::uint64_t val;  // leaf: user value; internal: child pref
  };

  std::uint32_t magic;
  std::uint16_t nkeys;
  std::uint8_t level;  // 0 = leaf
  std::uint8_t is_leaf;
  std::uint64_t sibling;   // pref
  std::uint64_t leftmost;  // pref, internal only
  std::uint64_t min_key;   // immutable fence

  static constexpr unsigned kHeaderSize = 32;
  static constexpr unsigned kEntries =
      (PersistentBTree::kNodeSize - kHeaderSize) / sizeof(Entry);
  Entry entries[kEntries];

  int find(std::uint64_t key) const noexcept {
    unsigned lo = 0, hi = nkeys;
    while (lo < hi) {
      const unsigned mid = (lo + hi) / 2;
      if (entries[mid].key < key) lo = mid + 1; else hi = mid;
    }
    return lo < nkeys && entries[lo].key == key ? static_cast<int>(lo) : -1;
  }

  std::uint64_t child_for(std::uint64_t key) const noexcept {
    if (nkeys == 0 || key < entries[0].key) return leftmost;
    unsigned lo = 0, hi = nkeys;
    while (hi - lo > 1) {
      const unsigned mid = (lo + hi) / 2;
      if (entries[mid].key <= key) lo = mid; else hi = mid;
    }
    return entries[lo].val;
  }

  // FAIR insert: shift right-to-left, persist the moved range, then the
  // count that makes it visible.
  void insert_sorted(std::uint64_t key, std::uint64_t val) noexcept {
    int i = static_cast<int>(nkeys) - 1;
    while (i >= 0 && entries[i].key > key) {
      pmem::nv_store(entries[i + 1], entries[i]);
      --i;
    }
    pmem::nv_store(entries[i + 1], Entry{key, val});
    pmem::persist(&entries[i + 1],
                  (nkeys - static_cast<unsigned>(i)) * sizeof(Entry));
    pmem::nv_store(nkeys, static_cast<std::uint16_t>(nkeys + 1));
    pmem::persist(&nkeys, sizeof(nkeys));
  }

  void remove_at(int idx) noexcept {
    for (unsigned j = static_cast<unsigned>(idx); j + 1 < nkeys; ++j) {
      pmem::nv_store(entries[j], entries[j + 1]);
    }
    pmem::persist(&entries[idx], (nkeys - idx) * sizeof(Entry));
    pmem::nv_store(nkeys, static_cast<std::uint16_t>(nkeys - 1));
    pmem::persist(&nkeys, sizeof(nkeys));
  }
};

struct PersistentBTree::Handle {
  std::uint64_t magic;
  std::uint64_t root;  // pref
  std::uint64_t height;
  std::uint64_t count;
};

PersistentBTree::Node* PersistentBTree::node_at(
    std::uint64_t pref) const noexcept {
  if (pref == kNullRef) return nullptr;
  return static_cast<Node*>(heap_->raw(NvPtr{heap_->heap_id(), pref - 1}));
}

std::uint64_t PersistentBTree::pref_of(const NvPtr& p) const noexcept {
  return p.is_null() ? kNullRef : p.packed + 1;
}

std::uint64_t PersistentBTree::new_node(bool leaf, unsigned level,
                                        std::uint64_t min_key) {
  // Plain (committed) allocation: a crash between this allocation and the
  // 8-byte link that publishes the node can leak one node — never corrupt
  // or dangle.  Applications can sweep leaks offline via
  // Heap::visit_blocks if they care (see DESIGN.md).
  const NvPtr p = heap_->alloc(sizeof(Node));
  if (p.is_null()) return kNullRef;
  auto* n = static_cast<Node*>(heap_->raw(p));
  std::memset(n, 0, sizeof(Node));
  n->magic = kNodeMagic;
  n->level = static_cast<std::uint8_t>(level);
  n->is_leaf = leaf ? 1 : 0;
  n->min_key = min_key;
  pmem::persist(n, sizeof(Node));
  return pref_of(p);
}

PersistentBTree PersistentBTree::create(Heap& heap) {
  const NvPtr hp = heap.alloc(sizeof(Handle));
  if (hp.is_null()) throw std::runtime_error("pbtree: heap exhausted");
  auto* handle = static_cast<Handle*>(heap.raw(hp));
  std::memset(handle, 0, sizeof(Handle));
  PersistentBTree t(heap, hp);
  const std::uint64_t root = t.new_node(/*leaf=*/true, 0, 0);
  if (root == kNullRef) throw std::runtime_error("pbtree: heap exhausted");
  handle->root = root;
  handle->height = 1;
  handle->count = 0;
  pmem::persist(handle, sizeof(Handle));
  // Magic last: a half-created handle is never mistaken for a tree.
  pmem::nv_store_persist(handle->magic, kHandleMagic);
  return t;
}

PersistentBTree PersistentBTree::attach(Heap& heap, NvPtr handle) {
  PersistentBTree t(heap, handle);
  if (t.handle_ == nullptr || t.handle_->magic != kHandleMagic) {
    throw std::runtime_error("pbtree: not a tree handle");
  }
  // The count may drift if a crash hit between an op and its count
  // update; recount from the leaf chain (attach-time repair).
  std::uint64_t n = 0;
  std::uint64_t cur = t.handle_->root;
  const Node* node = t.node_at(cur);
  while (node != nullptr && node->is_leaf == 0) {
    cur = node->leftmost;
    node = t.node_at(cur);
  }
  while (node != nullptr) {
    n += node->nkeys;
    node = t.node_at(node->sibling);
  }
  if (n != t.handle_->count) {
    pmem::nv_store_persist(t.handle_->count, n);
  }
  return t;
}

PersistentBTree::PersistentBTree(Heap& heap, NvPtr handle)
    : heap_(&heap), handle_ptr_(handle) {
  handle_ = static_cast<Handle*>(heap.raw(handle));
}

PersistentBTree::PersistentBTree(PersistentBTree&& other) noexcept
    : heap_(other.heap_),
      handle_ptr_(other.handle_ptr_),
      handle_(other.handle_) {
  other.handle_ = nullptr;
}

PersistentBTree::~PersistentBTree() = default;

NvPtr PersistentBTree::handle() const noexcept { return handle_ptr_; }

std::uint64_t PersistentBTree::descend(std::uint64_t key,
                                       unsigned target_level) const {
  std::uint64_t cur = handle_->root;
  const Node* n = node_at(cur);
  while (n != nullptr) {
    // B-link move-right: a sibling published before its parent separator
    // is still reachable.
    const Node* sib = node_at(n->sibling);
    if (sib != nullptr && key >= sib->min_key) {
      cur = n->sibling;
      n = sib;
      continue;
    }
    if (n->level == target_level) return cur;
    cur = n->child_for(key);
    n = node_at(cur);
  }
  return kNullRef;
}

bool PersistentBTree::insert(std::uint64_t key, std::uint64_t value) {
  std::unique_lock<std::shared_mutex> lk(mu_);
  const std::uint64_t leaf_ref = descend(key, 0);
  Node* leaf = node_at(leaf_ref);
  if (leaf == nullptr || leaf->find(key) >= 0) return false;

  if (leaf->nkeys < Node::kEntries) {
    leaf->insert_sorted(key, value);
    pmem::nv_store_persist(handle_->count, handle_->count + 1);
    return true;
  }

  // Split.  Build and persist the right node completely, then publish it
  // with the single 8-byte sibling store.
  const unsigned half = Node::kEntries / 2;
  const std::uint64_t sep = leaf->entries[half].key;
  const std::uint64_t right_ref = new_node(true, 0, sep);
  if (right_ref == kNullRef) return false;
  Node* right = node_at(right_ref);
  for (unsigned i = half; i < Node::kEntries; ++i) {
    right->entries[i - half] = leaf->entries[i];
  }
  right->nkeys = static_cast<std::uint16_t>(Node::kEntries - half);
  right->sibling = leaf->sibling;
  pmem::persist(right, sizeof(Node));
  pmem::nv_store_persist(leaf->sibling, right_ref);  // publish
  pmem::nv_store(leaf->nkeys, static_cast<std::uint16_t>(half));
  pmem::persist(&leaf->nkeys, sizeof(leaf->nkeys));

  if (key < sep) {
    leaf->insert_sorted(key, value);
  } else {
    right->insert_sorted(key, value);
  }
  pmem::nv_store_persist(handle_->count, handle_->count + 1);
  insert_upward(leaf_ref, sep, right_ref, 1);
  return true;
}

void PersistentBTree::insert_upward(std::uint64_t left, std::uint64_t sep,
                                    std::uint64_t right, unsigned level) {
  for (;;) {
    if (handle_->root == left) {
      const std::uint64_t nr_ref = new_node(false, level, 0);
      if (nr_ref == kNullRef) return;  // reachable via B-link; no fan-out
      Node* nr = node_at(nr_ref);
      nr->leftmost = left;
      nr->entries[0] = {sep, right};
      nr->nkeys = 1;
      pmem::persist(nr, sizeof(Node));
      pmem::nv_store_persist(handle_->root, nr_ref);  // publish new root
      pmem::nv_store_persist(handle_->height, handle_->height + 1);
      return;
    }
    const std::uint64_t parent_ref = descend(sep, level);
    Node* parent = node_at(parent_ref);
    if (parent == nullptr) return;
    if (parent->nkeys < Node::kEntries) {
      parent->insert_sorted(sep, right);
      return;
    }
    // Split the parent: the middle key moves up; its child becomes the
    // right node's leftmost.
    const unsigned half = Node::kEntries / 2;
    const std::uint64_t up_sep = parent->entries[half].key;
    const std::uint64_t pright_ref = new_node(false, level, up_sep);
    if (pright_ref == kNullRef) return;
    Node* pright = node_at(pright_ref);
    pright->leftmost = parent->entries[half].val;
    for (unsigned i = half + 1; i < Node::kEntries; ++i) {
      pright->entries[i - half - 1] = parent->entries[i];
    }
    pright->nkeys = static_cast<std::uint16_t>(Node::kEntries - half - 1);
    pright->sibling = parent->sibling;
    pmem::persist(pright, sizeof(Node));
    pmem::nv_store_persist(parent->sibling, pright_ref);  // publish
    pmem::nv_store(parent->nkeys, static_cast<std::uint16_t>(half));
    pmem::persist(&parent->nkeys, sizeof(parent->nkeys));

    if (sep < up_sep) {
      parent->insert_sorted(sep, right);
    } else {
      pright->insert_sorted(sep, right);
    }
    left = parent_ref;
    sep = up_sep;
    right = pright_ref;
    ++level;
  }
}

std::optional<std::uint64_t> PersistentBTree::search(
    std::uint64_t key) const {
  std::shared_lock<std::shared_mutex> lk(mu_);
  const Node* leaf = node_at(descend(key, 0));
  if (leaf == nullptr) return std::nullopt;
  const int idx = leaf->find(key);
  if (idx < 0) return std::nullopt;
  return leaf->entries[idx].val;
}

bool PersistentBTree::update(std::uint64_t key, std::uint64_t value) {
  return exchange(key, value).has_value();
}

std::optional<std::uint64_t> PersistentBTree::exchange(std::uint64_t key,
                                                       std::uint64_t value) {
  std::unique_lock<std::shared_mutex> lk(mu_);
  Node* leaf = node_at(descend(key, 0));
  if (leaf == nullptr) return std::nullopt;
  const int idx = leaf->find(key);
  if (idx < 0) return std::nullopt;
  const std::uint64_t old = leaf->entries[idx].val;
  pmem::nv_store(leaf->entries[idx].val, value);
  pmem::persist(&leaf->entries[idx].val, sizeof(std::uint64_t));
  return old;
}

bool PersistentBTree::remove(std::uint64_t key) {
  std::unique_lock<std::shared_mutex> lk(mu_);
  Node* leaf = node_at(descend(key, 0));
  if (leaf == nullptr) return false;
  const int idx = leaf->find(key);
  if (idx < 0) return false;
  leaf->remove_at(idx);
  pmem::nv_store_persist(handle_->count, handle_->count - 1);
  return true;
}

std::size_t PersistentBTree::scan(std::uint64_t from, std::size_t limit,
                                  std::uint64_t* out_values) const {
  std::shared_lock<std::shared_mutex> lk(mu_);
  std::size_t got = 0;
  const Node* n = node_at(descend(from, 0));
  while (n != nullptr && got < limit) {
    for (unsigned i = 0; i < n->nkeys && got < limit; ++i) {
      if (n->entries[i].key >= from) out_values[got++] = n->entries[i].val;
    }
    n = node_at(n->sibling);
  }
  return got;
}

std::uint64_t PersistentBTree::size() const noexcept {
  return handle_->count;
}

std::uint64_t PersistentBTree::height() const noexcept {
  return handle_->height;
}

bool PersistentBTree::check(std::string* why) const {
  std::shared_lock<std::shared_mutex> lk(mu_);
  auto fail = [&](const char* msg) {
    if (why != nullptr) *why = msg;
    return false;
  };
  std::uint64_t level_head = handle_->root;
  std::uint64_t leaf_count = 0;
  while (level_head != kNullRef) {
    const Node* head = node_at(level_head);
    if (head == nullptr || head->magic != kNodeMagic) {
      return fail("dangling level head");
    }
    std::uint64_t prev = 0;
    bool first = true;
    for (const Node* n = head; n != nullptr; n = node_at(n->sibling)) {
      if (n->magic != kNodeMagic) return fail("bad node magic");
      if (n->level != head->level) return fail("level mismatch");
      for (unsigned i = 0; i < n->nkeys; ++i) {
        const std::uint64_t k = n->entries[i].key;
        if (!first && k <= prev) return fail("keys out of order");
        if (k < n->min_key) return fail("key below fence");
        prev = k;
        first = false;
      }
      if (n->is_leaf) leaf_count += n->nkeys;
    }
    if (head->is_leaf) break;
    level_head = head->leftmost;
  }
  if (leaf_count != handle_->count) return fail("count drift");
  return true;
}

}  // namespace poseidon::index
