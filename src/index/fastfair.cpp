#include "index/fastfair.hpp"

#include <cassert>
#include <cstring>

#include "common/compiler.hpp"
#include "pmem/persist.hpp"

namespace poseidon::index {

namespace {
constexpr std::uint64_t kNoKey = ~std::uint64_t{0};
}

// 512-byte node: 48-byte header + 29 sorted entries.  Sibling pointers
// (B-link) let lookups and lock acquisition recover from concurrent
// splits by moving right; min_key is the immutable fence set at creation.
struct FastFairTree::Node {
  struct Entry {
    std::uint64_t key;
    std::uint64_t val;  // leaf: value; internal: child Node*
  };

  std::uint64_t version;  // seqlock; odd = write-locked
  Node* sibling;
  Node* leftmost;  // internal nodes: child for keys < entries[0].key
  std::uint64_t min_key;
  std::uint16_t nkeys;
  std::uint8_t is_leaf;
  std::uint8_t level;  // 0 = leaf
  std::uint32_t pad;

  static constexpr unsigned kHeaderSize = 48;
  static constexpr unsigned kEntries =
      (FastFairTree::kNodeSize - kHeaderSize) / sizeof(Entry);
  Entry entries[kEntries];

  std::atomic_ref<std::uint64_t> ver() noexcept {
    return std::atomic_ref<std::uint64_t>(version);
  }
  std::uint64_t ver_load() const noexcept {
    return std::atomic_ref<const std::uint64_t>(version).load(
        std::memory_order_acquire);
  }

  std::uint64_t read_begin() const noexcept {
    std::uint64_t v;
    while ((v = ver_load()) & 1) cpu_relax();
    return v;
  }
  bool read_ok(std::uint64_t v) const noexcept {
    std::atomic_thread_fence(std::memory_order_acquire);
    return ver_load() == v;
  }
  void write_lock() noexcept {
    for (;;) {
      std::uint64_t v = ver_load();
      if ((v & 1) == 0 &&
          ver().compare_exchange_weak(v, v + 1, std::memory_order_acquire)) {
        return;
      }
      cpu_relax();
    }
  }
  void write_unlock() noexcept {
    ver().store(version + 1, std::memory_order_release);
  }

  // Child to descend into for `key` (caller validates the seqlock).
  Node* child_for(std::uint64_t key) const noexcept {
    const unsigned n = nkeys;
    if (n == 0 || key < entries[0].key) return leftmost;
    unsigned lo = 0, hi = n;  // last index with entries[idx].key <= key
    while (hi - lo > 1) {
      const unsigned mid = (lo + hi) / 2;
      if (entries[mid].key <= key) lo = mid; else hi = mid;
    }
    return reinterpret_cast<Node*>(entries[lo].val);
  }

  // Index of `key`, or -1 (caller validates).
  int find(std::uint64_t key) const noexcept {
    unsigned lo = 0, hi = nkeys;
    while (lo < hi) {
      const unsigned mid = (lo + hi) / 2;
      if (entries[mid].key < key) lo = mid + 1; else hi = mid;
    }
    return lo < nkeys && entries[lo].key == key ? static_cast<int>(lo) : -1;
  }

  // FAIR insertion shift: entries move right-to-left with per-slot stores,
  // the touched range is persisted before the count that exposes it.
  void insert_sorted(std::uint64_t key, std::uint64_t val) noexcept {
    int i = static_cast<int>(nkeys) - 1;
    while (i >= 0 && entries[i].key > key) {
      pmem::nv_store(entries[i + 1], entries[i]);
      --i;
    }
    pmem::nv_store(entries[i + 1], Entry{key, val});
    pmem::persist(&entries[i + 1],
                  (nkeys - static_cast<unsigned>(i)) * sizeof(Entry));
    pmem::nv_store(nkeys, static_cast<std::uint16_t>(nkeys + 1));
    pmem::persist(&nkeys, sizeof(nkeys));
  }

  void remove_at(int idx) noexcept {
    for (unsigned j = static_cast<unsigned>(idx); j + 1 < nkeys; ++j) {
      pmem::nv_store(entries[j], entries[j + 1]);
    }
    pmem::persist(&entries[idx], (nkeys - idx) * sizeof(Entry));
    pmem::nv_store(nkeys, static_cast<std::uint16_t>(nkeys - 1));
    pmem::persist(&nkeys, sizeof(nkeys));
  }
};

FastFairTree::FastFairTree(iface::PAllocator* alloc) : alloc_(alloc) {
  static_assert(sizeof(Node) <= kNodeSize);
  root_.store(new_node(/*leaf=*/true, /*level=*/0, /*min_key=*/0),
              std::memory_order_release);
}

FastFairTree::Node* FastFairTree::new_node(bool leaf, unsigned level,
                                           std::uint64_t min_key) {
  auto* n = static_cast<Node*>(alloc_->alloc(kNodeSize));
  if (n == nullptr) return nullptr;
  std::memset(n, 0, sizeof(Node));
  n->is_leaf = leaf ? 1 : 0;
  n->level = static_cast<std::uint8_t>(level);
  n->min_key = min_key;
  pmem::persist(n, sizeof(Node));
  return n;
}

FastFairTree::Node* FastFairTree::descend_to(std::uint64_t key,
                                             unsigned target_level,
                                             std::vector<Node*>* path) const {
  for (;;) {
    Node* n = root_.load(std::memory_order_acquire);
    if (path != nullptr) path->clear();
    if (n->level < target_level) return nullptr;  // tree shorter than asked
    bool restart = false;
    while (!restart) {
      const std::uint64_t v = n->read_begin();
      Node* sib = n->sibling;
      if (sib != nullptr && key >= sib->min_key) {
        if (!n->read_ok(v)) continue;
        n = sib;  // split raced us; move right
        continue;
      }
      if (n->level == target_level) {
        if (path != nullptr) path->push_back(n);
        return n;
      }
      Node* child = n->child_for(key);
      if (!n->read_ok(v)) continue;  // re-read this node
      if (child == nullptr) { restart = true; break; }
      if (path != nullptr) path->push_back(n);
      n = child;
    }
  }
}

FastFairTree::Node* FastFairTree::lock_covering(Node* n, std::uint64_t key) {
  n->write_lock();
  while (n->sibling != nullptr && key >= n->sibling->min_key) {
    Node* sib = n->sibling;
    sib->write_lock();
    n->write_unlock();
    n = sib;
  }
  return n;
}

bool FastFairTree::insert(std::uint64_t key, std::uint64_t value) {
  std::vector<Node*> path;
  Node* leaf = descend_to(key, 0, &path);
  leaf = lock_covering(leaf, key);

  if (leaf->find(key) >= 0) {
    leaf->write_unlock();
    return false;
  }
  if (leaf->nkeys < Node::kEntries) {
    leaf->insert_sorted(key, value);
    leaf->write_unlock();
    return true;
  }

  // Split: right node is fully built and locked before it becomes
  // reachable; the left node's new sibling link is the publish point.
  const unsigned half = Node::kEntries / 2;
  const std::uint64_t sep = leaf->entries[half].key;
  Node* right = new_node(true, 0, sep);
  if (right == nullptr) {
    leaf->write_unlock();
    return false;
  }
  right->write_lock();
  for (unsigned i = half; i < Node::kEntries; ++i) {
    pmem::nv_store(right->entries[i - half], leaf->entries[i]);
  }
  pmem::nv_store(right->nkeys,
                 static_cast<std::uint16_t>(Node::kEntries - half));
  pmem::nv_store(right->sibling, leaf->sibling);
  pmem::persist(right, sizeof(Node));
  pmem::nv_store(leaf->sibling, right);
  pmem::nv_store(leaf->nkeys, static_cast<std::uint16_t>(half));
  pmem::persist(&leaf->version, Node::kHeaderSize);

  if (key < sep) {
    leaf->insert_sorted(key, value);
  } else {
    right->insert_sorted(key, value);
  }
  right->write_unlock();
  leaf->write_unlock();

  insert_upward(leaf, sep, right, 1, path);
  return true;
}

void FastFairTree::insert_upward(Node* child, std::uint64_t sep, Node* right,
                                 unsigned level, std::vector<Node*>& path) {
  for (;;) {
    // Root split?
    {
      std::lock_guard<std::mutex> lk(root_mu_);
      if (root_.load(std::memory_order_acquire) == child) {
        Node* nr = new_node(false, level, 0);
        // Allocation failure here loses only an interior fan-out shortcut:
        // right stays reachable through sibling links.
        if (nr == nullptr) return;
        nr->leftmost = child;
        nr->entries[0] = {sep, reinterpret_cast<std::uint64_t>(right)};
        nr->nkeys = 1;
        pmem::persist(nr, sizeof(Node));
        root_.store(nr, std::memory_order_release);
        return;
      }
    }
    Node* parent = nullptr;
    if (path.size() > level) {
      parent = path[path.size() - 1 - level];
    } else {
      parent = descend_to(sep, level, nullptr);
      if (parent == nullptr) {
        // The tree is still shorter than `level`: retry the root check.
        continue;
      }
    }
    parent = lock_covering(parent, sep);
    if (parent->nkeys < Node::kEntries) {
      parent->insert_sorted(sep, reinterpret_cast<std::uint64_t>(right));
      parent->write_unlock();
      return;
    }
    // Parent full: split it and continue one level up.
    const unsigned half = Node::kEntries / 2;
    // The middle key moves up; its child becomes the right node's leftmost.
    const std::uint64_t up_sep = parent->entries[half].key;
    Node* pright = new_node(false, level, up_sep);
    if (pright == nullptr) {
      parent->write_unlock();
      return;
    }
    pright->write_lock();
    pright->leftmost = reinterpret_cast<Node*>(parent->entries[half].val);
    for (unsigned i = half + 1; i < Node::kEntries; ++i) {
      pmem::nv_store(pright->entries[i - half - 1], parent->entries[i]);
    }
    pmem::nv_store(pright->nkeys,
                   static_cast<std::uint16_t>(Node::kEntries - half - 1));
    pmem::nv_store(pright->sibling, parent->sibling);
    pmem::persist(pright, sizeof(Node));
    pmem::nv_store(parent->sibling, pright);
    pmem::nv_store(parent->nkeys, static_cast<std::uint16_t>(half));
    pmem::persist(&parent->version, Node::kHeaderSize);

    if (sep < up_sep) {
      parent->insert_sorted(sep, reinterpret_cast<std::uint64_t>(right));
    } else {
      pright->insert_sorted(sep, reinterpret_cast<std::uint64_t>(right));
    }
    pright->write_unlock();
    parent->write_unlock();

    child = parent;
    sep = up_sep;
    right = pright;
    ++level;
    // The retained path no longer helps above this level if it was stale;
    // the loop re-descends as needed.
  }
}

std::optional<std::uint64_t> FastFairTree::search(std::uint64_t key) const {
  Node* n = descend_to(key, 0, nullptr);
  for (;;) {
    const std::uint64_t v = n->read_begin();
    Node* sib = n->sibling;
    if (sib != nullptr && key >= sib->min_key) {
      if (!n->read_ok(v)) continue;
      n = sib;
      continue;
    }
    const int idx = n->find(key);
    const std::uint64_t val = idx >= 0 ? n->entries[idx].val : 0;
    if (!n->read_ok(v)) continue;
    if (idx < 0) return std::nullopt;
    return val;
  }
}

bool FastFairTree::update(std::uint64_t key, std::uint64_t value) {
  Node* leaf = descend_to(key, 0, nullptr);
  leaf = lock_covering(leaf, key);
  const int idx = leaf->find(key);
  if (idx < 0) {
    leaf->write_unlock();
    return false;
  }
  pmem::nv_store(leaf->entries[idx].val, value);
  pmem::persist(&leaf->entries[idx].val, sizeof(std::uint64_t));
  leaf->write_unlock();
  return true;
}

std::optional<std::uint64_t> FastFairTree::exchange(std::uint64_t key,
                                                    std::uint64_t value) {
  Node* leaf = descend_to(key, 0, nullptr);
  leaf = lock_covering(leaf, key);
  const int idx = leaf->find(key);
  if (idx < 0) {
    leaf->write_unlock();
    return std::nullopt;
  }
  const std::uint64_t old = leaf->entries[idx].val;
  pmem::nv_store(leaf->entries[idx].val, value);
  pmem::persist(&leaf->entries[idx].val, sizeof(std::uint64_t));
  leaf->write_unlock();
  return old;
}

bool FastFairTree::remove(std::uint64_t key) {
  Node* leaf = descend_to(key, 0, nullptr);
  leaf = lock_covering(leaf, key);
  const int idx = leaf->find(key);
  if (idx < 0) {
    leaf->write_unlock();
    return false;
  }
  leaf->remove_at(idx);
  leaf->write_unlock();
  return true;
}

std::size_t FastFairTree::scan(std::uint64_t from, std::size_t limit,
                               std::uint64_t* out_values) const {
  std::size_t got = 0;
  Node* n = descend_to(from, 0, nullptr);
  while (n != nullptr && got < limit) {
    const std::uint64_t v = n->read_begin();
    std::uint64_t vals[Node::kEntries];
    std::uint64_t keys[Node::kEntries];
    const unsigned cnt = n->nkeys;
    for (unsigned i = 0; i < cnt && i < Node::kEntries; ++i) {
      keys[i] = n->entries[i].key;
      vals[i] = n->entries[i].val;
    }
    Node* next = n->sibling;
    if (!n->read_ok(v)) continue;
    for (unsigned i = 0; i < cnt && got < limit; ++i) {
      if (keys[i] >= from) out_values[got++] = vals[i];
    }
    n = next;
  }
  return got;
}

std::uint64_t FastFairTree::height() const noexcept {
  return root_.load(std::memory_order_acquire)->level + 1;
}

bool FastFairTree::check(std::string* why) const {
  auto fail = [&](const char* msg) {
    if (why != nullptr) *why = msg;
    return false;
  };
  // Quiescent walk: every level's sibling chain must be sorted and fenced.
  Node* level_head = root_.load(std::memory_order_acquire);
  while (level_head != nullptr) {
    std::uint64_t prev = 0;
    bool first = true;
    for (Node* n = level_head; n != nullptr; n = n->sibling) {
      if (n->nkeys > Node::kEntries) return fail("count overflow");
      for (unsigned i = 0; i < n->nkeys; ++i) {
        const std::uint64_t k = n->entries[i].key;
        if (!first && k <= prev) return fail("keys out of order");
        if (k < n->min_key) return fail("key below fence");
        prev = k;
        first = false;
      }
      if (n->sibling != nullptr && !first && prev >= n->sibling->min_key) {
        return fail("fence overlap with sibling");
      }
      if (n->level != level_head->level) return fail("level mismatch");
    }
    if (level_head->is_leaf) break;
    level_head = level_head->leftmost;
    if (level_head == nullptr) return fail("internal node without leftmost");
  }
  return true;
}

}  // namespace poseidon::index
