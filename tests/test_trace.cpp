// Trace module tests: synthesis determinism, slot discipline, text
// round-tripping, peak accounting, and replay over all three allocators.
#include <gtest/gtest.h>

#include <sstream>

#include "alloc_iface/allocator.hpp"
#include "workloads/trace.hpp"

namespace poseidon::workloads {
namespace {

TEST(Trace, SynthesisIsDeterministic) {
  const Trace a = Trace::synthesize(1000, 64, 16, 512, 7);
  const Trace b = Trace::synthesize(1000, 64, 16, 512, 7);
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a.ops()[i].kind, b.ops()[i].kind);
    EXPECT_EQ(a.ops()[i].slot, b.ops()[i].slot);
    EXPECT_EQ(a.ops()[i].size, b.ops()[i].size);
  }
  const Trace c = Trace::synthesize(1000, 64, 16, 512, 8);
  bool differs = c.size() != a.size();
  for (std::size_t i = 0; !differs && i < a.size(); ++i) {
    differs = c.ops()[i].slot != a.ops()[i].slot ||
              c.ops()[i].size != a.ops()[i].size;
  }
  EXPECT_TRUE(differs) << "different seeds, different traces";
}

TEST(Trace, EndsBalanced) {
  const Trace t = Trace::synthesize(5000, 32, 8, 4096, 3);
  int live = 0;
  for (const TraceOp& op : t.ops()) {
    live += op.kind == TraceOp::kAlloc ? 1 : -1;
    ASSERT_GE(live, 0);
  }
  EXPECT_EQ(live, 0) << "synthesized traces free everything";
}

TEST(Trace, SlotDisciplineHolds) {
  const Trace t = Trace::synthesize(5000, 16, 8, 128, 5);
  std::vector<bool> full(16, false);
  for (const TraceOp& op : t.ops()) {
    if (op.kind == TraceOp::kAlloc) {
      ASSERT_FALSE(full[op.slot]);
      full[op.slot] = true;
    } else {
      ASSERT_TRUE(full[op.slot]);
      full[op.slot] = false;
    }
  }
}

TEST(Trace, TextRoundTrip) {
  const Trace t = Trace::synthesize(500, 8, 32, 64, 1);
  std::stringstream ss;
  t.serialize(ss);
  const Trace back = Trace::parse(ss);
  ASSERT_EQ(back.size(), t.size());
  for (std::size_t i = 0; i < t.size(); ++i) {
    EXPECT_EQ(back.ops()[i].kind, t.ops()[i].kind) << i;
    EXPECT_EQ(back.ops()[i].slot, t.ops()[i].slot) << i;
    EXPECT_EQ(back.ops()[i].size, t.ops()[i].size) << i;
  }
}

TEST(Trace, ParseRejectsGarbage) {
  std::stringstream bad1("a 3\n");  // alloc without size
  EXPECT_THROW(Trace::parse(bad1), std::runtime_error);
  std::stringstream bad2("x 1 2\n");  // unknown op
  EXPECT_THROW(Trace::parse(bad2), std::runtime_error);
  std::stringstream ok("# comment\n\na 0 64\nf 0\n");
  EXPECT_EQ(Trace::parse(ok).size(), 2u);
}

TEST(Trace, PeakLiveBytesMatchesHandComputation) {
  std::stringstream in(
      "a 0 100\n"
      "a 1 200\n"  // peak: 300
      "f 0\n"
      "a 2 150\n"  // 350? no: 200+150 = 350 -> new peak
      "f 1\nf 2\n");
  const Trace t = Trace::parse(in);
  EXPECT_EQ(t.peak_live_bytes(), 350u);
}

class TraceReplay : public ::testing::TestWithParam<iface::AllocatorKind> {};

TEST_P(TraceReplay, ReplaysCleanlyOverAllocator) {
  iface::AllocatorConfig cfg;
  cfg.capacity = 64ull << 20;
  auto alloc = iface::make_allocator(GetParam(), cfg);
  const Trace t = Trace::synthesize(20000, 128, 16, 8000, 42);
  ASSERT_LT(t.peak_live_bytes() * 4, cfg.capacity) << "heap sized for trace";
  const auto r = t.replay(*alloc);
  EXPECT_EQ(r.failed_allocs, 0u);
  EXPECT_EQ(r.completed, t.size());
  EXPECT_GT(r.seconds, 0.0);
}

TEST_P(TraceReplay, SameTraceIsComparableAcrossRuns) {
  iface::AllocatorConfig cfg;
  cfg.capacity = 32ull << 20;
  const Trace t = Trace::synthesize(5000, 64, 32, 2048, 9);
  auto a1 = iface::make_allocator(GetParam(), cfg);
  auto a2 = iface::make_allocator(GetParam(), cfg);
  const auto r1 = t.replay(*a1);
  const auto r2 = t.replay(*a2);
  EXPECT_EQ(r1.completed, r2.completed) << "replay is deterministic";
  EXPECT_EQ(r1.failed_allocs, r2.failed_allocs);
}

INSTANTIATE_TEST_SUITE_P(Allocators, TraceReplay,
                         ::testing::Values(iface::AllocatorKind::kPoseidon,
                                           iface::AllocatorKind::kPmdkLike,
                                           iface::AllocatorKind::kMakaluLike),
                         [](const auto& info) {
                           std::string n = iface::kind_name(info.param);
                           for (char& c : n) {
                             if (c == '-') c = '_';
                           }
                           return n;
                         });

}  // namespace
}  // namespace poseidon::workloads
