// Fault-domain verification + repair (core/fsck.cpp): checksummed
// metadata sealed at clean close, on-disk field-flip detection, scavenge
// rebuild preserving committed allocations, superblock shadow repair,
// state-word resurrection, quarantine + fsck revival, and the C API's
// typed error codes and fsck surface.
#include <gtest/gtest.h>

#include <fcntl.h>
#include <unistd.h>

#include <cstring>
#include <string>
#include <vector>

#include "common/error.hpp"
#include "core/c_api.h"
#include "core/heap.hpp"
#include "core/layout.hpp"
#include "tests/test_util.hpp"

namespace poseidon {
namespace {

using core::Heap;
using core::NvPtr;
using test::small_opts;
using test::TempHeapPath;

// ---- on-disk surgery helpers ------------------------------------------------

core::SuperBlock read_super(const std::string& path) {
  core::SuperBlock sb{};
  const int fd = ::open(path.c_str(), O_RDONLY);
  EXPECT_GE(fd, 0);
  EXPECT_EQ(::pread(fd, &sb, sizeof(sb), 0),
            static_cast<ssize_t>(sizeof(sb)));
  ::close(fd);
  return sb;
}

void write_at(const std::string& path, std::uint64_t off, const void* data,
              std::size_t len) {
  const int fd = ::open(path.c_str(), O_RDWR);
  ASSERT_GE(fd, 0);
  ASSERT_EQ(::pwrite(fd, data, len, static_cast<off_t>(off)),
            static_cast<ssize_t>(len));
  ::close(fd);
}

void flip_byte(const std::string& path, std::uint64_t off) {
  const int fd = ::open(path.c_str(), O_RDWR);
  ASSERT_GE(fd, 0);
  unsigned char b = 0;
  ASSERT_EQ(::pread(fd, &b, 1, static_cast<off_t>(off)), 1);
  b ^= 0xff;
  ASSERT_EQ(::pwrite(fd, &b, 1, static_cast<off_t>(off)), 1);
  ::close(fd);
}

// Builds a heap with `n` committed 32 B allocations, closes it cleanly
// (sealing the checksums), and returns the pointers.
std::vector<NvPtr> make_sealed_heap(const std::string& path, unsigned n) {
  auto h = Heap::create(path, 1 << 20, small_opts());
  std::vector<NvPtr> ptrs;
  for (unsigned i = 0; i < n; ++i) {
    const NvPtr p = h->alloc(32);
    EXPECT_FALSE(p.is_null());
    ptrs.push_back(p);
  }
  return ptrs;  // ~Heap seals
}

// After a detected corruption + repair, every committed block must be
// freeable exactly once and the heap internally consistent.
void expect_repaired(const std::string& path, const std::vector<NvPtr>& ptrs) {
  auto h = Heap::open(path, small_opts());
  EXPECT_GE(h->metrics().corruption_detected.read(), 1u);
  EXPECT_EQ(h->subheap_health(0), core::SubheapHealth::kReady);
  std::string why;
  EXPECT_TRUE(h->check_invariants(&why)) << why;
  for (const NvPtr& p : ptrs) {
    EXPECT_EQ(h->free(p), core::FreeResult::kOk);
    EXPECT_NE(h->free(p), core::FreeResult::kOk);  // never freeable twice
  }
}

// ---- sealed-close verification ----------------------------------------------

TEST(Fsck, CleanCloseAndReopenDetectsNothing) {
  TempHeapPath path("fsck_clean");
  const auto ptrs = make_sealed_heap(path.str(), 3);
  const auto sb = read_super(path.str());
  EXPECT_EQ(sb.seal_state, core::kSealSealed);
  auto h = Heap::open(path.str(), small_opts());
  EXPECT_EQ(h->metrics().corruption_detected.read(), 0u);
  EXPECT_EQ(h->metrics().scavenge_repairs.read(), 0u);
  for (const NvPtr& p : ptrs) EXPECT_EQ(h->free(p), core::FreeResult::kOk);
  // The open dropped the seal; it only returns at the next clean close.
  h.reset();
  EXPECT_EQ(read_super(path.str()).seal_state, core::kSealSealed);
}

// ---- field-flip sweep: every checksummed region, flipped on disk ------------

TEST(Fsck, FlippedFreeListHeadIsDetectedAndRepaired) {
  TempHeapPath path("fsck_freelist");
  const auto ptrs = make_sealed_heap(path.str(), 3);
  const auto sb = read_super(path.str());
  // The top-class remainder block always sits in its free list after 32 B
  // allocations; scribble that list head.
  const unsigned top = 20;  // log2(1 MiB)
  const std::uint64_t garbage = 0x1234567;
  write_at(path.str(),
           sb.subheap_meta_off + offsetof(core::SubheapMeta, free_heads) +
               top * sizeof(core::FreeListHead),
           &garbage, sizeof(garbage));
  expect_repaired(path.str(), ptrs);
}

TEST(Fsck, FlippedCounterIsDetectedAndRepaired) {
  TempHeapPath path("fsck_counter");
  const auto ptrs = make_sealed_heap(path.str(), 3);
  const auto sb = read_super(path.str());
  flip_byte(path.str(),
            sb.subheap_meta_off + offsetof(core::SubheapMeta, live_blocks));
  expect_repaired(path.str(), ptrs);
}

TEST(Fsck, FlippedLevelsActiveIsDetectedAndRepaired) {
  TempHeapPath path("fsck_levels");
  const auto ptrs = make_sealed_heap(path.str(), 3);
  const auto sb = read_super(path.str());
  flip_byte(path.str(),
            sb.subheap_meta_off + offsetof(core::SubheapMeta, levels_active));
  expect_repaired(path.str(), ptrs);
}

TEST(Fsck, FlippedSubheapMagicIsDetectedAndRepaired) {
  TempHeapPath path("fsck_shmagic");
  const auto ptrs = make_sealed_heap(path.str(), 3);
  const auto sb = read_super(path.str());
  flip_byte(path.str(), sb.subheap_meta_off);
  expect_repaired(path.str(), ptrs);
}

TEST(Fsck, FlippedHashBucketIsDetectedAndRepaired) {
  TempHeapPath path("fsck_bucket");
  const auto ptrs = make_sealed_heap(path.str(), 3);
  const auto sb = read_super(path.str());
  // Find the first occupied hash slot and wreck its status field: the
  // record fails validation, is dropped by the scavenge, and the gap is
  // covered by synthesized 32 B records — so a committed 32 B block whose
  // record died is STILL freeable exactly once.
  const int fd = ::open(path.c_str(), O_RDWR);
  ASSERT_GE(fd, 0);
  core::MemblockRec rec{};
  std::uint64_t slot_off = 0;
  for (std::uint64_t i = 0; i < sb.level0_slots; ++i) {
    const std::uint64_t off = sb.hash_region_off + i * sizeof(rec);
    ASSERT_EQ(::pread(fd, &rec, sizeof(rec), static_cast<off_t>(off)),
              static_cast<ssize_t>(sizeof(rec)));
    if (rec.key != 0) {
      slot_off = off;
      break;
    }
  }
  ASSERT_NE(slot_off, 0u);
  const std::uint32_t bad_status = 0xdead;
  ASSERT_EQ(::pwrite(fd, &bad_status, sizeof(bad_status),
                     static_cast<off_t>(
                         slot_off + offsetof(core::MemblockRec, status))),
            static_cast<ssize_t>(sizeof(bad_status)));
  ::close(fd);
  expect_repaired(path.str(), ptrs);
}

TEST(Fsck, InterruptedRepairIsReRunAtOpen) {
  TempHeapPath path("fsck_rerun");
  const auto ptrs = make_sealed_heap(path.str(), 3);
  const auto sb = read_super(path.str());
  // Simulate a crash mid-scavenge: the persisted state word says repairing.
  const std::uint64_t repairing = core::kSubheapRepairing;
  write_at(path.str(), offsetof(core::SuperBlock, subheap_state), &repairing,
           sizeof(repairing));
  auto h = Heap::open(path.str(), small_opts());
  EXPECT_GE(h->metrics().scavenge_repairs.read(), 1u);
  EXPECT_EQ(h->subheap_health(0), core::SubheapHealth::kReady);
  for (const NvPtr& p : ptrs) EXPECT_EQ(h->free(p), core::FreeResult::kOk);
  (void)sb;
}

// ---- state-word resurrection ------------------------------------------------

TEST(Fsck, CorruptedStateWordIsResurrectedAtSealedOpen) {
  TempHeapPath path("fsck_resurrect");
  const auto ptrs = make_sealed_heap(path.str(), 3);
  // Flip ready -> absent at rest; the sealed metadata behind it is intact,
  // so open restores the state word instead of reformatting over the data.
  const std::uint64_t absent = core::kSubheapAbsent;
  write_at(path.str(), offsetof(core::SuperBlock, subheap_state), &absent,
           sizeof(absent));
  auto h = Heap::open(path.str(), small_opts());
  EXPECT_GE(h->metrics().corruption_detected.read(), 1u);
  EXPECT_EQ(h->subheap_health(0), core::SubheapHealth::kReady);
  for (const NvPtr& p : ptrs) EXPECT_EQ(h->free(p), core::FreeResult::kOk);
}

// ---- superblock shadow repair -----------------------------------------------

TEST(Fsck, SuperblockConfigFlipIsRepairedFromShadow) {
  TempHeapPath path("fsck_shadow");
  const auto ptrs = make_sealed_heap(path.str(), 3);
  // heap_id sits inside the checksummed config prefix.
  flip_byte(path.str(), offsetof(core::SuperBlock, heap_id));
  auto h = Heap::open(path.str(), small_opts());
  EXPECT_GE(h->metrics().corruption_detected.read(), 1u);
  for (const NvPtr& p : ptrs) EXPECT_EQ(h->free(p), core::FreeResult::kOk);
}

TEST(Fsck, SuperblockAndShadowBothCorruptIsTypedError) {
  TempHeapPath path("fsck_shadow2");
  make_sealed_heap(path.str(), 1);
  flip_byte(path.str(), offsetof(core::SuperBlock, heap_id));
  flip_byte(path.str(), core::super_shadow_off());  // shadow magic
  try {
    auto h = Heap::open(path.str(), small_opts());
    FAIL() << "open of a doubly-corrupt superblock must throw";
  } catch (const Error& e) {
    EXPECT_EQ(e.poseidon_code(), ErrorCode::kCorruptSuperblock);
  }
}

TEST(Fsck, GarbageFileIsNotAPool) {
  TempHeapPath path("fsck_garbage");
  {
    const int fd = ::open(path.c_str(), O_CREAT | O_RDWR, 0600);
    ASSERT_GE(fd, 0);
    std::vector<char> junk(1 << 20, '\x5a');
    ASSERT_EQ(::pwrite(fd, junk.data(), junk.size(), 0),
              static_cast<ssize_t>(junk.size()));
    ::close(fd);
  }
  try {
    auto h = Heap::open(path.str(), small_opts());
    FAIL() << "garbage file must not open";
  } catch (const Error& e) {
    EXPECT_EQ(e.poseidon_code(), ErrorCode::kNotAPool);
  }
}

// ---- quarantine + fsck revival ----------------------------------------------

TEST(Fsck, UnrecognizableSubheapIsQuarantinedAndFsckRevivesIt) {
  TempHeapPath path("fsck_revive");
  core::Options opts = small_opts(2);
  opts.policy = core::SubheapPolicy::kFixed0;
  opts.nshards = 1;  // white-box: both sub-heaps must share one pool shard
  std::vector<NvPtr> ptrs;
  {
    auto h = Heap::create(path.str(), 1 << 20, opts);
    for (unsigned i = 0; i < 3; ++i) {
      const NvPtr p = h->alloc(32);
      ASSERT_FALSE(p.is_null());
      ptrs.push_back(p);
    }
  }
  const auto sb = read_super(path.str());
  // Garbage state word + destroyed meta magic: open can neither trust nor
  // immediately rebuild it (no recognizable metadata behind a garbage
  // state), so sub-heap 0 is parked.
  const std::uint64_t garbage_state = 77;
  write_at(path.str(), offsetof(core::SuperBlock, subheap_state),
           &garbage_state, sizeof(garbage_state));
  const std::uint64_t garbage_magic = 0;
  write_at(path.str(), sb.subheap_meta_off, &garbage_magic,
           sizeof(garbage_magic));

  auto h = Heap::open(path.str(), opts);
  EXPECT_EQ(h->subheap_health(0), core::SubheapHealth::kQuarantined);
  EXPECT_EQ(h->subheap_health(1), core::SubheapHealth::kAbsent);
  EXPECT_EQ(h->stats().subheaps_quarantined, 1u);
  EXPECT_GE(h->metrics().subheaps_quarantined.read(), 1u);

  // Degraded service: frees into the quarantined sub-heap are refused with
  // the typed result, but allocation falls back to the healthy sub-heap
  // (materializing it on demand).
  EXPECT_EQ(h->free(ptrs[0]), core::FreeResult::kQuarantined);
  const NvPtr fallback = h->alloc(64);
  ASSERT_FALSE(fallback.is_null());
  EXPECT_EQ(fallback.subheap(), 1u);
  EXPECT_EQ(h->subheap_health(1), core::SubheapHealth::kReady);

  // fsck rebuilds sub-heap 0 from its (intact) hash records and returns it
  // to service; the committed blocks are freeable exactly once again.
  const auto rep = h->fsck();
  EXPECT_EQ(rep.repaired, 1u);
  EXPECT_EQ(h->subheap_health(0), core::SubheapHealth::kReady);
  EXPECT_EQ(h->stats().subheaps_quarantined, 0u);
  for (const NvPtr& p : ptrs) {
    EXPECT_EQ(h->free(p), core::FreeResult::kOk);
    EXPECT_NE(h->free(p), core::FreeResult::kOk);
  }
  std::string why;
  EXPECT_TRUE(h->check_invariants(&why)) << why;
}

TEST(Fsck, FsckOnHealthyHeapReportsClean) {
  TempHeapPath path("fsck_healthy");
  auto h = Heap::create(path.str(), 1 << 20, small_opts());
  ASSERT_FALSE(h->alloc(64).is_null());
  const auto rep = h->fsck();
  EXPECT_EQ(rep.checked, 1u);
  EXPECT_EQ(rep.clean, 1u);
  EXPECT_EQ(rep.repaired, 0u);
  EXPECT_EQ(rep.quarantined, 0u);
  EXPECT_EQ(h->metrics().fsck_runs.read(), 1u);
}

// ---- C API ------------------------------------------------------------------

TEST(Fsck, CApiSurfacesTypedErrorCodes) {
  TempHeapPath path("fsck_capi_err");
  {
    const int fd = ::open(path.c_str(), O_CREAT | O_RDWR, 0600);
    ASSERT_GE(fd, 0);
    std::vector<char> junk(1 << 20, '\x77');
    ASSERT_EQ(::pwrite(fd, junk.data(), junk.size(), 0),
              static_cast<ssize_t>(junk.size()));
    ::close(fd);
  }
  EXPECT_EQ(poseidon_init(path.c_str(), 1 << 20), nullptr);
  EXPECT_EQ(poseidon_error_code(), POSEIDON_ERR_NOT_A_POOL);
  EXPECT_NE(poseidon_last_error(), nullptr);
  EXPECT_EQ(poseidon_init(nullptr, 1 << 20), nullptr);
  EXPECT_EQ(poseidon_error_code(), POSEIDON_ERR_INVALID_ARGUMENT);
}

TEST(Fsck, MemberSuperblockRepairsFromShadowDuringParallelOpen) {
  // A torn PRIMARY superblock in a shard member (shadow intact) is damage
  // the open-time repair path fixes in place — the member must come back
  // in service, not quarantined, and the corruption must be counted.
  TempHeapPath path("fsck_member_shadow");
  core::Options opts = test::small_opts(4);
  opts.nshards = 2;
  opts.shard_policy = core::ShardPolicy::kPerThread;
  opts.policy = core::SubheapPolicy::kPerThread;
  {
    auto h = core::Heap::create(path.str(), 2 << 20, opts);
    ASSERT_EQ(h->shard_count(), 2u);
  }
  // Destroy the member's superblock magic; its shadow page still holds the
  // full config prefix.
  const std::uint64_t garbage = 0;
  write_at(path.str() + ".shard1", offsetof(core::SuperBlock, magic),
           &garbage, sizeof(garbage));

  auto h = core::Heap::open(path.str(), opts);
  ASSERT_EQ(h->shard_count(), 2u);
  EXPECT_NE(h->shard(1), nullptr) << "repaired member must serve";
  EXPECT_EQ(h->stats().shards_quarantined, 0u);
  EXPECT_GE(h->metrics().corruption_detected.read(), 1u);
  const auto rep = h->fsck();
  EXPECT_EQ(rep.quarantined, 0u);
  std::string why;
  EXPECT_TRUE(h->check_invariants(&why)) << why;
}

TEST(Fsck, CApiFsckAndQuarantineStats) {
  TempHeapPath path("fsck_capi");
  heap_t* h = poseidon_init(path.c_str(), 1 << 20);
  ASSERT_NE(h, nullptr);
  EXPECT_EQ(poseidon_error_code(), POSEIDON_OK);
  const nvmptr_t p = poseidon_alloc(h, 64);
  ASSERT_FALSE(nvmptr_is_null(p));
  poseidon_fsck_report_t rep;
  EXPECT_EQ(poseidon_fsck(h, &rep), POSEIDON_OK);
  EXPECT_GE(rep.checked, 1u);
  EXPECT_EQ(rep.quarantined, 0u);
  poseidon_stats_t st;
  poseidon_get_stats(h, &st);
  EXPECT_EQ(st.subheaps_quarantined, 0u);
  EXPECT_GE(st.nshards, 1u);
  EXPECT_EQ(st.shards_quarantined, 0u);
  poseidon_finish(h);
  EXPECT_EQ(poseidon_fsck(nullptr, &rep), POSEIDON_ERR_INVALID_ARGUMENT);
}

}  // namespace
}  // namespace poseidon
