// Shard-set tests (layout v5): a heap is one PoolShard per NUMA node
// behind a routing front-end.  Covers multi-shard create/open, NvPtr
// routing and cross-shard frees, the head-last create commit point under
// crash, parallel per-shard recovery, quarantine isolation of a corrupt
// member, shard-header mismatch refusals, the fake-NUMA topology parser,
// and the RCU registry under concurrent open/close.
#include <gtest/gtest.h>

#include <fcntl.h>
#include <sys/wait.h>
#include <unistd.h>

#include <atomic>
#include <chrono>
#include <cstring>
#include <set>
#include <string>
#include <thread>
#include <vector>

#include "common/error.hpp"
#include "common/topology.hpp"
#include "core/heap.hpp"
#include "core/registry.hpp"
#include "pmem/crashpoint.hpp"
#include "pmem/pool.hpp"
#include "tests/test_util.hpp"

namespace poseidon::core {
namespace {

using test::small_opts;
using test::TempHeapPath;

// Two shards regardless of the box's real topology; per-thread routing so
// consecutive test threads land on different shards deterministically.
Options two_shard_opts(unsigned nsubheaps_total = 4) {
  Options o = small_opts(nsubheaps_total);
  o.nshards = 2;
  o.shard_policy = ShardPolicy::kPerThread;
  o.policy = SubheapPolicy::kPerThread;
  return o;
}

// Allocate until the set has produced a block from every shard (a fresh
// thread per attempt advances the thread ordinal, which kPerThread routing
// maps round-robin over the shards).
std::vector<NvPtr> alloc_on_each_shard(Heap& h, std::uint64_t size) {
  std::set<std::uint64_t> ids;
  std::vector<NvPtr> out;
  for (int attempt = 0; attempt < 32 && ids.size() < h.shard_count();
       ++attempt) {
    NvPtr p;
    std::thread([&] { p = h.alloc(size); }).join();
    if (p.is_null()) break;
    if (ids.insert(p.heap_id).second) out.push_back(p);
  }
  return out;
}

void clobber_file_prefix(const std::string& path, std::size_t len) {
  const int fd = ::open(path.c_str(), O_RDWR);
  ASSERT_GE(fd, 0) << path;
  const std::vector<unsigned char> junk(len, 0xff);
  ASSERT_EQ(::pwrite(fd, junk.data(), junk.size(), 0),
            static_cast<ssize_t>(junk.size()));
  ::close(fd);
}

void copy_file_over(const std::string& src, const std::string& dst) {
  const int in = ::open(src.c_str(), O_RDONLY);
  ASSERT_GE(in, 0) << src;
  const int out = ::open(dst.c_str(), O_RDWR | O_TRUNC);
  ASSERT_GE(out, 0) << dst;
  std::vector<char> buf(1 << 20);
  for (;;) {
    const ssize_t n = ::read(in, buf.data(), buf.size());
    ASSERT_GE(n, 0);
    if (n == 0) break;
    ASSERT_EQ(::write(out, buf.data(), static_cast<std::size_t>(n)), n);
  }
  ::close(in);
  ::close(out);
}

TEST(FakeNuma, EnvParserAcceptsOnlySaneTopologies) {
  EXPECT_EQ(parse_fake_numa(nullptr), 0u);
  EXPECT_EQ(parse_fake_numa(""), 0u);
  EXPECT_EQ(parse_fake_numa("abc"), 0u);
  EXPECT_EQ(parse_fake_numa("2x"), 0u);
  EXPECT_EQ(parse_fake_numa("-2"), 0u);
  EXPECT_EQ(parse_fake_numa("0"), 0u);   // no-op topology
  EXPECT_EQ(parse_fake_numa("1"), 0u);   // no-op topology
  EXPECT_EQ(parse_fake_numa("2"), 2u);
  EXPECT_EQ(parse_fake_numa("16"), 16u);
  EXPECT_EQ(parse_fake_numa("64"), 64u);
  EXPECT_EQ(parse_fake_numa("65"), 0u);  // absurd
}

TEST(ShardSet, CreateProducesMemberFilesAndRoutesAllocations) {
  TempHeapPath path("shard_create");
  auto h = Heap::create(path.str(), 4 << 20, two_shard_opts());
  ASSERT_EQ(h->shard_count(), 2u);
  EXPECT_EQ(h->nsubheaps(), 4u);
  EXPECT_TRUE(pmem::Pool::exists(path.str()));
  EXPECT_TRUE(pmem::Pool::exists(path.str() + ".shard1"));

  // Every shard has its own nonzero id; the head's id is the heap's.
  const std::uint64_t id0 = h->shard_heap_id(0);
  const std::uint64_t id1 = h->shard_heap_id(1);
  EXPECT_NE(id0, 0u);
  EXPECT_NE(id1, 0u);
  EXPECT_NE(id0, id1);
  EXPECT_EQ(h->heap_id(), id0);

  const auto st = h->stats();
  EXPECT_EQ(st.nshards, 2u);
  EXPECT_EQ(st.shards_quarantined, 0u);

  // Per-thread routing reaches both shards.
  const std::vector<NvPtr> ps = alloc_on_each_shard(*h, 256);
  ASSERT_EQ(ps.size(), 2u);
  for (const NvPtr& p : ps) {
    EXPECT_TRUE(p.heap_id == id0 || p.heap_id == id1);
    // Conversions round-trip through the owning shard.
    void* r = h->raw(p);
    ASSERT_NE(r, nullptr);
    EXPECT_TRUE(h->contains(r));
    EXPECT_EQ(h->from_raw(r), p);
    // ... and through the process-wide registry (C-API path).
    EXPECT_EQ(registry::by_id(p.heap_id), h.get());
    EXPECT_EQ(registry::by_address(r), h.get());
  }
  // Cross-shard frees: the calling thread's home shard is irrelevant.
  for (const NvPtr& p : ps) EXPECT_EQ(h->free(p), FreeResult::kOk);
  for (const NvPtr& p : ps) EXPECT_NE(h->free(p), FreeResult::kOk);
  std::string why;
  EXPECT_TRUE(h->check_invariants(&why)) << why;
}

TEST(ShardSet, ExplicitSubheapTotalGovernsShardCount) {
  // An explicit total that 2 divides: split 2x2.
  {
    TempHeapPath path("shard_split");
    auto h = Heap::create(path.str(), 2 << 20, two_shard_opts(4));
    EXPECT_EQ(h->shard_count(), 2u);
    EXPECT_EQ(h->nsubheaps(), 4u);
  }
  // An explicit total 2 does not divide: the set shrinks (3 = 3x1 shard)
  // so nsubheaps() stays exactly what the caller asked for.
  {
    TempHeapPath path("shard_shrink");
    auto h = Heap::create(path.str(), 2 << 20, two_shard_opts(3));
    EXPECT_EQ(h->shard_count(), 1u);
    EXPECT_EQ(h->nsubheaps(), 3u);
  }
}

TEST(ShardSet, FixedShard0PolicyPinsEveryAllocation) {
  TempHeapPath path("shard_fixed0");
  Options o = two_shard_opts();
  o.shard_policy = ShardPolicy::kFixed0;
  auto h = Heap::create(path.str(), 4 << 20, o);
  ASSERT_EQ(h->shard_count(), 2u);
  for (int i = 0; i < 16; ++i) {
    NvPtr p;
    std::thread([&] { p = h->alloc(128); }).join();
    ASSERT_FALSE(p.is_null());
    EXPECT_EQ(p.heap_id, h->shard_heap_id(0));
    EXPECT_EQ(h->free(p), FreeResult::kOk);
  }
}

TEST(ShardSet, TxStaysPinnedToOneShardUntilCommit) {
  TempHeapPath path("shard_txpin");
  auto h = Heap::create(path.str(), 4 << 20, two_shard_opts());
  const NvPtr t1 = h->tx_alloc(128, false);
  ASSERT_FALSE(t1.is_null());
  const NvPtr t2 = h->tx_alloc(128, false);
  ASSERT_FALSE(t2.is_null());
  // The micro log recording the transaction lives in one shard; every tx
  // operation must route back there regardless of the home-shard policy.
  EXPECT_EQ(t1.heap_id, t2.heap_id);
  h->tx_commit();
  EXPECT_EQ(h->free(t1), FreeResult::kOk);
  EXPECT_EQ(h->free(t2), FreeResult::kOk);
}

TEST(ShardSet, StatsAndCapacityAggregateAcrossShards) {
  TempHeapPath path("shard_stats");
  auto h = Heap::create(path.str(), 4 << 20, two_shard_opts());
  ASSERT_EQ(h->shard_count(), 2u);
  ASSERT_NE(h->shard(0), nullptr);
  ASSERT_NE(h->shard(1), nullptr);
  EXPECT_EQ(h->user_capacity(),
            h->shard(0)->user_capacity() + h->shard(1)->user_capacity());
  const std::vector<NvPtr> ps = alloc_on_each_shard(*h, 512);
  ASSERT_EQ(ps.size(), 2u);
  EXPECT_EQ(h->stats().live_blocks, 2u);
  for (const NvPtr& p : ps) EXPECT_EQ(h->free(p), FreeResult::kOk);
  EXPECT_EQ(h->stats().live_blocks, 0u);
}

TEST(ShardSet, CreateOverExistingSetFailsWithoutTouchingMembers) {
  TempHeapPath path("shard_create_over");
  const Options o = two_shard_opts();
  std::vector<NvPtr> ps;
  {
    auto h = Heap::create(path.str(), 4 << 20, o);
    ps = alloc_on_each_shard(*h, 256);
    ASSERT_EQ(ps.size(), 2u);
  }
  // The documented contract: create() on an existing head fails — and it
  // must fail BEFORE the stale-member sweep, or the sweep would destroy
  // the members and leave the surviving head permanently unopenable.
  EXPECT_THROW(Heap::create(path.str(), 4 << 20, o), std::system_error);
  EXPECT_TRUE(pmem::Pool::exists(path.str() + ".shard1"));

  // The set survives intact: both shards open and the old data frees.
  auto h = Heap::open(path.str(), o);
  ASSERT_EQ(h->shard_count(), 2u);
  EXPECT_NE(h->shard(0), nullptr);
  EXPECT_NE(h->shard(1), nullptr);
  EXPECT_EQ(h->stats().shards_quarantined, 0u);
  for (const NvPtr& p : ps) EXPECT_EQ(h->free(p), FreeResult::kOk);
  std::string why;
  EXPECT_TRUE(h->check_invariants(&why)) << why;
}

TEST(ShardSet, ExhaustedSingleOpTxAttemptCommitsNothing) {
  TempHeapPath path("shard_tx_empty");
  auto h = Heap::create(path.str(), 4 << 20, two_shard_opts());
  const std::uint64_t before = h->metrics().tx_commits.read();
  // An impossible size walks the exhaustion fallback across every shard;
  // none of the failed single-op attempts may count as a commit.
  EXPECT_TRUE(h->tx_alloc(1ull << 40, true).is_null());
  EXPECT_EQ(h->metrics().tx_commits.read(), before);
  // A successful single-op transaction still commits exactly once.
  const NvPtr p = h->tx_alloc(128, true);
  ASSERT_FALSE(p.is_null());
  EXPECT_EQ(h->metrics().tx_commits.read(), before + 1);
  EXPECT_EQ(h->free(p), FreeResult::kOk);
}

TEST(ShardSet, CrashMidCreateNeverLeavesAnOpenableHead) {
  TempHeapPath path("shard_crash_create");
  const pid_t pid = fork();
  ASSERT_GE(pid, 0);
  if (pid == 0) {
    // Dies right after the member file lands, before the head exists.
    pmem::crash_arm("shard.after_member_create", 1,
                    pmem::CrashAction::kExit);
    auto h = Heap::create(path.str(), 4 << 20, two_shard_opts());
    _exit(0);  // unreachable
  }
  int status = 0;
  waitpid(pid, &status, 0);
  ASSERT_TRUE(WIFEXITED(status));

  // The head is the commit point of the set — without it nothing opens.
  EXPECT_FALSE(pmem::Pool::exists(path.str()));
  EXPECT_THROW(Heap::open(path.str(), two_shard_opts()), Error);

  // Recreating sweeps the stale member and produces a working set.
  auto h = Heap::create(path.str(), 4 << 20, two_shard_opts());
  ASSERT_EQ(h->shard_count(), 2u);
  const std::vector<NvPtr> ps = alloc_on_each_shard(*h, 256);
  ASSERT_EQ(ps.size(), 2u);
  for (const NvPtr& p : ps) EXPECT_EQ(h->free(p), FreeResult::kOk);
  std::string why;
  EXPECT_TRUE(h->check_invariants(&why)) << why;
}

TEST(ShardSet, KilledProcessRecoversEveryShardOnReopen) {
  TempHeapPath path("shard_kill_recover");
  const Options o = two_shard_opts();
  std::uint64_t committed = 0;
  {
    auto h = Heap::create(path.str(), 4 << 20, o);
    const std::vector<NvPtr> ps = alloc_on_each_shard(*h, 512);
    ASSERT_EQ(ps.size(), 2u);  // one committed block per shard
    committed = h->stats().live_blocks;
  }
  const pid_t pid = fork();
  ASSERT_GE(pid, 0);
  if (pid == 0) {
    auto h = Heap::open(path.str(), o);
    // Leave an uncommitted transaction in BOTH shards, then die: each
    // shard's micro log has pending work, so reopening must replay both.
    std::atomic<int> pinned{0};
    std::vector<std::thread> ts;
    for (int i = 0; i < 2; ++i) {
      ts.emplace_back([&] {
        if (!h->tx_alloc(256, false).is_null()) {
          pinned.fetch_add(1);
        }
        for (;;) std::this_thread::sleep_for(std::chrono::seconds(1));
      });
    }
    while (pinned.load() < 2) std::this_thread::yield();
    _exit(0);  // threads still hold their open transactions
  }
  int status = 0;
  waitpid(pid, &status, 0);
  ASSERT_TRUE(WIFEXITED(status));

  // Parallel per-shard recovery frees the uncommitted allocations in both
  // shards and keeps the committed ones.
  auto h = Heap::open(path.str(), o);
  EXPECT_EQ(h->stats().live_blocks, committed);
  std::string why;
  EXPECT_TRUE(h->check_invariants(&why)) << why;
}

TEST(ShardSet, CorruptMemberIsQuarantinedWithoutPoisoningSiblings) {
  TempHeapPath path("shard_quarantine");
  const Options o = two_shard_opts();
  std::vector<NvPtr> ps;
  std::uint64_t head_id = 0;
  {
    auto h = Heap::create(path.str(), 4 << 20, o);
    ps = alloc_on_each_shard(*h, 256);
    ASSERT_EQ(ps.size(), 2u);
    head_id = h->shard_heap_id(0);
  }
  // Destroy the member's superblock AND its shadow page: damage beyond
  // repair quarantines the slot, it must not refuse the whole set.
  clobber_file_prefix(path.str() + ".shard1", 64 << 10);

  auto h = Heap::open(path.str(), o);
  ASSERT_EQ(h->shard_count(), 2u);
  EXPECT_NE(h->shard(0), nullptr);
  EXPECT_EQ(h->shard(1), nullptr);
  EXPECT_EQ(h->shard_heap_id(0), head_id);
  EXPECT_EQ(h->shard_heap_id(1), 0u);
  const auto st = h->stats();
  EXPECT_EQ(st.nshards, 2u);
  EXPECT_EQ(st.shards_quarantined, 1u);
  EXPECT_GE(st.subheaps_quarantined, 1u);
  EXPECT_GE(h->metrics().corruption_detected.read(), 1u);
  // Every sub-heap of the dead slot reads quarantined through the
  // heap-global index.
  const unsigned per = h->nsubheaps() / h->shard_count();
  for (unsigned i = 0; i < per; ++i) {
    EXPECT_EQ(h->subheap_health(per + i), SubheapHealth::kQuarantined);
  }

  // Degraded service: pointers into the dead shard are refused (their id
  // no longer resolves), the healthy shard keeps allocating and freeing.
  for (const NvPtr& p : ps) {
    if (p.heap_id == head_id) {
      EXPECT_EQ(h->free(p), FreeResult::kOk);
    } else {
      EXPECT_EQ(h->free(p), FreeResult::kInvalidPointer);
    }
  }
  const NvPtr fresh = h->alloc(128);
  ASSERT_FALSE(fresh.is_null());
  EXPECT_EQ(fresh.heap_id, head_id);
  EXPECT_EQ(h->free(fresh), FreeResult::kOk);
  // fsck counts the dead slot's sub-heaps as quarantined (checked covers
  // them plus whatever the healthy shard materialized).
  const auto rep = h->fsck();
  EXPECT_GE(rep.checked, per);
  EXPECT_GE(rep.quarantined, per);
  std::string why;
  EXPECT_TRUE(h->check_invariants(&why)) << why;
}

TEST(ShardSet, MemberFromAnotherSetRefusesTheWholeOpen) {
  TempHeapPath path_a("shard_mix_a");
  TempHeapPath path_b("shard_mix_b");
  const Options o = two_shard_opts();
  { auto h = Heap::create(path_a.str(), 4 << 20, o); }
  { auto h = Heap::create(path_b.str(), 4 << 20, o); }
  // Splice B's member into A's set: structurally a perfect pool, but its
  // shard header names a different set — a configuration error, not
  // damage, so the open must refuse rather than quarantine.
  copy_file_over(path_b.str() + ".shard1", path_a.str() + ".shard1");
  try {
    auto h = Heap::open(path_a.str(), o);
    FAIL() << "mixed shard set must not open";
  } catch (const Error& e) {
    EXPECT_EQ(e.poseidon_code(), ErrorCode::kShardMismatch);
  }
}

TEST(ShardSet, OpeningAMemberFileDirectlyIsRefused) {
  TempHeapPath path("shard_open_member");
  const Options o = two_shard_opts();
  { auto h = Heap::create(path.str(), 4 << 20, o); }
  try {
    auto h = Heap::open(path.str() + ".shard1", o);
    FAIL() << "member files are not heads";
  } catch (const Error& e) {
    EXPECT_EQ(e.poseidon_code(), ErrorCode::kShardMismatch);
  }
  // The head still opens fine afterwards.
  auto h = Heap::open(path.str(), o);
  EXPECT_EQ(h->shard_count(), 2u);
}

TEST(Registry, ConversionsStayValidUnderConcurrentOpenClose) {
  // Writers churn whole heaps open/closed while readers hammer the
  // wait-free conversion paths; the RCU snapshot must never hand out a
  // heap mid-teardown or crash on a stale interval.
  constexpr int kWriters = 3, kCycles = 40;
  std::atomic<bool> stop{false};
  std::atomic<std::uint64_t> hits{0};

  std::thread reader([&] {
    int local = 0;
    while (!stop.load(std::memory_order_acquire)) {
      // Misses must stay misses: the stack and a bogus id belong to no heap.
      if (registry::by_address(&local) != nullptr) hits.fetch_add(1);
      if (registry::by_id(0xdeadbeefdeadbeefULL) != nullptr) hits.fetch_add(1);
    }
  });

  std::vector<std::thread> writers;
  std::atomic<int> failures{0};
  for (int w = 0; w < kWriters; ++w) {
    writers.emplace_back([&, w] {
      TempHeapPath path("reg_stress_" + std::to_string(w));
      for (int c = 0; c < kCycles; ++c) {
        Options o = small_opts(1);
        o.nshards = 1;
        auto h = Heap::create(path.str(), 1 << 20, o);
        const NvPtr p = h->alloc(64);
        if (p.is_null()) { failures.fetch_add(1); break; }
        void* r = h->raw(p);
        if (registry::by_id(p.heap_id) != h.get()) failures.fetch_add(1);
        if (registry::by_address(r) != h.get()) failures.fetch_add(1);
        h.reset();  // unregisters, then unmaps
        pmem::Pool::unlink(path.str());
      }
    });
  }
  for (auto& t : writers) t.join();
  stop.store(true, std::memory_order_release);
  reader.join();
  EXPECT_EQ(failures.load(), 0);
  EXPECT_EQ(hits.load(), 0u);
}

}  // namespace
}  // namespace poseidon::core
