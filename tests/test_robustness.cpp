// Robustness against malformed inputs and hostile on-disk state: truncated
// and corrupted pool files, corrupted undo-log fields, bad punch-hole
// arguments, null/garbage API inputs, and degenerate workload parameters.
#include <gtest/gtest.h>

#include <unistd.h>

#include <cstring>
#include <sstream>

#include "baselines/makalu_like/makalu_heap.hpp"
#include "baselines/pmdk_like/pmdk_heap.hpp"
#include "core/c_api.h"
#include "core/heap.hpp"
#include "core/undo_log.hpp"
#include "tests/test_util.hpp"
#include "workloads/kernels.hpp"
#include "workloads/trace.hpp"
#include "workloads/zipf.hpp"

namespace poseidon {
namespace {

using core::Heap;
using test::small_opts;
using test::TempHeapPath;

TEST(Robustness, TruncatedPoolFileIsRejected) {
  TempHeapPath path("truncated");
  {
    auto h = Heap::create(path.str(), 1 << 20, small_opts());
    (void)h->alloc(64);
  }
  // Chop the file: the stored file_size no longer matches.
  ASSERT_EQ(truncate(path.c_str(), 8192), 0);
  EXPECT_THROW(Heap::open(path.str(), small_opts()), std::runtime_error);
}

TEST(Robustness, VersionAndMagicAreChecked) {
  TempHeapPath path("badmagic");
  {
    auto h = Heap::create(path.str(), 1 << 20, small_opts());
  }
  {
    // Flip one magic byte: since the superblock shadow (layout v4) this is
    // repairable corruption, not a fatal mismatch.
    pmem::Pool p = pmem::Pool::open(path.str());
    p.data()[0] ^= std::byte{0x1};
  }
  {
    auto h = Heap::open(path.str(), small_opts());
    EXPECT_GE(h->metrics().corruption_detected.read(), 1u);
    EXPECT_FALSE(h->alloc(64).is_null());
  }
  {
    // Corrupt the primary AND its shadow: now nothing vouches for the
    // file being a pool at all.
    pmem::Pool p = pmem::Pool::open(path.str());
    p.data()[0] ^= std::byte{0x1};
    p.data()[core::super_shadow_off()] ^= std::byte{0x1};
  }
  EXPECT_THROW(Heap::open(path.str(), small_opts()), std::runtime_error);
}

TEST(Robustness, BaselineOpensRejectForeignFiles) {
  TempHeapPath path("foreign");
  {
    // A Poseidon heap is not a PMDK-like pool, nor a Makalu-like one.
    auto h = Heap::create(path.str(), 1 << 20, small_opts());
  }
  EXPECT_THROW(baselines::PmdkHeap::open(path.str()), std::runtime_error);
  EXPECT_THROW(baselines::MakaluHeap::open(path.str()), std::runtime_error);
}

TEST(Robustness, PunchHoleHandlesMisalignedRange) {
  // fallocate(PUNCH_HOLE) accepts arbitrary byte ranges: whole blocks are
  // deallocated and partial blocks zeroed, so the range reads as zero
  // either way and neighbours are preserved.
  TempHeapPath path("badpunch");
  pmem::Pool p = pmem::Pool::create(path.str(), 64 << 10);
  std::memset(p.data(), 0x7e, 64 << 10);
  EXPECT_TRUE(p.punch_hole(100, 4096));
  EXPECT_EQ(p.data()[99], std::byte{0x7e});
  EXPECT_EQ(p.data()[100], std::byte{0});
  EXPECT_EQ(p.data()[100 + 4095], std::byte{0});
  EXPECT_EQ(p.data()[100 + 4096], std::byte{0x7e});
}

TEST(Robustness, UndoReplayIgnoresCorruptedLength) {
  // A crazy `len` in a log entry must not make replay scribble: the
  // valid-prefix scan stops at the first implausible entry.
  struct Arena {
    core::UndoLogT<4> log;
    std::uint64_t words[8];
  } arena{};
  auto* base = reinterpret_cast<std::byte*>(&arena);
  arena.words[0] = 1;
  {
    core::UndoLogger undo(arena.log, base, true);
    undo.save_obj(arena.words[0]);
    arena.words[0] = 2;
    // Corrupt the entry length beyond the format maximum.
    arena.log.entries[0].len = 5000;
  }
  core::UndoLogger::replay(arena.log, base);
  EXPECT_EQ(arena.words[0], 2u) << "implausible entry skipped, not applied";
}

TEST(Robustness, UndoReplayIgnoresForeignGeneration) {
  struct Arena {
    core::UndoLogT<4> log;
    std::uint64_t words[8];
  } arena{};
  auto* base = reinterpret_cast<std::byte*>(&arena);
  arena.words[0] = 7;
  {
    core::UndoLogger undo(arena.log, base, true);
    undo.save_obj(arena.words[0]);
    arena.words[0] = 9;
    arena.log.entries[0].gen += 40;  // entry claims a future generation
  }
  core::UndoLogger::replay(arena.log, base);
  EXPECT_EQ(arena.words[0], 9u);
}

TEST(Robustness, BaselineFreesOfGarbagePointersAreIgnored) {
  TempHeapPath pm_path("pm_garbage"), mk_path("mk_garbage");
  auto pm = baselines::PmdkHeap::create(pm_path.str(), 4 << 20);
  auto mk = baselines::MakaluHeap::create(mk_path.str(), 4 << 20);
  int local = 0;
  pm->free(nullptr);
  pm->free(&local);  // outside the pool: ignored, not crashed
  mk->free(nullptr);
  mk->free(&local);
  // Heaps still work afterwards.
  EXPECT_NE(pm->alloc(64), nullptr);
  EXPECT_NE(mk->alloc(64), nullptr);
}

TEST(Robustness, CApiTxCommitIdempotent) {
  TempHeapPath path("capi_commit");
  heap_t* heap = poseidon_init(path.c_str(), 1 << 20);
  ASSERT_NE(heap, nullptr);
  poseidon_tx_commit(heap);  // no open tx: no-op
  const nvmptr_t a = poseidon_tx_alloc(heap, 64, false);
  ASSERT_FALSE(nvmptr_is_null(a));
  poseidon_tx_commit(heap);
  poseidon_tx_commit(heap);  // double commit: no-op
  EXPECT_EQ(poseidon_free(heap, a), 0) << "committed allocation stays live";
  poseidon_finish(heap);
}

TEST(Robustness, TraceReplayDetectsCorruptTraces) {
  std::stringstream overwrite(
      "a 0 64\n"
      "a 0 64\n");  // slot 0 overwritten while full
  const auto t1 = workloads::Trace::parse(overwrite);
  iface::AllocatorConfig cfg;
  cfg.capacity = 4ull << 20;
  auto alloc = iface::make_allocator(iface::AllocatorKind::kPoseidon, cfg);
  EXPECT_THROW(t1.replay(*alloc), std::logic_error);

  std::stringstream empty_free("f 3\n");  // free of a never-filled slot
  const auto t2 = workloads::Trace::parse(empty_free);
  auto alloc2 = iface::make_allocator(iface::AllocatorKind::kPoseidon, cfg);
  EXPECT_THROW(t2.replay(*alloc2), std::logic_error);
}

TEST(Robustness, ZipfDegenerateParameters) {
  workloads::ZipfGenerator one(1, 0.99, 3);
  for (int i = 0; i < 1000; ++i) {
    EXPECT_EQ(one.next_rank(), 0u);
    EXPECT_EQ(one.next_scrambled(), 0u);
  }
  workloads::ZipfGenerator two(2, 0.5, 3);
  for (int i = 0; i < 1000; ++i) EXPECT_LT(two.next_rank(), 2u);
}

TEST(Robustness, KruskalOtherOrdersFitTheBuffers) {
  alignas(8) unsigned char bufs[3][workloads::kKruskalBufBytes];
  for (unsigned order = 2; order <= 6; ++order) {
    const std::uint64_t w =
        workloads::kruskal_mst(bufs[0], bufs[1], bufs[2], order, order);
    EXPECT_GT(w, 0u) << order;
    EXPECT_LE(w, (order - 1) * 1000ull) << order;
  }
}

TEST(Robustness, NQueensDegenerateBoards) {
  unsigned char board[16];
  EXPECT_EQ(workloads::nqueens_solve(board, 1), 1u);
  EXPECT_EQ(workloads::nqueens_solve(board, 2), 0u);
  EXPECT_EQ(workloads::nqueens_solve(board, 3), 0u);
}

TEST(Robustness, HeapSurvivesUserScribblingEverywhere) {
  // Scribble over the ENTIRE user region (the worst heap overflow an
  // application can produce), then verify metadata integrity and that the
  // allocator keeps functioning.
  TempHeapPath path("scribble");
  auto h = Heap::create(path.str(), 1 << 20, small_opts());
  core::NvPtr p = h->alloc(4096);
  ASSERT_FALSE(p.is_null());
  auto* user_base = static_cast<char*>(h->raw(core::NvPtr::make(
      h->heap_id(), 0, 0)));
  std::memset(user_base, 0xa5, h->user_capacity());
  EXPECT_TRUE(h->check_invariants()) << "metadata untouched by user writes";
  EXPECT_EQ(h->free(p), core::FreeResult::kOk);
  core::NvPtr q = h->alloc(h->user_capacity());
  EXPECT_FALSE(q.is_null());
}

}  // namespace
}  // namespace poseidon
