// FAST-FAIR B+-tree tests: model equivalence, splits across levels,
// deletes, scans, exchange, concurrency — parameterized over all three
// allocators (the tree must behave identically on any of them).
#include <gtest/gtest.h>

#include <map>
#include <thread>
#include <vector>

#include "alloc_iface/allocator.hpp"
#include "common/rng.hpp"
#include "index/fastfair.hpp"

namespace poseidon::index {
namespace {

class BtreeOverAllocators
    : public ::testing::TestWithParam<iface::AllocatorKind> {
 protected:
  void SetUp() override {
    iface::AllocatorConfig cfg;
    cfg.capacity = 64ull << 20;
    alloc = iface::make_allocator(GetParam(), cfg);
    tree = std::make_unique<FastFairTree>(alloc.get());
  }

  std::unique_ptr<iface::PAllocator> alloc;
  std::unique_ptr<FastFairTree> tree;
};

TEST_P(BtreeOverAllocators, InsertSearchBasic) {
  EXPECT_TRUE(tree->insert(10, 100));
  EXPECT_TRUE(tree->insert(5, 50));
  EXPECT_TRUE(tree->insert(20, 200));
  EXPECT_FALSE(tree->insert(10, 999)) << "duplicate insert rejected";
  EXPECT_EQ(tree->search(10), 100u);
  EXPECT_EQ(tree->search(5), 50u);
  EXPECT_EQ(tree->search(20), 200u);
  EXPECT_FALSE(tree->search(7).has_value());
}

TEST_P(BtreeOverAllocators, SplitsGrowTheTree) {
  // Enough sequential keys to force multiple levels of splits.
  for (std::uint64_t k = 1; k <= 5000; ++k) {
    ASSERT_TRUE(tree->insert(k, k * 2)) << k;
  }
  EXPECT_GT(tree->height(), 2u);
  for (std::uint64_t k = 1; k <= 5000; ++k) {
    ASSERT_EQ(tree->search(k), k * 2) << k;
  }
  std::string why;
  EXPECT_TRUE(tree->check(&why)) << why;
}

TEST_P(BtreeOverAllocators, ReverseAndShuffledInserts) {
  Xoshiro256 rng(3);
  std::vector<std::uint64_t> keys;
  for (std::uint64_t k = 1; k <= 3000; ++k) keys.push_back(k * 7);
  for (std::size_t i = keys.size(); i-- > 1;) {
    std::swap(keys[i], keys[rng.next_below(i + 1)]);
  }
  for (const auto k : keys) ASSERT_TRUE(tree->insert(k, ~k));
  for (const auto k : keys) ASSERT_EQ(tree->search(k), ~k);
  std::string why;
  EXPECT_TRUE(tree->check(&why)) << why;
}

TEST_P(BtreeOverAllocators, UpdateAndExchange) {
  ASSERT_TRUE(tree->insert(42, 1));
  EXPECT_TRUE(tree->update(42, 2));
  EXPECT_EQ(tree->search(42), 2u);
  const auto old = tree->exchange(42, 3);
  ASSERT_TRUE(old.has_value());
  EXPECT_EQ(*old, 2u);
  EXPECT_EQ(tree->search(42), 3u);
  EXPECT_FALSE(tree->update(43, 9));
  EXPECT_FALSE(tree->exchange(43, 9).has_value());
}

TEST_P(BtreeOverAllocators, RemoveAndReinsert) {
  for (std::uint64_t k = 1; k <= 1000; ++k) tree->insert(k, k);
  for (std::uint64_t k = 1; k <= 1000; k += 2) {
    ASSERT_TRUE(tree->remove(k));
  }
  EXPECT_FALSE(tree->remove(1)) << "already removed";
  for (std::uint64_t k = 1; k <= 1000; ++k) {
    if (k % 2 == 1) {
      ASSERT_FALSE(tree->search(k).has_value());
    } else {
      ASSERT_EQ(tree->search(k), k);
    }
  }
  for (std::uint64_t k = 1; k <= 1000; k += 2) {
    ASSERT_TRUE(tree->insert(k, k + 1));
  }
  EXPECT_EQ(tree->search(999), 1000u);
  std::string why;
  EXPECT_TRUE(tree->check(&why)) << why;
}

TEST_P(BtreeOverAllocators, ScanReturnsSortedRange) {
  for (std::uint64_t k = 1; k <= 500; ++k) tree->insert(k * 10, k);
  std::uint64_t vals[64];
  const std::size_t got = tree->scan(1000, 20, vals);
  ASSERT_EQ(got, 20u);
  for (std::size_t i = 0; i < got; ++i) {
    EXPECT_EQ(vals[i], 100 + i);  // keys 1000,1010,... -> values 100,101,...
  }
  // Scan past the end is clipped.
  const std::size_t tail = tree->scan(4950, 64, vals);
  EXPECT_EQ(tail, 6u);
}

TEST_P(BtreeOverAllocators, ModelEquivalenceUnderChurn) {
  Xoshiro256 rng(17);
  std::map<std::uint64_t, std::uint64_t> model;
  for (int i = 0; i < 30000; ++i) {
    const std::uint64_t k = 1 + rng.next_below(5000);
    switch (rng.next_below(4)) {
      case 0:
      case 1: {
        const bool t = tree->insert(k, k ^ 0xabc);
        const bool m = model.emplace(k, k ^ 0xabc).second;
        ASSERT_EQ(t, m) << "insert divergence at step " << i;
        break;
      }
      case 2: {
        const auto t = tree->search(k);
        const auto m = model.find(k);
        ASSERT_EQ(t.has_value(), m != model.end()) << i;
        if (t) ASSERT_EQ(*t, m->second);
        break;
      }
      default: {
        const bool t = tree->remove(k);
        const bool m = model.erase(k) > 0;
        ASSERT_EQ(t, m) << "remove divergence at step " << i;
      }
    }
  }
  std::string why;
  EXPECT_TRUE(tree->check(&why)) << why;
}

INSTANTIATE_TEST_SUITE_P(Allocators, BtreeOverAllocators,
                         ::testing::Values(iface::AllocatorKind::kPoseidon,
                                           iface::AllocatorKind::kPmdkLike,
                                           iface::AllocatorKind::kMakaluLike),
                         [](const auto& info) {
                           std::string n = iface::kind_name(info.param);
                           for (char& c : n) {
                             if (c == '-') c = '_';
                           }
                           return n;
                         });

TEST(BtreeConcurrent, DisjointWritersSharedReaders) {
  iface::AllocatorConfig cfg;
  cfg.capacity = 64ull << 20;
  cfg.nlanes = 4;
  auto alloc = iface::make_allocator(iface::AllocatorKind::kPoseidon, cfg);
  FastFairTree tree(alloc.get());

  constexpr int kWriters = 4;
  constexpr std::uint64_t kPerWriter = 20000;
  std::vector<std::thread> threads;
  for (int w = 0; w < kWriters; ++w) {
    threads.emplace_back([&, w] {
      for (std::uint64_t i = 0; i < kPerWriter; ++i) {
        const std::uint64_t key = i * kWriters + w + 1;
        ASSERT_TRUE(tree.insert(key, key * 3));
        if (i % 5 == 0) (void)tree.search((i * 2654435761u) % 100000 + 1);
      }
    });
  }
  for (auto& t : threads) t.join();

  for (std::uint64_t key = 1; key <= kWriters * kPerWriter; ++key) {
    ASSERT_EQ(tree.search(key), key * 3) << key;
  }
  std::string why;
  EXPECT_TRUE(tree.check(&why)) << why;
}

TEST(BtreeConcurrent, ConcurrentExchangesNeverLoseValues) {
  iface::AllocatorConfig cfg;
  cfg.capacity = 32ull << 20;
  auto alloc = iface::make_allocator(iface::AllocatorKind::kPoseidon, cfg);
  FastFairTree tree(alloc.get());
  for (std::uint64_t k = 1; k <= 100; ++k) tree.insert(k, 0);

  // Each exchanged-out value is observed exactly once across threads.
  constexpr int kThreads = 4, kOps = 10000;
  std::vector<std::vector<std::uint64_t>> seen(kThreads);
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      Xoshiro256 rng(t + 1);
      for (int i = 0; i < kOps; ++i) {
        const std::uint64_t k = 1 + rng.next_below(100);
        const std::uint64_t token = (static_cast<std::uint64_t>(t + 1) << 32) |
                                    static_cast<std::uint64_t>(i + 1);
        const auto old = tree.exchange(k, token);
        ASSERT_TRUE(old.has_value());
        if (*old != 0) seen[t].push_back(*old);
      }
    });
  }
  for (auto& th : threads) th.join();

  std::set<std::uint64_t> all;
  std::size_t total = 0;
  for (const auto& v : seen) {
    total += v.size();
    all.insert(v.begin(), v.end());
  }
  EXPECT_EQ(all.size(), total) << "an exchanged value was returned twice";
}

}  // namespace
}  // namespace poseidon::index
