// Shared test utilities: unique heap paths under /dev/shm with automatic
// cleanup, and common option presets.
#pragma once

#include <unistd.h>

#include <atomic>
#include <string>

#include "core/heap.hpp"
#include "pmem/pool.hpp"

namespace poseidon::test {

// A unique pool path removed when the object goes out of scope.
class TempHeapPath {
 public:
  explicit TempHeapPath(const std::string& tag) {
    static std::atomic<unsigned> seq{0};
    path_ = "/dev/shm/poseidon_test_" + tag + "_" +
            std::to_string(::getpid()) + "_" +
            std::to_string(seq.fetch_add(1, std::memory_order_relaxed)) +
            ".heap";
    unlink_all();
  }
  ~TempHeapPath() { unlink_all(); }
  TempHeapPath(const TempHeapPath&) = delete;
  TempHeapPath& operator=(const TempHeapPath&) = delete;

  const std::string& str() const noexcept { return path_; }
  const char* c_str() const noexcept { return path_.c_str(); }

 private:
  // The head file plus every possible shard-member file (path + ".shardN"):
  // a multi-shard heap leaves members next to the head.
  void unlink_all() const noexcept {
    pmem::Pool::unlink(path_);
    for (unsigned i = 1; i < core::kMaxShards; ++i) {
      pmem::Pool::unlink(path_ + ".shard" + std::to_string(i));
    }
    pmem::Pool::unlink(path_ + ".svc");  // allocation-service segment
  }

  std::string path_;
};

// Small single-subheap heap with protection off: the workhorse config for
// unit tests (protection and multi-subheap behaviour get their own tests).
inline core::Options small_opts(unsigned nsubheaps = 1) {
  core::Options o;
  o.nsubheaps = nsubheaps;
  o.protect = mpk::ProtectMode::kNone;
  return o;
}

}  // namespace poseidon::test
