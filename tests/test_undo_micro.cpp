// Protocol tests for the undo log and the micro log, including simulated
// power failures at every interesting boundary.
#include <gtest/gtest.h>

#include <cstring>
#include <memory>

#include "core/micro_log.hpp"
#include "core/undo_log.hpp"
#include "pmem/persist.hpp"
#include "pmem/sim_domain.hpp"

namespace poseidon::core {
namespace {

// A fake metadata arena: an undo log plus some payload words it protects.
struct Arena {
  UndoLogT<16> log;
  std::uint64_t words[64];
};

struct ArenaFixture : ::testing::Test {
  void SetUp() override {
    arena = static_cast<Arena*>(::aligned_alloc(4096, sizeof(Arena) + 4096));
    std::memset(arena, 0, sizeof(Arena));
  }
  void TearDown() override { ::free(arena); }

  std::byte* base() { return reinterpret_cast<std::byte*>(arena); }
  UndoLogger logger(bool enabled = true) {
    return UndoLogger(arena->log, base(), enabled);
  }

  Arena* arena = nullptr;
};

TEST_F(ArenaFixture, CommitKeepsNewValues) {
  arena->words[0] = 1;
  auto undo = logger();
  undo.save_obj(arena->words[0]);
  arena->words[0] = 2;
  undo.commit();
  UndoLogger::replay(arena->log, base());  // empty after commit: no-op
  EXPECT_EQ(arena->words[0], 2u);
}

TEST_F(ArenaFixture, RollbackRestoresOldValues) {
  arena->words[0] = 10;
  arena->words[1] = 20;
  auto undo = logger();
  undo.save(&arena->words[0], 16);
  arena->words[0] = 11;
  arena->words[1] = 21;
  undo.rollback();
  EXPECT_EQ(arena->words[0], 10u);
  EXPECT_EQ(arena->words[1], 20u);
}

TEST_F(ArenaFixture, ReplayRestoresUncommitted) {
  arena->words[5] = 50;
  auto undo = logger();
  undo.save_obj(arena->words[5]);
  arena->words[5] = 55;
  // No commit: simulate the crash by just replaying.
  UndoLogger::replay(arena->log, base());
  EXPECT_EQ(arena->words[5], 50u);
}

TEST_F(ArenaFixture, ReplayIsIdempotent) {
  arena->words[3] = 30;
  auto undo = logger();
  undo.save_obj(arena->words[3]);
  arena->words[3] = 33;
  UndoLogger::replay(arena->log, base());
  UndoLogger::replay(arena->log, base());
  UndoLogger::replay(arena->log, base());
  EXPECT_EQ(arena->words[3], 30u);
}

TEST_F(ArenaFixture, OldestValueWinsWhenLoggedTwice) {
  arena->words[0] = 1;
  auto undo = logger();
  undo.save_obj(arena->words[0]);
  arena->words[0] = 2;
  undo.save_obj(arena->words[0]);  // duplicate save of newer value
  arena->words[0] = 3;
  UndoLogger::replay(arena->log, base());
  EXPECT_EQ(arena->words[0], 1u);  // pre-operation state
}

TEST_F(ArenaFixture, GenerationIsolatesOldEntries) {
  arena->words[0] = 1;
  {
    auto undo = logger();
    undo.save_obj(arena->words[0]);
    arena->words[0] = 2;
    undo.commit();
  }
  // A stale entry from the previous generation must not be replayed.
  arena->words[0] = 3;
  UndoLogger::replay(arena->log, base());
  EXPECT_EQ(arena->words[0], 3u);
}

TEST_F(ArenaFixture, CorruptEntryChecksumStopsReplay) {
  arena->words[0] = 1;
  arena->words[1] = 2;
  auto undo = logger();
  undo.save_obj(arena->words[0]);
  arena->words[0] = 9;
  undo.save_obj(arena->words[1]);
  arena->words[1] = 9;
  // Corrupt the *first* entry: replay must treat the log as empty from
  // there (valid-prefix rule), so nothing gets restored.
  arena->log.entries[0].data[0] ^= 0xff;
  UndoLogger::replay(arena->log, base());
  EXPECT_EQ(arena->words[0], 9u);
  EXPECT_EQ(arena->words[1], 9u);
}

TEST_F(ArenaFixture, DisabledLoggerDoesNothing) {
  arena->words[0] = 1;
  auto undo = logger(/*enabled=*/false);
  undo.save_obj(arena->words[0]);
  arena->words[0] = 2;
  undo.rollback();  // no-op when disabled
  EXPECT_EQ(arena->words[0], 2u);
  EXPECT_EQ(undo.used(), 0u);
}

TEST_F(ArenaFixture, SimulatedCrashMidOperation) {
  // With the simulator active, even *unflushed* undo entries must never
  // lead to wrong recovery: the protocol fences each saved entry (seal)
  // before the first mutation of its range.  Pinned to kCacheLineFlush so
  // the loss model holds whatever domain the process runs under.
  arena->words[0] = 100;
  pmem::SimDomain sim(arena, sizeof(Arena),
                      pmem::PersistDomain::kCacheLineFlush);
  sim.checkpoint();
  {
    auto undo = logger();
    undo.save_obj(arena->words[0]);
    undo.seal();  // the entry's flush is only durable after this fence
    arena->words[0] = 200;  // plain store: dirty, not persisted
  }
  sim.crash(7, /*survive_prob=*/0.0);  // drop all unflushed lines
  // The in-place mutation was unflushed -> lost; entry was persisted.
  UndoLogger::replay(arena->log, base());
  EXPECT_EQ(arena->words[0], 100u);
}

TEST_F(ArenaFixture, SimulatedCrashAfterPersistedMutation) {
  arena->words[0] = 100;
  pmem::SimDomain sim(arena, sizeof(Arena),
                      pmem::PersistDomain::kCacheLineFlush);
  sim.checkpoint();
  {
    auto undo = logger();
    undo.save_obj(arena->words[0]);
    pmem::nv_store(arena->words[0], std::uint64_t{200});
    pmem::persist(&arena->words[0], 8);
    // crash before commit
  }
  sim.crash(8, 0.0);
  UndoLogger::replay(arena->log, base());
  EXPECT_EQ(arena->words[0], 100u);  // uncommitted -> rolled back
}

TEST(MicroLog, AppendTruncateRoundTrip) {
  MicroLog log{};
  EXPECT_EQ(micro_count(log), 0u);
  const NvPtr a = NvPtr::make(1, 0, 32);
  const NvPtr b = NvPtr::make(1, 0, 64);
  EXPECT_TRUE(micro_append(log, a));
  EXPECT_TRUE(micro_append(log, b));
  EXPECT_EQ(micro_count(log), 2u);
  EXPECT_EQ(log.entries[0], a);
  EXPECT_EQ(log.entries[1], b);
  micro_truncate(log);
  EXPECT_EQ(micro_count(log), 0u);
}

TEST(MicroLog, RejectsWhenFull) {
  MicroLog log{};
  for (std::size_t i = 0; i < kMicroCap; ++i) {
    EXPECT_TRUE(micro_append(log, NvPtr::make(1, 0, i * 32)));
  }
  EXPECT_FALSE(micro_append(log, NvPtr::make(1, 0, 9999)));
  EXPECT_EQ(micro_count(log), kMicroCap);
}

TEST(MicroLog, CountClampedAgainstGarbage) {
  MicroLog log{};
  log.count = kMicroCap + 1000;  // corrupted count must not overrun
  EXPECT_EQ(micro_count(log), kMicroCap);
}

TEST(MicroLog, EntryDurableBeforeCount) {
  // Under the simulator: if the count survived a crash, the entry did too
  // (entry is persisted before the count).
  alignas(4096) static MicroLog log;
  std::memset(&log, 0, sizeof(log));
  pmem::SimDomain sim(&log, sizeof(log),
                      pmem::PersistDomain::kCacheLineFlush);
  micro_append(log, NvPtr::make(9, 1, 128));
  sim.crash(3, 0.0);
  if (log.count == 1) {
    EXPECT_EQ(log.entries[0], NvPtr::make(9, 1, 128));
  }
  // Both were persisted by micro_append, so in fact:
  EXPECT_EQ(log.count, 1u);
}

}  // namespace
}  // namespace poseidon::core
