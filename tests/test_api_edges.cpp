// API edge cases and contract details: option handling on open, interior
// raw pointers, alignment guarantees, zipf skew ordering, and protection
// mode interplay with the public API.
#include <gtest/gtest.h>

#include <cstddef>
#include <cstring>
#include <thread>
#include <vector>

#include "common/error.hpp"
#include "core/c_api.h"
#include "core/heap.hpp"
#include "tests/test_util.hpp"
#include "workloads/zipf.hpp"

namespace poseidon {
namespace {

using core::FreeResult;
using core::Heap;
using core::NvPtr;
using test::small_opts;
using test::TempHeapPath;

TEST(ApiEdges, OpenUsesPersistedGeometryNotOptions) {
  TempHeapPath path("open_geometry");
  {
    auto h = Heap::create(path.str(), 2 << 20, small_opts(4));
    EXPECT_EQ(h->nsubheaps(), 4u);
  }
  // Different nsubheaps in the open options must not reinterpret the file.
  core::Options other = small_opts(1);
  auto h = Heap::open(path.str(), other);
  EXPECT_EQ(h->nsubheaps(), 4u) << "sub-heap count is on-media state";
}

TEST(ApiEdges, InteriorRawPointerRoundTripsButNeverFrees) {
  TempHeapPath path("interior");
  auto h = Heap::create(path.str(), 2 << 20, small_opts());
  NvPtr p = h->alloc(256);
  auto* base = static_cast<char*>(h->raw(p));
  // from_raw of an interior address yields an interior persistent pointer:
  // usable for address arithmetic, rejected by free's validation.
  const NvPtr interior = h->from_raw(base + 64);
  EXPECT_FALSE(interior.is_null());
  EXPECT_EQ(interior.offset(), p.offset() + 64);
  EXPECT_EQ(h->raw(interior), base + 64);
  EXPECT_NE(h->free(interior), FreeResult::kOk);
  EXPECT_EQ(h->free(p), FreeResult::kOk);
}

TEST(ApiEdges, BlocksAreNaturallyAligned) {
  TempHeapPath path("align");
  auto h = Heap::create(path.str(), 8 << 20, small_opts());
  for (const std::uint64_t size : {1u, 32u, 33u, 100u, 4096u, 100000u}) {
    NvPtr p = h->alloc(size);
    ASSERT_FALSE(p.is_null());
    const std::uint64_t block = round_up_pow2(size < 32 ? 32 : size);
    // Buddy blocks are size-aligned within the user region; the virtual
    // address inherits that up to the page-aligned region base.
    EXPECT_EQ(p.offset() % block, 0u) << size;
    const std::uint64_t valign = block < 4096 ? block : 4096;
    EXPECT_EQ(reinterpret_cast<std::uintptr_t>(h->raw(p)) % valign, 0u)
        << size;
    h->free(p);
  }
}

TEST(ApiEdges, FallbackRespectsTxPinButNotSingleton) {
  // Exhaust sub-heap 0; singleton allocations spill, tx allocations fail.
  TempHeapPath path("fallback_tx");
  core::Options o = small_opts(2);
  o.policy = core::SubheapPolicy::kFixed0;
  o.nshards = 1;  // white-box: both sub-heaps must share one pool shard
  auto h = Heap::create(path.str(), 2 << 20, o);
  const std::uint64_t per = h->user_capacity() / 2;
  NvPtr whole = h->alloc(per);
  ASSERT_FALSE(whole.is_null());
  ASSERT_EQ(whole.subheap(), 0u);
  // Singleton spills into sub-heap 1.
  NvPtr spilled = h->alloc(4096);
  ASSERT_FALSE(spilled.is_null());
  EXPECT_EQ(spilled.subheap(), 1u);
  // Transactions never fall back: the pin scan takes the first free
  // tx_mu (sub-heap 0 here) without regard to occupancy, so the
  // allocation fails even though sub-heap 1 has space.
  NvPtr t = h->tx_alloc(4096, true);
  EXPECT_TRUE(t.is_null());
  EXPECT_TRUE(h->check_invariants());
}

TEST(ApiEdges, ProtectionModeVisibleThroughApi) {
  TempHeapPath path("prot_api");
  core::Options o = small_opts();
  o.protect = mpk::ProtectMode::kMprotect;
  auto h = Heap::create(path.str(), 1 << 20, o);
  EXPECT_EQ(h->protect_mode(), mpk::ProtectMode::kMprotect);
  // The full API works under real protection (windows open/close).
  NvPtr p = h->alloc(128);
  ASSERT_FALSE(p.is_null());
  std::memset(h->raw(p), 1, 128);  // user data is always writable
  NvPtr t1 = h->tx_alloc(64, false);
  NvPtr t2 = h->tx_alloc(64, true);
  EXPECT_FALSE(t1.is_null() || t2.is_null());
  h->set_root(p);
  EXPECT_EQ(h->free(t1), FreeResult::kOk);
  EXPECT_EQ(h->free(t2), FreeResult::kOk);
  EXPECT_TRUE(h->check_invariants());
}

TEST(ApiEdges, CApiNvmptrOfInteriorAndForeign) {
  TempHeapPath path("capi_edges");
  heap_t* heap = poseidon_init(path.c_str(), 1 << 20);
  ASSERT_NE(heap, nullptr);
  nvmptr_t p = poseidon_alloc(heap, 64);
  char* raw = static_cast<char*>(poseidon_get_rawptr(p));
  // Interior conversion works; freeing the interior pointer is rejected.
  nvmptr_t mid = poseidon_get_nvmptr(raw + 32);
  EXPECT_FALSE(nvmptr_is_null(mid));
  EXPECT_NE(poseidon_free(heap, mid), 0);
  // A stack pointer maps to no heap.
  int local = 0;
  EXPECT_TRUE(nvmptr_is_null(poseidon_get_nvmptr(&local)));
  // Raw resolution of a null/garbage nvmptr is null.
  EXPECT_EQ(poseidon_get_rawptr(nvmptr_null()), nullptr);
  nvmptr_t garbage{0x1234, 0x5678};
  EXPECT_EQ(poseidon_get_rawptr(garbage), nullptr);
  EXPECT_EQ(poseidon_free(heap, p), 0);
  poseidon_finish(heap);
}

TEST(ApiEdges, SameProcessDoubleOpenReturnsHeapBusy) {
  // Historically a second open of the same pool in one process produced two
  // live mappings fighting over the same metadata (UB); it is now a typed
  // kHeapBusy at every API level.
  TempHeapPath path("double_open");
  auto h = Heap::create(path.str(), 1 << 20, small_opts());
  try {
    auto h2 = Heap::open(path.str(), small_opts());
    FAIL() << "second in-process open must throw";
  } catch (const Error& e) {
    EXPECT_EQ(e.poseidon_code(), ErrorCode::kHeapBusy) << e.what();
  }
  // C API surface: NULL handle, typed code, actionable message.
  EXPECT_EQ(poseidon_init(path.c_str(), 1 << 20), nullptr);
  EXPECT_EQ(poseidon_error_code(), POSEIDON_ERR_HEAP_BUSY);
  ASSERT_NE(poseidon_last_error(), nullptr);
  // The surviving handle is untouched by the bounced opens.
  NvPtr p = h->alloc(64);
  ASSERT_FALSE(p.is_null());
  EXPECT_EQ(h->free(p), FreeResult::kOk);
  // Close-then-reopen works: the close released lock and registration.
  h.reset();
  auto h3 = Heap::open(path.str(), small_opts());
  EXPECT_TRUE(h3->check_invariants());
}

TEST(ApiEdges, StatsCountersAfterReopenAreRecomputed) {
  TempHeapPath path("stats_reopen");
  std::uint64_t live = 0, bytes = 0;
  {
    auto h = Heap::create(path.str(), 2 << 20, small_opts());
    for (int i = 0; i < 25; ++i) (void)h->alloc(100);
    const auto s = h->stats();
    live = s.live_blocks;
    bytes = s.allocated_bytes;
  }
  auto h = Heap::open(path.str(), small_opts());
  const auto s = h->stats();
  EXPECT_EQ(s.live_blocks, live);
  EXPECT_EQ(s.allocated_bytes, bytes);
}

TEST(ApiEdges, CApiStats) {
  TempHeapPath path("capi_stats");
  heap_t* heap = poseidon_init(path.c_str(), 1 << 20);
  ASSERT_NE(heap, nullptr);
  nvmptr_t a = poseidon_alloc(heap, 64);
  nvmptr_t b = poseidon_alloc(heap, 5000);
  poseidon_stats_t st{};
  poseidon_get_stats(heap, &st);
  EXPECT_EQ(st.live_blocks, 2u);
  EXPECT_EQ(st.allocated_bytes, 64u + 8192u);
  EXPECT_GE(st.user_capacity, 1u << 20);
  EXPECT_GT(st.splits, 0u);
  poseidon_free(heap, a);
  poseidon_free(heap, b);
  poseidon_get_stats(heap, &st);
  EXPECT_EQ(st.live_blocks, 0u);
  poseidon_finish(heap);
}

TEST(ApiEdges, CApiStatsSizedNeverWritesPastCallerStruct) {
  TempHeapPath path("capi_stats_sized");
  heap_t* heap = poseidon_init(path.c_str(), 1 << 20);
  ASSERT_NE(heap, nullptr);
  nvmptr_t a = poseidon_alloc(heap, 64);
  ASSERT_FALSE(nvmptr_is_null(a));

  // A caller compiled against an older header passes a shorter struct:
  // only its prefix may be written, bytes past it must stay untouched.
  const size_t old_size = offsetof(poseidon_stats_t, subheaps_quarantined);
  struct {
    poseidon_stats_t st;
    unsigned char guard[32];
  } buf;
  std::memset(&buf, 0xab, sizeof(buf));
  EXPECT_EQ(poseidon_get_stats_sized(heap, &buf.st, old_size),
            sizeof(poseidon_stats_t));
  EXPECT_EQ(buf.st.live_blocks, 1u);
  const auto* raw = reinterpret_cast<const unsigned char*>(&buf);
  for (size_t i = old_size; i < sizeof(buf); ++i) {
    ASSERT_EQ(raw[i], 0xab) << "byte " << i << " written past out_size";
  }
  // The full size gets the tail fields; degenerate inputs return 0.
  std::memset(&buf, 0xab, sizeof(buf));
  EXPECT_EQ(poseidon_get_stats_sized(heap, &buf.st, sizeof(buf.st)),
            sizeof(poseidon_stats_t));
  EXPECT_GE(buf.st.nshards, 1u);
  EXPECT_EQ(poseidon_get_stats_sized(heap, nullptr, sizeof(buf.st)), 0u);
  EXPECT_EQ(poseidon_get_stats_sized(heap, &buf.st, 0), 0u);
  poseidon_free(heap, a);
  poseidon_finish(heap);
}

TEST(ApiEdges, CApiNullHandleSafety) {
  // Fig. 5 hardening: every handle-taking entry point must tolerate a NULL
  // heap (failed poseidon_init) instead of crashing.
  nvmptr_t p = poseidon_alloc(nullptr, 64);
  EXPECT_TRUE(nvmptr_is_null(p));
  p = poseidon_tx_alloc(nullptr, 64, true);
  EXPECT_TRUE(nvmptr_is_null(p));
  poseidon_tx_commit(nullptr);  // no-op, must not crash
  nvmptr_t fake{123, 456};
  EXPECT_NE(poseidon_free(nullptr, fake), 0);
  EXPECT_TRUE(nvmptr_is_null(poseidon_get_root(nullptr)));
  poseidon_set_root(nullptr, fake);  // no-op
  poseidon_finish(nullptr);          // no-op
  poseidon_stats_t st;
  std::memset(&st, 0xff, sizeof(st));
  poseidon_get_stats(nullptr, &st);  // zero-fills
  EXPECT_EQ(st.live_blocks, 0u);
  EXPECT_EQ(st.user_capacity, 0u);
  EXPECT_EQ(st.cache_hits, 0u);
}

TEST(ApiEdges, CApiLastErrorReporting) {
  // A null path fails with a message instead of crashing.
  EXPECT_EQ(poseidon_init(nullptr, 1 << 20), nullptr);
  ASSERT_NE(poseidon_last_error(), nullptr);
  // A directory is not a pool; the error is specific, not an mmap errno.
  EXPECT_EQ(poseidon_init("/dev/shm", 1 << 20), nullptr);
  const char* err = poseidon_last_error();
  ASSERT_NE(err, nullptr);
  EXPECT_NE(std::strstr(err, "regular file"), nullptr) << err;
  // Success clears the thread's error state.
  TempHeapPath path("capi_lasterr");
  heap_t* heap = poseidon_init(path.c_str(), 1 << 20);
  ASSERT_NE(heap, nullptr);
  EXPECT_EQ(poseidon_last_error(), nullptr);
  poseidon_get_stats(heap, nullptr);  // out==NULL is a documented no-op
  poseidon_finish(heap);
}

TEST(ApiEdges, FromRawRejectsTailPadding) {
  // The pool file is rounded up to a huge-page boundary, so bytes between
  // the end of the last user region and the end of the file are mapped but
  // are NOT user data.  contains()/from_raw() must reject them (the seed
  // bounded against file_size, fabricating out-of-range sub-heap indices).
  TempHeapPath path("tail_padding");
  auto h = Heap::create(path.str(), 1 << 20, small_opts());
  NvPtr p = h->alloc(64);
  ASSERT_FALSE(p.is_null());
  char* user_base = static_cast<char*>(h->raw(p)) - p.offset();
  char* user_end = user_base + h->user_capacity();
  EXPECT_TRUE(h->contains(user_end - 1));
  EXPECT_FALSE(h->contains(user_end));
  EXPECT_FALSE(h->contains(user_end + 64));
  EXPECT_TRUE(h->from_raw(user_end).is_null());
  EXPECT_TRUE(h->from_raw(user_end + 4096).is_null());
  const NvPtr last = h->from_raw(user_end - 1);
  EXPECT_FALSE(last.is_null());
  EXPECT_EQ(last.offset(), h->user_capacity() - 1);
  EXPECT_EQ(h->free(p), FreeResult::kOk);
}

TEST(ApiEdges, MaxSubheapCountWorks) {
  TempHeapPath path("max_subheaps");
  core::Options o = small_opts(core::kMaxSubheaps);
  o.policy = core::SubheapPolicy::kPerThread;
  auto h = Heap::create(path.str(), 8 << 20, o);
  EXPECT_EQ(h->nsubheaps(), core::kMaxSubheaps);
  // Materialize a few spread-out sub-heaps and operate on them.
  std::vector<std::thread> threads;
  for (int t = 0; t < 8; ++t) {
    threads.emplace_back([&] {
      NvPtr p = h->alloc(256);
      ASSERT_FALSE(p.is_null());
      ASSERT_EQ(h->free(p), FreeResult::kOk);
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_TRUE(h->check_invariants());
}

class ZipfThetaSweep : public ::testing::TestWithParam<double> {};

TEST_P(ZipfThetaSweep, HigherThetaIsMoreSkewed) {
  const double theta = GetParam();
  workloads::ZipfGenerator zipf(1000, theta, 5);
  constexpr int kDraws = 100000;
  unsigned head = 0;  // draws landing in the hottest 1% of ranks
  for (int i = 0; i < kDraws; ++i) {
    if (zipf.next_rank() < 10) ++head;
  }
  // Reference thresholds: theta 0.5 concentrates a few percent in the
  // head, 0.99 roughly a third or more.
  if (theta >= 0.99) {
    EXPECT_GT(head, kDraws / 4);
  } else if (theta >= 0.9) {
    EXPECT_GT(head, kDraws / 8);
    EXPECT_LT(head, kDraws / 2);
  } else {
    EXPECT_GT(head, kDraws / 100);
    EXPECT_LT(head, kDraws / 4);
  }
}

INSTANTIATE_TEST_SUITE_P(Thetas, ZipfThetaSweep,
                         ::testing::Values(0.5, 0.9, 0.99));

}  // namespace
}  // namespace poseidon
