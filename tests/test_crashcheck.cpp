// Unit tests for the crash-state exploration subsystem (src/crashcheck/):
// trace capture through the SimObserver tap, the LineModel persistence
// semantics, the flush lint's four finding kinds, the explorer's subset
// enumeration + dedup + shrink, and the replay-file format.  Heap-level
// end-to-end coverage lives in `torture --crashcheck` (crashcheck_smoke).
//
// Also hosts two simulator regression tests that ride with this subsystem:
// SimDomain::note_fence cost stays proportional to the pending window, and
// an armed crash-point nth-hit trigger fires exactly once under a thread
// race.

#include <gtest/gtest.h>

#include <cstdlib>
#include <cstring>
#include <string>
#include <thread>
#include <vector>

#include "common/compiler.hpp"
#include "crashcheck/explorer.hpp"
#include "crashcheck/lint.hpp"
#include "crashcheck/recorder.hpp"
#include "crashcheck/replay.hpp"
#include "crashcheck/trace.hpp"
#include "pmem/crashpoint.hpp"
#include "pmem/persist.hpp"
#include "pmem/sim_domain.hpp"

namespace poseidon {
namespace {

using crashcheck::EvKind;
using crashcheck::Explorer;
using crashcheck::ExploreConfig;
using crashcheck::ExploreStats;
using crashcheck::LineModel;
using crashcheck::LintKind;
using crashcheck::LintReport;
using crashcheck::Recorder;
using crashcheck::ReplayFile;
using crashcheck::Trace;
using crashcheck::Violation;

// A small cache-line-aligned region the recorder watches.  Zeroed so the
// begin image is known.
class Region {
 public:
  explicit Region(std::size_t bytes = 4096)
      : size_(bytes),
        p_(static_cast<std::byte*>(std::aligned_alloc(kCacheLineSize,
                                                      bytes))) {
    std::memset(p_, 0, size_);
  }
  ~Region() { std::free(p_); }
  Region(const Region&) = delete;
  Region& operator=(const Region&) = delete;

  std::byte* data() noexcept { return p_; }
  std::size_t size() const noexcept { return size_; }
  // The uint64 slot at the start of cache line `l`.
  std::uint64_t& u64(std::size_t l) noexcept {
    return *reinterpret_cast<std::uint64_t*>(p_ + l * kCacheLineSize);
  }

 private:
  std::size_t size_;
  std::byte* p_;
};

TEST(CrashcheckTrace, CapturesOrderedEventsAndBytes) {
  Region r;
  Recorder rec(r.data(), r.size());
  rec.begin("unit/capture");
  pmem::nv_store(r.u64(0), std::uint64_t{0x1111});
  pmem::flush(&r.u64(0), sizeof(std::uint64_t));
  pmem::fence();
  POSEIDON_CRASH_POINT("unit.capture_point");
  pmem::nv_store(r.u64(1), std::uint64_t{0x2222});
  const Trace t = rec.end();

  ASSERT_EQ(t.events.size(), 5u);
  EXPECT_EQ(t.events[0].kind, EvKind::kStore);
  EXPECT_EQ(t.events[1].kind, EvKind::kFlush);
  EXPECT_EQ(t.events[2].kind, EvKind::kFence);
  EXPECT_EQ(t.events[3].kind, EvKind::kCrashPoint);
  EXPECT_EQ(t.events[4].kind, EvKind::kStore);
  EXPECT_EQ(t.fence_count(), 1u);
  EXPECT_EQ(t.crash_point_count(), 1u);
  EXPECT_EQ(t.line_count(), r.size() / kCacheLineSize);
  ASSERT_EQ(t.point_names.size(), 1u);
  EXPECT_EQ(t.point_names[t.events[3].point], "unit.capture_point");

  // Store events carry the written bytes, begin/end images the region.
  std::uint64_t captured = 0;
  std::memcpy(&captured, t.bytes.data() + t.events[0].data_off,
              sizeof captured);
  EXPECT_EQ(captured, 0x1111u);
  EXPECT_NE(t.events[0].site, nullptr);
  ASSERT_EQ(t.begin_img.size(), r.size());
  std::uint64_t begin0 = 0;
  std::memcpy(&begin0, t.begin_img.data(), sizeof begin0);
  EXPECT_EQ(begin0, 0u);
  std::uint64_t end1 = 0;
  std::memcpy(&end1, t.end_img.data() + kCacheLineSize, sizeof end1);
  EXPECT_EQ(end1, 0x2222u);
}

TEST(CrashcheckTrace, RecorderIgnoresOutOfRegionTraffic) {
  Region r;
  std::uint64_t outside = 0;
  Recorder rec(r.data(), r.size());
  rec.begin("unit/clip");
  pmem::nv_store(outside, std::uint64_t{7});
  pmem::persist(&outside, sizeof outside);
  const Trace t = rec.end();
  // The persist's fence is global (fences have no address), but the store
  // and flush land outside the region and are dropped.
  for (const auto& e : t.events) EXPECT_EQ(e.kind, EvKind::kFence);
}

TEST(CrashcheckLineModel, AtRiskAndImageConstruction) {
  Region r;
  Recorder rec(r.data(), r.size());
  rec.begin("unit/model");
  pmem::nv_store(r.u64(0), std::uint64_t{0xAAAA});  // committed below
  pmem::persist(&r.u64(0), sizeof(std::uint64_t));
  pmem::nv_store(r.u64(1), std::uint64_t{0xBBBB});  // dirty at end
  pmem::nv_store(r.u64(2), std::uint64_t{0xCCCC});  // pending at end
  pmem::flush(&r.u64(2), sizeof(std::uint64_t));
  const Trace t = rec.end();

  LineModel m(t);
  m.advance(t.events.size());
  const std::vector<std::uint32_t> at_risk{1, 2};
  EXPECT_EQ(m.at_risk_lines(), at_risk);

  std::vector<std::byte> img;
  m.build_image({}, &img);  // everything survives
  std::uint64_t v = 0;
  std::memcpy(&v, img.data() + kCacheLineSize, sizeof v);
  EXPECT_EQ(v, 0xBBBBu);

  m.build_image({1}, &img);  // line 1 lost: reverts to committed zero
  std::memcpy(&v, img.data() + kCacheLineSize, sizeof v);
  EXPECT_EQ(v, 0u);
  std::memcpy(&v, img.data(), sizeof v);
  EXPECT_EQ(v, 0xAAAAu);  // the fenced line is immune to loss

  // The incremental hash matches distinct images / collapses equal ones.
  EXPECT_NE(m.image_hash({}), m.image_hash({1}));
  EXPECT_NE(m.image_hash({1}), m.image_hash({1, 2}));
  EXPECT_THROW(m.advance(0), std::logic_error);  // no rewind
}

TEST(CrashcheckLint, FourFindingKinds) {
  Region r;

  {  // clean: store + flush + fence
    Recorder rec(r.data(), r.size());
    rec.begin("unit/clean");
    pmem::nv_store(r.u64(0), std::uint64_t{1});
    pmem::persist(&r.u64(0), sizeof(std::uint64_t));
    const LintReport rep = crashcheck::lint_trace(rec.end());
    EXPECT_TRUE(rep.clean());
    EXPECT_EQ(rep.count(LintKind::kRedundantFlush), 0u);
    EXPECT_EQ(rep.count(LintKind::kUntrackedStore), 0u);
  }
  {  // missing flush: stored, never flushed
    Recorder rec(r.data(), r.size());
    rec.begin("unit/missing-flush");
    pmem::nv_store(r.u64(1), std::uint64_t{2});
    const LintReport rep = crashcheck::lint_trace(rec.end());
    EXPECT_EQ(rep.count(LintKind::kMissingFlush), 1u);
    EXPECT_FALSE(rep.clean());
  }
  {  // missing fence: flushed, never fenced
    Recorder rec(r.data(), r.size());
    rec.begin("unit/missing-fence");
    pmem::nv_store(r.u64(2), std::uint64_t{3});
    pmem::flush(&r.u64(2), sizeof(std::uint64_t));
    const LintReport rep = crashcheck::lint_trace(rec.end());
    EXPECT_EQ(rep.count(LintKind::kMissingFence), 1u);
    EXPECT_EQ(rep.count(LintKind::kMissingFlush), 0u);
  }
  {  // redundant flush: second flush with no store in between
    Recorder rec(r.data(), r.size());
    rec.begin("unit/redundant");
    pmem::nv_store(r.u64(3), std::uint64_t{4});
    pmem::persist(&r.u64(3), sizeof(std::uint64_t));
    pmem::persist(&r.u64(3), sizeof(std::uint64_t));
    const LintReport rep = crashcheck::lint_trace(rec.end());
    EXPECT_TRUE(rep.clean());
    EXPECT_GE(rep.count(LintKind::kRedundantFlush), 1u);
  }
  {  // untracked store: a raw write that bypassed the nv_* helpers
    Recorder rec(r.data(), r.size());
    rec.begin("unit/untracked");
    pmem::nv_store(r.u64(4), std::uint64_t{5});
    pmem::persist(&r.u64(4), sizeof(std::uint64_t));
    r.u64(5) = 0xDEAD;  // invisible to the tap
    const LintReport rep = crashcheck::lint_trace(rec.end());
    EXPECT_GE(rep.count(LintKind::kUntrackedStore), 1u);
    r.u64(5) = 0;
  }
}

TEST(CrashcheckLint, MergeAggregatesBySite) {
  Region r;
  Recorder rec(r.data(), r.size());
  rec.begin("unit/merge");
  pmem::nv_store(r.u64(0), std::uint64_t{1});
  const Trace t = rec.end();

  LintReport acc = crashcheck::lint_trace(t);
  const LintReport again = crashcheck::lint_trace(t);
  ASSERT_EQ(acc.findings.size(), 1u);
  crashcheck::lint_merge(&acc, again);
  EXPECT_EQ(acc.findings.size(), 1u);  // same (kind, site) combined
  EXPECT_EQ(acc.count(LintKind::kMissingFlush), 2u);
  EXPECT_FALSE(crashcheck::describe_site(acc.findings[0].site).empty());
}

TEST(CrashcheckExplorer, EnumeratesSubsetsAndDedups) {
  Region r;
  Recorder rec(r.data(), r.size());
  rec.begin("unit/enum");
  pmem::nv_store(r.u64(0), std::uint64_t{0x11});
  pmem::nv_store(r.u64(1), std::uint64_t{0x22});
  const Trace t = rec.end();

  ExploreConfig cfg;
  cfg.exhaustive_max = 6;
  Explorer ex(cfg);
  std::vector<Violation> viols;
  const ExploreStats st = ex.explore(
      t, [](const std::vector<std::byte>&, bool) { return std::string(); },
      &viols);
  // No fence and no crash point: the only instant is the end of the trace;
  // two at-risk lines with distinct contents give exactly 2^2 images.
  EXPECT_EQ(st.instants, 1u);
  EXPECT_EQ(st.distinct, 4u);
  EXPECT_EQ(st.violations, 0u);
  EXPECT_TRUE(viols.empty());

  // The dedup hash set is run-wide: the same trace contributes nothing new.
  const ExploreStats st2 = ex.explore(
      t, [](const std::vector<std::byte>&, bool) { return std::string(); },
      nullptr);
  EXPECT_EQ(st2.distinct, 0u);
  EXPECT_EQ(ex.distinct_total(), 4u);
}

// The unit-scale version of the sabotage self-test: a two-line publish
// protocol (value, then flag) with the value's persist elided must be
// caught by BOTH the explorer (a crash image with the flag set but the
// value lost) and the lint (a missing-flush finding on the value line).
TEST(CrashcheckExplorer, TornPublishCaughtByExplorerAndLint) {
  Region r;
  Recorder rec(r.data(), r.size());
  rec.begin("unit/torn-publish");
  pmem::nv_store(r.u64(0), std::uint64_t{0xFEED});  // value: persist elided
  pmem::nv_store(r.u64(1), std::uint64_t{1});       // flag
  pmem::persist(&r.u64(1), sizeof(std::uint64_t));
  const Trace t = rec.end();

  const LintReport rep = crashcheck::lint_trace(t);
  EXPECT_EQ(rep.count(LintKind::kMissingFlush), 1u);

  const auto verify = [](const std::vector<std::byte>& img,
                         bool) -> std::string {
    std::uint64_t value = 0, flag = 0;
    std::memcpy(&value, img.data(), sizeof value);
    std::memcpy(&flag, img.data() + kCacheLineSize, sizeof flag);
    if (flag == 1 && value != 0xFEED) return "flag set but value lost";
    return {};
  };
  ExploreConfig cfg;
  Explorer ex(cfg);
  std::vector<Violation> viols;
  const ExploreStats st = ex.explore(t, verify, &viols);
  ASSERT_GE(st.violations, 1u);
  ASSERT_FALSE(viols.empty());
  // Shrink isolates the value line as the minimal lost set.
  EXPECT_EQ(viols[0].lost, (std::vector<std::uint32_t>{0}));
  EXPECT_EQ(viols[0].why, "flag set but value lost");

  // Replay reproduces the exact state; a non-at-risk line is rejected.
  EXPECT_EQ(ex.replay(t, viols[0].instant, viols[0].lost, verify),
            "flag set but value lost");
  EXPECT_NE(ex.replay(t, viols[0].instant, {5}, verify), std::string());
}

TEST(CrashcheckReplayFile, RoundTripsAllFields) {
  ReplayFile rf;
  rf.family = "alloc";
  rf.variant = 2;
  rf.seed = 42;
  rf.sabotage = 7;
  rf.label = "alloc/2";
  rf.instant = 137;
  rf.lost = {3, 17, 4099};
  rf.segments = {{17, "subheap_meta[0]"}, {4099, "hash[1]"}};
  rf.why = "reopened image: prior slot 1 not allocated";

  const std::string path = "/dev/shm/poseidon_test_replay_" +
                           std::to_string(::getpid()) + ".txt";
  std::string err;
  ASSERT_TRUE(rf.save(path, &err)) << err;
  ReplayFile back;
  ASSERT_TRUE(ReplayFile::load(path, &back, &err)) << err;
  EXPECT_EQ(back.family, rf.family);
  EXPECT_EQ(back.variant, rf.variant);
  EXPECT_EQ(back.seed, rf.seed);
  EXPECT_EQ(back.sabotage, rf.sabotage);
  EXPECT_EQ(back.label, rf.label);
  EXPECT_EQ(back.instant, rf.instant);
  EXPECT_EQ(back.lost, rf.lost);
  EXPECT_EQ(back.segments, rf.segments);
  EXPECT_EQ(back.why, rf.why);
  ::unlink(path.c_str());

  ReplayFile bad;
  EXPECT_FALSE(ReplayFile::load("/dev/null", &bad, &err));
}

// SimDomain::note_fence must scan O(lines pending at THIS fence), not
// O(high-water window of earlier flushes): after a whole-region flush +
// fence, a subsequent single-line persist's fence must scan ~one line.
TEST(CrashcheckSim, FenceScanCostStaysProportionalToPending) {
  constexpr std::size_t kBytes = 1u << 20;  // 16384 lines
  void* mem = std::aligned_alloc(4096, kBytes);
  ASSERT_NE(mem, nullptr);
  std::memset(mem, 0, kBytes);
  {
    pmem::SimDomain d(mem, kBytes, pmem::PersistDomain::kCacheLineFlush);
    pmem::nv_memset(mem, 1, kBytes);
    pmem::flush(mem, kBytes);
    pmem::fence();
    const std::size_t whole = d.last_fence_scan_lines();
    EXPECT_GE(whole, kBytes / kCacheLineSize);

    pmem::nv_store(*static_cast<std::uint64_t*>(mem), std::uint64_t{9});
    pmem::persist(mem, sizeof(std::uint64_t));
    EXPECT_LE(d.last_fence_scan_lines(), 2u);

    // An empty fence scans nothing at all.
    pmem::fence();
    EXPECT_EQ(d.last_fence_scan_lines(), 0u);
  }
  std::free(mem);
}

// An armed nth-hit crash trigger fires exactly once even when many threads
// race through the same crash point.
TEST(CrashcheckSim, CrashArmNthHitFiresExactlyOnce) {
  constexpr unsigned kThreads = 8;
  constexpr unsigned kHitsPerThread = 1000;
  pmem::crash_arm("unit.race", kThreads * kHitsPerThread / 2,
                  pmem::CrashAction::kThrow);
  std::atomic<unsigned> fired{0};
  std::vector<std::thread> ts;
  ts.reserve(kThreads);
  for (unsigned i = 0; i < kThreads; ++i) {
    ts.emplace_back([&fired] {
      for (unsigned k = 0; k < kHitsPerThread; ++k) {
        try {
          POSEIDON_CRASH_POINT("unit.race");
        } catch (const pmem::CrashException&) {
          fired.fetch_add(1, std::memory_order_relaxed);
        }
      }
    });
  }
  for (auto& t : ts) t.join();
  pmem::crash_disarm();
  EXPECT_EQ(fired.load(), 1u);
  EXPECT_GE(pmem::crash_hits(), kThreads * kHitsPerThread / 2);
}

}  // namespace
}  // namespace poseidon
