// Lazy vs eager coalescing (Options::eager_coalesce): both modes must
// preserve every invariant; eager additionally keeps the heap maximally
// merged after frees.
#include <gtest/gtest.h>

#include <vector>

#include "common/rng.hpp"
#include "core/heap.hpp"
#include "tests/test_util.hpp"

namespace poseidon::core {
namespace {

using test::small_opts;
using test::TempHeapPath;

Options eager_opts() {
  Options o = small_opts();
  o.eager_coalesce = true;
  return o;
}

TEST(EagerCoalesce, FreeRestoresMaximalBlock) {
  TempHeapPath path("eager_max");
  auto h = Heap::create(path.str(), 1 << 20, eager_opts());
  std::vector<NvPtr> ps;
  for (int i = 0; i < 64; ++i) ps.push_back(h->alloc(1024));
  for (const auto& p : ps) ASSERT_EQ(h->free(p), FreeResult::kOk);
  // Everything merged back: exactly one free block spans the region.
  const auto s = h->stats();
  EXPECT_EQ(s.free_blocks, 1u);
  EXPECT_EQ(s.live_blocks, 0u);
  EXPECT_TRUE(h->check_invariants());
}

TEST(EagerCoalesce, LazyModeLeavesFragmentsUntilNeeded) {
  TempHeapPath path("lazy_frag");
  auto h = Heap::create(path.str(), 1 << 20, small_opts());  // lazy default
  std::vector<NvPtr> ps;
  for (int i = 0; i < 64; ++i) ps.push_back(h->alloc(1024));
  for (const auto& p : ps) ASSERT_EQ(h->free(p), FreeResult::kOk);
  EXPECT_GT(h->stats().free_blocks, 1u)
      << "lazy mode defers merging until a request needs it";
  // ...but the next big request triggers defragmentation and succeeds.
  NvPtr whole = h->alloc(h->user_capacity());
  EXPECT_FALSE(whole.is_null());
  EXPECT_TRUE(h->check_invariants());
}

TEST(EagerCoalesce, PartialNeighbourhoodMergesOnlyFreeBuddies) {
  TempHeapPath path("eager_partial");
  auto h = Heap::create(path.str(), 1 << 20, eager_opts());
  NvPtr a = h->alloc(4096);
  NvPtr b = h->alloc(4096);  // a's buddy
  NvPtr c = h->alloc(4096);
  NvPtr d = h->alloc(4096);  // c's buddy
  ASSERT_FALSE(a.is_null() || b.is_null() || c.is_null() || d.is_null());
  h->free(a);  // b still live: no merge possible
  const auto s1 = h->stats();
  h->free(b);  // merges with a (and possibly upward)
  const auto s2 = h->stats();
  EXPECT_LT(s2.free_blocks, s1.free_blocks + 1)
      << "freeing the buddy must merge rather than just adding a block";
  h->free(c);
  h->free(d);
  EXPECT_EQ(h->stats().free_blocks, 1u);
  EXPECT_TRUE(h->check_invariants());
}

TEST(EagerCoalesce, RandomChurnKeepsInvariants) {
  TempHeapPath path("eager_churn");
  auto h = Heap::create(path.str(), 2 << 20, eager_opts());
  Xoshiro256 rng(77);
  std::vector<NvPtr> live;
  for (int i = 0; i < 5000; ++i) {
    if (live.size() < 128 && (live.empty() || (rng.next() & 1))) {
      NvPtr p = h->alloc(32u << rng.next_below(8));
      if (!p.is_null()) live.push_back(p);
    } else {
      const std::size_t k = rng.next_below(live.size());
      ASSERT_EQ(h->free(live[k]), FreeResult::kOk);
      live[k] = live.back();
      live.pop_back();
    }
    if (i % 1000 == 0) {
      std::string why;
      ASSERT_TRUE(h->check_invariants(&why)) << i << ": " << why;
    }
  }
  for (const auto& p : live) ASSERT_EQ(h->free(p), FreeResult::kOk);
  EXPECT_EQ(h->stats().free_blocks, 1u) << "fully merged after drain";
  EXPECT_TRUE(h->check_invariants());
}

TEST(EagerCoalesce, SurvivesReopenAndRecovery) {
  TempHeapPath path("eager_reopen");
  NvPtr keep;
  {
    auto h = Heap::create(path.str(), 1 << 20, eager_opts());
    keep = h->alloc(256);
    for (int i = 0; i < 50; ++i) {
      NvPtr p = h->alloc(512);
      h->free(p);
    }
  }
  auto h = Heap::open(path.str(), eager_opts());
  EXPECT_TRUE(h->check_invariants());
  EXPECT_EQ(h->stats().live_blocks, 1u);
  EXPECT_EQ(h->free(keep), FreeResult::kOk);
  EXPECT_EQ(h->stats().free_blocks, 1u);
}

}  // namespace
}  // namespace poseidon::core
