// Online snapshots + incremental backup (core/snapshot.cpp) and the
// dead-session orphan sweep (PoolShard::reclaim_orphans): commit gating
// under crash injection at every snapshot crash point, consistency of a
// snapshot taken under concurrent writers, the incremental dirty-page
// baseline (O(dirty), not O(heap)), and fsck's scavenge preserving owner
// tags so a rebuilt sub-heap still supports the watermark sweep.
#include <gtest/gtest.h>

#include <fcntl.h>
#include <sys/stat.h>
#include <sys/wait.h>
#include <unistd.h>

#include <atomic>
#include <cstring>
#include <chrono>
#include <string>
#include <thread>
#include <vector>

#include "common/error.hpp"
#include "core/heap.hpp"
#include "core/layout.hpp"
#include "core/snapshot.hpp"
#include "pmem/crashpoint.hpp"
#include "svc/svc_layout.hpp"
#include "tests/test_util.hpp"

namespace poseidon {
namespace {

using core::Heap;
using core::NvPtr;
using test::small_opts;
using test::TempHeapPath;

// A snapshot directory beside the source heap, removed with the fixture.
class TempSnapDir {
 public:
  explicit TempSnapDir(const std::string& heap_path)
      : dir_(heap_path + ".snap"),
        head_(heap_path.substr(heap_path.find_last_of('/') + 1)) {
    remove_all();
  }
  ~TempSnapDir() { remove_all(); }

  const std::string& dir() const noexcept { return dir_; }
  std::string manifest() const { return dir_ + "/MANIFEST"; }
  // Path of the snapshot's head image — what Heap::open takes.
  std::string head_image() const { return dir_ + "/" + head_; }

  bool manifest_exists() const {
    struct stat st{};
    return ::stat(manifest().c_str(), &st) == 0;
  }

 private:
  void remove_all() const noexcept {
    ::unlink(manifest().c_str());
    ::unlink((dir_ + "/MANIFEST.tmp").c_str());
    ::unlink(head_image().c_str());
    for (unsigned i = 1; i < core::kMaxShards; ++i) {
      ::unlink((head_image() + ".shard" + std::to_string(i)).c_str());
    }
    ::rmdir(dir_.c_str());
  }

  std::string dir_;
  std::string head_;
};

core::Options ro_opts() {
  auto o = small_opts();
  o.read_only = true;
  return o;
}

// Opening the image of an uncommitted (crashed) snapshot must be refused
// as kNotAPool — never repaired into service.  A crash before any image
// byte landed leaves no file at all; both outcomes refuse service.
void expect_refused(const TempSnapDir& snap) {
  EXPECT_FALSE(snap.manifest_exists());
  struct stat st{};
  if (::stat(snap.head_image().c_str(), &st) != 0) return;  // nothing copied
  try {
    auto h = Heap::open(snap.head_image(), ro_opts());
    FAIL() << "uncommitted snapshot image opened";
  } catch (const Error& e) {
    EXPECT_EQ(e.poseidon_code(), ErrorCode::kNotAPool) << e.what();
  }
}

// ---- full snapshot ----------------------------------------------------------

TEST(Snapshot, FullSnapshotOpensReadOnlyAndPreservesState) {
  TempHeapPath path("snap_full");
  TempSnapDir snap(path.str());
  auto h = Heap::create(path.str(), 1 << 20, small_opts());

  std::vector<NvPtr> keep;
  for (unsigned i = 0; i < 16; ++i) {
    const NvPtr p = h->tx_alloc(64, /*is_end=*/true);
    ASSERT_FALSE(p.is_null());
    std::memset(h->raw(p), 0x40 + static_cast<int>(i), 64);
    h->note_write(h->raw(p), 64);
    keep.push_back(p);
  }
  h->set_root(keep[0]);
  const auto live_before = h->stats().live_blocks;

  const auto rep = h->snapshot(snap.dir());
  EXPECT_FALSE(rep.incremental);
  EXPECT_EQ(rep.shards, h->shard_count());
  EXPECT_GT(rep.pages_copied, 0u);
  EXPECT_EQ(rep.manifest_path, snap.manifest());
  EXPECT_TRUE(snap.manifest_exists());

  // The source keeps serving after the cut.
  EXPECT_FALSE(h->alloc(64).is_null());
  std::string why;
  EXPECT_TRUE(h->check_invariants(&why)) << why;

  // The image opens read-only even while the source is live in-process
  // (read-only opens never register heap ids), and matches the cut's
  // live-set.
  auto img = Heap::open(snap.head_image(), ro_opts());
  EXPECT_EQ(img->stats().live_blocks, live_before);
  EXPECT_TRUE(img->check_invariants(&why)) << why;
  const NvPtr root = img->root();
  EXPECT_FALSE(root.is_null());
  const auto* bytes = static_cast<const unsigned char*>(img->raw(root));
  ASSERT_NE(bytes, nullptr);
  for (unsigned i = 0; i < 64; ++i) EXPECT_EQ(bytes[i], 0x40u);
}

TEST(Snapshot, ManifestDescribesEveryShard) {
  TempHeapPath path("snap_manifest");
  TempSnapDir snap(path.str());
  auto h = Heap::create(path.str(), 1 << 20, small_opts());
  ASSERT_FALSE(h->alloc(64).is_null());
  (void)h->snapshot(snap.dir());

  const auto man = core::read_snapshot_manifest(snap.manifest());
  EXPECT_FALSE(man.incremental);
  EXPECT_EQ(man.shard_count, h->shard_count());
  ASSERT_EQ(man.shards.size(), h->shard_count());
  for (const auto& sh : man.shards) {
    EXPECT_GT(sh.size, 0u);
    EXPECT_GT(sh.pages_copied, 0u);
    EXPECT_NE(sh.head_csum, 0u);
  }
}

// ---- crash injection at every snapshot crash point --------------------------

TEST(Snapshot, CrashAtEachPointLeavesRefusedDirectoryAndLiveSource) {
  TempHeapPath path("snap_crash");
  auto h = Heap::create(path.str(), 1 << 20, small_opts());
  for (unsigned i = 0; i < 8; ++i) ASSERT_FALSE(h->alloc(64).is_null());

  for (const char* point : {"snap.quiesce", "snap.copy", "snap.manifest"}) {
    TempSnapDir snap(path.str());
    pmem::crash_arm(point, 1, pmem::CrashAction::kThrow);
    bool crashed = false;
    try {
      (void)h->snapshot(snap.dir());
    } catch (const pmem::CrashException&) {
      crashed = true;
    }
    pmem::crash_disarm();
    ASSERT_TRUE(crashed) << point << " never fired";
    expect_refused(snap);

    // The quiesce guard unwound: the source serves and stays consistent.
    EXPECT_FALSE(h->alloc(64).is_null());
    std::string why;
    EXPECT_TRUE(h->check_invariants(&why)) << why;

    // And a retry into the same directory commits.
    const auto rep = h->snapshot(snap.dir());
    EXPECT_GT(rep.pages_copied, 0u);
    EXPECT_TRUE(snap.manifest_exists());
  }
}

TEST(Snapshot, KilledChildMidCopyLeavesRefusedDirectory) {
  TempHeapPath path("snap_kill");
  TempSnapDir snap(path.str());
  {  // seed the source, closed cleanly so the child owns it alone
    auto h = Heap::create(path.str(), 1 << 20, small_opts());
    for (unsigned i = 0; i < 8; ++i) ASSERT_FALSE(h->alloc(64).is_null());
  }
  const pid_t pid = fork();
  ASSERT_GE(pid, 0);
  if (pid == 0) {
    auto h = Heap::open(path.str(), small_opts());
    pmem::crash_arm("snap.copy", 1, pmem::CrashAction::kExit);
    (void)h->snapshot(snap.dir());
    _exit(7);  // the point never fired
  }
  int status = 0;
  ASSERT_EQ(waitpid(pid, &status, 0), pid);
  ASSERT_TRUE(WIFEXITED(status));
  ASSERT_EQ(WEXITSTATUS(status), 42);  // died at the crash point
  expect_refused(snap);

  // The source recovers normally after its holder died mid-snapshot.
  auto h = Heap::open(path.str(), small_opts());
  std::string why;
  EXPECT_TRUE(h->check_invariants(&why)) << why;
}

// ---- snapshot under concurrent writers --------------------------------------

TEST(Snapshot, ConcurrentWritersYieldConsistentImage) {
  TempHeapPath path("snap_conc");
  TempSnapDir snap(path.str());
  auto h = Heap::create(path.str(), 4 << 20, small_opts(2));

  std::atomic<bool> stop{false};
  std::vector<std::thread> ts;
  for (unsigned t = 0; t < 4; ++t) {
    ts.emplace_back([&h, &stop] {
      std::vector<NvPtr> mine;
      std::uint64_t x = 0x9e3779b97f4a7c15ull;
      while (!stop.load(std::memory_order_relaxed)) {
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        if (mine.size() < 32 && (x & 1) != 0) {
          const NvPtr p = h->tx_alloc(32 + (x % 512), /*is_end=*/true);
          if (!p.is_null()) mine.push_back(p);
        } else if (!mine.empty()) {
          h->free(mine.back());
          mine.pop_back();
        }
      }
      for (const NvPtr& p : mine) h->free(p);
    });
  }
  // Let the churn build, cut mid-flight, then wind down.
  std::this_thread::sleep_for(std::chrono::milliseconds(50));
  const auto rep = h->snapshot(snap.dir());
  stop.store(true, std::memory_order_relaxed);
  for (auto& t : ts) t.join();
  EXPECT_GT(rep.pages_copied, 0u);

  // The image is some consistent cut: recovery (writable open) admits it,
  // invariants hold, and fsck finds nothing to repair.  The source must
  // close first — a writable open registers the image's heap ids, which
  // are the same ids the live source holds.
  h.reset();
  auto img = Heap::open(snap.head_image(), small_opts(2));
  std::string why;
  EXPECT_TRUE(img->check_invariants(&why)) << why;
  const auto fr = img->fsck();
  EXPECT_EQ(fr.repaired, 0u);
  EXPECT_EQ(fr.quarantined, 0u);
  EXPECT_EQ(fr.records_dropped, 0u);
  EXPECT_EQ(fr.records_synthesized, 0u);
}

// ---- incremental ------------------------------------------------------------

TEST(Snapshot, IncrementalCopiesOnlyDirtyPages) {
  TempHeapPath path("snap_incr");
  TempSnapDir snap(path.str());
  auto h = Heap::create(path.str(), 4 << 20, small_opts());

  std::vector<NvPtr> ptrs;
  for (unsigned i = 0; i < 64; ++i) {
    const NvPtr p = h->alloc(core::kPageSize);
    ASSERT_FALSE(p.is_null());
    std::memset(h->raw(p), 0x11, core::kPageSize);
    h->note_write(h->raw(p), core::kPageSize);
    ptrs.push_back(p);
  }
  const auto full = h->snapshot(snap.dir());
  ASSERT_GT(full.pages_copied, 64u);

  // Touch exactly one user page; the delta must be O(pages dirtied), far
  // below the full image (allocator metadata the cut re-dirties rides
  // along, so "small", not "one").
  std::memset(h->raw(ptrs[3]), 0x22, core::kPageSize);
  h->note_write(h->raw(ptrs[3]), core::kPageSize);
  const auto incr = h->snapshot_incremental(snap.dir(), snap.manifest());
  EXPECT_TRUE(incr.incremental);
  EXPECT_GT(incr.pages_copied, 0u);
  EXPECT_LT(incr.pages_copied, full.pages_copied / 2);

  // The refreshed image carries the new bytes and the updated manifest.
  const auto man = core::read_snapshot_manifest(snap.manifest());
  EXPECT_TRUE(man.incremental);
  unsigned shard = 0;
  for (unsigned i = 0; i < h->shard_count(); ++i) {
    if (h->shard_heap_id(i) == ptrs[3].heap_id) shard = i;
  }
  auto img = Heap::open(snap.head_image(), ro_opts());
  const auto* bytes = static_cast<const unsigned char*>(img->raw(
      NvPtr{img->shard_heap_id(shard), ptrs[3].packed}));
  ASSERT_NE(bytes, nullptr);
  EXPECT_EQ(bytes[0], 0x22u);
}

TEST(Snapshot, IncrementalBaselineRefusedAfterRestart) {
  TempHeapPath path("snap_base");
  TempSnapDir snap(path.str());
  {
    auto h = Heap::create(path.str(), 1 << 20, small_opts());
    ASSERT_FALSE(h->alloc(64).is_null());
    (void)h->snapshot(snap.dir());
  }
  // A new process (here: a reopened heap) cannot prove the manifest's
  // dirty-tracker baseline — the incremental must be refused, and a fresh
  // full snapshot is the escape.
  auto h = Heap::open(path.str(), small_opts());
  try {
    (void)h->snapshot_incremental(snap.dir(), snap.manifest());
    FAIL() << "incremental accepted a stale baseline";
  } catch (const Error& e) {
    EXPECT_EQ(e.poseidon_code(), ErrorCode::kInvalidArgument) << e.what();
  }
  const auto rep = h->snapshot(snap.dir());
  EXPECT_FALSE(rep.incremental);
  EXPECT_TRUE(snap.manifest_exists());
}

// ---- orphan sweep + scavenge tag preservation (allocation service) ----------

TEST(Snapshot, ReclaimOrphansHonorsWatermark) {
  TempHeapPath path("snap_orphan");
  auto h = Heap::create(path.str(), 1 << 20, small_opts());

  // Four single-block "requests" of one dead session, req ids 1..4; the
  // consumed watermark is 2, so reqs 3 and 4 are provably undelivered.
  const std::uint32_t nonce = 0x80001234u;  // top bit: svc nonce contract
  const std::uint64_t size = 64;
  NvPtr out{};
  for (std::uint32_t req = 1; req <= 4; ++req) {
    ASSERT_EQ(h->tx_alloc_batch_tagged(&size, 1, &out,
                                       svc::make_tag(nonce, req)),
              1u);
  }
  const std::uint64_t pair[2] = {nonce, /*watermark=*/2};
  EXPECT_EQ(h->reclaim_orphans(pair, 1), 2u);
  EXPECT_EQ(h->metrics().svc_orphans_reclaimed.read(), 2u);
  // Idempotent: the survivors are at-or-below the watermark.
  EXPECT_EQ(h->reclaim_orphans(pair, 1), 0u);
  std::string why;
  EXPECT_TRUE(h->check_invariants(&why)) << why;
}

TEST(Snapshot, ScavengePreservesOwnerTagsForOrphanSweep) {
  TempHeapPath path("snap_scavenge");
  const std::uint32_t nonce = 0x8000beefu;
  const std::uint64_t size = 64;
  core::SuperBlock sb{};
  {
    auto h = Heap::create(path.str(), 1 << 20, small_opts());
    NvPtr out{};
    for (std::uint32_t req = 1; req <= 4; ++req) {
      ASSERT_EQ(h->tx_alloc_batch_tagged(&size, 1, &out,
                                         svc::make_tag(nonce, req)),
                1u);
    }
  }  // clean close seals the metadata checksums
  {
    const int fd = ::open(path.c_str(), O_RDONLY);
    ASSERT_GE(fd, 0);
    ASSERT_EQ(::pread(fd, &sb, sizeof(sb), 0),
              static_cast<ssize_t>(sizeof(sb)));
    ::close(fd);
  }
  {  // flip a counter byte: the open detects it and scavenge-rebuilds
    const int fd = ::open(path.c_str(), O_RDWR);
    ASSERT_GE(fd, 0);
    const std::uint64_t off =
        sb.subheap_meta_off + offsetof(core::SubheapMeta, live_blocks);
    unsigned char b = 0;
    ASSERT_EQ(::pread(fd, &b, 1, static_cast<off_t>(off)), 1);
    b ^= 0xff;
    ASSERT_EQ(::pwrite(fd, &b, 1, static_cast<off_t>(off)), 1);
    ::close(fd);
  }
  auto h = Heap::open(path.str(), small_opts());
  EXPECT_GE(h->metrics().corruption_detected.read(), 1u);
  // The rebuilt records kept their owner tags: the sweep still finds
  // exactly the past-watermark orphans.
  const std::uint64_t pair[2] = {nonce, /*watermark=*/1};
  EXPECT_EQ(h->reclaim_orphans(pair, 1), 3u);
  std::string why;
  EXPECT_TRUE(h->check_invariants(&why)) << why;
}

}  // namespace
}  // namespace poseidon
